// Command slide-serve serves top-k predictions from a trained SLIDE model
// over HTTP — the paper's pitch (large-network inference cheap enough for
// commodity CPUs) turned into a serving front end.
//
// It loads a self-describing model written by slide-train -save, builds
// one shared concurrency-safe Predictor, and micro-batches concurrent
// requests into Predictor.PredictBatch calls so bursts ride the
// multi-core fan-out instead of queuing on single-example passes. For
// tail-latency engineering it adds a latency budget with admission
// control (shed with 429 + Retry-After instead of queuing work doomed to
// miss the budget), per-request deadlines (body deadline_ms or the
// X-Slide-Deadline-Ms header; expired work is cancelled with 504 instead
// of computed), and a response cache for deterministic requests keyed by
// engine generation (invalidated wholesale by /reload and SIGHUP).
//
// Usage:
//
//	slide-train -profile delicious -scale 0.01 -epochs 4 -save model.slide
//	slide-serve -model model.slide -addr :8080 -latency-budget 25ms -cache-size 4096
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/predict \
//	  -d '{"indices":[12,345,6789],"values":[1.0,0.5,2.0],"k":5,"sampled":true}'
//	curl -s localhost:8080/stats
//
// Endpoints:
//
//	POST /predict        {"indices":[...],"values":[...],"k":5,"sampled":true,
//	                      "seed":1,"deadline_ms":25}
//	                     -> {"ids":[...],"scores":[...],"mode":"sampled","ms":...}
//	POST /predict/batch  {"batch":[{"indices":[...],"values":[...]},...],"k":5,"sampled":true}
//	                     -> {"results":[{"ids":[...],"scores":[...]},...],"count":N,"ms":...}
//	                     bulk clients ride one PredictBatch fan-out directly,
//	                     skipping the micro-batch gathering window
//	POST /reload         {"model":"other.slide"} (empty body reloads -model)
//	                     atomically swaps in a freshly loaded Network+Predictor
//	                     pair and flushes the response cache; in-flight
//	                     requests finish on the old pair. SIGHUP does the same.
//	GET  /healthz        model shape, source path, generation, reload count
//	GET  /stats          request counts, micro-batch sizes, p50/p90/p99/p999,
//	                     shed / deadline-exceeded / cache counters
//
// The process shuts down gracefully: SIGINT/SIGTERM stops accepting new
// connections, drains in-flight requests (bounded by -drain), then stops
// the micro-batcher.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	slide "repro"
	"repro/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slide-serve: ")
	var (
		modelPath   = flag.String("model", "", "self-describing model file written by slide-train -save (required)")
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		defaultK    = flag.Int("k", 5, "default top-k when a request omits k")
		maxK        = flag.Int("max-k", 100, "largest top-k a request may ask for")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "maximum micro-batch gathering window (0 disables batching)")
		batchMax    = flag.Int("batch-max", 64, "maximum requests per micro-batch")
		adaptive    = flag.Bool("adaptive-window", true, "derive each gather window from the observed arrival rate (one EWMA per inference mode), clamped to [0, -batch-window]")
		budget      = flag.Duration("latency-budget", 0, "admission-control latency budget: shed requests whose expected wait exceeds it with 429 + Retry-After (0 disables shedding)")
		cacheSize   = flag.Int("cache-size", 0, "response-cache capacity in entries for deterministic (exact and seeded-sampled) requests (0 disables the cache)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout for in-flight requests on SIGINT/SIGTERM")
		maxBody     = flag.Int64("max-body", 0, "request body cap in bytes for /predict; /predict/batch allows 16x, /reload a quarter (0 keeps the 4 MiB default)")
		memLimit    = flag.Int64("gomemlimit", 0, "soft heap limit in bytes passed to the runtime (debug.SetMemoryLimit); 0 leaves the runtime default")
		gcPercent   = flag.Int("gogc", 0, "GC target percentage (debug.SetGCPercent); 0 leaves the runtime default")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the serving mux for live heap and allocation profiling")
		noPooling   = flag.Bool("no-pooling", false, "disable per-request workspace pooling (measurement ablation: reproduces the allocate-per-request regime)")
	)
	flag.Parse()
	if *modelPath == "" {
		log.Fatal("-model is required (train one with: slide-train -save model.slide)")
	}

	// Runtime memory knobs first, so even model loading runs under them.
	// -gomemlimit bounds the heap's steady-state size (the GC runs more
	// often rather than letting the heap balloon between cycles);
	// -gogc trades heap headroom for GC frequency. With the request path
	// allocation-free, both mostly govern the training/reload side.
	if *memLimit > 0 {
		debug.SetMemoryLimit(*memLimit)
		log.Printf("memory limit %d bytes", *memLimit)
	}
	if *gcPercent > 0 {
		debug.SetGCPercent(*gcPercent)
		log.Printf("GC percent %d", *gcPercent)
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	net, err := slide.LoadModel(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded model %s: input dim %d, %d layers, %d classes, %d parameters",
		*modelPath, net.Config().InputDim, net.NumLayers(), net.OutputDim(), net.NumParams())

	srv, err := serve.New(net, serve.Options{
		DefaultK:       *defaultK,
		MaxK:           *maxK,
		BatchWindow:    *batchWindow,
		AdaptiveWindow: *adaptive,
		BatchMax:       *batchMax,
		ModelPath:      *modelPath,
		LatencyBudget:  *budget,
		CacheSize:      *cacheSize,
		MaxBodyBytes:   *maxBody,
		NoPooling:      *noPooling,
		EnablePprof:    *pprofOn,
	})
	if err != nil {
		log.Fatal(err)
	}
	stopHUP := srv.WatchSIGHUP(log.Printf)
	defer stopHUP()

	// A configured http.Server instead of the bare ListenAndServe
	// default: header/body read timeouts bound slowloris-style clients,
	// the idle timeout reaps dead keep-alive connections, and Shutdown
	// gives in-flight requests a bounded drain on SIGINT/SIGTERM.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          log.Default(),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	window := "adaptive per mode ≤ " + batchWindow.String()
	if !*adaptive {
		window = batchWindow.String()
	}
	extras := ""
	if *budget > 0 {
		extras += ", latency budget " + budget.String()
	}
	if *cacheSize > 0 {
		log.Printf("response cache: %d entries", *cacheSize)
	}
	if *pprofOn {
		log.Printf("pprof mounted at /debug/pprof/")
	}
	if *noPooling {
		log.Printf("workspace pooling DISABLED (-no-pooling measurement ablation)")
	}
	log.Printf("serving on %s (micro-batch window %s, max %d%s; SIGHUP reloads %s)",
		*addr, window, *batchMax, extras, *modelPath)

	select {
	case err := <-errCh:
		// The listener failed outright (bad -addr, port in use).
		srv.Close()
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	log.Printf("shutting down: draining in-flight requests (up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("listener: %v", err)
	}
	// The HTTP side is quiet now; stop the micro-batcher (it drains its
	// own queue before exiting).
	srv.Close()
	log.Printf("bye")
}
