// Command slide-serve serves top-k predictions from a trained SLIDE model
// over HTTP — the paper's pitch (large-network inference cheap enough for
// commodity CPUs) turned into a serving front end.
//
// It loads a self-describing model written by slide-train -save, builds
// one shared concurrency-safe Predictor, and micro-batches concurrent
// requests into Predictor.PredictBatch calls so bursts ride the
// multi-core fan-out instead of queuing on single-example passes.
//
// Usage:
//
//	slide-train -profile delicious -scale 0.01 -epochs 4 -save model.slide
//	slide-serve -model model.slide -addr :8080
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/predict \
//	  -d '{"indices":[12,345,6789],"values":[1.0,0.5,2.0],"k":5,"sampled":true}'
//	curl -s localhost:8080/stats
//
// Endpoints:
//
//	POST /predict        {"indices":[...],"values":[...],"k":5,"sampled":true}
//	                     -> {"ids":[...],"scores":[...],"mode":"sampled","ms":...}
//	POST /predict/batch  {"batch":[{"indices":[...],"values":[...]},...],"k":5,"sampled":true}
//	                     -> {"results":[{"ids":[...],"scores":[...]},...],"count":N,"ms":...}
//	                     bulk clients ride one PredictBatch fan-out directly,
//	                     skipping the micro-batch gathering window
//	POST /reload         {"model":"other.slide"} (empty body reloads -model)
//	                     atomically swaps in a freshly loaded Network+Predictor
//	                     pair; in-flight requests finish on the old pair.
//	                     SIGHUP triggers the same swap from -model.
//	GET  /healthz        model shape, source path, reload count, status
//	GET  /stats          request counts, micro-batch sizes, latency percentiles
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slide-serve: ")
	var (
		modelPath   = flag.String("model", "", "self-describing model file written by slide-train -save (required)")
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		defaultK    = flag.Int("k", 5, "default top-k when a request omits k")
		maxK        = flag.Int("max-k", 100, "largest top-k a request may ask for")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "maximum micro-batch gathering window (0 disables batching)")
		batchMax    = flag.Int("batch-max", 64, "maximum requests per micro-batch")
		adaptive    = flag.Bool("adaptive-window", true, "derive each gather window from the observed arrival rate (one EWMA per inference mode), clamped to [0, -batch-window]")
	)
	flag.Parse()
	if *modelPath == "" {
		log.Fatal("-model is required (train one with: slide-train -save model.slide)")
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	net, err := slide.LoadModel(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded model %s: input dim %d, %d layers, %d classes, %d parameters",
		*modelPath, net.Config().InputDim, net.NumLayers(), net.OutputDim(), net.NumParams())

	srv, err := newServer(net, serverOptions{
		DefaultK:       *defaultK,
		MaxK:           *maxK,
		BatchWindow:    *batchWindow,
		AdaptiveWindow: *adaptive,
		BatchMax:       *batchMax,
		ModelPath:      *modelPath,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	stopHUP := srv.watchSIGHUP(log.Printf)
	defer stopHUP()

	window := "adaptive per mode ≤ " + batchWindow.String()
	if !*adaptive {
		window = batchWindow.String()
	}
	log.Printf("serving on %s (micro-batch window %s, max %d; SIGHUP reloads %s)",
		*addr, window, *batchMax, *modelPath)
	if err := http.ListenAndServe(*addr, srv.routes()); err != nil {
		log.Fatal(err)
	}
}
