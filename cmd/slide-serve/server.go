package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro"
)

// serverOptions configures the serving front end.
type serverOptions struct {
	// DefaultK is used when a request omits k; MaxK caps requested k.
	DefaultK int
	MaxK     int
	// BatchWindow is how long the micro-batcher waits to gather
	// concurrent requests into one PredictBatch call; 0 disables
	// batching and every request runs its own single-example pass.
	BatchWindow time.Duration
	// BatchMax bounds the number of requests per micro-batch.
	BatchMax int
}

func (o serverOptions) withDefaults() serverOptions {
	if o.DefaultK <= 0 {
		o.DefaultK = 5
	}
	if o.MaxK <= 0 {
		o.MaxK = 100
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 64
	}
	return o
}

// server owns one shared Predictor and the micro-batching queue in front
// of it.
type server struct {
	net  *slide.Network
	pred *slide.Predictor
	opts serverOptions

	reqCh chan *pendingReq
	done  chan struct{}
	wg    sync.WaitGroup

	stats statsRecorder
}

// pendingReq is one /predict request waiting for a micro-batch slot.
type pendingReq struct {
	x       slide.Vector
	k       int
	sampled bool
	// seeded marks a request carrying a "seed" field; its sampled
	// prediction must be a pure function of (x, seed).
	seeded bool
	seed   uint64
	reply  chan batchReply
}

type batchReply struct {
	ids       []int32
	scores    []float32
	batchSize int
	err       error
}

func newServer(net *slide.Network, opts serverOptions) (*server, error) {
	pred, err := net.NewPredictor()
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	s := &server{
		net:   net,
		pred:  pred,
		opts:  opts,
		reqCh: make(chan *pendingReq, 4*opts.BatchMax),
		done:  make(chan struct{}),
	}
	s.wg.Add(1)
	go s.batchLoop()
	return s, nil
}

// Close stops the micro-batcher. Requests already queued are served
// (batchLoop drains the queue before exiting); a request that races past
// the drain gets an error reply from its own wait on s.done rather than
// blocking forever.
func (s *server) Close() {
	close(s.done)
	s.wg.Wait()
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", s.handlePredict)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// predictRequest is the POST /predict body: a sparse feature vector as
// parallel index/value lists, the requested top-k, and whether to use
// SLIDE's sub-linear sampled inference or the exact full forward pass.
// An optional seed makes a sampled prediction deterministic: identical
// (indices, values, k, seed) requests return identical ids and scores no
// matter what other traffic the server is handling. Exact predictions
// are always deterministic; seed is ignored for them.
type predictRequest struct {
	Indices []int32   `json:"indices"`
	Values  []float32 `json:"values"`
	K       int       `json:"k"`
	Sampled bool      `json:"sampled"`
	Seed    *uint64   `json:"seed"`
}

type predictResponse struct {
	IDs       []int32   `json:"ids"`
	Scores    []float32 `json:"scores"`
	Mode      string    `json:"mode"`
	BatchSize int       `json:"batch_size"`
	Millis    float64   `json:"ms"`
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var req predictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Indices) != len(req.Values) {
		httpError(w, http.StatusBadRequest, "%d indices but %d values", len(req.Indices), len(req.Values))
		return
	}
	if len(req.Indices) == 0 {
		httpError(w, http.StatusBadRequest, "empty feature vector")
		return
	}
	k := req.K
	if k <= 0 {
		k = s.opts.DefaultK
	}
	if k > s.opts.MaxK {
		k = s.opts.MaxK
	}
	x, err := slide.NewVector(s.net.Config().InputDim, req.Indices, req.Values)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad feature vector: %v", err)
		return
	}

	p := &pendingReq{x: x, k: k, sampled: req.Sampled, reply: make(chan batchReply, 1)}
	if req.Seed != nil {
		p.seeded = true
		p.seed = *req.Seed
	}
	var rep batchReply
	if p.sampled && p.seeded {
		// Seeded requests gain nothing from gathering — they always run
		// as individual seeded predictions — so skip the micro-batch
		// queue: no window wait, and a slow seeded pass never
		// head-of-line-blocks the batcher for unrelated traffic.
		rep = s.runOne(r.Context(), p)
	} else if s.opts.BatchWindow > 0 {
		select {
		case s.reqCh <- p:
		case <-s.done:
			httpError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		case <-r.Context().Done():
			httpError(w, http.StatusServiceUnavailable, "cancelled while queued: %v", r.Context().Err())
			return
		}
		select {
		case rep = <-p.reply:
		case <-s.done:
			// Shutdown raced our enqueue past the batcher's final
			// drain; answer rather than wait on a reply that may
			// never come.
			httpError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		case <-r.Context().Done():
			// The batcher will still complete the work and drop the
			// buffered reply; the client has gone away.
			httpError(w, http.StatusServiceUnavailable, "cancelled: %v", r.Context().Err())
			return
		}
	} else {
		rep = s.runOne(r.Context(), p)
	}
	if rep.err != nil {
		httpError(w, http.StatusInternalServerError, "predict: %v", rep.err)
		return
	}

	mode := "exact"
	if req.Sampled {
		mode = "sampled"
	}
	ms := float64(time.Since(t0).Microseconds()) / 1000
	s.stats.record(ms, rep.batchSize)
	writeJSON(w, http.StatusOK, predictResponse{
		IDs: rep.ids, Scores: rep.scores, Mode: mode, BatchSize: rep.batchSize, Millis: ms,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"input_dim": s.net.Config().InputDim,
		"classes":   s.net.OutputDim(),
		"layers":    s.net.NumLayers(),
		"params":    s.net.NumParams(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.stats.snapshot())
}

// batchLoop gathers concurrent requests into micro-batches: the first
// request opens a window, further requests join until the window closes
// or the batch fills, then the whole batch runs through one
// PredictBatch fan-out per mode.
func (s *server) batchLoop() {
	defer s.wg.Done()
	for {
		var first *pendingReq
		select {
		case first = <-s.reqCh:
		case <-s.done:
			s.drain()
			return
		}
		batch := []*pendingReq{first}
		timer := time.NewTimer(s.opts.BatchWindow)
	gather:
		for len(batch) < s.opts.BatchMax {
			select {
			case r := <-s.reqCh:
				batch = append(batch, r)
			case <-timer.C:
				break gather
			case <-s.done:
				break gather
			}
		}
		timer.Stop()
		s.runBatch(batch)
	}
}

// drain serves whatever is still queued at shutdown so no handler is
// left waiting on a reply that will never come.
func (s *server) drain() {
	for {
		select {
		case r := <-s.reqCh:
			s.runBatch([]*pendingReq{r})
		default:
			return
		}
	}
}

// runBatch partitions a micro-batch by inference mode, runs one
// PredictBatch per mode at the largest requested k, and trims each
// request's reply down to its own k. Seeded sampled requests (normally
// dispatched straight to runOne by handlePredict, but handled here too so
// a seeded request can never be mis-batched) leave the shared fan-out:
// each runs as its own seeded single prediction on a state from the
// Predictor's quarantined seeded pool, reseeded from the request seed, so
// its result is a pure function of (input, seed) and never depends on
// what else happened to share the micro-batch.
func (s *server) runBatch(batch []*pendingReq) {
	var byMode [2][]*pendingReq
	var seeded []*pendingReq
	for _, r := range batch {
		switch {
		case r.sampled && r.seeded:
			seeded = append(seeded, r)
		case r.sampled:
			byMode[1] = append(byMode[1], r)
		default:
			byMode[0] = append(byMode[0], r)
		}
	}
	// Bounded fan-out: each in-flight seeded prediction holds a pooled
	// worker state, so cap concurrency at GOMAXPROCS rather than one
	// goroutine (and state) per request.
	var wg sync.WaitGroup
	workers := minInt(runtime.GOMAXPROCS(0), len(seeded))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(seeded); i += workers {
				r := seeded[i]
				ids, scores, err := s.pred.PredictSampled(r.x, r.k, slide.PredictOpts{Seed: r.seed})
				r.reply <- batchReply{ids: ids, scores: scores, batchSize: 1, err: err}
			}
		}(w)
	}
	for i, group := range byMode {
		if len(group) == 0 {
			continue
		}
		xs := make([]slide.Vector, len(group))
		maxK := 0
		for j, r := range group {
			xs[j] = r.x
			if r.k > maxK {
				maxK = r.k
			}
		}
		var ids [][]int32
		var scores [][]float32
		var err error
		if i == 1 {
			ids, scores, err = s.pred.PredictBatchSampled(context.Background(), xs, maxK)
		} else {
			ids, scores, err = s.pred.PredictBatch(context.Background(), xs, maxK)
		}
		for j, r := range group {
			// batchSize is the fan-out the request actually rode —
			// its mode group, not the whole gathered micro-batch.
			rep := batchReply{err: err, batchSize: len(group)}
			if err == nil {
				n := minInt(r.k, len(ids[j]))
				rep.ids, rep.scores = ids[j][:n], scores[j][:n]
			}
			r.reply <- rep
		}
	}
	wg.Wait()
}

// runOne serves a request without micro-batching.
func (s *server) runOne(ctx context.Context, r *pendingReq) batchReply {
	if err := ctx.Err(); err != nil {
		return batchReply{err: err}
	}
	var opts []slide.PredictOpts
	if r.sampled && r.seeded {
		opts = append(opts, slide.PredictOpts{Seed: r.seed})
	}
	ids, scores, err := s.pred.TopKWithScores(r.x, r.k, r.sampled, opts...)
	return batchReply{ids: ids, scores: scores, batchSize: 1, err: err}
}

// statsRecorder accumulates request counts, micro-batch sizes and a ring
// of recent latencies for percentile reporting.
type statsRecorder struct {
	mu         sync.Mutex
	requests   int64
	batchElems int64
	lat        [4096]float64
	pos        int
	filled     bool
}

func (sr *statsRecorder) record(ms float64, batchSize int) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	sr.requests++
	sr.batchElems += int64(batchSize)
	sr.lat[sr.pos] = ms
	sr.pos++
	if sr.pos == len(sr.lat) {
		sr.pos = 0
		sr.filled = true
	}
}

type statsSnapshot struct {
	Requests      int64   `json:"requests"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	P50Millis     float64 `json:"p50_ms"`
	P90Millis     float64 `json:"p90_ms"`
	P99Millis     float64 `json:"p99_ms"`
}

func (sr *statsRecorder) snapshot() statsSnapshot {
	sr.mu.Lock()
	n := sr.pos
	if sr.filled {
		n = len(sr.lat)
	}
	lats := append([]float64(nil), sr.lat[:n]...)
	snap := statsSnapshot{Requests: sr.requests}
	if sr.requests > 0 {
		snap.MeanBatchSize = float64(sr.batchElems) / float64(sr.requests)
	}
	sr.mu.Unlock()

	if len(lats) > 0 {
		sort.Float64s(lats)
		snap.P50Millis = percentile(lats, 0.50)
		snap.P90Millis = percentile(lats, 0.90)
		snap.P99Millis = percentile(lats, 0.99)
	}
	return snap
}

// percentile reads the p-quantile from ascending-sorted samples using the
// nearest-rank definition: the smallest sample with at least a fraction p
// of all samples at or below it, i.e. index ceil(p*n)-1. (Truncating
// p*n would index one rank too high — p50 of two samples must be the
// first, not the second.)
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
