package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
)

// serverOptions configures the serving front end.
type serverOptions struct {
	// DefaultK is used when a request omits k; MaxK caps requested k.
	DefaultK int
	MaxK     int
	// BatchWindow is how long the micro-batcher waits to gather
	// concurrent requests into one PredictBatch call; 0 disables
	// batching and every request runs its own single-example pass.
	// With AdaptiveWindow it is the upper clamp instead of the fixed
	// wait.
	BatchWindow time.Duration
	// AdaptiveWindow derives each micro-batch's gather window from an
	// EWMA of the observed request inter-arrival time instead of waiting
	// the full BatchWindow: long enough to fill BatchMax at the current
	// rate, zero when no second request is expected in time, clamped to
	// [0, BatchWindow].
	AdaptiveWindow bool
	// BatchMax bounds the number of requests per micro-batch.
	BatchMax int
	// BatchBodyMax bounds the number of vectors a single /predict/batch
	// request may carry.
	BatchBodyMax int
	// ModelPath is the model file the server was started from and the
	// default source for POST /reload; empty disables path-less reloads.
	ModelPath string
}

func (o serverOptions) withDefaults() serverOptions {
	if o.DefaultK <= 0 {
		o.DefaultK = 5
	}
	if o.MaxK <= 0 {
		o.MaxK = 100
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 64
	}
	if o.BatchBodyMax <= 0 {
		o.BatchBodyMax = 1024
	}
	return o
}

// engine is one servable (Network, Predictor) pair. The server publishes
// the current engine through an atomic pointer — the same swap-a-handle
// idiom the core uses for hash-table rebuilds — so POST /reload replaces
// the whole pair in one store while in-flight requests finish on the
// engine they started with (pendingReq pins it), even if the new model
// has a different shape.
type engine struct {
	net   *slide.Network
	pred  *slide.Predictor
	model string // file the pair was loaded from ("" for in-memory models)
}

func newEngine(net *slide.Network, model string) (*engine, error) {
	pred, err := net.NewPredictor()
	if err != nil {
		return nil, err
	}
	return &engine{net: net, pred: pred, model: model}, nil
}

// server owns the swappable engine and the micro-batching queue in front
// of it.
type server struct {
	eng  atomic.Pointer[engine]
	opts serverOptions

	// reloadMu serializes /reload so concurrent reloads do not waste
	// duplicate model loads; prediction traffic never takes it.
	reloadMu sync.Mutex
	reloads  atomic.Int64

	reqCh chan *pendingReq
	done  chan struct{}
	wg    sync.WaitGroup

	stats statsRecorder
	// arrivals tracks one inter-arrival estimator per inference mode,
	// indexed by modeIdx: exact and sampled requests have very different
	// service times and traffic mixes, so each micro-batch's gather
	// window is sized from the arrival rate of its own mode rather than
	// a blended estimate that overstates both.
	arrivals [2]arrivalEstimator
}

// modeIdx indexes per-mode state: 0 exact, 1 sampled.
func modeIdx(sampled bool) int {
	if sampled {
		return 1
	}
	return 0
}

// pendingReq is one /predict request waiting for a micro-batch slot. It
// pins the engine that validated it, so a reload mid-queue cannot run the
// request against a model with a different input dimension.
type pendingReq struct {
	eng     *engine
	x       slide.Vector
	k       int
	sampled bool
	// seeded marks a request carrying a "seed" field; its sampled
	// prediction must be a pure function of (x, seed).
	seeded bool
	seed   uint64
	reply  chan batchReply
}

type batchReply struct {
	ids       []int32
	scores    []float32
	batchSize int
	err       error
}

func newServer(net *slide.Network, opts serverOptions) (*server, error) {
	opts = opts.withDefaults()
	eng, err := newEngine(net, opts.ModelPath)
	if err != nil {
		return nil, err
	}
	s := &server{
		opts:  opts,
		reqCh: make(chan *pendingReq, 4*opts.BatchMax),
		done:  make(chan struct{}),
	}
	for m := range s.arrivals {
		s.arrivals[m].gapCapNS = gapCapWindows * float64(opts.BatchWindow)
	}
	s.eng.Store(eng)
	s.wg.Add(1)
	go s.batchLoop()
	return s, nil
}

// Close stops the micro-batcher. Requests already queued are served
// (batchLoop drains the queue before exiting); a request that races past
// the drain gets an error reply from its own wait on s.done rather than
// blocking forever.
func (s *server) Close() {
	close(s.done)
	s.wg.Wait()
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", s.handlePredict)
	mux.HandleFunc("POST /predict/batch", s.handlePredictBatch)
	mux.HandleFunc("POST /reload", s.handleReload)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// predictRequest is the POST /predict body: a sparse feature vector as
// parallel index/value lists, the requested top-k, and whether to use
// SLIDE's sub-linear sampled inference or the exact full forward pass.
// An optional seed makes a sampled prediction deterministic: identical
// (indices, values, k, seed) requests return identical ids and scores no
// matter what other traffic the server is handling. Exact predictions
// are always deterministic; seed is ignored for them.
type predictRequest struct {
	Indices []int32   `json:"indices"`
	Values  []float32 `json:"values"`
	K       int       `json:"k"`
	Sampled bool      `json:"sampled"`
	Seed    *uint64   `json:"seed"`
}

type predictResponse struct {
	IDs       []int32   `json:"ids"`
	Scores    []float32 `json:"scores"`
	Mode      string    `json:"mode"`
	BatchSize int       `json:"batch_size"`
	Millis    float64   `json:"ms"`
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var req predictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Indices) != len(req.Values) {
		httpError(w, http.StatusBadRequest, "%d indices but %d values", len(req.Indices), len(req.Values))
		return
	}
	if len(req.Indices) == 0 {
		httpError(w, http.StatusBadRequest, "empty feature vector")
		return
	}
	k := req.K
	if k <= 0 {
		k = s.opts.DefaultK
	}
	if k > s.opts.MaxK {
		k = s.opts.MaxK
	}
	eng := s.eng.Load()
	x, err := slide.NewVector(eng.net.Config().InputDim, req.Indices, req.Values)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad feature vector: %v", err)
		return
	}

	p := &pendingReq{eng: eng, x: x, k: k, sampled: req.Sampled, reply: make(chan batchReply, 1)}
	if req.Seed != nil {
		p.seeded = true
		p.seed = *req.Seed
	}
	var rep batchReply
	if p.sampled && p.seeded {
		// Seeded requests gain nothing from gathering — they always run
		// as individual seeded predictions — so skip the micro-batch
		// queue: no window wait, and a slow seeded pass never
		// head-of-line-blocks the batcher for unrelated traffic.
		rep = s.runOne(r.Context(), p)
	} else if s.opts.BatchWindow > 0 {
		// Only queue-bound requests feed their mode's arrival-rate
		// estimate (they are the population the gather window is sized
		// for), and only when the adaptive window consumes it — the
		// estimator's mutex has no business on the hot path of a
		// fixed-window deployment.
		if s.opts.AdaptiveWindow {
			s.arrivals[modeIdx(p.sampled)].observe(t0)
		}
		select {
		case s.reqCh <- p:
		case <-s.done:
			httpError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		case <-r.Context().Done():
			httpError(w, http.StatusServiceUnavailable, "cancelled while queued: %v", r.Context().Err())
			return
		}
		select {
		case rep = <-p.reply:
		case <-s.done:
			// Shutdown raced our enqueue past the batcher's final
			// drain; answer rather than wait on a reply that may
			// never come.
			httpError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		case <-r.Context().Done():
			// The batcher will still complete the work and drop the
			// buffered reply; the client has gone away.
			httpError(w, http.StatusServiceUnavailable, "cancelled: %v", r.Context().Err())
			return
		}
	} else {
		rep = s.runOne(r.Context(), p)
	}
	if rep.err != nil {
		httpError(w, http.StatusInternalServerError, "predict: %v", rep.err)
		return
	}

	mode := "exact"
	if req.Sampled {
		mode = "sampled"
	}
	ms := float64(time.Since(t0).Microseconds()) / 1000
	s.stats.record(ms, rep.batchSize)
	writeJSON(w, http.StatusOK, predictResponse{
		IDs: rep.ids, Scores: rep.scores, Mode: mode, BatchSize: rep.batchSize, Millis: ms,
	})
}

// batchPredictRequest is the POST /predict/batch body: a list of sparse
// feature vectors sharing one k / mode / optional seed. Bulk clients use
// it to hit the Predictor's multi-core PredictBatch fan-out directly —
// no micro-batch gathering window, no per-vector HTTP overhead. With a
// seed, element i is seeded deterministically from seed and i exactly as
// PredictBatchSampled documents.
type batchPredictRequest struct {
	Batch []struct {
		Indices []int32   `json:"indices"`
		Values  []float32 `json:"values"`
	} `json:"batch"`
	K       int     `json:"k"`
	Sampled bool    `json:"sampled"`
	Seed    *uint64 `json:"seed"`
}

type batchPredictResponse struct {
	Results []predictResult `json:"results"`
	Mode    string          `json:"mode"`
	Count   int             `json:"count"`
	Millis  float64         `json:"ms"`
}

type predictResult struct {
	IDs    []int32   `json:"ids"`
	Scores []float32 `json:"scores"`
}

func (s *server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var req batchPredictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<26)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Batch) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Batch) > s.opts.BatchBodyMax {
		httpError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Batch), s.opts.BatchBodyMax)
		return
	}
	k := req.K
	if k <= 0 {
		k = s.opts.DefaultK
	}
	if k > s.opts.MaxK {
		k = s.opts.MaxK
	}
	eng := s.eng.Load()
	dim := eng.net.Config().InputDim
	xs := make([]slide.Vector, len(req.Batch))
	for i, el := range req.Batch {
		if len(el.Indices) != len(el.Values) {
			httpError(w, http.StatusBadRequest, "element %d: %d indices but %d values", i, len(el.Indices), len(el.Values))
			return
		}
		if len(el.Indices) == 0 {
			httpError(w, http.StatusBadRequest, "element %d: empty feature vector", i)
			return
		}
		x, err := slide.NewVector(dim, el.Indices, el.Values)
		if err != nil {
			httpError(w, http.StatusBadRequest, "element %d: bad feature vector: %v", i, err)
			return
		}
		xs[i] = x
	}

	var ids [][]int32
	var scores [][]float32
	var err error
	mode := "exact"
	switch {
	case req.Sampled && req.Seed != nil:
		mode = "sampled"
		ids, scores, err = eng.pred.PredictBatchSampled(r.Context(), xs, k, slide.PredictOpts{Seed: *req.Seed})
	case req.Sampled:
		mode = "sampled"
		ids, scores, err = eng.pred.PredictBatchSampled(r.Context(), xs, k)
	default:
		ids, scores, err = eng.pred.PredictBatch(r.Context(), xs, k)
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "predict batch: %v", err)
		return
	}

	results := make([]predictResult, len(xs))
	for i := range results {
		results[i] = predictResult{IDs: ids[i], Scores: scores[i]}
	}
	ms := float64(time.Since(t0).Microseconds()) / 1000
	s.stats.record(ms, len(xs))
	writeJSON(w, http.StatusOK, batchPredictResponse{
		Results: results, Mode: mode, Count: len(xs), Millis: ms,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	eng := s.eng.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"model":     eng.model,
		"reloads":   s.reloads.Load(),
		"input_dim": eng.net.Config().InputDim,
		"classes":   eng.net.OutputDim(),
		"layers":    eng.net.NumLayers(),
		"params":    eng.net.NumParams(),
	})
}

// reloadRequest is the POST /reload body. An empty body (or empty model
// field) reloads the file the server was started from.
type reloadRequest struct {
	Model string `json:"model"`
}

// handleReload loads a model file, builds a fresh (Network, Predictor)
// pair and publishes it with one atomic swap — the serving-side analog of
// the core's shadow table rebuild. Requests already validated against the
// old engine finish on it; everything arriving after the swap sees the
// new model. The old pair is dropped to the garbage collector once its
// in-flight requests drain.
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var req reloadRequest
	// An empty body means "reload the default model"; io.EOF (rather
	// than ContentLength, which chunked encoding reports as -1) is how
	// the decoder says the body was empty.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil && err != io.EOF {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	path := req.Model
	if path == "" {
		path = s.opts.ModelPath
	}
	if path == "" {
		httpError(w, http.StatusBadRequest, "no model path: server was started without -model and the request names none")
		return
	}

	eng, reloads, err := s.reloadFrom(path)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"model":     path,
		"reloads":   reloads,
		"input_dim": eng.net.Config().InputDim,
		"classes":   eng.net.OutputDim(),
		"params":    eng.net.NumParams(),
		"ms":        float64(time.Since(t0).Microseconds()) / 1000,
	})
}

// reloadFrom loads the model at path, builds a fresh engine and
// publishes it with one atomic swap, returning the new engine and this
// reload's counter value (captured while the swap is still the latest,
// so concurrent reloads report distinct counts). It is the shared
// implementation behind POST /reload and SIGHUP.
func (s *server) reloadFrom(path string) (*engine, int64, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("opening model: %w", err)
	}
	net, err := slide.LoadModel(f)
	f.Close()
	if err != nil {
		return nil, 0, fmt.Errorf("loading model: %w", err)
	}
	eng, err := newEngine(net, path)
	if err != nil {
		return nil, 0, fmt.Errorf("building predictor: %w", err)
	}
	s.eng.Store(eng)
	return eng, s.reloads.Add(1), nil
}

// watchSIGHUP wires the Unix convention to the same atomic engine swap
// as POST /reload: on SIGHUP the server re-reads the -model file it was
// started from. The returned stop function unregisters the handler.
func (s *server) watchSIGHUP(logf func(format string, args ...any)) (stop func()) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGHUP)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-sig:
				if s.opts.ModelPath == "" {
					logf("SIGHUP ignored: server was started without -model")
					continue
				}
				t0 := time.Now()
				eng, _, err := s.reloadFrom(s.opts.ModelPath)
				if err != nil {
					logf("SIGHUP reload failed: %v", err)
					continue
				}
				logf("SIGHUP reloaded %s (%d params) in %.1fms",
					s.opts.ModelPath, eng.net.NumParams(),
					float64(time.Since(t0).Microseconds())/1000)
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(sig)
		close(done)
	}
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.stats.snapshot()
	if s.opts.AdaptiveWindow {
		for m := range s.arrivals {
			ewma, primed := s.arrivals[m].interarrival()
			if !primed {
				continue
			}
			win := s.arrivals[m].window(s.opts.BatchWindow, s.opts.BatchMax)
			ms := &adaptiveModeStats{
				EWMAInterarrivalMillis: float64(ewma.Microseconds()) / 1000,
				WindowMillis:           float64(win.Microseconds()) / 1000,
			}
			if m == 1 {
				snap.AdaptiveSampled = ms
			} else {
				snap.AdaptiveExact = ms
			}
		}
	}
	writeJSON(w, http.StatusOK, snap)
}

// batchLoop gathers concurrent requests into micro-batches: the first
// request opens a window — fixed at BatchWindow, or derived per batch
// from the observed arrival rate with AdaptiveWindow — further requests
// join until the window closes or the batch fills, then the whole batch
// runs through one PredictBatch fan-out per mode.
func (s *server) batchLoop() {
	defer s.wg.Done()
	for {
		var first *pendingReq
		select {
		case first = <-s.reqCh:
		case <-s.done:
			s.drain()
			return
		}
		batch := []*pendingReq{first}
		window := s.opts.BatchWindow
		if s.opts.AdaptiveWindow {
			// The window is sized for the mode that opened the batch:
			// peers of the other mode may still join the gather, but the
			// wait is justified (or skipped) by the traffic the batch
			// will actually ride with.
			window = s.arrivals[modeIdx(first.sampled)].window(s.opts.BatchWindow, s.opts.BatchMax)
		}
		if window <= 0 {
			// No second arrival expected in time: take whatever is
			// already queued, but do not wait.
		gatherNow:
			for len(batch) < s.opts.BatchMax {
				select {
				case r := <-s.reqCh:
					batch = append(batch, r)
				default:
					break gatherNow
				}
			}
			s.runBatch(batch)
			continue
		}
		timer := time.NewTimer(window)
	gather:
		for len(batch) < s.opts.BatchMax {
			select {
			case r := <-s.reqCh:
				batch = append(batch, r)
			case <-timer.C:
				break gather
			case <-s.done:
				break gather
			}
		}
		timer.Stop()
		s.runBatch(batch)
	}
}

// arrivalEstimator tracks an exponentially weighted moving average of
// the micro-batchable request inter-arrival time. The batcher sizes each
// gather window from it: at high arrival rates the window only needs to
// span one batch's worth of arrivals, and at low rates waiting is pure
// added latency because no peer request will show up anyway.
type arrivalEstimator struct {
	mu      sync.Mutex
	last    time.Time
	ewmaNS  float64
	samples int64
	// gapCapNS clamps any single observed gap before it feeds the EWMA:
	// an overnight idle period is one sample, not evidence that the next
	// burst arrives hours apart — unclamped, a single huge gap would
	// hold the window at zero for a hundred requests into the burst.
	// The cap stays well above the batch window so genuinely sparse
	// traffic still reads as sparse (window 0).
	gapCapNS float64
}

// arrivalAlpha is the EWMA smoothing factor: ~20 arrivals of memory,
// quick enough to track bursts, slow enough not to chase single gaps.
// gapCapWindows sizes the per-sample gap clamp in units of the maximum
// batch window.
const (
	arrivalAlpha  = 0.1
	gapCapWindows = 8
)

// observe feeds one arrival timestamp. Concurrent handlers can deliver
// timestamps out of order; an older-than-last arrival carries no gap
// information and must not rewind e.last (that would overstate the next
// gap by the burst's span — during exactly the bursts the window is
// sized for).
func (e *arrivalEstimator) observe(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.last.IsZero() {
		e.last = now
		return
	}
	if !now.After(e.last) {
		return
	}
	d := float64(now.Sub(e.last))
	if e.gapCapNS > 0 && d > e.gapCapNS {
		d = e.gapCapNS
	}
	if e.samples == 0 {
		e.ewmaNS = d
	} else {
		e.ewmaNS += arrivalAlpha * (d - e.ewmaNS)
	}
	e.samples++
	e.last = now
}

// interarrival returns the current EWMA estimate and whether enough
// samples have accumulated to trust it.
func (e *arrivalEstimator) interarrival() (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return time.Duration(e.ewmaNS), e.samples >= 3
}

// window derives one gather window, clamped to [0, max]: unprimed
// estimators keep the configured fixed window; an expected inter-arrival
// beyond max means no peer will join in time, so the window collapses to
// zero; otherwise the window is just long enough to gather batchMax-1
// more requests at the observed rate.
func (e *arrivalEstimator) window(max time.Duration, batchMax int) time.Duration {
	ewma, primed := e.interarrival()
	if !primed {
		return max
	}
	if ewma > max {
		return 0
	}
	w := ewma * time.Duration(batchMax-1)
	return min(w, max)
}

// drain serves whatever is still queued at shutdown so no handler is
// left waiting on a reply that will never come.
func (s *server) drain() {
	for {
		select {
		case r := <-s.reqCh:
			s.runBatch([]*pendingReq{r})
		default:
			return
		}
	}
}

// batchGroup keys one shared fan-out inside a gathered micro-batch:
// requests only ride the same PredictBatch call when they agree on both
// the inference mode and the engine they were validated against (a
// /reload landing mid-window splits the batch instead of mixing models).
type batchGroup struct {
	eng     *engine
	sampled bool
}

// runBatch partitions a micro-batch by (engine, inference mode), runs one
// PredictBatch per group at the largest requested k, and trims each
// request's reply down to its own k. Seeded sampled requests (normally
// dispatched straight to runOne by handlePredict, but handled here too so
// a seeded request can never be mis-batched) leave the shared fan-out:
// each runs as its own seeded single prediction on a state from its
// engine's quarantined seeded pool, reseeded from the request seed, so
// its result is a pure function of (input, seed) and never depends on
// what else happened to share the micro-batch.
func (s *server) runBatch(batch []*pendingReq) {
	groups := make(map[batchGroup][]*pendingReq)
	var seeded []*pendingReq
	for _, r := range batch {
		if r.sampled && r.seeded {
			seeded = append(seeded, r)
			continue
		}
		key := batchGroup{eng: r.eng, sampled: r.sampled}
		groups[key] = append(groups[key], r)
	}
	// Bounded fan-out: each in-flight seeded prediction holds a pooled
	// worker state, so cap concurrency at GOMAXPROCS rather than one
	// goroutine (and state) per request.
	var wg sync.WaitGroup
	workers := min(runtime.GOMAXPROCS(0), len(seeded))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(seeded); i += workers {
				r := seeded[i]
				ids, scores, err := r.eng.pred.PredictSampled(r.x, r.k, slide.PredictOpts{Seed: r.seed})
				r.reply <- batchReply{ids: ids, scores: scores, batchSize: 1, err: err}
			}
		}(w)
	}
	for key, group := range groups {
		xs := make([]slide.Vector, len(group))
		maxK := 0
		for j, r := range group {
			xs[j] = r.x
			if r.k > maxK {
				maxK = r.k
			}
		}
		var ids [][]int32
		var scores [][]float32
		var err error
		if key.sampled {
			ids, scores, err = key.eng.pred.PredictBatchSampled(context.Background(), xs, maxK)
		} else {
			ids, scores, err = key.eng.pred.PredictBatch(context.Background(), xs, maxK)
		}
		for j, r := range group {
			// batchSize is the fan-out the request actually rode —
			// its mode group, not the whole gathered micro-batch.
			rep := batchReply{err: err, batchSize: len(group)}
			if err == nil {
				n := min(r.k, len(ids[j]))
				rep.ids, rep.scores = ids[j][:n], scores[j][:n]
			}
			r.reply <- rep
		}
	}
	wg.Wait()
}

// runOne serves a request without micro-batching, on its pinned engine.
func (s *server) runOne(ctx context.Context, r *pendingReq) batchReply {
	if err := ctx.Err(); err != nil {
		return batchReply{err: err}
	}
	var opts []slide.PredictOpts
	if r.sampled && r.seeded {
		opts = append(opts, slide.PredictOpts{Seed: r.seed})
	}
	ids, scores, err := r.eng.pred.TopKWithScores(r.x, r.k, r.sampled, opts...)
	return batchReply{ids: ids, scores: scores, batchSize: 1, err: err}
}

// statsRecorder accumulates request counts, micro-batch sizes and a ring
// of recent latencies for percentile reporting.
type statsRecorder struct {
	mu         sync.Mutex
	requests   int64
	batchElems int64
	lat        [4096]float64
	pos        int
	filled     bool
}

func (sr *statsRecorder) record(ms float64, batchSize int) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	sr.requests++
	sr.batchElems += int64(batchSize)
	sr.lat[sr.pos] = ms
	sr.pos++
	if sr.pos == len(sr.lat) {
		sr.pos = 0
		sr.filled = true
	}
}

// adaptiveModeStats reports one mode's arrival estimator: the observed
// mean gap between batchable requests of that mode, and the gather
// window the next micro-batch opened by that mode would use. A zero
// WindowMillis is the designed sparse-traffic state (no peer expected in
// time, so don't wait), distinguishable from "estimator unprimed or
// feature disabled" because the whole struct is then absent.
type adaptiveModeStats struct {
	EWMAInterarrivalMillis float64 `json:"ewma_interarrival_ms"`
	WindowMillis           float64 `json:"window_ms"`
}

type statsSnapshot struct {
	Requests      int64   `json:"requests"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	P50Millis     float64 `json:"p50_ms"`
	P90Millis     float64 `json:"p90_ms"`
	P99Millis     float64 `json:"p99_ms"`
	// AdaptiveExact / AdaptiveSampled report the per-mode arrival
	// estimators when -adaptive-window is on and the mode's estimator is
	// primed. The modes are tracked separately: exact and sampled
	// traffic arrive at independent rates, and each micro-batch's gather
	// window is sized from the estimator of the mode that opened it.
	AdaptiveExact   *adaptiveModeStats `json:"adaptive_exact,omitempty"`
	AdaptiveSampled *adaptiveModeStats `json:"adaptive_sampled,omitempty"`
}

func (sr *statsRecorder) snapshot() statsSnapshot {
	sr.mu.Lock()
	n := sr.pos
	if sr.filled {
		n = len(sr.lat)
	}
	lats := append([]float64(nil), sr.lat[:n]...)
	snap := statsSnapshot{Requests: sr.requests}
	if sr.requests > 0 {
		snap.MeanBatchSize = float64(sr.batchElems) / float64(sr.requests)
	}
	sr.mu.Unlock()

	if len(lats) > 0 {
		sort.Float64s(lats)
		snap.P50Millis = percentile(lats, 0.50)
		snap.P90Millis = percentile(lats, 0.90)
		snap.P99Millis = percentile(lats, 0.99)
	}
	return snap
}

// percentile reads the p-quantile from ascending-sorted samples using the
// nearest-rank definition: the smallest sample with at least a fraction p
// of all samples at or below it, i.e. index ceil(p*n)-1. (Truncating
// p*n would index one rank too high — p50 of two samples must be the
// first, not the second.)
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
