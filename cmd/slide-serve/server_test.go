package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro"
)

// testModel builds a small sampled-softmax network, round-trips it
// through the self-describing model format, and returns the loaded copy —
// exactly the path slide-serve takes from a slide-train -save file.
func testModel(t *testing.T) *slide.Network {
	t.Helper()
	net, err := slide.New(slide.Config{
		InputDim: 64,
		Seed:     11,
		Layers: []slide.LayerConfig{
			{Size: 32, Activation: slide.ActReLU},
			{
				Size: 256, Activation: slide.ActSoftmax,
				Sampled: true, Hash: slide.HashSimhash, K: 4, L: 8,
				Strategy: slide.StrategyVanilla, Beta: 48,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := slide.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

func startServer(t *testing.T, opts serverOptions) *httptest.Server {
	t.Helper()
	s, err := newServer(testModel(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return ts
}

func postPredict(t *testing.T, url string, body string) (int, predictResponse) {
	t.Helper()
	resp, err := http.Post(url+"/predict", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr predictResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, pr
}

func TestPredictExactAndSampled(t *testing.T) {
	ts := startServer(t, serverOptions{BatchWindow: time.Millisecond})
	for _, mode := range []struct {
		sampled bool
		want    string
	}{{false, "exact"}, {true, "sampled"}} {
		body := fmt.Sprintf(`{"indices":[1,7,33],"values":[1.0,0.5,2.0],"k":3,"sampled":%v}`, mode.sampled)
		code, pr := postPredict(t, ts.URL, body)
		if code != http.StatusOK {
			t.Fatalf("mode %s: status %d", mode.want, code)
		}
		if pr.Mode != mode.want {
			t.Fatalf("mode = %q, want %q", pr.Mode, mode.want)
		}
		if len(pr.IDs) != 3 || len(pr.Scores) != 3 {
			t.Fatalf("mode %s: got %d ids / %d scores, want 3", mode.want, len(pr.IDs), len(pr.Scores))
		}
		for i := 1; i < len(pr.Scores); i++ {
			if pr.Scores[i] > pr.Scores[i-1] {
				t.Fatalf("mode %s: scores not descending: %v", mode.want, pr.Scores)
			}
		}
	}
}

func TestPredictDirectPathWithoutBatching(t *testing.T) {
	ts := startServer(t, serverOptions{BatchWindow: 0})
	code, pr := postPredict(t, ts.URL, `{"indices":[2,5],"values":[1,1],"k":4}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(pr.IDs) != 4 || pr.BatchSize != 1 {
		t.Fatalf("got %d ids, batch %d; want 4 ids, batch 1", len(pr.IDs), pr.BatchSize)
	}
}

func TestPredictValidation(t *testing.T) {
	ts := startServer(t, serverOptions{BatchWindow: time.Millisecond})
	for name, body := range map[string]string{
		"mismatched":   `{"indices":[1,2],"values":[1.0]}`,
		"empty":        `{"indices":[],"values":[]}`,
		"out of range": `{"indices":[9999],"values":[1.0]}`,
		"not json":     `nope`,
	} {
		code, _ := postPredict(t, ts.URL, body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
}

// TestConcurrentPredictMicroBatches hammers the server with parallel
// requests in both modes and checks that micro-batching actually grouped
// some of them while every reply stays well-formed.
func TestConcurrentPredictMicroBatches(t *testing.T) {
	ts := startServer(t, serverOptions{BatchWindow: 5 * time.Millisecond, BatchMax: 32})
	const clients = 24
	var wg sync.WaitGroup
	sawBatch := make([]int, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"indices":[%d,%d],"values":[1.0,0.5],"k":2,"sampled":%v}`,
				c%64, (c*7)%64, c%2 == 0)
			code, pr := postPredict(t, ts.URL, body)
			if code != http.StatusOK {
				t.Errorf("client %d: status %d", c, code)
				return
			}
			if len(pr.IDs) != 2 {
				t.Errorf("client %d: %d ids", c, len(pr.IDs))
			}
			sawBatch[c] = pr.BatchSize
		}(c)
	}
	wg.Wait()
	maxBatch := 0
	for _, b := range sawBatch {
		if b > maxBatch {
			maxBatch = b
		}
	}
	if maxBatch < 2 {
		t.Logf("no request shared a micro-batch (max batch size %d) — timing-dependent, not fatal", maxBatch)
	}
}

func TestHealthzAndStats(t *testing.T) {
	ts := startServer(t, serverOptions{BatchWindow: time.Millisecond})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" || health["classes"] != float64(256) {
		t.Fatalf("healthz = %v", health)
	}

	for i := 0; i < 5; i++ {
		if code, _ := postPredict(t, ts.URL, `{"indices":[3],"values":[1.0]}`); code != http.StatusOK {
			t.Fatalf("warmup request %d: status %d", i, code)
		}
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap statsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Requests != 5 {
		t.Fatalf("stats requests = %d, want 5", snap.Requests)
	}
	if snap.P50Millis < 0 || snap.P99Millis < snap.P50Millis {
		t.Fatalf("implausible percentiles: %+v", snap)
	}
}
