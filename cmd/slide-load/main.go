// Command slide-load is an open-loop load generator for slide-serve: the
// client half of the serving stack's tail-latency engineering.
//
// It drives Poisson arrivals at one or more offered rates against a
// running server, with a configurable mix of exact, sampled,
// seeded-sampled and bulk-batch requests whose inputs are drawn from a
// dataset sample with Zipf-skewed popularity, and reports per-rate
// client-observed latency percentiles (p50/p90/p99/p999), shed /
// deadline-exceeded / error / drop counts, cache hits and goodput —
// the goodput-vs-offered-load curve that shows where the server
// saturates and whether admission control holds the tail there.
//
// Usage:
//
//	slide-serve -model model.slide -addr :8080 -latency-budget 25ms -cache-size 4096
//	slide-load -url http://localhost:8080 -qps 500 -duration 10s
//	slide-load -url http://localhost:8080 -sweep 250,500,1000,2000 \
//	  -mix exact=0.4,sampled=0.2,seeded=0.3,batch=0.1 -zipf 1.1 \
//	  -deadline 50 -json sweep.json
//
// The key set is generated from the same synthetic dataset profiles
// slide-train uses (-profile/-scale/-keys), so inputs have realistic
// sparsity; the server's input dimension is checked via /healthz before
// any load is offered.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	slide "repro"
	"repro/dataset"
	"repro/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slide-load: ")
	var (
		url       = flag.String("url", "http://127.0.0.1:8080", "base URL of the slide-serve instance under test")
		qps       = flag.Float64("qps", 500, "offered request rate (ignored when -sweep is set)")
		sweep     = flag.String("sweep", "", "comma-separated list of offered rates to run in sequence, e.g. 250,500,1000,2000")
		duration  = flag.Duration("duration", 10*time.Second, "duration of each run's arrival schedule")
		mixSpec   = flag.String("mix", "exact=0.5,sampled=0.2,seeded=0.2,batch=0.1", "traffic mix as weight assignments")
		zipfS     = flag.Float64("zipf", 1.1, "Zipf skew exponent for key popularity (0 = uniform)")
		numKeys   = flag.Int("keys", 256, "number of distinct input vectors drawn from the dataset sample")
		profile   = flag.String("profile", "delicious", "dataset profile for key generation: delicious or amazon")
		scale     = flag.Float64("scale", 0.004, "dataset profile scale in (0, 1] for key generation")
		seed      = flag.Uint64("seed", 1, "seed for the arrival schedule, mode choices and key draws")
		k         = flag.Int("k", 5, "top-k each request asks for")
		batchSize = flag.Int("batch-size", 8, "vectors per /predict/batch request")
		deadline  = flag.Float64("deadline", 0, "per-request deadline_ms attached to every request (0 = none)")
		timeout   = flag.Duration("timeout", 10*time.Second, "client HTTP timeout per request")
		inflight  = flag.Int("inflight", 512, "client cap on concurrent outstanding requests")
		jsonOut   = flag.String("json", "", "write the sweep results as JSON to this file")
	)
	flag.Parse()

	mix, err := parseMix(*mixSpec)
	if err != nil {
		log.Fatal(err)
	}
	rates, err := parseSweep(*sweep, *qps)
	if err != nil {
		log.Fatal(err)
	}

	keys, dim, err := makeKeys(*profile, *scale, *numKeys, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := checkServer(*url, dim); err != nil {
		log.Fatal(err)
	}
	log.Printf("%d keys from %s@%g (input dim %d), mix %s, zipf %.2f",
		len(keys), *profile, *scale, dim, *mixSpec, *zipfS)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	type row struct {
		Result loadgen.Result      `json:"result"`
		Server loadgen.ServerStats `json:"server_stats"`
		// GC differences the server's runtime gauges across this rate's
		// run: collections, allocations and bytes per served request.
		GC loadgen.GCDelta `json:"gc"`
	}
	var rows []row
	fmt.Printf("%10s %10s %10s %8s %8s %8s %8s %9s %9s %9s %9s %10s\n",
		"offered", "goodput", "ok", "shed", "dl", "err", "hits", "p50ms", "p99ms", "p999ms",
		"gcP99ms", "allocs/req")
	for _, rate := range rates {
		before, err := loadgen.FetchStats(*url)
		if err != nil {
			log.Printf("warning: %v", err)
		}
		res, err := loadgen.Run(ctx, loadgen.Config{
			BaseURL:     *url,
			QPS:         rate,
			Duration:    *duration,
			Mix:         mix,
			Keys:        keys,
			ZipfS:       *zipfS,
			K:           *k,
			BatchSize:   *batchSize,
			DeadlineMs:  *deadline,
			Timeout:     *timeout,
			Seed:        *seed,
			MaxInFlight: *inflight,
		})
		if err != nil {
			log.Fatal(err)
		}
		st, err := loadgen.FetchStats(*url)
		if err != nil {
			log.Printf("warning: %v", err)
		}
		gc := loadgen.GCDeltaBetween(before, st)
		fmt.Printf("%10.0f %10.1f %10d %8d %8d %8d %8d %9.2f %9.2f %9.2f %9.3f %10.1f\n",
			res.OfferedQPS, res.GoodputQPS, res.OK, res.Shed, res.DeadlineExceeded,
			res.Errors, res.CacheHits, res.P50Millis, res.P99Millis, res.P999Millis,
			st.GCPauseP99Millis, gc.AllocsPerRequest)
		rows = append(rows, row{Result: res, Server: st, GC: gc})
		if ctx.Err() != nil {
			log.Print("interrupted; stopping sweep")
			break
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *jsonOut)
	}
}

// parseMix reads "exact=0.5,sampled=0.2,..." into a Mix.
func parseMix(spec string) (loadgen.Mix, error) {
	var m loadgen.Mix
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("bad mix component %q (want name=weight)", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad mix weight %q", part)
		}
		switch strings.TrimSpace(name) {
		case "exact":
			m.Exact = w
		case "sampled":
			m.Sampled = w
		case "seeded":
			m.Seeded = w
		case "batch":
			m.Batch = w
		default:
			return m, fmt.Errorf("unknown mix component %q", name)
		}
	}
	if m.Exact+m.Sampled+m.Seeded+m.Batch == 0 {
		return m, fmt.Errorf("mix %q has zero total weight", spec)
	}
	return m, nil
}

// parseSweep resolves the list of offered rates: -sweep when set, the
// single -qps otherwise.
func parseSweep(spec string, single float64) ([]float64, error) {
	if spec == "" {
		return []float64{single}, nil
	}
	var rates []float64
	for _, part := range strings.Split(spec, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad sweep rate %q", part)
		}
		rates = append(rates, r)
	}
	return rates, nil
}

// makeKeys draws the key pool from a synthetic dataset profile's test
// split — realistic sparsity without needing a file on disk.
func makeKeys(profile string, scale float64, n int, seed uint64) ([]slide.Vector, int, error) {
	var p dataset.Profile
	switch profile {
	case "delicious":
		p = dataset.Delicious200K(scale, seed)
	case "amazon":
		p = dataset.Amazon670K(scale, seed)
	default:
		return nil, 0, fmt.Errorf("unknown profile %q (want delicious or amazon)", profile)
	}
	ds, err := dataset.Generate(p)
	if err != nil {
		return nil, 0, fmt.Errorf("generating key dataset: %w", err)
	}
	pool := ds.Test
	if len(pool) == 0 {
		pool = ds.Train
	}
	if len(pool) == 0 {
		return nil, 0, fmt.Errorf("profile %s@%g produced no examples", profile, scale)
	}
	if n > len(pool) {
		n = len(pool)
	}
	keys := make([]slide.Vector, n)
	for i := range keys {
		keys[i] = pool[i].Features
	}
	return keys, keys[0].Dim, nil
}

// checkServer verifies the target is alive and its model's input
// dimension matches the generated keys before offering any load.
func checkServer(url string, dim int) error {
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		return fmt.Errorf("server not reachable: %w", err)
	}
	defer resp.Body.Close()
	var health struct {
		Status   string `json:"status"`
		InputDim int    `json:"input_dim"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return fmt.Errorf("decoding /healthz: %w", err)
	}
	if health.Status != "ok" {
		return fmt.Errorf("server unhealthy: %q", health.Status)
	}
	if health.InputDim != dim {
		return fmt.Errorf("server input dim %d != key dim %d (use matching -profile/-scale)",
			health.InputDim, dim)
	}
	return nil
}
