// Command slide-data generates synthetic extreme-classification datasets
// in the XC repository format and reports their Table 1 statistics.
//
// Usage:
//
//	slide-data -profile delicious -scale 0.01                 # stats only
//	slide-data -profile amazon -scale 0.01 -out data/amazon   # writes train/test files
//	slide-data -inspect Train.txt                             # stats of an XC file
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slide-data: ")
	var (
		profile = flag.String("profile", "delicious", "synthetic profile: delicious|amazon")
		scale   = flag.Float64("scale", 0.01, "profile scale in (0,1]")
		seed    = flag.Uint64("seed", 42, "random seed")
		out     = flag.String("out", "", "output directory for train.txt/test.txt (optional)")
		inspect = flag.String("inspect", "", "inspect an existing XC-format file instead")
	)
	flag.Parse()

	if *inspect != "" {
		ds, err := dataset.LoadXCFile(filepath.Base(*inspect), *inspect)
		if err != nil {
			log.Fatal(err)
		}
		printStats(ds.Stats())
		return
	}

	var p dataset.Profile
	switch *profile {
	case "delicious":
		p = dataset.Delicious200K(*scale, *seed)
	case "amazon":
		p = dataset.Amazon670K(*scale, *seed)
	default:
		log.Fatalf("unknown -profile %q (want delicious|amazon)", *profile)
	}
	ds, err := dataset.Generate(p)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		log.Fatal(err)
	}
	printStats(ds.Stats())

	if *out == "" {
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, part := range []struct {
		name string
		exs  []dataset.Example
	}{{"train.txt", ds.Train}, {"test.txt", ds.Test}} {
		path := filepath.Join(*out, part.name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := dataset.WriteXC(f, part.exs, ds.InputDim, ds.NumClasses); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d examples)\n", path, len(part.exs))
	}
}

func printStats(s dataset.Stats) {
	fmt.Printf("name:             %s\n", s.Name)
	fmt.Printf("feature dim:      %d\n", s.FeatureDim)
	fmt.Printf("feature sparsity: %.4f%%\n", s.FeatureSparsity*100)
	fmt.Printf("label dim:        %d\n", s.LabelDim)
	fmt.Printf("train size:       %d\n", s.TrainSize)
	fmt.Printf("test size:        %d\n", s.TestSize)
	fmt.Printf("avg features:     %.1f\n", s.AvgFeatures)
	fmt.Printf("avg labels:       %.1f\n", s.AvgLabels)
}
