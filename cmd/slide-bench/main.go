// Command slide-bench reproduces the paper's tables and figures.
//
// Usage:
//
//	slide-bench -list
//	slide-bench -exp fig5 -scale small
//	slide-bench -exp all -scale medium -out results/
//
// Each experiment prints the paper-shaped rows/series as text; -out also
// writes CSV files for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list) or 'all'")
		scale    = flag.String("scale", "small", "workload scale: tiny|small|medium|paper")
		seed     = flag.Uint64("seed", 42, "random seed")
		threads  = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		sweep    = flag.String("sweep", "", "comma-separated thread counts for scaling experiments")
		out      = flag.String("out", "", "directory for CSV output (optional)")
		jsonPath = flag.String("json", "", "file for a JSON report of the experiment (single -exp only); records perf trajectories like BENCH_kernels.json")
		list     = flag.Bool("list", false, "list experiments and exit")
		quiet    = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-13s %s\n", e.ID, e.Title)
		}
		if !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
		}
		return
	}

	opts := harness.Options{
		Scale:   *scale,
		Seed:    *seed,
		Threads: *threads,
		OutDir:  *out,
		Log:     os.Stderr,
	}
	if *quiet {
		opts.Log = nil
	}
	if *sweep != "" {
		for _, tok := range strings.Split(*sweep, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v <= 0 {
				fatalf("bad -sweep value %q", tok)
			}
			opts.ThreadSweep = append(opts.ThreadSweep, v)
		}
	}

	if *exp == "all" {
		if *jsonPath != "" {
			fatalf("-json needs a single -exp, not 'all'")
		}
		if err := harness.RunAll(opts, os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}
	e, ok := harness.Get(*exp)
	if !ok {
		fatalf("unknown experiment %q; use -list", *exp)
	}
	rep, err := e.Run(opts)
	if err != nil {
		fatalf("%s: %v", e.ID, err)
	}
	rep.WriteText(os.Stdout)
	if *out != "" {
		if err := rep.WriteCSV(*out); err != nil {
			fatalf("writing CSV: %v", err)
		}
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatalf("creating JSON report: %v", err)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fatalf("writing JSON report: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing JSON report: %v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "slide-bench: "+format+"\n", args...)
	os.Exit(1)
}
