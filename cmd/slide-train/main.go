// Command slide-train trains a SLIDE network (or a baseline) on a
// synthetic profile or an Extreme Classification Repository file.
//
// Usage:
//
//	slide-train -profile delicious -scale 0.01 -epochs 4
//	slide-train -train Train.txt -test Test.txt -hash dwta -k 8 -l 50 -beta 3000
//	slide-train -profile amazon -scale 0.01 -system dense
//	slide-train -profile delicious -epochs 4 -save model.slide   # then: slide-serve -model model.slide
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/baselines"
	"repro/dataset"
	"repro/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slide-train: ")
	var (
		profile   = flag.String("profile", "delicious", "synthetic profile: delicious|amazon (ignored when -train is set)")
		scale     = flag.Float64("scale", 0.01, "synthetic profile scale in (0,1]")
		trainPath = flag.String("train", "", "XC-format training file (optional)")
		testPath  = flag.String("test", "", "XC-format test file (optional)")
		system    = flag.String("system", "slide", "system to train: slide|dense")
		hidden    = flag.Int("hidden", 128, "hidden layer width")
		hash      = flag.String("hash", "simhash", "LSH family: simhash|wta|dwta|doph")
		k         = flag.Int("k", 6, "hash codes per table (K)")
		l         = flag.Int("l", 20, "hash tables (L)")
		rangePow  = flag.Int("rangepow", 0, "log2 buckets per table (0 = auto)")
		beta      = flag.Int("beta", 0, "target active neurons (0 = classes/20)")
		strategy  = flag.String("strategy", "vanilla", "sampling: vanilla|topk|hard-threshold")
		policy    = flag.String("policy", "reservoir", "bucket policy: reservoir|fifo")
		update    = flag.String("update", "hogwild", "update mode: hogwild|atomic|batch-sync")
		lr        = flag.Float64("lr", 0.001, "Adam learning rate")
		batch     = flag.Int("batch", 128, "batch size")
		epochs    = flag.Int("epochs", 3, "training epochs")
		threads   = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		evalEvery = flag.Int64("eval-every", 50, "evaluate every N iterations")
		seed      = flag.Uint64("seed", 42, "random seed")
		savePath  = flag.String("save", "", "write the trained model (self-describing v2 format) to this path")
	)
	flag.Parse()

	ds := loadData(*profile, *scale, *trainPath, *testPath, *seed)
	st := ds.Stats()
	fmt.Printf("dataset %s: %d features, %d classes, %d train / %d test (%.1f nnz, %.1f labels per example)\n",
		st.Name, st.FeatureDim, st.LabelDim, st.TrainSize, st.TestSize, st.AvgFeatures, st.AvgLabels)

	onEval := func(p metrics.Point) {
		fmt.Printf("iter %6d  t=%8.2fs  loss=%.4f  P@1=%.4f\n", p.Iter, p.Seconds, p.Loss, p.Value)
	}

	switch *system {
	case "dense":
		if *savePath != "" {
			log.Fatal("-save only supports -system slide")
		}
		net, err := baselines.NewDense(baselines.DenseConfig{
			InputDim: ds.InputDim, Hidden: []int{*hidden}, Classes: ds.NumClasses,
			Seed: *seed, Adam: slide.NewAdam(float32(*lr)),
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := net.Train(ds.Train, ds.Test, baselines.DenseTrainConfig{
			BatchSize: *batch, Epochs: *epochs, Threads: *threads,
			EvalEvery: *evalEvery, Seed: *seed, OnEval: onEval,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("done: P@1=%.4f in %.1fs (%d iterations, utilization %.0f%%)\n",
			res.FinalAcc, res.Seconds, res.Iterations, res.Utilization*100)
	case "slide":
		hk, err := slide.ParseHash(*hash)
		if err != nil {
			log.Fatal(err)
		}
		sk, err := slide.ParseStrategy(*strategy)
		if err != nil {
			log.Fatal(err)
		}
		pk, err := slide.ParsePolicy(*policy)
		if err != nil {
			log.Fatal(err)
		}
		um, err := slide.ParseUpdateMode(*update)
		if err != nil {
			log.Fatal(err)
		}
		b := *beta
		if b == 0 {
			b = ds.NumClasses / 20
		}
		net, err := slide.New(slide.Config{
			InputDim:   ds.InputDim,
			Seed:       *seed,
			Adam:       slide.NewAdam(float32(*lr)),
			UpdateMode: um,
			Layers: []slide.LayerConfig{
				{Size: *hidden, Activation: slide.ActReLU},
				{
					Size: ds.NumClasses, Activation: slide.ActSoftmax,
					Sampled: true, Hash: hk, K: *k, L: *l, RangePow: *rangePow,
					Policy: pk, Strategy: sk, Beta: b, MinCount: 2,
				},
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := net.Train(ds.Train, ds.Test, slide.TrainConfig{
			BatchSize: *batch, Epochs: *epochs, Threads: *threads,
			EvalEvery: *evalEvery, Seed: *seed, OnEval: onEval,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("done: P@1=%.4f in %.1fs (%d iterations, %d rebuilds, %.0f mean active of %d, utilization %.0f%%)\n",
			res.FinalAcc, res.Seconds, res.Iterations, res.Rebuilds,
			res.MeanActive[1], ds.NumClasses, res.Utilization*100)
		if *savePath != "" {
			f, err := os.Create(*savePath)
			if err != nil {
				log.Fatal(err)
			}
			if err := net.SaveModel(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("saved model to %s (serve it with: slide-serve -model %s)\n", *savePath, *savePath)
		}
	default:
		log.Fatalf("unknown -system %q (want slide|dense)", *system)
	}
}

func loadData(profile string, scale float64, trainPath, testPath string, seed uint64) *dataset.Dataset {
	if trainPath != "" {
		ds, err := dataset.LoadXCFile("xc-data", trainPath)
		if err != nil {
			log.Fatal(err)
		}
		if testPath != "" {
			tds, err := dataset.LoadXCFile("xc-test", testPath)
			if err != nil {
				log.Fatal(err)
			}
			ds.Test = tds.Train
		}
		if err := ds.Validate(); err != nil {
			log.Fatal(err)
		}
		return ds
	}
	var p dataset.Profile
	switch profile {
	case "delicious":
		p = dataset.Delicious200K(scale, seed)
	case "amazon":
		p = dataset.Amazon670K(scale, seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown -profile %q (want delicious|amazon)\n", profile)
		os.Exit(1)
	}
	ds, err := dataset.Generate(p)
	if err != nil {
		log.Fatal(err)
	}
	return ds
}
