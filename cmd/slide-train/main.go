// Command slide-train trains a SLIDE network (or a baseline) on a
// synthetic profile or an Extreme Classification Repository file.
//
// Usage:
//
//	slide-train -profile delicious -scale 0.01 -epochs 4
//	slide-train -train Train.txt -test Test.txt -hash dwta -k 8 -l 50 -beta 3000
//	slide-train -profile amazon -scale 0.01 -system dense
//	slide-train -profile delicious -epochs 4 -save model.slide   # then: slide-serve -model model.slide
//
// Data-parallel training (§6: sparse-gradient exchange between replicas):
//
//	slide-train -profile delicious -shards 4                     # 4 in-process replicas
//	slide-train -shards 2 -dist :7070 -rank 0 &                  # process 0 hosts the exchange
//	slide-train -shards 2 -dist localhost:7070 -rank 1           # process 1 dials in
//
// Each shard trains on a round-robin slice of the data and merges the
// other shards' sparse gradient deltas at every batch boundary, so all
// replicas hold identical weights; rank 0 reports and saves the model.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/baselines"
	"repro/dataset"
	"repro/dist"
	"repro/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slide-train: ")
	var (
		profile   = flag.String("profile", "delicious", "synthetic profile: delicious|amazon (ignored when -train is set)")
		scale     = flag.Float64("scale", 0.01, "synthetic profile scale in (0,1]")
		trainPath = flag.String("train", "", "XC-format training file (optional)")
		testPath  = flag.String("test", "", "XC-format test file (optional)")
		system    = flag.String("system", "slide", "system to train: slide|dense")
		hidden    = flag.Int("hidden", 128, "hidden layer width")
		hash      = flag.String("hash", "simhash", "LSH family: simhash|wta|dwta|doph")
		k         = flag.Int("k", 6, "hash codes per table (K)")
		l         = flag.Int("l", 20, "hash tables (L)")
		rangePow  = flag.Int("rangepow", 0, "log2 buckets per table (0 = auto)")
		beta      = flag.Int("beta", 0, "target active neurons (0 = classes/20)")
		strategy  = flag.String("strategy", "vanilla", "sampling: vanilla|topk|hard-threshold")
		policy    = flag.String("policy", "reservoir", "bucket policy: reservoir|fifo")
		update    = flag.String("update", "hogwild", "update mode: hogwild|atomic|batch-sync")
		lr        = flag.Float64("lr", 0.001, "Adam learning rate")
		batch     = flag.Int("batch", 128, "batch size (per shard)")
		epochs    = flag.Int("epochs", 3, "training epochs")
		threads   = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS, split across in-process shards)")
		evalEvery = flag.Int64("eval-every", 50, "evaluate every N iterations")
		seed      = flag.Uint64("seed", 42, "random seed")
		savePath  = flag.String("save", "", "write the trained model (self-describing v2 format) to this path")
		shards    = flag.Int("shards", 1, "data-parallel replicas exchanging sparse gradient deltas per batch")
		distAddr  = flag.String("dist", "", "TCP exchange address for multi-process sharding (rank 0 listens, others dial)")
		rank      = flag.Int("rank", 0, "this process's replica rank when -dist is set")
		compress  = flag.String("compress", "fp32", "delta compression: fp32|bf16|topk:<frac> (topk keeps the largest-|g| fraction with error feedback)")
		overlap   = flag.Bool("overlap", false, "hide the delta exchange behind the next batch's forward pass (one-step-stale forwards)")
	)
	flag.Parse()

	ds := loadData(*profile, *scale, *trainPath, *testPath, *seed)
	st := ds.Stats()
	fmt.Printf("dataset %s: %d features, %d classes, %d train / %d test (%.1f nnz, %.1f labels per example)\n",
		st.Name, st.FeatureDim, st.LabelDim, st.TrainSize, st.TestSize, st.AvgFeatures, st.AvgLabels)

	onEval := func(p metrics.Point) {
		fmt.Printf("iter %6d  t=%8.2fs  loss=%.4f  P@1=%.4f\n", p.Iter, p.Seconds, p.Loss, p.Value)
	}

	switch *system {
	case "dense":
		if *savePath != "" {
			log.Fatal("-save only supports -system slide")
		}
		if *shards > 1 || *distAddr != "" {
			log.Fatal("-shards/-dist only support -system slide")
		}
		net, err := baselines.NewDense(baselines.DenseConfig{
			InputDim: ds.InputDim, Hidden: []int{*hidden}, Classes: ds.NumClasses,
			Seed: *seed, Adam: slide.NewAdam(float32(*lr)),
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := net.Train(ds.Train, ds.Test, baselines.DenseTrainConfig{
			BatchSize: *batch, Epochs: *epochs, Threads: *threads,
			EvalEvery: *evalEvery, Seed: *seed, OnEval: onEval,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("done: P@1=%.4f in %.1fs (%d iterations, utilization %.0f%%)\n",
			res.FinalAcc, res.Seconds, res.Iterations, res.Utilization*100)
	case "slide":
		hk, err := slide.ParseHash(*hash)
		if err != nil {
			log.Fatal(err)
		}
		sk, err := slide.ParseStrategy(*strategy)
		if err != nil {
			log.Fatal(err)
		}
		pk, err := slide.ParsePolicy(*policy)
		if err != nil {
			log.Fatal(err)
		}
		um, err := slide.ParseUpdateMode(*update)
		if err != nil {
			log.Fatal(err)
		}
		b := *beta
		if b == 0 {
			b = ds.NumClasses / 20
		}
		cfg := slide.Config{
			InputDim:   ds.InputDim,
			Seed:       *seed,
			Adam:       slide.NewAdam(float32(*lr)),
			UpdateMode: um,
			Layers: []slide.LayerConfig{
				{Size: *hidden, Activation: slide.ActReLU},
				{
					Size: ds.NumClasses, Activation: slide.ActSoftmax,
					Sampled: true, Hash: hk, K: *k, L: *l, RangePow: *rangePow,
					Policy: pk, Strategy: sk, Beta: b, MinCount: 2,
				},
			},
		}
		cm, frac, err := slide.ParseCompression(*compress)
		if err != nil {
			log.Fatal(err)
		}
		if (cm != slide.CompressFP32 || *overlap) && *shards <= 1 && *distAddr == "" {
			log.Fatal("-compress/-overlap need sharded training (-shards > 1 or -dist)")
		}
		tc := slide.TrainConfig{
			BatchSize: *batch, Epochs: *epochs, Threads: *threads,
			EvalEvery: *evalEvery, Seed: *seed, OnEval: onEval,
			Compress: cm, TopKFrac: frac, OverlapExchange: *overlap,
		}

		var net *slide.Network
		switch {
		case *distAddr != "":
			if *savePath != "" && *rank != 0 {
				log.Printf("warning: -save is ignored on rank %d — rank 0 saves the model", *rank)
			}
			net = trainTCPShard(ds, cfg, tc, *distAddr, *rank, *shards)
		case *shards > 1:
			net = trainInProcessShards(ds, cfg, tc, *shards)
		default:
			if net, err = slide.New(cfg); err != nil {
				log.Fatal(err)
			}
			res, err := net.Train(ds.Train, ds.Test, tc)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("done: P@1=%.4f in %.1fs (%d iterations, %d rebuilds, %.0f mean active of %d, utilization %.0f%%)\n",
				res.FinalAcc, res.Seconds, res.Iterations, res.Rebuilds,
				res.MeanActive[1], ds.NumClasses, res.Utilization*100)
		}
		if *savePath != "" && net != nil {
			saveModel(net, *savePath)
		}
	default:
		log.Fatalf("unknown -system %q (want slide|dense)", *system)
	}
}

// trainInProcessShards runs N replicas in this process over the mesh
// all-reduce and returns the trained model (all replicas are identical).
func trainInProcessShards(ds *dataset.Dataset, cfg slide.Config, tc slide.TrainConfig, shards int) *slide.Network {
	fmt.Printf("sharded training: %d in-process replicas, sparse-delta all-reduce per batch\n", shards)
	res, err := dist.TrainSharded(context.Background(), cfg, ds.Train, ds.Test, tc, shards)
	if err != nil {
		log.Fatal(err)
	}
	r0 := res.Results[0]
	fmt.Printf("done: P@1=%.4f in %.1fs (%d iterations, %d rebuilds, %.0f mean active of %d)\n",
		r0.FinalAcc, r0.Seconds, r0.Iterations, r0.Rebuilds, r0.MeanActive[1], ds.NumClasses)
	reportExchange(res.Nets[0], r0, res.Stats[0])
	return res.Nets[0]
}

// trainTCPShard runs this process as one rank of a TCP-sharded group.
// Rank 0 hosts the exchange; every rank trains its round-robin shard on
// the same schedule (derived from the smallest shard, as TrainSharded
// does in process).
func trainTCPShard(ds *dataset.Dataset, cfg slide.Config, tc slide.TrainConfig, addr string, rank, shards int) *slide.Network {
	if shards < 2 {
		log.Fatalf("-dist needs -shards >= 2, got %d", shards)
	}
	if rank < 0 || rank >= shards {
		log.Fatalf("-rank %d out of range [0,%d)", rank, shards)
	}
	if len(ds.Train) < shards {
		log.Fatalf("%d training examples cannot feed %d shards", len(ds.Train), shards)
	}
	net, err := slide.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	codec := dist.NewCodecFormat(net, dist.FormatFor(tc.Compress))

	// The shared schedule derivation keeps every process on the same
	// batch size and iteration count — ranks on different schedules
	// would desync the exchange barrier — and the digest lets the
	// handshake refuse a rank launched with different flags (including a
	// mismatched -compress) outright.
	shard := dist.ShardExamples(ds.Train, rank, shards)
	baseSeed := tc.Seed
	tc = dist.ShardTrainConfig(tc, len(ds.Train), rank, shards)
	digest := dist.ScheduleDigest(cfg, tc, baseSeed)

	type statser interface {
		Stats() dist.ExchangeStats
	}
	var ex interface {
		slide.DeltaExchanger
		statser
	}
	if rank == 0 {
		srv, err := dist.ListenExchanger(addr, shards, codec, digest)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("sharded training: rank 0/%d hosting exchange on %s, waiting for %d peers\n",
			shards, srv.Addr(), shards-1)
		ex = srv
	} else {
		cli, err := dist.DialExchanger(addr, rank, shards, codec, digest)
		if err != nil {
			log.Fatal(err)
		}
		defer cli.Close()
		fmt.Printf("sharded training: rank %d/%d joined exchange at %s\n", rank, shards, addr)
		ex = cli
	}
	tc.Exchanger = ex

	res, err := net.Train(shard, ds.Test, tc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done (rank %d): P@1=%.4f in %.1fs (%d iterations, %d rebuilds)\n",
		rank, res.FinalAcc, res.Seconds, res.Iterations, res.Rebuilds)
	st := ex.Stats()
	if rank == 0 {
		// The hub's counters aggregate all shards-1 links and point the
		// other way (its BytesOut is the merged broadcast the clients
		// *receive*, its BytesIn their uploads); normalize to per-link
		// means and swap so every rank prints comparable per-replica
		// figures: "sent" ≈ one replica's sparse upload, "received" ≈
		// the merged delta.
		st.BytesOut, st.BytesIn = st.BytesIn/int64(shards-1), st.BytesOut/int64(shards-1)
	}
	reportExchange(net, res, st)
	if rank != 0 {
		return nil // rank 0 owns reporting artifacts like -save
	}
	return net
}

// reportExchange prints the measured sparse-exchange payload against the
// dense parameter synchronization it replaces (§6).
func reportExchange(net *slide.Network, res *slide.TrainResult, st dist.ExchangeStats) {
	if st.Rounds == 0 {
		return
	}
	sent, recv := st.BytesOutPerRound(), st.BytesInPerRound()
	dense := float64(net.NumParams()) * 4
	fmt.Printf("exchange: %.1f KiB/iter sent, %.1f KiB/iter received (dense sync %.1f MiB/iter, %.0fx reduction; %.0f%% of train time blocked)\n",
		sent/1024, recv/1024, dense/(1<<20), dense/max(min(sent, recv), 1),
		100*float64(res.ExchangeNS)/1e9/max(res.Seconds, 1e-9))
	if res.ExchangeHiddenNS > 0 {
		fmt.Printf("overlap: %.2fs of exchange hidden behind forward passes (%.2fs still blocking)\n",
			float64(res.ExchangeHiddenNS)/1e9, float64(res.ExchangeNS)/1e9)
	}
}

func saveModel(net *slide.Network, path string) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.SaveModel(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved model to %s (serve it with: slide-serve -model %s)\n", path, path)
}

func loadData(profile string, scale float64, trainPath, testPath string, seed uint64) *dataset.Dataset {
	if trainPath != "" {
		ds, err := dataset.LoadXCFile("xc-data", trainPath)
		if err != nil {
			log.Fatal(err)
		}
		if testPath != "" {
			tds, err := dataset.LoadXCFile("xc-test", testPath)
			if err != nil {
				log.Fatal(err)
			}
			ds.Test = tds.Train
		}
		if err := ds.Validate(); err != nil {
			log.Fatal(err)
		}
		return ds
	}
	var p dataset.Profile
	switch profile {
	case "delicious":
		p = dataset.Delicious200K(scale, seed)
	case "amazon":
		p = dataset.Amazon670K(scale, seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown -profile %q (want delicious|amazon)\n", profile)
		os.Exit(1)
	}
	ds, err := dataset.Generate(p)
	if err != nil {
		log.Fatal(err)
	}
	return ds
}
