// Package slide is a Go implementation of SLIDE (Sub-LInear Deep learning
// Engine) from "SLIDE: In Defense of Smart Algorithms over Hardware
// Acceleration for Large-Scale Deep Learning Systems" (Chen et al., MLSys
// 2020).
//
// SLIDE trains large fully connected networks — extreme multi-label
// classifiers whose wide softmax output layer dominates the compute — by
// replacing the full forward/backward pass with adaptive sparsity: each
// layer keeps locality-sensitive hash tables over its neurons' weight
// vectors, the layer input retrieves a small set of active neurons per
// example, and only those neurons' activations, gradients and weights are
// touched. Batch elements run on parallel goroutines with HOGWILD-style
// asynchronous weight updates.
//
// # Quick start
//
//	ds, _ := dataset.Generate(dataset.Delicious200K(0.01, 42))   // or load real XC data
//	net, _ := slide.New(slide.Config{
//	    InputDim: ds.InputDim,
//	    Layers: []slide.LayerConfig{
//	        {Size: 128, Activation: slide.ActReLU},
//	        {
//	            Size: ds.NumClasses, Activation: slide.ActSoftmax,
//	            Sampled: true, Hash: slide.HashSimhash, K: 9, L: 50,
//	            Strategy: slide.StrategyVanilla, Beta: 1024,
//	        },
//	    },
//	    Seed: 42,
//	})
//	res, _ := net.Train(ds.Train, ds.Test, slide.TrainConfig{Epochs: 3})
//	fmt.Printf("P@1 = %.3f in %.1fs\n", res.FinalAcc, res.Seconds)
//
// The subpackages under internal implement the substrates (LSH families,
// hash tables, sampling strategies, optimizers, baselines, datasets,
// experiment harness); this package re-exports the stable public surface.
package slide

import (
	"io"

	"repro/internal/core"
	"repro/internal/hashtable"
	"repro/internal/lsh"
	"repro/internal/optim"
	"repro/internal/sampling"
	"repro/internal/sparse"
)

// Network is a SLIDE network. Scheduled hash-table rebuilds run off the
// training hot path by default: a shadow table set is built on a
// background goroutine from a batch-boundary weight snapshot and
// published with an atomic swap, so training batches block only for the
// snapshot copy (TrainResult.RebuildStallNS accounts it;
// TrainConfig.SyncRebuild restores the stop-the-world path). See
// core.Network for method documentation.
type Network = core.Network

// Predictor is a reusable, concurrency-safe inference session over a
// Network: it pools per-worker element states so steady-state prediction
// allocates no per-call inference state, and fans batches out across
// workers. Hash tables are read through atomically swapped handles, so
// prediction stays valid in the middle of a background table rebuild.
// Construct one with Network.NewPredictor and share it between
// goroutines; see core.Predictor for method documentation (Predict,
// PredictSampled, PredictBatch, PredictBatchSampled, TopKWithScores,
// TopKWithScoresCtx — the context-aware variant servers use to honor
// per-request deadlines).
type Predictor = core.Predictor

// PredictOpts requests deterministic sampled inference: passing
// PredictOpts{Seed: s} to PredictSampled, PredictBatchSampled or
// TopKWithScores reseeds the worker state's sampling streams from s
// before the forward pass, so identical (input, seed) calls return
// bitwise-identical ids and scores regardless of pool state, concurrency
// or prior traffic. Calls without a PredictOpts keep the nondeterministic
// pooled fast path. See core.PredictOpts.
type PredictOpts = core.PredictOpts

// Vector is the sparse input vector type consumed by Predict and carried
// by dataset examples: parallel (index, value) lists over a fixed
// dimension.
type Vector = sparse.Vector

// Config configures a network; LayerConfig configures one layer.
type (
	Config      = core.Config
	LayerConfig = core.LayerConfig
)

// TrainConfig, TrainResult and EvalResult parameterize and report
// training and evaluation runs. Point is one entry of a training curve.
type (
	TrainConfig = core.TrainConfig
	TrainResult = core.TrainResult
	EvalResult  = core.EvalResult
	Point       = core.Point
)

// Adam holds the optimizer hyperparameters for Config.Adam.
type Adam = optim.Adam

// SparseDelta is one batch's gradient in explicit sparse form — per layer
// the touched neuron rows, touched input columns, raw gradient sums and
// bias gradients (§3.1's s² fraction, §6's distributed exchange payload).
// Network.ExtractDelta produces it at a batch boundary and
// Network.ApplyDelta consumes it; repro/dist merges and ships it between
// data-parallel replicas. LayerDelta is one layer's slice of it.
type (
	SparseDelta = core.SparseDelta
	LayerDelta  = core.LayerDelta
)

// DeltaExchanger merges one replica's per-batch SparseDelta with its
// peers' (TrainConfig.Exchanger); repro/dist provides the in-process
// all-reduce and TCP implementations.
type DeltaExchanger = core.DeltaExchanger

// DeltaCompression selects how TrainConfig compresses the exchanged
// per-batch delta: full fp32 values, bf16 values, or top-k magnitude
// selection with error feedback (TrainConfig.TopKFrac).
type DeltaCompression = core.DeltaCompression

// Delta compression modes for TrainConfig.Compress.
const (
	CompressFP32 = core.CompressFP32
	CompressBF16 = core.CompressBF16
	CompressTopK = core.CompressTopK
)

// MergeDeltas sums deltas cell-wise in part order into dst (reused when
// non-nil) — the deterministic merge data-parallel replicas apply.
func MergeDeltas(dst *SparseDelta, parts []*SparseDelta) (*SparseDelta, error) {
	return core.MergeDeltas(dst, parts)
}

// HashKind, StrategyKind, Policy and UpdateMode are the configuration
// enum types behind the Hash*/Strategy*/Policy*/Update* constants.
type (
	HashKind     = lsh.Kind
	StrategyKind = sampling.Kind
	Policy       = hashtable.Policy
	UpdateMode   = optim.UpdateMode
)

// Activation constants for LayerConfig.Activation.
const (
	ActReLU    = core.ActReLU
	ActSoftmax = core.ActSoftmax
	ActLinear  = core.ActLinear
)

// Hash family constants for LayerConfig.Hash (§3.2, App. A of the paper).
const (
	HashSimhash = lsh.KindSimhash
	HashWTA     = lsh.KindWTA
	HashDWTA    = lsh.KindDWTA
	HashDOPH    = lsh.KindDOPH
)

// Sampling strategy constants for LayerConfig.Strategy (§4.1).
const (
	StrategyVanilla       = sampling.KindVanilla
	StrategyTopK          = sampling.KindTopK
	StrategyHardThreshold = sampling.KindHardThreshold
	StrategyRandom        = sampling.KindRandom
)

// Bucket insertion policies for LayerConfig.Policy (§4.2).
const (
	PolicyReservoir = hashtable.PolicyReservoir
	PolicyFIFO      = hashtable.PolicyFIFO
)

// Gradient update modes for Config.UpdateMode (§3.1).
const (
	UpdateHogwild   = optim.ModeHogwild
	UpdateAtomic    = optim.ModeAtomic
	UpdateBatchSync = optim.ModeBatchSync
)

// Memory layouts for Config.Layout (§5.4 optimization ablation).
const (
	LayoutContiguous = core.LayoutContiguous
	LayoutPerNeuron  = core.LayoutPerNeuron
)

// KernelMode is the configuration enum behind the Kernel* constants.
type KernelMode = core.KernelMode

// Kernel engine modes for Config.Kernels: the density-adaptive
// gather/scatter engine (default), the per-neuron reference path, or one
// form pinned for ablation.
const (
	KernelAuto    = core.KernelAuto
	KernelLegacy  = core.KernelLegacy
	KernelGather  = core.KernelGather
	KernelScatter = core.KernelScatter
)

// New constructs an initialized SLIDE network: random weights, K×L hash
// functions per sampled layer, and hash tables populated from the initial
// weight vectors (Algorithm 1, lines 3-6).
func New(cfg Config) (*Network, error) { return core.NewNetwork(cfg) }

// LoadModel reads a self-describing model written by Network.SaveModel:
// the network is reconstructed from the embedded configuration, weights
// are restored, and hash tables rebuilt. This is the serving entry point
// — slide-serve loads models exclusively through it.
func LoadModel(r io.Reader) (*Network, error) { return core.LoadModel(r) }

// NewAdam returns Adam hyperparameters at the given learning rate for
// Config.Adam.
func NewAdam(lr float32) Adam { return optim.NewAdam(lr) }

// NewVector returns a sparse vector over dim copying the given
// components; indices are sorted and validated, duplicates summed.
func NewVector(dim int, idx []int32, val []float32) (Vector, error) {
	return sparse.New(dim, idx, val)
}

// VectorFromDense returns the sparse form of a dense vector.
func VectorFromDense(d []float32) Vector { return sparse.FromDense(d) }

// ParseHash parses a hash family name ("simhash", "wta", "dwta", "doph").
func ParseHash(s string) (HashKind, error) { return lsh.ParseKind(s) }

// ParseStrategy parses a sampling strategy name ("vanilla", "topk",
// "hard-threshold", "random").
func ParseStrategy(s string) (StrategyKind, error) { return sampling.ParseKind(s) }

// ParsePolicy parses a bucket insertion policy name ("reservoir",
// "fifo").
func ParsePolicy(s string) (Policy, error) { return hashtable.ParsePolicy(s) }

// ParseUpdateMode parses a gradient update mode name ("hogwild",
// "atomic", "batch-sync").
func ParseUpdateMode(s string) (UpdateMode, error) { return optim.ParseUpdateMode(s) }

// ParseCompression parses a delta compression spec ("fp32", "bf16",
// "topk:<frac>"); the fraction accompanies CompressTopK as
// TrainConfig.TopKFrac.
func ParseCompression(s string) (DeltaCompression, float64, error) {
	return core.ParseCompression(s)
}
