// Package slide is a Go implementation of SLIDE (Sub-LInear Deep learning
// Engine) from "SLIDE: In Defense of Smart Algorithms over Hardware
// Acceleration for Large-Scale Deep Learning Systems" (Chen et al., MLSys
// 2020).
//
// SLIDE trains large fully connected networks — extreme multi-label
// classifiers whose wide softmax output layer dominates the compute — by
// replacing the full forward/backward pass with adaptive sparsity: each
// layer keeps locality-sensitive hash tables over its neurons' weight
// vectors, the layer input retrieves a small set of active neurons per
// example, and only those neurons' activations, gradients and weights are
// touched. Batch elements run on parallel goroutines with HOGWILD-style
// asynchronous weight updates.
//
// # Quick start
//
//	ds, _ := dataset.Generate(dataset.Delicious200K(0.01, 42))   // or load real XC data
//	net, _ := slide.New(slide.Config{
//	    InputDim: ds.InputDim,
//	    Layers: []slide.LayerConfig{
//	        {Size: 128, Activation: slide.ActReLU},
//	        {
//	            Size: ds.NumClasses, Activation: slide.ActSoftmax,
//	            Sampled: true, Hash: slide.HashSimhash, K: 9, L: 50,
//	            Strategy: slide.StrategyVanilla, Beta: 1024,
//	        },
//	    },
//	    Seed: 42,
//	})
//	res, _ := net.Train(ds.Train, ds.Test, slide.TrainConfig{Epochs: 3})
//	fmt.Printf("P@1 = %.3f in %.1fs\n", res.FinalAcc, res.Seconds)
//
// The subpackages under internal implement the substrates (LSH families,
// hash tables, sampling strategies, optimizers, baselines, datasets,
// experiment harness); this package re-exports the stable public surface.
package slide

import (
	"repro/internal/core"
	"repro/internal/hashtable"
	"repro/internal/lsh"
	"repro/internal/optim"
	"repro/internal/sampling"
)

// Network is a SLIDE network. See core.Network for method documentation.
type Network = core.Network

// Config configures a network; LayerConfig configures one layer.
type (
	Config      = core.Config
	LayerConfig = core.LayerConfig
)

// TrainConfig, TrainResult and EvalResult parameterize and report
// training and evaluation runs.
type (
	TrainConfig = core.TrainConfig
	TrainResult = core.TrainResult
	EvalResult  = core.EvalResult
)

// Activation constants for LayerConfig.Activation.
const (
	ActReLU    = core.ActReLU
	ActSoftmax = core.ActSoftmax
	ActLinear  = core.ActLinear
)

// Hash family constants for LayerConfig.Hash (§3.2, App. A of the paper).
const (
	HashSimhash = lsh.KindSimhash
	HashWTA     = lsh.KindWTA
	HashDWTA    = lsh.KindDWTA
	HashDOPH    = lsh.KindDOPH
)

// Sampling strategy constants for LayerConfig.Strategy (§4.1).
const (
	StrategyVanilla       = sampling.KindVanilla
	StrategyTopK          = sampling.KindTopK
	StrategyHardThreshold = sampling.KindHardThreshold
	StrategyRandom        = sampling.KindRandom
)

// Bucket insertion policies for LayerConfig.Policy (§4.2).
const (
	PolicyReservoir = hashtable.PolicyReservoir
	PolicyFIFO      = hashtable.PolicyFIFO
)

// Gradient update modes for Config.UpdateMode (§3.1).
const (
	UpdateHogwild   = optim.ModeHogwild
	UpdateAtomic    = optim.ModeAtomic
	UpdateBatchSync = optim.ModeBatchSync
)

// Memory layouts for Config.Layout (§5.4 optimization ablation).
const (
	LayoutContiguous = core.LayoutContiguous
	LayoutPerNeuron  = core.LayoutPerNeuron
)

// New constructs an initialized SLIDE network: random weights, K×L hash
// functions per sampled layer, and hash tables populated from the initial
// weight vectors (Algorithm 1, lines 3-6).
func New(cfg Config) (*Network, error) { return core.NewNetwork(cfg) }

// NewAdam returns Adam hyperparameters at the given learning rate for
// Config.Adam.
func NewAdam(lr float32) optim.Adam { return optim.NewAdam(lr) }
