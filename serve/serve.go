// Package serve is the public surface of the slide-serve HTTP front
// end: model serving with micro-batching, atomic engine hot-swap
// (POST /reload, SIGHUP), per-request deadlines, admission control
// against a latency budget, and a generation-keyed response cache.
//
// It re-exports repro/internal/serve so binaries and external consumers
// never import internal packages directly. cmd/slide-serve wraps it in a
// configured http.Server; tests and the experiment harness embed the
// Handler directly via net/http/httptest.
package serve

import (
	slide "repro"
	"repro/internal/serve"
)

// Options configures the serving front end (batching, admission budget,
// response cache, model path).
type Options = serve.Options

// Server owns the swappable serving engine and the micro-batching queue
// in front of it.
type Server = serve.Server

// New builds a Server over an already-loaded network. Close stops its
// micro-batcher; Handler returns its HTTP routing.
func New(net *slide.Network, opts Options) (*Server, error) {
	return serve.New(net, opts)
}
