// Package loadgen is the public surface of the open-loop slide-serve
// load generator: Poisson arrivals at a configured offered rate, a
// configurable exact/sampled/seeded/batch traffic mix over a
// Zipf-skewed key set, and tail-latency + goodput reporting.
//
// It re-exports repro/internal/loadgen so binaries and external
// consumers never import internal packages directly.
package loadgen

import (
	"context"

	"repro/internal/loadgen"
)

// Mix sets the traffic composition as relative weights.
type Mix = loadgen.Mix

// Config parameterizes one load run.
type Config = loadgen.Config

// Result reports one load run (latency percentiles, goodput,
// shed/deadline/error/drop counts, cache hits).
type Result = loadgen.Result

// ServerStats mirrors slide-serve's GET /stats body.
type ServerStats = loadgen.ServerStats

// GCDelta summarizes the server's GC work between two /stats snapshots.
type GCDelta = loadgen.GCDelta

// GCDeltaBetween differences two snapshots bracketing a load phase.
func GCDeltaBetween(before, after ServerStats) GCDelta {
	return loadgen.GCDeltaBetween(before, after)
}

// Run executes one open-loop load run and blocks until every dispatched
// request completes.
func Run(ctx context.Context, cfg Config) (Result, error) { return loadgen.Run(ctx, cfg) }

// FetchStats reads a server's /stats endpoint.
func FetchStats(baseURL string) (ServerStats, error) { return loadgen.FetchStats(baseURL) }
