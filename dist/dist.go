// Package dist is the public surface of SLIDE's data-parallel training
// over sparse gradient exchange (§6 of the paper): replicas train on data
// shards and merge their per-batch SparseDeltas — the s²-sparse touched
// weights — instead of synchronizing dense parameters.
//
// It re-exports repro/internal/dist so binaries and external consumers
// never import internal packages directly.
package dist

import (
	"context"

	slide "repro"
	"repro/dataset"
	"repro/internal/dist"
)

// Codec encodes SparseDeltas into the compact validated wire format.
type Codec = dist.Codec

// Mesh is the in-process all-reduce exchanger for N replicas in one
// process; rank exchangers come from Mesh.Rank.
type Mesh = dist.Mesh

// TCPServer and TCPClient are the multi-process hub transport: rank 0
// listens and merges, other ranks dial in.
type (
	TCPServer = dist.TCPServer
	TCPClient = dist.TCPClient
)

// ExchangeStats accounts an exchanger's measured bytes per round.
type ExchangeStats = dist.ExchangeStats

// ShardedResult is TrainSharded's outcome: replica networks (bit-identical
// weights on success), per-replica results, per-rank exchange stats.
type ShardedResult = dist.ShardedResult

// ValueFormat selects the wire encoding of delta values: full fp32,
// bf16 (2 bytes per value, §5-style bfloat rounding), or fp32 values of
// a top-k-compressed delta. Every member of an exchange group must run
// the same format; the codec rejects mismatched frames.
type ValueFormat = dist.ValueFormat

// Wire value formats for NewCodecFormat.
const (
	ValueFP32 = dist.ValueFP32
	ValueBF16 = dist.ValueBF16
	ValueTopK = dist.ValueTopK
)

// NewCodec builds a codec for the network's layer shapes.
func NewCodec(n *slide.Network) *Codec { return dist.NewCodec(n) }

// NewCodecFormat builds a codec with an explicit wire value format.
func NewCodecFormat(n *slide.Network, f ValueFormat) *Codec { return dist.NewCodecFormat(n, f) }

// FormatFor maps a TrainConfig.Compress setting to the wire value format
// the exchange group must negotiate.
func FormatFor(c slide.DeltaCompression) ValueFormat { return dist.FormatFor(c) }

// NewMesh builds an in-process all-reduce for the given shard count;
// codec (may be nil) prices exchanged deltas for byte accounting.
func NewMesh(shards int, codec *Codec) *Mesh { return dist.NewMesh(shards, codec) }

// ListenExchanger binds addr as rank 0 of a TCP-sharded group; joining
// ranks must present the same schedule digest.
func ListenExchanger(addr string, shards int, codec *Codec, digest uint64) (*TCPServer, error) {
	return dist.ListenExchanger(addr, shards, codec, digest)
}

// DialExchanger connects rank (1..shards-1) to the rank-0 server.
func DialExchanger(addr string, rank, shards int, codec *Codec, digest uint64) (*TCPClient, error) {
	return dist.DialExchanger(addr, rank, shards, codec, digest)
}

// ScheduleDigest fingerprints the settings every replica of a group must
// share (network config, per-shard batch and iterations, base seed, and
// the delta compression setting); pass it to ListenExchanger/
// DialExchanger so mismatched launches are refused at join time instead
// of silently diverging. Derive tc through ShardTrainConfig first so
// the digested batch/iteration schedule is the group-wide one.
func ScheduleDigest(cfg slide.Config, tc slide.TrainConfig, baseSeed uint64) uint64 {
	return dist.ScheduleDigest(cfg, tc, baseSeed)
}

// ShardExamples returns rank's round-robin shard of xs.
func ShardExamples(xs []dataset.Example, rank, shards int) []dataset.Example {
	return dist.ShardExamples(xs, rank, shards)
}

// ShardTrainConfig derives rank's per-replica TrainConfig (identical
// schedule on every rank, rank-striped seeds); see
// internal/dist.ShardTrainConfig.
func ShardTrainConfig(tc slide.TrainConfig, trainLen, rank, shards int) slide.TrainConfig {
	return dist.ShardTrainConfig(tc, trainLen, rank, shards)
}

// TrainSharded trains N in-process data-parallel replicas with per-batch
// sparse-delta all-reduce; see internal/dist.TrainSharded.
func TrainSharded(ctx context.Context, cfg slide.Config, train, test []dataset.Example, tc slide.TrainConfig, shards int) (*ShardedResult, error) {
	return dist.TrainSharded(ctx, cfg, train, test, tc, shards)
}
