// Sampled softmax comparison (the paper's §5.1 / Fig. 7): SLIDE's
// input-adaptive LSH sampling against the static uniform candidate
// sampling of TensorFlow's sampled softmax, at a matched candidate
// budget. The static sampler saturates at lower accuracy because its
// negatives are uninformative; SLIDE's candidates track the input.
//
// Run with:
//
//	go run ./examples/sampled-softmax-comparison
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/baselines"
	"repro/dataset"
)

func main() {
	ds, err := dataset.Generate(dataset.Delicious200K(0.01, 21))
	if err != nil {
		log.Fatal(err)
	}
	budget := ds.NumClasses / 20
	fmt.Printf("workload: %s — %d classes; candidate budget %d per example for both systems\n",
		ds.Name, ds.NumClasses, budget)

	net, err := slide.New(slide.Config{
		InputDim: ds.InputDim,
		Seed:     21,
		Layers: []slide.LayerConfig{
			{Size: 128, Activation: slide.ActReLU},
			{
				Size: ds.NumClasses, Activation: slide.ActSoftmax,
				Sampled: true, Hash: slide.HashSimhash, K: 6, L: 20,
				Strategy: slide.StrategyVanilla, Beta: budget,
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training SLIDE (adaptive LSH candidates)...")
	sres, err := net.Train(ds.Train, ds.Test, slide.TrainConfig{Epochs: 5, EvalEvery: 40})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training sampled softmax (static uniform candidates)...")
	ssmRes, err := baselines.TrainSampledSoftmax(baselines.SampledSoftmaxConfig{
		InputDim: ds.InputDim, Hidden: []int{128}, Classes: ds.NumClasses,
		Samples: budget, Seed: 21,
	}, ds.Train, ds.Test, slide.TrainConfig{Epochs: 5, EvalEvery: 40})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\niteration-wise accuracy (identical candidate budget):")
	fmt.Printf("%-12s %-14s %-14s\n", "iteration", "slide P@1", "sampled-softmax P@1")
	for i, p := range sres.Curve.Points {
		var ssmV float64
		if i < len(ssmRes.Curve.Points) {
			ssmV = ssmRes.Curve.Points[i].Value
		}
		fmt.Printf("%-12d %-14.3f %-14.3f\n", p.Iter, p.Value, ssmV)
	}
	fmt.Printf("\nfinal: SLIDE %.3f vs sampled softmax %.3f (best: %.3f vs %.3f)\n",
		sres.FinalAcc, ssmRes.FinalAcc, sres.Curve.Best(), ssmRes.Curve.Best())
}
