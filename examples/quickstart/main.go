// Quickstart: train a SLIDE network on a small synthetic
// extreme-classification task and evaluate precision@1 / precision@5.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/dataset"
	"repro/metrics"
)

func main() {
	// A 1% slice of the Delicious-200K profile: ~2K classes, ~7.8K
	// features, sparse inputs with planted label structure.
	ds, err := dataset.Generate(dataset.Delicious200K(0.01, 42))
	if err != nil {
		log.Fatal(err)
	}
	st := ds.Stats()
	fmt.Printf("dataset %s: %d features (%.3f%% dense), %d classes, %d train / %d test\n",
		st.Name, st.FeatureDim, st.FeatureSparsity*100, st.LabelDim, st.TrainSize, st.TestSize)

	// The paper's architecture: one 128-unit hidden layer, LSH tables on
	// the wide softmax output layer (Simhash, K meta-hash bits, L
	// tables), vanilla sampling with a ~5% active-neuron budget.
	net, err := slide.New(slide.Config{
		InputDim: ds.InputDim,
		Seed:     42,
		Layers: []slide.LayerConfig{
			{Size: 128, Activation: slide.ActReLU},
			{
				Size:       ds.NumClasses,
				Activation: slide.ActSoftmax,
				Sampled:    true,
				Hash:       slide.HashSimhash,
				K:          6,
				L:          20,
				Strategy:   slide.StrategyVanilla,
				Beta:       ds.NumClasses / 20,
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d parameters, output layer sampled via %d hash tables\n",
		net.NumParams(), net.Layer(1).Tables().L())

	res, err := net.Train(ds.Train, ds.Test, slide.TrainConfig{
		Epochs:    4,
		EvalEvery: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d iterations in %.1fs; mean active output neurons %.0f of %d (%.1f%%)\n",
		res.Iterations, res.Seconds, res.MeanActive[1], ds.NumClasses,
		100*res.MeanActive[1]/float64(ds.NumClasses))

	eval, err := net.Evaluate(ds.Test, 2000, 0, 1, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P@1 = %.3f   P@5 = %.3f   (over %d test examples)\n", eval.P1, eval.PAtK[5], eval.N)

	// Sub-linear inference: classify one example using only the neurons
	// retrieved from the hash tables.
	ids, scores, err := net.PredictSampled(ds.Test[0].Features, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled top-3 prediction for test[0]: ids=%v scores=%v (true=%v)\n",
		ids, scores, ds.Test[0].Labels)

	// Serving-style inference: a Predictor pools per-worker state across
	// calls and fans batches out over all cores — the session type
	// slide-serve is built on.
	pred, err := net.NewPredictor()
	if err != nil {
		log.Fatal(err)
	}
	xs := make([]slide.Vector, 0, 64)
	for i := 0; i < 64 && i < len(ds.Test); i++ {
		xs = append(xs, ds.Test[i].Features)
	}
	batchIDs, batchScores, err := pred.PredictBatchSampled(context.Background(), xs, 1)
	if err != nil {
		log.Fatal(err)
	}
	var hits float64
	for i := range batchIDs {
		hits += metrics.PrecisionAt1(batchScores[i], batchIDs[i], ds.Test[i].Labels)
	}
	fmt.Printf("batched sampled inference over %d examples: P@1 = %.3f\n",
		len(xs), hits/float64(len(xs)))
}
