// Scaling: the paper's §5.3 study in miniature — train the same SLIDE
// workload at increasing worker counts and report wall time, speedup and
// core utilization (Table 2's measurement). SLIDE's asynchronous design
// keeps utilization roughly flat as cores grow.
//
// Run with:
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"runtime"

	"repro"
	"repro/dataset"
)

func main() {
	ds, err := dataset.Generate(dataset.Delicious200K(0.02, 5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %d classes, fixed 120 iterations per run\n", ds.Name, ds.NumClasses)

	maxThreads := runtime.GOMAXPROCS(0)
	sweep := []int{1, 2, 4, 8, 16}
	if sweep[len(sweep)-1] < maxThreads {
		sweep = append(sweep, maxThreads)
	}

	fmt.Printf("%-8s %-12s %-10s %-12s\n", "cores", "seconds", "speedup", "utilization")
	var base float64
	for _, th := range sweep {
		if th > maxThreads {
			continue
		}
		net, err := slide.New(slide.Config{
			InputDim: ds.InputDim,
			Seed:     5,
			Layers: []slide.LayerConfig{
				{Size: 128, Activation: slide.ActReLU},
				{
					Size: ds.NumClasses, Activation: slide.ActSoftmax,
					Sampled: true, Hash: slide.HashSimhash, K: 7, L: 30,
					Strategy: slide.StrategyVanilla, Beta: ds.NumClasses / 30,
				},
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := net.Train(ds.Train, ds.Test, slide.TrainConfig{
			Iterations: 120, Threads: th, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Seconds
		}
		fmt.Printf("%-8d %-12.2f %-10.2f %.0f%%\n", th, res.Seconds, base/res.Seconds, res.Utilization*100)
	}
}
