// Extreme classification: the paper's head-to-head comparison on one
// workload — SLIDE's adaptive LSH sampling vs the dense full-softmax
// baseline (the TF-CPU analog) vs the simulated V100 timeline — printed
// as an accuracy-vs-time race.
//
// Run with:
//
//	go run ./examples/extreme-classification            # small scale
//	go run ./examples/extreme-classification -scale 0.05
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/baselines"
	"repro/dataset"
	"repro/metrics"
)

func main() {
	scale := flag.Float64("scale", 0.02, "fraction of the Amazon-670K dimensions")
	epochs := flag.Int("epochs", 3, "training epochs")
	flag.Parse()

	ds, err := dataset.Generate(dataset.Amazon670K(*scale, 7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s — %d classes, %d features, %d train examples\n",
		ds.Name, ds.NumClasses, ds.InputDim, len(ds.Train))

	beta := ds.NumClasses / 40
	net, err := slide.New(slide.Config{
		InputDim: ds.InputDim,
		Seed:     7,
		Layers: []slide.LayerConfig{
			{Size: 128, Activation: slide.ActReLU},
			{
				Size: ds.NumClasses, Activation: slide.ActSoftmax,
				Sampled: true, Hash: slide.HashDWTA, K: 6, L: 50, RangePow: 10,
				Strategy: slide.StrategyVanilla, Beta: beta,
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string) func(metrics.Point) {
		return func(p metrics.Point) {
			fmt.Printf("  [%s] iter %5d  t=%7.2fs  P@1=%.3f\n", name, p.Iter, p.Seconds, p.Value)
		}
	}

	fmt.Println("training SLIDE (DWTA K=6, L=50, HOGWILD updates)...")
	sres, err := net.Train(ds.Train, ds.Test, slide.TrainConfig{
		Epochs: *epochs, BatchSize: 256, EvalEvery: 50, EvalSamples: 1024,
		OnEval: report("slide"),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training dense full-softmax baseline (TF-CPU analog)...")
	dnet, err := baselines.NewDense(baselines.DenseConfig{
		InputDim: ds.InputDim, Hidden: []int{128}, Classes: ds.NumClasses, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	dres, err := dnet.Train(ds.Train, ds.Test, baselines.DenseTrainConfig{
		Epochs: *epochs, BatchSize: 256, EvalEvery: 50, EvalSamples: 1024,
		OnEval: report("dense"),
	})
	if err != nil {
		log.Fatal(err)
	}

	model := baselines.V100()
	gpu := model.Retime(&dres.Curve, dres.FLOPsPerIter)

	fmt.Println()
	fmt.Printf("SLIDE:      P@1=%.3f in %6.1fs (%.1f%% neurons active)\n",
		sres.FinalAcc, sres.Seconds, 100*sres.MeanActive[1]/float64(ds.NumClasses))
	fmt.Printf("dense CPU:  P@1=%.3f in %6.1fs (full softmax)\n", dres.FinalAcc, dres.Seconds)
	fmt.Printf("V100 (sim): P@1=%.3f in %6.1fs (%s)\n", dres.FinalAcc, gpu.Last().Seconds, model)
	target := 0.9 * min(sres.Curve.Best(), dres.Curve.Best())
	ts, okS := sres.Curve.TimeToValue(target)
	tc, okC := dres.Curve.TimeToValue(target)
	if okS && okC {
		fmt.Printf("time to P@1=%.3f: SLIDE %.1fs vs dense %.1fs — %.1fx\n", target, ts, tc, tc/ts)
	}
}
