// Benchmarks regenerating the paper's tables and figures at reduced
// scale, one (or more) per artifact. The full sweeps live in
// cmd/slide-bench (-exp fig5 etc.); these testing.B entry points exercise
// the same code paths with tight budgets so `go test -bench=.` doubles as
// a regression harness for every experiment. See DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results.
package slide_test

import (
	"io"
	"strconv"
	"testing"

	"repro"
	"repro/internal/dataset"
	"repro/internal/dense"
	"repro/internal/harness"
	"repro/internal/hashtable"
	"repro/internal/lsh"
	"repro/internal/optim"
	"repro/internal/rng"
	"repro/internal/sampling"
)

// benchDataset caches one small workload across benchmarks.
var benchDS *dataset.Dataset

func getBenchDS(b *testing.B) *dataset.Dataset {
	b.Helper()
	if benchDS == nil {
		ds, err := dataset.Generate(dataset.Delicious200K(0.01, 42))
		if err != nil {
			b.Fatal(err)
		}
		benchDS = ds
	}
	return benchDS
}

func benchSlideConfig(ds *dataset.Dataset) slide.Config {
	return slide.Config{
		InputDim: ds.InputDim,
		Seed:     42,
		Layers: []slide.LayerConfig{
			{Size: 128, Activation: slide.ActReLU},
			{
				Size: ds.NumClasses, Activation: slide.ActSoftmax,
				Sampled: true, Hash: slide.HashSimhash, K: 6, L: 20,
				Strategy: slide.StrategyVanilla, Beta: ds.NumClasses / 20,
			},
		},
	}
}

// BenchmarkTable1DatasetGen regenerates the Table 1 dataset statistics:
// synthesizing one scaled Delicious-200K profile.
func BenchmarkTable1DatasetGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds, err := dataset.Generate(dataset.Delicious200K(0.005, uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		if ds.Stats().TrainSize == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// benchStrategy measures Fig. 4's per-query retrieval cost for one
// sampling strategy over prebuilt (K, L) tables.
func benchStrategy(b *testing.B, kind sampling.Kind) {
	const neurons, dim, k, l = 20544, 128, 6, 20
	fam, err := lsh.New(lsh.KindSimhash, lsh.Params{Dim: dim, K: k, L: l, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := hashtable.New(hashtable.Config{K: k, L: l, CodeBits: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(7)
	vec := make([]float32, dim)
	codes := make([]uint32, fam.NumFuncs())
	for id := 0; id < neurons; id++ {
		for i := range vec {
			vec[i] = r.NormFloat32()
		}
		fam.HashDense(vec, codes)
		tbl.Insert(uint32(id), codes)
	}
	strat, err := sampling.New(sampling.Params{Kind: kind, Beta: neurons / 50, MinCount: 2, Seed: 3}, neurons)
	if err != nil {
		b.Fatal(err)
	}
	for i := range vec {
		vec[i] = r.NormFloat32()
	}
	fam.HashDense(vec, codes)
	dst := make([]uint32, 0, neurons)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = strat.Sample(dst[:0], tbl, codes)
	}
	_ = dst
}

// BenchmarkFig4SamplingVanilla etc. regenerate Fig. 4 / Fig. 12: vanilla
// is O(beta), hard thresholding slightly above, topk pays the sort.
func BenchmarkFig4SamplingVanilla(b *testing.B)       { benchStrategy(b, sampling.KindVanilla) }
func BenchmarkFig4SamplingTopK(b *testing.B)          { benchStrategy(b, sampling.KindTopK) }
func BenchmarkFig4SamplingHardThreshold(b *testing.B) { benchStrategy(b, sampling.KindHardThreshold) }

// BenchmarkFig5SlideIteration measures SLIDE's cost per training
// iteration — the quantity behind the red curves of Fig. 5.
func BenchmarkFig5SlideIteration(b *testing.B) {
	ds := getBenchDS(b)
	net, err := slide.New(benchSlideConfig(ds))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := net.Train(ds.Train, ds.Test, slide.TrainConfig{
		Iterations: int64(b.N), BatchSize: 128, Seed: 3,
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig5DenseIteration measures the dense baseline's cost per
// iteration — the TF-CPU curves of Fig. 5 (and, re-timed by gpusim, the
// TF-GPU curves).
func BenchmarkFig5DenseIteration(b *testing.B) {
	ds := getBenchDS(b)
	net, err := dense.New(dense.Config{
		InputDim: ds.InputDim, Hidden: []int{128}, Classes: ds.NumClasses, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := net.Train(ds.Train, ds.Test, dense.TrainConfig{
		Iterations: int64(b.N), BatchSize: 128, Seed: 3,
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTable2Utilization runs the Table 2 measurement: a short
// fixed-iteration training run whose busy-fraction accounting feeds the
// utilization table.
func BenchmarkTable2Utilization(b *testing.B) {
	ds := getBenchDS(b)
	for i := 0; i < b.N; i++ {
		net, err := slide.New(benchSlideConfig(ds))
		if err != nil {
			b.Fatal(err)
		}
		res, err := net.Train(ds.Train, ds.Test, slide.TrainConfig{Iterations: 20, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Utilization*100, "util%")
	}
}

// BenchmarkFig7SampledSoftmax measures the sampled-softmax baseline's
// per-iteration cost at a matched candidate budget (Fig. 7's green
// curves).
func BenchmarkFig7SampledSoftmax(b *testing.B) {
	ds := getBenchDS(b)
	cfg := benchSlideConfig(ds)
	cfg.Layers[1].Strategy = slide.StrategyRandom
	net, err := slide.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := net.Train(ds.Train, ds.Test, slide.TrainConfig{
		Iterations: int64(b.N), BatchSize: 128, Seed: 3,
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig8BatchSize sweeps the Fig. 8 batch sizes.
func BenchmarkFig8BatchSize(b *testing.B) {
	ds := getBenchDS(b)
	for _, batch := range []int{64, 128, 256} {
		b.Run(byteSizeName(batch), func(b *testing.B) {
			net, err := slide.New(benchSlideConfig(ds))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := net.Train(ds.Train, ds.Test, slide.TrainConfig{
				Iterations: int64(b.N), BatchSize: batch, Seed: 3,
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFig9Scalability sweeps worker counts for a fixed iteration
// budget (Fig. 9 / Fig. 13's x-axis).
func BenchmarkFig9Scalability(b *testing.B) {
	ds := getBenchDS(b)
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(byteSizeName(threads), func(b *testing.B) {
			net, err := slide.New(benchSlideConfig(ds))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := net.Train(ds.Train, ds.Test, slide.TrainConfig{
				Iterations: int64(b.N), Threads: threads, Seed: 3,
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFig10Optimized compares the optimized memory layout against
// the plain per-neuron layout (Fig. 10 / Table 4's analog): same work,
// different locality.
func BenchmarkFig10Optimized(b *testing.B) {
	ds := getBenchDS(b)
	plainCfg := benchSlideConfig(ds)
	plainCfg.Layout = slide.LayoutPerNeuron
	optCfg := benchSlideConfig(ds)
	optCfg.Layout = slide.LayoutContiguous
	optCfg.PadRows = true
	for _, variant := range []struct {
		name   string
		layout slide.Config
	}{
		{"plain", plainCfg},
		{"optimized", optCfg},
	} {
		b.Run(variant.name, func(b *testing.B) {
			net, err := slide.New(variant.layout)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := net.Train(ds.Train, ds.Test, slide.TrainConfig{
				Iterations: int64(b.N), Seed: 3,
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFig11Theory evaluates the closed-form hard-thresholding
// selection probabilities plotted in Fig. 11.
func BenchmarkFig11Theory(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for m := 1; m <= 9; m += 2 {
			for p := 0.05; p <= 0.95; p += 0.05 {
				sink += sampling.SelectionProbability(p, 1, 10, m)
			}
		}
	}
	_ = sink
}

// BenchmarkTable3Insertion measures full table construction (hash +
// insert) for both bucket policies over a neuron population.
func BenchmarkTable3Insertion(b *testing.B) {
	const neurons, dim, k, l = 20544, 128, 6, 20
	fam, err := lsh.New(lsh.KindSimhash, lsh.Params{Dim: dim, K: k, L: l, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(7)
	weights := make([][]float32, neurons)
	for j := range weights {
		row := make([]float32, dim)
		for i := range row {
			row[i] = r.NormFloat32()
		}
		weights[j] = row
	}
	for _, policy := range []hashtable.Policy{hashtable.PolicyReservoir, hashtable.PolicyFIFO} {
		b.Run(policy.String(), func(b *testing.B) {
			codes := make([]uint32, fam.NumFuncs())
			for i := 0; i < b.N; i++ {
				tbl, err := hashtable.New(hashtable.Config{K: k, L: l, CodeBits: 1, Policy: policy, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				for id := 0; id < neurons; id++ {
					fam.HashDense(weights[id], codes)
					tbl.Insert(uint32(id), codes)
				}
			}
		})
	}
}

// BenchmarkRebuildStall measures how long the training loop is blocked
// per hash-table rebuild (§4.2 "Updating Overhead") under the two table
// lifecycles: sync rebuilds stop the world for the whole reconstruction,
// async rebuilds build a shadow set on a background goroutine and block
// only for the batch-boundary snapshot copy plus the atomic swap. The
// stall-ns/rebuild metric is the number the non-blocking lifecycle
// exists to shrink; build-ns/rebuild is the work that moved off the
// critical path.
func BenchmarkRebuildStall(b *testing.B) {
	ds := getBenchDS(b)
	for _, mode := range []struct {
		name string
		sync bool
	}{{"sync", true}, {"async", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var stallNS, buildNS, rebuilds int64
			for i := 0; i < b.N; i++ {
				cfg := benchSlideConfig(ds)
				cfg.RebuildN0 = 10
				net, err := slide.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := net.Train(ds.Train, ds.Test, slide.TrainConfig{
					Iterations: 60, BatchSize: 128, Seed: 3, EvalEvery: 0,
					SyncRebuild: mode.sync,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Rebuilds == 0 {
					b.Fatal("no rebuilds in 60 iterations with N0=10")
				}
				stallNS += res.RebuildStallNS
				buildNS += res.RebuildBuildNS
				rebuilds += int64(res.Rebuilds)
			}
			b.ReportMetric(float64(stallNS)/float64(rebuilds), "stall-ns/rebuild")
			b.ReportMetric(float64(buildNS)/float64(rebuilds), "build-ns/rebuild")
		})
	}
}

// BenchmarkTable4Arena measures the hugepage-analog ablation through the
// harness's Table 4 experiment end to end at tiny scale.
func BenchmarkTable4Arena(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := runExperiment("table4")
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables) == 0 {
			b.Fatal("table4 produced no tables")
		}
	}
}

// BenchmarkAblUpdateModes compares the three gradient write disciplines
// (§3.1 design-choice ablation).
func BenchmarkAblUpdateModes(b *testing.B) {
	ds := getBenchDS(b)
	for _, mode := range []optim.UpdateMode{optim.ModeHogwild, optim.ModeAtomic, optim.ModeBatchSync} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := benchSlideConfig(ds)
			cfg.UpdateMode = mode
			net, err := slide.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := net.Train(ds.Train, ds.Test, slide.TrainConfig{
				Iterations: int64(b.N), Seed: 3,
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFig6MemoryBound runs the Fig. 6 proxy pipeline (calibration +
// short training) once per op at tiny scale.
func BenchmarkFig6MemoryBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := runExperiment("fig6")
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Series) == 0 {
			b.Fatal("fig6 produced no series")
		}
	}
}

func runExperiment(id string) (*harness.Report, error) {
	e, ok := harness.Get(id)
	if !ok {
		panic("unknown experiment " + id)
	}
	return e.Run(harness.Options{Scale: "tiny", Seed: 17, Log: io.Discard, ThreadSweep: []int{2, 4}})
}

func byteSizeName(n int) string { return strconv.Itoa(n) }
