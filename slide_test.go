package slide_test

import (
	"testing"

	"repro"
	"repro/internal/dataset"
)

// TestPublicAPIEndToEnd exercises the facade exactly as the README's
// quickstart does: generate data, build, train, evaluate, predict.
func TestPublicAPIEndToEnd(t *testing.T) {
	ds, err := dataset.Generate(dataset.Delicious200K(0.005, 42))
	if err != nil {
		t.Fatal(err)
	}
	net, err := slide.New(slide.Config{
		InputDim: ds.InputDim,
		Seed:     42,
		Adam:     slide.NewAdam(0.001),
		Layers: []slide.LayerConfig{
			{Size: 64, Activation: slide.ActReLU},
			{
				Size: ds.NumClasses, Activation: slide.ActSoftmax,
				Sampled: true, Hash: slide.HashSimhash, K: 5, L: 16,
				Policy: slide.PolicyReservoir, Strategy: slide.StrategyVanilla,
				Beta: ds.NumClasses / 16,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Train(ds.Train, ds.Test, slide.TrainConfig{Epochs: 3, EvalEvery: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc <= 2.0/float64(ds.NumClasses) {
		t.Fatalf("facade training did not learn: P@1 = %.4f", res.FinalAcc)
	}
	ev, err := net.Evaluate(ds.Test, 300, 0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ev.P1 < 0 || ev.P1 > 1 {
		t.Fatalf("Evaluate P@1 = %v", ev.P1)
	}
	ids, scores, err := net.Predict(ds.Test[0].Features, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || len(scores) != 3 {
		t.Fatalf("Predict returned %d/%d", len(ids), len(scores))
	}
}

// TestUpdateModeConstants pins the exported constants to distinct values.
func TestExportedConstantsDistinct(t *testing.T) {
	if slide.UpdateHogwild == slide.UpdateAtomic || slide.UpdateAtomic == slide.UpdateBatchSync {
		t.Fatal("update mode constants collide")
	}
	if slide.HashSimhash == slide.HashDWTA {
		t.Fatal("hash constants collide")
	}
	if slide.StrategyVanilla == slide.StrategyTopK {
		t.Fatal("strategy constants collide")
	}
	if slide.LayoutContiguous == slide.LayoutPerNeuron {
		t.Fatal("layout constants collide")
	}
}
