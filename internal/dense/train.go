package dense

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// TrainConfig mirrors the SLIDE trainer's knobs so experiments drive both
// systems identically.
type TrainConfig struct {
	BatchSize   int
	Iterations  int64
	Epochs      int
	Threads     int
	EvalEvery   int64
	EvalSamples int
	TargetAcc   float64
	MaxSeconds  float64
	Seed        uint64
	OnEval      func(metrics.Point)
}

func (tc TrainConfig) withDefaults(trainSize int) TrainConfig {
	if tc.BatchSize == 0 {
		tc.BatchSize = 128
	}
	if tc.Threads == 0 {
		tc.Threads = defaultThreads()
	}
	if tc.Iterations == 0 {
		epochs := tc.Epochs
		if epochs == 0 {
			epochs = 1
		}
		perEpoch := (trainSize + tc.BatchSize - 1) / tc.BatchSize
		tc.Iterations = int64(epochs) * int64(perEpoch)
	}
	return tc
}

// TrainResult summarizes a dense training run.
type TrainResult struct {
	Curve       metrics.Curve
	Iterations  int64
	Seconds     float64
	FinalAcc    float64
	Utilization float64
	// AvgNNZ is the measured mean input non-zeros, for the FLOP model.
	AvgNNZ float64
	// FLOPsPerIter is the modelled work per iteration at this batch size.
	FLOPsPerIter float64
}

// trainBuffers holds the batch-level activation and delta matrices.
type trainBuffers struct {
	acts   [][]float32 // acts[li]: batch*size, row per element
	deltas [][]float32
	grads  [][]float32 // per-worker gradient row scratch (max fan-in)
}

func newTrainBuffers(n *Network, batch, threads int) *trainBuffers {
	tb := &trainBuffers{}
	maxIn := n.cfg.InputDim
	for _, l := range n.layers {
		tb.acts = append(tb.acts, make([]float32, batch*l.out))
		tb.deltas = append(tb.deltas, make([]float32, batch*l.out))
		if l.in > maxIn {
			maxIn = l.in
		}
	}
	tb.grads = make([][]float32, threads)
	for w := range tb.grads {
		tb.grads[w] = make([]float32, maxIn)
	}
	return tb
}

// Train runs full-computation minibatch training. Every phase (forward,
// delta propagation, per-neuron gradient accumulation + Adam) is
// parallelized across threads, and every parameter is updated every
// iteration — the work profile of a dense framework.
func (n *Network) Train(train, test []dataset.Example, tc TrainConfig) (*TrainResult, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("dense: empty training split")
	}
	tc = tc.withDefaults(len(train))
	if tc.BatchSize > len(train) {
		tc.BatchSize = len(train)
	}
	threads := tc.Threads
	tb := newTrainBuffers(n, tc.BatchSize, threads)

	order := rng.NewStream(tc.Seed, 0x0d3).Perm(len(train))
	evalIdx := evalSubset(test, tc.EvalSamples, tc.Seed)

	res := &TrainResult{Curve: metrics.Curve{Name: "p@1"}}
	var trainNS, busyNS int64
	var nnzSum int64
	var nnzCount int64
	pos := 0

	evalNow := func() float64 {
		p1 := n.evalP1(test, evalIdx, threads)
		pt := metrics.Point{Iter: n.step, Seconds: float64(trainNS) / 1e9, Value: p1}
		res.Curve.Add(pt)
		if tc.OnEval != nil {
			tc.OnEval(pt)
		}
		return p1
	}

	start := n.step
	for n.step-start < tc.Iterations {
		if pos+tc.BatchSize > len(order) {
			r := rng.NewStream(tc.Seed+uint64(n.step), 0x0d4)
			r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			pos = 0
		}
		batch := order[pos : pos+tc.BatchSize]
		pos += tc.BatchSize
		for _, bi := range batch {
			nnzSum += int64(train[bi].Features.NNZ())
		}
		nnzCount += int64(len(batch))

		t0 := time.Now()
		busyNS += n.trainBatch(train, batch, tb, threads)
		n.step++
		trainNS += time.Since(t0).Nanoseconds()

		if tc.EvalEvery > 0 && (n.step-start)%tc.EvalEvery == 0 {
			p1 := evalNow()
			if tc.TargetAcc > 0 && p1 >= tc.TargetAcc {
				break
			}
		}
		if tc.MaxSeconds > 0 && float64(trainNS)/1e9 >= tc.MaxSeconds {
			break
		}
	}
	if last := res.Curve.Last(); last.Iter != n.step || len(res.Curve.Points) == 0 {
		evalNow()
	}

	res.Iterations = n.step - start
	res.Seconds = float64(trainNS) / 1e9
	res.FinalAcc = res.Curve.Last().Value
	if trainNS > 0 {
		res.Utilization = minF(1, float64(busyNS)/(float64(trainNS)*float64(threads)))
	}
	if nnzCount > 0 {
		res.AvgNNZ = float64(nnzSum) / float64(nnzCount)
	}
	res.FLOPsPerIter = n.FLOPsPerIteration(tc.BatchSize, res.AvgNNZ)
	return res, nil
}

// trainBatch executes one iteration and returns summed worker busy
// nanoseconds for utilization accounting.
func (n *Network) trainBatch(train []dataset.Example, batch []int, tb *trainBuffers, threads int) int64 {
	last := len(n.layers) - 1
	busy := make([]int64, threads)

	// Phase 1+2: forward all layers and form the softmax cross-entropy
	// delta, parallel over batch elements.
	parallelIndexed(threads, len(batch), func(w, lo, hi int) {
		t0 := time.Now()
		for b := lo; b < hi; b++ {
			ex := &train[batch[b]]
			for li, l := range n.layers {
				out := tb.acts[li][b*l.out : (b+1)*l.out]
				if li == 0 {
					l.forwardSparse(ex.Features.Idx, ex.Features.Val, out)
				} else {
					prev := n.layers[li-1]
					l.forwardDense(tb.acts[li-1][b*prev.out:(b+1)*prev.out], out)
				}
			}
			l := n.layers[last]
			probs := tb.acts[last][b*l.out : (b+1)*l.out]
			vecmath.Softmax(probs)
			delta := tb.deltas[last][b*l.out : (b+1)*l.out]
			copy(delta, probs)
			if len(ex.Labels) > 0 {
				inv := 1 / float32(len(ex.Labels))
				for _, lab := range ex.Labels {
					delta[lab] -= inv
				}
			}
		}
		busy[w] += time.Since(t0).Nanoseconds()
	})

	// Phase 3: propagate deltas down, parallel over batch elements.
	for li := last; li >= 1; li-- {
		l := n.layers[li]
		prev := n.layers[li-1]
		parallelIndexed(threads, len(batch), func(w, lo, hi int) {
			t0 := time.Now()
			for b := lo; b < hi; b++ {
				dIn := tb.deltas[li-1][b*prev.out : (b+1)*prev.out]
				for i := range dIn {
					dIn[i] = 0
				}
				delta := tb.deltas[li][b*l.out : (b+1)*l.out]
				for j := 0; j < l.out; j++ {
					if dj := delta[j]; dj != 0 {
						vecmath.Axpy(dj, l.w[j], dIn)
					}
				}
				if prev.relu {
					acts := tb.acts[li-1][b*prev.out : (b+1)*prev.out]
					for i := range dIn {
						if acts[i] <= 0 {
							dIn[i] = 0
						}
					}
				}
			}
			busy[w] += time.Since(t0).Nanoseconds()
		})
	}

	// Phase 4: per-neuron gradient accumulation and full Adam update,
	// parallel over neurons within each layer.
	n.step++ // advance for bias correction, then restore (caller increments)
	alpha := n.adam.Alpha(n.step)
	n.step--
	invB := 1 / float32(len(batch))
	for li, l := range n.layers {
		parallelIndexed(threads, l.out, func(w, lo, hi int) {
			t0 := time.Now()
			gRow := tb.grads[w][:l.in]
			for j := lo; j < hi; j++ {
				for i := range gRow {
					gRow[i] = 0
				}
				var gBias float32
				for b := range batch {
					dj := tb.deltas[li][b*l.out+j] * invB
					if dj == 0 {
						continue
					}
					gBias += dj
					if li == 0 {
						ex := &train[batch[b]]
						vecmath.SparseAxpy(dj, ex.Features.Idx, ex.Features.Val, gRow)
					} else {
						prev := n.layers[li-1]
						vecmath.Axpy(dj, tb.acts[li-1][b*prev.out:(b+1)*prev.out], gRow)
					}
				}
				n.adam.StepRow(l.w[j], l.mW[j], l.vW[j], gRow, alpha)
				n.adam.Step1(&l.b[j], &l.mB[j], &l.vB[j], gBias, alpha)
			}
			busy[w] += time.Since(t0).Nanoseconds()
		})
	}

	var total int64
	for _, b := range busy {
		total += b
	}
	return total
}

// Predict runs a forward pass and returns the top-k classes and scores.
func (n *Network) Predict(x sparse.Vector, k int) ([]int32, []float32) {
	scratch := make([][]float32, len(n.layers))
	for li, l := range n.layers {
		scratch[li] = make([]float32, l.out)
	}
	n.forwardOne(x, scratch)
	logits := scratch[len(n.layers)-1]
	ids := sparse.TopK(logits, k)
	scores := make([]float32, len(ids))
	for i, id := range ids {
		scores[i] = logits[id]
	}
	return ids, scores
}

func (n *Network) forwardOne(x sparse.Vector, scratch [][]float32) {
	for li, l := range n.layers {
		if li == 0 {
			l.forwardSparse(x.Idx, x.Val, scratch[0])
		} else {
			l.forwardDense(scratch[li-1], scratch[li])
		}
	}
}

// Evaluate computes P@1 and P@k over up to samples test examples.
func (n *Network) Evaluate(test []dataset.Example, samples, threads int, ks ...int) EvalResult {
	if samples <= 0 {
		samples = len(test)
	}
	idx := evalSubset(test, samples, n.cfg.Seed^0x0e7a1)
	res := EvalResult{N: len(idx), PAtK: make(map[int]float64, len(ks))}
	if len(idx) == 0 {
		return res
	}
	if threads <= 0 {
		threads = defaultThreads()
	}
	maxK := 1
	for _, k := range ks {
		if k > maxK {
			maxK = k
		}
	}
	p1s := make([]float64, threads)
	pks := make([]map[int]float64, threads)
	parallelIndexed(threads, len(idx), func(w, lo, hi int) {
		scratch := make([][]float32, len(n.layers))
		for li, l := range n.layers {
			scratch[li] = make([]float32, l.out)
		}
		pk := make(map[int]float64, len(ks))
		for k := lo; k < hi; k++ {
			ex := &test[idx[k]]
			n.forwardOne(ex.Features, scratch)
			top := sparse.TopK(scratch[len(n.layers)-1], maxK)
			if len(top) > 0 && containsSorted(ex.Labels, top[0]) {
				p1s[w]++
			}
			for _, kk := range ks {
				hits := 0
				lim := kk
				if lim > len(top) {
					lim = len(top)
				}
				for _, c := range top[:lim] {
					if containsSorted(ex.Labels, c) {
						hits++
					}
				}
				if kk > 0 {
					pk[kk] += float64(hits) / float64(kk)
				}
			}
		}
		pks[w] = pk
	})
	var p1 float64
	for _, v := range p1s {
		p1 += v
	}
	res.P1 = p1 / float64(len(idx))
	for _, k := range ks {
		var s float64
		for _, pk := range pks {
			if pk != nil {
				s += pk[k]
			}
		}
		res.PAtK[k] = s / float64(len(idx))
	}
	return res
}

// EvalResult reports precision metrics.
type EvalResult struct {
	P1   float64
	PAtK map[int]float64
	N    int
}

func (n *Network) evalP1(test []dataset.Example, idx []int, threads int) float64 {
	if len(idx) == 0 {
		return 0
	}
	hits := make([]int64, threads)
	parallelIndexed(threads, len(idx), func(w, lo, hi int) {
		scratch := make([][]float32, len(n.layers))
		for li, l := range n.layers {
			scratch[li] = make([]float32, l.out)
		}
		for k := lo; k < hi; k++ {
			ex := &test[idx[k]]
			n.forwardOne(ex.Features, scratch)
			logits := scratch[len(n.layers)-1]
			if containsSorted(ex.Labels, int32(vecmath.ArgMax(logits))) {
				hits[w]++
			}
		}
	})
	var total int64
	for _, h := range hits {
		total += h
	}
	return float64(total) / float64(len(idx))
}

func evalSubset(test []dataset.Example, samples int, seed uint64) []int {
	if len(test) == 0 {
		return nil
	}
	if samples <= 0 {
		samples = 1024
	}
	if samples >= len(test) {
		idx := make([]int, len(test))
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	return rng.NewStream(seed, 0xe7a1).SampleK(len(test), samples)
}

func parallelIndexed(workers, n int, f func(w, lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			f(0, 0, n)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			f(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

func containsSorted(labels []int32, c int32) bool {
	lo, hi := 0, len(labels)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case labels[mid] < c:
			lo = mid + 1
		case labels[mid] > c:
			hi = mid
		default:
			return true
		}
	}
	return false
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
