package dense

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func tinyDS(t testing.TB) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Profile{
		Name: "t", FeatureDim: 256, NumClasses: 64,
		TrainSize: 1200, TestSize: 300,
		AvgFeatures: 15, AvgLabels: 2, ProtoNNZ: 10,
		NoiseFrac: 0.1, LabelSkew: 1.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDenseLearns(t *testing.T) {
	ds := tinyDS(t)
	n, err := New(Config{InputDim: 256, Hidden: []int{32}, Classes: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Train(ds.Train, ds.Test, TrainConfig{Epochs: 6, EvalEvery: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc < 0.3 {
		t.Fatalf("dense baseline P@1 = %.3f, expected well above random 1/64", res.FinalAcc)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization out of range: %v", res.Utilization)
	}
	if res.FLOPsPerIter <= 0 || res.AvgNNZ <= 0 {
		t.Fatalf("FLOP accounting missing: %+v", res)
	}
}

func TestDenseDeterministicAcrossThreads(t *testing.T) {
	// Dense training parallelizes over disjoint neurons per phase and
	// accumulates per-neuron in element order, so results must not
	// depend on the worker count.
	ds := tinyDS(t)
	run := func(threads int) *Network {
		n, err := New(Config{InputDim: 256, Hidden: []int{16}, Classes: 64, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Train(ds.Train, ds.Test, TrainConfig{
			Iterations: 5, Threads: threads, Seed: 5, BatchSize: 32,
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	a, b := run(1), run(6)
	for li := range a.layers {
		for j := 0; j < a.layers[li].out; j++ {
			for i := range a.layers[li].w[j] {
				if a.layers[li].w[j][i] != b.layers[li].w[j][i] {
					t.Fatalf("layer %d w[%d][%d] differs across threads", li, j, i)
				}
			}
		}
	}
}

func TestPredictAndEvaluate(t *testing.T) {
	ds := tinyDS(t)
	n, err := New(Config{InputDim: 256, Hidden: []int{32}, Classes: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(ds.Train, ds.Test, TrainConfig{Epochs: 4, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	ids, scores := n.Predict(ds.Test[0].Features, 5)
	if len(ids) != 5 || len(scores) != 5 {
		t.Fatalf("Predict shape %d/%d", len(ids), len(scores))
	}
	for i := 1; i < len(scores); i++ {
		if scores[i] > scores[i-1] {
			t.Fatalf("scores not sorted: %v", scores)
		}
	}
	ev := n.Evaluate(ds.Test, 100, 4, 1, 5)
	if ev.N != 100 || ev.P1 < 0 || ev.P1 > 1 {
		t.Fatalf("Evaluate = %+v", ev)
	}
	if math.Abs(ev.PAtK[1]-ev.P1) > 1e-9 {
		t.Fatalf("P@1 mismatch: %v vs %v", ev.PAtK[1], ev.P1)
	}
}

func TestFLOPsPerIterationModel(t *testing.T) {
	n, err := New(Config{InputDim: 1000, Hidden: []int{128}, Classes: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := n.FLOPsPerIteration(128, 50)
	// Dominant term: 3 passes over the 128x5000 output layer per
	// element, 2 FLOPs per MAC.
	dominant := 2.0 * 3 * 128 * 128 * 5000
	if got < dominant || got > 3*dominant {
		t.Fatalf("FLOPs model = %g, dominant term %g", got, dominant)
	}
	if n.NumParams() != 1000*128+128+128*5000+5000 {
		t.Fatalf("NumParams = %d", n.NumParams())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{InputDim: 0, Classes: 4}); err == nil {
		t.Error("zero InputDim accepted")
	}
	if _, err := New(Config{InputDim: 4, Classes: 0}); err == nil {
		t.Error("zero Classes accepted")
	}
	if _, err := New(Config{InputDim: 4, Classes: 4, Hidden: []int{0}}); err == nil {
		t.Error("zero hidden size accepted")
	}
}

func TestEmptyTrainRejected(t *testing.T) {
	n, err := New(Config{InputDim: 4, Classes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(nil, nil, TrainConfig{}); err == nil {
		t.Fatal("empty training split accepted")
	}
}
