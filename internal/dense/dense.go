// Package dense implements the full-computation baseline that stands in
// for TensorFlow-CPU in the paper's comparisons (§5): the same
// architecture, initialization, Adam optimizer and multi-core parallelism
// as the SLIDE network, but computing every neuron's activation and
// updating every parameter each iteration — the full softmax over all
// classes that SLIDE's adaptive sampling avoids.
//
// The per-iteration math is exactly what a dense framework executes, so a
// run's accuracy-vs-iteration curve doubles as the TF-GPU curve once the
// gpusim package re-times it (the GPU changes the clock, not the math).
package dense

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/arena"
	"repro/internal/optim"
	"repro/internal/rng"
	"repro/internal/vecmath"
)

// Config describes the dense network: input -> hidden (ReLU) -> classes
// (softmax), the paper's architecture with one hidden layer of 128.
type Config struct {
	// InputDim is the feature dimensionality.
	InputDim int
	// Hidden lists the hidden layer sizes.
	Hidden []int
	// Classes is the output layer size.
	Classes int
	// Seed drives initialization.
	Seed uint64
	// Adam holds optimizer hyperparameters; zero LR selects
	// optim.NewAdam(0.001).
	Adam optim.Adam
}

func (c Config) withDefaults() Config {
	if c.Adam.LR == 0 {
		c.Adam = optim.NewAdam(0.001)
	}
	return c
}

func (c Config) validate() error {
	if c.InputDim <= 0 || c.Classes <= 0 {
		return fmt.Errorf("dense: InputDim and Classes must be positive, got %d and %d", c.InputDim, c.Classes)
	}
	for i, h := range c.Hidden {
		if h <= 0 {
			return fmt.Errorf("dense: hidden layer %d size must be positive, got %d", i, h)
		}
	}
	return nil
}

// layer is one dense layer with neuron-major rows and Adam moments.
type layer struct {
	in, out int
	relu    bool
	w       [][]float32
	mW      [][]float32
	vW      [][]float32
	b, mB   []float32
	vB      []float32
}

// Network is the dense baseline model.
type Network struct {
	cfg    Config
	layers []*layer
	adam   optim.Adam
	step   int64
}

// New builds an initialized dense network with the same initialization
// scheme as the SLIDE network (He for ReLU layers, Xavier for the output).
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, adam: cfg.Adam}
	ar := arena.NewDefault()
	sizes := append(append([]int{}, cfg.Hidden...), cfg.Classes)
	in := cfg.InputDim
	r := rng.NewStream(cfg.Seed, 0xde45e)
	for li, out := range sizes {
		l := &layer{
			in: in, out: out,
			relu: li < len(sizes)-1,
			w:    ar.AllocRows(out, in, false),
			mW:   ar.AllocRows(out, in, false),
			vW:   ar.AllocRows(out, in, false),
			b:    ar.AllocAligned(out),
			mB:   ar.AllocAligned(out),
			vB:   ar.AllocAligned(out),
		}
		std := float32(math.Sqrt(2.0 / float64(in)))
		if !l.relu {
			std = float32(math.Sqrt(1.0 / float64(in)))
		}
		for j := 0; j < out; j++ {
			row := l.w[j]
			for i := range row {
				row[i] = std * r.NormFloat32()
			}
		}
		n.layers = append(n.layers, l)
		in = out
	}
	return n, nil
}

// Config returns the (defaulted) configuration.
func (n *Network) Config() Config { return n.cfg }

// Step returns completed training iterations.
func (n *Network) Step() int64 { return n.step }

// NumParams returns the total trainable parameter count.
func (n *Network) NumParams() int64 {
	var p int64
	for _, l := range n.layers {
		p += int64(l.out)*int64(l.in) + int64(l.out)
	}
	return p
}

// FLOPsPerIteration estimates the multiply-accumulate work of one training
// iteration at the given batch size and mean input non-zeros: forward,
// input-gradient and weight-gradient GEMMs (3 passes over each dense
// weight matrix per element) plus the full-parameter Adam update. Used by
// the gpusim cost model.
func (n *Network) FLOPsPerIteration(batch int, avgNNZ float64) float64 {
	var macs float64
	in := avgNNZ // the first layer consumes the sparse input
	for li, l := range n.layers {
		perElem := in * float64(l.out)
		passes := 3.0
		if li == 0 {
			passes = 2 // no input gradient is propagated to the features
		}
		macs += passes * float64(batch) * perElem
		in = float64(l.out)
	}
	adamOps := 6 * float64(n.NumParams()) // m, v updates + step, per parameter
	return 2*macs + adamOps
}

func defaultThreads() int { return runtime.GOMAXPROCS(0) }

// forwardHidden computes all hidden activations for a sparse input.
func (l *layer) forwardSparse(idx []int32, val []float32, out []float32) {
	for j := 0; j < l.out; j++ {
		out[j] = l.b[j] + vecmath.SparseDot(idx, val, l.w[j])
	}
	if l.relu {
		vecmath.ReLU(out)
	}
}

// forwardDense computes activations for a dense input.
func (l *layer) forwardDense(in []float32, out []float32) {
	for j := 0; j < l.out; j++ {
		out[j] = l.b[j] + vecmath.Dot(l.w[j], in)
	}
	if l.relu {
		vecmath.ReLU(out)
	}
}
