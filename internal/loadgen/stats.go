package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// ServerStats mirrors slide-serve's GET /stats body (the JSON tags match
// internal/serve's statsSnapshot), so a run can pair its client-observed
// tail with the server's own accounting — queue-side percentiles, shed
// and deadline counters, and response-cache effectiveness.
type ServerStats struct {
	Requests            int64   `json:"requests"`
	MeanBatchSize       float64 `json:"mean_batch_size"`
	P50Millis           float64 `json:"p50_ms"`
	P90Millis           float64 `json:"p90_ms"`
	P99Millis           float64 `json:"p99_ms"`
	P999Millis          float64 `json:"p999_ms"`
	Shed                int64   `json:"shed"`
	DeadlineExceeded    int64   `json:"deadline_exceeded"`
	CacheHits           int64   `json:"cache_hits"`
	CacheMisses         int64   `json:"cache_misses"`
	CacheEntries        int     `json:"cache_entries"`
	LatencyBudgetMillis float64 `json:"latency_budget_ms"`
	ExpectedWaitMillis  float64 `json:"expected_wait_ms"`
}

// FetchStats reads the server's /stats endpoint.
func FetchStats(baseURL string) (ServerStats, error) {
	var st ServerStats
	resp, err := http.Get(baseURL + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("GET /stats: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("decoding /stats: %w", err)
	}
	return st, nil
}
