package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// ServerStats mirrors slide-serve's GET /stats body (the JSON tags match
// internal/serve's statsSnapshot), so a run can pair its client-observed
// tail with the server's own accounting — queue-side percentiles, shed
// and deadline counters, and response-cache effectiveness.
type ServerStats struct {
	Requests            int64   `json:"requests"`
	MeanBatchSize       float64 `json:"mean_batch_size"`
	P50Millis           float64 `json:"p50_ms"`
	P90Millis           float64 `json:"p90_ms"`
	P99Millis           float64 `json:"p99_ms"`
	P999Millis          float64 `json:"p999_ms"`
	Shed                int64   `json:"shed"`
	DeadlineExceeded    int64   `json:"deadline_exceeded"`
	CacheHits           int64   `json:"cache_hits"`
	CacheMisses         int64   `json:"cache_misses"`
	CacheEntries        int     `json:"cache_entries"`
	LatencyBudgetMillis float64 `json:"latency_budget_ms"`
	ExpectedWaitMillis  float64 `json:"expected_wait_ms"`
	// GC gauges (PR 9): the server-side memory story for a sweep phase.
	// Mallocs and TotalAllocBytes are cumulative since process start —
	// difference two snapshots (GCDelta) to get per-phase allocation
	// rates; the pause gauges and HeapAllocBytes are instantaneous.
	GCPauseP99Millis float64 `json:"gc_pause_p99_ms"`
	GCPauseMaxMillis float64 `json:"gc_pause_max_ms"`
	HeapAllocBytes   uint64  `json:"heap_alloc_bytes"`
	NumGC            uint32  `json:"num_gc"`
	Mallocs          uint64  `json:"mallocs"`
	TotalAllocBytes  uint64  `json:"total_alloc_bytes"`
}

// GCDelta summarizes the garbage collector's work between two /stats
// snapshots taken around one load phase.
type GCDelta struct {
	// Collections is how many GC cycles ran during the phase.
	Collections uint32 `json:"collections"`
	// AllocsPerRequest is heap allocations per served request —
	// malloc-count delta over request-count delta. The whole-process
	// numerator (the load generator cannot see per-path counters)
	// makes it an upper bound on the request path's own allocation
	// rate.
	AllocsPerRequest float64 `json:"allocs_per_request"`
	// AllocBytesPerRequest is the same ratio in bytes.
	AllocBytesPerRequest float64 `json:"alloc_bytes_per_request"`
}

// GCDeltaBetween differences two snapshots bracketing a phase. Counter
// resets (server restart between snapshots) yield a zero delta rather
// than garbage.
func GCDeltaBetween(before, after ServerStats) GCDelta {
	var d GCDelta
	if after.NumGC >= before.NumGC {
		d.Collections = after.NumGC - before.NumGC
	}
	reqs := after.Requests - before.Requests
	if reqs > 0 && after.Mallocs >= before.Mallocs {
		d.AllocsPerRequest = float64(after.Mallocs-before.Mallocs) / float64(reqs)
	}
	if reqs > 0 && after.TotalAllocBytes >= before.TotalAllocBytes {
		d.AllocBytesPerRequest = float64(after.TotalAllocBytes-before.TotalAllocBytes) / float64(reqs)
	}
	return d
}

// FetchStats reads the server's /stats endpoint.
func FetchStats(baseURL string) (ServerStats, error) {
	var st ServerStats
	resp, err := http.Get(baseURL + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("GET /stats: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("decoding /stats: %w", err)
	}
	return st, nil
}
