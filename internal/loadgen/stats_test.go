package loadgen

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestFetchStatsTolerant: /stats bodies from newer or older servers —
// unknown fields present, known fields absent — must decode without
// error, so the load generator never has to be version-locked to the
// server it drives.
func TestFetchStatsTolerant(t *testing.T) {
	body := `{
		"requests": 42, "p99_ms": 1.5,
		"gc_pause_p99_ms": 0.25, "num_gc": 7, "mallocs": 1234,
		"total_alloc_bytes": 99999, "heap_alloc_bytes": 4096,
		"some_future_field": {"nested": [1,2,3]},
		"adaptive_exact": {"ewma_interarrival_ms": 2, "window_ms": 1}
	}`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(body))
	}))
	defer ts.Close()
	st, err := FetchStats(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 42 || st.P99Millis != 1.5 || st.GCPauseP99Millis != 0.25 ||
		st.NumGC != 7 || st.Mallocs != 1234 || st.TotalAllocBytes != 99999 ||
		st.HeapAllocBytes != 4096 {
		t.Fatalf("bad decode: %+v", st)
	}
}

func TestGCDeltaBetween(t *testing.T) {
	before := ServerStats{Requests: 100, NumGC: 5, Mallocs: 1000, TotalAllocBytes: 64000}
	after := ServerStats{Requests: 300, NumGC: 9, Mallocs: 1400, TotalAllocBytes: 96000}
	d := GCDeltaBetween(before, after)
	if d.Collections != 4 || d.AllocsPerRequest != 2 || d.AllocBytesPerRequest != 160 {
		t.Fatalf("delta = %+v", d)
	}
	// A counter reset (restarted server) must not produce nonsense.
	if d := GCDeltaBetween(after, before); d.Collections != 0 || d.AllocsPerRequest != 0 {
		t.Fatalf("reset delta = %+v", d)
	}
}
