package loadgen

import (
	"context"
	"math"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lsh"
	"repro/internal/rng"
	"repro/internal/sampling"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// TestPoissonGaps checks the exponential inter-arrival draw against its
// two defining moments at a fixed seed: mean 1/qps and coefficient of
// variation 1 (the memoryless signature a constant-gap generator fails).
func TestPoissonGaps(t *testing.T) {
	const (
		qps = 1000.0
		n   = 200_000
	)
	r := rng.New(7)
	gaps := make([]float64, n)
	sum := 0.0
	for i := range gaps {
		gaps[i] = expGap(r.Float64(), qps)
		if gaps[i] < 0 {
			t.Fatalf("negative gap %v", gaps[i])
		}
		sum += gaps[i]
	}
	mean := sum / n
	if math.Abs(mean-1/qps) > 0.05/qps {
		t.Fatalf("mean gap = %vs, want ≈ %vs", mean, 1/qps)
	}
	varsum := 0.0
	for _, g := range gaps {
		varsum += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(varsum/n) / mean
	if math.Abs(cv-1) > 0.05 {
		t.Fatalf("coefficient of variation = %v, want ≈ 1 (exponential)", cv)
	}

	// Same seed, same gaps: the schedule is a pure function of the seed.
	r2 := rng.New(7)
	for i := 0; i < 100; i++ {
		if g := expGap(r2.Float64(), qps); g != gaps[i] {
			t.Fatalf("gap %d not reproducible: %v vs %v", i, g, gaps[i])
		}
	}
}

// TestZipfSkew draws a large sample and checks the popularity contract:
// counts decrease with rank, the head dominates under s>1, and s=0
// degenerates to uniform.
func TestZipfSkew(t *testing.T) {
	const (
		n       = 100
		samples = 200_000
	)
	z := newZipf(n, 1.2)
	r := rng.New(3)
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		k := z.sample(r.Float64())
		if k < 0 || k >= n {
			t.Fatalf("rank %d out of range", k)
		}
		counts[k]++
	}
	// Monotone in coarse buckets (individual adjacent ranks can swap by
	// sampling noise; decades cannot).
	bucket := func(lo, hi int) int {
		s := 0
		for i := lo; i < hi; i++ {
			s += counts[i]
		}
		return s
	}
	if !(bucket(0, 10) > bucket(10, 30) && bucket(10, 30) > bucket(30, 100)) {
		t.Fatalf("rank buckets not decreasing: %d / %d / %d",
			bucket(0, 10), bucket(10, 30), bucket(30, 100))
	}
	// s=1.2 over 100 ranks: rank 0 alone carries >20% of the mass.
	if frac := float64(counts[0]) / samples; frac < 0.20 {
		t.Fatalf("head rank carries %.3f of the mass, want > 0.20", frac)
	}

	// s=0: uniform within noise.
	u := newZipf(n, 0)
	r = rng.New(5)
	counts = make([]int, n)
	for i := 0; i < samples; i++ {
		counts[u.sample(r.Float64())]++
	}
	minC, maxC := counts[0], counts[0]
	for _, c := range counts {
		minC, maxC = min(minC, c), max(maxC, c)
	}
	if float64(maxC)/float64(minC) > 1.2 {
		t.Fatalf("s=0 draw not uniform: min %d max %d", minC, maxC)
	}
}

func testKeys(t *testing.T, n, dim int) []sparse.Vector {
	t.Helper()
	r := rng.New(99)
	keys := make([]sparse.Vector, n)
	for i := range keys {
		idx := []int32{int32(r.Intn(dim)), int32(r.Intn(dim)), int32(r.Intn(dim))}
		// sparse.New sorts and dedups; collisions just shorten the vector.
		x, err := sparse.New(dim, idx, []float32{1, 0.5, 0.25})
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = x
	}
	return keys
}

// TestScheduleDeterministic: the full schedule — arrival offsets, modes,
// keys, batch compositions and rendered bodies — is a pure function of
// the config.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{
		BaseURL:  "http://unused",
		QPS:      500,
		Duration: 200 * time.Millisecond,
		Mix:      Mix{Exact: 0.4, Sampled: 0.2, Seeded: 0.3, Batch: 0.1},
		Keys:     testKeys(t, 32, 64),
		ZipfS:    1.1,
		Seed:     42,
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	a, b := schedule(cfg), schedule(cfg)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("schedule not deterministic for a fixed seed")
	}
	// ~500 qps over 200ms ≈ 100 arrivals; Poisson noise stays well inside
	// a factor of two.
	if len(a) < 50 || len(a) > 200 {
		t.Fatalf("schedule has %d arrivals, want ≈ 100", len(a))
	}
	// All four kinds occur, keys stay in range, batch events carry
	// BatchSize keys.
	seen := map[reqKind]bool{}
	for _, ev := range a {
		seen[ev.kind] = true
		if ev.kind == kindBatch {
			if len(ev.batchKeys) != cfg.BatchSize {
				t.Fatalf("batch event carries %d keys, want %d", len(ev.batchKeys), cfg.BatchSize)
			}
			continue
		}
		if ev.key < 0 || ev.key >= len(cfg.Keys) {
			t.Fatalf("key %d out of range", ev.key)
		}
	}
	for _, k := range []reqKind{kindExact, kindSampled, kindSeeded, kindBatch} {
		if !seen[k] {
			t.Fatalf("kind %d never scheduled in %d arrivals", k, len(a))
		}
	}
	// A different seed produces a different schedule.
	cfg2 := cfg
	cfg2.Seed = 43
	if reflect.DeepEqual(a, schedule(cfg2)) {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}

	// Rendered bodies: identical events render identical bytes (the
	// property the server's response cache keys on), and each kind
	// renders its distinguishing fields.
	vecs := make([]string, len(cfg.Keys))
	for i, x := range cfg.Keys {
		vecs[i] = vecJSON(x)
	}
	for _, ev := range a[:min(20, len(a))] {
		p1, b1 := cfg.body(vecs, ev)
		p2, b2 := cfg.body(vecs, ev)
		if p1 != p2 || b1 != b2 {
			t.Fatalf("body rendering not deterministic: %s vs %s", b1, b2)
		}
	}
}

// TestRunSmoke is the end-to-end proof: an open-loop run against a real
// in-process slide-serve (cache enabled, micro-batching on) completes
// with positive goodput, zero hard errors, and — thanks to Zipf-skewed
// exact and seeded traffic — actual response-cache hits, visible both
// from the client (X-Cache) and the server (/stats).
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e smoke drives real HTTP traffic")
	}
	net, err := core.NewNetwork(core.Config{
		InputDim: 64,
		Seed:     11,
		Layers: []core.LayerConfig{
			{Size: 32, Activation: core.ActReLU},
			{
				Size: 256, Activation: core.ActSoftmax,
				Sampled: true, Hash: lsh.KindSimhash, K: 4, L: 8,
				Strategy: sampling.KindVanilla, Beta: 48,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(net, serve.Options{
		BatchWindow: time.Millisecond,
		CacheSize:   1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	res, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		QPS:      400,
		Duration: 500 * time.Millisecond,
		Mix:      Mix{Exact: 0.5, Sampled: 0.1, Seeded: 0.3, Batch: 0.1},
		Keys:     testKeys(t, 16, 64),
		ZipfS:    1.2,
		K:        3,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.OK == 0 {
		t.Fatalf("no traffic served: %+v", res)
	}
	if res.GoodputQPS <= 0 {
		t.Fatalf("goodput = %v, want > 0", res.GoodputQPS)
	}
	if res.Errors > 0 {
		t.Fatalf("%d hard errors against a healthy server: %+v", res.Errors, res)
	}
	// 16 keys × skewed popularity × cacheable exact+seeded majority over
	// ~200 arrivals: hits are a certainty, not a coin flip.
	if res.CacheHits == 0 {
		t.Fatalf("no cache hits observed client-side: %+v", res)
	}
	if res.P50Millis <= 0 || res.P99Millis < res.P50Millis || res.P999Millis < res.P99Millis {
		t.Fatalf("implausible latency percentiles: %+v", res)
	}

	st, err := FetchStats(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests == 0 {
		t.Fatalf("server stats saw no requests: %+v", st)
	}
	if st.CacheHits != res.CacheHits {
		t.Fatalf("server counted %d cache hits, client saw %d", st.CacheHits, res.CacheHits)
	}
	if st.CacheEntries == 0 {
		t.Fatalf("cache empty after a cacheable run: %+v", st)
	}
}

// TestRunValidation: broken configs are refused before any traffic.
func TestRunValidation(t *testing.T) {
	keys := testKeys(t, 2, 64)
	for name, cfg := range map[string]Config{
		"no url":       {QPS: 1, Duration: time.Second, Keys: keys},
		"zero qps":     {BaseURL: "http://x", Duration: time.Second, Keys: keys},
		"zero dur":     {BaseURL: "http://x", QPS: 1, Keys: keys},
		"no keys":      {BaseURL: "http://x", QPS: 1, Duration: time.Second},
		"negative mix": {BaseURL: "http://x", QPS: 1, Duration: time.Second, Keys: keys, Mix: Mix{Exact: -1}},
		"negative s":   {BaseURL: "http://x", QPS: 1, Duration: time.Second, Keys: keys, ZipfS: -0.5},
	} {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
