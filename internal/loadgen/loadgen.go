// Package loadgen is an open-loop HTTP load generator for slide-serve:
// the measurement half of the serving stack's tail-latency engineering.
//
// Open loop means arrivals follow a Poisson process at a configured
// offered rate, independent of how fast the server answers — the regime
// real traffic lives in, and the one that exposes queueing collapse.
// (A closed loop of N workers waiting on responses self-throttles
// exactly when the server saturates, hiding the tail the harness is
// trying to measure.)
//
// A run drives a configurable mix of exact, unseeded-sampled,
// seeded-sampled and bulk-batch requests whose inputs are drawn from a
// fixed key set with Zipf-distributed popularity — skewed enough that a
// response cache has something to hit — and reports percentile
// latencies, shed/deadline/error counts, and goodput (completed
// requests per second) against the offered rate.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// Mix sets the traffic composition as relative weights (they need not
// sum to 1; zero total means all-exact). Seeded requests reuse a stable
// per-key seed so repeats are cacheable by the server; Batch requests
// carry BatchSize Zipf-drawn keys through POST /predict/batch.
type Mix struct {
	Exact   float64 `json:"exact"`
	Sampled float64 `json:"sampled"`
	Seeded  float64 `json:"seeded"`
	Batch   float64 `json:"batch"`
}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// QPS is the offered request rate (arrivals per second).
	QPS float64
	// Duration bounds the measured arrival schedule; in-flight requests
	// are awaited after the last arrival.
	Duration time.Duration
	// Warmup, when > 0, prepends uncounted arrivals at the same rate:
	// they are sent (establishing connections, priming the server's
	// estimators and batcher) but excluded from every Result counter and
	// percentile. Short measured runs need it — connection setup
	// otherwise dominates the tail.
	Warmup time.Duration
	// Mix is the traffic composition.
	Mix Mix
	// Keys is the pool of input vectors; requests draw from it with
	// Zipf(ZipfS) popularity (rank 1 = Keys[0]). Required.
	Keys []sparse.Vector
	// ZipfS is the Zipf skew exponent; 0 draws keys uniformly.
	ZipfS float64
	// K is the top-k each request asks for (default 5).
	K int
	// BatchSize is the element count of each /predict/batch body
	// (default 8).
	BatchSize int
	// DeadlineMs, when > 0, is attached to every request as deadline_ms.
	DeadlineMs float64
	// Timeout bounds each HTTP round trip (default 10s).
	Timeout time.Duration
	// Seed drives the whole schedule: arrival gaps, mode choices and key
	// draws are a pure function of (Config, Seed).
	Seed uint64
	// MaxInFlight caps concurrent outstanding requests (default 512).
	// When the cap is hit a due arrival is dropped client-side and
	// counted, never delayed — delaying arrivals would close the loop.
	MaxInFlight int
}

func (c Config) withDefaults() (Config, error) {
	if c.BaseURL == "" {
		return c, fmt.Errorf("loadgen: BaseURL required")
	}
	if c.QPS <= 0 {
		return c, fmt.Errorf("loadgen: QPS must be positive, got %v", c.QPS)
	}
	if c.Duration <= 0 {
		return c, fmt.Errorf("loadgen: Duration must be positive, got %v", c.Duration)
	}
	if c.Warmup < 0 {
		return c, fmt.Errorf("loadgen: Warmup must be >= 0, got %v", c.Warmup)
	}
	if len(c.Keys) == 0 {
		return c, fmt.Errorf("loadgen: Keys required")
	}
	if c.ZipfS < 0 {
		return c, fmt.Errorf("loadgen: ZipfS must be >= 0, got %v", c.ZipfS)
	}
	if c.K <= 0 {
		c.K = 5
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 512
	}
	if c.Mix.Exact < 0 || c.Mix.Sampled < 0 || c.Mix.Seeded < 0 || c.Mix.Batch < 0 {
		return c, fmt.Errorf("loadgen: negative mix weight")
	}
	if c.Mix.Exact+c.Mix.Sampled+c.Mix.Seeded+c.Mix.Batch == 0 {
		c.Mix.Exact = 1
	}
	return c, nil
}

// Result reports one load run.
type Result struct {
	// OfferedQPS echoes the configured rate; AchievedQPS is what the
	// generator actually sent (they diverge only when the client machine
	// itself cannot keep up).
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	// GoodputQPS counts 200s per second of wall clock — the number the
	// goodput-vs-offered-load curve plots.
	GoodputQPS float64 `json:"goodput_qps"`

	Sent int64 `json:"sent"`
	OK   int64 `json:"ok"`
	// Shed counts 429s (admission control), DeadlineExceeded 504s,
	// Errors transport failures and any other status, Dropped arrivals
	// discarded client-side at the MaxInFlight cap.
	Shed             int64 `json:"shed"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	Errors           int64 `json:"errors"`
	Dropped          int64 `json:"dropped"`
	// CacheHits counts responses the server marked X-Cache: hit.
	CacheHits int64 `json:"cache_hits"`

	// Latency percentiles over successful requests, client-observed.
	P50Millis  float64 `json:"p50_ms"`
	P90Millis  float64 `json:"p90_ms"`
	P99Millis  float64 `json:"p99_ms"`
	P999Millis float64 `json:"p999_ms"`
	MeanMillis float64 `json:"mean_ms"`

	ElapsedSeconds float64 `json:"elapsed_s"`
}

// expGap draws one exponential inter-arrival gap in seconds at rate qps
// from a uniform sample u in [0, 1): -ln(1-u)/qps, the waiting time of a
// Poisson process.
func expGap(u, qps float64) float64 {
	return -math.Log1p(-u) / qps
}

// zipfSampler draws ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s via a precomputed CDF and binary search. s=0 is uniform.
type zipfSampler struct {
	cdf []float64
}

func newZipf(n int, s float64) *zipfSampler {
	cdf := make([]float64, n)
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += math.Pow(float64(r+1), -s)
		cdf[r] = sum
	}
	for r := range cdf {
		cdf[r] /= sum
	}
	return &zipfSampler{cdf: cdf}
}

// sample maps a uniform u in [0, 1) to a rank.
func (z *zipfSampler) sample(u float64) int {
	return sort.SearchFloat64s(z.cdf, u)
}

// reqKind is one scheduled request's shape.
type reqKind int

const (
	kindExact reqKind = iota
	kindSampled
	kindSeeded
	kindBatch
)

// event is one scheduled arrival: when (offset from run start), what
// (mode), and over which key(s).
type event struct {
	at   time.Duration
	kind reqKind
	key  int
	// batchKeys is set for kindBatch.
	batchKeys []int
	// warmup arrivals are sent but not counted.
	warmup bool
}

// seedFor returns the stable per-key seed attached to seeded requests.
// Stability is what makes seeded traffic cacheable: every seeded request
// for key i carries the same (input, seed) pair.
func seedFor(key int) uint64 { return uint64(key)*0x9e3779b97f4a7c15 + 1 }

// schedule materializes the full deterministic arrival schedule for a
// run: a pure function of the config (gaps, mode choices and key draws
// all come from one seeded RNG).
func schedule(cfg Config) []event {
	r := rng.New(cfg.Seed)
	z := newZipf(len(cfg.Keys), cfg.ZipfS)
	total := cfg.Mix.Exact + cfg.Mix.Sampled + cfg.Mix.Seeded + cfg.Mix.Batch
	var events []event
	at := 0.0
	for {
		at += expGap(r.Float64(), cfg.QPS)
		if at > (cfg.Warmup + cfg.Duration).Seconds() {
			return events
		}
		ev := event{at: time.Duration(at * float64(time.Second)),
			warmup: at < cfg.Warmup.Seconds()}
		switch u := r.Float64() * total; {
		case u < cfg.Mix.Exact:
			ev.kind = kindExact
		case u < cfg.Mix.Exact+cfg.Mix.Sampled:
			ev.kind = kindSampled
		case u < cfg.Mix.Exact+cfg.Mix.Sampled+cfg.Mix.Seeded:
			ev.kind = kindSeeded
		default:
			ev.kind = kindBatch
		}
		if ev.kind == kindBatch {
			ev.batchKeys = make([]int, cfg.BatchSize)
			for i := range ev.batchKeys {
				ev.batchKeys[i] = z.sample(r.Float64())
			}
		} else {
			ev.key = z.sample(r.Float64())
		}
		events = append(events, ev)
	}
}

// vecJSON pre-renders one key's indices/values JSON fragment so the hot
// dispatch path only concatenates strings. Identical requests must be
// byte-identical on the wire for the server's canonical cache keys to
// coincide — pre-rendering guarantees that for free.
func vecJSON(x sparse.Vector) string {
	var b strings.Builder
	b.WriteString(`"indices":[`)
	for i, idx := range x.Idx {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", idx)
	}
	b.WriteString(`],"values":[`)
	for i, v := range x.Val {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteString(`]`)
	return b.String()
}

// body renders the request body for one event.
func (cfg Config) body(vecs []string, ev event) (path, payload string) {
	var b strings.Builder
	tail := func() {
		fmt.Fprintf(&b, `,"k":%d`, cfg.K)
		if cfg.DeadlineMs > 0 {
			fmt.Fprintf(&b, `,"deadline_ms":%g`, cfg.DeadlineMs)
		}
		b.WriteByte('}')
	}
	if ev.kind == kindBatch {
		b.WriteString(`{"batch":[`)
		for i, k := range ev.batchKeys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteByte('{')
			b.WriteString(vecs[k])
			b.WriteByte('}')
		}
		b.WriteString(`],"sampled":true`)
		tail()
		return "/predict/batch", b.String()
	}
	b.WriteByte('{')
	b.WriteString(vecs[ev.key])
	switch ev.kind {
	case kindSampled:
		b.WriteString(`,"sampled":true`)
	case kindSeeded:
		fmt.Fprintf(&b, `,"sampled":true,"seed":%d`, seedFor(ev.key))
	}
	tail()
	return "/predict", b.String()
}

// Run executes one open-loop load run and blocks until every dispatched
// request has completed (or the context is cancelled, which stops
// scheduling new arrivals and awaits the outstanding ones).
func Run(ctx context.Context, cfg Config) (Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Result{}, err
	}
	events := schedule(cfg)
	vecs := make([]string, len(cfg.Keys))
	for i, x := range cfg.Keys {
		vecs[i] = vecJSON(x)
	}

	client := &http.Client{
		Timeout: cfg.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.MaxInFlight,
			MaxIdleConnsPerHost: cfg.MaxInFlight,
		},
	}
	defer client.CloseIdleConnections()

	var (
		sent, ok, shed, deadline, errs, dropped, cacheHits atomic.Int64
		latMu                                              sync.Mutex
		lats                                               []float64
		wg                                                 sync.WaitGroup
	)
	sem := make(chan struct{}, cfg.MaxInFlight)
	start := time.Now()

	for _, ev := range events {
		// Open loop: sleep until the scheduled arrival; if we are behind
		// (client-side stall), fire immediately rather than thinning the
		// offered load.
		if d := time.Until(start.Add(ev.at)); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		select {
		case sem <- struct{}{}:
		default:
			// The in-flight cap is the client protecting itself, not the
			// server: the arrival is dropped and counted, never queued.
			if !ev.warmup {
				dropped.Add(1)
			}
			continue
		}
		path, payload := cfg.body(vecs, ev)
		counted := !ev.warmup
		if counted {
			sent.Add(1)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			resp, err := client.Post(cfg.BaseURL+path, "application/json",
				bytes.NewReader([]byte(payload)))
			if err != nil {
				if counted {
					errs.Add(1)
				}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if !counted {
				return
			}
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
				if resp.Header.Get("X-Cache") == "hit" {
					cacheHits.Add(1)
				}
				ms := float64(time.Since(t0).Microseconds()) / 1000
				latMu.Lock()
				lats = append(lats, ms)
				latMu.Unlock()
			case http.StatusTooManyRequests:
				shed.Add(1)
			case http.StatusGatewayTimeout:
				deadline.Add(1)
			default:
				errs.Add(1)
			}
		}()
	}
	wg.Wait()
	// Goodput and achieved rate are measured over the counted window
	// only (total wall clock minus the warmup).
	elapsed := time.Since(start) - cfg.Warmup
	if elapsed <= 0 {
		elapsed = time.Since(start)
	}

	res := Result{
		OfferedQPS:       cfg.QPS,
		Sent:             sent.Load(),
		OK:               ok.Load(),
		Shed:             shed.Load(),
		DeadlineExceeded: deadline.Load(),
		Errors:           errs.Load(),
		Dropped:          dropped.Load(),
		CacheHits:        cacheHits.Load(),
		ElapsedSeconds:   elapsed.Seconds(),
	}
	if s := elapsed.Seconds(); s > 0 {
		res.AchievedQPS = float64(res.Sent) / s
		res.GoodputQPS = float64(res.OK) / s
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		sum := 0.0
		for _, l := range lats {
			sum += l
		}
		res.MeanMillis = sum / float64(len(lats))
		res.P50Millis = pctl(lats, 0.50)
		res.P90Millis = pctl(lats, 0.90)
		res.P99Millis = pctl(lats, 0.99)
		res.P999Millis = pctl(lats, 0.999)
	}
	return res, nil
}

// pctl is the nearest-rank percentile over ascending-sorted samples —
// the same definition the server's /stats uses, so client- and
// server-side tails are comparable.
func pctl(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
