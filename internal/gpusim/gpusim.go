// Package gpusim models the wall-clock timeline of the paper's TF-GPU
// baseline (TensorFlow 1.12 on a Tesla V100 32GB).
//
// We cannot run a V100, but we do not need one for the paper's comparison:
// a dense framework's accuracy-vs-ITERATION curve is determined by the
// math (identical Adam, identical full softmax), which the dense package
// executes exactly. Only the seconds axis depends on the device. This
// package supplies that axis with a standard roofline-style throughput
// model: each iteration costs
//
//	t = FLOPs/EffFLOPS + KernelOverhead*KernelsPerIter + HostOverhead
//
// where EffFLOPS is the achieved (not peak) fp32 throughput of TF-era
// dense kernels on V100 and the overhead terms model per-kernel launch and
// input-feeding costs, which dominate at small batch sizes — reproducing
// the paper's observation that on sparse-input workloads "the advantage of
// GPU over CPU is not always noticeable".
//
// DESIGN.md documents this substitution; EXPERIMENTS.md reports the
// constants next to every simulated number.
package gpusim

import (
	"fmt"

	"repro/internal/metrics"
)

// Model holds the device constants.
type Model struct {
	// Name labels the simulated device in reports.
	Name string
	// EffFLOPS is the achieved fp32 FLOP/s for framework GEMM kernels.
	// V100 peaks at 14 TFLOP/s fp32; TF 1.x realizes roughly 25-35% on
	// the paper's (batch×128×C) shapes. Default 4e12.
	EffFLOPS float64
	// KernelOverhead is the per-kernel launch cost. Default 10µs.
	KernelOverhead float64
	// KernelsPerIter is the number of launched kernels per training
	// iteration (forward + backward + optimizer for each layer).
	// Default 24, a typical count for a 2-layer TF graph with Adam.
	KernelsPerIter int
	// HostOverhead is the per-iteration host-side cost (feeding sparse
	// inputs, session overhead). Default 300µs.
	HostOverhead float64
}

// V100 returns the default Tesla V100 model used across experiments.
func V100() Model {
	return Model{
		Name:           "tf-gpu(v100-sim)",
		EffFLOPS:       4e12,
		KernelOverhead: 10e-6,
		KernelsPerIter: 24,
		HostOverhead:   300e-6,
	}
}

// SecondsPerIteration returns the modelled time of one training iteration
// that performs flops floating-point operations.
func (m Model) SecondsPerIteration(flops float64) float64 {
	if m.EffFLOPS <= 0 {
		panic("gpusim: EffFLOPS must be positive")
	}
	return flops/m.EffFLOPS + float64(m.KernelsPerIter)*m.KernelOverhead + m.HostOverhead
}

// Retime maps a measured dense-CPU curve onto the simulated device: every
// point keeps its iteration count and accuracy and receives a simulated
// elapsed time of iter*SecondsPerIteration(flopsPerIter).
func (m Model) Retime(cpu *metrics.Curve, flopsPerIter float64) *metrics.Curve {
	perIter := m.SecondsPerIteration(flopsPerIter)
	return cpu.Rescale(m.Name, func(p metrics.Point) float64 {
		return float64(p.Iter) * perIter
	})
}

// String describes the model constants for experiment reports.
func (m Model) String() string {
	return fmt.Sprintf("%s: eff=%.3g FLOP/s, %d kernels × %.0fµs + host %.0fµs per iter",
		m.Name, m.EffFLOPS, m.KernelsPerIter, m.KernelOverhead*1e6, m.HostOverhead*1e6)
}
