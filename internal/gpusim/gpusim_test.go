package gpusim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestSecondsPerIterationComponents(t *testing.T) {
	m := Model{EffFLOPS: 1e12, KernelOverhead: 1e-5, KernelsPerIter: 10, HostOverhead: 1e-4}
	got := m.SecondsPerIteration(1e9)
	want := 1e9/1e12 + 10*1e-5 + 1e-4
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Overheads floor the time for tiny kernels — the paper's "GPU
	// advantage not noticeable on sparse data" effect.
	if m.SecondsPerIteration(0) <= 0 {
		t.Fatal("zero-FLOP iteration should still cost overhead")
	}
}

func TestSecondsMonotoneInFLOPs(t *testing.T) {
	m := V100()
	prev := 0.0
	for f := 1e6; f <= 1e12; f *= 10 {
		s := m.SecondsPerIteration(f)
		if s < prev {
			t.Fatalf("time decreased with FLOPs at %g", f)
		}
		prev = s
	}
}

func TestRetimePreservesAccuracy(t *testing.T) {
	cpu := &metrics.Curve{Name: "cpu"}
	cpu.Add(metrics.Point{Iter: 100, Seconds: 50, Value: 0.2})
	cpu.Add(metrics.Point{Iter: 200, Seconds: 100, Value: 0.3})
	m := V100()
	gpu := m.Retime(cpu, 1e9)
	if len(gpu.Points) != 2 {
		t.Fatalf("point count %d", len(gpu.Points))
	}
	for i := range gpu.Points {
		if gpu.Points[i].Value != cpu.Points[i].Value || gpu.Points[i].Iter != cpu.Points[i].Iter {
			t.Fatal("Retime changed accuracy or iterations")
		}
	}
	perIter := m.SecondsPerIteration(1e9)
	if math.Abs(gpu.Points[1].Seconds-200*perIter) > 1e-9 {
		t.Fatalf("retimed seconds %v, want %v", gpu.Points[1].Seconds, 200*perIter)
	}
	// The simulated V100 should beat a slow CPU on identical math.
	if gpu.Points[1].Seconds >= cpu.Points[1].Seconds {
		t.Fatal("simulated V100 slower than the 2 GFLOP/s CPU in this scenario")
	}
}

func TestBadModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero EffFLOPS did not panic")
		}
	}()
	Model{}.SecondsPerIteration(1)
}

func TestStringMentionsConstants(t *testing.T) {
	s := V100().String()
	if !strings.Contains(s, "FLOP/s") || !strings.Contains(s, "v100") {
		t.Fatalf("String() = %q", s)
	}
}
