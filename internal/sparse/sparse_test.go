package sparse

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewSortsAndValidates(t *testing.T) {
	v, err := New(10, []int32{5, 1, 3}, []float32{5, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < v.NNZ(); j++ {
		if v.Idx[j-1] >= v.Idx[j] {
			t.Fatalf("indices not ascending: %v", v.Idx)
		}
	}
	if _, err := New(4, []int32{4}, []float32{1}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := New(4, []int32{-1}, []float32{1}); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := New(4, []int32{0, 1}, []float32{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestNewMergesDuplicates(t *testing.T) {
	v, err := New(10, []int32{2, 2, 5}, []float32{1, 3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 2 || v.Val[0] != 4 || v.Idx[0] != 2 {
		t.Fatalf("duplicates not merged: %+v", v)
	}
}

func TestFromDenseRoundTrip(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		d := make([]float32, 32)
		for i := range d {
			if r.Bernoulli(0.3) {
				d[i] = r.NormFloat32()
			}
		}
		v := FromDense(d)
		back := v.Dense()
		for i := range d {
			if d[i] != back[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDotMatchesDense(t *testing.T) {
	r := rng.New(4)
	d := make([]float32, 64)
	w := make([]float32, 64)
	for i := range d {
		if r.Bernoulli(0.25) {
			d[i] = r.NormFloat32()
		}
		w[i] = r.NormFloat32()
	}
	v := FromDense(d)
	var want float64
	for i := range d {
		want += float64(d[i]) * float64(w[i])
	}
	if got := float64(v.Dot(w)); math.Abs(got-want) > 1e-4 {
		t.Fatalf("Dot = %v, want %v", got, want)
	}
}

func TestSparsityAndNorm(t *testing.T) {
	v := MustNew(100, []int32{0, 1}, []float32{3, 4})
	if v.NNZ() != 2 || v.Sparsity() != 0.02 {
		t.Fatalf("NNZ/Sparsity wrong: %d %v", v.NNZ(), v.Sparsity())
	}
	if math.Abs(v.Norm2()-5) > 1e-6 {
		t.Fatalf("Norm2 = %v", v.Norm2())
	}
}

func TestCloneIsDeep(t *testing.T) {
	v := MustNew(4, []int32{1}, []float32{2})
	c := v.Clone()
	c.Val[0] = 99
	if v.Val[0] != 2 {
		t.Fatal("Clone aliases original storage")
	}
}

// TestTopKMatchesSort is the property test for the DOPH binarization
// front end: TopK must agree with a full sort under the same tie rule.
func TestTopKMatchesSort(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%64 + 1
		k := int(kRaw)%n + 1
		r := rng.New(seed)
		d := make([]float32, n)
		for i := range d {
			d[i] = float32(r.Intn(10)) // ties likely
		}
		got := TopK(d, k)
		ord := make([]int32, n)
		for i := range ord {
			ord[i] = int32(i)
		}
		sort.SliceStable(ord, func(a, b int) bool {
			if d[ord[a]] != d[ord[b]] {
				return d[ord[a]] > d[ord[b]]
			}
			return ord[a] < ord[b]
		})
		if len(got) != k {
			return false
		}
		for i := range got {
			if got[i] != ord[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestViewAliasesOrNormalizes: well-formed component lists become
// zero-copy views; anything unsorted, duplicated or out of range falls
// back to New's copying normalization.
func TestViewAliasesOrNormalizes(t *testing.T) {
	idx := []int32{1, 4, 9}
	val := []float32{1, 2, 3}
	v, err := View(16, idx, val)
	if err != nil {
		t.Fatal(err)
	}
	if &v.Idx[0] != &idx[0] || &v.Val[0] != &val[0] {
		t.Fatal("View copied well-formed components")
	}
	v, err = View(16, []int32{9, 4, 1}, []float32{3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v.Idx[0] != 1 || v.Val[0] != 1 || v.Idx[2] != 9 {
		t.Fatalf("unsorted View not normalized: %v/%v", v.Idx, v.Val)
	}
	if _, err := View(4, []int32{1, 9}, []float32{1, 2}); err == nil {
		t.Fatal("View accepted out-of-range index")
	}
	if _, err := View(4, []int32{1}, nil); err == nil {
		t.Fatal("View accepted mismatched lengths")
	}
	v, err = View(8, []int32{2, 2}, []float32{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Idx) != 1 || v.Val[0] != 2 {
		t.Fatalf("duplicate indices not merged: %v/%v", v.Idx, v.Val)
	}
}

// TestSelectorReuseZeroAllocs pins the serving hot path's selection cost:
// once the Selector's heap and the output buffer cover k, repeated
// selections allocate nothing and keep agreeing with one-shot TopK.
func TestSelectorReuseZeroAllocs(t *testing.T) {
	r := rng.New(7)
	d := make([]float32, 4096)
	for i := range d {
		d[i] = float32(r.Intn(1000))
	}
	var s Selector
	out := make([]int32, 0, 32)
	out = s.TopKInto(out, d, 32)
	if want := TopK(d, 32); !sliceEq(out, want) {
		t.Fatalf("TopKInto %v != TopK %v", out, want)
	}
	allocs := testing.AllocsPerRun(50, func() {
		out = s.TopKInto(out, d, 32)
	})
	if allocs != 0 {
		t.Fatalf("reused Selector made %.0f allocs/op, want 0", allocs)
	}
}

func sliceEq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTopKEdgeCases(t *testing.T) {
	if got := TopK(nil, 3); len(got) != 0 {
		t.Fatalf("TopK(nil) = %v", got)
	}
	if got := TopK([]float32{1, 2}, 0); got != nil {
		t.Fatalf("TopK(k=0) = %v", got)
	}
	got := TopK([]float32{1, 2}, 10)
	if len(got) != 2 || got[0] != 1 {
		t.Fatalf("TopK overshoot = %v", got)
	}
}
