// Package sparse defines the sparse vector representation shared by the
// dataset loaders, LSH hash families and the SLIDE network.
//
// A Vector is a parallel (index, value) pair list over a fixed dimension.
// SLIDE's workloads (extreme classification) have input sparsity well under
// 0.1%, so everything upstream of the first layer operates on this type and
// never materializes dense inputs.
package sparse

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// Vector is a sparse float32 vector of dimension Dim with non-zero entries
// at Idx (strictly increasing) holding values Val. len(Idx) == len(Val).
type Vector struct {
	Dim int
	Idx []int32
	Val []float32
}

// New returns a sparse vector over dim copying the given components.
// Indices are sorted and validated; duplicate indices are summed.
func New(dim int, idx []int32, val []float32) (Vector, error) {
	if len(idx) != len(val) {
		return Vector{}, fmt.Errorf("sparse: %d indices but %d values", len(idx), len(val))
	}
	v := Vector{Dim: dim, Idx: append([]int32(nil), idx...), Val: append([]float32(nil), val...)}
	if err := v.normalizeInPlace(); err != nil {
		return Vector{}, err
	}
	return v, nil
}

// View builds a Vector over the caller's idx/val storage without copying
// — the allocation-free entry point for serving hot paths that own the
// component buffers. The fast path (strictly ascending indices, all in
// range) touches nothing; inputs that need sorting, duplicate merging or
// range diagnostics fall back to the copying New. The returned vector
// aliases idx and val: the caller must not mutate them while the vector
// is in use.
func View(dim int, idx []int32, val []float32) (Vector, error) {
	if len(idx) != len(val) {
		return Vector{}, fmt.Errorf("sparse: %d indices but %d values", len(idx), len(val))
	}
	prev := int32(-1)
	for _, i := range idx {
		if i <= prev || int(i) >= dim {
			return New(dim, idx, val)
		}
		prev = i
	}
	return Vector{Dim: dim, Idx: idx, Val: val}, nil
}

// MustNew is New but panics on error; for tests and literals.
func MustNew(dim int, idx []int32, val []float32) Vector {
	v, err := New(dim, idx, val)
	if err != nil {
		panic(err)
	}
	return v
}

// FromDense returns the sparse form of the dense vector d, keeping entries
// with |d[i]| > 0.
func FromDense(d []float32) Vector {
	v := Vector{Dim: len(d)}
	for i, x := range d {
		if x != 0 {
			v.Idx = append(v.Idx, int32(i))
			v.Val = append(v.Val, x)
		}
	}
	return v
}

func (v *Vector) normalizeInPlace() error {
	if !sort.SliceIsSorted(v.Idx, func(a, b int) bool { return v.Idx[a] < v.Idx[b] }) {
		ord := make([]int, len(v.Idx))
		for i := range ord {
			ord[i] = i
		}
		sort.Slice(ord, func(a, b int) bool { return v.Idx[ord[a]] < v.Idx[ord[b]] })
		ni := make([]int32, len(v.Idx))
		nv := make([]float32, len(v.Val))
		for k, o := range ord {
			ni[k], nv[k] = v.Idx[o], v.Val[o]
		}
		v.Idx, v.Val = ni, nv
	}
	// Merge duplicates and validate the index range.
	out := 0
	for i := 0; i < len(v.Idx); i++ {
		if v.Idx[i] < 0 || int(v.Idx[i]) >= v.Dim {
			return fmt.Errorf("sparse: index %d out of range [0,%d)", v.Idx[i], v.Dim)
		}
		if out > 0 && v.Idx[i] == v.Idx[out-1] {
			v.Val[out-1] += v.Val[i]
			continue
		}
		v.Idx[out], v.Val[out] = v.Idx[i], v.Val[i]
		out++
	}
	v.Idx, v.Val = v.Idx[:out], v.Val[:out]
	return nil
}

// NNZ returns the number of stored non-zero components.
func (v Vector) NNZ() int { return len(v.Idx) }

// Sparsity returns NNZ/Dim, the fraction of non-zero components.
func (v Vector) Sparsity() float64 {
	if v.Dim == 0 {
		return 0
	}
	return float64(v.NNZ()) / float64(v.Dim)
}

// Dense materializes the vector as a dense slice of length Dim.
func (v Vector) Dense() []float32 {
	d := make([]float32, v.Dim)
	for j, i := range v.Idx {
		d[i] = v.Val[j]
	}
	return d
}

// Dot returns the inner product with a dense vector w of length >= Dim.
func (v Vector) Dot(w []float32) float32 {
	var s float32
	for j, i := range v.Idx {
		s += v.Val[j] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v.Val {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	return Vector{
		Dim: v.Dim,
		Idx: append([]int32(nil), v.Idx...),
		Val: append([]float32(nil), v.Val...),
	}
}

// TopK returns the indices of the k largest values in the dense vector d
// (by value, ties broken by lower index), in descending value order.
// If k >= len(d) all indices are returned. Used by the DOPH binarization
// front end (App. A) which thresholds the top-k magnitudes to 1.
func TopK(d []float32, k int) []int32 {
	var s Selector
	return s.TopKInto(nil, d, k)
}

// Selector reuses the bounded-heap scratch across top-k selections so a
// steady-state caller (a pooled predictor worker state, a serving
// workspace) performs zero allocations per selection. The zero value is
// ready to use; a Selector must not be used concurrently.
type Selector struct{ h []heapItem }

// TopKInto is TopK appending into out (reusing its capacity): the k
// largest values' indices, descending by value with ties broken by lower
// index. The heap scratch lives in the Selector, so once out's capacity
// covers k the selection allocates nothing.
func (s *Selector) TopKInto(out []int32, d []float32, k int) []int32 {
	out = out[:0]
	if k <= 0 {
		return out
	}
	if k > len(d) {
		k = len(d)
	}
	// Bounded min-heap over (value, index); O(n log k) as the paper's
	// priority-queue implementation (App. A).
	if cap(s.h) < k {
		s.h = make([]heapItem, 0, k)
	}
	h := s.h[:0]
	for i, v := range d {
		if len(h) < k {
			h = append(h, heapItem{v, int32(i)})
			siftUp(h, len(h)-1)
			continue
		}
		if less(heapItem{v, int32(i)}, h[0]) {
			continue
		}
		h[0] = heapItem{v, int32(i)}
		siftDown(h, 0)
	}
	s.h = h
	slices.SortFunc(h, descending)
	for _, it := range h {
		out = append(out, it.idx)
	}
	return out
}

// descending orders heap items for the final result: larger values (and,
// on ties, lower indices) first — the same total order TopK has always
// produced, every (value, index) pair being distinct.
func descending(a, b heapItem) int {
	if less(b, a) {
		return -1
	}
	if less(a, b) {
		return 1
	}
	return 0
}

// TopKSparse returns the indices of the k largest stored values of a
// sparse vector given as parallel (idx, val) lists, in descending value
// order with ties broken by lower index. Used by DOPH to binarize inputs
// over their non-zero support only.
func TopKSparse(idx []int32, val []float32, k int) []int32 {
	if k <= 0 {
		return nil
	}
	if k > len(idx) {
		k = len(idx)
	}
	h := make([]heapItem, 0, k)
	for j, v := range val {
		it := heapItem{v, idx[j]}
		if len(h) < k {
			h = append(h, it)
			siftUp(h, len(h)-1)
			continue
		}
		if less(it, h[0]) {
			continue
		}
		h[0] = it
		siftDown(h, 0)
	}
	sort.Slice(h, func(a, b int) bool { return less(h[b], h[a]) })
	out := make([]int32, len(h))
	for i, it := range h {
		out[i] = it.idx
	}
	return out
}

type heapItem struct {
	val float32
	idx int32
}

// less orders items ascending by value, descending by index, so the heap
// root is the weakest candidate and low indices win ties.
func less(a, b heapItem) bool {
	if a.val != b.val {
		return a.val < b.val
	}
	return a.idx > b.idx
}

func siftUp(h []heapItem, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !less(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func siftDown(h []heapItem, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && less(h[l], h[m]) {
			m = l
		}
		if r < len(h) && less(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
