// Package serve is the slide-serve HTTP front end as a library: model
// serving with micro-batching, atomic engine hot-swap (POST /reload,
// SIGHUP), per-request deadlines, admission control with a latency
// budget, and a generation-keyed response cache.
//
// cmd/slide-serve wraps it in a configured http.Server; the experiment
// harness and the load-generator tests embed it directly so a real
// serving stack can be driven in-process.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/sparse"
)

// Options configures the serving front end.
type Options struct {
	// DefaultK is used when a request omits k; MaxK caps requested k.
	DefaultK int
	MaxK     int
	// BatchWindow is how long the micro-batcher waits to gather
	// concurrent requests into one PredictBatch call; 0 disables
	// batching and every request runs its own single-example pass.
	// With AdaptiveWindow it is the upper clamp instead of the fixed
	// wait.
	BatchWindow time.Duration
	// AdaptiveWindow derives each micro-batch's gather window from an
	// EWMA of the observed request inter-arrival time instead of waiting
	// the full BatchWindow: long enough to fill BatchMax at the current
	// rate, zero when no second request is expected in time, clamped to
	// [0, BatchWindow].
	AdaptiveWindow bool
	// BatchMax bounds the number of requests per micro-batch.
	BatchMax int
	// BatchBodyMax bounds the number of vectors a single /predict/batch
	// request may carry.
	BatchBodyMax int
	// ModelPath is the model file the server was started from and the
	// default source for POST /reload; empty disables path-less reloads.
	ModelPath string
	// LatencyBudget enables admission control: when the expected wait of
	// a new request (queued work × observed per-element service time)
	// would push its total latency beyond the budget, the request is
	// shed with 429 and a Retry-After header instead of joining a queue
	// it cannot clear in time. 0 disables shedding.
	LatencyBudget time.Duration
	// CacheSize bounds the response cache in entries. Exact and seeded
	// sampled predictions are pure functions of (input, k, seed) within
	// one engine generation, so their serialized response bodies are
	// cached and replayed byte-identically until the next engine swap.
	// 0 disables the cache.
	CacheSize int
	// MaxBodyBytes caps the /predict request body; /predict/batch allows
	// 16x it (bulk bodies carry up to BatchBodyMax vectors) and /reload
	// a quarter (its body is one path). 0 keeps the 4 MiB default, which
	// preserves the previous hard-coded 4/64/1 MiB caps.
	MaxBodyBytes int64
	// NoPooling disables the per-request workspace pool: every request
	// allocates its decode scratch, vector components, result slices and
	// response buffer fresh. It exists for measurement — the serving
	// harness drives the same operating points with pooling on and off
	// to record the GC-pause trajectory this PR buys — not for
	// production use.
	NoPooling bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// server's own mux (nothing is registered globally), for heap and
	// allocation profiling against a live server.
	EnablePprof bool
}

func (o Options) withDefaults() Options {
	if o.DefaultK <= 0 {
		o.DefaultK = 5
	}
	if o.MaxK <= 0 {
		o.MaxK = 100
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 64
	}
	if o.BatchBodyMax <= 0 {
		o.BatchBodyMax = 1024
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 22
	}
	return o
}

// engine is one servable (Network, Predictor) pair. The server publishes
// the current engine through an atomic pointer — the same swap-a-handle
// idiom the core uses for hash-table rebuilds — so POST /reload replaces
// the whole pair in one store while in-flight requests finish on the
// engine they started with (pendingReq pins it), even if the new model
// has a different shape.
type engine struct {
	net   *core.Network
	pred  *core.Predictor
	model string // file the pair was loaded from ("" for in-memory models)
	// gen is the engine's generation: 0 for the boot engine, the reload
	// counter value for every engine swapped in after it. Response-cache
	// keys embed it, so entries filled against one model can never be
	// served from another.
	gen int64
}

func newEngine(net *core.Network, model string, gen int64) (*engine, error) {
	pred, err := net.NewPredictor()
	if err != nil {
		return nil, err
	}
	return &engine{net: net, pred: pred, model: model, gen: gen}, nil
}

// Server owns the swappable engine and the micro-batching queue in front
// of it.
type Server struct {
	eng  atomic.Pointer[engine]
	opts Options

	// reloadMu serializes /reload so concurrent reloads do not waste
	// duplicate model loads; prediction traffic never takes it.
	reloadMu sync.Mutex
	reloads  atomic.Int64

	reqCh chan *pendingReq
	done  chan struct{}
	wg    sync.WaitGroup

	stats statsRecorder
	adm   admission
	cache *respCache
	// arrivals tracks one inter-arrival estimator per inference mode,
	// indexed by modeIdx: exact and sampled requests have very different
	// service times and traffic mixes, so each micro-batch's gather
	// window is sized from the arrival rate of its own mode rather than
	// a blended estimate that overstates both.
	arrivals [2]arrivalEstimator

	// wsPool recycles per-request workspaces (see workspace.go); it is
	// per-server so Options.NoPooling stays a per-server decision.
	wsPool sync.Pool

	// Batcher-owned scratch, touched only from the batchLoop goroutine
	// (runBatch callers): the gather slice, the reused gather timer, the
	// per-batch (engine, mode) group partition, the seeded side list,
	// the group input vectors, and the predictor's reusable batch result
	// storage. Reusing them makes a steady-state micro-batch cycle
	// allocation-free.
	gather      []*pendingReq
	gatherTimer *time.Timer
	groups      []reqGroup
	seededReqs  []*pendingReq
	groupXs     []sparse.Vector
	batchRes    core.BatchResults
}

// reqGroup is one (engine, mode) partition of a gathered micro-batch;
// the slice of groups and each group's request list are reused across
// batches.
type reqGroup struct {
	key  batchGroup
	reqs []*pendingReq
}

// modeIdx indexes per-mode state: 0 exact, 1 sampled.
func modeIdx(sampled bool) int {
	if sampled {
		return 1
	}
	return 0
}

// pendingReq is one /predict request waiting for a micro-batch slot. It
// pins the engine that validated it, so a reload mid-queue cannot run the
// request against a model with a different input dimension.
type pendingReq struct {
	eng     *engine
	x       sparse.Vector
	k       int
	sampled bool
	// seeded marks a request carrying a "seed" field; its sampled
	// prediction must be a pure function of (x, seed).
	seeded bool
	seed   uint64
	// deadline is the absolute point the request's answer stops being
	// useful (zero: none). The batcher prunes requests already past it
	// instead of computing them, and derives the batch context from the
	// group's deadlines so PredictBatch cancels doomed fan-outs.
	deadline time.Time
	reply    chan batchReply
	// ids/scores are the request's result buffers, owned by its
	// workspace and reused across requests: runOne predicts straight
	// into them, and the batcher copies its group's shared results into
	// them before replying, so the reply never aliases scratch another
	// request might reuse.
	ids    []int32
	scores []float32
}

type batchReply struct {
	ids       []int32
	scores    []float32
	batchSize int
	err       error
}

// New builds a server over an already-loaded network. The returned
// Server is ready to serve via Handler; Close stops its micro-batcher.
func New(net *core.Network, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	eng, err := newEngine(net, opts.ModelPath, 0)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:  opts,
		reqCh: make(chan *pendingReq, 4*opts.BatchMax),
		done:  make(chan struct{}),
	}
	for m := range s.arrivals {
		s.arrivals[m].gapCapNS = gapCapWindows * float64(opts.BatchWindow)
	}
	s.adm.budget = opts.LatencyBudget
	if opts.CacheSize > 0 {
		s.cache = newRespCache(opts.CacheSize)
	}
	s.eng.Store(eng)
	s.wg.Add(1)
	go s.batchLoop()
	return s, nil
}

// Close stops the micro-batcher. Requests already queued are served
// (batchLoop drains the queue before exiting); a request that races past
// the drain gets an error reply from its own wait on s.done rather than
// blocking forever.
func (s *Server) Close() {
	close(s.done)
	s.wg.Wait()
}

// Handler returns the HTTP routing for the server's endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", s.handlePredict)
	mux.HandleFunc("POST /predict/batch", s.handlePredictBatch)
	mux.HandleFunc("POST /reload", s.handleReload)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	if s.opts.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// deadlineHeader carries a per-request deadline in milliseconds; the
// body's deadline_ms field does the same for clients that cannot set
// headers. When both are present the tighter one wins.
const deadlineHeader = "X-Slide-Deadline-Ms"

// requestDeadline resolves a request's deadline budget from body field
// and header; 0 means none. A malformed header is an error the client
// should hear about, not a silently unbounded request.
func requestDeadline(bodyMs float64, h http.Header) (time.Duration, error) {
	d := time.Duration(bodyMs * float64(time.Millisecond))
	if v := h.Get(deadlineHeader); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			return 0, fmt.Errorf("bad %s header %q", deadlineHeader, v)
		}
		hd := time.Duration(ms * float64(time.Millisecond))
		if d == 0 || (hd > 0 && hd < d) {
			d = hd
		}
	}
	if d < 0 {
		return 0, fmt.Errorf("negative deadline_ms")
	}
	return d, nil
}

// predictRequest is the POST /predict body: a sparse feature vector as
// parallel index/value lists, the requested top-k, and whether to use
// SLIDE's sub-linear sampled inference or the exact full forward pass.
// An optional seed makes a sampled prediction deterministic: identical
// (indices, values, k, seed) requests return identical ids and scores no
// matter what other traffic the server is handling. Exact predictions
// are always deterministic; seed is ignored for them. An optional
// deadline_ms bounds how long the caller will wait: work that cannot
// finish inside it is cancelled (504) instead of computed.
//
// The handler no longer decodes into this struct — decodePredict
// (json.go) parses the same schema into pooled workspace buffers — but
// it remains the authoritative wire-format declaration, and the codec
// tests cross-check the hand-rolled parser against it.
type predictRequest struct {
	Indices    []int32   `json:"indices"`
	Values     []float32 `json:"values"`
	K          int       `json:"k"`
	Sampled    bool      `json:"sampled"`
	Seed       *uint64   `json:"seed"`
	DeadlineMs float64   `json:"deadline_ms"`
}

type predictResponse struct {
	IDs       []int32   `json:"ids"`
	Scores    []float32 `json:"scores"`
	Mode      string    `json:"mode"`
	BatchSize int       `json:"batch_size"`
	Millis    float64   `json:"ms"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	ws := s.getWorkspace()
	if s.processPredict(w, r, ws) {
		s.putWorkspace(ws)
	}
}

// processPredict serves one /predict on a checked-out workspace. It is
// the whole request path below the net/http connection layer — body
// read, decode, validation, cache, admission, dispatch, encode, write —
// and on the steady-state cache-miss path it performs zero heap
// allocations (the regression test pins exactly this seam). The return
// value reports whether ws is safe to pool again: false exactly when
// the request was abandoned after joining the micro-batch queue, so the
// batcher may still write into ws's buffers and send on its reply
// channel.
func (s *Server) processPredict(w http.ResponseWriter, r *http.Request, ws *reqWorkspace) bool {
	t0 := time.Now()
	var err error
	ws.body, err = readBody(r.Body, ws.body, s.opts.MaxBodyBytes)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return true
	}
	ws.idx, ws.val, err = decodePredict(ws.body, ws.idx, ws.val, &ws.params)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return true
	}
	if len(ws.idx) != len(ws.val) {
		httpError(w, http.StatusBadRequest, "%d indices but %d values", len(ws.idx), len(ws.val))
		return true
	}
	if len(ws.idx) == 0 {
		httpError(w, http.StatusBadRequest, "empty feature vector")
		return true
	}
	k := ws.params.k
	if k <= 0 {
		k = s.opts.DefaultK
	}
	if k > s.opts.MaxK {
		k = s.opts.MaxK
	}
	budget, err := requestDeadline(ws.params.deadlineMs, r.Header)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return true
	}
	eng := s.eng.Load()
	// View, not New: well-formed component lists become a zero-copy
	// vector over the workspace's buffers (ill-formed ones fall back to
	// the copying, validating constructor).
	x, err := sparse.View(eng.net.Config().InputDim, ws.idx, ws.val)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad feature vector: %v", err)
		return true
	}

	p := &ws.pr
	p.eng, p.x, p.k, p.sampled = eng, x, k, ws.params.sampled
	p.seeded = ws.params.sampled && ws.params.seeded
	p.seed = ws.params.seed
	p.deadline = time.Time{}
	ctx := r.Context()
	if budget > 0 {
		p.deadline = t0.Add(budget)
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, p.deadline)
		defer cancel()
	}

	// Response cache: exact predictions are always deterministic and
	// seeded sampled ones are pure functions of (input, seed), so within
	// one engine generation their serialized bodies can be replayed
	// verbatim. Hits bypass the queue and the admission gate — they cost
	// microseconds, shedding them would protect nothing.
	cacheable := s.cache != nil && (!p.sampled || p.seeded)
	var key string
	if cacheable {
		key = cacheKey(eng.gen, x, k, p.sampled, p.seeded, p.seed)
		if body, ok := s.cache.get(key); ok {
			s.stats.cacheHits.Add(1)
			s.stats.record(float64(time.Since(t0).Microseconds())/1000, 1)
			w.Header().Set("X-Cache", "hit")
			writeRawJSON(w, http.StatusOK, body)
			return true
		}
		s.stats.cacheMisses.Add(1)
		w.Header().Set("X-Cache", "miss")
	}

	// Admission control: compare the request's expected total latency
	// (work already in flight × measured per-element service time) to
	// the budget and shed with 429 + Retry-After rather than queue work
	// that is doomed to miss it.
	if wait, ok := s.adm.admit(1); !ok {
		s.stats.sheds.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(wait))
		httpError(w, http.StatusTooManyRequests,
			"shed: expected wait %.1fms exceeds latency budget %.1fms",
			float64(wait.Microseconds())/1000, float64(s.opts.LatencyBudget.Microseconds())/1000)
		return true
	}
	s.adm.start(1)
	defer s.adm.done(1)

	var rep batchReply
	if p.sampled && p.seeded {
		// Seeded requests gain nothing from gathering — they always run
		// as individual seeded predictions — so skip the micro-batch
		// queue: no window wait, and a slow seeded pass never
		// head-of-line-blocks the batcher for unrelated traffic.
		rep = s.runOne(ctx, p)
	} else if s.opts.BatchWindow > 0 {
		// Only queue-bound requests feed their mode's arrival-rate
		// estimate (they are the population the gather window is sized
		// for), and only when the adaptive window consumes it — the
		// estimator's mutex has no business on the hot path of a
		// fixed-window deployment.
		if s.opts.AdaptiveWindow {
			s.arrivals[modeIdx(p.sampled)].observe(t0)
		}
		select {
		case s.reqCh <- p:
		case <-s.done:
			httpError(w, http.StatusServiceUnavailable, "server shutting down")
			return true
		case <-ctx.Done():
			s.replyCancelled(w, ctx, "cancelled while queued")
			return true
		}
		select {
		case rep = <-p.reply:
		case <-s.done:
			// Shutdown raced our enqueue past the batcher's final
			// drain; answer rather than wait on a reply that may
			// never come. The workspace stays out of the pool: the
			// batcher may still reply into it.
			httpError(w, http.StatusServiceUnavailable, "server shutting down")
			return false
		case <-ctx.Done():
			// The batcher will still complete (or prune) the work and
			// drop the buffered reply; the client has gone away or run
			// out of deadline. The workspace is leaked to the garbage
			// collector rather than pooled — the batcher may still
			// write into its buffers.
			s.replyCancelled(w, ctx, "cancelled")
			return false
		}
	} else {
		rep = s.runOne(ctx, p)
	}
	if rep.err != nil {
		if errors.Is(rep.err, context.DeadlineExceeded) {
			s.stats.deadlineExceeded.Add(1)
			httpError(w, http.StatusGatewayTimeout, "deadline exceeded: %v", rep.err)
			return true
		}
		if errors.Is(rep.err, context.Canceled) {
			httpError(w, http.StatusServiceUnavailable, "cancelled: %v", rep.err)
			return true
		}
		httpError(w, http.StatusInternalServerError, "predict: %v", rep.err)
		return true
	}

	mode := "exact"
	if p.sampled {
		mode = "sampled"
	}
	s.adm.observeSojourn(time.Since(t0))
	ms := float64(time.Since(t0).Microseconds()) / 1000
	s.stats.record(ms, rep.batchSize)
	ws.resp = appendPredictResponse(ws.resp[:0], rep.ids, rep.scores, mode, rep.batchSize, ms)
	if cacheable {
		// The cache owns its copy: ws.resp is workspace scratch and will
		// be overwritten by the next request this workspace serves.
		s.cache.put(key, append([]byte(nil), ws.resp...))
	}
	writeRawJSON(w, http.StatusOK, ws.resp)
	return true
}

// replyCancelled maps a dead request context to the right status: 504
// for a spent deadline (counted), 503 for a vanished client.
func (s *Server) replyCancelled(w http.ResponseWriter, ctx context.Context, what string) {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		s.stats.deadlineExceeded.Add(1)
		httpError(w, http.StatusGatewayTimeout, "%s: deadline exceeded", what)
		return
	}
	httpError(w, http.StatusServiceUnavailable, "%s: %v", what, ctx.Err())
}

// retryAfterSeconds renders an expected wait as a Retry-After value:
// whole seconds, at least 1 (the header has no sub-second form).
func retryAfterSeconds(wait time.Duration) string {
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// batchPredictRequest is the POST /predict/batch body: a list of sparse
// feature vectors sharing one k / mode / optional seed / optional
// deadline. Bulk clients use it to hit the Predictor's multi-core
// PredictBatch fan-out directly — no micro-batch gathering window, no
// per-vector HTTP overhead. With a seed, element i is seeded
// deterministically from seed and i exactly as PredictBatchSampled
// documents. Decoded by decodeBatch (json.go) into pooled workspace
// buffers; the struct remains the wire-format declaration.
type batchPredictRequest struct {
	Batch []struct {
		Indices []int32   `json:"indices"`
		Values  []float32 `json:"values"`
	} `json:"batch"`
	K          int     `json:"k"`
	Sampled    bool    `json:"sampled"`
	Seed       *uint64 `json:"seed"`
	DeadlineMs float64 `json:"deadline_ms"`
}

type batchPredictResponse struct {
	Results []predictResult `json:"results"`
	Mode    string          `json:"mode"`
	Count   int             `json:"count"`
	Millis  float64         `json:"ms"`
}

type predictResult struct {
	IDs    []int32   `json:"ids"`
	Scores []float32 `json:"scores"`
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	ws := s.getWorkspace()
	s.processBatch(w, r, ws)
	// The bulk path is fully synchronous — nothing escapes the call —
	// so the workspace is always safe to pool again.
	s.putWorkspace(ws)
}

// processBatch serves one /predict/batch on a checked-out workspace:
// element component lists parse into per-slot buffers, the fan-out
// writes into the workspace's BatchResults, and the response encodes
// into the workspace's buffer — allocation-free at steady state for
// repeat batch shapes (modulo the fan-out goroutines on multi-core).
func (s *Server) processBatch(w http.ResponseWriter, r *http.Request, ws *reqWorkspace) {
	t0 := time.Now()
	var err error
	ws.body, err = readBody(r.Body, ws.body, 16*s.opts.MaxBodyBytes)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if err := decodeBatch(ws.body, ws); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if ws.nBatch == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if ws.nBatch > s.opts.BatchBodyMax {
		httpError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", ws.nBatch, s.opts.BatchBodyMax)
		return
	}
	k := ws.params.k
	if k <= 0 {
		k = s.opts.DefaultK
	}
	if k > s.opts.MaxK {
		k = s.opts.MaxK
	}
	budget, err := requestDeadline(ws.params.deadlineMs, r.Header)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	eng := s.eng.Load()
	dim := eng.net.Config().InputDim
	if cap(ws.xs) < ws.nBatch {
		ws.xs = make([]sparse.Vector, 0, ws.nBatch)
	}
	ws.xs = ws.xs[:0]
	for i := 0; i < ws.nBatch; i++ {
		if len(ws.elemIdx[i]) != len(ws.elemVal[i]) {
			httpError(w, http.StatusBadRequest, "element %d: %d indices but %d values", i, len(ws.elemIdx[i]), len(ws.elemVal[i]))
			return
		}
		if len(ws.elemIdx[i]) == 0 {
			httpError(w, http.StatusBadRequest, "element %d: empty feature vector", i)
			return
		}
		x, err := sparse.View(dim, ws.elemIdx[i], ws.elemVal[i])
		if err != nil {
			httpError(w, http.StatusBadRequest, "element %d: bad feature vector: %v", i, err)
			return
		}
		ws.xs = append(ws.xs, x)
	}
	xs := ws.xs

	// Admission weighs the bulk body by its element count: a 100-vector
	// batch displaces 100 queued singles' worth of service time.
	if wait, ok := s.adm.admit(int64(len(xs))); !ok {
		s.stats.sheds.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(wait))
		httpError(w, http.StatusTooManyRequests,
			"shed: expected wait %.1fms for %d elements exceeds latency budget %.1fms",
			float64(wait.Microseconds())/1000, len(xs), float64(s.opts.LatencyBudget.Microseconds())/1000)
		return
	}
	s.adm.start(int64(len(xs)))
	defer s.adm.done(int64(len(xs)))

	ctx := r.Context()
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, t0.Add(budget))
		defer cancel()
	}

	mode := "exact"
	switch {
	case ws.params.sampled && ws.params.seeded:
		mode = "sampled"
		err = eng.pred.PredictBatchInto(ctx, xs, k, true, &ws.res, core.PredictOpts{Seed: ws.params.seed})
	case ws.params.sampled:
		mode = "sampled"
		err = eng.pred.PredictBatchInto(ctx, xs, k, true, &ws.res)
	default:
		err = eng.pred.PredictBatchInto(ctx, xs, k, false, &ws.res)
	}
	dur := time.Since(t0)
	if err == nil {
		s.adm.observe(dur, len(xs))
		s.adm.observeSojourn(dur)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.stats.deadlineExceeded.Add(1)
			httpError(w, http.StatusGatewayTimeout, "deadline exceeded: %v", err)
			return
		}
		if errors.Is(err, context.Canceled) {
			httpError(w, http.StatusServiceUnavailable, "cancelled: %v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "predict batch: %v", err)
		return
	}

	ms := float64(dur.Microseconds()) / 1000
	s.stats.record(ms, len(xs))
	ws.resp = appendBatchResponse(ws.resp[:0], ws.res.IDs, ws.res.Scores, mode, ms)
	writeRawJSON(w, http.StatusOK, ws.resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	eng := s.eng.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"model":      eng.model,
		"reloads":    s.reloads.Load(),
		"generation": eng.gen,
		"input_dim":  eng.net.Config().InputDim,
		"classes":    eng.net.OutputDim(),
		"layers":     eng.net.NumLayers(),
		"params":     eng.net.NumParams(),
	})
}

// reloadRequest is the POST /reload body. An empty body (or empty model
// field) reloads the file the server was started from.
type reloadRequest struct {
	Model string `json:"model"`
}

// handleReload loads a model file, builds a fresh (Network, Predictor)
// pair and publishes it with one atomic swap — the serving-side analog of
// the core's shadow table rebuild. Requests already validated against the
// old engine finish on it; everything arriving after the swap sees the
// new model. The old pair is dropped to the garbage collector once its
// in-flight requests drain.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var req reloadRequest
	// An empty body means "reload the default model"; io.EOF (rather
	// than ContentLength, which chunked encoding reports as -1) is how
	// the decoder says the body was empty.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes/4)).Decode(&req); err != nil && err != io.EOF {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	path := req.Model
	if path == "" {
		path = s.opts.ModelPath
	}
	if path == "" {
		httpError(w, http.StatusBadRequest, "no model path: server was started without -model and the request names none")
		return
	}

	eng, reloads, err := s.ReloadFrom(path)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"model":      path,
		"reloads":    reloads,
		"generation": eng.gen,
		"input_dim":  eng.net.Config().InputDim,
		"classes":    eng.net.OutputDim(),
		"params":     eng.net.NumParams(),
		"ms":         float64(time.Since(t0).Microseconds()) / 1000,
	})
}

// ReloadFrom loads the model at path, builds a fresh engine and
// publishes it with one atomic swap, returning the new engine and this
// reload's counter value (captured while the swap is still the latest,
// so concurrent reloads report distinct counts). The response cache is
// invalidated wholesale: entries are keyed by engine generation, so the
// purge is for memory, not correctness. It is the shared implementation
// behind POST /reload and SIGHUP.
func (s *Server) ReloadFrom(path string) (*engine, int64, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("opening model: %w", err)
	}
	net, err := core.LoadModel(f)
	f.Close()
	if err != nil {
		return nil, 0, fmt.Errorf("loading model: %w", err)
	}
	gen := s.reloads.Add(1)
	eng, err := newEngine(net, path, gen)
	if err != nil {
		s.reloads.Add(-1)
		return nil, 0, fmt.Errorf("building predictor: %w", err)
	}
	s.eng.Store(eng)
	if s.cache != nil {
		s.cache.purge()
	}
	return eng, gen, nil
}

// WatchSIGHUP wires the Unix convention to the same atomic engine swap
// as POST /reload: on SIGHUP the server re-reads the -model file it was
// started from. The returned stop function unregisters the handler.
func (s *Server) WatchSIGHUP(logf func(format string, args ...any)) (stop func()) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGHUP)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-sig:
				if s.opts.ModelPath == "" {
					logf("SIGHUP ignored: server was started without -model")
					continue
				}
				t0 := time.Now()
				eng, _, err := s.ReloadFrom(s.opts.ModelPath)
				if err != nil {
					logf("SIGHUP reload failed: %v", err)
					continue
				}
				logf("SIGHUP reloaded %s (%d params) in %.1fms",
					s.opts.ModelPath, eng.net.NumParams(),
					float64(time.Since(t0).Microseconds())/1000)
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(sig)
		close(done)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.stats.snapshot()
	fillGCStats(&snap)
	if s.opts.LatencyBudget > 0 {
		snap.LatencyBudgetMillis = float64(s.opts.LatencyBudget.Microseconds()) / 1000
		snap.ExpectedWaitMillis = float64(s.adm.expectedWait(0).Microseconds()) / 1000
	}
	if s.cache != nil {
		snap.CacheEntries = s.cache.len()
	}
	if s.opts.AdaptiveWindow {
		for m := range s.arrivals {
			ewma, primed := s.arrivals[m].interarrival()
			if !primed {
				continue
			}
			win := s.arrivals[m].window(s.opts.BatchWindow, s.opts.BatchMax)
			ms := &adaptiveModeStats{
				EWMAInterarrivalMillis: float64(ewma.Microseconds()) / 1000,
				WindowMillis:           float64(win.Microseconds()) / 1000,
			}
			if m == 1 {
				snap.AdaptiveSampled = ms
			} else {
				snap.AdaptiveExact = ms
			}
		}
	}
	writeJSON(w, http.StatusOK, snap)
}

// batchLoop gathers concurrent requests into micro-batches: the first
// request opens a window — fixed at BatchWindow, or derived per batch
// from the observed arrival rate with AdaptiveWindow — further requests
// join until the window closes or the batch fills, then the whole batch
// runs through one PredictBatch fan-out per mode.
func (s *Server) batchLoop() {
	defer s.wg.Done()
	for {
		var first *pendingReq
		select {
		case first = <-s.reqCh:
		case <-s.done:
			s.drain()
			return
		}
		// The gather slice and timer are reused across batches (batchLoop
		// is the only goroutine touching them), so a steady-state batch
		// cycle allocates nothing.
		batch := append(s.gather[:0], first)
		window := s.opts.BatchWindow
		if s.opts.AdaptiveWindow {
			// The window is sized for the mode that opened the batch:
			// peers of the other mode may still join the gather, but the
			// wait is justified (or skipped) by the traffic the batch
			// will actually ride with.
			window = s.arrivals[modeIdx(first.sampled)].window(s.opts.BatchWindow, s.opts.BatchMax)
		}
		if window <= 0 {
			// No second arrival expected in time: take whatever is
			// already queued, but do not wait.
		gatherNow:
			for len(batch) < s.opts.BatchMax {
				select {
				case r := <-s.reqCh:
					batch = append(batch, r)
				default:
					break gatherNow
				}
			}
			s.gather = batch
			s.runBatch(batch)
			clear(batch)
			continue
		}
		if s.gatherTimer == nil {
			s.gatherTimer = time.NewTimer(window)
		} else {
			// Safe to Reset directly: after every gather the timer is
			// either consumed (fired) or stopped-and-drained below.
			s.gatherTimer.Reset(window)
		}
		fired := false
	gather:
		for len(batch) < s.opts.BatchMax {
			select {
			case r := <-s.reqCh:
				batch = append(batch, r)
			case <-s.gatherTimer.C:
				fired = true
				break gather
			case <-s.done:
				break gather
			}
		}
		if !fired && !s.gatherTimer.Stop() {
			<-s.gatherTimer.C
		}
		s.gather = batch
		s.runBatch(batch)
		// Drop request pointers so the retired gather slice does not pin
		// workspaces until the next batch overwrites it.
		clear(batch)
	}
}

// arrivalEstimator tracks an exponentially weighted moving average of
// the micro-batchable request inter-arrival time. The batcher sizes each
// gather window from it: at high arrival rates the window only needs to
// span one batch's worth of arrivals, and at low rates waiting is pure
// added latency because no peer request will show up anyway.
type arrivalEstimator struct {
	mu      sync.Mutex
	last    time.Time
	ewmaNS  float64
	samples int64
	// gapCapNS clamps any single observed gap before it feeds the EWMA:
	// an overnight idle period is one sample, not evidence that the next
	// burst arrives hours apart — unclamped, a single huge gap would
	// hold the window at zero for a hundred requests into the burst.
	// The cap stays well above the batch window so genuinely sparse
	// traffic still reads as sparse (window 0).
	gapCapNS float64
}

// arrivalAlpha is the EWMA smoothing factor: ~20 arrivals of memory,
// quick enough to track bursts, slow enough not to chase single gaps.
// gapCapWindows sizes the per-sample gap clamp in units of the maximum
// batch window.
const (
	arrivalAlpha  = 0.1
	gapCapWindows = 8
)

// observe feeds one arrival timestamp. Concurrent handlers can deliver
// timestamps out of order; an older-than-last arrival carries no gap
// information and must not rewind e.last (that would overstate the next
// gap by the burst's span — during exactly the bursts the window is
// sized for).
func (e *arrivalEstimator) observe(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.last.IsZero() {
		e.last = now
		return
	}
	if !now.After(e.last) {
		return
	}
	d := float64(now.Sub(e.last))
	if e.gapCapNS > 0 && d > e.gapCapNS {
		d = e.gapCapNS
	}
	if e.samples == 0 {
		e.ewmaNS = d
	} else {
		e.ewmaNS += arrivalAlpha * (d - e.ewmaNS)
	}
	e.samples++
	e.last = now
}

// interarrival returns the current EWMA estimate and whether enough
// samples have accumulated to trust it.
func (e *arrivalEstimator) interarrival() (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return time.Duration(e.ewmaNS), e.samples >= 3
}

// window derives one gather window, clamped to [0, max]: unprimed
// estimators keep the configured fixed window; an expected inter-arrival
// beyond max means no peer will join in time, so the window collapses to
// zero; otherwise the window is just long enough to gather batchMax-1
// more requests at the observed rate.
func (e *arrivalEstimator) window(max time.Duration, batchMax int) time.Duration {
	ewma, primed := e.interarrival()
	if !primed {
		return max
	}
	if ewma > max {
		return 0
	}
	w := ewma * time.Duration(batchMax-1)
	return min(w, max)
}

// drain serves whatever is still queued at shutdown so no handler is
// left waiting on a reply that will never come.
func (s *Server) drain() {
	for {
		select {
		case r := <-s.reqCh:
			s.runBatch([]*pendingReq{r})
		default:
			return
		}
	}
}

// batchGroup keys one shared fan-out inside a gathered micro-batch:
// requests only ride the same PredictBatch call when they agree on both
// the inference mode and the engine they were validated against (a
// /reload landing mid-window splits the batch instead of mixing models).
type batchGroup struct {
	eng     *engine
	sampled bool
}

// groupContext derives the context a group's PredictBatch runs under:
// when every member carries a deadline the fan-out is cancelled at the
// latest one (members past their own deadline have already been pruned,
// so cancellation means the entire group is doomed); one open-ended
// member keeps the fan-out uncancellable, exactly as before deadlines
// existed.
func groupContext(group []*pendingReq) (context.Context, context.CancelFunc) {
	var latest time.Time
	for _, r := range group {
		if r.deadline.IsZero() {
			return context.Background(), func() {}
		}
		if r.deadline.After(latest) {
			latest = r.deadline
		}
	}
	return context.WithDeadline(context.Background(), latest)
}

// runBatch partitions a micro-batch by (engine, inference mode), runs one
// PredictBatch per group at the largest requested k, and trims each
// request's reply down to its own k. Requests already past their
// deadline are pruned with a DeadlineExceeded reply instead of computed —
// the doomed-work half of deadline propagation; the group's context
// (groupContext) is the cancelled-mid-flight half. Seeded sampled
// requests (normally dispatched straight to runOne by handlePredict, but
// handled here too so a seeded request can never be mis-batched) leave
// the shared fan-out: each runs as its own seeded single prediction on a
// state from its engine's quarantined seeded pool, reseeded from the
// request seed, so its result is a pure function of (input, seed) and
// never depends on what else happened to share the micro-batch.
func (s *Server) runBatch(batch []*pendingReq) {
	now := time.Now()
	// Partition into the server's reused group scratch: the group count
	// is tiny (modes × engines live in one window), so a linear key scan
	// replaces the per-batch map allocation.
	groups := s.groups[:0]
	seeded := s.seededReqs[:0]
nextReq:
	for _, r := range batch {
		if !r.deadline.IsZero() && now.After(r.deadline) {
			r.reply <- batchReply{err: context.DeadlineExceeded}
			continue
		}
		if r.sampled && r.seeded {
			seeded = append(seeded, r)
			continue
		}
		key := batchGroup{eng: r.eng, sampled: r.sampled}
		for gi := range groups {
			if groups[gi].key == key {
				groups[gi].reqs = append(groups[gi].reqs, r)
				continue nextReq
			}
		}
		if len(groups) < cap(groups) {
			// Reuse the retired group slot's request slice capacity.
			groups = groups[:len(groups)+1]
			g := &groups[len(groups)-1]
			g.key = key
			g.reqs = append(g.reqs[:0], r)
		} else {
			groups = append(groups, reqGroup{key: key, reqs: []*pendingReq{r}})
		}
	}
	// Bounded fan-out: each in-flight seeded prediction holds a pooled
	// worker state, so cap concurrency at GOMAXPROCS rather than one
	// goroutine (and state) per request.
	var wg sync.WaitGroup
	workers := min(runtime.GOMAXPROCS(0), len(seeded))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(seeded); i += workers {
				r := seeded[i]
				t0 := time.Now()
				var err error
				r.ids, r.scores, err = r.eng.pred.TopKWithScoresInto(
					context.Background(), r.x, r.k, true, r.ids, r.scores, core.PredictOpts{Seed: r.seed})
				if err == nil {
					s.adm.observe(time.Since(t0), 1)
				}
				r.reply <- batchReply{ids: r.ids, scores: r.scores, batchSize: 1, err: err}
			}
		}(w)
	}
	for gi := range groups {
		key, group := groups[gi].key, groups[gi].reqs
		xs := s.groupXs[:0]
		maxK := 0
		for _, r := range group {
			xs = append(xs, r.x)
			if r.k > maxK {
				maxK = r.k
			}
		}
		s.groupXs = xs
		ctx, cancel := groupContext(group)
		t0 := time.Now()
		// The fan-out writes into the batcher's reusable result storage;
		// each request then copies its trimmed slice into its own
		// workspace buffers before the reply, so nothing a request holds
		// aliases scratch the next micro-batch will overwrite.
		err := key.eng.pred.PredictBatchInto(ctx, xs, maxK, key.sampled, &s.batchRes)
		cancel()
		if err == nil {
			s.adm.observe(time.Since(t0), len(group))
		}
		for j, r := range group {
			// batchSize is the fan-out the request actually rode —
			// its mode group, not the whole gathered micro-batch.
			rep := batchReply{err: err, batchSize: len(group)}
			if err == nil {
				n := min(r.k, len(s.batchRes.IDs[j]))
				r.ids = append(r.ids[:0], s.batchRes.IDs[j][:n]...)
				r.scores = append(r.scores[:0], s.batchRes.Scores[j][:n]...)
				rep.ids, rep.scores = r.ids, r.scores
			}
			r.reply <- rep
		}
		// Drop request pointers so retired scratch does not pin
		// workspaces (and their engines) until the slot is reused.
		clear(groups[gi].reqs)
	}
	wg.Wait()
	clear(seeded)
	s.groups = groups[:0]
	s.seededReqs = seeded[:0]
}

// runOne serves a request without micro-batching, on its pinned engine,
// predicting straight into the request's own result buffers. The
// request context gates the pass: work whose deadline is already spent
// is refused before any compute happens.
func (s *Server) runOne(ctx context.Context, r *pendingReq) batchReply {
	t0 := time.Now()
	var err error
	if r.sampled && r.seeded {
		r.ids, r.scores, err = r.eng.pred.TopKWithScoresInto(ctx, r.x, r.k, true, r.ids, r.scores, core.PredictOpts{Seed: r.seed})
	} else {
		r.ids, r.scores, err = r.eng.pred.TopKWithScoresInto(ctx, r.x, r.k, r.sampled, r.ids, r.scores)
	}
	if err == nil {
		s.adm.observe(time.Since(t0), 1)
	}
	return batchReply{ids: r.ids, scores: r.scores, batchSize: 1, err: err}
}
