package serve

import (
	"fmt"
	"math"
	"strconv"
	"unsafe"
)

// This file is the hand-rolled request/response codec for the serving
// hot path. encoding/json cannot decode into reused buffers without
// per-call allocations (Decoder state, reflection scratch, fresh result
// slices), and its Encoder allocates per Encode; the cursor parser and
// append-style encoders here read from and write into workspace-owned
// memory so a steady-state request allocates nothing. Semantics track
// encoding/json where clients can observe them: unknown fields are
// skipped, null leaves the field at its zero value, duplicate keys last
// win, integer fields reject fractional literals, and floats render in
// the exact byte format json.Marshal uses (so cached bodies replay
// byte-identically across the codec swap).

// jsonCursor is a zero-allocation scanner over one JSON document.
type jsonCursor struct {
	b []byte
	i int
}

// maxJSONDepth bounds skipValue recursion so a pathologically nested
// body cannot exhaust the goroutine stack.
const maxJSONDepth = 512

// bstr views b as a string without copying, for strconv parsing only —
// the string must not outlive the underlying buffer.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

func (c *jsonCursor) skipWS() {
	for c.i < len(c.b) {
		switch c.b[c.i] {
		case ' ', '\t', '\n', '\r':
			c.i++
		default:
			return
		}
	}
}

// peek returns the current byte, or 0 at end of input.
func (c *jsonCursor) peek() byte {
	if c.i < len(c.b) {
		return c.b[c.i]
	}
	return 0
}

func (c *jsonCursor) expect(ch byte) error {
	if c.i >= len(c.b) {
		return fmt.Errorf("unexpected end of JSON input, want %q", ch)
	}
	if c.b[c.i] != ch {
		return fmt.Errorf("invalid character %q at offset %d, want %q", c.b[c.i], c.i, ch)
	}
	c.i++
	return nil
}

// parseString scans one JSON string and returns its raw contents.
// Strings containing escapes report escaped=true with nil raw — the
// request keys this codec matches are plain ASCII, so an escaped key is
// simply treated as unknown rather than unescaped.
func (c *jsonCursor) parseString() (raw []byte, escaped bool, err error) {
	if err := c.expect('"'); err != nil {
		return nil, false, err
	}
	start := c.i
	for c.i < len(c.b) {
		switch c.b[c.i] {
		case '"':
			raw = c.b[start:c.i]
			c.i++
			if escaped {
				return nil, true, nil
			}
			return raw, false, nil
		case '\\':
			escaped = true
			c.i++
			if c.i < len(c.b) {
				c.i++
			}
		default:
			c.i++
		}
	}
	return nil, false, fmt.Errorf("unterminated string literal")
}

// tryNull consumes a null literal if one is next, reporting whether it
// did. JSON null leaves the target field at its zero value, as
// encoding/json does.
func (c *jsonCursor) tryNull() bool {
	if c.i+4 <= len(c.b) && string(c.b[c.i:c.i+4]) == "null" {
		c.i += 4
		return true
	}
	return false
}

func (c *jsonCursor) parseBool() (bool, error) {
	if c.i+4 <= len(c.b) && string(c.b[c.i:c.i+4]) == "true" {
		c.i += 4
		return true, nil
	}
	if c.i+5 <= len(c.b) && string(c.b[c.i:c.i+5]) == "false" {
		c.i += 5
		return false, nil
	}
	return false, fmt.Errorf("invalid boolean literal at offset %d", c.i)
}

// scanNumber returns the raw bytes of one JSON number literal.
func (c *jsonCursor) scanNumber() ([]byte, error) {
	start := c.i
	for c.i < len(c.b) {
		switch ch := c.b[c.i]; {
		case ch >= '0' && ch <= '9', ch == '-', ch == '+', ch == '.', ch == 'e', ch == 'E':
			c.i++
		default:
			goto done
		}
	}
done:
	if c.i == start {
		return nil, fmt.Errorf("invalid number literal at offset %d", start)
	}
	return c.b[start:c.i], nil
}

func (c *jsonCursor) parseFloat64() (float64, error) {
	raw, err := c.scanNumber()
	if err != nil {
		return 0, err
	}
	return strconv.ParseFloat(bstr(raw), 64)
}

// parseInt rejects fractional and exponent forms, as encoding/json does
// when decoding into an integer field.
func (c *jsonCursor) parseInt(bits int) (int64, error) {
	raw, err := c.scanNumber()
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(bstr(raw), 10, bits)
}

func (c *jsonCursor) parseUint64() (uint64, error) {
	raw, err := c.scanNumber()
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(bstr(raw), 10, 64)
}

// parseInt32Array appends one JSON array of integers into out.
func (c *jsonCursor) parseInt32Array(out []int32) ([]int32, error) {
	if c.tryNull() {
		return out, nil
	}
	if err := c.expect('['); err != nil {
		return out, err
	}
	c.skipWS()
	if c.peek() == ']' {
		c.i++
		return out, nil
	}
	for {
		c.skipWS()
		v, err := c.parseInt(32)
		if err != nil {
			return out, err
		}
		out = append(out, int32(v))
		c.skipWS()
		switch c.peek() {
		case ',':
			c.i++
		case ']':
			c.i++
			return out, nil
		default:
			return out, fmt.Errorf("invalid character %q in array at offset %d", c.peek(), c.i)
		}
	}
}

// parseFloat32Array appends one JSON array of numbers into out.
func (c *jsonCursor) parseFloat32Array(out []float32) ([]float32, error) {
	if c.tryNull() {
		return out, nil
	}
	if err := c.expect('['); err != nil {
		return out, err
	}
	c.skipWS()
	if c.peek() == ']' {
		c.i++
		return out, nil
	}
	for {
		c.skipWS()
		raw, err := c.scanNumber()
		if err != nil {
			return out, err
		}
		v, err := strconv.ParseFloat(bstr(raw), 32)
		if err != nil {
			return out, err
		}
		out = append(out, float32(v))
		c.skipWS()
		switch c.peek() {
		case ',':
			c.i++
		case ']':
			c.i++
			return out, nil
		default:
			return out, fmt.Errorf("invalid character %q in array at offset %d", c.peek(), c.i)
		}
	}
}

// skipValue consumes one JSON value of any type — how unknown fields are
// ignored without building anything.
func (c *jsonCursor) skipValue(depth int) error {
	if depth > maxJSONDepth {
		return fmt.Errorf("JSON nesting exceeds %d levels", maxJSONDepth)
	}
	c.skipWS()
	switch ch := c.peek(); {
	case ch == '"':
		_, _, err := c.parseString()
		return err
	case ch == '{':
		c.i++
		c.skipWS()
		if c.peek() == '}' {
			c.i++
			return nil
		}
		for {
			c.skipWS()
			if _, _, err := c.parseString(); err != nil {
				return err
			}
			c.skipWS()
			if err := c.expect(':'); err != nil {
				return err
			}
			if err := c.skipValue(depth + 1); err != nil {
				return err
			}
			c.skipWS()
			switch c.peek() {
			case ',':
				c.i++
			case '}':
				c.i++
				return nil
			default:
				return fmt.Errorf("invalid character %q in object at offset %d", c.peek(), c.i)
			}
		}
	case ch == '[':
		c.i++
		c.skipWS()
		if c.peek() == ']' {
			c.i++
			return nil
		}
		for {
			if err := c.skipValue(depth + 1); err != nil {
				return err
			}
			c.skipWS()
			switch c.peek() {
			case ',':
				c.i++
			case ']':
				c.i++
				return nil
			default:
				return fmt.Errorf("invalid character %q in array at offset %d", c.peek(), c.i)
			}
		}
	case ch == 't' || ch == 'f':
		_, err := c.parseBool()
		return err
	case ch == 'n':
		if c.tryNull() {
			return nil
		}
		return fmt.Errorf("invalid literal at offset %d", c.i)
	case ch == '-' || (ch >= '0' && ch <= '9'):
		_, err := c.scanNumber()
		return err
	default:
		return fmt.Errorf("invalid character %q looking for value at offset %d", ch, c.i)
	}
}

// predictParams carries the scalar fields of a /predict or
// /predict/batch body; the component arrays land in workspace buffers.
type predictParams struct {
	k          int
	sampled    bool
	seeded     bool
	seed       uint64
	deadlineMs float64
}

// decodePredict parses a /predict body: indices/values append into
// idx/val (capacity reused across requests), scalars land in p. Trailing
// bytes after the top-level object are ignored, as json.Decoder.Decode
// ignores them.
func decodePredict(body []byte, idx []int32, val []float32, p *predictParams) ([]int32, []float32, error) {
	*p = predictParams{}
	idx, val = idx[:0], val[:0]
	c := jsonCursor{b: body}
	c.skipWS()
	if err := c.expect('{'); err != nil {
		return idx, val, err
	}
	c.skipWS()
	if c.peek() == '}' {
		return idx, val, nil
	}
	for {
		c.skipWS()
		key, escaped, err := c.parseString()
		if err != nil {
			return idx, val, err
		}
		c.skipWS()
		if err := c.expect(':'); err != nil {
			return idx, val, err
		}
		c.skipWS()
		if escaped {
			err = c.skipValue(0)
		} else {
			switch bstr(key) {
			case "indices":
				idx, err = c.parseInt32Array(idx[:0])
			case "values":
				val, err = c.parseFloat32Array(val[:0])
			case "k":
				if !c.tryNull() {
					var v int64
					v, err = c.parseInt(0)
					p.k = int(v)
				}
			case "sampled":
				if !c.tryNull() {
					p.sampled, err = c.parseBool()
				}
			case "seed":
				if !c.tryNull() {
					p.seed, err = c.parseUint64()
					p.seeded = err == nil
				}
			case "deadline_ms":
				if !c.tryNull() {
					p.deadlineMs, err = c.parseFloat64()
				}
			default:
				err = c.skipValue(0)
			}
		}
		if err != nil {
			return idx, val, err
		}
		c.skipWS()
		switch c.peek() {
		case ',':
			c.i++
		case '}':
			c.i++
			return idx, val, nil
		default:
			return idx, val, fmt.Errorf("invalid character %q after object field at offset %d", c.peek(), c.i)
		}
	}
}

// decodeBatch parses a /predict/batch body. Element component lists land
// in ws.elemIdx/ws.elemVal (per-slot buffers reused across requests),
// the element count in ws.nBatch, scalars in ws.params.
func decodeBatch(body []byte, ws *reqWorkspace) error {
	ws.params = predictParams{}
	ws.nBatch = 0
	c := jsonCursor{b: body}
	c.skipWS()
	if err := c.expect('{'); err != nil {
		return err
	}
	c.skipWS()
	if c.peek() == '}' {
		return nil
	}
	for {
		c.skipWS()
		key, escaped, err := c.parseString()
		if err != nil {
			return err
		}
		c.skipWS()
		if err := c.expect(':'); err != nil {
			return err
		}
		c.skipWS()
		if escaped {
			err = c.skipValue(0)
		} else {
			switch bstr(key) {
			case "batch":
				err = c.parseBatchElements(ws)
			case "k":
				if !c.tryNull() {
					var v int64
					v, err = c.parseInt(0)
					ws.params.k = int(v)
				}
			case "sampled":
				if !c.tryNull() {
					ws.params.sampled, err = c.parseBool()
				}
			case "seed":
				if !c.tryNull() {
					ws.params.seed, err = c.parseUint64()
					ws.params.seeded = err == nil
				}
			case "deadline_ms":
				if !c.tryNull() {
					ws.params.deadlineMs, err = c.parseFloat64()
				}
			default:
				err = c.skipValue(0)
			}
		}
		if err != nil {
			return err
		}
		c.skipWS()
		switch c.peek() {
		case ',':
			c.i++
		case '}':
			c.i++
			return nil
		default:
			return fmt.Errorf("invalid character %q after object field at offset %d", c.peek(), c.i)
		}
	}
}

// parseBatchElements parses the "batch" array of {indices, values}
// objects into the workspace's per-slot element buffers.
func (c *jsonCursor) parseBatchElements(ws *reqWorkspace) error {
	if c.tryNull() {
		return nil
	}
	if err := c.expect('['); err != nil {
		return err
	}
	c.skipWS()
	if c.peek() == ']' {
		c.i++
		return nil
	}
	for {
		c.skipWS()
		n := ws.nBatch
		if n >= len(ws.elemIdx) {
			ws.elemIdx = append(ws.elemIdx, nil)
			ws.elemVal = append(ws.elemVal, nil)
		}
		ws.elemIdx[n] = ws.elemIdx[n][:0]
		ws.elemVal[n] = ws.elemVal[n][:0]
		if err := c.expect('{'); err != nil {
			return err
		}
		c.skipWS()
		if c.peek() == '}' {
			c.i++
		} else {
			for {
				c.skipWS()
				key, escaped, err := c.parseString()
				if err != nil {
					return err
				}
				c.skipWS()
				if err := c.expect(':'); err != nil {
					return err
				}
				c.skipWS()
				if escaped {
					err = c.skipValue(0)
				} else {
					switch bstr(key) {
					case "indices":
						ws.elemIdx[n], err = c.parseInt32Array(ws.elemIdx[n][:0])
					case "values":
						ws.elemVal[n], err = c.parseFloat32Array(ws.elemVal[n][:0])
					default:
						err = c.skipValue(0)
					}
				}
				if err != nil {
					return err
				}
				c.skipWS()
				if c.peek() == ',' {
					c.i++
					continue
				}
				if err := c.expect('}'); err != nil {
					return err
				}
				break
			}
		}
		ws.nBatch++
		c.skipWS()
		switch c.peek() {
		case ',':
			c.i++
		case ']':
			c.i++
			return nil
		default:
			return fmt.Errorf("invalid character %q in batch array at offset %d", c.peek(), c.i)
		}
	}
}

// appendJSONFloat renders f exactly as encoding/json does (shortest
// representation, 'f' format inside [1e-6, 1e21), 'e' outside with the
// exponent's leading zero stripped), so hand-encoded bodies are
// byte-identical to what json.Marshal produced before this codec.
// NaN/Inf — which json.Marshal rejects — render as 0.
func appendJSONFloat(dst []byte, f float64, bits int) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(dst, '0')
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 {
		if bits == 64 && (abs < 1e-6 || abs >= 1e21) ||
			bits == 32 && (float32(abs) < 1e-6 || float32(abs) >= 1e21) {
			format = 'e'
		}
	}
	dst = strconv.AppendFloat(dst, f, format, -1, bits)
	if format == 'e' {
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// appendResult appends `"ids":[...],"scores":[...]` for one prediction.
func appendResult(dst []byte, ids []int32, scores []float32) []byte {
	dst = append(dst, `"ids":[`...)
	for i, id := range ids {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(id), 10)
	}
	dst = append(dst, `],"scores":[`...)
	for i, v := range scores {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONFloat(dst, float64(v), 32)
	}
	return append(dst, ']')
}

// appendPredictResponse renders the /predict response body, trailing
// newline included, matching json.Encoder's encoding of predictResponse
// field for field.
func appendPredictResponse(dst []byte, ids []int32, scores []float32, mode string, batchSize int, ms float64) []byte {
	dst = append(dst, '{')
	dst = appendResult(dst, ids, scores)
	dst = append(dst, `,"mode":"`...)
	dst = append(dst, mode...)
	dst = append(dst, `","batch_size":`...)
	dst = strconv.AppendInt(dst, int64(batchSize), 10)
	dst = append(dst, `,"ms":`...)
	dst = appendJSONFloat(dst, ms, 64)
	return append(dst, '}', '\n')
}

// appendBatchResponse renders the /predict/batch response body,
// matching json.Encoder's encoding of batchPredictResponse.
func appendBatchResponse(dst []byte, ids [][]int32, scores [][]float32, mode string, ms float64) []byte {
	dst = append(dst, `{"results":[`...)
	for i := range ids {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, '{')
		dst = appendResult(dst, ids[i], scores[i])
		dst = append(dst, '}')
	}
	dst = append(dst, `],"mode":"`...)
	dst = append(dst, mode...)
	dst = append(dst, `","count":`...)
	dst = strconv.AppendInt(dst, int64(len(ids)), 10)
	dst = append(dst, `,"ms":`...)
	dst = appendJSONFloat(dst, ms, 64)
	return append(dst, '}', '\n')
}
