package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/rng"
)

// nullResponseWriter discards the response body and reuses one header
// map, so repeated requests through it exercise only the server's own
// allocations, not the recorder's.
type nullResponseWriter struct {
	h    http.Header
	code int
}

func (w *nullResponseWriter) Header() http.Header        { return w.h }
func (w *nullResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullResponseWriter) WriteHeader(code int)        { w.code = code }

// resettableBody is a reusable request body: a bytes.Reader with a
// no-op Close, Reset per request.
type resettableBody struct{ bytes.Reader }

func (*resettableBody) Close() error { return nil }

// TestProcessPredictZeroAllocs pins the tentpole acceptance criterion:
// the steady-state /predict request path — body read, decode,
// validation, dispatch, predict, encode, write — performs zero heap
// allocations per request on a reused workspace. Exact mode, cache off,
// no batch window (the micro-batch queue hands work to another
// goroutine, which AllocsPerRun cannot meter deterministically).
func TestProcessPredictZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the request path")
	}
	s, err := New(testModel(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	data := []byte(`{"indices":[1,5,9,40],"values":[0.5,-1.25,2,0.75],"k":4}`)
	rb := &resettableBody{}
	req := httptest.NewRequest(http.MethodPost, "/predict", nil)
	req.Body = rb
	w := &nullResponseWriter{h: make(http.Header)}
	ws := newWorkspace()

	run := func() {
		rb.Reset(data)
		if !s.processPredict(w, req, ws) {
			t.Fatal("processPredict reported workspace unsafe to pool")
		}
	}
	for i := 0; i < 3; i++ {
		run()
	}
	if w.code != http.StatusOK {
		t.Fatalf("status = %d, want 200", w.code)
	}
	var pr predictResponse
	if err := json.Unmarshal(ws.resp, &pr); err != nil {
		t.Fatalf("response not valid JSON: %v\n%s", err, ws.resp)
	}
	if len(pr.IDs) != 4 || pr.Mode != "exact" {
		t.Fatalf("bad response: %+v", pr)
	}
	allocs := testing.AllocsPerRun(200, run)
	if allocs != 0 {
		t.Fatalf("steady-state /predict made %.1f allocs/op, want 0", allocs)
	}
}

// TestProcessBatchZeroAllocs extends the pin to the bulk endpoint: the
// /predict/batch path reuses the workspace's element slots and the
// predictor's batch result storage.
func TestProcessBatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the request path")
	}
	s, err := New(testModel(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	data := []byte(`{"batch":[` +
		`{"indices":[1,5],"values":[0.5,2]},` +
		`{"indices":[0,9,33],"values":[1,-1,0.25]}],"k":3}`)
	rb := &resettableBody{}
	req := httptest.NewRequest(http.MethodPost, "/predict/batch", nil)
	req.Body = rb
	w := &nullResponseWriter{h: make(http.Header)}
	ws := newWorkspace()

	run := func() {
		rb.Reset(data)
		s.processBatch(w, req, ws)
	}
	for i := 0; i < 3; i++ {
		run()
	}
	if w.code != http.StatusOK {
		t.Fatalf("status = %d, want 200", w.code)
	}
	var br batchPredictResponse
	if err := json.Unmarshal(ws.resp, &br); err != nil {
		t.Fatalf("response not valid JSON: %v\n%s", err, ws.resp)
	}
	if br.Count != 2 || len(br.Results) != 2 || len(br.Results[0].IDs) != 3 {
		t.Fatalf("bad response: %+v", br)
	}
	allocs := testing.AllocsPerRun(100, run)
	if allocs != 0 {
		t.Fatalf("steady-state /predict/batch made %.1f allocs/op, want 0", allocs)
	}
}

// TestDecodePredictMatchesEncodingJSON cross-checks the hand-rolled
// /predict decoder against encoding/json over the declared wire struct:
// every body either fails in both decoders or yields identical fields.
func TestDecodePredictMatchesEncodingJSON(t *testing.T) {
	bodies := []string{
		`{"indices":[1,2,3],"values":[0.5,1,2],"k":7}`,
		`{}`,
		`  { "k" : 3 , "sampled" : true } `,
		`{"indices":null,"values":null,"k":null,"sampled":null,"seed":null,"deadline_ms":null}`,
		`{"indices":[1],"values":[1],"unknown":{"a":[1,{"b":null}]},"k":2}`,
		`{"k":1,"k":9}`,
		`{"values":[1e-7,2.5e8,-0.0,1.25E+2]}`,
		`{"seed":18446744073709551615}`,
		`{"seed":12345,"sampled":true}`,
		`{"deadline_ms":12.5}`,
		`{"k":2.5}`,
		`{"k":"3"}`,
		`{"indices":[1.5],"values":[1]}`,
		`{"indices":[1],"values":["x"]}`,
		`{"indices":}`,
		`{"indices":[1],}`,
		`[1,2]`,
		`{"indices":[2147483647,-2147483648],"values":[3.4e38,-3.4e38]}`,
		`{"k":9}`,
		`{"indices":[],"values":[]}`,
		`{"k":3}trailing garbage`,
		`{"sampled":false,"seed":7}`,
	}
	for _, body := range bodies {
		var params predictParams
		idx, val, err := decodePredict([]byte(body), nil, nil, &params)

		var ref predictRequest
		refErr := json.NewDecoder(bytes.NewReader([]byte(body))).Decode(&ref)

		if (err != nil) != (refErr != nil) {
			t.Errorf("%s: err=%v, encoding/json err=%v", body, err, refErr)
			continue
		}
		if err != nil {
			continue
		}
		if !int32SliceEq(idx, ref.Indices) || !float32SliceEq(val, ref.Values) {
			t.Errorf("%s: components %v/%v, want %v/%v", body, idx, val, ref.Indices, ref.Values)
		}
		if params.k != ref.K || params.sampled != ref.Sampled || params.deadlineMs != ref.DeadlineMs {
			t.Errorf("%s: scalars %+v, want k=%d sampled=%v deadline=%v",
				body, params, ref.K, ref.Sampled, ref.DeadlineMs)
		}
		if params.seeded != (ref.Seed != nil) || (ref.Seed != nil && params.seed != *ref.Seed) {
			t.Errorf("%s: seed %v/%v, want %v", body, params.seeded, params.seed, ref.Seed)
		}
	}
}

// TestDecodePredictRoundTrip marshals random wire structs with
// encoding/json and decodes them with the hand-rolled decoder.
func TestDecodePredictRoundTrip(t *testing.T) {
	r := rng.New(31)
	var idx []int32
	var val []float32
	var params predictParams
	for trial := 0; trial < 200; trial++ {
		req := predictRequest{K: r.Intn(20) - 5, Sampled: r.Bernoulli(0.5), DeadlineMs: float64(r.Intn(100))}
		if r.Bernoulli(0.5) {
			seed := uint64(r.Intn(1 << 30))
			req.Seed = &seed
		}
		n := r.Intn(16)
		for i := 0; i < n; i++ {
			req.Indices = append(req.Indices, int32(r.Intn(1<<20)-1<<19))
			req.Values = append(req.Values, r.NormFloat32())
		}
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		idx, val, err = decodePredict(body, idx, val, &params)
		if err != nil {
			t.Fatalf("%s: %v", body, err)
		}
		if !int32SliceEq(idx, req.Indices) || !float32SliceEq(val, req.Values) {
			t.Fatalf("%s: got %v/%v", body, idx, val)
		}
		if params.k != req.K || params.sampled != req.Sampled ||
			params.seeded != (req.Seed != nil) || params.deadlineMs != req.DeadlineMs {
			t.Fatalf("%s: scalars %+v", body, params)
		}
	}
}

// TestDecodeBatchMatchesEncodingJSON cross-checks the /predict/batch
// decoder the same way.
func TestDecodeBatchMatchesEncodingJSON(t *testing.T) {
	bodies := []string{
		`{"batch":[{"indices":[1,2],"values":[1,2]},{"indices":[3],"values":[0.5]}],"k":4}`,
		`{"batch":[],"k":1}`,
		`{"batch":null}`,
		`{"batch":[{}],"sampled":true,"seed":9}`,
		`{"batch":[{"indices":[1],"values":[1],"extra":[[]]}],"deadline_ms":3}`,
		`{"batch":[{"indices":[1]},{"values":[2]}]}`,
		`{"batch":[{"indices":[1],"values":[1]}`,
		`{"batch":{"indices":[1]}}`,
		`{"batch":[{"indices":[1],"values":[1]}],"k":1.5}`,
	}
	ws := newWorkspace()
	for _, body := range bodies {
		err := decodeBatch([]byte(body), ws)

		var ref batchPredictRequest
		refErr := json.NewDecoder(bytes.NewReader([]byte(body))).Decode(&ref)

		if (err != nil) != (refErr != nil) {
			t.Errorf("%s: err=%v, encoding/json err=%v", body, err, refErr)
			continue
		}
		if err != nil {
			continue
		}
		if ws.nBatch != len(ref.Batch) {
			t.Errorf("%s: nBatch=%d, want %d", body, ws.nBatch, len(ref.Batch))
			continue
		}
		for i, el := range ref.Batch {
			if !int32SliceEq(ws.elemIdx[i], el.Indices) || !float32SliceEq(ws.elemVal[i], el.Values) {
				t.Errorf("%s: element %d = %v/%v, want %v/%v",
					body, i, ws.elemIdx[i], ws.elemVal[i], el.Indices, el.Values)
			}
		}
		if ws.params.k != ref.K || ws.params.sampled != ref.Sampled ||
			ws.params.seeded != (ref.Seed != nil) || ws.params.deadlineMs != ref.DeadlineMs {
			t.Errorf("%s: scalars %+v", body, ws.params)
		}
	}
}

// TestAppendJSONFloatMatchesMarshal pins byte-compatibility of the float
// encoder with encoding/json — the property that keeps cached responses
// (encoded by the old json path in earlier releases) byte-identical to
// freshly encoded ones.
func TestAppendJSONFloatMatchesMarshal(t *testing.T) {
	cases64 := []float64{0, 1, -1, 0.5, 1e-6, 9.9e-7, 1e-7, 1e21, 9.99e20, 1e22,
		123456789.125, -0.000001230000004, 3.141592653589793, 2.5e-308, 1.7e308,
		math.Copysign(0, -1)}
	for _, f := range cases64 {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONFloat(nil, f, 64); !bytes.Equal(got, want) {
			t.Errorf("float64 %g: got %s, want %s", f, got, want)
		}
	}
	cases32 := []float32{0, 1, -2.5, 1e-7, 1e-6, 3.4e38, 1.5e-45, 0.1, 16777216}
	for _, f := range cases32 {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONFloat(nil, float64(f), 32); !bytes.Equal(got, want) {
			t.Errorf("float32 %g: got %s, want %s", f, got, want)
		}
	}
	r := rng.New(77)
	for trial := 0; trial < 2000; trial++ {
		f := float64(r.NormFloat32()) * math.Pow(10, float64(r.Intn(40)-20))
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONFloat(nil, f, 64); !bytes.Equal(got, want) {
			t.Fatalf("float64 %g: got %s, want %s", f, got, want)
		}
		g := r.NormFloat32() * float32(math.Pow(10, float64(r.Intn(20)-10)))
		want, err = json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONFloat(nil, float64(g), 32); !bytes.Equal(got, want) {
			t.Fatalf("float32 %g: got %s, want %s", g, got, want)
		}
	}
}

// TestAppendResponsesMatchEncodingJSON pins the full response encoders
// against json.Encoder over the declared response structs.
func TestAppendResponsesMatchEncodingJSON(t *testing.T) {
	ids := []int32{7, -1, 2147483647}
	scores := []float32{0.5, -1.25e-8, 3}
	got := appendPredictResponse(nil, ids, scores, "sampled", 12, 0.125)
	want, err := encodeJSON(predictResponse{IDs: ids, Scores: scores, Mode: "sampled", BatchSize: 12, Millis: 0.125})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("predict: got %s, want %s", got, want)
	}

	got = appendPredictResponse(nil, []int32{}, []float32{}, "exact", 1, 3)
	want, _ = encodeJSON(predictResponse{IDs: []int32{}, Scores: []float32{}, Mode: "exact", BatchSize: 1, Millis: 3})
	if !bytes.Equal(got, want) {
		t.Errorf("predict empty: got %s, want %s", got, want)
	}

	bres := batchPredictResponse{Mode: "exact", Count: 2, Millis: 1.5}
	bres.Results = []predictResult{
		{IDs: []int32{1, 2}, Scores: []float32{0.25, 0.125}},
		{IDs: []int32{9}, Scores: []float32{1e-9}},
	}
	got = appendBatchResponse(nil,
		[][]int32{bres.Results[0].IDs, bres.Results[1].IDs},
		[][]float32{bres.Results[0].Scores, bres.Results[1].Scores}, "exact", 1.5)
	want, err = encodeJSON(bres)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("batch: got %s, want %s", got, want)
	}
}

// TestWorkspaceReuseRaceStress hammers the pooled request path from
// concurrent clients with mixed modes, the bulk endpoint, and deadlines
// short enough to abandon queued work — the path where a workspace must
// leak rather than pool. Run under -race it checks the workspace
// lifetime rule; without it, it is a liveness smoke.
func TestWorkspaceReuseRaceStress(t *testing.T) {
	ts := startServer(t, Options{
		BatchWindow: 500 * time.Microsecond,
		BatchMax:    8,
		CacheSize:   32,
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				var body string
				switch i % 4 {
				case 0:
					body = fmt.Sprintf(`{"indices":[%d,9],"values":[1,0.5],"k":3}`, i%50)
				case 1:
					body = fmt.Sprintf(`{"indices":[%d],"values":[1],"k":3,"sampled":true}`, i%50)
				case 2:
					body = fmt.Sprintf(`{"indices":[%d],"values":[1],"k":2,"sampled":true,"seed":%d}`, i%50, g)
				case 3:
					// A microsecond-scale deadline: most of these die while
					// queued, exercising the abandon-don't-pool path.
					body = fmt.Sprintf(`{"indices":[%d,3],"values":[1,1],"k":3,"deadline_ms":0.001}`, i%50)
				}
				code, _, err := tryPostPredict(ts.URL, body)
				if err != nil {
					t.Error(err)
					return
				}
				switch code {
				case http.StatusOK, http.StatusGatewayTimeout, http.StatusServiceUnavailable:
				default:
					t.Errorf("unexpected status %d for %s", code, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func int32SliceEq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func float32SliceEq(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] || math.Signbit(float64(a[i])) != math.Signbit(float64(b[i])) {
			return false
		}
	}
	return true
}

// TestPprofGatedByOption: the profiling endpoints exist exactly when
// EnablePprof is set — nothing is registered on the global mux either
// way, so embedding servers never leak /debug/pprof by accident.
func TestPprofGatedByOption(t *testing.T) {
	on := startServer(t, Options{EnablePprof: true})
	resp, err := http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d with EnablePprof", resp.StatusCode)
	}
	off := startServer(t, Options{})
	resp, err = http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof index served without EnablePprof")
	}
}
