//go:build race

package serve

// raceEnabled reports whether the race detector is active; see
// race_off_test.go.
const raceEnabled = true
