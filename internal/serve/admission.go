package serve

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// admission implements load shedding against a latency budget. The
// controller tracks how many prediction elements are in flight (admitted
// but not yet answered) and an EWMA of the measured per-element service
// time; a new request's expected total latency is the work ahead of it
// times that service time. When the expectation exceeds the budget the
// request is shed immediately with 429 — under open-loop overload every
// queue grows without bound, and the only way to keep the tail of the
// admitted requests inside the budget is to refuse the requests that
// would have formed the tail.
type admission struct {
	// budget is the configured latency budget; 0 disables shedding.
	budget time.Duration
	// inflight counts admitted-but-unanswered prediction elements: one
	// per /predict request, the body's element count for /predict/batch.
	inflight atomic.Int64

	mu sync.Mutex
	// svcNS is the EWMA of per-element service time in nanoseconds,
	// measured over completed PredictBatch fan-outs (batch wall time /
	// batch size), so it already reflects the fan-out parallelism and
	// micro-batch amortization the queue drains at.
	svcNS   float64
	samples int64
	// sojournNS is a peak-hold envelope over whole-request sojourn
	// (admit to reply) in nanoseconds, decaying by half per budget of
	// elapsed time. inflight×svc models the queue from first principles
	// but misses everything outside the fan-out itself — gather windows,
	// encode/decode, scheduler pressure — which is exactly what blows up
	// first on a saturated machine. The sojourn envelope is the measured
	// truth of what the slowest recently admitted requests experienced;
	// when it exceeds the budget, new arrivals will fare no better and
	// are shed. A peak rather than a mean because the budget bounds the
	// tail: by the time the average sojourn crosses the budget, the p99
	// is far past it.
	sojournNS      float64
	sojournSamples int64
	lastSojourn    time.Time
	// shedding is the hysteresis latch: once the controller has shed, it
	// keeps shedding until the expected wait falls to half the budget,
	// not merely under it. Without the latch the controller re-admits
	// the moment the estimate dips below budget — straight into a queue
	// that has barely drained — and the admitted tail oscillates around
	// twice the budget instead of under it.
	shedding bool
}

// svcAlpha is the service-time EWMA smoothing factor: enough memory to
// ride out one anomalous batch, fresh enough to track a regime change
// (e.g. an engine swap to a bigger model) within tens of batches.
const svcAlpha = 0.1

// observe feeds one completed fan-out: wall-clock duration over n
// elements.
func (a *admission) observe(dur time.Duration, n int) {
	if n <= 0 {
		return
	}
	per := float64(dur) / float64(n)
	a.mu.Lock()
	if a.samples == 0 {
		a.svcNS = per
	} else {
		a.svcNS += svcAlpha * (per - a.svcNS)
	}
	a.samples++
	a.mu.Unlock()
}

// observeSojourn feeds one completed request's admit-to-reply time into
// the peak-hold envelope. Shed, cancelled and deadline-expired requests
// are not fed: their truncated sojourns say nothing about what an
// admitted request would have experienced.
func (a *admission) observeSojourn(dur time.Duration) {
	a.mu.Lock()
	a.decaySojournLocked()
	if f := float64(dur); f > a.sojournNS {
		a.sojournNS = f
	}
	a.sojournSamples++
	a.mu.Unlock()
}

// decaySojournLocked applies the elapsed-time decay (half-life = one
// budget) and stamps the envelope current. The decay is what lets shed
// traffic probe its way back in: when shedding (or an idle period)
// starves the server of completions, nothing would ever feed a lower
// value, and without decay the controller would latch shut.
func (a *admission) decaySojournLocked() {
	now := time.Now()
	if a.budget > 0 && !a.lastSojourn.IsZero() {
		if idle := now.Sub(a.lastSojourn); idle > 0 {
			a.sojournNS *= math.Pow(0.5, float64(idle)/float64(a.budget))
		}
	}
	a.lastSojourn = now
}

func (a *admission) sojourn() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sojournSamples == 0 {
		return 0
	}
	a.decaySojournLocked()
	return time.Duration(a.sojournNS)
}

// serviceNS returns the per-element service estimate, or 0 while
// unprimed (no completed work measured yet — admit everything; the first
// completions prime it within one batch).
func (a *admission) serviceNS() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.samples == 0 {
		return 0
	}
	return a.svcNS
}

// expectedWait estimates the total latency of n new elements joining
// now: the larger of the first-principles queue model (everything in
// flight plus the new work, drained at the measured per-element rate)
// and the measured sojourn of recently completed requests. The model
// reacts instantly to a building queue; the sojourn catches overheads
// the model cannot see.
func (a *admission) expectedWait(n int64) time.Duration {
	svc := a.serviceNS()
	if svc <= 0 {
		return 0
	}
	wait := time.Duration(float64(a.inflight.Load()+n) * svc)
	return max(wait, a.sojourn())
}

// admit decides whether n new elements fit inside the budget, with
// hysteresis: shedding starts when the expected wait exceeds the budget
// and stops only once it has fallen to half the budget, so the queue
// genuinely drains before traffic is re-admitted. It returns the
// expected wait so a shed response can carry an honest Retry-After.
// The check is advisory (admit/start are not one atomic step); the
// estimate only needs to be right in aggregate for the tail to stay
// bounded.
func (a *admission) admit(n int64) (time.Duration, bool) {
	if a.budget <= 0 {
		return 0, true
	}
	wait := a.expectedWait(n)
	a.mu.Lock()
	defer a.mu.Unlock()
	threshold := a.budget
	if a.shedding {
		threshold = a.budget / 2
	}
	if wait > threshold {
		a.shedding = true
		return wait, false
	}
	a.shedding = false
	return wait, true
}

// start and done bracket admitted work.
func (a *admission) start(n int64) { a.inflight.Add(n) }
func (a *admission) done(n int64)  { a.inflight.Add(-n) }
