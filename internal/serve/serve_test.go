package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lsh"
	"repro/internal/sampling"
	"repro/internal/sparse"
)

// testConfig is the small sampled-softmax network every serving test
// runs on.
func testConfig(seed uint64) core.Config {
	return core.Config{
		InputDim: 64,
		Seed:     seed,
		Layers: []core.LayerConfig{
			{Size: 32, Activation: core.ActReLU},
			{
				Size: 256, Activation: core.ActSoftmax,
				Sampled: true, Hash: lsh.KindSimhash, K: 4, L: 8,
				Strategy: sampling.KindVanilla, Beta: 48,
			},
		},
	}
}

// testModel builds a small sampled-softmax network, round-trips it
// through the self-describing model format, and returns the loaded copy —
// exactly the path slide-serve takes from a slide-train -save file.
func testModel(t *testing.T) *core.Network {
	t.Helper()
	net, err := core.NewNetwork(testConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

func startServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	s, err := New(testModel(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postPredict(t *testing.T, url string, body string) (int, predictResponse) {
	t.Helper()
	code, pr, err := tryPostPredict(url, body)
	if err != nil {
		t.Fatal(err)
	}
	return code, pr
}

// tryPostPredict is postPredict without t.Fatal, safe to call from
// client goroutines (FailNow must not run off the test goroutine).
func tryPostPredict(url string, body string) (int, predictResponse, error) {
	resp, err := http.Post(url+"/predict", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, predictResponse{}, err
	}
	defer resp.Body.Close()
	var pr predictResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			return resp.StatusCode, predictResponse{}, err
		}
	}
	return resp.StatusCode, pr, nil
}

func TestPredictExactAndSampled(t *testing.T) {
	ts := startServer(t, Options{BatchWindow: time.Millisecond})
	for _, mode := range []struct {
		sampled bool
		want    string
	}{{false, "exact"}, {true, "sampled"}} {
		body := fmt.Sprintf(`{"indices":[1,7,33],"values":[1.0,0.5,2.0],"k":3,"sampled":%v}`, mode.sampled)
		code, pr := postPredict(t, ts.URL, body)
		if code != http.StatusOK {
			t.Fatalf("mode %s: status %d", mode.want, code)
		}
		if pr.Mode != mode.want {
			t.Fatalf("mode = %q, want %q", pr.Mode, mode.want)
		}
		if len(pr.IDs) != 3 || len(pr.Scores) != 3 {
			t.Fatalf("mode %s: got %d ids / %d scores, want 3", mode.want, len(pr.IDs), len(pr.Scores))
		}
		for i := 1; i < len(pr.Scores); i++ {
			if pr.Scores[i] > pr.Scores[i-1] {
				t.Fatalf("mode %s: scores not descending: %v", mode.want, pr.Scores)
			}
		}
	}
}

func TestPredictDirectPathWithoutBatching(t *testing.T) {
	ts := startServer(t, Options{BatchWindow: 0})
	code, pr := postPredict(t, ts.URL, `{"indices":[2,5],"values":[1,1],"k":4}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(pr.IDs) != 4 || pr.BatchSize != 1 {
		t.Fatalf("got %d ids, batch %d; want 4 ids, batch 1", len(pr.IDs), pr.BatchSize)
	}
}

func TestPredictValidation(t *testing.T) {
	ts := startServer(t, Options{BatchWindow: time.Millisecond})
	for name, body := range map[string]string{
		"mismatched":        `{"indices":[1,2],"values":[1.0]}`,
		"empty":             `{"indices":[],"values":[]}`,
		"out of range":      `{"indices":[9999],"values":[1.0]}`,
		"not json":          `nope`,
		"negative deadline": `{"indices":[1],"values":[1.0],"deadline_ms":-5}`,
	} {
		code, _ := postPredict(t, ts.URL, body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
	// A malformed deadline header is a client error too.
	req, _ := http.NewRequest("POST", ts.URL+"/predict", bytes.NewReader([]byte(`{"indices":[1],"values":[1.0]}`)))
	req.Header.Set(deadlineHeader, "soon")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad deadline header: status %d, want 400", resp.StatusCode)
	}
}

// TestConcurrentPredictMicroBatches hammers the server with parallel
// requests in both modes and checks that micro-batching actually grouped
// some of them while every reply stays well-formed.
func TestConcurrentPredictMicroBatches(t *testing.T) {
	ts := startServer(t, Options{BatchWindow: 5 * time.Millisecond, BatchMax: 32})
	const clients = 24
	var wg sync.WaitGroup
	sawBatch := make([]int, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"indices":[%d,%d],"values":[1.0,0.5],"k":2,"sampled":%v}`,
				c%64, (c*7)%64, c%2 == 0)
			code, pr := postPredict(t, ts.URL, body)
			if code != http.StatusOK {
				t.Errorf("client %d: status %d", c, code)
				return
			}
			if len(pr.IDs) != 2 {
				t.Errorf("client %d: %d ids", c, len(pr.IDs))
			}
			sawBatch[c] = pr.BatchSize
		}(c)
	}
	wg.Wait()
	maxBatch := 0
	for _, b := range sawBatch {
		if b > maxBatch {
			maxBatch = b
		}
	}
	if maxBatch < 2 {
		t.Logf("no request shared a micro-batch (max batch size %d) — timing-dependent, not fatal", maxBatch)
	}
}

// TestSeededPredictDeterministic is the end-to-end determinism proof:
// identical seeded sampled requests return identical bodies (modulo the
// latency field), across repeats, across concurrent mixed traffic, and
// across the batched and unbatched paths.
func TestSeededPredictDeterministic(t *testing.T) {
	ts := startServer(t, Options{BatchWindow: 2 * time.Millisecond, BatchMax: 32})
	const body = `{"indices":[1,7,33],"values":[1.0,0.5,2.0],"k":3,"sampled":true,"seed":12345}`

	normalize := func(pr predictResponse) predictResponse {
		pr.Millis = 0 // latency is the one legitimately nondeterministic field
		return pr
	}
	code, first := postPredict(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if first.Mode != "sampled" || first.BatchSize != 1 {
		t.Fatalf("seeded request reported mode %q batch %d, want sampled/1", first.Mode, first.BatchSize)
	}
	want := normalize(first)

	// Sequential repeats.
	for i := 0; i < 5; i++ {
		code, pr := postPredict(t, ts.URL, body)
		if code != http.StatusOK {
			t.Fatalf("repeat %d: status %d", i, code)
		}
		if !reflect.DeepEqual(normalize(pr), want) {
			t.Fatalf("repeat %d: seeded response diverged: %+v vs %+v", i, pr, want)
		}
	}

	// Concurrent repeats racing against unseeded mixed traffic, so the
	// seeded requests share micro-batch windows with arbitrary company.
	const clients = 20
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if c%2 == 0 {
				noise := fmt.Sprintf(`{"indices":[%d,%d],"values":[1.0,0.5],"k":2,"sampled":%v}`,
					c%64, (c*7)%64, c%3 == 0)
				postPredict(t, ts.URL, noise)
				return
			}
			code, pr := postPredict(t, ts.URL, body)
			if code != http.StatusOK {
				t.Errorf("client %d: status %d", c, code)
				return
			}
			if !reflect.DeepEqual(normalize(pr), want) {
				t.Errorf("client %d: seeded response diverged under load: %+v vs %+v", c, pr, want)
			}
		}(c)
	}
	wg.Wait()

	// A different seed steers the draw somewhere else (k=3 of 256 after
	// vanilla probing — a collision of all three ids and scores across
	// seeds would mean the seed is not reaching the sampler).
	code, other := postPredict(t, ts.URL,
		`{"indices":[1,7,33],"values":[1.0,0.5,2.0],"k":3,"sampled":true,"seed":54321}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if reflect.DeepEqual(normalize(other), want) {
		t.Log("seeds 12345 and 54321 coincided — suspicious but not impossible")
	}

	// The unbatched path gives the same answer as the batched path.
	direct := startServer(t, Options{BatchWindow: 0})
	code, pr := postPredict(t, direct.URL, body)
	if code != http.StatusOK {
		t.Fatalf("direct: status %d", code)
	}
	if !slices.Equal(pr.IDs, want.IDs) || !slices.Equal(pr.Scores, want.Scores) {
		t.Fatalf("unbatched seeded response %v/%v diverged from batched %v/%v",
			pr.IDs, pr.Scores, want.IDs, want.Scores)
	}

	// Seed on an exact request is accepted and harmless — exact inference
	// is deterministic with or without it.
	code, ex1 := postPredict(t, ts.URL, `{"indices":[1,7],"values":[1,1],"k":3,"seed":9}`)
	code2, ex2 := postPredict(t, ts.URL, `{"indices":[1,7],"values":[1,1],"k":3}`)
	if code != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("exact statuses %d/%d", code, code2)
	}
	if !slices.Equal(ex1.IDs, ex2.IDs) || !slices.Equal(ex1.Scores, ex2.Scores) {
		t.Fatalf("exact prediction changed under a seed field: %v vs %v", ex1.IDs, ex2.IDs)
	}
}

// TestRunBatchReportsGroupSize pins the /stats fan-out accounting: a
// micro-batch of mixed modes runs as one PredictBatch per mode, so each
// reply's batchSize is its mode group's size — and a seeded request, which
// runs alone, always reports 1.
func TestRunBatchReportsGroupSize(t *testing.T) {
	s, err := New(testModel(t), Options{BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	x, err := sparse.New(64, []int32{1, 2}, []float32{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(sampled, seeded bool) *pendingReq {
		return &pendingReq{eng: s.eng.Load(), x: x, k: 2, sampled: sampled, seeded: seeded, seed: 5,
			reply: make(chan batchReply, 1)}
	}
	// 3 exact + 2 sampled + 1 seeded in one gathered micro-batch.
	batch := []*pendingReq{mk(false, false), mk(false, false), mk(false, false),
		mk(true, false), mk(true, false), mk(true, true)}
	s.runBatch(batch)
	wantSizes := []int{3, 3, 3, 2, 2, 1}
	for i, r := range batch {
		rep := <-r.reply
		if rep.err != nil {
			t.Fatalf("request %d: %v", i, rep.err)
		}
		if rep.batchSize != wantSizes[i] {
			t.Errorf("request %d reported batch size %d, want %d", i, rep.batchSize, wantSizes[i])
		}
	}
}

// TestPercentileNearestRank pins percentile to the nearest-rank
// definition: index ceil(p*n)-1 into the sorted samples — including the
// P999 read the load harness depends on.
func TestPercentileNearestRank(t *testing.T) {
	seq := func(n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = float64(i + 1) // 1..n, sorted
		}
		return s
	}
	for _, tc := range []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"single p50", seq(1), 0.50, 1},
		{"single p99", seq(1), 0.99, 1},
		{"two p50 is first", seq(2), 0.50, 1},
		{"two p51 is second", seq(2), 0.51, 2},
		{"two p99", seq(2), 0.99, 2},
		{"four p25", seq(4), 0.25, 1},
		{"four p50", seq(4), 0.50, 2},
		{"four p90", seq(4), 0.90, 4},
		{"hundred p50", seq(100), 0.50, 50},
		{"hundred p90", seq(100), 0.90, 90},
		{"hundred p99", seq(100), 0.99, 99},
		{"hundred p100", seq(100), 1.00, 100},
		{"p0 clamps to min", seq(10), 0, 1},
		{"empty returns zero", nil, 0.5, 0},
		// P999: below 1000 samples it reads the max; at and beyond 1000
		// it resolves a distinct rank.
		{"hundred p999 is max", seq(100), 0.999, 100},
		{"thousand p999", seq(1000), 0.999, 999},
		{"two thousand p999", seq(2000), 0.999, 1998},
		{"ring-sized p999", seq(4096), 0.999, 4092},
	} {
		if got := percentile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: percentile(n=%d, p=%v) = %v, want %v",
				tc.name, len(tc.sorted), tc.p, got, tc.want)
		}
	}
}

func TestHealthzAndStats(t *testing.T) {
	ts := startServer(t, Options{BatchWindow: time.Millisecond})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" || health["classes"] != float64(256) {
		t.Fatalf("healthz = %v", health)
	}

	for i := 0; i < 5; i++ {
		if code, _ := postPredict(t, ts.URL, `{"indices":[3],"values":[1.0]}`); code != http.StatusOK {
			t.Fatalf("warmup request %d: status %d", i, code)
		}
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap statsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Requests != 5 {
		t.Fatalf("stats requests = %d, want 5", snap.Requests)
	}
	if snap.P50Millis < 0 || snap.P99Millis < snap.P50Millis || snap.P999Millis < snap.P99Millis {
		t.Fatalf("implausible percentiles: %+v", snap)
	}
	if snap.Shed != 0 || snap.DeadlineExceeded != 0 {
		t.Fatalf("counters moved without shedding/deadlines: %+v", snap)
	}
}

// modelFile saves a freshly built model with the given seed into dir and
// returns its path — the on-disk artifact /reload consumes.
func modelFile(t *testing.T, dir string, seed uint64) string {
	t.Helper()
	net, err := core.NewNetwork(testConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fmt.Sprintf("model-%d.slide", seed))
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SaveModel(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, m
}

// serverFromFile loads a model file and builds a Server over it — the
// slide-serve boot path.
func serverFromFile(t *testing.T, path string, opts Options) *Server {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	net, err := core.LoadModel(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	opts.ModelPath = path
	s, err := New(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestReloadSwapsEngineUnderLoad exercises the hot-reload satellite: the
// server swaps its whole Network+Predictor pair from a model file while
// concurrent /predict traffic is in flight, every response stays
// well-formed, and /healthz reflects the new model afterwards.
func TestReloadSwapsEngineUnderLoad(t *testing.T) {
	dir := t.TempDir()
	pathA := modelFile(t, dir, 21)
	pathB := modelFile(t, dir, 22)

	s := serverFromFile(t, pathA, Options{BatchWindow: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Concurrent clients keep predicting across the swap.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body := fmt.Sprintf(`{"indices":[%d,%d],"values":[1.0,0.5],"k":2,"sampled":%v}`,
					(c+i)%64, (c*7+i)%64, c%2 == 0)
				code, pr, err := tryPostPredict(ts.URL, body)
				if err != nil {
					t.Errorf("client %d: %v mid-reload", c, err)
					return
				}
				if code != http.StatusOK {
					t.Errorf("client %d: status %d mid-reload", c, code)
					return
				}
				if len(pr.IDs) != 2 {
					t.Errorf("client %d: %d ids mid-reload", c, len(pr.IDs))
					return
				}
			}
		}(c)
	}

	// Swap to model B by explicit path, then back to the default (-model)
	// path with an empty body, all under load.
	code, rep := postJSON(t, ts.URL+"/reload", fmt.Sprintf(`{"model":%q}`, pathB))
	if code != http.StatusOK {
		t.Fatalf("reload to B: status %d: %v", code, rep)
	}
	if rep["model"] != pathB {
		t.Fatalf("reload reported model %v, want %s", rep["model"], pathB)
	}
	code, rep = postJSON(t, ts.URL+"/reload", ``)
	if code != http.StatusOK {
		t.Fatalf("default-path reload: status %d: %v", code, rep)
	}
	if rep["model"] != pathA {
		t.Fatalf("default-path reload loaded %v, want %s", rep["model"], pathA)
	}
	close(stop)
	wg.Wait()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["model"] != pathA || health["reloads"] != float64(2) {
		t.Fatalf("healthz after reloads = %v", health)
	}

	// Error paths: missing file is a server-side failure, not a crash.
	code, _ = postJSON(t, ts.URL+"/reload", `{"model":"/nonexistent.slide"}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("reload of missing file: status %d, want 500", code)
	}
}

// TestReloadWithoutModelPath: a server started from an in-memory network
// (no -model) refuses a path-less reload instead of crashing.
func TestReloadWithoutModelPath(t *testing.T) {
	ts := startServer(t, Options{BatchWindow: 0})
	code, rep := postJSON(t, ts.URL+"/reload", ``)
	if code != http.StatusBadRequest {
		t.Fatalf("path-less reload: status %d (%v), want 400", code, rep)
	}
}

// TestPredictBatchEndpoint: the bulk endpoint returns one result per
// vector, matches the single-request exact path elementwise, and is
// deterministic under a seed in sampled mode.
func TestPredictBatchEndpoint(t *testing.T) {
	ts := startServer(t, Options{BatchWindow: 0})

	body := `{"batch":[
		{"indices":[1,7,33],"values":[1.0,0.5,2.0]},
		{"indices":[2,5],"values":[1.0,1.0]},
		{"indices":[60,61,62],"values":[0.5,0.5,0.5]}],"k":3}`
	code, rep := postJSON(t, ts.URL+"/predict/batch", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, rep)
	}
	if rep["mode"] != "exact" || rep["count"] != float64(3) {
		t.Fatalf("batch response header = %v", rep)
	}
	results := rep["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("%d results for 3 inputs", len(results))
	}
	// Element 0 must match the single-request exact path bit for bit.
	code, single := postPredict(t, ts.URL, `{"indices":[1,7,33],"values":[1.0,0.5,2.0],"k":3}`)
	if code != http.StatusOK {
		t.Fatalf("single: status %d", code)
	}
	first := results[0].(map[string]any)
	gotIDs := first["ids"].([]any)
	if len(gotIDs) != len(single.IDs) {
		t.Fatalf("batch[0] %d ids vs single %d", len(gotIDs), len(single.IDs))
	}
	for i, id := range gotIDs {
		if int32(id.(float64)) != single.IDs[i] {
			t.Fatalf("batch[0] ids %v diverge from single %v", gotIDs, single.IDs)
		}
	}

	// Seeded sampled batches are reproducible end to end.
	seeded := `{"batch":[
		{"indices":[1,7,33],"values":[1.0,0.5,2.0]},
		{"indices":[2,5],"values":[1.0,1.0]}],"k":3,"sampled":true,"seed":99}`
	code, repA := postJSON(t, ts.URL+"/predict/batch", seeded)
	codeB, repB := postJSON(t, ts.URL+"/predict/batch", seeded)
	if code != http.StatusOK || codeB != http.StatusOK {
		t.Fatalf("seeded batch statuses %d/%d", code, codeB)
	}
	if repA["mode"] != "sampled" {
		t.Fatalf("seeded batch mode = %v", repA["mode"])
	}
	if !reflect.DeepEqual(repA["results"], repB["results"]) {
		t.Fatalf("identical seeded batch requests diverged:\n%v\nvs\n%v", repA["results"], repB["results"])
	}

	// Validation.
	for name, bad := range map[string]string{
		"empty batch":     `{"batch":[]}`,
		"empty vector":    `{"batch":[{"indices":[],"values":[]}]}`,
		"length mismatch": `{"batch":[{"indices":[1,2],"values":[1.0]}]}`,
		"out of range":    `{"batch":[{"indices":[9999],"values":[1.0]}]}`,
	} {
		code, _ := postJSON(t, ts.URL+"/predict/batch", bad)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
}

// TestArrivalEstimatorWindow drives the estimator with synthetic
// timestamps and checks the window policy: unprimed keeps the fixed
// window, dense traffic sizes the window to fill a batch, sparse traffic
// collapses it to zero, and the result is always clamped to [0, max].
func TestArrivalEstimatorWindow(t *testing.T) {
	const max = 2 * time.Millisecond
	const batchMax = 8

	var e arrivalEstimator
	if got := e.window(max, batchMax); got != max {
		t.Fatalf("unprimed window = %v, want the fixed %v", got, max)
	}

	// Dense traffic: 50µs apart -> window ≈ 7 gaps ≈ 350µs, below max.
	base := time.Unix(0, 0)
	for i := 0; i < 50; i++ {
		e.observe(base.Add(time.Duration(i) * 50 * time.Microsecond))
	}
	w := e.window(max, batchMax)
	if w <= 0 || w >= max {
		t.Fatalf("dense-traffic window = %v, want in (0, %v)", w, max)
	}
	if w < 200*time.Microsecond || w > 600*time.Microsecond {
		t.Fatalf("dense-traffic window = %v, want ≈ 350µs", w)
	}

	// Moderate traffic whose fill time exceeds max: clamped to max.
	e = arrivalEstimator{}
	for i := 0; i < 50; i++ {
		e.observe(base.Add(time.Duration(i) * time.Millisecond))
	}
	if w := e.window(max, batchMax); w != max {
		t.Fatalf("moderate-traffic window = %v, want clamped to %v", w, max)
	}

	// Sparse traffic: gaps beyond max mean nobody joins in time.
	e = arrivalEstimator{}
	for i := 0; i < 10; i++ {
		e.observe(base.Add(time.Duration(i) * 100 * time.Millisecond))
	}
	if w := e.window(max, batchMax); w != 0 {
		t.Fatalf("sparse-traffic window = %v, want 0", w)
	}

	// The EWMA tracks a regime change from sparse to dense.
	for i := 0; i < 100; i++ {
		e.observe(base.Add(time.Second + time.Duration(i)*30*time.Microsecond))
	}
	if w := e.window(max, batchMax); w <= 0 || w > time.Millisecond {
		t.Fatalf("post-burst window = %v, want small and positive", w)
	}

	// With the gap cap (as New configures it), one overnight idle gap
	// must not poison the estimate: a burst resuming right after it
	// recovers a positive window within a few samples instead of ~100.
	e = arrivalEstimator{gapCapNS: gapCapWindows * float64(max)}
	at := base
	for i := 0; i < 20; i++ {
		at = at.Add(50 * time.Microsecond)
		e.observe(at)
	}
	at = at.Add(8 * time.Hour) // idle overnight
	e.observe(at)
	for i := 0; i < 5; i++ {
		at = at.Add(50 * time.Microsecond)
		e.observe(at)
	}
	if w := e.window(max, batchMax); w <= 0 {
		t.Fatalf("window stuck at %v after an idle gap; the gap cap failed", w)
	}

	// Out-of-order timestamps (concurrent handlers racing to observe)
	// must not rewind the clock and inflate the next gap.
	e = arrivalEstimator{}
	for i := 0; i < 20; i++ {
		e.observe(base.Add(time.Duration(i) * 50 * time.Microsecond))
	}
	e.observe(base) // stale timestamp from a racing handler
	e.observe(base.Add(19*50*time.Microsecond + 60*time.Microsecond))
	if got, _ := e.interarrival(); got > 100*time.Microsecond {
		t.Fatalf("stale timestamp inflated the estimate to %v", got)
	}
}

// TestAdaptiveWindowServing: an adaptive server keeps answering
// correctly under both idle and bursty traffic, and /stats exposes the
// estimator once primed.
func TestAdaptiveWindowServing(t *testing.T) {
	ts := startServer(t, Options{
		BatchWindow:    2 * time.Millisecond,
		AdaptiveWindow: true,
		BatchMax:       8,
	})

	// Sequential requests: each must come back alone and promptly even
	// though the estimator starts unprimed (fixed window) and then sees
	// sparse traffic (zero window).
	for i := 0; i < 8; i++ {
		code, pr := postPredict(t, ts.URL, `{"indices":[1,5],"values":[1,0.5],"k":3}`)
		if code != http.StatusOK || len(pr.IDs) != 3 {
			t.Fatalf("request %d: code %d ids %v", i, code, pr.IDs)
		}
		time.Sleep(3 * time.Millisecond) // beyond BatchWindow: sparse regime
	}

	// A concurrent burst: all answered, batch sizes stay within limits.
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for c := 0; c < 32; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"indices":[%d],"values":[1.0],"k":2}`, c%64)
			code, pr, err := tryPostPredict(ts.URL, body)
			if err != nil {
				errs <- err
				return
			}
			if code != http.StatusOK || len(pr.IDs) != 2 || pr.BatchSize < 1 || pr.BatchSize > 8 {
				errs <- fmt.Errorf("client %d: code %d, %d ids, batch %d", c, code, len(pr.IDs), pr.BatchSize)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap statsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests < 40 {
		t.Fatalf("stats saw %d requests", snap.Requests)
	}
	if snap.AdaptiveExact == nil || snap.AdaptiveExact.EWMAInterarrivalMillis <= 0 {
		t.Fatalf("primed exact-mode estimator missing from stats: %+v", snap)
	}
	// All traffic so far was exact; the sampled estimator must not have
	// been fed by it (the modes are tracked separately).
	if snap.AdaptiveSampled != nil {
		t.Fatalf("sampled estimator primed by exact traffic: %+v", snap.AdaptiveSampled)
	}
}

// TestPerModeAdaptiveWindows: each mode's estimator is fed only by its
// own traffic, and /stats reports both once both are primed.
func TestPerModeAdaptiveWindows(t *testing.T) {
	ts := startServer(t, Options{
		BatchWindow:    2 * time.Millisecond,
		AdaptiveWindow: true,
		BatchMax:       8,
	})

	post := func(sampled bool) {
		t.Helper()
		body := `{"indices":[1,5],"values":[1,0.5],"k":2}`
		if sampled {
			body = `{"indices":[1,5],"values":[1,0.5],"k":2,"sampled":true}`
		}
		code, pr := postPredict(t, ts.URL, body)
		if code != http.StatusOK || len(pr.IDs) != 2 {
			t.Fatalf("sampled=%v: code %d ids %v", sampled, code, pr.IDs)
		}
	}
	// Interleave enough of each mode to prime both estimators (priming
	// needs 3 gaps per mode).
	for i := 0; i < 6; i++ {
		post(false)
		post(true)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap statsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.AdaptiveExact == nil || snap.AdaptiveExact.EWMAInterarrivalMillis <= 0 {
		t.Fatalf("exact estimator not reported: %+v", snap)
	}
	if snap.AdaptiveSampled == nil || snap.AdaptiveSampled.EWMAInterarrivalMillis <= 0 {
		t.Fatalf("sampled estimator not reported: %+v", snap)
	}
	for _, m := range []*adaptiveModeStats{snap.AdaptiveExact, snap.AdaptiveSampled} {
		if m.WindowMillis < 0 || time.Duration(m.WindowMillis*float64(time.Millisecond)) > 2*time.Millisecond {
			t.Fatalf("window %.3fms outside [0, BatchWindow]", m.WindowMillis)
		}
	}
}

// TestSIGHUPReloadsModel: SIGHUP swaps the engine exactly like POST
// /reload — the model file is rewritten between signals, and the served
// engine follows it.
func TestSIGHUPReloadsModel(t *testing.T) {
	dir := t.TempDir()
	path := modelFile(t, dir, 31)

	s := serverFromFile(t, path, Options{})
	stop := s.WatchSIGHUP(t.Logf)
	t.Cleanup(stop)

	before := s.eng.Load()
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.reloads.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("SIGHUP did not trigger a reload")
		}
		time.Sleep(time.Millisecond)
	}
	after := s.eng.Load()
	if after == before {
		t.Fatal("SIGHUP did not swap the engine")
	}
	if after.model != path {
		t.Fatalf("reloaded engine model = %q, want %q", after.model, path)
	}

	// A second signal keeps working (the watcher loops).
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	for s.reloads.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second SIGHUP did not trigger a reload")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSIGHUPWithoutModelPath: a server started without -model logs and
// survives the signal instead of crashing or swapping in garbage.
func TestSIGHUPWithoutModelPath(t *testing.T) {
	s, err := New(testModel(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	stop := s.WatchSIGHUP(t.Logf)
	t.Cleanup(stop)

	before := s.eng.Load()
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if s.reloads.Load() != 0 || s.eng.Load() != before {
		t.Fatal("pathless SIGHUP must be a no-op")
	}
}
