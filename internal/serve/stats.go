package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// statsRecorder accumulates request counts, micro-batch sizes, serving
// counters (shed, deadline-exceeded, cache) and a ring of recent
// latencies for percentile reporting. The ring holds 4096 samples — a
// P999 read needs at least 1000 for its rank to be a distinct sample.
type statsRecorder struct {
	mu         sync.Mutex
	requests   int64
	batchElems int64
	lat        [4096]float64
	pos        int
	filled     bool

	// sheds counts requests refused by admission control (429);
	// deadlineExceeded counts requests whose deadline expired before or
	// during compute (504). The load harness reads both from /stats to
	// separate goodput from throughput.
	sheds            atomic.Int64
	deadlineExceeded atomic.Int64
	cacheHits        atomic.Int64
	cacheMisses      atomic.Int64
}

func (sr *statsRecorder) record(ms float64, batchSize int) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	sr.requests++
	sr.batchElems += int64(batchSize)
	sr.lat[sr.pos] = ms
	sr.pos++
	if sr.pos == len(sr.lat) {
		sr.pos = 0
		sr.filled = true
	}
}

// adaptiveModeStats reports one mode's arrival estimator: the observed
// mean gap between batchable requests of that mode, and the gather
// window the next micro-batch opened by that mode would use. A zero
// WindowMillis is the designed sparse-traffic state (no peer expected in
// time, so don't wait), distinguishable from "estimator unprimed or
// feature disabled" because the whole struct is then absent.
type adaptiveModeStats struct {
	EWMAInterarrivalMillis float64 `json:"ewma_interarrival_ms"`
	WindowMillis           float64 `json:"window_ms"`
}

type statsSnapshot struct {
	Requests      int64   `json:"requests"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	P50Millis     float64 `json:"p50_ms"`
	P90Millis     float64 `json:"p90_ms"`
	P99Millis     float64 `json:"p99_ms"`
	P999Millis    float64 `json:"p999_ms"`
	// Shed / DeadlineExceeded are the tail-latency engineering counters:
	// requests refused by admission control and requests that ran out of
	// deadline. Cache* report the response cache (hits + misses counts
	// only cacheable requests).
	Shed             int64 `json:"shed"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	CacheHits        int64 `json:"cache_hits"`
	CacheMisses      int64 `json:"cache_misses"`
	CacheEntries     int   `json:"cache_entries"`
	// LatencyBudgetMillis echoes the configured admission budget and
	// ExpectedWaitMillis the controller's current wait estimate; both 0
	// when admission control is off.
	LatencyBudgetMillis float64 `json:"latency_budget_ms,omitempty"`
	ExpectedWaitMillis  float64 `json:"expected_wait_ms,omitempty"`
	// AdaptiveExact / AdaptiveSampled report the per-mode arrival
	// estimators when adaptive windows are on and the mode's estimator
	// is primed. The modes are tracked separately: exact and sampled
	// traffic arrive at independent rates, and each micro-batch's gather
	// window is sized from the estimator of the mode that opened it.
	AdaptiveExact   *adaptiveModeStats `json:"adaptive_exact,omitempty"`
	AdaptiveSampled *adaptiveModeStats `json:"adaptive_sampled,omitempty"`
	// Runtime GC/heap gauges, read from runtime.MemStats at snapshot
	// time. GCPauseP99Millis is the p99 of the runtime's recent
	// stop-the-world pause ring (up to 256 GCs of memory); Mallocs and
	// TotalAllocBytes are cumulative, so the load harness differences
	// two snapshots to get allocations and bytes per request for a
	// sweep phase.
	GCPauseP99Millis float64 `json:"gc_pause_p99_ms"`
	GCPauseMaxMillis float64 `json:"gc_pause_max_ms"`
	HeapAllocBytes   uint64  `json:"heap_alloc_bytes"`
	NumGC            uint32  `json:"num_gc"`
	Mallocs          uint64  `json:"mallocs"`
	TotalAllocBytes  uint64  `json:"total_alloc_bytes"`
}

// fillGCStats populates the snapshot's runtime gauges. The pause p99 is
// computed over the PauseNs ring's valid window — min(NumGC, 256)
// samples — with the nearest-rank rule the latency percentiles use.
func fillGCStats(snap *statsSnapshot) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	snap.HeapAllocBytes = m.HeapAlloc
	snap.NumGC = m.NumGC
	snap.Mallocs = m.Mallocs
	snap.TotalAllocBytes = m.TotalAlloc
	n := int(m.NumGC)
	if n > len(m.PauseNs) {
		n = len(m.PauseNs)
	}
	if n == 0 {
		return
	}
	pauses := make([]float64, n)
	var maxNS uint64
	for i := 0; i < n; i++ {
		p := m.PauseNs[(int(m.NumGC)-1-i+len(m.PauseNs))%len(m.PauseNs)]
		pauses[i] = float64(p)
		if p > maxNS {
			maxNS = p
		}
	}
	sort.Float64s(pauses)
	snap.GCPauseP99Millis = percentile(pauses, 0.99) / 1e6
	snap.GCPauseMaxMillis = float64(maxNS) / 1e6
}

func (sr *statsRecorder) snapshot() statsSnapshot {
	sr.mu.Lock()
	n := sr.pos
	if sr.filled {
		n = len(sr.lat)
	}
	lats := append([]float64(nil), sr.lat[:n]...)
	snap := statsSnapshot{Requests: sr.requests}
	if sr.requests > 0 {
		snap.MeanBatchSize = float64(sr.batchElems) / float64(sr.requests)
	}
	sr.mu.Unlock()

	snap.Shed = sr.sheds.Load()
	snap.DeadlineExceeded = sr.deadlineExceeded.Load()
	snap.CacheHits = sr.cacheHits.Load()
	snap.CacheMisses = sr.cacheMisses.Load()

	if len(lats) > 0 {
		sort.Float64s(lats)
		snap.P50Millis = percentile(lats, 0.50)
		snap.P90Millis = percentile(lats, 0.90)
		snap.P99Millis = percentile(lats, 0.99)
		snap.P999Millis = percentile(lats, 0.999)
	}
	return snap
}

// percentile reads the p-quantile from ascending-sorted samples using the
// nearest-rank definition: the smallest sample with at least a fraction p
// of all samples at or below it, i.e. index ceil(p*n)-1. (Truncating
// p*n would index one rank too high — p50 of two samples must be the
// first, not the second.)
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	setContentTypeJSON(w)
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// setContentTypeJSON sets the Content-Type header without allocating
// when it is already set — http.Header.Set builds a fresh []string per
// call, which would be the last allocation on the zero-alloc request
// path whenever the header map is reused (as the regression tests and
// any buffering middleware do).
func setContentTypeJSON(w http.ResponseWriter) {
	h := w.Header()
	if vs := h["Content-Type"]; len(vs) == 1 && vs[0] == "application/json" {
		return
	}
	h.Set("Content-Type", "application/json")
}

// encodeJSON renders v exactly as writeJSON would stream it (trailing
// newline included), so a cached body is byte-identical to the body the
// filling request received.
func encodeJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeRawJSON writes an already-encoded JSON body.
func writeRawJSON(w http.ResponseWriter, code int, body []byte) {
	setContentTypeJSON(w)
	w.WriteHeader(code)
	w.Write(body)
}
