package serve

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sparse"
)

// reqWorkspace is the pooled per-request memory: the body read buffer,
// parsed component lists, the pendingReq handed to the micro-batcher
// (with its result buffers and reusable reply channel), batch-endpoint
// element slots, and the response encode buffer. One workspace serves
// one request at a time; with pooling on, the steady state recycles a
// fixed set of workspaces and the request path stops allocating.
//
// Lifetime rule: a workspace returns to the pool only on paths where its
// reply has been consumed (or never issued). A request abandoned while
// queued — client gone, deadline spent — leaks its workspace to the
// garbage collector instead, because the batcher may still write into
// the workspace's result buffers and send on its reply channel; reuse
// would race. Abandonment is the exceptional path, so the leak rate is
// the abandonment rate, not the request rate.
type reqWorkspace struct {
	// pr is the request handed to the batcher; its x/ids/scores alias
	// workspace-owned buffers and its reply channel is created once and
	// reused for the workspace's lifetime.
	pr     pendingReq
	body   []byte
	idx    []int32
	val    []float32
	resp   []byte
	params predictParams

	// Batch-endpoint state: per-element component slots (each reused
	// across requests), the vector views over them, and the predictor's
	// reusable batch result storage.
	nBatch  int
	elemIdx [][]int32
	elemVal [][]float32
	xs      []sparse.Vector
	res     core.BatchResults
}

func newWorkspace() *reqWorkspace {
	ws := &reqWorkspace{}
	ws.pr.reply = make(chan batchReply, 1)
	return ws
}

// getWorkspace checks a workspace out of the pool (or builds one). With
// Options.NoPooling — the measurement ablation — every request gets a
// fresh workspace and putWorkspace drops it, reproducing the
// allocate-per-request behavior this PR removed so the GC cost of the
// old regime stays measurable at identical operating points.
func (s *Server) getWorkspace() *reqWorkspace {
	if s.opts.NoPooling {
		return newWorkspace()
	}
	if ws, _ := s.wsPool.Get().(*reqWorkspace); ws != nil {
		return ws
	}
	return newWorkspace()
}

func (s *Server) putWorkspace(ws *reqWorkspace) {
	if s.opts.NoPooling {
		return
	}
	s.wsPool.Put(ws)
}

// errBodyTooLarge reports a request body over the configured cap; the
// handlers map it to 400 exactly as the json decode error from
// http.MaxBytesReader mapped before.
var errBodyTooLarge = fmt.Errorf("request body exceeds limit")

// readBody reads r to EOF into buf (reusing its capacity), failing once
// more than max bytes have arrived. It replaces http.MaxBytesReader +
// json.Decoder — both allocate per request — with one capped read into
// pooled memory.
func readBody(r io.Reader, buf []byte, max int64) ([]byte, error) {
	buf = buf[:0]
	if cap(buf) == 0 {
		buf = make([]byte, 0, 4096)
	}
	for {
		if int64(len(buf)) > max {
			return buf, errBodyTooLarge
		}
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}
