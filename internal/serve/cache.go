package serve

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"

	"repro/internal/sparse"
)

// respCache is the response cache: a mutex-guarded LRU from an exact
// request key to the serialized response body served for it. Only
// deterministic requests are cached — exact predictions, and seeded
// sampled predictions (pure functions of (input, seed) by PR 2's
// guarantee) — so a hit replays the original body byte for byte. Keys
// embed the engine generation: an engine swap (POST /reload, SIGHUP)
// strands every old entry, and ReloadFrom purges them wholesale to
// return the memory.
//
// The key is the full canonical encoding of the request (generation,
// mode, seed, k, indices, values), not a hash of it, so a lookup can
// never collide two different requests into one entry.
type respCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	// evictions counts capacity displacements; hit/miss accounting lives
	// in statsRecorder with the other serving counters.
	evictions int64
}

type cacheEntry struct {
	key  string
	body []byte
}

func newRespCache(capacity int) *respCache {
	return &respCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// cacheKey canonically encodes one cacheable request. Exact requests
// normalize seeded=false/seed=0 (a seed on an exact request is inert, so
// seeded and unseeded exact requests share an entry).
func cacheKey(gen int64, x sparse.Vector, k int, sampled, seeded bool, seed uint64) string {
	if !sampled {
		seeded, seed = false, 0
	}
	b := make([]byte, 0, 32+8*len(x.Idx))
	b = binary.AppendVarint(b, gen)
	b = binary.AppendUvarint(b, uint64(k))
	var flags uint64
	if sampled {
		flags |= 1
	}
	if seeded {
		flags |= 2
	}
	b = binary.AppendUvarint(b, flags)
	b = binary.AppendUvarint(b, seed)
	b = binary.AppendUvarint(b, uint64(len(x.Idx)))
	for _, i := range x.Idx {
		b = binary.AppendUvarint(b, uint64(i))
	}
	for _, v := range x.Val {
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(v))
	}
	return string(b)
}

func (c *respCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

func (c *respCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A racing filler beat us; keep the existing entry so repeated
		// requests stay byte-identical to the first fill.
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, body: body})
	c.entries[key] = el
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// purge drops every entry (engine swap: all generations in the cache are
// stale).
func (c *respCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.entries)
}

func (c *respCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
