//go:build !race

package serve

// raceEnabled reports whether the race detector is active. Under -race,
// instrumentation allocates on paths that are allocation-free in normal
// builds, so the AllocsPerRun pins only run without it.
const raceEnabled = false
