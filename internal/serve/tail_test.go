package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/sparse"
)

// getStats decodes /stats.
func getStats(t *testing.T, url string) statsSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap statsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// postRaw posts a /predict body and returns status, headers and the raw
// response bytes — the cache tests compare bodies bit for bit.
func postRaw(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/predict", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}

// TestAdmissionControlSheds pins the shedding contract: with a latency
// budget configured, a primed service-time estimate and a deep virtual
// queue, new requests get 429 with a Retry-After header and the shed
// counter moves — and draining the queue admits traffic again.
func TestAdmissionControlSheds(t *testing.T) {
	s, err := New(testModel(t), Options{BatchWindow: 0, LatencyBudget: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Unprimed controller admits everything — this request also primes
	// the per-element service-time EWMA.
	code, _, _ := postRaw(t, ts.URL, `{"indices":[1,7],"values":[1,1],"k":3}`)
	if code != http.StatusOK {
		t.Fatalf("priming request: status %d", code)
	}
	if svc := s.adm.serviceNS(); svc <= 0 {
		t.Fatal("service-time estimate still unprimed after a completed request")
	}

	// Simulate a queue deep enough that expected wait >> budget. The
	// inflight counter is the controller's only queue signal, so bumping
	// it is exactly the state a real backlog would produce.
	s.adm.start(1_000_000)
	code, hdr, body := postRaw(t, ts.URL, `{"indices":[1,7],"values":[1,1],"k":3}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overloaded request: status %d (body %s), want 429", code, body)
	}
	ra := hdr.Get("Retry-After")
	if ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a whole number of seconds >= 1", ra)
	}

	// Batch endpoint sheds too, weighted by element count.
	resp, err := http.Post(ts.URL+"/predict/batch", "application/json",
		bytes.NewReader([]byte(`{"batch":[{"indices":[1],"values":[1]},{"indices":[2],"values":[1]}],"k":2}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded batch request: status %d, want 429", resp.StatusCode)
	}

	snap := getStats(t, ts.URL)
	if snap.Shed != 2 {
		t.Fatalf("shed counter = %d, want 2", snap.Shed)
	}
	if snap.LatencyBudgetMillis != 10 {
		t.Fatalf("latency_budget_ms = %v, want 10", snap.LatencyBudgetMillis)
	}
	if snap.ExpectedWaitMillis <= snap.LatencyBudgetMillis {
		t.Fatalf("expected_wait_ms = %v not above budget while overloaded", snap.ExpectedWaitMillis)
	}

	// Drain the virtual queue and let the sojourn envelope decay past the
	// hysteresis threshold (half the budget): traffic is admitted again.
	s.adm.done(1_000_000)
	time.Sleep(5 * s.opts.LatencyBudget)
	code, _, _ = postRaw(t, ts.URL, `{"indices":[1,7],"values":[1,1],"k":3}`)
	if code != http.StatusOK {
		t.Fatalf("post-drain request: status %d, want 200", code)
	}
}

// TestAdmissionEstimator unit-tests the controller arithmetic: EWMA
// priming and convergence, expected wait scaling with inflight work, and
// budget=0 disabling shedding entirely.
func TestAdmissionEstimator(t *testing.T) {
	var a admission
	a.budget = time.Millisecond

	// Unprimed: everything admitted, wait reads 0.
	if wait, ok := a.admit(1); !ok || wait != 0 {
		t.Fatalf("unprimed admit = (%v, %v), want (0, true)", wait, ok)
	}

	// First observation seeds the EWMA exactly.
	a.observe(10*time.Millisecond, 10) // 1ms per element
	if got := a.serviceNS(); got != float64(time.Millisecond) {
		t.Fatalf("seeded svc = %vns, want 1ms", got)
	}
	// Expected wait scales with inflight + new work.
	a.start(4)
	if got := a.expectedWait(1); got != 5*time.Millisecond {
		t.Fatalf("expectedWait(1) with 4 inflight = %v, want 5ms", got)
	}
	// 5ms expected wait > 1ms budget: shed, and the returned wait is the
	// estimate the Retry-After is derived from.
	if wait, ok := a.admit(1); ok || wait != 5*time.Millisecond {
		t.Fatalf("admit over budget = (%v, %v), want (5ms, false)", wait, ok)
	}
	// Hysteresis: having shed, the controller stays shut while the
	// expected wait (1×1ms after the drain) still exceeds half the
	// budget — dipping just under the budget is not drained enough.
	a.done(4)
	if _, ok := a.admit(1); ok {
		t.Fatal("admit right at budget re-opened despite hysteresis")
	}

	// The EWMA tracks a faster regime, and once the expected wait falls
	// below half the budget the latch releases.
	for i := 0; i < 200; i++ {
		a.observe(100*time.Microsecond, 1)
	}
	if got := a.serviceNS(); got > float64(150*time.Microsecond) {
		t.Fatalf("svc stuck at %vns after regime change to 100µs", got)
	}
	if _, ok := a.admit(1); !ok {
		t.Fatal("admit after drain + regime change refused")
	}

	// Zero budget disables shedding no matter the queue.
	var off admission
	off.observe(time.Second, 1)
	off.start(1_000_000)
	if _, ok := off.admit(1); !ok {
		t.Fatal("budget=0 controller shed a request")
	}

	// The measured sojourn backstops the queue model: even with an empty
	// queue, when completed requests took longer than the budget the
	// overheads the model cannot see are eating it, and new arrivals are
	// shed.
	var sj admission
	sj.budget = 50 * time.Millisecond
	sj.observe(time.Millisecond, 1)
	sj.observeSojourn(200 * time.Millisecond)
	if wait, ok := sj.admit(1); ok || wait < sj.budget {
		t.Fatalf("sojourn over budget admitted: (%v, %v)", wait, ok)
	}
	// ...and silence decays the estimate (half per budget of idle time)
	// so shed traffic probes its way back in instead of latching out.
	sj.mu.Lock()
	sj.lastSojourn = time.Now().Add(-10 * sj.budget)
	sj.mu.Unlock()
	if _, ok := sj.admit(1); !ok {
		t.Fatal("stale sojourn estimate latched the controller shut")
	}
}

// TestRequestDeadlines covers the deadline plumbing end to end: a
// deadline too tight for the configured gather window turns into 504 and
// moves the deadline_exceeded counter, the header form works, and the
// tighter of body and header wins.
func TestRequestDeadlines(t *testing.T) {
	// A long fixed gather window guarantees a queued request waits well
	// past a 1ms deadline.
	ts := startServer(t, Options{BatchWindow: 200 * time.Millisecond, BatchMax: 64})

	post := func(body string, header string) (int, []byte) {
		req, err := http.NewRequest("POST", ts.URL+"/predict", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if header != "" {
			req.Header.Set(deadlineHeader, header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}

	// Body deadline_ms.
	code, body := post(`{"indices":[1,7],"values":[1,1],"k":3,"deadline_ms":1}`, "")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("body deadline: status %d (body %s), want 504", code, body)
	}
	// Header deadline.
	code, body = post(`{"indices":[1,7],"values":[1,1],"k":3}`, "1")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("header deadline: status %d (body %s), want 504", code, body)
	}
	// Tighter wins: generous body, tight header.
	code, body = post(`{"indices":[1,7],"values":[1,1],"k":3,"deadline_ms":60000}`, "1")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("tighter header deadline: status %d (body %s), want 504", code, body)
	}

	snap := getStats(t, ts.URL)
	if snap.DeadlineExceeded != 3 {
		t.Fatalf("deadline_exceeded counter = %d, want 3", snap.DeadlineExceeded)
	}

	// A generous deadline succeeds on the same server.
	code, body = post(`{"indices":[1,7],"values":[1,1],"k":3,"deadline_ms":60000}`, "")
	if code != http.StatusOK {
		t.Fatalf("generous deadline: status %d (body %s), want 200", code, body)
	}
}

func TestRequestDeadlineResolution(t *testing.T) {
	h := func(v string) http.Header {
		hd := http.Header{}
		if v != "" {
			hd.Set(deadlineHeader, v)
		}
		return hd
	}
	for _, tc := range []struct {
		name    string
		bodyMs  float64
		header  string
		want    time.Duration
		wantErr bool
	}{
		{"none", 0, "", 0, false},
		{"body only", 5, "", 5 * time.Millisecond, false},
		{"header only", 0, "7", 7 * time.Millisecond, false},
		{"tighter header wins", 10, "3", 3 * time.Millisecond, false},
		{"tighter body wins", 2, "50", 2 * time.Millisecond, false},
		{"fractional header", 0, "0.5", 500 * time.Microsecond, false},
		{"malformed header", 0, "soon", 0, true},
		{"negative header", 0, "-1", 0, true},
		{"negative body", -1, "", 0, true},
	} {
		got, err := requestDeadline(tc.bodyMs, h(tc.header))
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr %v", tc.name, err, tc.wantErr)
			continue
		}
		if !tc.wantErr && got != tc.want {
			t.Errorf("%s: deadline = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestBatcherPrunesDoomedWork: runBatch answers members already past
// their deadline with DeadlineExceeded instead of computing them, while
// on-time members in the same gathered batch still get served.
func TestBatcherPrunesDoomedWork(t *testing.T) {
	s, err := New(testModel(t), Options{BatchWindow: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	x, err := sparse.New(64, []int32{1, 2}, []float32{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(deadline time.Time) *pendingReq {
		return &pendingReq{eng: s.eng.Load(), x: x, k: 2, deadline: deadline,
			reply: make(chan batchReply, 1)}
	}
	doomed := mk(time.Now().Add(-time.Second))
	alive := mk(time.Now().Add(time.Minute))
	open := mk(time.Time{})
	s.runBatch([]*pendingReq{doomed, alive, open})

	if rep := <-doomed.reply; rep.err != context.DeadlineExceeded {
		t.Fatalf("doomed request err = %v, want DeadlineExceeded", rep.err)
	}
	for name, r := range map[string]*pendingReq{"alive": alive, "open-ended": open} {
		rep := <-r.reply
		if rep.err != nil || len(rep.ids) != 2 {
			t.Fatalf("%s request: err %v, %d ids; want served with 2 ids", name, rep.err, len(rep.ids))
		}
		// The pruned member left the group before the fan-out, so the
		// reported batch size counts only the served members.
		if rep.batchSize != 2 {
			t.Fatalf("%s request batch size = %d, want 2", name, rep.batchSize)
		}
	}
}

// TestGroupContext: the fan-out context carries the group's latest
// deadline only when every member has one.
func TestGroupContext(t *testing.T) {
	later := time.Now().Add(time.Hour)
	sooner := time.Now().Add(time.Minute)
	mk := func(d time.Time) *pendingReq { return &pendingReq{deadline: d} }

	ctx, cancel := groupContext([]*pendingReq{mk(sooner), mk(later)})
	defer cancel()
	if d, ok := ctx.Deadline(); !ok || !d.Equal(later) {
		t.Fatalf("all-deadline group: ctx deadline = %v/%v, want %v", d, ok, later)
	}

	ctx2, cancel2 := groupContext([]*pendingReq{mk(sooner), mk(time.Time{})})
	defer cancel2()
	if _, ok := ctx2.Deadline(); ok {
		t.Fatal("group with an open-ended member must run uncancellable")
	}
}

// TestResponseCacheHits is the cache half of the tentpole acceptance:
// repeated exact and seeded-sampled requests are served from the cache
// with byte-identical bodies, unseeded sampled traffic is never cached,
// and the counters in /stats move accordingly.
func TestResponseCacheHits(t *testing.T) {
	ts := startServer(t, Options{BatchWindow: 0, CacheSize: 64})

	check := func(name, body string) {
		t.Helper()
		code, hdr, first := postRaw(t, ts.URL, body)
		if code != http.StatusOK {
			t.Fatalf("%s fill: status %d", name, code)
		}
		if got := hdr.Get("X-Cache"); got != "miss" {
			t.Fatalf("%s fill: X-Cache = %q, want miss", name, got)
		}
		for i := 0; i < 3; i++ {
			code, hdr, got := postRaw(t, ts.URL, body)
			if code != http.StatusOK {
				t.Fatalf("%s hit %d: status %d", name, i, code)
			}
			if h := hdr.Get("X-Cache"); h != "hit" {
				t.Fatalf("%s hit %d: X-Cache = %q, want hit", name, i, h)
			}
			if !bytes.Equal(got, first) {
				t.Fatalf("%s hit %d: body diverged from fill:\n%s\nvs\n%s", name, i, got, first)
			}
		}
	}
	check("exact", `{"indices":[1,7,33],"values":[1.0,0.5,2.0],"k":3}`)
	check("seeded sampled", `{"indices":[1,7,33],"values":[1.0,0.5,2.0],"k":3,"sampled":true,"seed":42}`)

	// Unseeded sampled requests bypass the cache entirely.
	_, hdr, _ := postRaw(t, ts.URL, `{"indices":[1,7],"values":[1,1],"k":3,"sampled":true}`)
	if h := hdr.Get("X-Cache"); h != "" {
		t.Fatalf("unseeded sampled request got X-Cache = %q, want absent", h)
	}

	snap := getStats(t, ts.URL)
	if snap.CacheHits != 6 || snap.CacheMisses != 2 {
		t.Fatalf("cache counters = %d hits / %d misses, want 6/2", snap.CacheHits, snap.CacheMisses)
	}
	if snap.CacheEntries != 2 {
		t.Fatalf("cache_entries = %d, want 2", snap.CacheEntries)
	}

	// Different k, seed, or values are different entries, not collisions.
	for name, body := range map[string]string{
		"different k":    `{"indices":[1,7,33],"values":[1.0,0.5,2.0],"k":4}`,
		"different seed": `{"indices":[1,7,33],"values":[1.0,0.5,2.0],"k":3,"sampled":true,"seed":43}`,
		"different vals": `{"indices":[1,7,33],"values":[1.0,0.5,2.5],"k":3}`,
	} {
		_, hdr, _ := postRaw(t, ts.URL, body)
		if h := hdr.Get("X-Cache"); h != "miss" {
			t.Fatalf("%s: X-Cache = %q, want miss (a hit means a key collision)", name, h)
		}
	}
}

// TestCacheInvalidatedByReload: a /reload bumps the engine generation
// and flushes the cache, so post-reload traffic refills instead of
// serving answers from the previous model.
func TestCacheInvalidatedByReload(t *testing.T) {
	dir := t.TempDir()
	path := modelFile(t, dir, 41)
	s := serverFromFile(t, path, Options{BatchWindow: 0, CacheSize: 64})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const body = `{"indices":[1,7],"values":[1,1],"k":3}`
	postRaw(t, ts.URL, body) // fill
	if _, hdr, _ := postRaw(t, ts.URL, body); hdr.Get("X-Cache") != "hit" {
		t.Fatal("warm cache did not hit before reload")
	}
	if s.cache.len() == 0 {
		t.Fatal("cache empty after a fill")
	}

	code, rep := postJSON(t, ts.URL+"/reload", ``)
	if code != http.StatusOK {
		t.Fatalf("reload: status %d: %v", code, rep)
	}
	if rep["generation"] != float64(1) {
		t.Fatalf("post-reload generation = %v, want 1", rep["generation"])
	}
	if s.cache.len() != 0 {
		t.Fatalf("cache holds %d entries after reload, want 0", s.cache.len())
	}
	// Same request misses (new generation key) and refills.
	if _, hdr, _ := postRaw(t, ts.URL, body); hdr.Get("X-Cache") != "miss" {
		t.Fatal("post-reload request did not miss")
	}
	if _, hdr, _ := postRaw(t, ts.URL, body); hdr.Get("X-Cache") != "hit" {
		t.Fatal("post-reload refill did not hit")
	}
}

// TestRespCacheLRU unit-tests the cache container: eviction order,
// recency promotion, the racing-filler rule, and purge.
func TestRespCacheLRU(t *testing.T) {
	c := newRespCache(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // promotes a to most-recent
		t.Fatal("a missing")
	}
	c.put("c", []byte("C")) // evicts b, the least recently used
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used a was evicted instead of b")
	}
	if c.evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.evictions)
	}

	// A racing filler must not replace an existing body: repeated hits
	// stay byte-identical to the first fill.
	c.put("a", []byte("A2"))
	if body, _ := c.get("a"); string(body) != "A" {
		t.Fatalf("racing put replaced the body: %q", body)
	}

	c.purge()
	if c.len() != 0 {
		t.Fatalf("purged cache holds %d entries", c.len())
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("purged entry still served")
	}
}

// TestCacheKeyCanonical pins key semantics: generation, k, mode, seed,
// indices and values all distinguish entries; a seed on an exact request
// does not (it is inert, so seeded and unseeded exact share an entry).
func TestCacheKeyCanonical(t *testing.T) {
	x, err := sparse.New(64, []int32{1, 7}, []float32{1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	y, err := sparse.New(64, []int32{1, 8}, []float32{1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	base := cacheKey(0, x, 3, false, false, 0)
	distinct := map[string]string{
		"generation": cacheKey(1, x, 3, false, false, 0),
		"k":          cacheKey(0, x, 4, false, false, 0),
		"mode":       cacheKey(0, x, 3, true, true, 0),
		"seed":       cacheKey(0, x, 3, true, true, 7),
		"indices":    cacheKey(0, y, 3, false, false, 0),
	}
	for name, k := range distinct {
		if k == base {
			t.Errorf("%s did not change the cache key", name)
		}
	}
	if cacheKey(0, x, 3, true, true, 7) == cacheKey(0, x, 3, true, true, 8) {
		t.Error("seed 7 and 8 collide")
	}
	// Exact requests normalize the seed away.
	if cacheKey(0, x, 3, false, true, 9) != base {
		t.Error("inert seed on an exact request changed the key")
	}
	// Values participate.
	z, err := sparse.New(64, []int32{1, 7}, []float32{1, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if cacheKey(0, z, 3, false, false, 0) == base {
		t.Error("values did not change the cache key")
	}
}

// TestGracefulCloseDrainsQueue: requests enqueued before Close still get
// answers (the drain path), matching the slide-serve graceful-shutdown
// satellite.
func TestGracefulCloseDrainsQueue(t *testing.T) {
	s, err := New(testModel(t), Options{BatchWindow: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	x, err := sparse.New(64, []int32{3}, []float32{1})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]*pendingReq, 8)
	for i := range reqs {
		reqs[i] = &pendingReq{eng: s.eng.Load(), x: x, k: 2, reply: make(chan batchReply, 1)}
		s.reqCh <- reqs[i]
	}
	s.Close() // batchLoop must drain the queue before exiting
	for i, r := range reqs {
		select {
		case rep := <-r.reply:
			if rep.err != nil || len(rep.ids) != 2 {
				t.Fatalf("request %d: err %v, %d ids", i, rep.err, len(rep.ids))
			}
		default:
			t.Fatalf("request %d never answered after Close", i)
		}
	}
}
