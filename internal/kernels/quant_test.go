package kernels

import (
	"math"
	"testing"

	"repro/internal/arena"
	"repro/internal/rng"
	"repro/internal/vecmath"
)

func randRows(r *rng.RNG, in, out int) [][]float32 {
	rows := make([][]float32, out)
	for j := range rows {
		rows[j] = make([]float32, in)
		for i := range rows[j] {
			rows[j][i] = r.NormFloat32()
		}
	}
	return rows
}

// TestMirrorFormatCoherence: for every format, a Rebuild followed by
// random dual-writes must leave At reading exactly what the format's
// encoder stores for the current row value.
func TestMirrorFormatCoherence(t *testing.T) {
	const in, out = 29, 17
	for _, format := range []MirrorFormat{MirrorFP32, MirrorBF16, MirrorInt8} {
		t.Run(format.String(), func(t *testing.T) {
			r := rng.New(21)
			rows := randRows(r, in, out)
			for _, ar := range []*arena.Arena{nil, arena.New(0)} {
				m := NewMirrorFormat(in, out, format, ar)
				m.Rebuild(rows)
				for step := 0; step < 400; step++ {
					j, i := int32(r.Intn(out)), int32(r.Intn(in))
					v := r.NormFloat32()
					rows[j][i] = v
					m.Set(j, i, v)
				}
				for j := int32(0); int(j) < out; j++ {
					for i := int32(0); int(i) < in; i++ {
						v, got := rows[j][i], m.At(j, i)
						switch format {
						case MirrorFP32:
							if got != v {
								t.Fatalf("fp32 At(%d,%d) = %v, want %v", j, i, got, v)
							}
						case MirrorBF16:
							if want := vecmath.F32FromBF16(vecmath.BF16FromF32(v)); got != want {
								t.Fatalf("bf16 At(%d,%d) = %v, want %v", j, i, got, want)
							}
						case MirrorInt8:
							// One quantization step is scale; round-half-away
							// keeps the cell within half a step of the value
							// (unless saturated, which these draws avoid
							// only probabilistically — allow the clamp).
							scale := float64(m.scale[i])
							if err := math.Abs(float64(got - v)); err > scale/2+1e-6 && math.Abs(float64(got)) < 127*scale-1e-6 {
								t.Fatalf("int8 At(%d,%d) = %v, want %v ± %v", j, i, got, v, scale/2)
							}
						}
					}
				}
			}
		})
	}
}

// TestInt8MirrorScaleAndSaturation pins the Rebuild scale derivation
// (max|w| × 2 headroom / 127 per column) and the saturating Set: writes
// past the representable range clamp to ±127 cells instead of wrapping.
func TestInt8MirrorScaleAndSaturation(t *testing.T) {
	const in, out = 3, 4
	rows := [][]float32{{1, -2, 0}, {0.5, 1, 0}, {-1, 0.25, 0}, {0.75, -0.5, 0}}
	m := NewMirrorFormat(in, out, MirrorInt8, nil)
	m.Rebuild(rows)

	if want := float32(1.0 * int8Headroom / 127); m.scale[0] != want {
		t.Fatalf("column 0 scale = %v, want %v", m.scale[0], want)
	}
	if want := float32(2.0 * int8Headroom / 127); m.scale[1] != want {
		t.Fatalf("column 1 scale = %v, want %v", m.scale[1], want)
	}
	// All-zero column gets the 1e-8 floor, not a division by zero.
	if m.scale[2] <= 0 || math.IsInf(float64(m.inv[2]), 0) {
		t.Fatalf("zero column scale/inv = %v / %v", m.scale[2], m.inv[2])
	}

	// Within headroom the write resolves; at 10x the column max it clamps.
	m.Set(0, 0, 1.9)
	if got := m.At(0, 0); math.Abs(float64(got-1.9)) > float64(m.scale[0])/2+1e-6 {
		t.Fatalf("in-headroom write decoded to %v", got)
	}
	m.Set(0, 0, 10)
	if got, lim := m.At(0, 0), 127*m.scale[0]; got != lim {
		t.Fatalf("saturating write decoded to %v, want clamp %v", got, lim)
	}
	m.Set(0, 0, -10)
	if got, lim := m.At(0, 0), -127*m.scale[0]; got != lim {
		t.Fatalf("negative saturating write decoded to %v, want clamp %v", got, lim)
	}
}

// TestScatterForwardQuantizedTolerance: the quantized mirrors' scatter
// kernels must track the fp32 scatter within their formats' error budgets
// — bf16 at 2⁻⁸ per weight, int8 at its per-column step — on the shape the
// first hidden layer runs (sparse input, full output).
func TestScatterForwardQuantizedTolerance(t *testing.T) {
	const in, out, nnz = 512, 96, 40
	r := rng.New(33)
	rows := randRows(r, in, out)
	b := make([]float32, out)
	inIds := make([]int32, nnz)
	inVals := make([]float32, nnz)
	for t2 := range inIds {
		inIds[t2] = int32((t2 * 13) % in)
		inVals[t2] = r.NormFloat32()
	}

	ref := make([]float32, out)
	f32 := NewMirror(in, out)
	f32.Rebuild(rows)
	ScatterForward(ref, f32, b, inIds, inVals, false)

	// bf16: 2⁻⁸ relative per weight, loose fixed bound. int8: each cell is
	// within half a quantization step, so output j can drift by at most
	// Σ_t |inVals[t]|·scale[inIds[t]]/2 — the exact worst-case bound.
	bf16 := NewMirrorFormat(in, out, MirrorBF16, nil)
	bf16.Rebuild(rows)
	dst := make([]float32, out)
	ScatterForward(dst, bf16, b, inIds, inVals, false)
	for j := range ref {
		if !withinTol(float64(dst[j]), float64(ref[j]), 2e-2) {
			t.Fatalf("bf16 scatter[%d] = %v, fp32 = %v", j, dst[j], ref[j])
		}
	}

	i8 := NewMirrorFormat(in, out, MirrorInt8, nil)
	i8.Rebuild(rows)
	var bound float64
	for t2, i := range inIds {
		bound += math.Abs(float64(inVals[t2])) * float64(i8.scale[i]) / 2
	}
	clear(dst)
	ScatterForward(dst, i8, b, inIds, inVals, false)
	for j := range ref {
		if err := math.Abs(float64(dst[j] - ref[j])); err > bound+1e-6 {
			t.Fatalf("int8 scatter[%d] = %v, fp32 = %v: error %v exceeds bound %v", j, dst[j], ref[j], err, bound)
		}
	}
}

// TestCalibratedCrossoverBoundsAndStability: the measured crossover must
// land inside the clamp window and be cached across calls.
func TestCalibratedCrossoverBounds(t *testing.T) {
	c := CalibratedCrossover()
	if c < calibMin || c > calibMax {
		t.Fatalf("calibrated crossover %v outside [%v, %v]", c, calibMin, calibMax)
	}
	if again := CalibratedCrossover(); again != c {
		t.Fatalf("second call returned %v, first %v", again, c)
	}
}

func TestMirrorFormatString(t *testing.T) {
	for f, want := range map[MirrorFormat]string{MirrorFP32: "fp32", MirrorBF16: "bf16", MirrorInt8: "int8"} {
		if f.String() != want {
			t.Errorf("MirrorFormat(%d).String() = %q, want %q", f, f.String(), want)
		}
	}
}
