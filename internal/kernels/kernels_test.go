package kernels

import (
	"math"
	"slices"
	"testing"

	"repro/internal/rng"
)

// naiveForward is the reference per-neuron formulation the engine's forms
// are checked against: for each active neuron, bias plus an explicit
// inner-product loop, then an optional ReLU clamp — exactly the shape of
// the pre-engine core hot loop.
func naiveForward(dst []float32, ids []int32, w [][]float32, b []float32, inIds []int32, inVals []float32, inFull, relu bool) {
	row := func(a int, j int32) {
		s := b[j]
		if inFull {
			for i, x := range inVals {
				s += x * w[j][i]
			}
		} else {
			for t, i := range inIds {
				s += inVals[t] * w[j][i]
			}
		}
		if relu && s < 0 {
			s = 0
		}
		dst[a] = s
	}
	if ids == nil {
		for j := range dst {
			row(j, int32(j))
		}
		return
	}
	for a, j := range ids {
		row(a, j)
	}
}

type forwardCase struct {
	in, out int
	w       [][]float32
	b       []float32
	mirror  *Mirror
	inIds   []int32
	inVals  []float32
	inFull  bool
	ids     []int32 // nil = full output
	relu    bool
}

// randCase draws one random layer shape, input (sparse or dense), and
// active set (full or a random fraction of the output).
func randCase(r *rng.RNG) forwardCase {
	c := forwardCase{
		in:  1 + r.Intn(300),
		out: 1 + r.Intn(200),
	}
	c.w = make([][]float32, c.out)
	c.b = make([]float32, c.out)
	for j := range c.w {
		c.w[j] = make([]float32, c.in)
		for i := range c.w[j] {
			c.w[j][i] = r.NormFloat32()
		}
		c.b[j] = r.NormFloat32()
	}
	c.mirror = NewMirror(c.in, c.out)
	c.mirror.Rebuild(c.w)

	c.inFull = r.Intn(3) == 0
	if c.inFull {
		c.inVals = make([]float32, c.in)
		for i := range c.inVals {
			c.inVals[i] = r.NormFloat32()
		}
	} else {
		nnz := 1 + r.Intn(c.in)
		seen := make(map[int32]bool, nnz)
		for len(c.inIds) < nnz {
			i := int32(r.Intn(c.in))
			if !seen[i] {
				seen[i] = true
				c.inIds = append(c.inIds, i)
				c.inVals = append(c.inVals, r.NormFloat32())
			}
		}
	}

	if r.Intn(2) == 0 { // active-sparse output at a random fraction
		frac := []float64{0.01, 0.1, 0.5, 0.9}[r.Intn(4)]
		want := int(frac * float64(c.out))
		if want < 1 {
			want = 1
		}
		seen := make(map[int32]bool, want)
		for len(c.ids) < want {
			j := int32(r.Intn(c.out))
			if !seen[j] {
				seen[j] = true
				c.ids = append(c.ids, j)
			}
		}
		slices.Sort(c.ids)
	}
	c.relu = r.Intn(2) == 0
	return c
}

func (c *forwardCase) nActive() int {
	if c.ids == nil {
		return c.out
	}
	return len(c.ids)
}

// TestGatherMatchesNaiveBitwise: the gather form preserves the reference
// path's per-row summation order, so its results must be bit-identical —
// the "bitwise where the summation order is preserved" half of the
// equivalence contract.
func TestGatherMatchesNaiveBitwise(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		c := randCase(r)
		want := make([]float32, c.nActive())
		got := make([]float32, c.nActive())
		naiveForward(want, c.ids, c.w, c.b, c.inIds, c.inVals, c.inFull, c.relu)
		GatherForward(got, c.ids, c.w, c.b, c.inIds, c.inVals, c.inFull, c.relu)
		for a := range want {
			if got[a] != want[a] {
				// The unrolled kernels reassociate the per-row sum; that
				// is the one permitted deviation, and it must stay within
				// the ULP bound.
				if !withinTol(float64(got[a]), float64(want[a]), 1e-5) {
					t.Fatalf("trial %d (in=%d out=%d active=%d inFull=%v relu=%v): gather[%d] = %v, naive = %v",
						trial, c.in, c.out, c.nActive(), c.inFull, c.relu, a, got[a], want[a])
				}
			}
		}
	}
}

// TestScatterMatchesNaiveWithinTol: the scatter form reassociates the sum
// input-major, so it is held to the 1e-5 relative bound rather than bits.
// Scatter only exists for full outputs with sparse inputs.
func TestScatterMatchesNaiveWithinTol(t *testing.T) {
	r := rng.New(11)
	tested := 0
	for trial := 0; tested < 120; trial++ {
		c := randCase(r)
		if c.ids != nil || c.inFull {
			continue
		}
		tested++
		want := make([]float32, c.out)
		got := make([]float32, c.out)
		naiveForward(want, nil, c.w, c.b, c.inIds, c.inVals, false, c.relu)
		ScatterForward(got, c.mirror, c.b, c.inIds, c.inVals, c.relu)
		for j := range want {
			if !withinTol(float64(got[j]), float64(want[j]), 1e-5) {
				t.Fatalf("case %d (in=%d out=%d nnz=%d relu=%v): scatter[%d] = %v, naive = %v",
					tested, c.in, c.out, len(c.inIds), c.relu, j, got[j], want[j])
			}
		}
	}
}

func withinTol(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// TestMirrorSetTracksRows: dual-writing single cells keeps the mirror
// coherent with the rows it shadows.
func TestMirrorSetTracksRows(t *testing.T) {
	r := rng.New(3)
	const in, out = 37, 19
	rows := make([][]float32, out)
	for j := range rows {
		rows[j] = make([]float32, in)
		for i := range rows[j] {
			rows[j][i] = r.NormFloat32()
		}
	}
	m := NewMirror(in, out)
	m.Rebuild(rows)
	for step := 0; step < 500; step++ {
		j, i := int32(r.Intn(out)), int32(r.Intn(in))
		v := r.NormFloat32()
		rows[j][i] = v
		m.Set(j, i, v)
	}
	for i := int32(0); int(i) < in; i++ {
		col := m.Col(i)
		for j := range col {
			if col[j] != rows[j][i] {
				t.Fatalf("mirror[%d][%d] = %v, rows = %v", i, j, col[j], rows[j][i])
			}
		}
	}
}

// TestForwardFormPlan pins the plan's decision table: forced forms are
// honored (scatter degrades to gather without a mirror or on dense
// input), and the auto plan switches on the measured density crossover.
func TestForwardFormPlan(t *testing.T) {
	auto := Config{}.WithDefaults()
	cases := []struct {
		name              string
		cfg               Config
		nnz, in           int
		inFull, hasMirror bool
		want              Form
	}{
		{"legacy forced", Config{Force: FormLegacy}, 10, 1000, false, true, FormLegacy},
		{"gather forced", Config{Force: FormGather}, 10, 1000, false, true, FormGather},
		{"scatter forced", Config{Force: FormScatter}, 10, 1000, false, true, FormScatter},
		{"scatter forced, no mirror", Config{Force: FormScatter}, 10, 1000, false, false, FormGather},
		{"scatter forced, dense input", Config{Force: FormScatter}, 0, 1000, true, true, FormGather},
		{"auto sparse input + mirror", auto, 10, 1000, false, true, FormScatter},
		{"auto at crossover", auto, int(DefaultScatterMaxDensity * 1000), 1000, false, true, FormGather},
		{"auto dense input", auto, 0, 1000, true, true, FormGather},
		{"auto no mirror", auto, 10, 1000, false, false, FormGather},
	}
	for _, tc := range cases {
		if got := tc.cfg.ForwardForm(tc.nnz, tc.in, tc.inFull, tc.hasMirror); got != tc.want {
			t.Errorf("%s: ForwardForm = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestWorkspaceEnsureAccReuses: growing once and reusing is the
// allocation-free steady-state contract.
func TestWorkspaceEnsureAccReuses(t *testing.T) {
	var w Workspace
	a := w.EnsureAcc(64)
	if len(a) != 64 {
		t.Fatalf("len = %d", len(a))
	}
	a[0] = 42
	b := w.EnsureAcc(32)
	if len(b) != 32 || &a[0] != &b[0] {
		t.Fatal("EnsureAcc reallocated on shrink")
	}
	c := w.EnsureAcc(128)
	if len(c) != 128 {
		t.Fatalf("len = %d", len(c))
	}
}

func TestFormString(t *testing.T) {
	for f, want := range map[Form]string{FormAuto: "auto", FormLegacy: "legacy", FormGather: "gather", FormScatter: "scatter"} {
		if f.String() != want {
			t.Errorf("Form(%d).String() = %q, want %q", f, f.String(), want)
		}
	}
}
