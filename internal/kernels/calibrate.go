package kernels

import (
	"sync"
	"time"
)

// Startup auto-tuning of the gather/scatter density crossover.
//
// DefaultScatterMaxDensity (25%) was measured on one development machine;
// the real crossover moves with cache sizes and memory bandwidth. The
// calibration below times both forms on a fixed synthetic layer shape at a
// grid of input densities and places the crossover between the last
// density where scatter won and the first where gather won. It runs once
// per process (sync.Once), costs a few milliseconds, and is bypassed
// entirely when the caller pins Config.ScatterMaxDensity — the override
// seeded determinism tests use.

const (
	calibIn  = 1024 // calibration fan-in
	calibOut = 128  // calibration fan-out
	// calibMin/calibMax clamp the measured crossover: timing noise on a
	// loaded machine must not push the plan into regimes where one form
	// is asymptotically wrong.
	calibMin = 0.05
	calibMax = 0.5
)

var (
	calibOnce  sync.Once
	calibValue float64
)

// CalibratedCrossover measures (once per process) the input density at
// which the gather form overtakes the scatter form on this machine and
// returns it clamped to [0.05, 0.5]. Subsequent calls return the cached
// value.
func CalibratedCrossover() float64 {
	calibOnce.Do(func() { calibValue = measureCrossover() })
	return calibValue
}

func measureCrossover() float64 {
	// Fixed-seed LCG data: calibration perturbs only timing, never the
	// numerics of any run.
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() float32 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float32(rng>>40)/float32(1<<24) - 0.5
	}

	w := make([][]float32, calibOut)
	for j := range w {
		w[j] = make([]float32, calibIn)
		for i := range w[j] {
			w[j][i] = next()
		}
	}
	b := make([]float32, calibOut)
	for j := range b {
		b[j] = next()
	}
	m := NewMirror(calibIn, calibOut)
	m.Rebuild(w)

	ids := make([]int32, calibIn)
	vals := make([]float32, calibIn)
	dst := make([]float32, calibOut)

	densities := []float64{1.0 / 64, 1.0 / 32, 1.0 / 16, 1.0 / 8, 1.0 / 4, 1.0 / 2}
	lastScatter, firstGather := -1, -1
	for di, d := range densities {
		nnz := int(d * calibIn)
		if nnz < 1 {
			nnz = 1
		}
		stride := calibIn / nnz
		for t := 0; t < nnz; t++ {
			ids[t] = int32(t * stride)
			vals[t] = next()
		}
		reps := 1 + (1<<14)/nnz // equalize work per density point

		gather := time.Duration(1 << 62)
		scatter := time.Duration(1 << 62)
		for trial := 0; trial < 3; trial++ {
			t0 := time.Now()
			for r := 0; r < reps; r++ {
				GatherForward(dst, nil, w, b, ids[:nnz], vals[:nnz], false, true)
			}
			if e := time.Since(t0); e < gather {
				gather = e
			}
			t0 = time.Now()
			for r := 0; r < reps; r++ {
				ScatterForward(dst, m, b, ids[:nnz], vals[:nnz], true)
			}
			if e := time.Since(t0); e < scatter {
				scatter = e
			}
		}
		if scatter < gather {
			lastScatter = di
		} else if firstGather < 0 {
			firstGather = di
		}
	}

	var crossover float64
	switch {
	case lastScatter < 0:
		// Scatter never won: push the crossover to the floor.
		crossover = calibMin
	case lastScatter == len(densities)-1:
		// Scatter won at the densest point measured: take the ceiling.
		crossover = calibMax
	case firstGather > lastScatter:
		crossover = (densities[lastScatter] + densities[firstGather]) / 2
	default:
		// Non-monotone from timing noise: split between the last scatter
		// win and the next denser point.
		crossover = (densities[lastScatter] + densities[lastScatter+1]) / 2
	}
	if crossover < calibMin {
		crossover = calibMin
	}
	if crossover > calibMax {
		crossover = calibMax
	}
	return crossover
}
