// Package kernels is the density-adaptive execution layer between the
// SLIDE network (internal/core) and the raw vector kernels
// (internal/vecmath). For every (layer, active set) forward step it picks
// a compute *form*:
//
//   - gather: the classical per-active-neuron formulation — one fused
//     dot+bias(+ReLU) per active row, rows visited in ascending id order
//     for locality. The right shape when the active output fraction is
//     small (SLIDE's sampled layers) or the input is dense.
//   - scatter: the input-major formulation — for each input nonzero, one
//     contiguous Axpy of its column-major weight slice into the dense
//     output workspace. The right shape when every output neuron is
//     active and the input is sparse (the paper architecture's first
//     hidden layer, whose input is the example's sparse feature vector):
//     a gather there issues out×nnz scattered single-float reads, while
//     the scatter streams nnz contiguous out-length slices.
//
// The crossover is driven by the measured input density of the pass:
// above Config.ScatterMaxDensity the input is dense enough that the
// row-major gather (a plain GEMV) wins again, because the scatter's
// read-modify-write workspace traffic stops being paid back by better
// weight locality. The scatter form requires the layer to maintain a
// column-major Mirror of its weights; layers without one always gather.
//
// This is the vectorization/memory-layout work the follow-up paper
// "Accelerating SLIDE Deep Learning on Modern CPUs" (Daghaghi et al.,
// MLSys 2021) reports as worth 2-7x on exactly these loops, done as a
// refactor in the BrainSlug style: the network's control flow is
// unchanged, only the per-step kernel shape is re-planned. It is also the
// substrate alternative weight formats (quantized, BF16) plug into: a
// format supplies its own Mirror/row kernels and the plan logic is reused.
package kernels

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/vecmath"
)

// Form identifies one compute formulation of the forward step.
type Form uint8

const (
	// FormAuto lets the plan pick per pass from the measured density.
	FormAuto Form = iota
	// FormLegacy is the pre-engine per-neuron reference path (kept alive
	// the same way applyAdamFused backs the optimizer equivalence tests).
	FormLegacy
	// FormGather is the per-active-row fused dot form.
	FormGather
	// FormScatter is the input-major column-axpy form.
	FormScatter
	// NumForms bounds Form values, for counters indexed by form.
	NumForms
)

// String returns the reporting name of the form.
func (f Form) String() string {
	switch f {
	case FormAuto:
		return "auto"
	case FormLegacy:
		return "legacy"
	case FormGather:
		return "gather"
	case FormScatter:
		return "scatter"
	default:
		return fmt.Sprintf("Form(%d)", uint8(f))
	}
}

// DefaultScatterMaxDensity is the gather/scatter crossover: input
// densities at or above it run the gather form even when a mirror is
// available. At density 1 both forms stream the whole weight matrix, but
// the gather's row dots are pure reads while the scatter re-reads and
// re-writes the workspace once per input nonzero; the scatter's locality
// advantage has to be large enough to pay for that, which empirically
// holds only while most columns are skipped.
const DefaultScatterMaxDensity = 0.25

// Config fixes a network's kernel-planning policy. The zero value is the
// adaptive default.
type Config struct {
	// Force pins every pass to one form: FormLegacy for the reference
	// path, FormGather/FormScatter for equivalence tests and benchmarks
	// (a forced scatter still falls back to gather where no mirror
	// exists — the form would be incomputable). FormAuto adapts per pass.
	Force Form
	// ScatterMaxDensity overrides the gather/scatter density crossover;
	// 0 selects DefaultScatterMaxDensity.
	ScatterMaxDensity float64
}

// WithDefaults resolves zero fields.
func (c Config) WithDefaults() Config {
	if c.ScatterMaxDensity == 0 {
		c.ScatterMaxDensity = DefaultScatterMaxDensity
	}
	return c
}

// ForwardForm plans one forward pass over a layer: nnz input nonzeros of
// a fan-in of in (inFull marks a dense input, where nnz is ignored), with
// hasMirror reporting whether the layer maintains the column-major mirror
// the scatter form needs. The scatter form additionally requires the full
// output to be computed — callers only pass hasMirror=true for layers
// whose every neuron is active (dense layers).
func (c Config) ForwardForm(nnz, in int, inFull, hasMirror bool) Form {
	switch c.Force {
	case FormLegacy:
		return FormLegacy
	case FormGather:
		return FormGather
	case FormScatter:
		if hasMirror && !inFull {
			return FormScatter
		}
		return FormGather
	}
	if !hasMirror || inFull || in == 0 {
		return FormGather
	}
	maxD := c.ScatterMaxDensity
	if maxD == 0 {
		maxD = DefaultScatterMaxDensity
	}
	if float64(nnz) >= maxD*float64(in) {
		return FormGather
	}
	return FormScatter
}

// Fused reports whether the backward pass should use the fused
// outer-product kernels (every form except the legacy reference).
func (c Config) Fused() bool { return c.Force != FormLegacy }

// MirrorFormat selects the numeric storage of a weight mirror. FP32 is
// the exact default; BF16 halves the bytes the scatter form streams at
// ~3 decimal digits of precision; int8 quarters them behind a per-column
// scale (the stretch format — saturating near the scale boundary, so
// suited to inference and tolerance-tested training, not bit-exactness).
type MirrorFormat uint8

const (
	// MirrorFP32 stores exact float32 columns (bit-identical to the
	// row-major weights).
	MirrorFP32 MirrorFormat = iota
	// MirrorBF16 stores bfloat16 columns (round-to-nearest-even on every
	// write; relative error ≤ 2⁻⁸ per weight).
	MirrorBF16
	// MirrorInt8 stores int8 columns with one dequantization scale per
	// column, fixed at Rebuild with 2x headroom; writes beyond the
	// representable range saturate.
	MirrorInt8
)

// String returns the configuration name of the format.
func (f MirrorFormat) String() string {
	switch f {
	case MirrorFP32:
		return "fp32"
	case MirrorBF16:
		return "bf16"
	case MirrorInt8:
		return "int8"
	default:
		return fmt.Sprintf("MirrorFormat(%d)", uint8(f))
	}
}

// int8Headroom is the slack Rebuild leaves between a column's current
// max |w| and the saturation point, so training drift keeps resolving
// until the next Rebuild.
const int8Headroom = 2.0

// Mirror is a column-major copy of a layer's weight matrix: Col(i) is the
// contiguous slice of every neuron's weight for input i — the operand the
// scatter form Axpys per input nonzero. It is derived state: the layer
// rebuilds it after bulk weight restores and dual-writes it on every
// optimizer step (each Adam step touches exactly the delta's cells, so
// the mirror update costs one extra store per stepped cell). Concurrent
// readers during training inherit the row-major weights' HOGWILD
// weak-consistency argument unchanged. Quantized formats store the same
// layout in narrower cells and supply their own column kernels to
// ScatterForward.
type Mirror struct {
	in, out int
	format  MirrorFormat
	t       []float32 // fp32:  t[i*out+j] = w[j][i]
	t16     []uint16  // bf16:  same layout, bfloat16 cells
	t8      []int8    // int8:  same layout, quantized cells
	scale   []float32 // int8: per-column dequantization scale
	inv     []float32 // int8: per-column 1/scale for writes
}

// NewMirror allocates an unfilled exact (fp32) in×out mirror; call
// Rebuild to populate it.
func NewMirror(in, out int) *Mirror {
	return NewMirrorFormat(in, out, MirrorFP32, nil)
}

// NewMirrorFormat allocates an unfilled in×out mirror in the given
// format. When ar is non-nil the backing slab comes from it as one
// cache-line-aligned arena allocation; otherwise from the heap.
func NewMirrorFormat(in, out int, format MirrorFormat, ar *arena.Arena) *Mirror {
	m := &Mirror{in: in, out: out, format: format}
	n := in * out
	switch format {
	case MirrorFP32:
		if ar != nil {
			m.t = ar.AllocAligned(n)
		} else {
			m.t = make([]float32, n)
		}
	case MirrorBF16:
		if ar != nil {
			m.t16 = ar.AllocUint16(n)
		} else {
			m.t16 = make([]uint16, n)
		}
	case MirrorInt8:
		if ar != nil {
			m.t8 = ar.AllocInt8(n)
			m.scale = ar.AllocAligned(in)
			m.inv = ar.AllocAligned(in)
		} else {
			m.t8 = make([]int8, n)
			m.scale = make([]float32, in)
			m.inv = make([]float32, in)
		}
	default:
		panic(fmt.Sprintf("kernels: unknown mirror format %v", format))
	}
	return m
}

// Format returns the mirror's storage format.
func (m *Mirror) Format() MirrorFormat { return m.format }

// Col returns input column i's contiguous weight slice (length out). Only
// valid on fp32 mirrors; quantized formats are read through their own
// kernels (ScatterForward) or cell-wise through At.
func (m *Mirror) Col(i int32) []float32 {
	off := int(i) * m.out
	return m.t[off : off+m.out : off+m.out]
}

// Set stores neuron j's weight for input i, encoding per the format.
func (m *Mirror) Set(j, i int32, v float32) {
	switch m.format {
	case MirrorFP32:
		m.t[int(i)*m.out+int(j)] = v
	case MirrorBF16:
		m.t16[int(i)*m.out+int(j)] = vecmath.BF16FromF32(v)
	case MirrorInt8:
		q := v * m.inv[i]
		switch {
		case q > 127:
			q = 127
		case q < -127:
			q = -127
		}
		m.t8[int(i)*m.out+int(j)] = int8(roundHalfAway(q))
	}
}

// At decodes neuron j's stored weight for input i — the format-agnostic
// read the coherence tests use.
func (m *Mirror) At(j, i int32) float32 {
	off := int(i)*m.out + int(j)
	switch m.format {
	case MirrorBF16:
		return vecmath.F32FromBF16(m.t16[off])
	case MirrorInt8:
		return float32(m.t8[off]) * m.scale[i]
	default:
		return m.t[off]
	}
}

func roundHalfAway(q float32) int32 {
	if q >= 0 {
		return int32(q + 0.5)
	}
	return int32(q - 0.5)
}

// Rebuild repopulates the mirror from neuron-major rows (len(rows) = out,
// each of length in). Used at initialization and after bulk weight
// restores (model loads). Int8 mirrors re-derive each column's scale here
// from its max |w| with 2x headroom.
func (m *Mirror) Rebuild(rows [][]float32) {
	if len(rows) != m.out {
		panic(fmt.Sprintf("kernels: Rebuild with %d rows, mirror has %d", len(rows), m.out))
	}
	for j, row := range rows {
		if len(row) < m.in {
			panic(fmt.Sprintf("kernels: Rebuild row %d has %d weights, mirror fan-in is %d", j, len(row), m.in))
		}
	}
	if m.format == MirrorInt8 {
		for i := 0; i < m.in; i++ {
			var maxAbs float32
			for _, row := range rows {
				a := row[i]
				if a < 0 {
					a = -a
				}
				if a > maxAbs {
					maxAbs = a
				}
			}
			if maxAbs == 0 {
				maxAbs = 1e-8
			}
			m.scale[i] = maxAbs * int8Headroom / 127
			m.inv[i] = 1 / m.scale[i]
		}
	}
	for j, row := range rows {
		for i := 0; i < m.in; i++ {
			m.Set(int32(j), int32(i), row[i])
		}
	}
}

// Workspace is one worker's reusable kernel scratch, embedded in the
// per-worker element state so steady-state passes allocate nothing.
type Workspace struct {
	// Acc is the backward activation-gradient accumulator, sized once to
	// the network's largest fan-in.
	Acc []float32
	// Forms counts forward kernel executions by chosen form — the
	// engine's decision record, aggregated into training results and the
	// kernels experiment.
	Forms [NumForms]int64
}

// EnsureAcc returns the accumulator resized to n, growing the backing
// array only when the recorded fan-in bound was too small.
func (w *Workspace) EnsureAcc(n int) []float32 {
	if cap(w.Acc) < n {
		w.Acc = make([]float32, n)
	}
	w.Acc = w.Acc[:n]
	return w.Acc
}

// GatherForward computes dst over the active rows in the gather form: one
// fused dot+bias(+ReLU) per row. ids lists the active neuron ids aligned
// with dst; a nil ids means every neuron 0..len(dst) is active. The input
// is (inIds, inVals) sparse pairs, or inVals dense when inFull. Callers
// wanting row locality sort ids first; per-row results are bitwise
// independent of row order.
func GatherForward(dst []float32, ids []int32, w [][]float32, b []float32, inIds []int32, inVals []float32, inFull, relu bool) {
	if ids == nil {
		if inFull {
			for j := range dst {
				dst[j] = rowDot(b[j], w[j], inIds, inVals, true, relu)
			}
			return
		}
		for j := range dst {
			dst[j] = rowDot(b[j], w[j], inIds, inVals, false, relu)
		}
		return
	}
	for a, j := range ids {
		dst[a] = rowDot(b[j], w[j], inIds, inVals, inFull, relu)
	}
}

func rowDot(b float32, w []float32, inIds []int32, inVals []float32, inFull, relu bool) float32 {
	if inFull {
		if relu {
			return vecmath.DotBiasReLU(b, w[:len(inVals)], inVals)
		}
		return b + vecmath.Dot(w[:len(inVals)], inVals)
	}
	if relu {
		return vecmath.SparseDotBiasReLU(b, inIds, inVals, w)
	}
	return b + vecmath.SparseDot(inIds, inVals, w)
}

// ScatterForward computes the full dense output in the input-major form:
// dst starts as the bias vector and accumulates one contiguous
// column-Axpy per input nonzero, then the ReLU clamp runs over the still
// cache-hot result. dst must have length m.out. Accumulation order is
// input-major, so results agree with the gather form only to float
// rounding (the equivalence tests bound the difference, not the bits).
func ScatterForward(dst []float32, m *Mirror, b []float32, inIds []int32, inVals []float32, relu bool) {
	copy(dst, b[:len(dst)])
	switch m.format {
	case MirrorBF16:
		for t, i := range inIds {
			off := int(i) * m.out
			vecmath.AxpyBF16(inVals[t], m.t16[off:off+m.out:off+m.out], dst)
		}
	case MirrorInt8:
		for t, i := range inIds {
			off := int(i) * m.out
			vecmath.AxpyInt8(inVals[t]*m.scale[i], m.t8[off:off+m.out:off+m.out], dst)
		}
	default:
		for t, i := range inIds {
			vecmath.Axpy(inVals[t], m.Col(i), dst)
		}
	}
	if relu {
		vecmath.ReLU(dst)
	}
}
