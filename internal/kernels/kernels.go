// Package kernels is the density-adaptive execution layer between the
// SLIDE network (internal/core) and the raw vector kernels
// (internal/vecmath). For every (layer, active set) forward step it picks
// a compute *form*:
//
//   - gather: the classical per-active-neuron formulation — one fused
//     dot+bias(+ReLU) per active row, rows visited in ascending id order
//     for locality. The right shape when the active output fraction is
//     small (SLIDE's sampled layers) or the input is dense.
//   - scatter: the input-major formulation — for each input nonzero, one
//     contiguous Axpy of its column-major weight slice into the dense
//     output workspace. The right shape when every output neuron is
//     active and the input is sparse (the paper architecture's first
//     hidden layer, whose input is the example's sparse feature vector):
//     a gather there issues out×nnz scattered single-float reads, while
//     the scatter streams nnz contiguous out-length slices.
//
// The crossover is driven by the measured input density of the pass:
// above Config.ScatterMaxDensity the input is dense enough that the
// row-major gather (a plain GEMV) wins again, because the scatter's
// read-modify-write workspace traffic stops being paid back by better
// weight locality. The scatter form requires the layer to maintain a
// column-major Mirror of its weights; layers without one always gather.
//
// This is the vectorization/memory-layout work the follow-up paper
// "Accelerating SLIDE Deep Learning on Modern CPUs" (Daghaghi et al.,
// MLSys 2021) reports as worth 2-7x on exactly these loops, done as a
// refactor in the BrainSlug style: the network's control flow is
// unchanged, only the per-step kernel shape is re-planned. It is also the
// substrate alternative weight formats (quantized, BF16) plug into: a
// format supplies its own Mirror/row kernels and the plan logic is reused.
package kernels

import (
	"fmt"

	"repro/internal/vecmath"
)

// Form identifies one compute formulation of the forward step.
type Form uint8

const (
	// FormAuto lets the plan pick per pass from the measured density.
	FormAuto Form = iota
	// FormLegacy is the pre-engine per-neuron reference path (kept alive
	// the same way applyAdamFused backs the optimizer equivalence tests).
	FormLegacy
	// FormGather is the per-active-row fused dot form.
	FormGather
	// FormScatter is the input-major column-axpy form.
	FormScatter
	// NumForms bounds Form values, for counters indexed by form.
	NumForms
)

// String returns the reporting name of the form.
func (f Form) String() string {
	switch f {
	case FormAuto:
		return "auto"
	case FormLegacy:
		return "legacy"
	case FormGather:
		return "gather"
	case FormScatter:
		return "scatter"
	default:
		return fmt.Sprintf("Form(%d)", uint8(f))
	}
}

// DefaultScatterMaxDensity is the gather/scatter crossover: input
// densities at or above it run the gather form even when a mirror is
// available. At density 1 both forms stream the whole weight matrix, but
// the gather's row dots are pure reads while the scatter re-reads and
// re-writes the workspace once per input nonzero; the scatter's locality
// advantage has to be large enough to pay for that, which empirically
// holds only while most columns are skipped.
const DefaultScatterMaxDensity = 0.25

// Config fixes a network's kernel-planning policy. The zero value is the
// adaptive default.
type Config struct {
	// Force pins every pass to one form: FormLegacy for the reference
	// path, FormGather/FormScatter for equivalence tests and benchmarks
	// (a forced scatter still falls back to gather where no mirror
	// exists — the form would be incomputable). FormAuto adapts per pass.
	Force Form
	// ScatterMaxDensity overrides the gather/scatter density crossover;
	// 0 selects DefaultScatterMaxDensity.
	ScatterMaxDensity float64
}

// WithDefaults resolves zero fields.
func (c Config) WithDefaults() Config {
	if c.ScatterMaxDensity == 0 {
		c.ScatterMaxDensity = DefaultScatterMaxDensity
	}
	return c
}

// ForwardForm plans one forward pass over a layer: nnz input nonzeros of
// a fan-in of in (inFull marks a dense input, where nnz is ignored), with
// hasMirror reporting whether the layer maintains the column-major mirror
// the scatter form needs. The scatter form additionally requires the full
// output to be computed — callers only pass hasMirror=true for layers
// whose every neuron is active (dense layers).
func (c Config) ForwardForm(nnz, in int, inFull, hasMirror bool) Form {
	switch c.Force {
	case FormLegacy:
		return FormLegacy
	case FormGather:
		return FormGather
	case FormScatter:
		if hasMirror && !inFull {
			return FormScatter
		}
		return FormGather
	}
	if !hasMirror || inFull || in == 0 {
		return FormGather
	}
	maxD := c.ScatterMaxDensity
	if maxD == 0 {
		maxD = DefaultScatterMaxDensity
	}
	if float64(nnz) >= maxD*float64(in) {
		return FormGather
	}
	return FormScatter
}

// Fused reports whether the backward pass should use the fused
// outer-product kernels (every form except the legacy reference).
func (c Config) Fused() bool { return c.Force != FormLegacy }

// Mirror is a column-major copy of a layer's weight matrix: Col(i) is the
// contiguous slice of every neuron's weight for input i — the operand the
// scatter form Axpys per input nonzero. It is derived state: the layer
// rebuilds it after bulk weight restores and dual-writes it on every
// optimizer step (each Adam step touches exactly the delta's cells, so
// the mirror update costs one extra store per stepped cell). Concurrent
// readers during training inherit the row-major weights' HOGWILD
// weak-consistency argument unchanged.
type Mirror struct {
	in, out int
	t       []float32 // t[i*out+j] = w[j][i]
}

// NewMirror allocates an unfilled in×out mirror; call Rebuild to populate
// it.
func NewMirror(in, out int) *Mirror {
	return &Mirror{in: in, out: out, t: make([]float32, in*out)}
}

// Col returns input column i's contiguous weight slice (length out).
func (m *Mirror) Col(i int32) []float32 {
	off := int(i) * m.out
	return m.t[off : off+m.out : off+m.out]
}

// Set stores neuron j's weight for input i.
func (m *Mirror) Set(j, i int32, v float32) {
	m.t[int(i)*m.out+int(j)] = v
}

// Rebuild repopulates the mirror from neuron-major rows (len(rows) = out,
// each of length in). Used at initialization and after bulk weight
// restores (model loads).
func (m *Mirror) Rebuild(rows [][]float32) {
	if len(rows) != m.out {
		panic(fmt.Sprintf("kernels: Rebuild with %d rows, mirror has %d", len(rows), m.out))
	}
	for j, row := range rows {
		if len(row) < m.in {
			panic(fmt.Sprintf("kernels: Rebuild row %d has %d weights, mirror fan-in is %d", j, len(row), m.in))
		}
		for i := 0; i < m.in; i++ {
			m.t[i*m.out+j] = row[i]
		}
	}
}

// Workspace is one worker's reusable kernel scratch, embedded in the
// per-worker element state so steady-state passes allocate nothing.
type Workspace struct {
	// Acc is the backward activation-gradient accumulator, sized once to
	// the network's largest fan-in.
	Acc []float32
	// Forms counts forward kernel executions by chosen form — the
	// engine's decision record, aggregated into training results and the
	// kernels experiment.
	Forms [NumForms]int64
}

// EnsureAcc returns the accumulator resized to n, growing the backing
// array only when the recorded fan-in bound was too small.
func (w *Workspace) EnsureAcc(n int) []float32 {
	if cap(w.Acc) < n {
		w.Acc = make([]float32, n)
	}
	w.Acc = w.Acc[:n]
	return w.Acc
}

// GatherForward computes dst over the active rows in the gather form: one
// fused dot+bias(+ReLU) per row. ids lists the active neuron ids aligned
// with dst; a nil ids means every neuron 0..len(dst) is active. The input
// is (inIds, inVals) sparse pairs, or inVals dense when inFull. Callers
// wanting row locality sort ids first; per-row results are bitwise
// independent of row order.
func GatherForward(dst []float32, ids []int32, w [][]float32, b []float32, inIds []int32, inVals []float32, inFull, relu bool) {
	if ids == nil {
		if inFull {
			for j := range dst {
				dst[j] = rowDot(b[j], w[j], inIds, inVals, true, relu)
			}
			return
		}
		for j := range dst {
			dst[j] = rowDot(b[j], w[j], inIds, inVals, false, relu)
		}
		return
	}
	for a, j := range ids {
		dst[a] = rowDot(b[j], w[j], inIds, inVals, inFull, relu)
	}
}

func rowDot(b float32, w []float32, inIds []int32, inVals []float32, inFull, relu bool) float32 {
	if inFull {
		if relu {
			return vecmath.DotBiasReLU(b, w[:len(inVals)], inVals)
		}
		return b + vecmath.Dot(w[:len(inVals)], inVals)
	}
	if relu {
		return vecmath.SparseDotBiasReLU(b, inIds, inVals, w)
	}
	return b + vecmath.SparseDot(inIds, inVals, w)
}

// ScatterForward computes the full dense output in the input-major form:
// dst starts as the bias vector and accumulates one contiguous
// column-Axpy per input nonzero, then the ReLU clamp runs over the still
// cache-hot result. dst must have length m.out. Accumulation order is
// input-major, so results agree with the gather form only to float
// rounding (the equivalence tests bound the difference, not the bits).
func ScatterForward(dst []float32, m *Mirror, b []float32, inIds []int32, inVals []float32, relu bool) {
	copy(dst, b[:len(dst)])
	for t, i := range inIds {
		vecmath.Axpy(inVals[t], m.Col(i), dst)
	}
	if relu {
		vecmath.ReLU(dst)
	}
}
