package optim

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestAdamAlphaBiasCorrection(t *testing.T) {
	a := NewAdam(0.001)
	// At t=1: sqrt(1-beta2)/(1-beta1) = sqrt(0.001)/0.1.
	want := 0.001 * math.Sqrt(1-0.999) / (1 - 0.9)
	if got := float64(a.Alpha(1)); math.Abs(got-want) > 1e-7 {
		t.Fatalf("Alpha(1) = %v, want %v", got, want)
	}
	// As t → ∞ the correction vanishes: alpha → lr.
	if got := float64(a.Alpha(1_000_000)); math.Abs(got-0.001) > 1e-6 {
		t.Fatalf("Alpha(1e6) = %v, want ~0.001", got)
	}
	// Alpha is defined (and clamped) for t < 1.
	if a.Alpha(0) != a.Alpha(1) {
		t.Fatal("Alpha(0) should clamp to t=1")
	}
}

func TestStep1MatchesReferenceAdam(t *testing.T) {
	a := NewAdam(0.01)
	var w, m, v float32 = 1, 0, 0
	// Reference Adam in float64.
	var wr, mr, vr float64 = 1, 0, 0
	for step := int64(1); step <= 20; step++ {
		g := float32(0.5) * float32(step%3)
		alpha := a.Alpha(step)
		a.Step1(&w, &m, &v, g, alpha)

		g64 := float64(g)
		mr = 0.9*mr + 0.1*g64
		vr = 0.999*vr + 0.001*g64*g64
		mhat := mr / (1 - math.Pow(0.9, float64(step)))
		vhat := vr / (1 - math.Pow(0.999, float64(step)))
		wr -= 0.01 * mhat / (math.Sqrt(vhat) + eps64(a, step))
	}
	// The folded-alpha formulation differs from the textbook one only in
	// where eps enters; allow a small band.
	if math.Abs(float64(w)-wr) > 1e-3 {
		t.Fatalf("Step1 diverged from reference: %v vs %v", w, wr)
	}
}

// eps64 mirrors the folded epsilon: Step1 uses alpha*m/(sqrt(v)+eps),
// equivalent to eps' = eps*sqrt(1-beta2^t) in the textbook form.
func eps64(a Adam, t int64) float64 {
	return float64(a.Eps) / math.Sqrt(1-math.Pow(float64(a.Beta2), float64(t)))
}

func TestStepRowMatchesStep1(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		a := NewAdam(0.01)
		g := []float32{0.1, -0.2, 0.3, 0}
		w1 := []float32{1, 2, 3, 4}
		m1 := make([]float32, 4)
		v1 := make([]float32, 4)
		w2 := append([]float32(nil), w1...)
		m2 := make([]float32, 4)
		v2 := make([]float32, 4)
		alpha := a.Alpha(1)
		a.StepRow(w1, m1, v1, g, alpha)
		for i := range w2 {
			a.Step1(&w2[i], &m2[i], &v2[i], g[i], alpha)
		}
		for i := range w1 {
			if w1[i] != w2[i] || m1[i] != m2[i] || v1[i] != v2[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestStep1AtomicMatchesStep1Serial(t *testing.T) {
	a := NewAdam(0.01)
	var w1, m1, v1 float32 = 1, 0.5, 0.25
	w2, m2, v2 := w1, m1, v1
	alpha := a.Alpha(3)
	a.Step1(&w1, &m1, &v1, 0.7, alpha)
	a.Step1Atomic(&w2, &m2, &v2, 0.7, alpha)
	if w1 != w2 || m1 != m2 || v1 != v2 {
		t.Fatalf("atomic step diverged: (%v,%v,%v) vs (%v,%v,%v)", w1, m1, v1, w2, m2, v2)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)^2; gradient 2(w-3).
	a := NewAdam(0.05)
	var w, m, v float32 = -5, 0, 0
	for step := int64(1); step <= 2000; step++ {
		g := 2 * (w - 3)
		a.Step1(&w, &m, &v, g, a.Alpha(step))
	}
	if math.Abs(float64(w)-3) > 0.05 {
		t.Fatalf("Adam did not converge: w = %v, want 3", w)
	}
}

func TestAtomicAddConcurrentSum(t *testing.T) {
	var x float32
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				AtomicAdd(&x, 1)
			}
		}()
	}
	wg.Wait()
	if x != workers*perWorker {
		t.Fatalf("AtomicAdd lost updates: %v != %d", x, workers*perWorker)
	}
}

func TestSGDSteps(t *testing.T) {
	s := SGD{LR: 0.1}
	var w float32 = 1
	s.Step1(&w, 2)
	if math.Abs(float64(w)-0.8) > 1e-6 {
		t.Fatalf("SGD step: %v", w)
	}
	s.Step1Atomic(&w, 2)
	if math.Abs(float64(w)-0.6) > 1e-6 {
		t.Fatalf("SGD atomic step: %v", w)
	}
}

func TestParseUpdateModeRoundTrip(t *testing.T) {
	for _, m := range []UpdateMode{ModeHogwild, ModeAtomic, ModeBatchSync} {
		got, err := ParseUpdateMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseUpdateMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseUpdateMode("nope"); err == nil {
		t.Error("ParseUpdateMode accepted garbage")
	}
}
