// Package optim implements the optimizers used by SLIDE and its baselines.
//
// SLIDE trains with Adam (§5, "we also use the same optimizer, Adam")
// applied lazily: only the weights touched by an active neuron's sparse
// gradient receive a step, with first/second moments stored per weight.
// Three write disciplines support the paper's asynchronous design (§3.1)
// and its ablation:
//
//   - ModeHogwild: plain unsynchronized read-modify-write, the paper's
//     HOGWILD choice (Recht et al. 2011). Races are deliberate; sparse
//     updates rarely collide and the occasional lost update is tolerated.
//   - ModeAtomic: compare-and-swap loops per scalar. No lost updates, no
//     locks; slightly slower. Safe under the Go race detector.
//   - ModeBatchSync: gradients are accumulated per batch and applied by
//     non-overlapping shards, giving deterministic single-threaded-
//     equivalent results.
package optim

import (
	"fmt"
	"math"
	"sync/atomic"
	"unsafe"
)

// UpdateMode selects the gradient write discipline.
type UpdateMode int

const (
	// ModeHogwild pushes unsynchronized updates (the paper default).
	ModeHogwild UpdateMode = iota
	// ModeAtomic pushes CAS-based lock-free updates.
	ModeAtomic
	// ModeBatchSync accumulates per batch and applies synchronously.
	ModeBatchSync
)

// String returns the configuration name of the mode.
func (m UpdateMode) String() string {
	switch m {
	case ModeHogwild:
		return "hogwild"
	case ModeAtomic:
		return "atomic"
	case ModeBatchSync:
		return "batch-sync"
	default:
		return fmt.Sprintf("UpdateMode(%d)", int(m))
	}
}

// ParseUpdateMode converts a configuration name into an UpdateMode.
func ParseUpdateMode(s string) (UpdateMode, error) {
	switch s {
	case "hogwild":
		return ModeHogwild, nil
	case "atomic":
		return ModeAtomic, nil
	case "batch-sync":
		return ModeBatchSync, nil
	}
	return 0, fmt.Errorf("optim: unknown update mode %q", s)
}

// Adam holds the Adam hyperparameters (Kingma & Ba 2014). The zero value
// is not useful; construct with NewAdam.
type Adam struct {
	LR    float32
	Beta1 float32
	Beta2 float32
	Eps   float32
}

// NewAdam returns Adam with the standard defaults (beta1=0.9, beta2=0.999,
// eps=1e-8) at the given learning rate.
func NewAdam(lr float32) Adam {
	return Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Alpha returns the bias-corrected step size for global step t (1-based):
// lr * sqrt(1-beta2^t) / (1-beta1^t). Folding the corrections into the
// step size lets the per-weight update use raw moments.
func (a Adam) Alpha(t int64) float32 {
	if t < 1 {
		t = 1
	}
	b1t := math.Pow(float64(a.Beta1), float64(t))
	b2t := math.Pow(float64(a.Beta2), float64(t))
	return a.LR * float32(math.Sqrt(1-b2t)/(1-b1t))
}

// Step1 applies one Adam step to a single weight with gradient g using
// plain writes (ModeHogwild). alpha is Alpha(t).
func (a Adam) Step1(w, m, v *float32, g, alpha float32) {
	nm := a.Beta1**m + (1-a.Beta1)*g
	nv := a.Beta2**v + (1-a.Beta2)*g*g
	*m = nm
	*v = nv
	*w -= alpha * nm / (sqrt32(nv) + a.Eps)
}

// Step1Atomic applies one Adam step to a single weight using CAS loops
// (ModeAtomic). Each scalar is updated atomically; the triplet is not a
// transaction, matching lock-free sparse-Adam practice.
func (a Adam) Step1Atomic(w, m, v *float32, g, alpha float32) {
	nm := atomicRMW(m, func(old float32) float32 { return a.Beta1*old + (1-a.Beta1)*g })
	nv := atomicRMW(v, func(old float32) float32 { return a.Beta2*old + (1-a.Beta2)*g*g })
	atomicRMW(w, func(old float32) float32 { return old - alpha*nm/(sqrt32(nv)+a.Eps) })
}

// StepRow applies Adam to a full row with dense gradient g (the dense
// baseline's path). Plain writes; the caller guarantees exclusive access.
func (a Adam) StepRow(w, m, v, g []float32, alpha float32) {
	if len(w) != len(g) || len(m) != len(g) || len(v) != len(g) {
		panic("optim: StepRow length mismatch")
	}
	b1, b2, eps := a.Beta1, a.Beta2, a.Eps
	for i, gi := range g {
		nm := b1*m[i] + (1-b1)*gi
		nv := b2*v[i] + (1-b2)*gi*gi
		m[i] = nm
		v[i] = nv
		w[i] -= alpha * nm / (sqrt32(nv) + eps)
	}
}

// SGD is plain stochastic gradient descent, provided for ablations.
type SGD struct {
	LR float32
}

// Step1 applies w -= lr*g with plain writes.
func (s SGD) Step1(w *float32, g float32) { *w -= s.LR * g }

// Step1Atomic applies w -= lr*g with a CAS loop.
func (s SGD) Step1Atomic(w *float32, g float32) {
	atomicRMW(w, func(old float32) float32 { return old - s.LR*g })
}

// atomicRMW atomically applies f to *p and returns the new value.
func atomicRMW(p *float32, f func(float32) float32) float32 {
	addr := (*uint32)(unsafe.Pointer(p))
	for {
		oldBits := atomic.LoadUint32(addr)
		newVal := f(math.Float32frombits(oldBits))
		if atomic.CompareAndSwapUint32(addr, oldBits, math.Float32bits(newVal)) {
			return newVal
		}
	}
}

// AtomicAdd adds delta to *p with a CAS loop and returns the new value.
func AtomicAdd(p *float32, delta float32) float32 {
	return atomicRMW(p, func(old float32) float32 { return old + delta })
}

func sqrt32(x float32) float32 {
	return float32(math.Sqrt(float64(x)))
}
