// Package profiler supplies the hardware-independent stand-ins for the
// paper's Intel VTune pipeline analysis (§5, Table 2, Fig. 6).
//
// VTune attributes CPU pipeline slots to front-end / memory / retiring /
// core-bound stalls. Pure Go cannot read those counters, so this package
// exposes the two measurable quantities that carry the paper's claims:
//
//   - Core utilization (Table 2): worker busy time over wall time — SLIDE
//     stays ~80%+ across thread counts while the dense baseline degrades.
//   - Memory-boundedness proxy (Fig. 6): the achieved arithmetic rate of a
//     workload at a given thread count divided by the machine's measured
//     compute-bound peak at the same thread count. The shortfall
//     (1 - ratio) is the fraction of potential issue slots lost to memory
//     stalls and scheduling, the analog of VTune's memory-bound share.
//
// The compute peak comes from CalibratePeak: a register-resident FMA loop
// with no memory traffic beyond L1, replicated per worker.
package profiler

import (
	"runtime"
	"sync"
	"time"
)

// BusyMeter accumulates per-worker busy time for utilization accounting.
type BusyMeter struct {
	busy []int64
}

// NewBusyMeter returns a meter for the given worker count.
func NewBusyMeter(workers int) *BusyMeter {
	return &BusyMeter{busy: make([]int64, workers)}
}

// Add records ns of busy time for worker w.
func (m *BusyMeter) Add(w int, ns int64) { m.busy[w] += ns }

// Utilization returns total busy time over wall*workers, clamped to [0,1].
func (m *BusyMeter) Utilization(wall time.Duration) float64 {
	if wall <= 0 || len(m.busy) == 0 {
		return 0
	}
	var total int64
	for _, b := range m.busy {
		total += b
	}
	u := float64(total) / (float64(wall.Nanoseconds()) * float64(len(m.busy)))
	if u > 1 {
		u = 1
	}
	return u
}

// CalibratePeak measures the machine's compute-bound float32 FLOP/s at the
// given thread count: each worker runs an unrolled 8-accumulator
// multiply-add loop over a 4KB (L1-resident) buffer for roughly dur.
// The result is the denominator of the Fig. 6 memory-boundedness proxy.
func CalibratePeak(threads int, dur time.Duration) float64 {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	if dur <= 0 {
		dur = 50 * time.Millisecond
	}
	flops := make([]float64, threads)
	sums := make([]float32, threads)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			flops[w], sums[w] = fmaLoop(dur)
		}(w)
	}
	wg.Wait()
	var total float64
	for w, f := range flops {
		total += f
		sink += sums[w] // single writer after the join; keeps the loops live
	}
	return total
}

// fmaLoop runs multiply-adds over an L1-resident buffer and returns the
// achieved FLOP/s for this goroutine plus the accumulator checksum (the
// caller folds it into sink so the loop cannot be dead-code eliminated).
func fmaLoop(dur time.Duration) (float64, float32) {
	const n = 1024 // 4KB of float32: L1-resident
	buf := make([]float32, n)
	for i := range buf {
		buf[i] = 1 + float32(i)*1e-6
	}
	var s0, s1, s2, s3, s4, s5, s6, s7 float32 = 1, 1, 1, 1, 1, 1, 1, 1
	c := float32(1.0000001)
	start := time.Now()
	var ops float64
	for time.Since(start) < dur {
		for i := 0; i < n; i += 8 {
			s0 = s0*c + buf[i]
			s1 = s1*c + buf[i+1]
			s2 = s2*c + buf[i+2]
			s3 = s3*c + buf[i+3]
			s4 = s4*c + buf[i+4]
			s5 = s5*c + buf[i+5]
			s6 = s6*c + buf[i+6]
			s7 = s7*c + buf[i+7]
		}
		ops += 2 * n // one mul + one add per element
	}
	sum := s0 + s1 + s2 + s3 + s4 + s5 + s6 + s7
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0, sum
	}
	return ops / elapsed, sum
}

// sink defeats dead-code elimination of the calibration loop.
var sink float32

// Inefficiency is the Fig. 6 analog for one workload at one thread count.
type Inefficiency struct {
	Threads     int
	Utilization float64 // worker busy fraction (Table 2)
	AchievedGF  float64 // useful GFLOP/s achieved by the workload
	PeakGF      float64 // calibrated compute-bound GFLOP/s at this thread count
	// MemoryBound is the stall proxy: the busy-time fraction not
	// converted into arithmetic, 1 - achieved/peak (clamped to [0,1]).
	MemoryBound float64
	// IdleBound is the wall-time fraction workers spent not busy
	// (scheduling / synchronization), 1 - Utilization.
	IdleBound float64
}

// Analyze combines a workload measurement with a calibration run.
func Analyze(threads int, utilization, achievedFLOPS, peakFLOPS float64) Inefficiency {
	in := Inefficiency{
		Threads:     threads,
		Utilization: utilization,
		AchievedGF:  achievedFLOPS / 1e9,
		PeakGF:      peakFLOPS / 1e9,
		IdleBound:   clamp01(1 - utilization),
	}
	if peakFLOPS > 0 {
		in.MemoryBound = clamp01(1 - achievedFLOPS/peakFLOPS)
	}
	return in
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// MemStats snapshots the allocation counters the Table 4 experiment
// reports (the hugepage-analog metrics).
type MemStats struct {
	HeapObjects uint64
	HeapBytes   uint64
	TotalAllocs uint64
	GCCycles    uint32
}

// ReadMemStats captures current allocator state after forcing a GC so
// object counts reflect live data.
func ReadMemStats() MemStats {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return MemStats{
		HeapObjects: m.HeapObjects,
		HeapBytes:   m.HeapAlloc,
		TotalAllocs: m.Mallocs,
		GCCycles:    m.NumGC,
	}
}

// Delta returns counter differences (b - a) for before/after comparisons.
func (a MemStats) Delta(b MemStats) MemStats {
	return MemStats{
		HeapObjects: b.HeapObjects - a.HeapObjects,
		HeapBytes:   b.HeapBytes - a.HeapBytes,
		TotalAllocs: b.TotalAllocs - a.TotalAllocs,
		GCCycles:    b.GCCycles - a.GCCycles,
	}
}
