package profiler

import (
	"testing"
	"time"
)

func TestBusyMeterUtilization(t *testing.T) {
	m := NewBusyMeter(4)
	m.Add(0, int64(time.Second))
	m.Add(1, int64(time.Second))
	// 2 of 4 workers busy for the full second.
	if u := m.Utilization(time.Second); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	// Clamped to 1 even if busy exceeds wall (timer skew).
	m.Add(2, int64(10*time.Second))
	if u := m.Utilization(time.Second); u != 1 {
		t.Fatalf("utilization = %v, want clamp to 1", u)
	}
	if u := m.Utilization(0); u != 0 {
		t.Fatalf("zero wall = %v", u)
	}
}

func TestCalibratePeakPositiveAndScales(t *testing.T) {
	p1 := CalibratePeak(1, 30*time.Millisecond)
	if p1 <= 0 {
		t.Fatalf("peak = %v", p1)
	}
	p2 := CalibratePeak(2, 30*time.Millisecond)
	// Two threads should achieve clearly more than one (compute-bound
	// loop, no shared data).
	if p2 < 1.3*p1 {
		t.Fatalf("peak did not scale: 1 thread %v, 2 threads %v", p1, p2)
	}
}

func TestAnalyze(t *testing.T) {
	in := Analyze(8, 0.8, 2e9, 8e9)
	if in.MemoryBound != 0.75 {
		t.Fatalf("memory bound = %v, want 0.75", in.MemoryBound)
	}
	if diff := in.IdleBound - 0.2; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("idle bound = %v", in.IdleBound)
	}
	// Clamped to [0, 1].
	in = Analyze(8, 1.5, 2e9, 1e9)
	if in.MemoryBound != 0 || in.IdleBound != 0 {
		t.Fatalf("clamping failed: %+v", in)
	}
	in = Analyze(8, 0.5, 1e9, 0)
	if in.MemoryBound != 0 {
		t.Fatalf("zero peak should give 0 proxy: %+v", in)
	}
}

func TestMemStatsDelta(t *testing.T) {
	before := ReadMemStats()
	sink := make([][]byte, 1000)
	for i := range sink {
		sink[i] = make([]byte, 1024)
	}
	after := ReadMemStats()
	d := before.Delta(after)
	if d.TotalAllocs == 0 {
		t.Fatal("allocations not observed")
	}
	_ = sink[999][0]
}
