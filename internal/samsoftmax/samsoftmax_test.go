package samsoftmax

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

func tinyDS(t testing.TB) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Profile{
		Name: "t", FeatureDim: 256, NumClasses: 128,
		TrainSize: 1500, TestSize: 300,
		AvgFeatures: 15, AvgLabels: 2, ProtoNNZ: 10,
		NoiseFrac: 0.1, LabelSkew: 1.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{InputDim: 10, Classes: 10, Samples: 0}); err == nil {
		t.Error("zero Samples accepted")
	}
	if _, err := New(Config{InputDim: 10, Classes: 10, Samples: 20}); err == nil {
		t.Error("Samples > Classes accepted")
	}
}

func TestSampledSoftmaxLearnsButBelowFullBudget(t *testing.T) {
	ds := tinyDS(t)
	res, err := Train(Config{
		InputDim: 256, Hidden: []int{32}, Classes: 128, Samples: 12, Seed: 3,
	}, ds.Train, ds.Test, core.TrainConfig{Epochs: 5, EvalEvery: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc <= 2.0/128 {
		t.Fatalf("sampled softmax did not learn: P@1 = %.3f", res.FinalAcc)
	}
	// The candidate count per example must hover near Samples+labels:
	// static sampling ignores the input entirely.
	if res.MeanActive[1] < 10 || res.MeanActive[1] > 20 {
		t.Fatalf("mean active %v, want ≈ Samples(12)+labels(2)", res.MeanActive[1])
	}
}

// TestStaticBudgetTradeoff reproduces the paper's §5.1 observation in
// miniature: at a matched small candidate budget, adaptive LSH sampling
// reaches higher accuracy than static uniform sampling.
func TestStaticBudgetTradeoff(t *testing.T) {
	ds := tinyDS(t)
	const budget = 12

	ssm, err := Train(Config{
		InputDim: 256, Hidden: []int{32}, Classes: 128, Samples: budget, Seed: 3,
	}, ds.Train, ds.Test, core.TrainConfig{Epochs: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	adaptive, err := core.NewNetwork(core.Config{
		InputDim: 256,
		Seed:     3,
		Layers: []core.LayerConfig{
			{Size: 32, Activation: core.ActReLU},
			{
				Size: 128, Activation: core.ActSoftmax,
				Sampled: true, K: 5, L: 16, Beta: budget,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ares, err := adaptive.Train(ds.Train, ds.Test, core.TrainConfig{Epochs: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("adaptive P@1=%.3f vs static P@1=%.3f at budget %d", ares.Curve.Best(), ssm.Curve.Best(), budget)
	if ares.Curve.Best() <= ssm.Curve.Best() {
		t.Fatalf("adaptive sampling (%.3f) did not beat static sampling (%.3f) at matched budget",
			ares.Curve.Best(), ssm.Curve.Best())
	}
}
