// Package samsoftmax implements the sampled softmax baseline (§5.1): the
// static, input-independent candidate sampling that TensorFlow ships
// (Jean et al. 2015), which the paper contrasts with SLIDE's adaptive
// LSH sampling in Fig. 7 and Fig. 8.
//
// The trainer reuses the SLIDE engine with the output layer's retrieval
// strategy replaced by uniform random candidate sampling: per element, the
// candidate set is the true labels plus Beta uniform negatives, and the
// softmax normalizes over that set. This makes the comparison exactly the
// paper's: the only difference between the red and green curves is
// whether the sampling distribution adapts to the input. With uniform
// sampling every candidate shares the same expected count, so the
// sampled-softmax logit correction (-log q) shifts all logits equally and
// cancels in the softmax; it is therefore omitted.
package samsoftmax

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/optim"
	"repro/internal/sampling"
)

// Config parameterizes the sampled softmax baseline.
type Config struct {
	// InputDim, Hidden and Classes define the architecture (one hidden
	// ReLU layer in the paper's tasks).
	InputDim int
	Hidden   []int
	Classes  int
	// Samples is the number of sampled candidate classes per example.
	// The paper finds ~20% of classes are needed for decent accuracy
	// (§5.1) while SLIDE needs ~0.5%.
	Samples int
	// Seed drives initialization and sampling.
	Seed uint64
	// Adam holds optimizer hyperparameters; zero LR selects 0.001.
	Adam optim.Adam
	// UpdateMode defaults to batch-style HOGWILD like SLIDE so timing
	// differences come from sampling cost alone.
	UpdateMode optim.UpdateMode
}

// New builds the baseline as a core network whose output layer uses the
// static random strategy.
func New(cfg Config) (*core.Network, error) {
	if cfg.Samples <= 0 {
		return nil, fmt.Errorf("samsoftmax: Samples must be positive, got %d", cfg.Samples)
	}
	if cfg.Samples > cfg.Classes {
		return nil, fmt.Errorf("samsoftmax: Samples %d exceeds Classes %d", cfg.Samples, cfg.Classes)
	}
	layers := make([]core.LayerConfig, 0, len(cfg.Hidden)+1)
	for _, h := range cfg.Hidden {
		layers = append(layers, core.LayerConfig{Size: h, Activation: core.ActReLU})
	}
	layers = append(layers, core.LayerConfig{
		Size:       cfg.Classes,
		Activation: core.ActSoftmax,
		Sampled:    true,
		// KindRandom ignores the hash tables; K/L are the minimal legal
		// values so table construction stays negligible.
		K: 1, L: 1,
		Strategy: sampling.KindRandom,
		Beta:     cfg.Samples,
	})
	return core.NewNetwork(core.Config{
		InputDim:   cfg.InputDim,
		Layers:     layers,
		Seed:       cfg.Seed,
		Adam:       cfg.Adam,
		UpdateMode: cfg.UpdateMode,
		// The tables are never consulted; disable rebuild churn.
		RebuildN0:     1 << 30,
		RebuildLambda: 1,
	})
}

// Train is a convenience wrapper mirroring core.Network.Train.
func Train(cfg Config, train, test []dataset.Example, tc core.TrainConfig) (*core.TrainResult, error) {
	n, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return n.Train(train, test, tc)
}
