package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/lsh"
	"repro/internal/sampling"
	"repro/internal/sparse"
)

// Hot-path benchmarks for the kernel engine: one element's forward and
// backward pass at a serving-shaped operating point (sparse features into
// a mirrored 128-wide hidden layer, ~2% active output layer), per kernel
// mode. CI runs these at -benchtime=1x as a smoke check; the kernels
// harness experiment measures the same comparison end to end.

// benchKernelNet builds the paper-shaped network at a benchable scale.
func benchKernelNet(b *testing.B, km KernelMode) (*Network, *elemState, []dataset.Example) {
	b.Helper()
	ds, err := dataset.Generate(dataset.Profile{
		Name:        "kernel-bench",
		FeatureDim:  16384,
		NumClasses:  8192,
		TrainSize:   256,
		TestSize:    16,
		AvgFeatures: 64,
		AvgLabels:   2,
		ProtoNNZ:    24,
		NoiseFrac:   0.1,
		LabelSkew:   1.3,
		Seed:        17,
	})
	if err != nil {
		b.Fatal(err)
	}
	n, err := NewNetwork(Config{
		InputDim: ds.InputDim,
		Seed:     23,
		Kernels:  km,
		Layers: []LayerConfig{
			{Size: 128, Activation: ActReLU},
			{
				Size: ds.NumClasses, Activation: ActSoftmax,
				Sampled: true, Hash: lsh.KindSimhash, K: 6, L: 20, RangePow: 8,
				Strategy: sampling.KindVanilla, Beta: 164,
			},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	st, err := newElemState(n, 51, 0)
	if err != nil {
		b.Fatal(err)
	}
	return n, st, ds.Train
}

func benchForwardElem(b *testing.B, km KernelMode, mode forwardMode) {
	n, st, train := benchKernelNet(b, km)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := &train[i%len(train)]
		n.forwardElem(st, ex.Features, ex.Labels, mode)
	}
}

// Training-shaped forward (sampled output active set).
func BenchmarkForwardTrainKernel(b *testing.B) { benchForwardElem(b, KernelAuto, modeTrain) }
func BenchmarkForwardTrainLegacy(b *testing.B) { benchForwardElem(b, KernelLegacy, modeTrain) }

// Exact-inference forward (full output layer).
func BenchmarkForwardFullKernel(b *testing.B) { benchForwardElem(b, KernelAuto, modeEvalFull) }
func BenchmarkForwardFullLegacy(b *testing.B) { benchForwardElem(b, KernelLegacy, modeEvalFull) }

// BenchmarkForwardLayer0* isolate the mirrored input layer — the kernel
// the gather→scatter rewrite targets: 64 sparse features into 128 dense
// neurons, gather issuing 128 scattered sparse dots vs scatter streaming
// 64 contiguous column slices.
func benchForwardLayer0(b *testing.B, km KernelMode) {
	n, st, train := benchKernelNet(b, km)
	l := n.layers[0]
	ls := &st.layers[0]
	ls.reset(true, l.out)
	ls.sizeVals(l.out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := train[i%len(train)].Features
		n.computeActivations(st, l, ls, x.Idx, x.Val, false)
	}
}

func BenchmarkForwardLayer0Scatter(b *testing.B) { benchForwardLayer0(b, KernelScatter) }
func BenchmarkForwardLayer0Gather(b *testing.B)  { benchForwardLayer0(b, KernelGather) }
func BenchmarkForwardLayer0Legacy(b *testing.B)  { benchForwardLayer0(b, KernelLegacy) }

func benchBackwardElem(b *testing.B, km KernelMode) {
	n, st, train := benchKernelNet(b, km)
	n.beginBatch()
	ex := &train[0]
	n.forwardElem(st, ex.Features, ex.Labels, modeTrain)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.backwardElem(st, ex.Features, ex.Labels, nil)
	}
}

func BenchmarkBackwardElemKernel(b *testing.B) { benchBackwardElem(b, KernelAuto) }
func BenchmarkBackwardElemLegacy(b *testing.B) { benchBackwardElem(b, KernelLegacy) }

// BenchmarkPredictKernelVsLegacy measures the end-to-end serving path
// (pooled Predictor, exact top-k) under both engines at the bench shape.
func benchPredictEngine(b *testing.B, km KernelMode) {
	n, _, train := benchKernelNet(b, km)
	pred, err := n.NewPredictor()
	if err != nil {
		b.Fatal(err)
	}
	xs := make([]sparse.Vector, len(train))
	for i := range train {
		xs[i] = train[i].Features
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pred.Predict(xs[i%len(xs)], 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictEngineKernel(b *testing.B) { benchPredictEngine(b, KernelAuto) }
func BenchmarkPredictEngineLegacy(b *testing.B) { benchPredictEngine(b, KernelLegacy) }
