package core

import (
	"fmt"
	"testing"

	"repro/internal/lsh"
	"repro/internal/sampling"
)

// benchRebuildNet builds a network with one wide sampled output layer —
// the shape whose rebuild cost the §4.2 schedule exists to amortize.
func benchRebuildNet(b *testing.B, classes int, full bool) *Network {
	b.Helper()
	cfg := Config{
		InputDim: 128,
		Seed:     17,
		Layers: []LayerConfig{
			{Size: 128, Activation: ActReLU},
			{
				Size: classes, Activation: ActSoftmax,
				Sampled: true, Hash: lsh.KindSimhash, K: 6, L: 16,
				Strategy: sampling.KindVanilla, Beta: 128,
			},
		},
		FullRebuild: full,
	}
	n, err := NewNetwork(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return n
}

// BenchmarkRebuildFull measures a from-scratch rebuild of the wide
// sampled layer: every row hashed every generation.
func BenchmarkRebuildFull(b *testing.B) {
	n := benchRebuildNet(b, 16384, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.RebuildTables(0)
	}
}

// BenchmarkRebuildIncremental measures the dirty-row rebuild at fixed
// drift fractions: before each rebuild the stated fraction of rows is
// stamped dirty (what a training segment would have done), so only those
// are re-hashed while the rest re-insert from the code memo. The
// drift=1.0 case bounds the path's overhead vs BenchmarkRebuildFull.
func BenchmarkRebuildIncremental(b *testing.B) {
	for _, drift := range []float64{0.05, 0.2, 1.0} {
		b.Run(fmt.Sprintf("drift=%g", drift), func(b *testing.B) {
			n := benchRebuildNet(b, 16384, false)
			l := n.layers[1]
			nd := int(drift * float64(l.out))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for j := 0; j < nd; j++ {
					l.dirty[j] = l.hashEpoch
				}
				b.StartTimer()
				n.RebuildTables(0)
			}
		})
	}
}
