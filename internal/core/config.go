// Package core implements the SLIDE network (§3 of the paper): layers of
// neurons with per-layer LSH hash tables, adaptive active-neuron sampling
// in the forward pass, sparse message-passing backpropagation touching
// only active neurons and weights, HOGWILD-style asynchronous gradient
// updates across a batch, and exponential-decay hash-table rebuilds.
//
// The reference system is neuron-object-centric (Fig. 2): every neuron
// owns batch-length activation/gradient/active arrays. This implementation
// keeps the identical information keyed the other way — each batch element
// (one goroutine's work item) owns its active-id list, activations and
// gradients — which preserves the paper's thread independence argument
// (state is private per element, weight updates are the only shared
// writes) while being the cache-friendly layout in Go.
package core

import (
	"fmt"
	"runtime"

	"repro/internal/hashtable"
	"repro/internal/kernels"
	"repro/internal/lsh"
	"repro/internal/optim"
	"repro/internal/sampling"
)

// KernelMode selects the forward/backward kernel engine
// (internal/kernels). The zero value is the density-adaptive engine; the
// other modes pin one form, for equivalence tests, benchmarks and the
// kernels experiment's ablation.
type KernelMode int

const (
	// KernelAuto plans each pass from the measured input density:
	// gather for sampled/dense-input layers, scatter for mirrored dense
	// layers on sparse inputs below the density crossover.
	KernelAuto KernelMode = iota
	// KernelLegacy runs the pre-engine per-neuron reference path —
	// unsorted active ids, unfused scalar row loops. Kept alive as the
	// equivalence-test baseline, the same role applyAdamFused plays for
	// the optimizer.
	KernelLegacy
	// KernelGather forces the gather form everywhere.
	KernelGather
	// KernelScatter forces the scatter form wherever a mirror exists
	// (elsewhere it degrades to gather — the form is incomputable).
	KernelScatter
)

// String returns the configuration name of the kernel mode.
func (k KernelMode) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelLegacy:
		return "legacy"
	case KernelGather:
		return "gather"
	case KernelScatter:
		return "scatter"
	default:
		return fmt.Sprintf("KernelMode(%d)", int(k))
	}
}

// kernelConfig maps the mode to the engine's planning policy.
func (k KernelMode) kernelConfig() kernels.Config {
	var c kernels.Config
	switch k {
	case KernelLegacy:
		c.Force = kernels.FormLegacy
	case KernelGather:
		c.Force = kernels.FormGather
	case KernelScatter:
		c.Force = kernels.FormScatter
	}
	return c.WithDefaults()
}

// MirrorFormat selects the numeric storage of the scatter-form weight
// mirrors (internal/kernels). The zero value is exact fp32.
type MirrorFormat int

const (
	// MirrorFP32 keeps mirrors in exact float32 — bit-identical to the
	// row-major weights, the default.
	MirrorFP32 MirrorFormat = iota
	// MirrorBF16 stores mirrors in bfloat16, halving the bytes the
	// scatter forward streams; forward results drift by at most the bf16
	// rounding of each weight (relative ≤ 2⁻⁸ per cell).
	MirrorBF16
)

// String returns the configuration name of the mirror format.
func (m MirrorFormat) String() string {
	switch m {
	case MirrorFP32:
		return "fp32"
	case MirrorBF16:
		return "bf16"
	default:
		return fmt.Sprintf("MirrorFormat(%d)", int(m))
	}
}

// kernelFormat maps the core enum to the kernels-layer format. The int8
// stretch format exists only at the kernels layer (per-column scales need
// a rebuild policy training doesn't provide yet) and is deliberately not
// exposed here.
func (m MirrorFormat) kernelFormat() kernels.MirrorFormat {
	if m == MirrorBF16 {
		return kernels.MirrorBF16
	}
	return kernels.MirrorFP32
}

// Activation selects a layer non-linearity.
type Activation int

const (
	// ActReLU is max(0, x), the paper's hidden-layer activation.
	ActReLU Activation = iota
	// ActSoftmax normalizes over the active set only (§3.1): the softmax
	// denominator sums active neurons, not the full layer.
	ActSoftmax
	// ActLinear is the identity.
	ActLinear
)

// String returns the configuration name of the activation.
func (a Activation) String() string {
	switch a {
	case ActReLU:
		return "relu"
	case ActSoftmax:
		return "softmax"
	case ActLinear:
		return "linear"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// Layout selects parameter memory placement (the Fig. 10 / Table 4
// optimization ablation).
type Layout int

const (
	// LayoutContiguous packs each layer's weights and Adam moments into
	// few large arena slabs (the hugepage-analog optimized layout).
	LayoutContiguous Layout = iota
	// LayoutPerNeuron allocates every neuron's rows separately (the
	// plain, unoptimized layout).
	LayoutPerNeuron
)

// String returns the configuration name of the layout.
func (l Layout) String() string {
	switch l {
	case LayoutContiguous:
		return "contiguous"
	case LayoutPerNeuron:
		return "per-neuron"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// LayerConfig describes one fully connected layer.
type LayerConfig struct {
	// Size is the number of neurons.
	Size int
	// Activation is the non-linearity (§3.1).
	Activation Activation

	// Sampled enables LSH active-neuron sampling for this layer. When
	// false the layer computes all neurons (hidden layers in the paper's
	// architecture are dense; the wide softmax layer is sampled).
	Sampled bool
	// Hash selects the LSH family (§3.2). Used only when Sampled.
	Hash lsh.Kind
	// K and L are the meta-hash length and table count (§2).
	K, L int
	// RangePow, BucketSize and Policy configure the tables (§3.2, §4.2);
	// zero values select hashtable defaults.
	RangePow   int
	BucketSize int
	Policy     hashtable.Policy
	// Strategy selects the retrieval strategy (§4.1) and Beta the target
	// active count β_l; MinCount is hard thresholding's m.
	Strategy sampling.Kind
	Beta     int
	MinCount int
	// SimhashDensity, BinSize and TopK forward to lsh.Params; zero
	// selects that package's defaults.
	SimhashDensity float64
	BinSize        int
	TopK           int
}

// Config describes a SLIDE network.
type Config struct {
	// InputDim is the feature dimensionality.
	InputDim int
	// Layers lists the layers, input to output. The final layer of a
	// classifier should use ActSoftmax.
	Layers []LayerConfig
	// Seed drives weight initialization, hash functions and sampling.
	Seed uint64

	// Adam holds optimizer hyperparameters; a zero LR selects
	// optim.NewAdam(0.001).
	Adam optim.Adam
	// UpdateMode selects the gradient write discipline (§3.1); the
	// default is the paper's HOGWILD asynchronous updates.
	UpdateMode optim.UpdateMode

	// FullRebuild forces every scheduled table rebuild to re-hash all
	// neuron rows from scratch, disabling the dirty-row incremental path
	// (§4.2 "Updating Overhead"). The default — incremental — re-hashes
	// only rows whose weights changed since their codes were last
	// memoized and re-inserts the rest from the per-row code memo; the
	// resulting tables are bit-identical to a full rebuild at every
	// generation, so this switch only trades rebuild time (kept for A/B
	// measurement and as the equivalence reference). Serialized with the
	// model config; files written before the field existed load as
	// incremental.
	FullRebuild bool

	// RebuildN0 is the initial hash-table rebuild period in iterations
	// and RebuildLambda the exponential decay constant (§4.2): the t-th
	// rebuild happens after a gap of N0*exp(Lambda*(t-1)) iterations.
	// Zero values select N0=50 (the paper's setting) and Lambda=0.1.
	RebuildN0     int
	RebuildLambda float64

	// Layout and PadRows select the memory optimizations (Fig. 10):
	// contiguous arena slabs and cache-line row padding.
	Layout  Layout
	PadRows bool

	// Kernels selects the forward/backward kernel engine form. The
	// default (KernelAuto) picks gather or scatter per pass from the
	// measured input density; KernelLegacy restores the per-neuron
	// reference path. Serialized with the model config; files written
	// before the field existed load as KernelAuto.
	Kernels KernelMode

	// ScatterCrossover pins the gather/scatter density crossover the
	// KernelAuto planner uses, in (0, 1). Zero — the default — measures
	// it once per process at startup (kernels.CalibratedCrossover), so
	// the plan adapts to the machine; pin it for runs whose kernel-form
	// decisions must be reproducible across machines.
	ScatterCrossover float64

	// MirrorFormat selects the numeric storage of the scatter-form
	// weight mirrors: exact fp32 (default) or bf16, which halves the
	// mirror bytes the forward streams at a bounded accuracy cost (the
	// row-major weights, gradients and optimizer state stay fp32).
	MirrorFormat MirrorFormat
}

// kernelsConfig resolves the network's kernel-planning policy: the mode's
// base config, with the gather/scatter crossover pinned by
// ScatterCrossover or — for the adaptive planner — measured once per
// process on this machine.
func (c Config) kernelsConfig() kernels.Config {
	kc := c.Kernels.kernelConfig()
	if c.ScatterCrossover > 0 {
		kc.ScatterMaxDensity = c.ScatterCrossover
	} else if c.Kernels == KernelAuto {
		kc.ScatterMaxDensity = kernels.CalibratedCrossover()
	}
	return kc
}

func (c Config) withDefaults() Config {
	if c.Adam.LR == 0 {
		c.Adam = optim.NewAdam(0.001)
	}
	if c.RebuildN0 == 0 {
		c.RebuildN0 = 50
	}
	if c.RebuildLambda == 0 {
		c.RebuildLambda = 0.1
	}
	return c
}

func (c Config) validate() error {
	if c.InputDim <= 0 {
		return fmt.Errorf("core: InputDim must be positive, got %d", c.InputDim)
	}
	if len(c.Layers) == 0 {
		return fmt.Errorf("core: at least one layer required")
	}
	if c.Kernels < KernelAuto || c.Kernels > KernelScatter {
		return fmt.Errorf("core: unknown kernel mode %d", int(c.Kernels))
	}
	if c.ScatterCrossover < 0 || c.ScatterCrossover >= 1 {
		return fmt.Errorf("core: ScatterCrossover must be in [0, 1), got %g", c.ScatterCrossover)
	}
	if c.MirrorFormat < MirrorFP32 || c.MirrorFormat > MirrorBF16 {
		return fmt.Errorf("core: unknown mirror format %d", int(c.MirrorFormat))
	}
	for i, lc := range c.Layers {
		if lc.Size <= 0 {
			return fmt.Errorf("core: layer %d size must be positive, got %d", i, lc.Size)
		}
		if lc.Sampled {
			if lc.K <= 0 || lc.L <= 0 {
				return fmt.Errorf("core: sampled layer %d needs positive K and L, got K=%d L=%d", i, lc.K, lc.L)
			}
			if lc.Beta <= 0 && lc.Strategy != sampling.KindHardThreshold {
				return fmt.Errorf("core: sampled layer %d needs positive Beta for strategy %v", i, lc.Strategy)
			}
		}
	}
	return nil
}

// TrainConfig controls a training run.
type TrainConfig struct {
	// BatchSize is the minibatch size (each element runs on its own
	// goroutine slot, §3.1). Zero selects 128.
	BatchSize int
	// Iterations is the number of batches to run. Zero derives it from
	// Epochs (full passes over the training split).
	Iterations int64
	// Epochs is used when Iterations is zero; zero selects 1.
	Epochs int
	// Threads is the worker count; zero selects GOMAXPROCS.
	Threads int

	// EvalEvery evaluates P@1 on a held-out subset every this many
	// iterations (0 disables periodic evaluation; a final evaluation
	// always runs). Evaluation time is excluded from the recorded
	// training clock.
	EvalEvery int64
	// EvalSamples bounds the evaluation subset size; zero selects
	// min(1024, len(test)).
	EvalSamples int
	// TargetAcc stops training early once eval P@1 reaches it (0 =
	// never).
	TargetAcc float64
	// MaxSeconds bounds training wall-clock time (0 = unbounded).
	MaxSeconds float64
	// Seed shuffles the training order.
	Seed uint64
	// OnEval, when set, observes each evaluation point as it is
	// recorded.
	OnEval func(Point)

	// Shards is the total number of data-parallel replicas participating
	// in this training run, including this one (§6 distributed SLIDE).
	// With an Exchanger set, each batch's Adam step averages the merged
	// gradient over BatchSize*Shards examples; without one, Shards is
	// ignored. Zero selects 1.
	Shards int
	// Exchanger, when set, turns the run into one shard of a
	// data-parallel group: after every batch the locally extracted
	// SparseDelta is exchanged and the merged delta — the cell-wise sum
	// over all shards, identical on every replica — is applied instead.
	// All shards must run the same BatchSize and Iterations; early stops
	// (TargetAcc, MaxSeconds, context cancellation) are coordinated
	// through the exchange so every replica halts at the same step. See
	// internal/dist for the in-process and TCP implementations.
	Exchanger DeltaExchanger

	// Compress selects the wire representation of the exchanged delta
	// (ignored without an Exchanger): exact fp32 (the default), bf16
	// values, or top-k selection with error feedback. All shards must
	// agree — the TCP handshake digest covers it, and the in-process
	// Mesh applies the same rounding — because a merged delta computed
	// from mixed representations would diverge the replicas' weights.
	Compress DeltaCompression
	// TopKFrac is the fraction of each layer's fresh batch gradient
	// cells CompressTopK ships, in (0, 1]; the rest feed the
	// per-replica error-feedback residual, which re-competes whenever
	// its cells are next touched. Ignored for other compression modes.
	TopKFrac float64

	// OverlapExchange hides the delta exchange behind the next batch's
	// forward pass (the §6 communication made invisible): each batch
	// extracts its delta and launches the exchange on a background
	// goroutine, the next batch's forward runs concurrently — it reads
	// weights and tables but never gW, and no weights step mid-flight —
	// and the merged delta is applied at a barrier before that batch's
	// backward pass. Forward passes therefore see weights one merged
	// step stale (the classic one-batch pipeline delay); the exchange
	// step sequence is unchanged, so overlapped and synchronous replicas
	// may share a group and stay in lockstep. TrainResult.ExchangeNS
	// then counts only the barrier time the forward failed to hide, with
	// the overlapped remainder in ExchangeHiddenNS. Ignored without an
	// Exchanger.
	OverlapExchange bool

	// SkipFinalEval suppresses the evaluation Train normally runs at
	// loop exit. Data-parallel replicas other than rank 0 set it: their
	// weights are bit-identical to rank 0's, so N final evaluations of
	// the same model would be pure redundant work.
	SkipFinalEval bool

	// SyncRebuild forces scheduled hash-table rebuilds to run inline,
	// stopping the training loop for the whole reconstruction (the
	// pre-async behavior, kept for comparison runs — see
	// TrainResult.RebuildStallNS). The default is the non-blocking
	// lifecycle: rebuilds prepare a weight snapshot at a batch boundary,
	// build a shadow table set on a background goroutine while batches
	// keep running, and publish it atomically at a later boundary.
	SyncRebuild bool
}

func (tc TrainConfig) withDefaults(trainSize int) TrainConfig {
	if tc.BatchSize == 0 {
		tc.BatchSize = 128
	}
	if tc.Threads == 0 {
		tc.Threads = runtime.GOMAXPROCS(0)
	}
	if tc.Iterations == 0 {
		epochs := tc.Epochs
		if epochs == 0 {
			epochs = 1
		}
		perEpoch := (trainSize + tc.BatchSize - 1) / tc.BatchSize
		tc.Iterations = int64(epochs) * int64(perEpoch)
	}
	if tc.Shards < 1 {
		tc.Shards = 1
	}
	return tc
}
