package core

import (
	"fmt"

	"repro/internal/hashtable"
	"repro/internal/lsh"
)

// Incremental Simhash re-hashing (§4.2, design trick 3): hsign(w) =
// sign(proj·w), and backpropagation only changes the weights connecting
// active neurons, so the projection values can be maintained with O(d')
// additions per rebuild instead of a full O(d) re-projection per
// function.
//
// The memo stores NumFuncs float32 projections per neuron plus a snapshot
// of each neuron's weight row at the last re-hash; on rebuild, only rows
// whose weights changed are diffed sparsely and their projections
// updated. This trades memory (one extra weight copy plus K*L floats per
// neuron) for hashing time — exactly the trade the paper describes — so
// it is opt-in via EnableIncrementalRehash.

// rehashMemo holds the incremental state for one layer.
type rehashMemo struct {
	sh *lsh.IncrementalSimhash
	// proj[j*nf : (j+1)*nf] are neuron j's memoized projections.
	proj []float32
	// snapshot[j] is neuron j's weight row at the last re-hash.
	snapshot [][]float32
	// deltaIdx/deltaVal are reusable sparse-diff scratch.
	deltaIdx []int32
	deltaVal []float32
}

// EnableIncrementalRehash switches layer li to incremental Simhash
// re-hashing. The layer must be sampled with lsh.KindSimhash. Subsequent
// rebuilds compute codes from memoized projections updated by sparse
// weight diffs.
func (n *Network) EnableIncrementalRehash(li int) error {
	l := n.layers[li]
	if !l.Sampled() {
		return errNotSampled(li)
	}
	sh, ok := l.fam.(*lsh.IncrementalSimhash)
	if !ok {
		return errNotSimhash(li)
	}
	nf := l.fam.NumFuncs()
	memo := &rehashMemo{
		sh:       sh,
		proj:     make([]float32, l.out*nf),
		snapshot: make([][]float32, l.out),
	}
	for j := 0; j < l.out; j++ {
		memo.snapshot[j] = append([]float32(nil), l.w[j]...)
		sh.ProjectAll(l.w[j], memo.proj[j*nf:(j+1)*nf])
	}
	l.memo = memo
	return nil
}

// diffIncremental is the memo layer's synchronous rebuild phase: it
// sparse-diffs each drifted weight row against its snapshot and folds
// the deltas into the memoized projections, parallel over neurons
// (private rows). When the layer tracks dirty rows the scan covers only
// those — safe because dirty is a superset of changed (every weight
// write stamps its row) — and falls back to all rows otherwise
// (Config.FullRebuild networks). It must run at a batch boundary
// (weights quiesced); afterwards the projections are read-only until the
// rebuild publishes, so the insert phase may run on a background
// goroutine.
func (l *Layer) diffIncremental(workers int) {
	memo := l.memo
	nf := l.fam.NumFuncs()
	var dirty []int32
	n := l.out
	if l.dirty != nil {
		dirty = l.collectDirtyRows(workers)
		n = len(dirty)
	}
	parallelIndexed(workers, n, func(w, lo, hi int) {
		var dIdx []int32
		var dVal []float32
		for k := lo; k < hi; k++ {
			j := k
			if dirty != nil {
				j = int(dirty[k])
			}
			row, snap := l.w[j], memo.snapshot[j]
			dIdx = dIdx[:0]
			dVal = dVal[:0]
			for i := range row {
				if row[i] != snap[i] {
					dIdx = append(dIdx, int32(i))
					dVal = append(dVal, row[i]-snap[i])
					snap[i] = row[i]
				}
			}
			if len(dIdx) > 0 {
				memo.sh.ProjectDelta(memo.proj[j*nf:(j+1)*nf], dIdx, dVal)
			}
		}
	})
}

// insertFromMemo derives every neuron's codes from the (quiesced)
// memoized projections and inserts them into dst, parallel over tables
// (as in the standard rebuild). It reads no live training state.
func (l *Layer) insertFromMemo(dst *hashtable.Table, workers int) {
	memo := l.memo
	nf := l.fam.NumFuncs()
	codes := l.codesScratch(nf)
	for base := 0; base < l.out; base += rebuildChunk {
		nRows := min(rebuildChunk, l.out-base)
		parallelRange(workers, nRows, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				j := base + r
				memo.sh.CodesFromProjections(memo.proj[j*nf:(j+1)*nf], codes[r*nf:(r+1)*nf])
			}
		})
		insertChunk(dst, uint32(base), nRows, nf, codes, workers)
	}
}

func errNotSampled(li int) error {
	return fmt.Errorf("core: layer %d is not LSH-sampled", li)
}

func errNotSimhash(li int) error {
	return fmt.Errorf("core: incremental re-hash requires Simhash on layer %d", li)
}
