package core

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/lsh"
)

// TestShadowBuildMatchesSyncRebuild is the async-vs-sync equivalence
// proof: from one weight snapshot and one generation, a shadow built on a
// background goroutine is bucket-for-bucket identical to one built
// inline — and both match a build straight from the live rows while the
// weights are quiesced. This is what makes the background lifecycle a
// pure scheduling change: the tables training ends up with are the same
// tables a stop-the-world rebuild of the same snapshot would have
// produced.
func TestShadowBuildMatchesSyncRebuild(t *testing.T) {
	classes := 256
	ds := tinyDataset(t, classes)
	n, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	// Train a little so the weights (and thus the codes) are non-trivial.
	if _, err := n.Train(ds.Train, ds.Test, TrainConfig{Iterations: 20, Seed: 2, EvalEvery: 0}); err != nil {
		t.Fatal(err)
	}
	l := n.layers[1]
	const gen = 7

	prep := l.prepareRebuild(1, true)
	inline := l.buildShadow(gen, prep, 1)

	bgShadow := inline
	bg := make(chan struct{})
	go func() {
		bgShadow = l.buildShadow(gen, prep, 3)
		close(bg)
	}()
	<-bg
	if !inline.Equal(bgShadow) {
		t.Fatal("background shadow build diverged from inline build of the same prepared state and generation")
	}

	// With the weights quiesced a second prepare finds nothing dirty, so
	// a build from the bare memo (what rebuildSync would do next) matches
	// the build that re-hashed the drifted rows.
	live := l.buildShadow(gen, l.prepareRebuild(2, false), 2)
	if !inline.Equal(live) {
		t.Fatal("memo-only build diverged from dirty-rehash build with quiesced weights")
	}

	// The incremental shadow must be bucket-for-bucket identical to a
	// full from-scratch build of the live rows at the same generation —
	// the §4.2 incremental-rebuild equivalence.
	full := l.Tables().Shadow(gen)
	l.insertAll(full, func(j int) []float32 { return l.w[j] }, 2)
	if !inline.Equal(full) {
		t.Fatal("incremental shadow diverged from full from-scratch build at the same generation")
	}

	// A different generation draws different reservoir streams; it may
	// only coincide when no bucket ever overflowed, so don't assert
	// inequality — just that it builds and stores every neuron.
	other := l.buildShadow(gen+1, prep, 1)
	if got, want := other.Stats().TotalSeen, l.Tables().L()*l.out; got != want {
		t.Fatalf("generation %d shadow saw %d insertions, want %d", gen+1, got, want)
	}
}

// TestAsyncRebuildPublishes runs the scheduler end to end: a training run
// on the default (non-blocking) lifecycle must kick background builds,
// publish them at batch boundaries, account overlapped build time, and
// leave the network fully servable.
func TestAsyncRebuildPublishes(t *testing.T) {
	classes := 256
	ds := tinyDataset(t, classes)
	cfg := tinyConfig(classes)
	cfg.RebuildN0 = 5
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := n.layers[1].Tables()
	res, err := n.Train(ds.Train, ds.Test, TrainConfig{Iterations: 40, Seed: 3, EvalEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebuilds == 0 {
		t.Fatal("no rebuilds published in 40 iterations with N0=5")
	}
	if res.RebuildBuildNS <= 0 {
		t.Fatalf("async run recorded no overlapped build time (rebuilds=%d)", res.Rebuilds)
	}
	after := n.layers[1].Tables()
	if before == after {
		t.Fatal("table handle still points at the construction-time set after published rebuilds")
	}
	if after.Stats().TotalStored == 0 {
		t.Fatal("published tables are empty")
	}
	if n.pending != nil {
		t.Fatal("Train returned with a background build still pending")
	}
	if _, _, err := n.PredictSampled(ds.Test[0].Features, 3); err != nil {
		t.Fatal(err)
	}

	// The sync mode still works and charges whole rebuilds as stall.
	nSync, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resSync, err := nSync.Train(ds.Train, ds.Test, TrainConfig{
		Iterations: 40, Seed: 3, EvalEvery: 0, SyncRebuild: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resSync.Rebuilds == 0 || resSync.RebuildStallNS <= 0 {
		t.Fatalf("sync run: rebuilds=%d stall=%dns", resSync.Rebuilds, resSync.RebuildStallNS)
	}
	if resSync.RebuildBuildNS != 0 {
		t.Fatalf("sync run recorded overlapped build time: %dns", resSync.RebuildBuildNS)
	}
}

// TestAsyncRebuildIncrementalMemo: the memo (incremental Simhash) path
// under the background lifecycle must keep the §4.2-trick-3 invariant —
// after training with async rebuilds, the memoized projections still give
// exactly the codes a direct hash of the live weights gives.
func TestAsyncRebuildIncrementalMemo(t *testing.T) {
	classes := 256
	ds := tinyDataset(t, classes)
	cfg := tinyConfig(classes)
	cfg.RebuildN0 = 5
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.EnableIncrementalRehash(1); err != nil {
		t.Fatal(err)
	}
	res, err := n.Train(ds.Train, ds.Test, TrainConfig{Iterations: 40, Threads: 1, Seed: 5, EvalEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebuilds == 0 {
		t.Fatal("no rebuilds happened")
	}
	// Fold any training that happened after the last published diff into
	// the projections, then compare code-for-code against direct hashing.
	l := n.layers[1]
	l.diffIncremental(1)
	sh := l.fam.(*lsh.IncrementalSimhash)
	nf := l.fam.NumFuncs()
	direct := make([]uint32, nf)
	memod := make([]uint32, nf)
	for j := 0; j < l.out; j++ {
		l.fam.HashDense(l.w[j], direct)
		sh.CodesFromProjections(l.memo.proj[j*nf:(j+1)*nf], memod)
		for f := range memod {
			if memod[f] != direct[f] {
				t.Fatalf("neuron %d func %d: memoized code %d != direct %d after async rebuilds",
					j, f, memod[f], direct[f])
			}
		}
	}
}

// TestAsyncRebuildRaceStress is the -race proof for the non-blocking
// lifecycle. Each cycle first trains with background rebuilds perpetually
// in flight (N0=1 re-arms the schedule every batch boundary, so detached
// builds overlap HOGWILD weight writes), then — with the weights
// quiesced — kicks another background build and publishes it while a
// shared Predictor hammers sampled and exact queries, so the atomic table
// swap lands in the middle of live traffic.
//
// The one overlap deliberately kept out is predictor weight reads
// concurrent with training weight writes: that is the paper's HOGWILD
// weak-consistency design, racy on purpose and predating this lifecycle,
// and the detector would (correctly) report it. Everything this PR adds —
// snapshot-fed builds racing training, swap publication racing readers —
// runs concurrently here and must stay silent under -race.
func TestAsyncRebuildRaceStress(t *testing.T) {
	classes := 128
	ds := tinyDataset(t, classes)
	cfg := tinyConfig(classes)
	cfg.RebuildN0 = 1
	cfg.RebuildLambda = 1e-9 // keep the gap at ~1 iteration all run
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := n.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}

	cycles := 3
	if testing.Short() {
		cycles = 1
	}
	totalRebuilds := 0
	for cycle := 0; cycle < cycles; cycle++ {
		// Phase 1: background builds in flight across training batches.
		res, err := n.Train(ds.Train, ds.Test, TrainConfig{
			Iterations: 12, BatchSize: 32, Seed: uint64(7 + cycle), EvalEvery: 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		totalRebuilds += res.Rebuilds

		// Phase 2: weights quiesced; a fresh background build runs and is
		// published while concurrent predictions are in full flight.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					x := ds.Test[(g*37+i)%len(ds.Test)].Features
					var err error
					if i%2 == 0 {
						_, _, err = p.PredictSampled(x, 3)
					} else {
						_, _, err = p.Predict(x, 3)
					}
					if err != nil {
						t.Errorf("predictor %d: %v", g, err)
						return
					}
				}
			}(g)
		}
		n.startBackgroundRebuild(2)
		n.finishPendingRebuild() // publish the swap under live traffic
		totalRebuilds++
		close(stop)
		wg.Wait()
	}
	if totalRebuilds < cycles*2 {
		t.Fatalf("stress run published only %d rebuilds", totalRebuilds)
	}
	// Serving must still be coherent after the dust settles.
	if _, err := n.Evaluate(ds.Test, 100, 2, 1); err != nil {
		t.Fatal(err)
	}
}

// TestRestorePathsShareTableGeneration pins the replica-to-replica
// determinism guarantee against the generation counter: restoring the
// same weights via v1 Load (into a freshly constructed network that
// already consumed generation 1 building its random-init tables) and via
// v2 LoadModel must produce bucket-for-bucket identical table sets —
// both paths rebuild at generation 1.
func TestRestorePathsShareTableGeneration(t *testing.T) {
	classes := 256
	ds := tinyDataset(t, classes)
	// BucketSize 2 forces reservoir churn so generation mismatches show.
	cfg := tinyConfig(classes)
	cfg.Layers[1].BucketSize = 2
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(ds.Train, ds.Test, TrainConfig{Iterations: 20, Seed: 6, EvalEvery: 0}); err != nil {
		t.Fatal(err)
	}
	var v1, v2 bytes.Buffer
	if err := n.Save(&v1); err != nil {
		t.Fatal(err)
	}
	if err := n.SaveModel(&v2); err != nil {
		t.Fatal(err)
	}

	viaLoad, err := NewNetwork(cfg) // construction build consumes a generation
	if err != nil {
		t.Fatal(err)
	}
	if err := viaLoad.Load(&v1); err != nil {
		t.Fatal(err)
	}
	viaLoadModel, err := LoadModel(&v2)
	if err != nil {
		t.Fatal(err)
	}
	if !viaLoad.layers[1].Tables().Equal(viaLoadModel.layers[1].Tables()) {
		t.Fatal("v1 Load and v2 LoadModel rebuilt different tables from identical weights (generation mismatch)")
	}
}
