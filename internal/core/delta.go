package core

import (
	"fmt"

	"repro/internal/optim"
)

// SparseDelta is one batch's gradient in explicit, first-class form: for
// every layer, the touched neuron rows, the touched input columns within
// each row, the raw accumulated gradient sums, and the bias gradients.
// This is exactly the s²-sparse payload §3.1 argues a batch produces and
// §6 proposes shipping between data-parallel replicas ("communication
// costs are minimal due to sparse gradients"): Layer.ExtractDelta drains
// the gradient buffers into this form at a batch boundary, replicas
// exchange and merge deltas (internal/dist), and Layer.ApplyDelta performs
// the Adam step over exactly the delta's cells.
//
// Values are raw sums, not batch averages: the consumer passes 1/B (or
// 1/(B*shards) after a data-parallel merge) to ApplyDelta, so merging is a
// plain cell-wise sum and the merged step equals the step a single process
// would take on the combined batch.
type SparseDelta struct {
	// Layers holds one LayerDelta per network layer, in layer order.
	Layers []LayerDelta
}

// LayerDelta is one layer's slice of a SparseDelta, in compressed
// sparse-row form over (touched neuron, touched input column).
type LayerDelta struct {
	// Rows lists the touched neuron ids, strictly ascending.
	Rows []int32
	// RowOff has len(Rows)+1 entries; row Rows[r]'s column span is
	// Cols[RowOff[r]:RowOff[r+1]] (and the matching Vals span).
	RowOff []int32
	// Cols lists the touched input columns per row, strictly ascending
	// within each row's span.
	Cols []int32
	// Vals holds the raw accumulated gradient sums aligned with Cols.
	Vals []float32
	// Bias holds the raw bias gradient aligned with Rows; 0 means the
	// row's bias accumulated no gradient and receives no step, matching
	// the fused path's skip.
	Bias []float32
}

// reset prepares d for reuse with the given layer count, keeping all
// backing arrays.
func (d *SparseDelta) reset(layers int) {
	if cap(d.Layers) < layers {
		d.Layers = make([]LayerDelta, layers)
	}
	d.Layers = d.Layers[:layers]
	for i := range d.Layers {
		d.Layers[i].reset()
	}
}

func (ld *LayerDelta) reset() {
	ld.Rows = ld.Rows[:0]
	ld.RowOff = ld.RowOff[:0]
	ld.Cols = ld.Cols[:0]
	ld.Vals = ld.Vals[:0]
	ld.Bias = ld.Bias[:0]
}

// Cells returns the number of gradient cells the delta carries — weight
// cells plus non-zero bias entries. This is the TouchedPerIter payload
// unit and the quantity a distributed replica serializes.
func (d *SparseDelta) Cells() int64 {
	var total int64
	for i := range d.Layers {
		ld := &d.Layers[i]
		total += int64(len(ld.Vals))
		for _, b := range ld.Bias {
			if b != 0 {
				total++
			}
		}
	}
	return total
}

// Clone returns a deep copy, for callers that must retain a delta past
// the producer's next reuse of its scratch buffers.
func (d *SparseDelta) Clone() *SparseDelta {
	out := &SparseDelta{Layers: make([]LayerDelta, len(d.Layers))}
	for i := range d.Layers {
		ld := &d.Layers[i]
		out.Layers[i] = LayerDelta{
			Rows:   append([]int32(nil), ld.Rows...),
			RowOff: append([]int32(nil), ld.RowOff...),
			Cols:   append([]int32(nil), ld.Cols...),
			Vals:   append([]float32(nil), ld.Vals...),
			Bias:   append([]float32(nil), ld.Bias...),
		}
	}
	return out
}

// DeltaExchanger merges one replica's batch gradient with its peers'
// (§6: data-parallel SLIDE with sparse-gradient exchange). Train calls
// Exchange once per batch with the locally extracted delta; the returned
// delta — the cell-wise sum over all shards, identical on every replica —
// is what the Adam step applies with invB = 1/(BatchSize*Shards).
//
// stop coordinates early termination: a replica that wants to stop
// (target accuracy reached, deadline, context cancelled) keeps exchanging
// with stop=true, and once any replica signals it, every replica receives
// stopAll=true and breaks after applying that batch's merged delta, so
// all replicas halt at the same step with identical weights.
//
// local is only valid for the duration of the call (the trainer reuses
// its buffers next batch); implementations must copy or encode what they
// retain. The returned delta stays valid until the rank's next Exchange
// call and may be shared read-only between replicas.
type DeltaExchanger interface {
	Exchange(step int64, local *SparseDelta, stop bool) (merged *SparseDelta, stopAll bool, err error)
}

// ShardCounter is optionally implemented by exchangers that know their
// group size. TrainContext cross-checks it against TrainConfig.Shards:
// a mismatch would silently mis-scale the Adam step (wrong invB) or —
// if ranks disagreed — diverge the replicas' weights.
type ShardCounter interface {
	Shards() int
}

// ExtractDelta drains the gradient accumulated since beginBatch into dst
// (reused when non-nil) and returns it. On the fused kernel path the
// gradient lives in per-worker backShards, folded here in fixed shard
// order and consumed; on the legacy path the shared buffers are zeroed as
// they are consumed and the touched stamps stay valid. Either way,
// extract-then-ApplyDelta is bit-for-bit the fused applyAdamFused path
// split in two whenever the accumulation itself was deterministic. Must
// run at a batch boundary (no concurrent accumulate). workers <= 0
// selects GOMAXPROCS.
func (n *Network) ExtractDelta(dst *SparseDelta, workers int) *SparseDelta {
	if workers <= 0 {
		workers = defaultThreads()
	}
	if dst == nil {
		dst = &SparseDelta{}
	}
	dst.reset(len(n.layers))
	sharded := n.kern.Fused() && n.layerShards != nil
	for li, l := range n.layers {
		if sharded {
			l.extractSharded(&dst.Layers[li], n.layerShards[li], workers)
		} else {
			l.ExtractDelta(&dst.Layers[li], workers)
		}
	}
	return dst
}

// ApplyDelta performs the per-cell Adam step over exactly the delta's
// cells, averaging raw sums by invB: w -= alpha*m̂/(sqrt(v̂)+eps) with
// gradient Vals[k]*invB per cell and Bias[r]*invB per non-zero bias. It
// returns the number of cells applied. The delta must be well-formed
// (ascending in-range rows and columns, as produced by ExtractDelta,
// MergeDeltas or the dist codec); shape mismatches are rejected.
// workers <= 0 selects GOMAXPROCS.
func (n *Network) ApplyDelta(d *SparseDelta, alpha, invB float32, workers int) (int64, error) {
	if workers <= 0 {
		workers = defaultThreads()
	}
	if len(d.Layers) != len(n.layers) {
		return 0, fmt.Errorf("core: delta has %d layers, network has %d", len(d.Layers), len(n.layers))
	}
	// Validate every layer before touching any weights: a delta
	// malformed only in a later layer must not leave the earlier layers
	// partially stepped (a caller retrying after the error would
	// double-apply them).
	for li, l := range n.layers {
		if err := l.checkDelta(&d.Layers[li]); err != nil {
			return 0, fmt.Errorf("core: layer %d: %w", li, err)
		}
	}
	var total int64
	for li, l := range n.layers {
		total += l.ApplyDelta(n.adam, &d.Layers[li], alpha, invB, workers)
	}
	return total, nil
}

// checkDelta validates a layer delta's shape against the layer: row span
// bounds and consistency between Rows, RowOff, Cols/Vals and Bias.
// Ascending order inside spans is the producer's contract (ExtractDelta,
// MergeDeltas and the dist codec all guarantee it) and is not re-checked
// on this hot path.
func (l *Layer) checkDelta(ld *LayerDelta) error {
	nr := len(ld.Rows)
	if len(ld.RowOff) != nr+1 || len(ld.Bias) != nr {
		return fmt.Errorf("inconsistent delta: %d rows, %d offsets, %d biases", nr, len(ld.RowOff), len(ld.Bias))
	}
	if nr == 0 {
		return nil
	}
	if ld.Rows[0] < 0 || int(ld.Rows[nr-1]) >= l.out {
		return fmt.Errorf("row id out of range [0,%d)", l.out)
	}
	nnz := int(ld.RowOff[nr])
	if ld.RowOff[0] != 0 || nnz != len(ld.Cols) || nnz != len(ld.Vals) {
		return fmt.Errorf("inconsistent delta spans: offsets end %d, %d cols, %d vals", nnz, len(ld.Cols), len(ld.Vals))
	}
	// Monotonicity first, for every span: a RowOff that spikes above nnz
	// and comes back down would otherwise pass the end-sum check and
	// send the column probe below out of bounds.
	for r := 0; r < nr; r++ {
		if ld.RowOff[r] > ld.RowOff[r+1] {
			return fmt.Errorf("row %d has negative span", ld.Rows[r])
		}
	}
	for r := 0; r < nr; r++ {
		lo, hi := ld.RowOff[r], ld.RowOff[r+1]
		if lo < hi && (ld.Cols[lo] < 0 || int(ld.Cols[hi-1]) >= l.in) {
			return fmt.Errorf("row %d column out of range [0,%d)", ld.Rows[r], l.in)
		}
	}
	return nil
}

// ExtractDelta drains this layer's accumulated gradient into dst: touched
// rows ascending, each row's non-zero gradient cells restricted to the
// batch's touched columns (or the full row for small fan-in layers),
// columns ascending. Consumed gW/gB cells are zeroed, exactly as the
// fused path zeroes them.
func (l *Layer) ExtractDelta(dst *LayerDelta, workers int) {
	dst.reset()
	rows := l.touchedRows(workers)
	if len(rows) == 0 {
		dst.RowOff = append(dst.RowOff, 0)
		return
	}
	cols := l.touchedColumns(workers)

	// Pass 1: count each row's non-zero cells so pass 2 can fill
	// disjoint spans in parallel.
	counts := make([]int32, len(rows))
	parallelRange(workers, len(rows), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			g := l.gW[rows[r]]
			var c int32
			if cols == nil {
				for _, gi := range g {
					if gi != 0 {
						c++
					}
				}
			} else {
				for _, i := range cols {
					if g[i] != 0 {
						c++
					}
				}
			}
			counts[r] = c
		}
	})

	dst.Rows = append(dst.Rows, rows...)
	if cap(dst.RowOff) < len(rows)+1 {
		dst.RowOff = make([]int32, 0, len(rows)+1)
	}
	dst.RowOff = dst.RowOff[:len(rows)+1]
	dst.RowOff[0] = 0
	for r, c := range counts {
		dst.RowOff[r+1] = dst.RowOff[r] + c
	}
	nnz := int(dst.RowOff[len(rows)])
	if cap(dst.Cols) < nnz {
		dst.Cols = make([]int32, nnz)
	}
	if cap(dst.Vals) < nnz {
		dst.Vals = make([]float32, nnz)
	}
	dst.Cols = dst.Cols[:nnz]
	dst.Vals = dst.Vals[:nnz]
	if cap(dst.Bias) < len(rows) {
		dst.Bias = make([]float32, len(rows))
	}
	dst.Bias = dst.Bias[:len(rows)]

	// Pass 2: fill the spans and zero the buffers as they are consumed.
	parallelRange(workers, len(rows), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			j := rows[r]
			g := l.gW[j]
			at := dst.RowOff[r]
			if cols == nil {
				for i, gi := range g {
					if gi != 0 {
						dst.Cols[at] = int32(i)
						dst.Vals[at] = gi
						g[i] = 0
						at++
					}
				}
			} else {
				for _, i := range cols {
					if gi := g[i]; gi != 0 {
						dst.Cols[at] = i
						dst.Vals[at] = gi
						g[i] = 0
						at++
					}
				}
			}
			dst.Bias[r] = l.gB[j]
			l.gB[j] = 0
		}
	})
}

// touchedRows rebuilds the ascending list of rows touched this batch from
// the neuron stamps.
func (l *Layer) touchedRows(workers int) []int32 {
	l.rowList = scanStamps(l.touched, l.batchEpoch, workers, l.rowList)
	return l.rowList
}

// scanStamps collects the ascending indices whose stamp equals epoch into
// dst (reused), parallelized across workers — the shared machinery behind
// the per-batch touched-row and touched-column lists.
func scanStamps(stamps []uint32, epoch uint32, workers int, dst []int32) []int32 {
	if workers < 1 {
		workers = 1
	}
	parts := make([][]int32, workers)
	parallelIndexed(workers, len(stamps), func(w, lo, hi int) {
		var local []int32
		for i := lo; i < hi; i++ {
			if stamps[i] == epoch {
				local = append(local, int32(i))
			}
		}
		parts[w] = local
	})
	dst = dst[:0]
	for _, p := range parts {
		dst = append(dst, p...)
	}
	return dst
}

// ApplyDelta runs one Adam step over exactly the delta's cells (gradient
// Vals*invB) and non-zero biases, returning the number of cells stepped.
// Work parallelizes over rows; each row has a single writer. Cell for
// cell this is the identical arithmetic to the fused applyAdamFused path.
// Layers carrying a column-major kernel mirror dual-write each stepped
// cell into it, keeping the scatter-form forward operand coherent for one
// extra store per touched weight.
func (l *Layer) ApplyDelta(adam optim.Adam, ld *LayerDelta, alpha, invB float32, workers int) int64 {
	counts := make([]int64, max(workers, 1))
	parallelIndexed(workers, len(ld.Rows), func(wk, lo, hi int) {
		var applied int64
		for r := lo; r < hi; r++ {
			j := ld.Rows[r]
			w, m, v := l.w[j], l.mW[j], l.vW[j]
			for k := ld.RowOff[r]; k < ld.RowOff[r+1]; k++ {
				i := ld.Cols[k]
				adam.Step1(&w[i], &m[i], &v[i], ld.Vals[k]*invB, alpha)
				if l.mirror != nil {
					l.mirror.Set(j, i, w[i])
				}
				applied++
			}
			// The row's weight vector moved, so its memoized hash codes
			// are stale (bias-only rows don't drift: codes hash weights
			// only). Each row has a single writer here.
			if l.dirty != nil && ld.RowOff[r+1] > ld.RowOff[r] {
				l.dirty[j] = l.hashEpoch
			}
			if gb := ld.Bias[r]; gb != 0 {
				adam.Step1(&l.b[j], &l.mB[j], &l.vB[j], gb*invB, alpha)
				applied++
			}
		}
		counts[wk] = applied
	})
	var total int64
	for _, c := range counts {
		total += c
	}
	return total
}

// MergeDeltas sums parts cell-wise into dst (reused when non-nil) and
// returns it: the union of the parts' rows and columns, with coincident
// cells and biases summed in part order. Every replica merging the same
// parts in the same order therefore produces bit-identical results —
// the invariant that keeps data-parallel replicas' weights in lockstep.
// A single part is returned as-is without copying.
func MergeDeltas(dst *SparseDelta, parts []*SparseDelta) (*SparseDelta, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("core: merging zero deltas")
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	layers := len(parts[0].Layers)
	for _, p := range parts[1:] {
		if len(p.Layers) != layers {
			return nil, fmt.Errorf("core: merging deltas with %d and %d layers", layers, len(p.Layers))
		}
	}
	if dst == nil {
		dst = &SparseDelta{}
	}
	dst.reset(layers)
	lds := make([]*LayerDelta, len(parts))
	for li := 0; li < layers; li++ {
		for k, p := range parts {
			lds[k] = &p.Layers[li]
		}
		mergeLayerDeltas(&dst.Layers[li], lds)
	}
	return dst, nil
}

// mergeLayerDeltas is the per-layer k-way merge over (row, col), ascending.
func mergeLayerDeltas(dst *LayerDelta, parts []*LayerDelta) {
	cur := make([]int, len(parts)) // row cursor per part
	// Per-row column-merge cursors, reused across rows: this runs once
	// per merged row on the exchange hot path (and under the Mesh lock),
	// so it must not allocate per row.
	cols := make([]int, 0, len(parts))  // column cursor per participating part
	owner := make([]int, 0, len(parts)) // part index aligned with cols
	colHi := make([]int, 0, len(parts)) // span end aligned with cols
	dst.RowOff = append(dst.RowOff, 0)
	for {
		row := int32(-1)
		for k, p := range parts {
			if cur[k] >= len(p.Rows) {
				continue
			}
			if r := p.Rows[cur[k]]; row < 0 || r < row {
				row = r
			}
		}
		if row < 0 {
			return
		}
		var bias float32
		cols, owner, colHi = cols[:0], owner[:0], colHi[:0]
		for k, p := range parts {
			if cur[k] >= len(p.Rows) || p.Rows[cur[k]] != row {
				continue
			}
			r := cur[k]
			bias += p.Bias[r]
			cols = append(cols, int(p.RowOff[r]))
			colHi = append(colHi, int(p.RowOff[r+1]))
			owner = append(owner, k)
			cur[k]++
		}
		for {
			col := int32(-1)
			for c := range cols {
				if cols[c] >= colHi[c] {
					continue
				}
				if v := parts[owner[c]].Cols[cols[c]]; col < 0 || v < col {
					col = v
				}
			}
			if col < 0 {
				break
			}
			var sum float32
			for c := range cols {
				if cols[c] < colHi[c] && parts[owner[c]].Cols[cols[c]] == col {
					sum += parts[owner[c]].Vals[cols[c]]
					cols[c]++
				}
			}
			dst.Cols = append(dst.Cols, col)
			dst.Vals = append(dst.Vals, sum)
		}
		dst.Rows = append(dst.Rows, row)
		dst.Bias = append(dst.Bias, bias)
		dst.RowOff = append(dst.RowOff, int32(len(dst.Cols)))
	}
}
