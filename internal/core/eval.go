package core

import (
	"sync"

	"repro/internal/dataset"
	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// EvalResult reports precision metrics over an evaluation set.
type EvalResult struct {
	// P1 is precision@1: the fraction of examples whose top predicted
	// class is a true label (the "Accuracy" of the paper's figures).
	P1 float64
	// PAtK maps k to precision@k for each requested k.
	PAtK map[int]float64
	// N is the number of evaluated examples.
	N int
}

// parallelIndexed splits [0, n) into contiguous spans across workers and
// calls f(w, lo, hi) with a unique worker index per span.
func parallelIndexed(workers, n int, f func(w, lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			f(0, 0, n)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			f(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// Evaluate computes exact (full forward) precision@1 and precision@k for
// the requested ks over up to samples examples of test (0 = all),
// parallelized across threads. Per-worker element states are checked out
// of the network's default predictor pool and returned afterwards, so
// repeated evaluations do not re-allocate inference state.
func (n *Network) Evaluate(test []dataset.Example, samples, threads int, ks ...int) (EvalResult, error) {
	idx := evalSubset(test, orAll(samples, len(test)), n.cfg.Seed^0x0e7a1)
	res := EvalResult{N: len(idx), PAtK: make(map[int]float64, len(ks))}
	if len(idx) == 0 {
		return res, nil
	}
	if threads <= 0 {
		threads = defaultThreads()
	}
	if threads > len(idx) {
		threads = len(idx)
	}
	maxK := 1
	for _, k := range ks {
		if k > maxK {
			maxK = k
		}
	}
	pred, err := n.defaultPredictor()
	if err != nil {
		return res, err
	}
	states, err := pred.acquireStates(threads, false)
	if err != nil {
		return res, err
	}
	defer pred.releaseStates(states, false)

	p1s := make([]float64, threads)
	pks := make([]map[int]float64, threads)
	parallelIndexed(threads, len(idx), func(w, lo, hi int) {
		st := states[w]
		pk := make(map[int]float64, len(ks))
		for k := lo; k < hi; k++ {
			ex := &test[idx[k]]
			n.forwardElem(st, ex.Features, nil, modeEvalFull)
			out := &st.layers[len(st.layers)-1]
			top := sparse.TopK(out.vals, maxK)
			if len(top) > 0 && containsSortedLabel(ex.Labels, top[0]) {
				p1s[w]++
			}
			for _, kk := range ks {
				hits := 0
				for _, c := range top[:min(kk, len(top))] {
					if containsSortedLabel(ex.Labels, c) {
						hits++
					}
				}
				pk[kk] += float64(hits) / float64(max(kk, 1))
			}
		}
		pks[w] = pk
	})
	var p1 float64
	for _, v := range p1s {
		p1 += v
	}
	res.P1 = p1 / float64(len(idx))
	for _, k := range ks {
		var s float64
		for _, pk := range pks {
			s += pk[k]
		}
		res.PAtK[k] = s / float64(len(idx))
	}
	return res, nil
}

// evalP1 is the training loop's periodic evaluation: exact forward P@1
// over a fixed index subset, reusing the provided per-worker states. The
// exact pass runs the same kernel plans as training — notably the
// scatter form on the mirrored input layer — so periodic evaluation
// shares the hot path's layout wins.
func (n *Network) evalP1(test []dataset.Example, idx []int, states []*elemState) float64 {
	if len(idx) == 0 {
		return 0
	}
	hits := make([]int64, len(states))
	parallelIndexed(len(states), len(idx), func(w, lo, hi int) {
		st := states[w]
		var h int64
		for k := lo; k < hi; k++ {
			ex := &test[idx[k]]
			n.forwardElem(st, ex.Features, nil, modeEvalFull)
			out := &st.layers[len(st.layers)-1]
			if containsSortedLabel(ex.Labels, int32(vecmath.ArgMax(out.vals))) {
				h++
			}
		}
		hits[w] += h
	})
	var total int64
	for _, h := range hits {
		total += h
	}
	return float64(total) / float64(len(idx))
}

func orAll(samples, total int) int {
	if samples <= 0 {
		return total
	}
	return samples
}
