package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/lsh"
	"repro/internal/optim"
	"repro/internal/sampling"
	"repro/internal/sparse"
)

// denseNetConfig builds a fully dense (no sampling) two-layer softmax
// network — the configuration under which SLIDE's sparse machinery must
// agree exactly with classical dense backprop.
func denseNetConfig(in, hidden, classes int, mode optim.UpdateMode) Config {
	return Config{
		InputDim:   in,
		Seed:       13,
		UpdateMode: mode,
		Layers: []LayerConfig{
			{Size: hidden, Activation: ActReLU},
			{Size: classes, Activation: ActSoftmax},
		},
	}
}

// TestGradientCheck verifies the sparse message-passing backprop against
// numerical differentiation of the cross-entropy loss on a tiny dense
// network: the accumulated gradient gW must equal dLoss/dw to first
// order. This pins the core algorithmic claim that the sparse update
// computes true gradients.
func TestGradientCheck(t *testing.T) {
	const in, hidden, classes = 12, 6, 8
	// Pin the legacy kernel path: the check reads the shared gW/gB
	// buffers directly, which the sharded (fused) backward never writes.
	cfg := denseNetConfig(in, hidden, classes, optim.ModeHogwild)
	cfg.Kernels = KernelLegacy
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := newElemState(n, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := sparse.MustNew(in, []int32{1, 4, 7, 10}, []float32{0.5, -0.3, 0.8, 0.2})
	labels := []int32{2, 5}

	lossAt := func() float64 {
		n.forwardElem(st, x, labels, modeTrain)
		out := &st.layers[len(st.layers)-1]
		var loss float64
		inv := 1 / float64(len(labels))
		for _, lab := range labels {
			p := float64(out.vals[lab])
			loss -= inv * math.Log(math.Max(p, 1e-30))
		}
		return loss
	}

	// Accumulate the analytic gradient once.
	n.beginBatch()
	n.forwardElem(st, x, labels, modeTrain)
	n.backwardElem(st, x, labels, nil)

	check := func(layer, j, i int) {
		l := n.layers[layer]
		var analytic float64
		if i < 0 {
			analytic = float64(l.gB[j])
		} else {
			analytic = float64(l.gW[j][i])
		}
		const h = 1e-3
		var p *float32
		if i < 0 {
			p = &l.b[j]
		} else {
			p = &l.w[j][i]
		}
		orig := *p
		*p = orig + h
		up := lossAt()
		*p = orig - h
		down := lossAt()
		*p = orig
		numeric := (up - down) / (2 * h)
		if math.Abs(numeric-analytic) > 1e-2*math.Max(1, math.Abs(numeric)) {
			t.Errorf("layer %d w[%d][%d]: numeric %.6f vs analytic %.6f", layer, j, i, numeric, analytic)
		}
	}
	// Sample weights across both layers, plus biases.
	for _, probe := range [][3]int{
		{1, 2, 0}, {1, 2, 3}, {1, 5, 5}, {1, 0, 1}, // output layer (label and non-label neurons)
		{0, 0, 1}, {0, 3, 4}, {0, 5, 7}, // hidden layer
		{1, 2, -1}, {0, 1, -1}, // biases
	} {
		check(probe[0], probe[1], probe[2])
	}
}

// TestSparseMatchesDenseWhenAllActive: with every neuron active, a full
// training iteration through the SLIDE engine must be mathematically
// identical to classical dense backprop. We verify by running the same
// batch through two fresh but identically seeded networks with different
// update modes (HOGWILD on 1 thread vs deterministic BatchSync sharded
// over 4): weights must match bit-for-bit modulo float addition order.
func TestSparseMatchesDenseWhenAllActive(t *testing.T) {
	ds := tinyDataset(t, 32)
	run := func(mode optim.UpdateMode, threads int) *Network {
		n, err := NewNetwork(denseNetConfig(512, 16, 32, mode))
		if err != nil {
			t.Fatal(err)
		}
		_, err = n.Train(ds.Train[:256], ds.Test, TrainConfig{
			BatchSize: 32, Iterations: 6, Threads: threads, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a := run(optim.ModeHogwild, 1)
	b := run(optim.ModeBatchSync, 4)
	for li := range a.layers {
		for j := 0; j < a.layers[li].out; j++ {
			wa, wb := a.layers[li].w[j], b.layers[li].w[j]
			for i := range wa {
				if math.Abs(float64(wa[i]-wb[i])) > 2e-3 {
					t.Fatalf("layer %d w[%d][%d]: %v vs %v", li, j, i, wa[i], wb[i])
				}
			}
		}
	}
}

// TestBatchSyncDeterministicAcrossThreads: ModeBatchSync must give
// identical weights regardless of worker count. This holds for the
// gradient/update path (sharded single-writer accumulation); LSH-sampled
// layers add worker-level retrieval randomness, so the test pins the
// dense configuration.
func TestBatchSyncDeterministicAcrossThreads(t *testing.T) {
	ds := tinyDataset(t, 64)
	run := func(threads int) *Network {
		cfg := denseNetConfig(512, 16, 64, optim.ModeBatchSync)
		cfg.UpdateMode = optim.ModeBatchSync
		n, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Train(ds.Train[:256], ds.Test, TrainConfig{
			BatchSize: 32, Iterations: 4, Threads: threads, Seed: 7, EvalEvery: 0,
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	a := run(1)
	b := run(8)
	for li := range a.layers {
		for j := 0; j < a.layers[li].out; j++ {
			if !reflect.DeepEqual(a.layers[li].w[j], b.layers[li].w[j]) {
				t.Fatalf("layer %d neuron %d weights differ across thread counts", li, j)
			}
		}
	}
}

// TestLabelsForcedActive: during training, every true label must be in
// the output layer's active set (§3.1 — otherwise positives get no
// gradient).
func TestLabelsForcedActive(t *testing.T) {
	classes := 256
	n, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	st, err := newElemState(n, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	ds := tinyDataset(t, classes)
	for i := 0; i < 50; i++ {
		ex := &ds.Train[i]
		n.forwardElem(st, ex.Features, ex.Labels, modeTrain)
		out := &st.layers[1]
		present := map[int32]bool{}
		for _, id := range out.ids {
			present[id] = true
		}
		for _, lab := range ex.Labels {
			if !present[lab] {
				t.Fatalf("example %d: label %d not active", i, lab)
			}
		}
		// And no duplicates.
		if len(present) != len(out.ids) {
			t.Fatalf("example %d: duplicate active ids", i)
		}
	}
}

// TestEvalModeDoesNotPeek: sampled evaluation must not force labels in.
func TestEvalSampledIndependentOfLabels(t *testing.T) {
	classes := 128
	n, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	st, err := newElemState(n, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	ds := tinyDataset(t, classes)
	ex := &ds.Train[0]
	n.forwardElem(st, ex.Features, ex.Labels, modeEvalSampled)
	first := append([]int32(nil), st.layers[1].ids...)
	n.forwardElem(st, ex.Features, nil, modeEvalSampled)
	second := st.layers[1].ids
	if len(first) != len(second) {
		t.Fatalf("labels changed the sampled eval active set: %d vs %d ids", len(first), len(second))
	}
}

// TestRebuildScheduleExponential: rebuild gaps must grow per §4.2.
func TestRebuildScheduleExponential(t *testing.T) {
	cfg := tinyConfig(128)
	cfg.RebuildN0 = 10
	cfg.RebuildLambda = 0.5
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rebuildIters []int64
	prev := n.Rebuilds()
	for n.step = 0; n.step < 200; n.step++ {
		if n.maybeRebuild(1); n.Rebuilds() != prev {
			rebuildIters = append(rebuildIters, n.step)
			prev = n.Rebuilds()
		}
	}
	if len(rebuildIters) < 3 {
		t.Fatalf("too few rebuilds: %v", rebuildIters)
	}
	gaps := make([]int64, 0, len(rebuildIters)-1)
	for i := 1; i < len(rebuildIters); i++ {
		gaps = append(gaps, rebuildIters[i]-rebuildIters[i-1])
	}
	for i := 1; i < len(gaps); i++ {
		if gaps[i] < gaps[i-1] {
			t.Fatalf("rebuild gaps not non-decreasing: %v", gaps)
		}
	}
	if gaps[len(gaps)-1] <= gaps[0] {
		t.Fatalf("rebuild gaps did not grow: %v", gaps)
	}
}

// TestRebuildTracksWeights: after weights change, rebuilding must change
// table contents (neurons move buckets).
func TestRebuildTracksWeights(t *testing.T) {
	classes := 256
	ds := tinyDataset(t, classes)
	n, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	before := n.layers[1].Tables().Stats()
	if _, err := n.Train(ds.Train, ds.Test, TrainConfig{Iterations: 60, EvalEvery: 0, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	after := n.layers[1].Tables().Stats()
	if before.TotalStored == 0 || after.TotalStored == 0 {
		t.Fatalf("tables empty: before %+v after %+v", before, after)
	}
	if n.Rebuilds() == 0 {
		t.Fatal("no rebuilds in 60 iterations with N0=50")
	}
}

// TestPredictConsistency: Predict's top-1 must match Evaluate's argmax
// path on the same input.
func TestPredictConsistency(t *testing.T) {
	classes := 128
	ds := tinyDataset(t, classes)
	n, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(ds.Train, ds.Test, TrainConfig{Epochs: 2, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	ids, scores, err := n.Predict(ds.Test[0].Features, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 || len(scores) != 5 {
		t.Fatalf("Predict returned %d ids, %d scores", len(ids), len(scores))
	}
	for i := 1; i < len(scores); i++ {
		if scores[i] > scores[i-1] {
			t.Fatalf("scores not descending: %v", scores)
		}
	}
	// Sampled prediction returns valid class ids.
	sids, _, err := n.PredictSampled(ds.Test[0].Features, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sids {
		if id < 0 || int(id) >= classes {
			t.Fatalf("sampled prediction id out of range: %d", id)
		}
	}
}

// TestUpdateModesAllLearn: the three write disciplines must all converge
// on the tiny task (the paper's HOGWILD robustness claim).
func TestUpdateModesAllLearn(t *testing.T) {
	classes := 128
	ds := tinyDataset(t, classes)
	for _, mode := range []optim.UpdateMode{optim.ModeHogwild, optim.ModeAtomic, optim.ModeBatchSync} {
		cfg := tinyConfig(classes)
		cfg.UpdateMode = mode
		n, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Train(ds.Train, ds.Test, TrainConfig{Epochs: 5, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalAcc < 0.2 {
			t.Errorf("%v: P@1 = %.3f, expected > 0.2", mode, res.FinalAcc)
		}
	}
}

// TestEvaluatePAtK: P@1 ≥ ... consistency and range checks.
func TestEvaluatePAtK(t *testing.T) {
	classes := 128
	ds := tinyDataset(t, classes)
	n, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(ds.Train, ds.Test, TrainConfig{Epochs: 3, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	ev, err := n.Evaluate(ds.Test, 200, 4, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ev.N != 200 {
		t.Fatalf("N = %d", ev.N)
	}
	if ev.P1 < 0 || ev.P1 > 1 || ev.PAtK[5] < 0 || ev.PAtK[5] > 1 {
		t.Fatalf("precision out of range: %+v", ev)
	}
	if math.Abs(ev.PAtK[1]-ev.P1) > 1e-9 {
		t.Fatalf("P@1 inconsistency: %v vs %v", ev.PAtK[1], ev.P1)
	}
}

// TestConfigValidation covers constructor errors.
func TestConfigValidation(t *testing.T) {
	if _, err := NewNetwork(Config{InputDim: 0, Layers: []LayerConfig{{Size: 4}}}); err == nil {
		t.Error("zero InputDim accepted")
	}
	if _, err := NewNetwork(Config{InputDim: 4}); err == nil {
		t.Error("no layers accepted")
	}
	if _, err := NewNetwork(Config{InputDim: 4, Layers: []LayerConfig{{Size: 0}}}); err == nil {
		t.Error("zero layer size accepted")
	}
	if _, err := NewNetwork(Config{InputDim: 4, Layers: []LayerConfig{
		{Size: 4, Sampled: true, K: 0, L: 1, Beta: 2},
	}}); err == nil {
		t.Error("sampled layer without K accepted")
	}
	if _, err := NewNetwork(Config{InputDim: 4, Layers: []LayerConfig{
		{Size: 4, Activation: ActSoftmax},
		{Size: 4, Activation: ActSoftmax},
	}}); err == nil {
		t.Error("softmax on a non-final layer accepted")
	}
	if _, err := NewNetwork(Config{InputDim: 4, Layers: []LayerConfig{
		{Size: 8, Sampled: true, Hash: lsh.KindSimhash, K: 2, L: 2,
			Strategy: sampling.KindVanilla, Beta: 0},
	}}); err == nil {
		t.Error("vanilla strategy without Beta accepted")
	}
}

// TestAllHashFamiliesTrain: the engine must train with every family.
func TestAllHashFamiliesTrain(t *testing.T) {
	classes := 128
	ds := tinyDataset(t, classes)
	for _, kind := range []lsh.Kind{lsh.KindSimhash, lsh.KindWTA, lsh.KindDWTA, lsh.KindDOPH} {
		cfg := tinyConfig(classes)
		cfg.Layers[1].Hash = kind
		cfg.Layers[1].RangePow = 5
		n, err := NewNetwork(cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		res, err := n.Train(ds.Train[:512], ds.Test, TrainConfig{Epochs: 2, Seed: 9})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.FinalAcc < 1.0/float64(classes)*2 {
			t.Errorf("%v: P@1 %.3f no better than chance", kind, res.FinalAcc)
		}
	}
}

// TestStrategiesTrain: all retrieval strategies must drive learning.
func TestStrategiesTrain(t *testing.T) {
	classes := 128
	ds := tinyDataset(t, classes)
	for _, strat := range []sampling.Kind{sampling.KindVanilla, sampling.KindTopK, sampling.KindHardThreshold, sampling.KindRandom} {
		cfg := tinyConfig(classes)
		cfg.Layers[1].Strategy = strat
		cfg.Layers[1].MinCount = 2
		n, err := NewNetwork(cfg)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		res, err := n.Train(ds.Train[:512], ds.Test, TrainConfig{Epochs: 2, Seed: 9})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if res.FinalAcc == 0 && strat != sampling.KindHardThreshold {
			t.Errorf("%v: zero accuracy", strat)
		}
	}
}

// TestLayoutsEquivalent: arena vs per-neuron layouts must produce the
// same trained weights under deterministic updates.
func TestLayoutsEquivalent(t *testing.T) {
	ds := tinyDataset(t, 64)
	run := func(layout Layout) *Network {
		cfg := denseNetConfig(512, 8, 64, optim.ModeBatchSync)
		cfg.Layout = layout
		cfg.PadRows = layout == LayoutContiguous
		n, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Train(ds.Train[:128], ds.Test, TrainConfig{
			BatchSize: 32, Iterations: 3, Threads: 2, Seed: 5, EvalEvery: 0,
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	a := run(LayoutContiguous)
	b := run(LayoutPerNeuron)
	for li := range a.layers {
		for j := 0; j < a.layers[li].out; j++ {
			if !reflect.DeepEqual(a.layers[li].w[j], b.layers[li].w[j]) {
				t.Fatalf("layouts diverged at layer %d neuron %d", li, j)
			}
		}
	}
}

// TestTrainConfigStops: target accuracy and max seconds terminate runs.
func TestTrainConfigStops(t *testing.T) {
	classes := 128
	ds := tinyDataset(t, classes)
	n, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Train(ds.Train, ds.Test, TrainConfig{
		Iterations: 10000, EvalEvery: 5, TargetAcc: 0.01, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 10000 {
		t.Fatal("TargetAcc did not stop training")
	}
}

// TestContinuedTraining: calling Train twice resumes from the prior step.
func TestContinuedTraining(t *testing.T) {
	classes := 64
	ds := tinyDataset(t, classes)
	n, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(ds.Train, ds.Test, TrainConfig{Iterations: 5, EvalEvery: 0, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if n.Step() != 5 {
		t.Fatalf("step = %d", n.Step())
	}
	if _, err := n.Train(ds.Train, ds.Test, TrainConfig{Iterations: 5, EvalEvery: 0, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if n.Step() != 10 {
		t.Fatalf("step after resume = %d", n.Step())
	}
}

// TestEmptyTrainRejected: empty splits error out.
func TestEmptyTrainRejected(t *testing.T) {
	n, err := NewNetwork(tinyConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(nil, nil, TrainConfig{}); err == nil {
		t.Fatal("empty training split accepted")
	}
}

// TestNumParams: parameter accounting.
func TestNumParams(t *testing.T) {
	n, err := NewNetwork(denseNetConfig(10, 4, 6, optim.ModeHogwild))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(10*4 + 4 + 4*6 + 6)
	if n.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", n.NumParams(), want)
	}
}

func TestNetworkAccessors(t *testing.T) {
	classes := 64
	n, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	if n.NumLayers() != 2 || n.OutputDim() != classes {
		t.Fatalf("accessors: %d layers, %d out", n.NumLayers(), n.OutputDim())
	}
	if n.Layer(0).Sampled() || !n.Layer(1).Sampled() {
		t.Fatal("Sampled flags wrong")
	}
	if n.Layer(1).In() != 64 || n.Layer(1).Out() != classes {
		t.Fatal("layer dims wrong")
	}
	if len(n.Layer(0).Weights(0)) != 512 {
		t.Fatal("weight row length wrong")
	}
	_ = n.Layer(0).Bias(0)
	ds := tinyDataset(t, classes)
	_ = ds
}
