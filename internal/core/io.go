package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Model serialization: a small custom binary format (the module builds
// offline, stdlib only). Layout:
//
//	magic "SLIDEv1\n"
//	uint32 inputDim, uint32 numLayers
//	per layer: uint32 in, out, activation
//	           float32 weights row-major, float32 biases
//
// Optimizer moments and hash tables are not persisted: tables are
// reconstructed from the loaded weights (they are a pure function of
// them), and moments restart, matching the reference implementation's
// checkpointing.

var modelMagic = [8]byte{'S', 'L', 'I', 'D', 'E', 'v', '1', '\n'}

// Save writes the network's weights to w.
func (n *Network) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(modelMagic[:]); err != nil {
		return err
	}
	hdr := []uint32{uint32(n.cfg.InputDim), uint32(len(n.layers))}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	for _, l := range n.layers {
		meta := []uint32{uint32(l.in), uint32(l.out), uint32(l.cfg.Activation)}
		if err := binary.Write(bw, binary.LittleEndian, meta); err != nil {
			return err
		}
		for j := 0; j < l.out; j++ {
			if err := binary.Write(bw, binary.LittleEndian, l.w[j]); err != nil {
				return err
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, l.b[:l.out]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load restores weights saved by Save into an identically shaped network
// and rebuilds the hash tables from them.
func (n *Network) Load(r io.Reader) error {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("core: reading model magic: %w", err)
	}
	if magic != modelMagic {
		return fmt.Errorf("core: bad model magic %q", magic[:])
	}
	var hdr [2]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return err
	}
	if int(hdr[0]) != n.cfg.InputDim || int(hdr[1]) != len(n.layers) {
		return fmt.Errorf("core: model shape %dx%d layers does not match network %dx%d",
			hdr[0], hdr[1], n.cfg.InputDim, len(n.layers))
	}
	for li, l := range n.layers {
		var meta [3]uint32
		if err := binary.Read(br, binary.LittleEndian, &meta); err != nil {
			return err
		}
		if int(meta[0]) != l.in || int(meta[1]) != l.out || Activation(meta[2]) != l.cfg.Activation {
			return fmt.Errorf("core: layer %d shape mismatch", li)
		}
		for j := 0; j < l.out; j++ {
			if err := binary.Read(br, binary.LittleEndian, l.w[j]); err != nil {
				return err
			}
		}
		if err := binary.Read(br, binary.LittleEndian, l.b[:l.out]); err != nil {
			return err
		}
	}
	n.RebuildTables(0)
	return nil
}
