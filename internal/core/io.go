package core

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Model serialization: a small custom binary format (the module builds
// offline, stdlib only). Two versions exist:
//
// v1 (Save/Load) persists weights only and requires the caller to have
// already constructed an identically shaped network:
//
//	magic "SLIDEv1\n"
//	uint32 inputDim, uint32 numLayers
//	per layer: uint32 in, out, activation
//	           float32 weights row-major, float32 biases
//
// v2 (SaveModel/LoadModel) is self-describing — it embeds the network's
// full Config as JSON so a serving process can reconstruct the network
// (hash families, K/L, sampling strategy, layout) from the file alone:
//
//	magic "SLIDEv2\n"
//	uint32 len(configJSON), configJSON
//	per layer: uint32 in, out, activation
//	           float32 weights row-major, float32 biases
//
// Optimizer moments and hash tables are not persisted in either version:
// tables are reconstructed from the loaded weights (they are a pure
// function of them), and moments restart, matching the reference
// implementation's checkpointing.

var (
	modelMagic   = [8]byte{'S', 'L', 'I', 'D', 'E', 'v', '1', '\n'}
	modelMagicV2 = [8]byte{'S', 'L', 'I', 'D', 'E', 'v', '2', '\n'}
)

// Save writes the network's weights to w in the v1 (weights-only) format.
func (n *Network) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(modelMagic[:]); err != nil {
		return err
	}
	hdr := []uint32{uint32(n.cfg.InputDim), uint32(len(n.layers))}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := n.writeWeights(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveModel writes the network in the self-describing v2 format: the full
// Config as JSON followed by the weights. A file written by SaveModel can
// be turned back into a working network with LoadModel alone — the
// handoff format between training (slide-train -save) and serving
// (slide-serve -model).
func (n *Network) SaveModel(w io.Writer) error {
	cfgJSON, err := json.Marshal(n.cfg)
	if err != nil {
		return fmt.Errorf("core: encoding model config: %w", err)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(modelMagicV2[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(cfgJSON))); err != nil {
		return err
	}
	if _, err := bw.Write(cfgJSON); err != nil {
		return err
	}
	if err := n.writeWeights(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadModel reads a v2 model: it reconstructs the network from the
// embedded config, restores the weights, and rebuilds the hash tables.
func LoadModel(r io.Reader) (*Network, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading model magic: %w", err)
	}
	if magic != modelMagicV2 {
		if magic == modelMagic {
			return nil, fmt.Errorf("core: v1 model file has no embedded config; load it with (*Network).Load into a matching network")
		}
		return nil, fmt.Errorf("core: bad model magic %q", magic[:])
	}
	var cfgLen uint32
	if err := binary.Read(br, binary.LittleEndian, &cfgLen); err != nil {
		return nil, err
	}
	if cfgLen > 1<<20 {
		return nil, fmt.Errorf("core: unreasonable model config size %d", cfgLen)
	}
	cfgJSON := make([]byte, cfgLen)
	if _, err := io.ReadFull(br, cfgJSON); err != nil {
		return nil, fmt.Errorf("core: reading model config: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
		return nil, fmt.Errorf("core: decoding model config: %w", err)
	}
	// Defer the table build until the real weights are in place — the
	// tables are a pure function of the weights, so hashing the random
	// initialization would be thrown away.
	n, err := newNetwork(cfg, false)
	if err != nil {
		return nil, fmt.Errorf("core: reconstructing network from model config: %w", err)
	}
	if err := n.readWeights(br); err != nil {
		return nil, err
	}
	n.RebuildTables(0)
	n.rebuilds = 0
	return n, nil
}

// writeWeights streams every layer's shape metadata, weights and biases.
func (n *Network) writeWeights(bw *bufio.Writer) error {
	for _, l := range n.layers {
		meta := []uint32{uint32(l.in), uint32(l.out), uint32(l.cfg.Activation)}
		if err := binary.Write(bw, binary.LittleEndian, meta); err != nil {
			return err
		}
		for j := 0; j < l.out; j++ {
			if err := binary.Write(bw, binary.LittleEndian, l.w[j]); err != nil {
				return err
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, l.b[:l.out]); err != nil {
			return err
		}
	}
	return nil
}

// readWeights restores what writeWeights wrote, validating shapes against
// the receiver's layers.
func (n *Network) readWeights(br *bufio.Reader) error {
	for li, l := range n.layers {
		var meta [3]uint32
		if err := binary.Read(br, binary.LittleEndian, &meta); err != nil {
			return err
		}
		if int(meta[0]) != l.in || int(meta[1]) != l.out || Activation(meta[2]) != l.cfg.Activation {
			return fmt.Errorf("core: layer %d shape mismatch", li)
		}
		for j := 0; j < l.out; j++ {
			if err := binary.Read(br, binary.LittleEndian, l.w[j]); err != nil {
				return err
			}
		}
		if err := binary.Read(br, binary.LittleEndian, l.b[:l.out]); err != nil {
			return err
		}
		// The column-major kernel mirror is derived from the rows just
		// overwritten; re-derive it so the scatter forward form serves
		// the restored weights. The memoized hash codes are equally
		// stale, so the next rebuild must re-hash the whole layer.
		l.refreshMirror()
		l.markAllRowsDirty()
	}
	return nil
}

// Load restores weights saved by Save into an identically shaped network
// and rebuilds the hash tables from them.
func (n *Network) Load(r io.Reader) error {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("core: reading model magic: %w", err)
	}
	if magic != modelMagic {
		return fmt.Errorf("core: bad model magic %q", magic[:])
	}
	var hdr [2]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return err
	}
	if int(hdr[0]) != n.cfg.InputDim || int(hdr[1]) != len(n.layers) {
		return fmt.Errorf("core: model shape %dx%d layers does not match network %dx%d",
			hdr[0], hdr[1], n.cfg.InputDim, len(n.layers))
	}
	if err := n.readWeights(br); err != nil {
		return err
	}
	// Restore to generation 1 exactly like LoadModel, so every restore
	// path yields identical reservoir streams (replica-to-replica
	// determinism) no matter how many builds the receiver ran before.
	n.rebuildGen = 0
	n.RebuildTables(0)
	return nil
}
