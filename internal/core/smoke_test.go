package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/lsh"
	"repro/internal/sampling"
)

// tinyDataset builds a small learnable synthetic task.
func tinyDataset(t testing.TB, classes int) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Profile{
		Name:        "tiny",
		FeatureDim:  512,
		NumClasses:  classes,
		TrainSize:   2000,
		TestSize:    400,
		AvgFeatures: 20,
		AvgLabels:   2,
		ProtoNNZ:    12,
		NoiseFrac:   0.1,
		LabelSkew:   1.5,
		Seed:        7,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return ds
}

func tinyConfig(classes int) Config {
	return Config{
		InputDim: 512,
		Seed:     11,
		Layers: []LayerConfig{
			{Size: 64, Activation: ActReLU},
			{
				Size: classes, Activation: ActSoftmax,
				Sampled: true, Hash: lsh.KindSimhash, K: 5, L: 16,
				Strategy: sampling.KindVanilla, Beta: 48,
			},
		},
	}
}

// TestSlideLearnsTinyTask verifies the end-to-end pipeline: a sampled
// softmax output layer trained with HOGWILD updates must beat random
// guessing by a wide margin on a planted-structure task.
func TestSlideLearnsTinyTask(t *testing.T) {
	classes := 256
	ds := tinyDataset(t, classes)
	n, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	res, err := n.Train(ds.Train, ds.Test, TrainConfig{
		BatchSize: 64, Epochs: 6, EvalEvery: 40, EvalSamples: 300, Seed: 3,
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	t.Logf("final P@1=%.3f after %d iters (%.2fs), rebuilds=%d, mean active=%.1f/%d",
		res.FinalAcc, res.Iterations, res.Seconds, res.Rebuilds, res.MeanActive[1], classes)
	if res.FinalAcc < 0.25 {
		t.Fatalf("P@1 = %.3f; expected the network to learn well above random (1/%d)", res.FinalAcc, classes)
	}
	if res.Rebuilds == 0 {
		t.Fatalf("expected scheduled hash-table rebuilds during training")
	}
	if res.MeanActive[1] >= float64(classes) {
		t.Fatalf("mean active %.1f should be below the layer size %d", res.MeanActive[1], classes)
	}
}
