package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sparse"
)

// TestDegenerateExamples: training must tolerate empty feature vectors,
// empty label sets and single-feature inputs without NaNs or panics
// (real XC data contains all three).
func TestDegenerateExamples(t *testing.T) {
	classes := 64
	train := []dataset.Example{
		{Features: sparse.Vector{Dim: 512}, Labels: []int32{3}},                // no features
		{Features: sparse.MustNew(512, []int32{5}, []float32{1}), Labels: nil}, // no labels
		{Features: sparse.MustNew(512, []int32{7}, []float32{1}), Labels: []int32{1, 2, 3}},
		{Features: sparse.MustNew(512, []int32{0, 511}, []float32{0.5, 0.5}), Labels: []int32{63}},
	}
	// Pad with clones so a batch fills.
	for len(train) < 64 {
		train = append(train, train[len(train)%4])
	}
	n, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Train(train, train[:8], TrainConfig{BatchSize: 16, Iterations: 20, Seed: 1, EvalEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Weights must stay finite.
	for li := range n.layers {
		l := n.layers[li]
		for j := 0; j < l.out; j++ {
			for _, w := range l.w[j] {
				if math.IsNaN(float64(w)) || math.IsInf(float64(w), 0) {
					t.Fatalf("layer %d produced non-finite weight", li)
				}
			}
		}
	}
}

// TestExtremeValues: very large feature values must not break the
// softmax (LSE stabilization) or the LSH hashing.
func TestExtremeValues(t *testing.T) {
	classes := 64
	n, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	st, err := newElemState(n, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := sparse.MustNew(512, []int32{1, 2, 3}, []float32{1e6, -1e6, 1e6})
	n.forwardElem(st, x, []int32{5}, modeTrain)
	out := &st.layers[1]
	var sum float64
	for _, p := range out.vals {
		if math.IsNaN(float64(p)) {
			t.Fatal("softmax produced NaN on extreme input")
		}
		sum += float64(p)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("softmax sum = %v", sum)
	}
}

// TestBatchLargerThanTrain: the trainer reshuffles and wraps when the
// batch exceeds the epoch remainder.
func TestBatchLargerThanTrain(t *testing.T) {
	classes := 64
	ds := tinyDataset(t, classes)
	n, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	small := ds.Train[:40] // batch 64 > 40 examples
	res, err := n.Train(small, ds.Test, TrainConfig{BatchSize: 64, Iterations: 10, Seed: 1, EvalEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 10 {
		t.Fatalf("ran %d iterations", res.Iterations)
	}
}

// TestSingleClassDataset: degenerate one-class problems must train and
// reach P@1 = 1.
func TestSingleClassDataset(t *testing.T) {
	train := make([]dataset.Example, 64)
	for i := range train {
		train[i] = dataset.Example{
			Features: sparse.MustNew(512, []int32{int32(i % 50)}, []float32{1}),
			Labels:   []int32{0},
		}
	}
	cfg := tinyConfig(1)
	cfg.Layers[1].Beta = 1
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Train(train, train, TrainConfig{BatchSize: 16, Iterations: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc != 1 {
		t.Fatalf("single-class P@1 = %v", res.FinalAcc)
	}
}

// TestMaxSecondsBudget: the wall-clock budget stops a long run.
func TestMaxSecondsBudget(t *testing.T) {
	classes := 256
	ds := tinyDataset(t, classes)
	n, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Train(ds.Train, ds.Test, TrainConfig{
		Iterations: 1 << 30, MaxSeconds: 0.2, Seed: 1, EvalEvery: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds > 2 {
		t.Fatalf("MaxSeconds ignored: ran %.1fs", res.Seconds)
	}
}
