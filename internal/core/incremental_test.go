package core

import (
	"testing"

	"repro/internal/lsh"
	"repro/internal/sampling"
)

// TestIncrementalRehashMatchesFull: after training updates the weights,
// an incremental rebuild (memoized projections + sparse diffs, §4.2
// trick 3) must place every neuron in exactly the buckets a full re-hash
// would.
func TestIncrementalRehashMatchesFull(t *testing.T) {
	classes := 256
	ds := tinyDataset(t, classes)

	mk := func() *Network {
		n, err := NewNetwork(tinyConfig(classes))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	full := mk()
	incr := mk()
	if err := incr.EnableIncrementalRehash(1); err != nil {
		t.Fatal(err)
	}

	// Train both identically (single thread, deterministic gradients are
	// not required — only that both see the same weight trajectory; with
	// the same seed and 1 thread the vanilla strategy streams match).
	tc := TrainConfig{BatchSize: 32, Iterations: 30, Threads: 1, Seed: 5, EvalEvery: 0}
	if _, err := full.Train(ds.Train, ds.Test, tc); err != nil {
		t.Fatal(err)
	}
	if _, err := incr.Train(ds.Train, ds.Test, tc); err != nil {
		t.Fatal(err)
	}

	// Force both to rebuild now and compare every neuron's codes by
	// recomputing from weights on the incremental network.
	full.RebuildTables(1)
	incr.RebuildTables(1)

	fl, il := full.layers[1], incr.layers[1]
	nf := fl.fam.NumFuncs()
	fc := make([]uint32, nf)
	ic := make([]uint32, nf)
	for j := 0; j < fl.out; j++ {
		fl.fam.HashDense(fl.w[j], fc)
		sh := il.fam.(*lsh.IncrementalSimhash)
		sh.CodesFromProjections(il.memo.proj[j*nf:(j+1)*nf], ic)
		// The memoized projections must give the same codes as hashing
		// the live weights directly.
		il.fam.HashDense(il.w[j], fc)
		for f := range ic {
			if ic[f] != fc[f] {
				t.Fatalf("neuron %d func %d: incremental code %d != direct %d", j, f, ic[f], fc[f])
			}
		}
	}
}

// TestIncrementalRehashTrains: end-to-end training with incremental
// rebuilds must learn as well as the standard path.
func TestIncrementalRehashTrains(t *testing.T) {
	classes := 256
	ds := tinyDataset(t, classes)
	n, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.EnableIncrementalRehash(1); err != nil {
		t.Fatal(err)
	}
	res, err := n.Train(ds.Train, ds.Test, TrainConfig{Epochs: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc < 0.25 {
		t.Fatalf("incremental-rehash training P@1 = %.3f", res.FinalAcc)
	}
	if n.Rebuilds() == 0 {
		t.Fatal("no rebuilds happened")
	}
}

// TestEnableIncrementalRehashValidation covers misuse.
func TestEnableIncrementalRehashValidation(t *testing.T) {
	cfg := tinyConfig(64)
	cfg.Layers[1].Hash = lsh.KindDWTA
	cfg.Layers[1].Strategy = sampling.KindVanilla
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.EnableIncrementalRehash(1); err == nil {
		t.Fatal("DWTA layer accepted for incremental Simhash re-hash")
	}
	if err := n.EnableIncrementalRehash(0); err == nil {
		t.Fatal("dense layer accepted")
	}
}
