package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/optim"
	"repro/internal/rng"
)

func defaultThreads() int { return runtime.GOMAXPROCS(0) }

// TrainResult summarizes a training run.
type TrainResult struct {
	// Curve records P@1 on the evaluation subset against training
	// iterations and training-only wall-clock seconds (evaluation time
	// excluded, matching how the paper clocks convergence).
	Curve metrics.Curve
	// Iterations and Seconds are the totals for the run.
	Iterations int64
	Seconds    float64
	// FinalAcc is the last recorded P@1.
	FinalAcc float64
	// MeanActive[l] is the mean active-set size of layer l across the
	// run (≈1000 of 205K and ≈3000 of 670K in the paper's tasks).
	MeanActive []float64
	// Utilization is the mean worker busy fraction (Table 2 analog).
	Utilization float64
	// Rebuilds counts the hash-table reconstructions published during
	// this run.
	Rebuilds int
	// RebuildStallNS is the nanoseconds this run's training loop spent
	// blocked on table maintenance. In the default asynchronous lifecycle
	// that is only the batch-boundary snapshot copies (plus the atomic
	// swap publication); with SyncRebuild it is the entire stop-the-world
	// rebuild time. The §4.2 "Updating Overhead" analog: paper SLIDE
	// amortizes rebuilds by scheduling them rarely, this system
	// additionally takes them off the critical path.
	RebuildStallNS int64
	// RebuildBuildNS is the nanoseconds background shadow builds spent
	// overlapped with training batches (zero with SyncRebuild).
	RebuildBuildNS int64
	// RowsRehashed / RowsReused count, over this run's rebuilds, the
	// neuron rows freshly hashed vs re-inserted from the per-row code
	// memo — the measured dirty fraction of the incremental rebuild path
	// (RowsReused is 0 with Config.FullRebuild).
	RowsRehashed int64
	RowsReused   int64
	// TouchedPerIter is the mean number of weight cells that received a
	// gradient per iteration — the sparse payload a distributed replica
	// would communicate, vs NumParams for a dense synchronization (§6).
	TouchedPerIter float64
	// ExchangeNS is the nanoseconds the training loop spent blocked on
	// DeltaExchanger.Exchange — serialization, transport and the peer
	// barrier — included in Seconds. Zero for single-process runs. With
	// OverlapExchange it is only the barrier wait the next batch's
	// forward pass failed to hide.
	ExchangeNS int64
	// ExchangeHiddenNS is exchange time that ran concurrently with the
	// next batch's forward pass under OverlapExchange (zero otherwise) —
	// the communication the pipeline made invisible, the RebuildBuildNS
	// analog for the delta exchange.
	ExchangeHiddenNS int64
	// KernelForwards counts forward kernel executions by chosen form
	// ("gather", "scatter", "legacy") across the run — the
	// density-adaptive engine's decision record, one count per (layer,
	// element) pass.
	KernelForwards map[string]int64
}

// Train runs minibatch training (Algorithm 1). Batch elements are
// processed by a persistent worker pool — one goroutine slot per element,
// with private activation/gradient state (§3.1) — and gradients are
// written according to Config.UpdateMode.
func (n *Network) Train(train, test []dataset.Example, tc TrainConfig) (*TrainResult, error) {
	return n.TrainContext(context.Background(), train, test, tc)
}

// TrainContext is Train with cooperative cancellation: ctx is checked
// between batches, and on cancellation training stops cleanly — worker
// goroutines drain, the partially trained network remains valid, and the
// result accumulated so far is returned alongside ctx.Err(). Callers that
// only care about completed runs can treat any non-nil error as failure;
// callers driving training from a serving control plane can keep the
// partial *TrainResult.
func (n *Network) TrainContext(ctx context.Context, train, test []dataset.Example, tc TrainConfig) (*TrainResult, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("core: empty training split")
	}
	tc = tc.withDefaults(len(train))
	if tc.BatchSize > len(train) {
		tc.BatchSize = len(train)
	}
	if sc, ok := tc.Exchanger.(ShardCounter); ok && sc.Shards() != tc.Shards {
		return nil, fmt.Errorf("core: TrainConfig.Shards = %d but the exchanger's group has %d: the merged Adam step would be mis-averaged", tc.Shards, sc.Shards())
	}
	if tc.Compress < CompressFP32 || tc.Compress > CompressTopK {
		return nil, fmt.Errorf("core: unknown delta compression %d", int(tc.Compress))
	}
	if tc.Compress == CompressTopK && !(tc.TopKFrac > 0 && tc.TopKFrac <= 1) {
		return nil, fmt.Errorf("core: TopKFrac must be in (0, 1] for topk compression, got %g", tc.TopKFrac)
	}
	ex := tc.Exchanger
	overlap := tc.OverlapExchange && ex != nil
	workers := tc.Threads

	states := make([]*elemState, workers)
	for w := range states {
		st, err := newElemState(n, tc.Seed^n.cfg.Seed, w)
		if err != nil {
			return nil, err
		}
		if n.kern.Fused() {
			// Attach the worker's backward gradient shards up front so the
			// hot loop never takes the registry lock.
			st.shards = n.backShardSet(w)
		}
		states[w] = st
	}

	var records []*elemRecord
	if n.cfg.UpdateMode == optim.ModeBatchSync {
		records = make([]*elemRecord, tc.BatchSize)
		for i := range records {
			records[i] = &elemRecord{}
		}
	}

	// Overlap mode splits the fused forward+backward element pass in two
	// phases; captures park each element's forward activations between
	// them (the capturing worker's layer state is reused by the next
	// batch's forward before the backward runs).
	var caps []*fwdCapture
	if overlap {
		caps = make([]*fwdCapture, tc.BatchSize)
		for i := range caps {
			caps[i] = &fwdCapture{}
		}
	}

	// Persistent worker pool: every batch is announced to all workers
	// (one message per worker), and workers grab batch elements through a
	// shared atomic cursor so stragglers self-balance (§3.1: one thread
	// per batch element, private state, shared weights).
	type batchJob struct {
		idxs  []int
		done  *sync.WaitGroup
		phase trainPhase
	}
	jobs := make(chan batchJob, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := states[w]
			for job := range jobs {
				for {
					k := int(cursor.Add(1)) - 1
					if k >= len(job.idxs) {
						break
					}
					exm := &train[job.idxs[k]]
					var rec *elemRecord
					if records != nil {
						rec = records[k]
					}
					t0 := nowNano()
					switch job.phase {
					case phaseForward:
						n.forwardElem(st, exm.Features, exm.Labels, modeTrain)
						caps[k].captureFrom(st.layers)
						st.busyNS += nowNano() - t0
					case phaseBackward:
						loss := n.backwardFrom(st, caps[k].layers, exm.Features, exm.Labels, rec)
						st.busyNS += nowNano() - t0
						st.lossSum += loss
						st.lossCount++
					default: // phaseFused
						n.forwardElem(st, exm.Features, exm.Labels, modeTrain)
						loss := n.backwardElem(st, exm.Features, exm.Labels, rec)
						st.busyNS += nowNano() - t0
						st.lossSum += loss
						st.lossCount++
					}
				}
				job.done.Done()
			}
		}(w)
	}
	defer func() {
		close(jobs)
		wg.Wait()
	}()

	order := rng.NewStream(tc.Seed, 0x0d3).Perm(len(train))
	evalIdx := evalSubset(test, tc.EvalSamples, tc.Seed)
	touchedStart := n.touchedWeights
	rebuildsStart := n.rebuilds
	stallStart, buildStart := n.rebuildStallNS, n.rebuildBuildNS
	rehashStart, reuseStart := n.RebuildRowCounts()

	res := &TrainResult{Curve: metrics.Curve{Name: "p@1"}}
	var trainNS int64
	pos := 0
	var done sync.WaitGroup

	evalNow := func() float64 {
		p1 := n.evalP1(test, evalIdx, states)
		pt := Point{
			Iter:    n.step,
			Seconds: float64(trainNS) / 1e9,
			Value:   p1,
			Loss:    drainLoss(states),
		}
		res.Curve.Add(pt)
		if tc.OnEval != nil {
			tc.OnEval(pt)
		}
		return p1
	}

	runPhase := func(phase trainPhase, batch []int) {
		cursor.Store(0)
		done.Add(workers)
		for w := 0; w < workers; w++ {
			jobs <- batchJob{idxs: batch, done: &done, phase: phase}
		}
		done.Wait()
	}

	var ctxErr error
	// wantStop marks a local stop condition (cancellation, target
	// accuracy, deadline) in a sharded run; it is carried to the peers by
	// the next exchange, and stopAll — any shard wanting to stop — breaks
	// every replica after the same applied batch.
	var wantStop, stopAll bool
	start := n.step

	// Overlap-mode exchange pipeline: launch fires the exchange for the
	// just-extracted delta on a background goroutine (capturing this
	// step's Adam alpha — the merged delta belongs to the step it was
	// extracted at, however late it is applied); settle is the barrier
	// that joins it, splits its wall-clock into blocked vs hidden time,
	// and applies the merged delta.
	invB := 1 / float32(tc.BatchSize*tc.Shards)
	var pend *pendingExchange
	launch := func(d *SparseDelta, stop bool) *pendingExchange {
		p := &pendingExchange{
			ch:    make(chan exchangeResult, 1),
			alpha: n.adam.Alpha(n.step + 1),
			step:  n.step,
		}
		run := func() {
			x0 := nowNano()
			merged, all, err := ex.Exchange(p.step, d, stop)
			p.ch <- exchangeResult{merged: merged, stopAll: all, err: err, durNS: nowNano() - x0}
		}
		if testOverlapSyncJoin {
			run()
		} else {
			go run()
			// Hand the CPU to the exchange goroutine so its deposit (and
			// a TCP exchanger's frame write) lands BEFORE the next
			// forward starts. On a saturated or single-core machine the
			// goroutine would otherwise not be scheduled until settle
			// blocks — serializing the exchange after the forward and
			// hiding nothing.
			runtime.Gosched()
		}
		return p
	}
	settle := func() (bool, error) {
		p := pend
		pend = nil
		b0 := nowNano()
		r := <-p.ch
		blocked := nowNano() - b0
		res.ExchangeNS += blocked
		if hidden := r.durNS - blocked; hidden > 0 {
			res.ExchangeHiddenNS += hidden
		}
		if r.err != nil {
			return false, fmt.Errorf("core: delta exchange at step %d: %w", p.step, r.err)
		}
		if _, err := n.ApplyDelta(r.merged, p.alpha, invB, workers); err != nil {
			return false, err
		}
		return r.stopAll, nil
	}

	for n.step-start < tc.Iterations {
		if err := ctx.Err(); err != nil {
			ctxErr = err
			if ex == nil {
				break
			}
			wantStop = true
		}
		if pos+tc.BatchSize > len(order) {
			reshuffle(order, tc.Seed+uint64(n.step))
			pos = 0
		}
		batch := order[pos : pos+tc.BatchSize]
		pos += tc.BatchSize

		t0 := nowNano()
		if overlap {
			// Pipelined step: the forward runs while the previous
			// batch's exchange is in flight (it never reads gW, and no
			// weights step until the barrier below), then the merged
			// delta lands before backward — which does read weights —
			// needs the replicas realigned.
			runPhase(phaseForward, batch)
			if pend != nil {
				var sErr error
				stopAll, sErr = settle()
				if sErr != nil {
					ctxErr = sErr
					trainNS += nowNano() - t0
					break
				}
				if stopAll {
					trainNS += nowNano() - t0
					break
				}
			}
			n.beginBatch()
			runPhase(phaseBackward, batch)
			if records != nil {
				n.accumulateBatchSync(records, workers)
			}
			d := n.ExtractDelta(n.deltaScratch, workers)
			n.deltaScratch = d
			if tc.Compress == CompressTopK {
				d = n.compressTopK(d, tc.TopKFrac)
			}
			n.touchedWeights += d.Cells()
			pend = launch(d, wantStop)
		} else {
			alpha := n.adam.Alpha(n.step + 1)
			n.beginBatch()
			runPhase(phaseFused, batch)
			if records != nil {
				n.accumulateBatchSync(records, workers)
			}
			if ex == nil {
				n.applyAdamBatch(alpha, 1/float32(len(batch)), workers)
			} else {
				var exErr error
				stopAll, exErr = n.exchangeAndApply(ex, wantStop, alpha, len(batch), tc, workers, res)
				if exErr != nil {
					ctxErr = exErr
					break
				}
			}
		}
		n.step++
		if tc.SyncRebuild {
			r0 := nowNano()
			if n.maybeRebuild(workers) {
				n.rebuildStallNS += nowNano() - r0
			}
		} else {
			n.rebuildTick(workers)
		}
		trainNS += nowNano() - t0
		if stopAll {
			break
		}

		if tc.EvalEvery > 0 && (n.step-start)%tc.EvalEvery == 0 {
			// An overlapped exchange still in flight belongs to the step
			// being evaluated; join it first so the eval sees the same
			// weights a synchronous replica would.
			if pend != nil {
				s0 := nowNano()
				var sErr error
				stopAll, sErr = settle()
				trainNS += nowNano() - s0
				if sErr != nil {
					ctxErr = sErr
					break
				}
				if stopAll {
					break
				}
			}
			p1 := evalNow()
			if tc.TargetAcc > 0 && p1 >= tc.TargetAcc {
				if ex == nil {
					break
				}
				wantStop = true
			}
		}
		if tc.MaxSeconds > 0 && float64(trainNS)/1e9 >= tc.MaxSeconds {
			if ex == nil {
				break
			}
			wantStop = true
		}
	}

	// Join and apply any exchange still in flight (iterations exhausted,
	// or a break between launch and the next barrier): the group merged
	// that round on every replica, so skipping the apply would desync
	// this one's weights.
	if pend != nil {
		s0 := nowNano()
		if _, err := settle(); err != nil && ctxErr == nil {
			ctxErr = err
		}
		trainNS += nowNano() - s0
	}

	// A background shadow build may still be in flight when the loop
	// exits (cancellation, time budget, or the schedule firing near the
	// end); wait for it and publish so the network's tables always
	// reflect the last kicked rebuild and no builder goroutine outlives
	// the run. The wait is not charged to the training clock — the loop
	// is done competing with it.
	n.finishPendingRebuild()

	// Final evaluation unless the loop ended exactly on an eval. A
	// cancelled run skips it (the caller asked to stop, and evaluation
	// can be expensive), as does a config that opted out.
	if last := res.Curve.Last(); ctxErr == nil && !tc.SkipFinalEval &&
		(last.Iter != n.step || len(res.Curve.Points) == 0) {
		evalNow()
	}

	res.Iterations = n.step - start
	res.Seconds = float64(trainNS) / 1e9
	res.FinalAcc = res.Curve.Last().Value
	res.Rebuilds = n.rebuilds - rebuildsStart
	res.RebuildStallNS = n.rebuildStallNS - stallStart
	res.RebuildBuildNS = n.rebuildBuildNS - buildStart
	rehashEnd, reuseEnd := n.RebuildRowCounts()
	res.RowsRehashed = rehashEnd - rehashStart
	res.RowsReused = reuseEnd - reuseStart
	if res.Iterations > 0 {
		res.TouchedPerIter = float64(n.touchedWeights-touchedStart) / float64(res.Iterations)
	}
	res.MeanActive = meanActive(states, len(n.layers))
	res.Utilization = utilization(states, trainNS, workers)
	res.KernelForwards = drainKernelForms(states)
	return res, ctxErr
}

// drainKernelForms aggregates and resets the workers' per-form forward
// kernel counters.
func drainKernelForms(states []*elemState) map[string]int64 {
	out := make(map[string]int64)
	for _, st := range states {
		for f := range st.work.Forms {
			if c := st.work.Forms[f]; c != 0 {
				out[kernels.Form(f).String()] += c
				st.work.Forms[f] = 0
			}
		}
	}
	return out
}

// trainPhase selects what a worker does with a dispatched batch: the
// default fused forward+backward pass, or one half of the OverlapExchange
// pipeline's split step.
type trainPhase uint8

const (
	phaseFused trainPhase = iota
	phaseForward
	phaseBackward
)

// pendingExchange is one in-flight overlapped delta exchange: the
// background goroutine's result channel plus the step and Adam alpha the
// merged delta must be applied with.
type pendingExchange struct {
	ch    chan exchangeResult
	alpha float32
	step  int64
}

type exchangeResult struct {
	merged  *SparseDelta
	stopAll bool
	err     error
	durNS   int64 // wall-clock inside Exchange, for blocked-vs-hidden split
}

// testOverlapSyncJoin makes launch run the exchange inline instead of on
// a goroutine — the overlap pipeline with zero asynchrony. Tests flip it
// to pin that the background execution itself changes nothing.
var testOverlapSyncJoin bool

// exchangeAndApply is one sharded batch's update phase: extract the local
// SparseDelta, compress it if configured, exchange it for the group's
// merged delta, and apply the merged step averaged over the global batch
// (BatchSize*Shards). The returned stopAll reports whether any shard
// requested a coordinated stop this round.
func (n *Network) exchangeAndApply(ex DeltaExchanger, wantStop bool, alpha float32, batch int, tc TrainConfig, workers int, res *TrainResult) (bool, error) {
	d := n.ExtractDelta(n.deltaScratch, workers)
	n.deltaScratch = d
	if tc.Compress == CompressTopK {
		d = n.compressTopK(d, tc.TopKFrac)
	}
	n.touchedWeights += d.Cells()
	x0 := nowNano()
	merged, stopAll, err := ex.Exchange(n.step, d, wantStop)
	res.ExchangeNS += nowNano() - x0
	if err != nil {
		return false, fmt.Errorf("core: delta exchange at step %d: %w", n.step, err)
	}
	if _, err := n.ApplyDelta(merged, alpha, 1/float32(batch*tc.Shards), workers); err != nil {
		return false, err
	}
	return stopAll, nil
}

func reshuffle(order []int, seed uint64) {
	r := rng.NewStream(seed, 0x0d4)
	r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
}

// evalSubset picks a fixed random evaluation subset of the test split.
func evalSubset(test []dataset.Example, samples int, seed uint64) []int {
	if len(test) == 0 {
		return nil
	}
	if samples <= 0 {
		samples = 1024
	}
	if samples >= len(test) {
		idx := make([]int, len(test))
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	return rng.NewStream(seed, 0xe7a1).SampleK(len(test), samples)
}

func drainLoss(states []*elemState) float64 {
	var sum float64
	var count int64
	for _, st := range states {
		sum += st.lossSum
		count += st.lossCount
		st.lossSum, st.lossCount = 0, 0
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

func meanActive(states []*elemState, layers int) []float64 {
	out := make([]float64, layers)
	for li := 0; li < layers; li++ {
		var sum, count int64
		for _, st := range states {
			sum += st.activeSum[li]
			count += st.activeCount[li]
		}
		if count > 0 {
			out[li] = float64(sum) / float64(count)
		}
	}
	return out
}

func utilization(states []*elemState, wallNS int64, workers int) float64 {
	if wallNS <= 0 || workers == 0 {
		return 0
	}
	var busy int64
	for _, st := range states {
		busy += st.busyNS
		st.busyNS = 0
	}
	u := float64(busy) / (float64(wallNS) * float64(workers))
	if u > 1 {
		u = 1
	}
	return u
}

// Now returns the current time; exposed so experiments share one clock.
func Now() time.Time { return time.Now() }
