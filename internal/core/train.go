package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/optim"
	"repro/internal/rng"
)

func defaultThreads() int { return runtime.GOMAXPROCS(0) }

// TrainResult summarizes a training run.
type TrainResult struct {
	// Curve records P@1 on the evaluation subset against training
	// iterations and training-only wall-clock seconds (evaluation time
	// excluded, matching how the paper clocks convergence).
	Curve metrics.Curve
	// Iterations and Seconds are the totals for the run.
	Iterations int64
	Seconds    float64
	// FinalAcc is the last recorded P@1.
	FinalAcc float64
	// MeanActive[l] is the mean active-set size of layer l across the
	// run (≈1000 of 205K and ≈3000 of 670K in the paper's tasks).
	MeanActive []float64
	// Utilization is the mean worker busy fraction (Table 2 analog).
	Utilization float64
	// Rebuilds counts the hash-table reconstructions published during
	// this run.
	Rebuilds int
	// RebuildStallNS is the nanoseconds this run's training loop spent
	// blocked on table maintenance. In the default asynchronous lifecycle
	// that is only the batch-boundary snapshot copies (plus the atomic
	// swap publication); with SyncRebuild it is the entire stop-the-world
	// rebuild time. The §4.2 "Updating Overhead" analog: paper SLIDE
	// amortizes rebuilds by scheduling them rarely, this system
	// additionally takes them off the critical path.
	RebuildStallNS int64
	// RebuildBuildNS is the nanoseconds background shadow builds spent
	// overlapped with training batches (zero with SyncRebuild).
	RebuildBuildNS int64
	// TouchedPerIter is the mean number of weight cells that received a
	// gradient per iteration — the sparse payload a distributed replica
	// would communicate, vs NumParams for a dense synchronization (§6).
	TouchedPerIter float64
	// ExchangeNS is the nanoseconds the training loop spent blocked in
	// DeltaExchanger.Exchange — serialization, transport and the peer
	// barrier — included in Seconds. Zero for single-process runs.
	ExchangeNS int64
	// KernelForwards counts forward kernel executions by chosen form
	// ("gather", "scatter", "legacy") across the run — the
	// density-adaptive engine's decision record, one count per (layer,
	// element) pass.
	KernelForwards map[string]int64
}

// Train runs minibatch training (Algorithm 1). Batch elements are
// processed by a persistent worker pool — one goroutine slot per element,
// with private activation/gradient state (§3.1) — and gradients are
// written according to Config.UpdateMode.
func (n *Network) Train(train, test []dataset.Example, tc TrainConfig) (*TrainResult, error) {
	return n.TrainContext(context.Background(), train, test, tc)
}

// TrainContext is Train with cooperative cancellation: ctx is checked
// between batches, and on cancellation training stops cleanly — worker
// goroutines drain, the partially trained network remains valid, and the
// result accumulated so far is returned alongside ctx.Err(). Callers that
// only care about completed runs can treat any non-nil error as failure;
// callers driving training from a serving control plane can keep the
// partial *TrainResult.
func (n *Network) TrainContext(ctx context.Context, train, test []dataset.Example, tc TrainConfig) (*TrainResult, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("core: empty training split")
	}
	tc = tc.withDefaults(len(train))
	if tc.BatchSize > len(train) {
		tc.BatchSize = len(train)
	}
	if sc, ok := tc.Exchanger.(ShardCounter); ok && sc.Shards() != tc.Shards {
		return nil, fmt.Errorf("core: TrainConfig.Shards = %d but the exchanger's group has %d: the merged Adam step would be mis-averaged", tc.Shards, sc.Shards())
	}
	workers := tc.Threads

	states := make([]*elemState, workers)
	for w := range states {
		st, err := newElemState(n, tc.Seed^n.cfg.Seed, w)
		if err != nil {
			return nil, err
		}
		if n.kern.Fused() {
			// Attach the worker's backward gradient shards up front so the
			// hot loop never takes the registry lock.
			st.shards = n.backShardSet(w)
		}
		states[w] = st
	}

	var records []*elemRecord
	if n.cfg.UpdateMode == optim.ModeBatchSync {
		records = make([]*elemRecord, tc.BatchSize)
		for i := range records {
			records[i] = &elemRecord{}
		}
	}

	// Persistent worker pool: every batch is announced to all workers
	// (one message per worker), and workers grab batch elements through a
	// shared atomic cursor so stragglers self-balance (§3.1: one thread
	// per batch element, private state, shared weights).
	type batchJob struct {
		idxs []int
		done *sync.WaitGroup
	}
	jobs := make(chan batchJob, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := states[w]
			for job := range jobs {
				for {
					k := int(cursor.Add(1)) - 1
					if k >= len(job.idxs) {
						break
					}
					ex := &train[job.idxs[k]]
					var rec *elemRecord
					if records != nil {
						rec = records[k]
					}
					t0 := nowNano()
					n.forwardElem(st, ex.Features, ex.Labels, modeTrain)
					loss := n.backwardElem(st, ex.Features, ex.Labels, rec)
					st.busyNS += nowNano() - t0
					st.lossSum += loss
					st.lossCount++
				}
				job.done.Done()
			}
		}(w)
	}
	defer func() {
		close(jobs)
		wg.Wait()
	}()

	order := rng.NewStream(tc.Seed, 0x0d3).Perm(len(train))
	evalIdx := evalSubset(test, tc.EvalSamples, tc.Seed)
	touchedStart := n.touchedWeights
	rebuildsStart := n.rebuilds
	stallStart, buildStart := n.rebuildStallNS, n.rebuildBuildNS

	res := &TrainResult{Curve: metrics.Curve{Name: "p@1"}}
	var trainNS int64
	pos := 0
	var done sync.WaitGroup

	evalNow := func() float64 {
		p1 := n.evalP1(test, evalIdx, states)
		pt := Point{
			Iter:    n.step,
			Seconds: float64(trainNS) / 1e9,
			Value:   p1,
			Loss:    drainLoss(states),
		}
		res.Curve.Add(pt)
		if tc.OnEval != nil {
			tc.OnEval(pt)
		}
		return p1
	}

	var ctxErr error
	// wantStop marks a local stop condition (cancellation, target
	// accuracy, deadline) in a sharded run; it is carried to the peers by
	// the next exchange, and stopAll — any shard wanting to stop — breaks
	// every replica after the same applied batch.
	var wantStop, stopAll bool
	ex := tc.Exchanger
	start := n.step
	for n.step-start < tc.Iterations {
		if err := ctx.Err(); err != nil {
			ctxErr = err
			if ex == nil {
				break
			}
			wantStop = true
		}
		if pos+tc.BatchSize > len(order) {
			reshuffle(order, tc.Seed+uint64(n.step))
			pos = 0
		}
		batch := order[pos : pos+tc.BatchSize]
		pos += tc.BatchSize

		t0 := nowNano()
		alpha := n.adam.Alpha(n.step + 1)
		n.beginBatch()
		cursor.Store(0)
		done.Add(workers)
		for w := 0; w < workers; w++ {
			jobs <- batchJob{idxs: batch, done: &done}
		}
		done.Wait()
		if records != nil {
			n.accumulateBatchSync(records, workers)
		}
		if ex == nil {
			n.applyAdamBatch(alpha, 1/float32(len(batch)), workers)
		} else {
			var exErr error
			stopAll, exErr = n.exchangeAndApply(ex, wantStop, alpha, len(batch), tc.Shards, workers, res)
			if exErr != nil {
				ctxErr = exErr
				break
			}
		}
		n.step++
		if tc.SyncRebuild {
			r0 := nowNano()
			if n.maybeRebuild(workers) {
				n.rebuildStallNS += nowNano() - r0
			}
		} else {
			n.rebuildTick(workers)
		}
		trainNS += nowNano() - t0
		if stopAll {
			break
		}

		if tc.EvalEvery > 0 && (n.step-start)%tc.EvalEvery == 0 {
			p1 := evalNow()
			if tc.TargetAcc > 0 && p1 >= tc.TargetAcc {
				if ex == nil {
					break
				}
				wantStop = true
			}
		}
		if tc.MaxSeconds > 0 && float64(trainNS)/1e9 >= tc.MaxSeconds {
			if ex == nil {
				break
			}
			wantStop = true
		}
	}

	// A background shadow build may still be in flight when the loop
	// exits (cancellation, time budget, or the schedule firing near the
	// end); wait for it and publish so the network's tables always
	// reflect the last kicked rebuild and no builder goroutine outlives
	// the run. The wait is not charged to the training clock — the loop
	// is done competing with it.
	n.finishPendingRebuild()

	// Final evaluation unless the loop ended exactly on an eval. A
	// cancelled run skips it (the caller asked to stop, and evaluation
	// can be expensive), as does a config that opted out.
	if last := res.Curve.Last(); ctxErr == nil && !tc.SkipFinalEval &&
		(last.Iter != n.step || len(res.Curve.Points) == 0) {
		evalNow()
	}

	res.Iterations = n.step - start
	res.Seconds = float64(trainNS) / 1e9
	res.FinalAcc = res.Curve.Last().Value
	res.Rebuilds = n.rebuilds - rebuildsStart
	res.RebuildStallNS = n.rebuildStallNS - stallStart
	res.RebuildBuildNS = n.rebuildBuildNS - buildStart
	if res.Iterations > 0 {
		res.TouchedPerIter = float64(n.touchedWeights-touchedStart) / float64(res.Iterations)
	}
	res.MeanActive = meanActive(states, len(n.layers))
	res.Utilization = utilization(states, trainNS, workers)
	res.KernelForwards = drainKernelForms(states)
	return res, ctxErr
}

// drainKernelForms aggregates and resets the workers' per-form forward
// kernel counters.
func drainKernelForms(states []*elemState) map[string]int64 {
	out := make(map[string]int64)
	for _, st := range states {
		for f := range st.work.Forms {
			if c := st.work.Forms[f]; c != 0 {
				out[kernels.Form(f).String()] += c
				st.work.Forms[f] = 0
			}
		}
	}
	return out
}

// exchangeAndApply is one sharded batch's update phase: extract the local
// SparseDelta, exchange it for the group's merged delta, and apply the
// merged step averaged over the global batch (BatchSize*Shards). The
// returned stopAll reports whether any shard requested a coordinated stop
// this round.
func (n *Network) exchangeAndApply(ex DeltaExchanger, wantStop bool, alpha float32, batch, shards, workers int, res *TrainResult) (bool, error) {
	d := n.ExtractDelta(n.deltaScratch, workers)
	n.deltaScratch = d
	n.touchedWeights += d.Cells()
	x0 := nowNano()
	merged, stopAll, err := ex.Exchange(n.step, d, wantStop)
	res.ExchangeNS += nowNano() - x0
	if err != nil {
		return false, fmt.Errorf("core: delta exchange at step %d: %w", n.step, err)
	}
	if _, err := n.ApplyDelta(merged, alpha, 1/float32(batch*shards), workers); err != nil {
		return false, err
	}
	return stopAll, nil
}

func reshuffle(order []int, seed uint64) {
	r := rng.NewStream(seed, 0x0d4)
	r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
}

// evalSubset picks a fixed random evaluation subset of the test split.
func evalSubset(test []dataset.Example, samples int, seed uint64) []int {
	if len(test) == 0 {
		return nil
	}
	if samples <= 0 {
		samples = 1024
	}
	if samples >= len(test) {
		idx := make([]int, len(test))
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	return rng.NewStream(seed, 0xe7a1).SampleK(len(test), samples)
}

func drainLoss(states []*elemState) float64 {
	var sum float64
	var count int64
	for _, st := range states {
		sum += st.lossSum
		count += st.lossCount
		st.lossSum, st.lossCount = 0, 0
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

func meanActive(states []*elemState, layers int) []float64 {
	out := make([]float64, layers)
	for li := 0; li < layers; li++ {
		var sum, count int64
		for _, st := range states {
			sum += st.activeSum[li]
			count += st.activeCount[li]
		}
		if count > 0 {
			out[li] = float64(sum) / float64(count)
		}
	}
	return out
}

func utilization(states []*elemState, wallNS int64, workers int) float64 {
	if wallNS <= 0 || workers == 0 {
		return 0
	}
	var busy int64
	for _, st := range states {
		busy += st.busyNS
		st.busyNS = 0
	}
	u := float64(busy) / (float64(wallNS) * float64(workers))
	if u > 1 {
		u = 1
	}
	return u
}

// Now returns the current time; exposed so experiments share one clock.
func Now() time.Time { return time.Now() }
