package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/arena"
	"repro/internal/hashtable"
	"repro/internal/lsh"
	"repro/internal/rng"
)

// Layer is one fully connected layer: neuron-major weight rows, biases,
// Adam moments, and — when sampled — the LSH family plus (K, L) hash
// tables holding neuron ids keyed by their weight vectors (§3.1, Fig. 2).
type Layer struct {
	idx int // position in the network, for diagnostics
	in  int // fan-in (previous layer size or InputDim)
	out int // neuron count
	cfg LayerConfig

	// w[j] is neuron j's weight row (length in); mW/vW are the aligned
	// Adam moments and gW the shared batch-gradient buffer that worker
	// threads accumulate into (§3.1 HOGWILD accumulation). Depending on
	// Config.Layout the rows live in shared arena slabs or in one
	// allocation per neuron.
	w  [][]float32
	mW [][]float32
	vW [][]float32
	gW [][]float32
	// b, mB, vB, gB are biases, their moments and gradient.
	b  []float32
	mB []float32
	vB []float32
	gB []float32

	// touched[j] == batchEpoch marks neuron j as having accumulated
	// gradient this batch; colStamp (nil for small fan-in layers) marks
	// touched input columns the same way. Both receive racy same-value
	// stores from worker threads, which is benign.
	touched    []uint32
	colStamp   []uint32
	colList    []int32 // scratch for the per-batch touched-column list
	batchEpoch uint32

	// fam and tables implement the adaptive sampling; nil for dense
	// layers. memo, when non-nil, holds incremental Simhash re-hash
	// state (§4.2 trick 3; see incremental.go).
	fam    lsh.Family
	tables *hashtable.Table
	memo   *rehashMemo
}

// newLayer builds an initialized layer. Weight initialization is He-style
// for ReLU layers and Xavier-style otherwise, from the network seed.
func newLayer(idx, in int, cfg LayerConfig, netCfg Config, ar *arena.Arena, seed uint64) (*Layer, error) {
	l := &Layer{idx: idx, in: in, out: cfg.Size, cfg: cfg}
	switch netCfg.Layout {
	case LayoutContiguous:
		l.w = ar.AllocRows(cfg.Size, in, netCfg.PadRows)
		l.mW = ar.AllocRows(cfg.Size, in, netCfg.PadRows)
		l.vW = ar.AllocRows(cfg.Size, in, netCfg.PadRows)
		l.gW = ar.AllocRows(cfg.Size, in, netCfg.PadRows)
		l.b = ar.AllocAligned(cfg.Size)
		l.mB = ar.AllocAligned(cfg.Size)
		l.vB = ar.AllocAligned(cfg.Size)
		l.gB = ar.AllocAligned(cfg.Size)
	case LayoutPerNeuron:
		l.w = arena.AllocRowsPerNeuron(cfg.Size, in)
		l.mW = arena.AllocRowsPerNeuron(cfg.Size, in)
		l.vW = arena.AllocRowsPerNeuron(cfg.Size, in)
		l.gW = arena.AllocRowsPerNeuron(cfg.Size, in)
		l.b = make([]float32, cfg.Size)
		l.mB = make([]float32, cfg.Size)
		l.vB = make([]float32, cfg.Size)
		l.gB = make([]float32, cfg.Size)
	default:
		return nil, fmt.Errorf("core: unknown layout %v", netCfg.Layout)
	}
	l.touched = make([]uint32, cfg.Size)
	if in > colTrackThreshold {
		l.colStamp = make([]uint32, in)
	}

	std := float32(math.Sqrt(2.0 / float64(in))) // He init for ReLU
	if cfg.Activation != ActReLU {
		std = float32(math.Sqrt(1.0 / float64(in)))
	}
	r := rng.NewStream(seed, uint64(idx)+0x1a7e4)
	for j := 0; j < cfg.Size; j++ {
		row := l.w[j]
		for i := range row {
			row[i] = std * r.NormFloat32()
		}
	}

	if cfg.Sampled {
		fam, err := lsh.New(cfg.Hash, lsh.Params{
			Dim:            in,
			K:              cfg.K,
			L:              cfg.L,
			Seed:           seed ^ uint64(idx)*0x9e3779b97f4a7c15,
			SimhashDensity: cfg.SimhashDensity,
			BinSize:        cfg.BinSize,
			TopK:           cfg.TopK,
		})
		if err != nil {
			return nil, fmt.Errorf("core: layer %d: %w", idx, err)
		}
		l.fam = fam
		l.tables, err = hashtable.New(hashtable.Config{
			K:          cfg.K,
			L:          cfg.L,
			CodeBits:   fam.CodeBits(),
			RangePow:   cfg.RangePow,
			BucketSize: cfg.BucketSize,
			Policy:     cfg.Policy,
			Seed:       seed ^ (uint64(idx)+1)*0x517cc1b727220a95,
		})
		if err != nil {
			return nil, fmt.Errorf("core: layer %d: %w", idx, err)
		}
	}
	return l, nil
}

// In returns the layer fan-in.
func (l *Layer) In() int { return l.in }

// Out returns the neuron count.
func (l *Layer) Out() int { return l.out }

// Sampled reports whether the layer uses LSH sampling.
func (l *Layer) Sampled() bool { return l.tables != nil }

// Tables exposes the layer's hash tables (nil for dense layers), for
// diagnostics and experiments.
func (l *Layer) Tables() *hashtable.Table { return l.tables }

// Weights returns neuron j's weight row. The row aliases live training
// state.
func (l *Layer) Weights(j int) []float32 { return l.w[j] }

// Bias returns neuron j's bias.
func (l *Layer) Bias(j int) float32 { return l.b[j] }

// rebuildChunk is the number of neurons hashed per parallel rebuild chunk;
// it bounds the transient code-matrix memory at chunk*K*L*4 bytes.
const rebuildChunk = 4096

// RebuildTables recomputes every neuron's hash codes from its current
// weights and reinserts all ids (§4.2 "Updating Overhead": SLIDE
// periodically reconstructs the tables rather than moving ids on every
// update). Hashing parallelizes over neurons and insertion over tables,
// exactly the two lock-free axes §3.1 identifies.
func (l *Layer) RebuildTables(workers int) {
	if l.tables == nil {
		return
	}
	if l.memo != nil {
		l.rebuildIncremental(workers)
		return
	}
	l.tables.Clear()
	l.insertAll(workers, nil, nil)
}

// insertAll hashes all neurons in chunks and inserts them. When hashNS and
// insertNS are non-nil they receive the nanoseconds spent hashing and
// inserting (used by the Table 3 experiment).
func (l *Layer) insertAll(workers int, hashNS, insertNS *int64) {
	if workers < 1 {
		workers = 1
	}
	nf := l.fam.NumFuncs()
	codes := make([]uint32, rebuildChunk*nf)
	for base := 0; base < l.out; base += rebuildChunk {
		n := l.out - base
		if n > rebuildChunk {
			n = rebuildChunk
		}
		start := nowNano()
		parallelRange(workers, n, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				l.fam.HashDense(l.w[base+r], codes[r*nf:(r+1)*nf])
			}
		})
		mid := nowNano()
		lt := l.tables
		parallelRange(minInt(workers, lt.L()), lt.L(), func(lo, hi int) {
			for ti := lo; ti < hi; ti++ {
				for r := 0; r < n; r++ {
					lt.InsertInto(ti, uint32(base+r), codes[r*nf:(r+1)*nf])
				}
			}
		})
		end := nowNano()
		if hashNS != nil {
			*hashNS += mid - start
		}
		if insertNS != nil {
			*insertNS += end - mid
		}
	}
}

// parallelRange splits [0, n) into contiguous spans across workers
// goroutines and calls f(lo, hi) for each.
func parallelRange(workers, n int, f func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
