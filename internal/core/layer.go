package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/hashtable"
	"repro/internal/kernels"
	"repro/internal/lsh"
	"repro/internal/rng"
)

// Layer is one fully connected layer: neuron-major weight rows, biases,
// Adam moments, and — when sampled — the LSH family plus (K, L) hash
// tables holding neuron ids keyed by their weight vectors (§3.1, Fig. 2).
type Layer struct {
	idx int // position in the network, for diagnostics
	in  int // fan-in (previous layer size or InputDim)
	out int // neuron count
	cfg LayerConfig

	// w[j] is neuron j's weight row (length in); mW/vW are the aligned
	// Adam moments and gW the shared batch-gradient buffer that worker
	// threads accumulate into (§3.1 HOGWILD accumulation). Depending on
	// Config.Layout the rows live in shared arena slabs or in one
	// allocation per neuron.
	w  [][]float32
	mW [][]float32
	vW [][]float32
	gW [][]float32
	// b, mB, vB, gB are biases, their moments and gradient.
	b  []float32
	mB []float32
	vB []float32
	gB []float32

	// touched[j] == batchEpoch marks neuron j as having accumulated
	// gradient this batch; colStamp (nil for small fan-in layers) marks
	// touched input columns the same way. Both receive racy same-value
	// stores from worker threads, which is benign.
	touched    []uint32
	colStamp   []uint32
	colList    []int32 // scratch for the per-batch touched-column list
	rowList    []int32 // scratch for the per-batch touched-row list
	batchEpoch uint32

	// fam and tables implement the adaptive sampling; nil for dense
	// layers. tables is a swappable handle: rebuilds construct a detached
	// shadow table set and publish it atomically, so forward passes and
	// Predictor queries stay valid mid-rebuild on whichever set they
	// loaded. memo, when non-nil, holds incremental Simhash re-hash
	// state (§4.2 trick 3; see incremental.go).
	fam    lsh.Family
	tables *hashtable.Handle
	memo   *rehashMemo

	// mirror is the column-major weight mirror the scatter-form forward
	// kernel streams (nil when the layer never scatters: sampled layers,
	// layers whose input is always dense, and KernelLegacy networks).
	// Derived state: ApplyDelta/applyAdamFused dual-write stepped cells
	// and bulk weight restores call refreshMirror. The same one-resident-
	// copy trade snapBuf and the rehashMemo make, spent on forward speed
	// instead of rebuild speed.
	mirror *kernels.Mirror

	// snapBuf is the reusable weight-snapshot buffer for detached
	// rebuilds. At most one rebuild is in flight per network (the train
	// loop owns the pending build), so the buffer is free for reuse by
	// the time the next prepare runs. It trades one resident weight copy
	// per training sampled layer — the same trade the rehashMemo makes —
	// for not allocating out*in floats of garbage on every rebuild.
	snapBuf []float32

	// Dirty-row incremental rebuild state (§4.2 "Updating Overhead",
	// generalized to every hash family): codeMemo holds every neuron's
	// NumFuncs codes as of its last re-hash, and dirty[j] == hashEpoch
	// marks rows whose weights changed since — the same stamp discipline
	// touched/batchEpoch use for gradients. A rebuild re-hashes only the
	// stamped rows and re-inserts the rest from the memo; because a row's
	// codes are a pure function of its weight row, the resulting table is
	// bit-identical to a full from-scratch build. All nil when
	// Config.FullRebuild disables the path (dirty-marking then costs
	// nothing). dirtyList/dirtySnap/codesBuf are rebuild scratch reused
	// across generations, under the same one-rebuild-in-flight guarantee
	// snapBuf relies on.
	codeMemo  []uint32
	dirty     []uint32
	hashEpoch uint32
	dirtyList []int32
	dirtySnap []float32
	codesBuf  []uint32

	// rowsRehashed/rowsReused count rebuild rows freshly hashed vs
	// re-inserted from the memo, accumulated atomically because shadow
	// builds run on a background goroutine (TrainResult surfaces them).
	rowsRehashed int64
	rowsReused   int64
}

// newLayer builds an initialized layer. Weight initialization is He-style
// for ReLU layers and Xavier-style otherwise, from the network seed.
func newLayer(idx, in int, cfg LayerConfig, netCfg Config, ar *arena.Arena, seed uint64) (*Layer, error) {
	l := &Layer{idx: idx, in: in, out: cfg.Size, cfg: cfg}
	switch netCfg.Layout {
	case LayoutContiguous:
		l.w = ar.AllocRows(cfg.Size, in, netCfg.PadRows)
		l.mW = ar.AllocRows(cfg.Size, in, netCfg.PadRows)
		l.vW = ar.AllocRows(cfg.Size, in, netCfg.PadRows)
		l.gW = ar.AllocRows(cfg.Size, in, netCfg.PadRows)
		l.b = ar.AllocAligned(cfg.Size)
		l.mB = ar.AllocAligned(cfg.Size)
		l.vB = ar.AllocAligned(cfg.Size)
		l.gB = ar.AllocAligned(cfg.Size)
	case LayoutPerNeuron:
		l.w = arena.AllocRowsPerNeuron(cfg.Size, in)
		l.mW = arena.AllocRowsPerNeuron(cfg.Size, in)
		l.vW = arena.AllocRowsPerNeuron(cfg.Size, in)
		l.gW = arena.AllocRowsPerNeuron(cfg.Size, in)
		l.b = make([]float32, cfg.Size)
		l.mB = make([]float32, cfg.Size)
		l.vB = make([]float32, cfg.Size)
		l.gB = make([]float32, cfg.Size)
	default:
		return nil, fmt.Errorf("core: unknown layout %v", netCfg.Layout)
	}
	l.touched = make([]uint32, cfg.Size)
	if in > colTrackThreshold {
		l.colStamp = make([]uint32, in)
	}

	std := float32(math.Sqrt(2.0 / float64(in))) // He init for ReLU
	if cfg.Activation != ActReLU {
		std = float32(math.Sqrt(1.0 / float64(in)))
	}
	r := rng.NewStream(seed, uint64(idx)+0x1a7e4)
	for j := 0; j < cfg.Size; j++ {
		row := l.w[j]
		for i := range row {
			row[i] = std * r.NormFloat32()
		}
	}

	if cfg.Sampled {
		fam, err := lsh.New(cfg.Hash, lsh.Params{
			Dim:            in,
			K:              cfg.K,
			L:              cfg.L,
			Seed:           seed ^ uint64(idx)*0x9e3779b97f4a7c15,
			SimhashDensity: cfg.SimhashDensity,
			BinSize:        cfg.BinSize,
			TopK:           cfg.TopK,
		})
		if err != nil {
			return nil, fmt.Errorf("core: layer %d: %w", idx, err)
		}
		l.fam = fam
		tables, err := hashtable.New(hashtable.Config{
			K:          cfg.K,
			L:          cfg.L,
			CodeBits:   fam.CodeBits(),
			RangePow:   cfg.RangePow,
			BucketSize: cfg.BucketSize,
			Policy:     cfg.Policy,
			Seed:       seed ^ (uint64(idx)+1)*0x517cc1b727220a95,
		})
		if err != nil {
			return nil, fmt.Errorf("core: layer %d: %w", idx, err)
		}
		l.tables = hashtable.NewHandle(tables)
		if !netCfg.FullRebuild {
			// Every row starts dirty: the construction-time build hashes
			// the whole layer and seeds the memo.
			l.codeMemo = ar.AllocUint32(cfg.Size * fam.NumFuncs())
			l.dirty = make([]uint32, cfg.Size)
			l.hashEpoch = 1
			for j := range l.dirty {
				l.dirty[j] = 1
			}
		}
	}
	return l, nil
}

// mirrorMaxOut caps the width of layers that maintain a column-major
// weight mirror. The mirror doubles the layer's weight memory, which is
// cheap for the paper architecture's narrow hidden layers (128 neurons)
// and prohibitive for the wide sampled output layer — whose ~0.5% active
// fraction makes the gather form right anyway.
const mirrorMaxOut = 4096

// initMirror builds the layer's column-major mirror when the scatter form
// can ever be selected for it: the layer computes its full output every
// pass (not sampled), is narrow enough for the doubled weight memory, and
// sparseIn reports that its input can arrive sparse (the first layer's
// example features, or a preceding sampled layer's active set). The
// mirror's cells are stored in format (fp32 exact or bf16 quantized) and
// its slab comes from the network arena, cache-line aligned.
func (l *Layer) initMirror(sparseIn bool, format kernels.MirrorFormat, ar *arena.Arena) {
	if l.Sampled() || !sparseIn || l.out > mirrorMaxOut {
		return
	}
	l.mirror = kernels.NewMirrorFormat(l.in, l.out, format, ar)
	l.mirror.Rebuild(l.w)
}

// refreshMirror re-derives the mirror after a bulk weight restore.
func (l *Layer) refreshMirror() {
	if l.mirror != nil {
		l.mirror.Rebuild(l.w)
	}
}

// In returns the layer fan-in.
func (l *Layer) In() int { return l.in }

// Out returns the neuron count.
func (l *Layer) Out() int { return l.out }

// Sampled reports whether the layer uses LSH sampling.
func (l *Layer) Sampled() bool { return l.tables != nil }

// Tables exposes the layer's current hash table set (nil for dense
// layers), for diagnostics and experiments. During a background rebuild
// the returned set is the last published one; it stays valid after a
// swap.
func (l *Layer) Tables() *hashtable.Table {
	if l.tables == nil {
		return nil
	}
	return l.tables.Load()
}

// Weights returns neuron j's weight row. The row aliases live training
// state.
func (l *Layer) Weights(j int) []float32 { return l.w[j] }

// Bias returns neuron j's bias.
func (l *Layer) Bias(j int) float32 { return l.b[j] }

// rebuildChunk is the number of neurons hashed per parallel rebuild chunk;
// it bounds the transient code-matrix memory at chunk*K*L*4 bytes.
const rebuildChunk = 4096

// Table lifecycle (§4.2 "Updating Overhead", made non-blocking): a
// rebuild never mutates the live table set. It (1) prepares a read-only
// view of the weights at a batch boundary — a chunked snapshot copy, or
// for memo layers a sparse projection diff — then (2) hashes and inserts
// every neuron into a detached generation-seeded shadow set, and (3)
// publishes the shadow with one atomic handle store. Only step (1) has to
// run while training is quiesced; steps (2)-(3) are safe concurrently
// with HOGWILD weight writes and with live Predictor traffic, which is
// what lets Network overlap the expensive build with training batches.

// rebuildSync runs the full lifecycle inline: prepare, build the
// generation-gen shadow from the prepared state, publish.
func (l *Layer) rebuildSync(gen uint64, workers int) {
	if l.tables == nil {
		return
	}
	prep := l.prepareRebuild(workers, false)
	l.tables.Store(l.buildShadow(gen, prep, workers))
}

// rebuildPrep carries what a rebuild's synchronous (quiesced-weights)
// prepare phase hands to the — possibly background — build phase.
type rebuildPrep struct {
	// snap is the full out*in weight snapshot a detached full rebuild
	// hashes from; nil on the incremental and inline paths.
	snap []float32
	// dirty lists the rows whose codes drifted since the last rebuild
	// (ascending); dirtySnap holds exactly those weight rows compacted
	// back to back in the same order, so the detached incremental build
	// reads no live weights. Both alias per-layer scratch that stays
	// stable until the next prepare.
	dirty     []int32
	dirtySnap []float32
}

// prepareRebuild is the synchronous (quiesced-weights) part of a rebuild.
// Memo layers fold the sparse weight diff of their dirty rows into the
// memoized projections; code-memo layers collect the dirty-row list and
// compact-copy those rows; full-rebuild layers snapshot everything when
// the build is detached (copySnap) and hash live rows inline otherwise —
// with no concurrent writers the result is identical either way.
func (l *Layer) prepareRebuild(workers int, copySnap bool) rebuildPrep {
	if l.memo != nil {
		l.diffIncremental(workers)
		return rebuildPrep{}
	}
	if l.codeMemo != nil {
		dirty := l.collectDirtyRows(workers)
		need := len(dirty) * l.in
		if cap(l.dirtySnap) < need {
			l.dirtySnap = make([]float32, need)
		}
		snap := l.dirtySnap[:need]
		parallelRange(workers, len(dirty), func(lo, hi int) {
			for k := lo; k < hi; k++ {
				copy(snap[k*l.in:(k+1)*l.in], l.w[dirty[k]])
			}
		})
		return rebuildPrep{dirty: dirty, dirtySnap: snap}
	}
	if !copySnap {
		return rebuildPrep{}
	}
	return rebuildPrep{snap: l.snapshotRows(workers)}
}

// collectDirtyRows gathers the rows stamped dirty in the current hash
// epoch into the reusable dirtyList and advances the epoch, so rows the
// next batches touch land in the next rebuild's set. Must run with
// training quiesced. On the rare epoch wrap all stamps are cleared so
// stale values can never collide with re-issued epochs (the beginBatch
// pattern).
func (l *Layer) collectDirtyRows(workers int) []int32 {
	l.dirtyList = scanStamps(l.dirty, l.hashEpoch, workers, l.dirtyList)
	l.hashEpoch++
	if l.hashEpoch == 0 {
		clear(l.dirty)
		l.hashEpoch = 1
	}
	return l.dirtyList
}

// markAllRowsDirty invalidates the whole code memo — called after bulk
// weight restores, where every memoized code may be stale.
func (l *Layer) markAllRowsDirty() {
	if l.dirty == nil {
		return
	}
	for j := range l.dirty {
		l.dirty[j] = l.hashEpoch
	}
}

// snapshotRows copies every neuron's weight row into the layer's flat
// out*in snapshot buffer, parallelized across workers. It must run at a
// batch boundary (training workers quiesced): the copy is then the only
// part of an asynchronous rebuild that reads live weights, which keeps
// the detached build race-free against HOGWILD writers by construction —
// and it is the only synchronous cost the async lifecycle leaves in the
// training loop, so it is one parallel pass with a single join and no
// steady-state allocation.
func (l *Layer) snapshotRows(workers int) []float32 {
	if l.snapBuf == nil {
		l.snapBuf = make([]float32, l.out*l.in)
	}
	snap := l.snapBuf
	parallelRange(workers, l.out, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			copy(snap[j*l.in:(j+1)*l.in], l.w[j])
		}
	})
	return snap
}

// buildShadow constructs the generation-gen shadow table set without
// publishing it. Memo layers derive codes from the (quiesced) memoized
// projections; code-memo layers re-hash only the prepared dirty rows and
// insert everything from the memo; full-rebuild layers hash prep.snap
// when non-nil or the live weight rows when nil. Building from prepared
// state touches no live training state, so it may run on a background
// goroutine while training and inference continue on the published set.
func (l *Layer) buildShadow(gen uint64, prep rebuildPrep, workers int) *hashtable.Table {
	shadow := l.tables.Load().Shadow(gen)
	if l.memo != nil {
		l.insertFromMemo(shadow, workers)
		return shadow
	}
	if l.codeMemo != nil {
		l.rehashDirty(prep, workers)
		l.insertFromCodes(shadow, workers)
		atomic.AddInt64(&l.rowsRehashed, int64(len(prep.dirty)))
		atomic.AddInt64(&l.rowsReused, int64(l.out-len(prep.dirty)))
		return shadow
	}
	if prep.snap != nil {
		l.insertAllBlock(shadow, prep.snap, workers)
	} else {
		l.insertAll(shadow, func(j int) []float32 { return l.w[j] }, workers)
	}
	atomic.AddInt64(&l.rowsRehashed, int64(l.out))
	return shadow
}

// rehashDirty batch-hashes the prepared dirty-row snapshot block-wise
// (lsh.Family.HashDenseRows) and scatters the fresh codes into the code
// memo. Rows outside prep.dirty keep their memoized codes — exactly what
// a full rebuild would recompute, since a row's codes are a pure
// function of its weight row.
func (l *Layer) rehashDirty(prep rebuildPrep, workers int) {
	if workers < 1 {
		workers = 1
	}
	nf := l.fam.NumFuncs()
	codes := l.codesScratch(nf)
	for base := 0; base < len(prep.dirty); base += rebuildChunk {
		n := min(rebuildChunk, len(prep.dirty)-base)
		block := prep.dirtySnap[base*l.in:]
		parallelRange(workers, n, func(lo, hi int) {
			l.fam.HashDenseRows(block[lo*l.in:hi*l.in], hi-lo, codes[lo*nf:hi*nf])
			for k := lo; k < hi; k++ {
				j := int(prep.dirty[base+k])
				copy(l.codeMemo[j*nf:(j+1)*nf], codes[k*nf:(k+1)*nf])
			}
		})
	}
}

// insertFromCodes inserts every neuron into dst straight from the code
// memo, parallel over tables (the lock-free axis §3.1 identifies). It
// reads no weights at all — the incremental build's hash cost is
// proportional to the dirty fraction while this pass, cheap flat-slab
// appends, covers all rows.
func (l *Layer) insertFromCodes(dst *hashtable.Table, workers int) {
	nf := l.fam.NumFuncs()
	memo := l.codeMemo
	parallelRange(min(workers, dst.L()), dst.L(), func(lo, hi int) {
		for ti := lo; ti < hi; ti++ {
			for j := 0; j < l.out; j++ {
				dst.InsertInto(ti, uint32(j), memo[j*nf:(j+1)*nf])
			}
		}
	})
}

// codesScratch returns the layer's reusable rebuildChunk*nf code buffer
// (one rebuild in flight per network, so reuse across generations is
// safe — the snapBuf argument).
func (l *Layer) codesScratch(nf int) []uint32 {
	if len(l.codesBuf) < rebuildChunk*nf {
		l.codesBuf = make([]uint32, rebuildChunk*nf)
	}
	return l.codesBuf
}

// insertAll hashes all rows in chunks and inserts them into dst. Hashing
// parallelizes over neurons and insertion over tables, exactly the two
// lock-free axes §3.1 identifies.
func (l *Layer) insertAll(dst *hashtable.Table, row func(j int) []float32, workers int) {
	if workers < 1 {
		workers = 1
	}
	nf := l.fam.NumFuncs()
	codes := l.codesScratch(nf)
	for base := 0; base < l.out; base += rebuildChunk {
		n := min(rebuildChunk, l.out-base)
		parallelRange(workers, n, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				l.fam.HashDense(row(base+r), codes[r*nf:(r+1)*nf])
			}
		})
		insertChunk(dst, uint32(base), n, nf, codes, workers)
	}
}

// insertAllBlock is insertAll over a contiguous row-major weight block,
// which lets the hash phase run block-wise through HashDenseRows.
func (l *Layer) insertAllBlock(dst *hashtable.Table, block []float32, workers int) {
	if workers < 1 {
		workers = 1
	}
	nf := l.fam.NumFuncs()
	codes := l.codesScratch(nf)
	for base := 0; base < l.out; base += rebuildChunk {
		n := min(rebuildChunk, l.out-base)
		sub := block[base*l.in:]
		parallelRange(workers, n, func(lo, hi int) {
			l.fam.HashDenseRows(sub[lo*l.in:hi*l.in], hi-lo, codes[lo*nf:hi*nf])
		})
		insertChunk(dst, uint32(base), n, nf, codes, workers)
	}
}

// insertChunk inserts one hashed chunk of n rows (ids base..base+n-1,
// codes row-major in codes) into every table, parallel over tables.
func insertChunk(dst *hashtable.Table, base uint32, n, nf int, codes []uint32, workers int) {
	parallelRange(min(workers, dst.L()), dst.L(), func(lo, hi int) {
		for ti := lo; ti < hi; ti++ {
			for r := 0; r < n; r++ {
				dst.InsertInto(ti, base+uint32(r), codes[r*nf:(r+1)*nf])
			}
		}
	})
}

// parallelRange splits [0, n) into contiguous spans across workers
// goroutines and calls f(lo, hi) for each.
func parallelRange(workers, n int, f func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
