package core

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"repro/internal/sparse"
)

// seededPredict is a tiny helper: one seeded sampled prediction.
func seededPredict(t testing.TB, p *Predictor, x sparse.Vector, k int, seed uint64) ([]int32, []float32) {
	t.Helper()
	ids, scores, err := p.PredictSampled(x, k, PredictOpts{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ids, scores
}

// TestPredictSampledSeededDeterministic is the tentpole contract: same
// input + same seed ⇒ bitwise-identical ids and scores, no matter which
// pooled state serves the call, what traffic came before, or which
// Predictor instance is used.
func TestPredictSampledSeededDeterministic(t *testing.T) {
	n, xs, _ := trainedNet(t, 128)
	p, err := n.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	const k, seed = 5, 7
	want := make([][]int32, 20)
	wantScores := make([][]float32, 20)
	for i := range want {
		want[i], wantScores[i] = seededPredict(t, p, xs[i], k, seed)
	}

	// Drift the pooled states with unseeded traffic, then replay.
	for i := 0; i < 50; i++ {
		if _, _, err := p.PredictSampled(xs[i%len(xs)], k); err != nil {
			t.Fatal(err)
		}
	}
	for i := range want {
		gotIDs, gotScores := seededPredict(t, p, xs[i], k, seed)
		if !eqIDs(want[i], gotIDs) || !eqScores(wantScores[i], gotScores) {
			t.Fatalf("seeded replay diverged at example %d after unseeded traffic: got %v/%v want %v/%v",
				i, gotIDs, gotScores, want[i], wantScores[i])
		}
	}

	// A completely fresh Predictor over the same network agrees too.
	fresh, err := n.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		gotIDs, gotScores := seededPredict(t, fresh, xs[i], k, seed)
		if !eqIDs(want[i], gotIDs) || !eqScores(wantScores[i], gotScores) {
			t.Fatalf("fresh predictor diverged at example %d", i)
		}
	}

	// The seed must actually steer the draw: across 20 examples, seed 8
	// must differ from seed 7 somewhere (vanilla probe order changes).
	differs := false
	for i := range want {
		gotIDs, _ := seededPredict(t, p, xs[i], k, seed+1)
		if !eqIDs(want[i], gotIDs) {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("seeds 7 and 8 returned identical ids on all 20 examples — seed is not reaching the strategies")
	}
}

// TestPredictSampledSeededConcurrent hammers one shared Predictor with
// mixed seeded and unseeded traffic from many goroutines; every seeded
// result must match the golden single-threaded answer. Run under -race
// this is the determinism-under-concurrency proof.
func TestPredictSampledSeededConcurrent(t *testing.T) {
	n, xs, _ := trainedNet(t, 128)
	p, err := n.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	const nGolden = 8
	goldenIDs := make([][]int32, nGolden)
	goldenScores := make([][]float32, nGolden)
	for i := 0; i < nGolden; i++ {
		goldenIDs[i], goldenScores[i] = seededPredict(t, p, xs[i], k, uint64(100+i))
	}

	const goroutines = 16
	iters := 40
	if testing.Short() {
		iters = 10
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g*13 + it) % nGolden
				if it%3 == 2 {
					// Interleave unseeded traffic to drift pool state.
					if _, _, err := p.PredictSampled(xs[(g+it)%len(xs)], k); err != nil {
						t.Errorf("unseeded: %v", err)
						return
					}
					continue
				}
				ids, scores, err := p.PredictSampled(xs[i], k, PredictOpts{Seed: uint64(100 + i)})
				if err != nil {
					t.Errorf("seeded: %v", err)
					return
				}
				if !eqIDs(goldenIDs[i], ids) || !eqScores(goldenScores[i], scores) {
					t.Errorf("goroutine %d iter %d: seeded result diverged from golden on example %d",
						g, it, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPredictSampledSeededSaveLoadRoundTrip: every process that loads the
// same SaveModel bytes gives bitwise-identical seeded sampled predictions
// — the property that makes seeded responses cacheable across serving
// restarts and replicas. (The training process itself is not pinned to
// its saved copy: its live tables reflect the weights at the last
// scheduled rebuild, and reservoir streams advance across rebuilds by
// design, whereas LoadModel rebuilds from the final weights with fresh
// streams — deterministically, which is what this test verifies.)
func TestPredictSampledSeededSaveLoadRoundTrip(t *testing.T) {
	n, xs, _ := trainedNet(t, 128)
	var buf bytes.Buffer
	if err := n.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	m1, err := LoadModel(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := m1.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m2.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	// Drift one replica's pool with unseeded traffic before comparing.
	for i := 0; i < 30; i++ {
		if _, _, err := p1.PredictSampled(xs[i], 5); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		wantIDs, wantScores := seededPredict(t, p1, xs[i], 5, 42)
		gotIDs, gotScores := seededPredict(t, p2, xs[i], 5, 42)
		if !eqIDs(wantIDs, gotIDs) || !eqScores(wantScores, gotScores) {
			t.Fatalf("two loads of one model file diverged at example %d: got %v want %v",
				i, gotIDs, wantIDs)
		}
	}
}

// TestPredictBatchSampledSeeded pins the batch contract: repeated seeded
// batches are identical, a one-element seeded batch matches the seeded
// single-example path, and unseeded batches are untouched.
func TestPredictBatchSampledSeeded(t *testing.T) {
	n, xs, _ := trainedNet(t, 128)
	p, err := n.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const k, seed = 4, 99
	batch := xs[:100]

	ids1, scores1, err := p.PredictBatchSampled(ctx, batch, k, PredictOpts{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	// Drift pool state, then rerun.
	for i := 0; i < 30; i++ {
		if _, _, err := p.PredictSampled(xs[i], k); err != nil {
			t.Fatal(err)
		}
	}
	ids2, scores2, err := p.PredictBatchSampled(ctx, batch, k, PredictOpts{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if !eqIDs(ids1[i], ids2[i]) || !eqScores(scores1[i], scores2[i]) {
			t.Fatalf("seeded batch not reproducible at element %d", i)
		}
	}

	// Element 0 of a seeded batch uses the request seed itself.
	single, singleScores := seededPredict(t, p, batch[0], k, seed)
	if !eqIDs(single, ids1[0]) || !eqScores(singleScores, scores1[0]) {
		t.Fatalf("one-element equivalence broke: batch[0] %v/%v, single %v/%v",
			ids1[0], scores1[0], single, singleScores)
	}
}

// TestSeededCallsDoNotPerturbUnseededPool pins the quarantine: seeded
// calls draw from a separate state pool, so a fresh Predictor's eagerly
// built worker-0 state keeps its pristine streams through any amount of
// seeded traffic — the first unseeded sampled call still matches the
// pre-redesign worker-0 draw bitwise.
func TestSeededCallsDoNotPerturbUnseededPool(t *testing.T) {
	if raceEnabled {
		t.Skip("under -race, sync.Pool drops Put items so the worker-0 state is not retained")
	}
	n, xs, _ := trainedNet(t, 128)
	const k = 5
	wantIDs, wantScores := preRedesignPredict(t, n, xs[0], k, modeEvalSampled)
	p, err := n.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		seededPredict(t, p, xs[i], k, uint64(i))
	}
	gotIDs, gotScores, err := p.PredictSampled(xs[0], k)
	if err != nil {
		t.Fatal(err)
	}
	if !eqIDs(wantIDs, gotIDs) || !eqScores(wantScores, gotScores) {
		t.Fatalf("seeded traffic perturbed the unseeded worker-0 stream: got %v/%v want %v/%v",
			gotIDs, gotScores, wantIDs, wantScores)
	}
}

// BenchmarkPredictSampledSeeded tracks the cost of the reseed path next
// to the pooled unseeded baseline (BenchmarkPredictSampled): the reseed
// itself is allocation-free, so allocs/op should match the pooled path.
func BenchmarkPredictSampledSeeded(b *testing.B) {
	n, xs, _ := trainedNet(b, 512)
	p, err := n.NewPredictor()
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := p.PredictSampled(xs[0], 5, PredictOpts{Seed: 1}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.PredictSampled(xs[i%len(xs)], 5, PredictOpts{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
