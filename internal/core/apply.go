package core

// colTrackThreshold is the fan-in above which a layer tracks which input
// columns were touched during a batch. Below it (e.g. the 128-wide hidden
// input of the output layer) scanning the full row is cheaper than
// maintaining a column list.
const colTrackThreshold = 512

// beginBatch advances every layer's batch epoch, invalidating the touched
// neuron/column stamps in O(1).
func (n *Network) beginBatch() {
	for _, l := range n.layers {
		l.batchEpoch++
		if l.batchEpoch == 0 { // stamp wrap: clear and restart
			for i := range l.touched {
				l.touched[i] = 0
			}
			for i := range l.colStamp {
				l.colStamp[i] = 0
			}
			l.batchEpoch = 1
		}
	}
}

// applyAdamBatch performs the per-batch Adam step over exactly the
// weights that accumulated gradient: touched neurons' rows restricted to
// touched input columns (§3.1: "the fraction of weights that needs to be
// updated is s² only"). Gradients are averaged over the batch (invB) and
// the buffers are zeroed as they are consumed. Work is parallelized over
// neurons; each row has a single writer.
//
// The number of non-zero gradient cells applied is accumulated into
// n.touchedWeights: this is exactly the sparse-gradient payload a
// distributed SLIDE replica would ship per batch (§6 future work —
// "communication costs are minimal due to sparse gradients"), surfaced
// as TrainResult.TouchedPerIter and by the dist-comm experiment.
func (n *Network) applyAdamBatch(alpha, invB float32, workers int) {
	for _, l := range n.layers {
		n.touchedWeights += l.applyAdam(n, alpha, invB, workers)
	}
}

func (l *Layer) applyAdam(n *Network, alpha, invB float32, workers int) int64 {
	epoch := l.batchEpoch
	cols := l.touchedColumns(workers)
	adam := n.adam
	counts := make([]int64, workers)
	parallelIndexed(workers, l.out, func(wk, lo, hi int) {
		var applied int64
		for j := lo; j < hi; j++ {
			if l.touched[j] != epoch {
				continue
			}
			w, m, v, g := l.w[j], l.mW[j], l.vW[j], l.gW[j]
			if cols == nil {
				for i := range g {
					if gi := g[i]; gi != 0 {
						adam.Step1(&w[i], &m[i], &v[i], gi*invB, alpha)
						g[i] = 0
						applied++
					}
				}
			} else {
				for _, i := range cols {
					if gi := g[i]; gi != 0 {
						adam.Step1(&w[i], &m[i], &v[i], gi*invB, alpha)
						g[i] = 0
						applied++
					}
				}
			}
			if gb := l.gB[j]; gb != 0 {
				adam.Step1(&l.b[j], &l.mB[j], &l.vB[j], gb*invB, alpha)
				l.gB[j] = 0
				applied++
			}
		}
		counts[wk] = applied
	})
	var total int64
	for _, c := range counts {
		total += c
	}
	return total
}

// touchedColumns rebuilds the per-batch touched-column list from the
// column stamps, or returns nil when the layer iterates full rows.
func (l *Layer) touchedColumns(workers int) []int32 {
	if l.colStamp == nil {
		return nil
	}
	epoch := l.batchEpoch
	if workers < 1 {
		workers = 1
	}
	parts := make([][]int32, workers)
	parallelIndexed(workers, len(l.colStamp), func(w, lo, hi int) {
		var local []int32
		for i := lo; i < hi; i++ {
			if l.colStamp[i] == epoch {
				local = append(local, int32(i))
			}
		}
		parts[w] = local
	})
	l.colList = l.colList[:0]
	for _, p := range parts {
		l.colList = append(l.colList, p...)
	}
	return l.colList
}
