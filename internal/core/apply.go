package core

// colTrackThreshold is the fan-in above which a layer tracks which input
// columns were touched during a batch. Below it (e.g. the 128-wide hidden
// input of the output layer) scanning the full row is cheaper than
// maintaining a column list.
const colTrackThreshold = 512

// beginBatch advances every layer's batch epoch, invalidating the touched
// neuron/column stamps in O(1). On the rare epoch wrap the layer stamps
// and every registered backward shard's stamps are cleared, since stale
// stamps could otherwise collide with re-issued epoch values.
func (n *Network) beginBatch() {
	wrapped := false
	for _, l := range n.layers {
		l.batchEpoch++
		if l.batchEpoch == 0 { // stamp wrap: clear and restart
			for i := range l.touched {
				l.touched[i] = 0
			}
			for i := range l.colStamp {
				l.colStamp[i] = 0
			}
			l.batchEpoch = 1
			wrapped = true
		}
	}
	if wrapped {
		n.resetShardStamps()
	}
}

// applyAdamBatch performs the per-batch Adam step over exactly the
// weights that accumulated gradient: touched neurons' rows restricted to
// touched input columns (§3.1: "the fraction of weights that needs to be
// updated is s² only"). Since the sparse-gradient pipeline refactor it is
// extract-then-apply: the batch gradient is first drained into an
// explicit SparseDelta (the §6 distributed-exchange payload, reused
// scratch) and the Adam step then runs over exactly the delta's cells.
// The two halves are bit-for-bit the old fused path split in two —
// applyAdamFused below is kept as the equivalence-test reference — and
// the split is what lets data-parallel replicas exchange the delta
// between extract and apply (TrainConfig.Exchanger).
//
// The delta's cell count accumulates into n.touchedWeights, surfaced as
// TrainResult.TouchedPerIter and measured by the dist-comm experiment.
func (n *Network) applyAdamBatch(alpha, invB float32, workers int) {
	d := n.ExtractDelta(n.deltaScratch, workers)
	n.deltaScratch = d
	n.touchedWeights += d.Cells()
	for li, l := range n.layers {
		l.ApplyDelta(n.adam, &d.Layers[li], alpha, invB, workers)
	}
}

// applyAdamFused is the pre-SparseDelta fused accumulate-and-step path.
// It is no longer used by training — applyAdamBatch goes through
// ExtractDelta/ApplyDelta — but is kept as the bit-for-bit reference the
// extract/apply equivalence test (TestExtractApplyMatchesFusedAdam)
// compares against.
func (n *Network) applyAdamFused(alpha, invB float32, workers int) {
	for _, l := range n.layers {
		n.touchedWeights += l.applyAdamFused(n, alpha, invB, workers)
	}
}

func (l *Layer) applyAdamFused(n *Network, alpha, invB float32, workers int) int64 {
	epoch := l.batchEpoch
	cols := l.touchedColumns(workers)
	adam := n.adam
	counts := make([]int64, workers)
	parallelIndexed(workers, l.out, func(wk, lo, hi int) {
		var applied int64
		for j := lo; j < hi; j++ {
			if l.touched[j] != epoch {
				continue
			}
			w, m, v, g := l.w[j], l.mW[j], l.vW[j], l.gW[j]
			rowStart := applied
			if cols == nil {
				for i := range g {
					if gi := g[i]; gi != 0 {
						adam.Step1(&w[i], &m[i], &v[i], gi*invB, alpha)
						if l.mirror != nil {
							l.mirror.Set(int32(j), int32(i), w[i])
						}
						g[i] = 0
						applied++
					}
				}
			} else {
				for _, i := range cols {
					if gi := g[i]; gi != 0 {
						adam.Step1(&w[i], &m[i], &v[i], gi*invB, alpha)
						if l.mirror != nil {
							l.mirror.Set(int32(j), i, w[i])
						}
						g[i] = 0
						applied++
					}
				}
			}
			// Weight cells stepped → memoized hash codes stale (bias
			// steps below don't drift codes).
			if l.dirty != nil && applied > rowStart {
				l.dirty[j] = l.hashEpoch
			}
			if gb := l.gB[j]; gb != 0 {
				adam.Step1(&l.b[j], &l.mB[j], &l.vB[j], gb*invB, alpha)
				l.gB[j] = 0
				applied++
			}
		}
		counts[wk] = applied
	})
	var total int64
	for _, c := range counts {
		total += c
	}
	return total
}

// touchedColumns rebuilds the per-batch touched-column list from the
// column stamps, or returns nil when the layer iterates full rows.
func (l *Layer) touchedColumns(workers int) []int32 {
	if l.colStamp == nil {
		return nil
	}
	l.colList = scanStamps(l.colStamp, l.batchEpoch, workers, l.colList)
	return l.colList
}
