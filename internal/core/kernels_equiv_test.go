package core

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/lsh"
	"repro/internal/sampling"
	"repro/internal/sparse"
)

// Kernel-equivalence property tests: the density-adaptive engine's gather
// and scatter forms must agree with the legacy per-neuron reference path
// across architectures, active fractions, full/dense modes and all three
// activations. Per-row summation order is preserved by the gather form
// (bitwise agreement modulo position permutation); the scatter form and
// softmax normalization reassociate sums and are held to a 1e-5 relative
// bound. The internal/kernels and internal/vecmath tests pin the bitwise
// halves at the kernel level; these tests pin the network-level routing.

// equivArchs lists network shapes covering every routing case: mirrored
// first layers (scatter-eligible), sampled layers (gather over sparse
// active sets), dense-into-dense (gather over full input), post-sampled
// mirrored layers, and all three activations.
func equivArchs() map[string]Config {
	sampledOut := func(classes int) LayerConfig {
		return LayerConfig{
			Size: classes, Activation: ActSoftmax,
			Sampled: true, Hash: lsh.KindSimhash, K: 4, L: 12,
			Strategy: sampling.KindVanilla, Beta: 48,
		}
	}
	return map[string]Config{
		// The paper architecture: mirrored ReLU hidden, sampled softmax.
		"paper": {
			InputDim: 512, Seed: 5,
			Layers: []LayerConfig{{Size: 96, Activation: ActReLU}, sampledOut(256)},
		},
		// Fully dense: scatter on layer 0, full-input gather above.
		"dense": {
			InputDim: 256, Seed: 9,
			Layers: []LayerConfig{
				{Size: 64, Activation: ActLinear},
				{Size: 48, Activation: ActReLU},
				{Size: 32, Activation: ActSoftmax},
			},
		},
		// A sampled middle layer feeding a mirrored dense softmax: the
		// post-sampled layer sees sparse active-set input, so the scatter
		// form runs on the output layer too.
		"sampled-middle": {
			InputDim: 384, Seed: 13,
			Layers: []LayerConfig{
				{Size: 72, Activation: ActReLU},
				{
					Size: 160, Activation: ActReLU,
					Sampled: true, Hash: lsh.KindDWTA, K: 4, L: 10,
					Strategy: sampling.KindVanilla, Beta: 56,
				},
				{Size: 64, Activation: ActSoftmax},
			},
		},
	}
}

// equivInputs draws deterministic sparse inputs at several densities.
func equivInputs(dim int) []sparse.Vector {
	var xs []sparse.Vector
	for _, nnz := range []int{3, 25, dim / 3} {
		idx := make([]int32, 0, nnz)
		val := make([]float32, 0, nnz)
		for i := 0; i < nnz; i++ {
			idx = append(idx, int32((i*37+nnz)%dim))
			val = append(val, float32(i%7)/3-0.8)
		}
		xs = append(xs, sparse.Vector{Dim: dim, Idx: idx, Val: val})
	}
	return xs
}

// outMap flattens the output layer's active state to id → activation.
func outMap(st *elemState) map[int32]float32 {
	out := &st.layers[len(st.layers)-1]
	m := make(map[int32]float32, len(out.vals))
	if out.full {
		for j, v := range out.vals {
			m[int32(j)] = v
		}
		return m
	}
	for a, j := range out.ids {
		m[j] = out.vals[a]
	}
	return m
}

func relDiff(a, b float32) float64 {
	fa, fb := float64(a), float64(b)
	scale := math.Max(1, math.Max(math.Abs(fa), math.Abs(fb)))
	return math.Abs(fa-fb) / scale
}

// TestKernelForwardEquivalence runs identical inputs through networks
// that differ only in kernel mode and requires the active sets to match
// exactly and the activations to agree within 1e-5.
func TestKernelForwardEquivalence(t *testing.T) {
	for name, cfg := range equivArchs() {
		for _, mode := range []forwardMode{modeTrain, modeEvalSampled, modeEvalFull} {
			t.Run(fmt.Sprintf("%s/mode%d", name, mode), func(t *testing.T) {
				nets := map[KernelMode]*Network{}
				states := map[KernelMode]*elemState{}
				for _, km := range []KernelMode{KernelLegacy, KernelAuto, KernelGather, KernelScatter} {
					c := cfg
					c.Kernels = km
					n, err := NewNetwork(c)
					if err != nil {
						t.Fatal(err)
					}
					st, err := newElemState(n, 77, 0)
					if err != nil {
						t.Fatal(err)
					}
					nets[km], states[km] = n, st
				}
				labels := []int32{1, 5}
				for xi, x := range equivInputs(cfg.InputDim) {
					ref := nets[KernelLegacy]
					ref.forwardElem(states[KernelLegacy], x, labels, mode)
					want := outMap(states[KernelLegacy])
					for _, km := range []KernelMode{KernelAuto, KernelGather, KernelScatter} {
						nets[km].forwardElem(states[km], x, labels, mode)
						got := outMap(states[km])
						if len(got) != len(want) {
							t.Fatalf("input %d, %v: active set size %d, legacy %d", xi, km, len(got), len(want))
						}
						for j, wv := range want {
							gv, ok := got[j]
							if !ok {
								t.Fatalf("input %d, %v: neuron %d active under legacy only", xi, km, j)
							}
							if d := relDiff(gv, wv); d > 1e-5 {
								t.Fatalf("input %d, %v: neuron %d = %v, legacy %v (rel %.2g)", xi, km, j, gv, wv, d)
							}
						}
					}
				}
			})
		}
	}
}

// TestKernelBackwardEquivalence runs one element's forward+backward under
// each kernel mode and compares the extracted gradient deltas: identical
// touched cells, values within 1e-5.
func TestKernelBackwardEquivalence(t *testing.T) {
	for name, cfg := range equivArchs() {
		t.Run(name, func(t *testing.T) {
			type run struct {
				n  *Network
				st *elemState
			}
			runs := map[KernelMode]run{}
			for _, km := range []KernelMode{KernelLegacy, KernelAuto} {
				c := cfg
				c.Kernels = km
				n, err := NewNetwork(c)
				if err != nil {
					t.Fatal(err)
				}
				st, err := newElemState(n, 31, 0)
				if err != nil {
					t.Fatal(err)
				}
				runs[km] = run{n, st}
			}
			labels := []int32{2, 9}
			for xi, x := range equivInputs(cfg.InputDim) {
				var deltas map[KernelMode]*SparseDelta
				deltas = map[KernelMode]*SparseDelta{}
				for km, r := range runs {
					r.n.beginBatch()
					r.n.forwardElem(r.st, x, labels, modeTrain)
					r.n.backwardElem(r.st, x, labels, nil)
					deltas[km] = r.n.ExtractDelta(nil, 1)
				}
				want, got := deltas[KernelLegacy], deltas[KernelAuto]
				for li := range want.Layers {
					wl, gl := &want.Layers[li], &got.Layers[li]
					if len(wl.Rows) != len(gl.Rows) {
						t.Fatalf("input %d layer %d: %d touched rows, legacy %d", xi, li, len(gl.Rows), len(wl.Rows))
					}
					for r := range wl.Rows {
						if wl.Rows[r] != gl.Rows[r] {
							t.Fatalf("input %d layer %d: row set diverged at %d", xi, li, r)
						}
						if d := relDiff(gl.Bias[r], wl.Bias[r]); d > 1e-5 {
							t.Fatalf("input %d layer %d row %d: bias grad %v vs %v", xi, li, wl.Rows[r], gl.Bias[r], wl.Bias[r])
						}
					}
					if len(wl.Cols) != len(gl.Cols) {
						t.Fatalf("input %d layer %d: %d touched cells, legacy %d", xi, li, len(gl.Cols), len(wl.Cols))
					}
					for k := range wl.Cols {
						if wl.Cols[k] != gl.Cols[k] {
							t.Fatalf("input %d layer %d: cell set diverged at %d", xi, li, k)
						}
						if d := relDiff(gl.Vals[k], wl.Vals[k]); d > 1e-5 {
							t.Fatalf("input %d layer %d cell %d: grad %v vs %v (rel %.2g)", xi, li, k, gl.Vals[k], wl.Vals[k], d)
						}
					}
				}
			}
		})
	}
}

// requireMirrorsCoherent checks every mirrored layer's column-major copy
// cell-for-cell against the row-major weights.
func requireMirrorsCoherent(t *testing.T, n *Network, when string) {
	t.Helper()
	mirrored := 0
	for li, l := range n.layers {
		if l.mirror == nil {
			continue
		}
		mirrored++
		for i := 0; i < l.in; i++ {
			col := l.mirror.Col(int32(i))
			for j := 0; j < l.out; j++ {
				if col[j] != l.w[j][i] {
					t.Fatalf("%s: layer %d mirror[%d][%d] = %v, weights = %v", when, li, i, j, col[j], l.w[j][i])
				}
			}
		}
	}
	if mirrored == 0 {
		t.Fatalf("%s: no mirrored layers to check", when)
	}
}

// TestMirrorCoherence: training Adam steps dual-write the mirror, and
// model save/load re-derives it — the scatter form must always stream
// weights identical to the rows.
func TestMirrorCoherence(t *testing.T) {
	classes := 128
	ds := tinyDataset(t, classes)
	cfg := tinyConfig(classes)
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireMirrorsCoherent(t, n, "after init")
	if _, err := n.Train(ds.Train, ds.Test, TrainConfig{BatchSize: 32, Iterations: 30, Seed: 5, EvalEvery: 0}); err != nil {
		t.Fatal(err)
	}
	requireMirrorsCoherent(t, n, "after training")

	var buf bytes.Buffer
	if err := n.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireMirrorsCoherent(t, loaded, "after load")

	// And the loaded network's exact predictions match the trainer's
	// (both route layer 0 through the mirror).
	x := ds.Test[0].Features
	ids1, sc1, err := n.Predict(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	ids2, sc2, err := loaded.Predict(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] || sc1[i] != sc2[i] {
			t.Fatalf("loaded predictions diverged: %v/%v vs %v/%v", ids1, sc1, ids2, sc2)
		}
	}
}

// TestKernelFormCounters: an auto run on the paper architecture must
// exercise both forms (scatter on the mirrored input layer, gather on the
// sampled output layer) and never the legacy path; a legacy run must be
// legacy-only.
func TestKernelFormCounters(t *testing.T) {
	classes := 128
	ds := tinyDataset(t, classes)
	for _, tc := range []struct {
		mode        KernelMode
		wantNonZero []string
		wantZero    []string
	}{
		{KernelAuto, []string{"gather", "scatter"}, []string{"legacy"}},
		{KernelLegacy, []string{"legacy"}, []string{"gather", "scatter"}},
	} {
		cfg := tinyConfig(classes)
		cfg.Kernels = tc.mode
		n, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Train(ds.Train, ds.Test, TrainConfig{BatchSize: 32, Iterations: 10, Seed: 5, EvalEvery: 0, EvalSamples: 64})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range tc.wantNonZero {
			if res.KernelForwards[f] == 0 {
				t.Fatalf("%v run: no %s forwards recorded: %v", tc.mode, f, res.KernelForwards)
			}
		}
		for _, f := range tc.wantZero {
			if res.KernelForwards[f] != 0 {
				t.Fatalf("%v run: unexpected %s forwards: %v", tc.mode, f, res.KernelForwards)
			}
		}
	}
}

// TestFallbackActiveDenseBeta: the empty-retrieval fallback must fill
// Beta distinct ids promptly even when Beta approaches (or exceeds) the
// layer size — the regime where the old rejection-sampling loop
// degenerated into a coupon-collector scan.
func TestFallbackActiveDenseBeta(t *testing.T) {
	for _, beta := range []int{16, 100, 128, 500} {
		cfg := tinyConfig(128)
		cfg.Layers[1].Beta = beta
		n, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, err := newElemState(n, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		st.nextEpoch()
		ls := &st.layers[1]
		ls.reset(false, 0)
		n.fallbackActive(st, 1)
		want := min(beta, 128)
		if len(ls.ids) != want {
			t.Fatalf("beta %d: fallback drew %d ids, want %d", beta, len(ls.ids), want)
		}
		seen := make(map[int32]bool, len(ls.ids))
		for _, id := range ls.ids {
			if id < 0 || id >= 128 {
				t.Fatalf("beta %d: id %d out of range", beta, id)
			}
			if seen[id] {
				t.Fatalf("beta %d: duplicate id %d", beta, id)
			}
			seen[id] = true
		}
		// Reproducibility under a fixed seed: the same state reseeded
		// re-draws the identical fallback set.
		first := append([]int32(nil), ls.ids...)
		st.reseed(42)
		st.nextEpoch()
		ls.reset(false, 0)
		n.fallbackActive(st, 1)
		second := append([]int32(nil), ls.ids...)
		st.reseed(42)
		st.nextEpoch()
		ls.reset(false, 0)
		n.fallbackActive(st, 1)
		for i := range second {
			if ls.ids[i] != second[i] {
				t.Fatalf("beta %d: fallback not reproducible under a fixed seed", beta)
			}
		}
		_ = first
	}
}
