package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/lsh"
	"repro/internal/optim"
	"repro/internal/sampling"
)

// deltaTestDataset builds a small task whose feature dimension exceeds
// colTrackThreshold, so the first layer exercises the touched-column
// tracking path while the output layer exercises the full-row scan.
func deltaTestDataset(t testing.TB, classes int) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Profile{
		Name:        "delta-test",
		FeatureDim:  colTrackThreshold + 100,
		NumClasses:  classes,
		TrainSize:   512,
		TestSize:    64,
		AvgFeatures: 20,
		AvgLabels:   2,
		ProtoNNZ:    12,
		NoiseFrac:   0.1,
		LabelSkew:   1.5,
		Seed:        7,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ds
}

func deltaTestConfig(classes int, mode optim.UpdateMode) Config {
	return Config{
		InputDim:   colTrackThreshold + 100,
		Seed:       11,
		UpdateMode: mode,
		Layers: []LayerConfig{
			{Size: 64, Activation: ActReLU},
			{
				Size: classes, Activation: ActSoftmax,
				Sampled: true, Hash: lsh.KindSimhash, K: 5, L: 16,
				// TopK retrieval is deterministic in (input, tables,
				// weights), which keeps shard runs comparable without
				// aligning RNG stream positions.
				Strategy: sampling.KindTopK, Beta: 48,
			},
		},
	}
}

// runManualBatch drives one batch's forward/backward sequentially on a
// single element state — a deterministic miniature of the training loop's
// gradient accumulation phase.
func runManualBatch(t *testing.T, n *Network, st *elemState, batch []dataset.Example, records []*elemRecord) {
	t.Helper()
	n.beginBatch()
	for i := range batch {
		var rec *elemRecord
		if records != nil {
			rec = records[i]
		}
		n.forwardElem(st, batch[i].Features, batch[i].Labels, modeTrain)
		n.backwardElem(st, batch[i].Features, batch[i].Labels, rec)
	}
	if records != nil {
		n.accumulateBatchSync(records[:len(batch)], 3)
	}
}

func mustNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	return n
}

func mustState(t *testing.T, n *Network, seed uint64) *elemState {
	t.Helper()
	st, err := newElemState(n, seed, 0)
	if err != nil {
		t.Fatalf("newElemState: %v", err)
	}
	return st
}

// requireNetsBitIdentical compares every trainable parameter and Adam
// moment bit for bit.
func requireNetsBitIdentical(t *testing.T, a, b *Network, context string) {
	t.Helper()
	for li := range a.layers {
		la, lb := a.layers[li], b.layers[li]
		for j := 0; j < la.out; j++ {
			for i := 0; i < la.in; i++ {
				if math.Float32bits(la.w[j][i]) != math.Float32bits(lb.w[j][i]) {
					t.Fatalf("%s: layer %d w[%d][%d]: %g != %g", context, li, j, i, la.w[j][i], lb.w[j][i])
				}
				if math.Float32bits(la.mW[j][i]) != math.Float32bits(lb.mW[j][i]) ||
					math.Float32bits(la.vW[j][i]) != math.Float32bits(lb.vW[j][i]) {
					t.Fatalf("%s: layer %d moments[%d][%d] diverged", context, li, j, i)
				}
			}
			if math.Float32bits(la.b[j]) != math.Float32bits(lb.b[j]) ||
				math.Float32bits(la.mB[j]) != math.Float32bits(lb.mB[j]) ||
				math.Float32bits(la.vB[j]) != math.Float32bits(lb.vB[j]) {
				t.Fatalf("%s: layer %d bias[%d] diverged", context, li, j)
			}
		}
	}
}

// TestExtractApplyMatchesFusedAdam is the refactor's anchor: the
// extract-then-apply pipeline (applyAdamBatch via ExtractDelta/ApplyDelta)
// must leave weights, biases and Adam moments bit-for-bit identical to the
// old fused path (applyAdamFused) across multiple batches.
func TestExtractApplyMatchesFusedAdam(t *testing.T) {
	const classes = 128
	ds := deltaTestDataset(t, classes)
	cfg := deltaTestConfig(classes, optim.ModeHogwild)
	// applyAdamFused consumes the shared gW buffers, which only the
	// legacy (unsharded) backward fills.
	cfg.Kernels = KernelLegacy
	fused := mustNet(t, cfg)
	split := mustNet(t, cfg)
	stF := mustState(t, fused, 99)
	stS := mustState(t, split, 99)

	const batchSize = 32
	for b := 0; b < 6; b++ {
		batch := ds.Train[b*batchSize : (b+1)*batchSize]
		alpha := fused.adam.Alpha(int64(b) + 1)
		invB := float32(1.0 / batchSize)
		runManualBatch(t, fused, stF, batch, nil)
		runManualBatch(t, split, stS, batch, nil)
		fused.applyAdamFused(alpha, invB, 3)
		split.applyAdamBatch(alpha, invB, 3)
	}
	requireNetsBitIdentical(t, fused, split, "after 6 batches")
	if fused.touchedWeights != split.touchedWeights {
		t.Fatalf("touchedWeights: fused %d != extract/apply %d", fused.touchedWeights, split.touchedWeights)
	}
	if fused.touchedWeights == 0 {
		t.Fatal("no gradient cells were applied; test is vacuous")
	}
}

// TestExtractDeltaDrainsBuffers: extraction consumes the gradient — the
// buffers are zeroed and a second extraction in the same batch is empty.
func TestExtractDeltaDrainsBuffers(t *testing.T) {
	const classes = 128
	ds := deltaTestDataset(t, classes)
	n := mustNet(t, deltaTestConfig(classes, optim.ModeHogwild))
	st := mustState(t, n, 5)
	runManualBatch(t, n, st, ds.Train[:16], nil)

	d := n.ExtractDelta(nil, 2)
	if d.Cells() == 0 {
		t.Fatal("extracted an empty delta from a trained batch")
	}
	for li, l := range n.layers {
		for j := 0; j < l.out; j++ {
			for i := 0; i < l.in; i++ {
				if l.gW[j][i] != 0 {
					t.Fatalf("layer %d gW[%d][%d] = %g after extract", li, j, i, l.gW[j][i])
				}
			}
			if l.gB[j] != 0 {
				t.Fatalf("layer %d gB[%d] = %g after extract", li, j, l.gB[j])
			}
		}
	}
	if again := n.ExtractDelta(nil, 2); again.Cells() != 0 {
		t.Fatalf("second extract carries %d cells, want 0", again.Cells())
	}

	// Deltas must have ascending rows and ascending columns per row —
	// the invariant the codec and merge rely on.
	for li := range d.Layers {
		ld := &d.Layers[li]
		for r := 1; r < len(ld.Rows); r++ {
			if ld.Rows[r] <= ld.Rows[r-1] {
				t.Fatalf("layer %d rows not ascending at %d", li, r)
			}
		}
		for r := 0; r < len(ld.Rows); r++ {
			for k := ld.RowOff[r] + 1; k < ld.RowOff[r+1]; k++ {
				if ld.Cols[k] <= ld.Cols[k-1] {
					t.Fatalf("layer %d row %d cols not ascending", li, ld.Rows[r])
				}
			}
		}
	}
}

// deltaAsMap flattens a delta into (layer,row,col) -> value, with bias
// keyed at col = -1.
func deltaAsMap(d *SparseDelta) map[[3]int32]float64 {
	out := make(map[[3]int32]float64)
	for li := range d.Layers {
		ld := &d.Layers[li]
		for r := range ld.Rows {
			for k := ld.RowOff[r]; k < ld.RowOff[r+1]; k++ {
				out[[3]int32{int32(li), ld.Rows[r], ld.Cols[k]}] = float64(ld.Vals[k])
			}
			if ld.Bias[r] != 0 {
				out[[3]int32{int32(li), ld.Rows[r], -1}] = float64(ld.Bias[r])
			}
		}
	}
	return out
}

// TestMergeDeltasHandBuilt exercises the k-way merge on a constructed
// case: disjoint rows, shared rows with disjoint and overlapping columns.
func TestMergeDeltasHandBuilt(t *testing.T) {
	a := &SparseDelta{Layers: []LayerDelta{{
		Rows:   []int32{1, 4},
		RowOff: []int32{0, 2, 3},
		Cols:   []int32{0, 3, 2},
		Vals:   []float32{1, 2, 3},
		Bias:   []float32{0.5, 0},
	}}}
	b := &SparseDelta{Layers: []LayerDelta{{
		Rows:   []int32{2, 4},
		RowOff: []int32{0, 1, 3},
		Cols:   []int32{7, 2, 5},
		Vals:   []float32{10, 20, 30},
		Bias:   []float32{0, 0.25},
	}}}
	m, err := MergeDeltas(nil, []*SparseDelta{a, b})
	if err != nil {
		t.Fatal(err)
	}
	ld := &m.Layers[0]
	wantRows := []int32{1, 2, 4}
	if len(ld.Rows) != len(wantRows) {
		t.Fatalf("merged rows = %v, want %v", ld.Rows, wantRows)
	}
	for i, r := range wantRows {
		if ld.Rows[i] != r {
			t.Fatalf("merged rows = %v, want %v", ld.Rows, wantRows)
		}
	}
	got := deltaAsMap(m)
	want := map[[3]int32]float64{
		{0, 1, 0}: 1, {0, 1, 3}: 2, {0, 1, -1}: 0.5,
		{0, 2, 7}: 10,
		{0, 4, 2}: 23, {0, 4, 5}: 30, {0, 4, -1}: 0.25,
	}
	if len(got) != len(want) {
		t.Fatalf("merged cells = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("cell %v = %g, want %g", k, got[k], v)
		}
	}

	// Single-part merge passes the delta through untouched.
	solo, err := MergeDeltas(nil, []*SparseDelta{a})
	if err != nil || solo != a {
		t.Fatalf("single-part merge = %p (%v), want passthrough %p", solo, err, a)
	}
}

// TestDeltaMergeMatchesCombinedBatch is the data-parallel soundness test:
// two shards each extracting a half-batch delta and merging must produce
// the same gradient a single process accumulates over the full batch —
// identical cell structure, values equal up to float re-association (the
// halves sum their contributions separately before the cross-shard sum).
func TestDeltaMergeMatchesCombinedBatch(t *testing.T) {
	const classes = 128
	ds := deltaTestDataset(t, classes)
	cfg := deltaTestConfig(classes, optim.ModeBatchSync)
	full := mustNet(t, cfg)
	shardA := mustNet(t, cfg)
	shardB := mustNet(t, cfg)

	const batchSize = 16
	batch := ds.Train[:batchSize]
	records := make([]*elemRecord, batchSize)
	for i := range records {
		records[i] = &elemRecord{}
	}

	runManualBatch(t, full, mustState(t, full, 3), batch, records)
	dFull := full.ExtractDelta(nil, 3)
	runManualBatch(t, shardA, mustState(t, shardA, 3), batch[:batchSize/2], records)
	dA := shardA.ExtractDelta(nil, 3).Clone()
	runManualBatch(t, shardB, mustState(t, shardB, 3), batch[batchSize/2:], records)
	dB := shardB.ExtractDelta(nil, 3)

	merged, err := MergeDeltas(nil, []*SparseDelta{dA, dB})
	if err != nil {
		t.Fatal(err)
	}

	got, want := deltaAsMap(merged), deltaAsMap(dFull)
	checked := 0
	for k, wv := range want {
		gv, ok := got[k]
		if !ok {
			// Exact cancellation to 0.0 in one accumulation order but not
			// the other is possible in principle; treat missing as zero.
			gv = 0
		}
		if diff := math.Abs(gv - wv); diff > 1e-5*math.Max(1, math.Abs(wv)) {
			t.Fatalf("cell %v: merged %g vs combined %g", k, gv, wv)
		}
		checked++
	}
	for k := range got {
		if _, ok := want[k]; !ok && got[k] != 0 {
			t.Fatalf("merged has cell %v = %g missing from combined batch", k, got[k])
		}
	}
	if checked < 100 {
		t.Fatalf("only %d cells compared; test is too small to be meaningful", checked)
	}

	// Applying merged vs combined must land the networks at (nearly) the
	// same weights.
	invB := float32(1.0 / batchSize)
	alpha := full.adam.Alpha(1)
	if _, err := full.ApplyDelta(dFull, alpha, invB, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := shardA.ApplyDelta(merged, alpha, invB, 3); err != nil {
		t.Fatal(err)
	}
	for li := range full.layers {
		lf, ls := full.layers[li], shardA.layers[li]
		for j := 0; j < lf.out; j++ {
			for i := 0; i < lf.in; i++ {
				if diff := math.Abs(float64(lf.w[j][i] - ls.w[j][i])); diff > 1e-5 {
					t.Fatalf("layer %d w[%d][%d]: combined %g vs merged %g", li, j, i, lf.w[j][i], ls.w[j][i])
				}
			}
		}
	}
}

// TestApplyDeltaValidatesShape rejects malformed or mis-shaped deltas
// instead of corrupting weights or panicking.
func TestApplyDeltaValidatesShape(t *testing.T) {
	const classes = 128
	n := mustNet(t, deltaTestConfig(classes, optim.ModeHogwild))

	if _, err := n.ApplyDelta(&SparseDelta{}, 0.001, 1, 2); err == nil {
		t.Fatal("layer-count mismatch accepted")
	}
	bad := &SparseDelta{Layers: make([]LayerDelta, 2)}
	bad.Layers[1] = LayerDelta{
		Rows:   []int32{int32(classes)}, // out of range
		RowOff: []int32{0, 0},
		Bias:   []float32{1},
	}
	bad.Layers[0].RowOff = []int32{0}
	if _, err := n.ApplyDelta(bad, 0.001, 1, 2); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	bad.Layers[1] = LayerDelta{
		Rows:   []int32{3},
		RowOff: []int32{0, 1},
		Cols:   []int32{int32(n.layers[1].in)}, // out of range
		Vals:   []float32{1},
		Bias:   []float32{0},
	}
	if _, err := n.ApplyDelta(bad, 0.001, 1, 2); err == nil {
		t.Fatal("out-of-range column accepted")
	}

	// A delta valid in layer 0 but malformed in layer 1 must not touch
	// layer 0's weights: a caller retrying after the error would
	// otherwise double-apply the valid prefix.
	mixed := &SparseDelta{Layers: make([]LayerDelta, 2)}
	mixed.Layers[0] = LayerDelta{
		Rows:   []int32{5},
		RowOff: []int32{0, 1},
		Cols:   []int32{7},
		Vals:   []float32{3},
		Bias:   []float32{1},
	}
	mixed.Layers[1] = LayerDelta{
		Rows:   []int32{int32(classes)}, // out of range
		RowOff: []int32{0, 0},
		Bias:   []float32{1},
	}
	before := n.layers[0].w[5][7]
	if _, err := n.ApplyDelta(mixed, 0.001, 1, 2); err == nil {
		t.Fatal("malformed layer 1 accepted")
	}
	if n.layers[0].w[5][7] != before {
		t.Fatal("valid layer 0 was applied despite the layer 1 validation error")
	}

	// A RowOff that spikes above the cell count and comes back down must
	// be rejected, not chased out of the Cols slice bounds.
	spiky := &SparseDelta{Layers: make([]LayerDelta, 2)}
	spiky.Layers[0].RowOff = []int32{0}
	spiky.Layers[1] = LayerDelta{
		Rows:   []int32{0, 1},
		RowOff: []int32{0, 7, 5},
		Cols:   []int32{0, 1, 2, 3, 4},
		Vals:   []float32{1, 1, 1, 1, 1},
		Bias:   []float32{0, 0},
	}
	if _, err := n.ApplyDelta(spiky, 0.001, 1, 2); err == nil {
		t.Fatal("non-monotonic RowOff accepted")
	}
}

// TestLoopbackExchangerMatchesLocal: a single-shard exchanger that echoes
// the local delta back (the dist measurement tap) must leave training
// bit-identical to the plain single-process path.
func TestLoopbackExchangerMatchesLocal(t *testing.T) {
	const classes = 128
	ds := deltaTestDataset(t, classes)
	cfg := deltaTestConfig(classes, optim.ModeBatchSync)
	plain := mustNet(t, cfg)
	tapped := mustNet(t, cfg)

	// Single-threaded batch-sync training is fully deterministic, so the
	// two runs are comparable bit for bit.
	tc := TrainConfig{BatchSize: 32, Iterations: 20, Threads: 1, EvalEvery: 0, Seed: 9}
	if _, err := plain.Train(ds.Train, ds.Test, tc); err != nil {
		t.Fatal(err)
	}
	tcx := tc
	tcx.Shards = 1
	tcx.Exchanger = loopback{}
	res, err := tapped.Train(ds.Train, ds.Test, tcx)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExchangeNS < 0 {
		t.Fatalf("ExchangeNS = %d", res.ExchangeNS)
	}
	requireNetsBitIdentical(t, plain, tapped, "loopback exchanger")
}

type loopback struct{}

func (loopback) Exchange(_ int64, local *SparseDelta, stop bool) (*SparseDelta, bool, error) {
	return local, stop, nil
}
