package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// DeltaCompression selects the representation of the SparseDelta a
// data-parallel replica ships each batch ("Distributed SLIDE"'s
// low-bandwidth direction: the sparse gradient is already small, make it
// smaller). The zero value is the exact float32 payload.
type DeltaCompression int

const (
	// CompressFP32 ships exact float32 values — the original wire format.
	CompressFP32 DeltaCompression = iota
	// CompressBF16 rounds every gradient value and bias to bfloat16 on
	// the wire, halving value bytes at ≤2⁻⁸ relative rounding per cell.
	// The exchanger rounds its merged delta the same way, so replicas
	// stay bit-identical whether the transport is in-process or TCP.
	CompressBF16
	// CompressTopK ships only the largest-|g| gradient cells of each
	// layer, k = ceil(TrainConfig.TopKFrac x the batch delta's cells).
	// Dropped cells accumulate in a per-replica error-feedback residual
	// that competes in the selection again whenever its cell is next
	// touched, so gradient mass is delayed, never lost. Biases always
	// ship.
	CompressTopK
)

// String returns the flag spelling of the compression mode (without the
// topk fraction, which lives in TrainConfig.TopKFrac).
func (c DeltaCompression) String() string {
	switch c {
	case CompressFP32:
		return "fp32"
	case CompressBF16:
		return "bf16"
	case CompressTopK:
		return "topk"
	default:
		return fmt.Sprintf("DeltaCompression(%d)", int(c))
	}
}

// ParseCompression parses a -compress flag value: "fp32", "bf16" or
// "topk:<frac>" with frac in (0, 1]. The returned fraction is zero for
// the non-topk modes.
func ParseCompression(s string) (DeltaCompression, float64, error) {
	switch {
	case s == "" || s == "fp32":
		return CompressFP32, 0, nil
	case s == "bf16":
		return CompressBF16, 0, nil
	case strings.HasPrefix(s, "topk:"):
		frac, err := strconv.ParseFloat(strings.TrimPrefix(s, "topk:"), 64)
		if err != nil || !(frac > 0 && frac <= 1) {
			return 0, 0, fmt.Errorf("core: topk fraction must be in (0, 1], got %q", s)
		}
		return CompressTopK, frac, nil
	default:
		return 0, 0, fmt.Errorf("core: unknown compression %q (want fp32, bf16 or topk:<frac>)", s)
	}
}

// efLayer is one layer's error-feedback residual: the dropped gradient
// mass per output row, as a dense prevDim-wide accumulator allocated on
// first touch. Dense rows make the per-batch fold a plain scatter-add
// over the batch's cells — a CSR residual would force an O(residual)
// structural merge every batch. The memory ceiling is one extra
// weight-sized array in the worst case, the same bound a CSR residual
// converges to.
type efLayer struct {
	rows [][]float32
}

// compressTopK is the error-feedback top-k step: fold the fresh batch
// delta into the residual accumulator, ship the k largest-|g| cells of
// each layer among the cells this batch touched, and leave the rest
// accumulating. Two deliberate scoping choices keep the whole step
// O(batch cells), preserving SLIDE's sublinearity:
//
//   - k is sized from the FRESH batch delta: were it a fraction of
//     batch+residual, the residual would grow until frac x folded matched
//     the batch's own cell count — shipping as many cells as an
//     uncompressed run and erasing the wire savings.
//   - Selection competes only over the batch's touched cells, not the
//     full accumulator: an exact global top-k rescans the residual's
//     working set — which grows toward the layer's entire touched-weight
//     union — every batch, and the dist-train bench showed that scan
//     dominating the whole training step. Parked mass instead flushes
//     when the optimizer next touches its cell, which for SLIDE's
//     recurring active sets is the common case; mass on a never-revisited
//     cell stays parked, exactly as a below-threshold cell would under
//     global competition.
//
// The returned delta lives in network-owned scratch reused next batch.
func (n *Network) compressTopK(d *SparseDelta, frac float64) *SparseDelta {
	if n.efShip == nil {
		n.efShip = &SparseDelta{}
		n.efRes = make([]efLayer, len(d.Layers))
	}
	ship := n.efShip
	ship.reset(len(d.Layers))
	for li := range d.Layers {
		k := int(math.Ceil(frac * float64(len(d.Layers[li].Vals))))
		l := n.layers[li]
		n.efAbs = topKSelectLayer(&d.Layers[li], &n.efRes[li], l.out, l.in, k, &ship.Layers[li], n.efAbs)
	}
	return ship
}

// residualCells reports the error-feedback residual's current cell count
// (zero when top-k compression is off or the fraction is 1.0, where
// selection keeps everything).
func (n *Network) residualCells() int64 {
	var total int64
	for li := range n.efRes {
		for _, row := range n.efRes[li].rows {
			for _, v := range row {
				if v != 0 {
					total++
				}
			}
		}
	}
	return total
}

// residualDelta materializes the residual as a SparseDelta (bias
// gradients never residualize — they always ship). Test/diagnostic use;
// the hot path never builds this.
func (n *Network) residualDelta() *SparseDelta {
	out := &SparseDelta{Layers: make([]LayerDelta, len(n.efRes))}
	for li := range n.efRes {
		ld := &out.Layers[li]
		ld.RowOff = append(ld.RowOff, 0)
		for r, row := range n.efRes[li].rows {
			from := len(ld.Cols)
			for c, v := range row {
				if v != 0 {
					ld.Cols = append(ld.Cols, int32(c))
					ld.Vals = append(ld.Vals, v)
				}
			}
			if len(ld.Cols) > from {
				ld.Rows = append(ld.Rows, int32(r))
				ld.Bias = append(ld.Bias, 0)
				ld.RowOff = append(ld.RowOff, int32(len(ld.Cols)))
			}
		}
	}
	return out
}

// topKSelectLayer folds src (one layer's fresh batch delta) into res and
// emits the k largest accumulated-|v| cells among src's cells into ship
// in CSR order, zeroing them in the accumulator; biases always ship. The
// threshold is the k-th largest |v|, an order statistic, so the kept set
// is deterministic; ties at the threshold are kept in row-major scan
// order until the quota is exact. Exact-zero cells (cancellation) carry
// no gradient mass and are never shipped. A row ships if it kept any
// cell or has a non-zero batch bias. Cost is O(batch cells) — the
// accumulator is only ever read at the batch's own coordinates.
func topKSelectLayer(src *LayerDelta, res *efLayer, rows, prevDim, k int, ship *LayerDelta, abs []float32) []float32 {
	ship.reset()
	ship.RowOff = append(ship.RowOff, 0)
	if res.rows == nil {
		res.rows = make([][]float32, rows)
	}
	// Fold the batch into the accumulator and gather the |v| of every
	// touched cell in one pass. A touched cell whose fresh gradient is
	// zero still competes: that is how parked residual mass gets its
	// chance to flush.
	abs = abs[:0]
	for ri, r := range src.Rows {
		row := res.rows[r]
		if row == nil {
			row = make([]float32, prevDim)
			res.rows[r] = row
		}
		for c := src.RowOff[ri]; c < src.RowOff[ri+1]; c++ {
			row[src.Cols[c]] += src.Vals[c]
			if v := row[src.Cols[c]]; v != 0 {
				abs = append(abs, abs32(v))
			}
		}
	}
	nnz := len(abs)
	thr := float32(-1) // below every |v|: keep all non-zero cells
	quota := 0
	if k < nnz {
		thr = kthLargest(abs, k)
		quota = k
		for _, a := range abs {
			if a > thr {
				quota--
			}
		}
	}
	// Emit over src's structure — already row-major CSR.
	for ri, r := range src.Rows {
		row := res.rows[r]
		from := len(ship.Cols)
		for c := src.RowOff[ri]; c < src.RowOff[ri+1]; c++ {
			col := src.Cols[c]
			v := row[col]
			if v == 0 {
				continue
			}
			a := abs32(v)
			keep := a > thr
			if !keep && a == thr && quota > 0 {
				keep = true
				quota--
			}
			if keep {
				ship.Cols = append(ship.Cols, col)
				ship.Vals = append(ship.Vals, v)
				row[col] = 0
			}
		}
		if len(ship.Cols) > from || src.Bias[ri] != 0 {
			ship.Rows = append(ship.Rows, r)
			ship.Bias = append(ship.Bias, src.Bias[ri])
			ship.RowOff = append(ship.RowOff, int32(len(ship.Cols)))
		}
	}
	return abs
}

func abs32(x float32) float32 {
	return math.Float32frombits(math.Float32bits(x) &^ (1 << 31))
}

// kthLargest returns the k-th largest element of a (1-based), partially
// reordering it. Three-way quickselect so large runs of equal magnitudes
// — common in gradients — resolve in one partition instead of
// degenerating quadratic.
func kthLargest(a []float32, k int) float32 {
	lo, hi, idx := 0, len(a)-1, k-1
	for lo < hi {
		lt, gt := partitionDesc3(a, lo, hi)
		switch {
		case idx < lt:
			hi = lt - 1
		case idx > gt:
			lo = gt + 1
		default:
			return a[idx]
		}
	}
	return a[lo]
}

// partitionDesc3 partitions a[lo..hi] descending around a median-of-three
// pivot value p, returning [lt, gt] such that a[lo..lt-1] > p,
// a[lt..gt] == p and a[gt+1..hi] < p.
func partitionDesc3(a []float32, lo, hi int) (int, int) {
	p := median3(a[lo], a[lo+(hi-lo)/2], a[hi])
	i, lt, gt := lo, lo, hi
	for i <= gt {
		switch {
		case a[i] > p:
			a[i], a[lt] = a[lt], a[i]
			lt++
			i++
		case a[i] < p:
			a[i], a[gt] = a[gt], a[i]
			gt--
		default:
			i++
		}
	}
	return lt, gt
}

func median3(x, y, z float32) float32 {
	if x > y {
		x, y = y, x
	}
	if y > z {
		y = z
	}
	if x > y {
		y = x
	}
	return y
}
