package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/hashtable"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/optim"
	"repro/internal/sparse"
)

// Point is an evaluation point on a training curve.
type Point = metrics.Point

// Network is a SLIDE network (Algorithm 1): layers with weights, Adam
// state and per-layer LSH tables. Construct with NewNetwork; the tables
// are built once from the initial weights (§3.1 "Initialization") and
// rebuilt on the exponential-decay schedule during training. Scheduled
// rebuilds are non-blocking by default: a shadow table set is built on a
// background goroutine from a batch-boundary weight snapshot and
// published with an atomic handle swap, so training batches and
// concurrent inference keep running on the previous set mid-rebuild
// (TrainConfig.SyncRebuild restores the stop-the-world path).
type Network struct {
	cfg    Config
	layers []*Layer
	ar     *arena.Arena
	adam   optim.Adam
	// kern is the resolved kernel-planning policy (Config.Kernels): every
	// forward pass asks it for a gather/scatter/legacy form, every
	// backward pass for fused vs reference row loops.
	kern kernels.Config

	step     int64 // completed training iterations (batches)
	rebuilds int   // completed table rebuilds
	nextAt   int64 // iteration of the next scheduled rebuild

	// rebuildGen numbers table-set generations: every build — the
	// construction-time build, synchronous rebuilds, background shadow
	// builds — gets the next generation, which seeds its reservoir
	// streams. A generation's tables are a pure function of (weights
	// snapshot, config, generation), so a detached build is bit-identical
	// to a synchronous one from the same snapshot.
	rebuildGen uint64
	// pending is the in-flight background rebuild, nil when idle. Owned
	// by the training loop: only rebuildTick creates, publishes and
	// clears it.
	pending *pendingRebuild
	// rebuildStallNS / rebuildBuildNS account the lifecycle's cost since
	// construction: loop-blocking time (snapshot copies and swap
	// publication; entire rebuilds in sync mode) vs. background build
	// time overlapped with training.
	rebuildStallNS int64
	rebuildBuildNS int64

	// shardMu guards the backward gradient shard registry below. Shard
	// sets are created lazily (first fused backward pass of a worker) and
	// reused across Train calls; workerShards is keyed [worker][layer],
	// layerShards is the transpose [layer][worker] that ExtractDelta folds.
	shardMu      sync.Mutex
	workerShards [][]*backShard
	layerShards  [][]*backShard

	// touchedWeights counts gradient cells extracted across all batches —
	// the sparse-gradient communication payload of a distributed
	// replica (§6 future work).
	touchedWeights int64
	// deltaScratch is the reusable SparseDelta the training loop drains
	// each batch's gradient into (extract-then-apply, and the exchange
	// payload for sharded runs).
	deltaScratch *SparseDelta

	// Error-feedback state for CompressTopK: efRes accumulates the
	// gradient cells dropped by top-k selection, per layer, and competes
	// in every subsequent batch's selection, so dropped mass is delayed,
	// never lost. efShip is the shipped delta's reusable scratch; efAbs
	// holds |g| for the threshold order statistic. All owned by the
	// training loop.
	efRes  []efLayer
	efShip *SparseDelta
	efAbs  []float32

	// pred backs the convenience Predict/PredictSampled/Evaluate
	// methods: one lazily built shared inference session whose pooled
	// element states are reused across calls.
	pred     *Predictor
	predOnce sync.Once
	predErr  error
}

// NewNetwork builds and initializes a network: random weights, K*L hash
// functions per sampled layer, and hash tables populated from the initial
// weight vectors.
func NewNetwork(cfg Config) (*Network, error) {
	return newNetwork(cfg, true)
}

// newNetwork is NewNetwork with the initial table build optional:
// LoadModel skips it because the tables would be hashed from random
// weights that the restored weights immediately replace.
func newNetwork(cfg Config, buildTables bool) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	for i, lc := range cfg.Layers {
		if lc.Activation == ActSoftmax && i != len(cfg.Layers)-1 {
			return nil, fmt.Errorf("core: softmax activation only supported on the output layer (layer %d)", i)
		}
	}
	n := &Network{cfg: cfg, ar: arena.NewDefault(), adam: cfg.Adam, kern: cfg.kernelsConfig()}
	in := cfg.InputDim
	for i, lc := range cfg.Layers {
		l, err := newLayer(i, in, lc, cfg, n.ar, cfg.Seed)
		if err != nil {
			return nil, err
		}
		n.layers = append(n.layers, l)
		in = lc.Size
	}
	if cfg.Kernels != KernelLegacy {
		// A layer's input arrives sparse when it is first (the example's
		// feature vector) or follows a sampled layer (an active-id set);
		// only those layers can ever run the scatter form, so only they
		// pay for a mirror.
		sparseIn := true
		for _, l := range n.layers {
			l.initMirror(sparseIn, cfg.MirrorFormat.kernelFormat(), n.ar)
			sparseIn = l.Sampled()
		}
	}
	if buildTables {
		n.RebuildTables(0)
	}
	n.rebuilds = 0 // the initial build is construction, not a scheduled rebuild
	n.nextAt = int64(cfg.RebuildN0)
	return n, nil
}

// Config returns the network's (defaulted) configuration.
func (n *Network) Config() Config { return n.cfg }

// KernelPolicy returns the resolved kernel-planning policy, including the
// effective gather/scatter density crossover (pinned or calibrated).
func (n *Network) KernelPolicy() kernels.Config { return n.kern }

// NumLayers returns the layer count.
func (n *Network) NumLayers() int { return len(n.layers) }

// Layer returns layer i.
func (n *Network) Layer(i int) *Layer { return n.layers[i] }

// OutputDim returns the size of the final layer.
func (n *Network) OutputDim() int { return n.layers[len(n.layers)-1].out }

// Step returns the number of completed training iterations.
func (n *Network) Step() int64 { return n.step }

// Rebuilds returns the number of scheduled hash-table rebuilds performed.
func (n *Network) Rebuilds() int { return n.rebuilds }

// RebuildRowCounts reports, summed over sampled layers and all builds
// since construction, how many rebuild rows were freshly hashed vs
// re-inserted from the per-row code memo — the dirty-fraction record of
// the incremental rebuild path (reused is 0 with Config.FullRebuild).
func (n *Network) RebuildRowCounts() (rehashed, reused int64) {
	for _, l := range n.layers {
		rehashed += atomic.LoadInt64(&l.rowsRehashed)
		reused += atomic.LoadInt64(&l.rowsReused)
	}
	return rehashed, reused
}

// NumParams returns the total trainable parameter count.
func (n *Network) NumParams() int64 {
	var p int64
	for _, l := range n.layers {
		p += int64(l.out)*int64(l.in) + int64(l.out)
	}
	return p
}

// RebuildTables synchronously rebuilds every sampled layer's tables from
// current weights: each layer builds a next-generation shadow set inline
// and publishes it. workers <= 0 selects GOMAXPROCS.
func (n *Network) RebuildTables(workers int) {
	if workers <= 0 {
		workers = defaultThreads()
	}
	n.rebuildGen++
	for _, l := range n.layers {
		l.rebuildSync(n.rebuildGen, workers)
	}
	n.rebuilds++
}

// maybeRebuild applies the §4.2 exponential-decay schedule with a
// synchronous (stop-the-world) rebuild: the first rebuild happens N0
// iterations in, and the t-th gap is N0*exp(lambda*t), so rebuilds become
// rarer as gradients shrink toward convergence.
func (n *Network) maybeRebuild(workers int) bool {
	if n.step < n.nextAt {
		return false
	}
	n.RebuildTables(workers)
	n.scheduleNextRebuild()
	return true
}

// scheduleNextRebuild advances nextAt by the §4.2 exponential-decay gap.
func (n *Network) scheduleNextRebuild() {
	gap := float64(n.cfg.RebuildN0) * math.Exp(n.cfg.RebuildLambda*float64(n.rebuilds))
	if gap < 1 {
		gap = 1
	}
	n.nextAt = n.step + int64(gap)
}

// pendingRebuild is one in-flight background table build: the shadow sets
// under construction and the completion signal.
type pendingRebuild struct {
	done    chan struct{}
	shadows []*hashtable.Table // by layer index; nil for dense layers
	buildNS int64              // wall-clock spent building, overlapped with training
}

// rebuildTick drives the non-blocking table lifecycle at a batch
// boundary. If a background build finished, its shadows are published
// (one atomic store per layer) and the next rebuild scheduled; otherwise,
// when the §4.2 schedule is due and nothing is in flight, the synchronous
// prepare step runs (memo diffs, weight snapshot copies) and the build is
// kicked onto a background goroutine. The time the training loop is
// blocked here — by design only the prepare/publish cost, never the
// build itself — accumulates into n.rebuildStallNS.
func (n *Network) rebuildTick(workers int) {
	if n.pending != nil {
		select {
		case <-n.pending.done:
			t0 := nowNano()
			n.publishPending()
			n.rebuildStallNS += nowNano() - t0
		default:
			// Build still running; keep training on the old set.
		}
		return
	}
	if n.step < n.nextAt {
		return
	}
	t0 := nowNano()
	n.startBackgroundRebuild(workers)
	n.rebuildStallNS += nowNano() - t0
}

// startBackgroundRebuild runs every sampled layer's synchronous prepare
// step, then launches one goroutine that builds all shadow sets from the
// prepared state. The build touches only snapshots, quiesced memo
// projections and its own detached tables, so it is race-free against
// training workers and live Predictor traffic.
func (n *Network) startBackgroundRebuild(workers int) {
	n.rebuildGen++
	gen := n.rebuildGen
	p := &pendingRebuild{
		done:    make(chan struct{}),
		shadows: make([]*hashtable.Table, len(n.layers)),
	}
	preps := make([]rebuildPrep, len(n.layers))
	for li, l := range n.layers {
		if !l.Sampled() {
			continue
		}
		preps[li] = l.prepareRebuild(workers, true)
	}
	n.pending = p
	go func() {
		t0 := nowNano()
		for li, l := range n.layers {
			if !l.Sampled() {
				continue
			}
			p.shadows[li] = l.buildShadow(gen, preps[li], workers)
		}
		p.buildNS = nowNano() - t0
		close(p.done)
	}()
}

// publishPending swaps every finished shadow in and schedules the next
// rebuild. Must only be called once pending.done is closed.
func (n *Network) publishPending() {
	for li, shadow := range n.pending.shadows {
		if shadow != nil {
			n.layers[li].tables.Store(shadow)
		}
	}
	n.rebuildBuildNS += n.pending.buildNS
	n.pending = nil
	n.rebuilds++
	n.scheduleNextRebuild()
}

// finishPendingRebuild waits for an in-flight background build and
// publishes it, so a network is never left with a dangling builder after
// training returns.
func (n *Network) finishPendingRebuild() {
	if n.pending == nil {
		return
	}
	<-n.pending.done
	n.publishPending()
}

// Predict runs an exact (all neurons active) forward pass and returns the
// top-k class ids with their softmax-layer scores, highest first. It is a
// thin wrapper over the network's lazily built default Predictor;
// high-traffic callers should construct a Predictor once via NewPredictor
// and use it directly (PredictBatch amortizes fan-out across workers).
func (n *Network) Predict(x sparse.Vector, k int) ([]int32, []float32, error) {
	p, err := n.defaultPredictor()
	if err != nil {
		return nil, nil, err
	}
	return p.Predict(x, k)
}

// PredictSampled runs SLIDE's sub-linear inference: active neurons come
// from the hash tables, and only their scores are computed. Like Predict,
// it delegates to the network's pooled default Predictor. An optional
// PredictOpts makes the draw deterministic in its Seed.
func (n *Network) PredictSampled(x sparse.Vector, k int, opts ...PredictOpts) ([]int32, []float32, error) {
	p, err := n.defaultPredictor()
	if err != nil {
		return nil, nil, err
	}
	return p.PredictSampled(x, k, opts...)
}
