package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/arena"
	"repro/internal/metrics"
	"repro/internal/optim"
	"repro/internal/sparse"
)

// Point is an evaluation point on a training curve.
type Point = metrics.Point

// Network is a SLIDE network (Algorithm 1): layers with weights, Adam
// state and per-layer LSH tables. Construct with NewNetwork; the tables
// are built once from the initial weights (§3.1 "Initialization") and
// rebuilt on the exponential-decay schedule during training.
type Network struct {
	cfg    Config
	layers []*Layer
	ar     *arena.Arena
	adam   optim.Adam

	step     int64 // completed training iterations (batches)
	rebuilds int   // completed table rebuilds
	nextAt   int64 // iteration of the next scheduled rebuild

	// touchedWeights counts gradient cells applied across all batches —
	// the sparse-gradient communication payload of a distributed
	// replica (§6 future work).
	touchedWeights int64

	// pred backs the convenience Predict/PredictSampled/Evaluate
	// methods: one lazily built shared inference session whose pooled
	// element states are reused across calls.
	pred     *Predictor
	predOnce sync.Once
	predErr  error
}

// NewNetwork builds and initializes a network: random weights, K*L hash
// functions per sampled layer, and hash tables populated from the initial
// weight vectors.
func NewNetwork(cfg Config) (*Network, error) {
	return newNetwork(cfg, true)
}

// newNetwork is NewNetwork with the initial table build optional:
// LoadModel skips it because the tables would be hashed from random
// weights that the restored weights immediately replace.
func newNetwork(cfg Config, buildTables bool) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	for i, lc := range cfg.Layers {
		if lc.Activation == ActSoftmax && i != len(cfg.Layers)-1 {
			return nil, fmt.Errorf("core: softmax activation only supported on the output layer (layer %d)", i)
		}
	}
	n := &Network{cfg: cfg, ar: arena.NewDefault(), adam: cfg.Adam}
	in := cfg.InputDim
	for i, lc := range cfg.Layers {
		l, err := newLayer(i, in, lc, cfg, n.ar, cfg.Seed)
		if err != nil {
			return nil, err
		}
		n.layers = append(n.layers, l)
		in = lc.Size
	}
	if buildTables {
		n.RebuildTables(0)
	}
	n.rebuilds = 0 // the initial build is construction, not a scheduled rebuild
	n.nextAt = int64(cfg.RebuildN0)
	return n, nil
}

// Config returns the network's (defaulted) configuration.
func (n *Network) Config() Config { return n.cfg }

// NumLayers returns the layer count.
func (n *Network) NumLayers() int { return len(n.layers) }

// Layer returns layer i.
func (n *Network) Layer(i int) *Layer { return n.layers[i] }

// OutputDim returns the size of the final layer.
func (n *Network) OutputDim() int { return n.layers[len(n.layers)-1].out }

// Step returns the number of completed training iterations.
func (n *Network) Step() int64 { return n.step }

// Rebuilds returns the number of scheduled hash-table rebuilds performed.
func (n *Network) Rebuilds() int { return n.rebuilds }

// NumParams returns the total trainable parameter count.
func (n *Network) NumParams() int64 {
	var p int64
	for _, l := range n.layers {
		p += int64(l.out)*int64(l.in) + int64(l.out)
	}
	return p
}

// RebuildTables rebuilds every sampled layer's tables from current
// weights. workers <= 0 selects GOMAXPROCS.
func (n *Network) RebuildTables(workers int) {
	if workers <= 0 {
		workers = defaultThreads()
	}
	for _, l := range n.layers {
		l.RebuildTables(workers)
	}
	n.rebuilds++
}

// maybeRebuild applies the §4.2 exponential-decay schedule: the first
// rebuild happens N0 iterations in, and the t-th gap is N0*exp(lambda*t),
// so rebuilds become rarer as gradients shrink toward convergence.
func (n *Network) maybeRebuild(workers int) bool {
	if n.step < n.nextAt {
		return false
	}
	n.RebuildTables(workers)
	gap := float64(n.cfg.RebuildN0) * math.Exp(n.cfg.RebuildLambda*float64(n.rebuilds))
	if gap < 1 {
		gap = 1
	}
	n.nextAt = n.step + int64(gap)
	return true
}

// Predict runs an exact (all neurons active) forward pass and returns the
// top-k class ids with their softmax-layer scores, highest first. It is a
// thin wrapper over the network's lazily built default Predictor;
// high-traffic callers should construct a Predictor once via NewPredictor
// and use it directly (PredictBatch amortizes fan-out across workers).
func (n *Network) Predict(x sparse.Vector, k int) ([]int32, []float32, error) {
	p, err := n.defaultPredictor()
	if err != nil {
		return nil, nil, err
	}
	return p.Predict(x, k)
}

// PredictSampled runs SLIDE's sub-linear inference: active neurons come
// from the hash tables, and only their scores are computed. Like Predict,
// it delegates to the network's pooled default Predictor. An optional
// PredictOpts makes the draw deterministic in its Seed.
func (n *Network) PredictSampled(x sparse.Vector, k int, opts ...PredictOpts) ([]int32, []float32, error) {
	p, err := n.defaultPredictor()
	if err != nil {
		return nil, nil, err
	}
	return p.PredictSampled(x, k, opts...)
}
