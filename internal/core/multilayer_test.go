package core

import (
	"testing"
	"time"

	"repro/internal/lsh"
	"repro/internal/sampling"
)

// TestThreeLayerWithSampledMiddle exercises the general multi-layer path
// the paper's Fig. 2 sketches (tables on hidden layers too): a sampled
// middle layer makes the next layer's input a sparse active set, driving
// the HashSparse query path and sparse-input backprop during training.
func TestThreeLayerWithSampledMiddle(t *testing.T) {
	classes := 128
	ds := tinyDataset(t, classes)
	n, err := NewNetwork(Config{
		InputDim: 512,
		Seed:     21,
		Layers: []LayerConfig{
			{Size: 96, Activation: ActReLU},
			{
				Size: 256, Activation: ActReLU,
				Sampled: true, Hash: lsh.KindSimhash, K: 4, L: 12,
				Strategy: sampling.KindVanilla, Beta: 64,
			},
			{
				Size: classes, Activation: ActSoftmax,
				Sampled: true, Hash: lsh.KindDWTA, K: 4, L: 12, RangePow: 5,
				Strategy: sampling.KindVanilla, Beta: 48,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Train(ds.Train, ds.Test, TrainConfig{Epochs: 6, Seed: 3, EvalEvery: 40})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("3-layer P@1=%.3f, mean active: hidden2=%.0f/256, out=%.0f/%d",
		res.FinalAcc, res.MeanActive[1], res.MeanActive[2], classes)
	if res.FinalAcc < 0.10 {
		t.Fatalf("multi-sampled-layer network failed to learn: P@1 = %.3f", res.FinalAcc)
	}
	if res.MeanActive[1] >= 256 || res.MeanActive[2] >= float64(classes) {
		t.Fatalf("sampling inactive: %v", res.MeanActive)
	}
}

// TestSampledInference compares SLIDE's sub-linear inference
// (hash-retrieved active set) against the exact full forward: it must be
// faster per query at scale while retaining most of the accuracy — the
// paper's claim that SLIDE reduces computation "during both training and
// inference".
func TestSampledInference(t *testing.T) {
	classes := 512
	ds := tinyDataset(t, classes)
	cfg := tinyConfig(classes)
	cfg.Layers[1].Beta = 64
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(ds.Train, ds.Test, TrainConfig{Epochs: 6, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	// Rebuild so the tables reflect the final weights before inference.
	n.RebuildTables(0)

	st, err := newElemState(n, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fullHits, sampHits, sampActive int
	const trials = 300
	t0 := time.Now()
	for i := 0; i < trials; i++ {
		ex := &ds.Test[i]
		top, _ := n.predictInto(st, ex.Features, 1, modeEvalFull)
		if len(top) > 0 && containsSortedLabel(ex.Labels, top[0]) {
			fullHits++
		}
	}
	fullDur := time.Since(t0)
	t0 = time.Now()
	for i := 0; i < trials; i++ {
		ex := &ds.Test[i]
		top, _ := n.predictInto(st, ex.Features, 1, modeEvalSampled)
		sampActive += len(st.layers[1].vals)
		if len(top) > 0 && containsSortedLabel(ex.Labels, top[0]) {
			sampHits++
		}
	}
	sampDur := time.Since(t0)

	fullP1 := float64(fullHits) / trials
	sampP1 := float64(sampHits) / trials
	t.Logf("inference: full P@1=%.3f (%v), sampled P@1=%.3f (%v, %.0f active of %d)",
		fullP1, fullDur, sampP1, sampDur, float64(sampActive)/trials, classes)
	if float64(sampActive)/trials >= float64(classes)/2 {
		t.Fatalf("sampled inference used %.0f active neurons — not sub-linear", float64(sampActive)/trials)
	}
	// Sampled inference should retain a large share of exact accuracy.
	if sampP1 < 0.5*fullP1 {
		t.Fatalf("sampled inference lost too much accuracy: %.3f vs %.3f", sampP1, fullP1)
	}
}

// TestManyThreadsStress hammers the racy HOGWILD path with more workers
// than batch elements; training must stay finite and keep learning. Not
// run under -race: the whole point of the test is the §3.1
// unsynchronized gradient writes, which the detector (correctly) reports
// as data races — the race step covers the paths whose contract is
// race-freedom (Predictor, table handle swaps, background rebuilds).
func TestManyThreadsStress(t *testing.T) {
	if raceEnabled {
		t.Skip("deliberately exercises the documented-benign HOGWILD races")
	}
	classes := 128
	ds := tinyDataset(t, classes)
	n, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Train(ds.Train, ds.Test, TrainConfig{
		BatchSize: 16, Iterations: 200, Threads: 32, Seed: 11, EvalEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAcc != res.FinalAcc { // NaN guard
		t.Fatal("training produced NaN accuracy")
	}
	if res.FinalAcc < 0.1 {
		t.Fatalf("oversubscribed HOGWILD run collapsed: P@1 = %.3f", res.FinalAcc)
	}
}
