package core

import (
	"math"
	"sort"
	"testing"

	"repro/internal/optim"
)

func TestParseCompression(t *testing.T) {
	cases := []struct {
		in   string
		mode DeltaCompression
		frac float64
		ok   bool
	}{
		{"", CompressFP32, 0, true},
		{"fp32", CompressFP32, 0, true},
		{"bf16", CompressBF16, 0, true},
		{"topk:0.1", CompressTopK, 0.1, true},
		{"topk:1", CompressTopK, 1, true},
		{"topk:0", 0, 0, false},
		{"topk:1.5", 0, 0, false},
		{"topk:", 0, 0, false},
		{"topk", 0, 0, false},
		{"gzip", 0, 0, false},
	}
	for _, c := range cases {
		mode, frac, err := ParseCompression(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseCompression(%q): err = %v, want ok=%v", c.in, err, c.ok)
		}
		if c.ok && (mode != c.mode || frac != c.frac) {
			t.Fatalf("ParseCompression(%q) = (%v, %g), want (%v, %g)", c.in, mode, frac, c.mode, c.frac)
		}
	}
	for _, mode := range []DeltaCompression{CompressFP32, CompressBF16, CompressTopK} {
		if _, _, err := ParseCompression(mode.String()); mode != CompressTopK && err != nil {
			t.Fatalf("String/Parse round trip broke for %v: %v", mode, err)
		}
	}
}

// topkTestLayer builds one layer's delta with a known magnitude ranking.
func topkTestLayer() LayerDelta {
	return LayerDelta{
		Rows:   []int32{2, 5, 9},
		RowOff: []int32{0, 3, 5, 8},
		Cols:   []int32{0, 4, 7, 1, 3, 0, 2, 6},
		Vals:   []float32{-8, 0.5, 2, -2, 0, 7, -0.25, 1},
		Bias:   []float32{0.125, 0, -1},
	}
}

// TestSelectTopKSplitsByMagnitude: the kept set is exactly the k
// largest-|v| cells, dropped cells stay in the accumulator with no bias
// mass, and ship+residual together reconstruct every non-zero cell of
// the source.
func TestSelectTopKSplitsByMagnitude(t *testing.T) {
	src := topkTestLayer()
	var ship LayerDelta
	var res efLayer
	// nnz = 8 (one exact zero among them), k = 4. The zero cell carries
	// no mass, so 4 ship and 3 stay in the residual.
	topKSelectLayer(&src, &res, 10, 8, 4, &ship, nil)

	type cell struct {
		row, col int32
		val      float32
	}
	collect := func(ld *LayerDelta) []cell {
		var out []cell
		for r := range ld.Rows {
			for c := ld.RowOff[r]; c < ld.RowOff[r+1]; c++ {
				out = append(out, cell{ld.Rows[r], ld.Cols[c], ld.Vals[c]})
			}
		}
		return out
	}
	collectRes := func(res *efLayer) []cell {
		var out []cell
		for r, row := range res.rows {
			for c, v := range row {
				if v != 0 {
					out = append(out, cell{int32(r), int32(c), v})
				}
			}
		}
		return out
	}
	shipped, dropped := collect(&ship), collectRes(&res)
	if len(shipped) != 4 {
		t.Fatalf("shipped %d cells, want k=4: %+v", len(shipped), shipped)
	}
	if len(dropped) != 3 {
		t.Fatalf("residual has %d cells, want 3: %+v", len(dropped), dropped)
	}
	// The 4 largest magnitudes are 8, 7, 2, 2.
	var mags []float64
	for _, c := range shipped {
		mags = append(mags, math.Abs(float64(c.val)))
	}
	sort.Float64s(mags)
	want := []float64{2, 2, 7, 8}
	for i := range want {
		if mags[i] != want[i] {
			t.Fatalf("shipped magnitudes %v, want %v", mags, want)
		}
	}
	// Every non-zero source cell appears exactly once across the split.
	seen := map[[2]int32]float32{}
	for _, c := range append(shipped, dropped...) {
		key := [2]int32{c.row, c.col}
		if _, dup := seen[key]; dup {
			t.Fatalf("cell %v appears in both ship and next", key)
		}
		seen[key] = c.val
	}
	for r := range src.Rows {
		for c := src.RowOff[r]; c < src.RowOff[r+1]; c++ {
			if src.Vals[c] == 0 {
				continue
			}
			if v, ok := seen[[2]int32{src.Rows[r], src.Cols[c]}]; !ok || v != src.Vals[c] {
				t.Fatalf("source cell (%d,%d)=%g lost in the split", src.Rows[r], src.Cols[c], src.Vals[c])
			}
		}
	}
	// Biases: always ship (row 5 has no kept cells but bias 0 → no row;
	// row 9's bias -1 ships).
	for r := range ship.Rows {
		var want float32
		for sr := range src.Rows {
			if src.Rows[sr] == ship.Rows[r] {
				want = src.Bias[sr]
			}
		}
		if ship.Bias[r] != want {
			t.Fatalf("ship row %d bias %g, want %g", ship.Rows[r], ship.Bias[r], want)
		}
	}
	// CSR invariants on the shipped delta.
	if len(ship.RowOff) != len(ship.Rows)+1 || len(ship.Bias) != len(ship.Rows) {
		t.Fatalf("inconsistent CSR: %d rows, %d offsets, %d biases", len(ship.Rows), len(ship.RowOff), len(ship.Bias))
	}
	for r := 1; r < len(ship.Rows); r++ {
		if ship.Rows[r] <= ship.Rows[r-1] {
			t.Fatal("rows not ascending")
		}
	}

	// A later, smaller batch: k tracks the fresh delta, not the grown
	// accumulator — 2 fresh cells at k=1 ship exactly 1 cell even though
	// the residual still holds 3 competing entries.
	src2 := LayerDelta{
		Rows:   []int32{5},
		RowOff: []int32{0, 2},
		Cols:   []int32{5, 6},
		Vals:   []float32{9, 0.0625},
		Bias:   []float32{0.5},
	}
	topKSelectLayer(&src2, &res, 10, 8, 1, &ship, nil)
	if got := len(ship.Vals); got != 1 {
		t.Fatalf("second batch shipped %d cells at k=1, want 1", got)
	}
	if ship.Vals[0] != 9 {
		t.Fatalf("second batch shipped %g, want the largest cell 9", ship.Vals[0])
	}
	if got := len(collectRes(&res)); got != 4 {
		t.Fatalf("residual holds %d cells after second batch, want 3 carried + 1 new", got)
	}
}

// TestSelectTopKTieBreaking: with every magnitude equal, exactly k cells
// ship — the quota resolves threshold ties in scan order instead of
// keeping all or none.
func TestSelectTopKTieBreaking(t *testing.T) {
	src := LayerDelta{
		Rows:   []int32{0},
		RowOff: []int32{0, 10},
		Cols:   []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		Vals:   []float32{1, -1, 1, 1, -1, 1, -1, 1, 1, -1},
		Bias:   []float32{0},
	}
	var ship LayerDelta
	var res efLayer
	topKSelectLayer(&src, &res, 1, 10, 3, &ship, nil)
	if got := len(ship.Vals); got != 3 {
		t.Fatalf("shipped %d of 10 tied cells at k=3, want exactly 3", got)
	}
	// Scan order: the first three cells win the quota.
	for i, want := range []int32{0, 1, 2} {
		if ship.Cols[i] != want {
			t.Fatalf("ship cols %v, want ties kept in scan order [0 1 2]", ship.Cols[:3])
		}
	}
	var left int
	for _, v := range res.rows[0] {
		if v != 0 {
			left++
		}
	}
	if left != 7 {
		t.Fatalf("residual has %d cells, want 7", left)
	}
}

// trainLoopbackTC trains a fresh network on the delta-test task with the
// echo exchanger and returns it. Single-threaded batch-sync so runs are
// bitwise comparable.
func trainLoopbackTC(t *testing.T, mutate func(*TrainConfig)) (*Network, *TrainResult) {
	t.Helper()
	const classes = 128
	ds := deltaTestDataset(t, classes)
	n := mustNet(t, deltaTestConfig(classes, optim.ModeBatchSync))
	tc := TrainConfig{
		BatchSize: 32, Iterations: 24, Threads: 1, EvalEvery: 0, Seed: 9,
		Shards: 1, Exchanger: loopback{},
	}
	if mutate != nil {
		mutate(&tc)
	}
	res, err := n.Train(ds.Train, ds.Test, tc)
	if err != nil {
		t.Fatal(err)
	}
	return n, res
}

// TestTopKFullFractionMatchesFP32: at frac 1.0 top-k selection keeps
// every cell, so training is bit-identical to the uncompressed path and
// the error-feedback residual never accumulates anything.
func TestTopKFullFractionMatchesFP32(t *testing.T) {
	plain, _ := trainLoopbackTC(t, nil)
	topk, _ := trainLoopbackTC(t, func(tc *TrainConfig) {
		tc.Compress = CompressTopK
		tc.TopKFrac = 1.0
	})
	requireNetsBitIdentical(t, plain, topk, "topk:1.0 vs fp32")
	if r := topk.residualCells(); r != 0 {
		t.Fatalf("error-feedback residual holds %d cells at frac 1.0, want 0", r)
	}
}

// TestTopKResidualConservesGradientMass: with frac < 1 the residual is
// non-empty mid-run, and shipped + residual reconstructs the folded
// gradient exactly — error feedback delays mass, never loses it.
func TestTopKResidualConservesGradientMass(t *testing.T) {
	const classes = 128
	ds := deltaTestDataset(t, classes)
	n := mustNet(t, deltaTestConfig(classes, optim.ModeHogwild))
	st := mustState(t, n, 5)

	var residualSeen bool
	for b := 0; b < 4; b++ {
		runManualBatch(t, n, st, ds.Train[b*16:(b+1)*16], nil)
		d := n.ExtractDelta(nil, 2)
		// The folded gradient the selection splits: batch delta + residual
		// carried in from previous batches.
		var folded *SparseDelta
		if n.residualCells() > 0 {
			var err error
			folded, err = MergeDeltas(nil, []*SparseDelta{d.Clone(), n.residualDelta()})
			if err != nil {
				t.Fatal(err)
			}
		} else {
			folded = d.Clone()
		}
		ship := n.compressTopK(d, 0.25)
		if n.residualCells() > 0 {
			residualSeen = true
		}
		recon, err := MergeDeltas(nil, []*SparseDelta{ship, n.residualDelta()})
		if err != nil {
			t.Fatal(err)
		}
		got, want := deltaAsMap(recon), deltaAsMap(folded)
		for k, wv := range want {
			if wv == 0 {
				continue // exact-zero cells are discarded, not residualized
			}
			if gv := got[k]; gv != wv {
				t.Fatalf("batch %d: cell %v = %g after split, want %g", b, k, gv, wv)
			}
		}
		if shipped := ship.Cells(); shipped == 0 {
			t.Fatalf("batch %d shipped nothing at frac 0.25", b)
		}
	}
	if !residualSeen {
		t.Fatal("residual never accumulated at frac 0.25; test is vacuous")
	}
}

// TestOverlapAsyncMatchesJoined pins the overlap pipeline's asynchrony as
// pure mechanism: running the exchange on a background goroutine must
// leave weights bit-identical to running it inline at launch (same
// pipelined apply points, zero concurrency). Checked for fp32 and for
// topk with error feedback.
func TestOverlapAsyncMatchesJoined(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(*TrainConfig)
	}{
		{"fp32", func(tc *TrainConfig) { tc.OverlapExchange = true }},
		{"topk", func(tc *TrainConfig) {
			tc.OverlapExchange = true
			tc.Compress = CompressTopK
			tc.TopKFrac = 0.5
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			async, resAsync := trainLoopbackTC(t, v.mutate)
			testOverlapSyncJoin = true
			defer func() { testOverlapSyncJoin = false }()
			joined, _ := trainLoopbackTC(t, v.mutate)
			requireNetsBitIdentical(t, async, joined, "async vs joined overlap")
			if resAsync.ExchangeNS < 0 || resAsync.ExchangeHiddenNS < 0 {
				t.Fatalf("negative exchange accounting: blocked %d, hidden %d",
					resAsync.ExchangeNS, resAsync.ExchangeHiddenNS)
			}
		})
	}
}

// TestOverlapAppliesEveryDelta: an overlapped run must finish with the
// in-flight exchange settled — same number of applied merged deltas as a
// synchronous run — even though applies trail extraction by one batch.
// The echo exchanger counts its rounds to prove none were dropped.
func TestOverlapAppliesEveryDelta(t *testing.T) {
	count := &countingLoopback{}
	_, res := trainLoopbackTC(t, func(tc *TrainConfig) {
		tc.OverlapExchange = true
		tc.Exchanger = count
	})
	if count.rounds != res.Iterations {
		t.Fatalf("exchanged %d rounds over %d iterations", count.rounds, res.Iterations)
	}
	if res.Iterations != 24 {
		t.Fatalf("ran %d iterations, want 24", res.Iterations)
	}
}

type countingLoopback struct{ rounds int64 }

func (c *countingLoopback) Exchange(_ int64, local *SparseDelta, stop bool) (*SparseDelta, bool, error) {
	c.rounds++
	return local, stop, nil
}

// TestTrainRejectsBadCompression: out-of-range compression modes and
// fractions fail fast instead of training with a silently wrong config.
func TestTrainRejectsBadCompression(t *testing.T) {
	const classes = 128
	ds := deltaTestDataset(t, classes)
	n := mustNet(t, deltaTestConfig(classes, optim.ModeBatchSync))
	tc := TrainConfig{BatchSize: 16, Iterations: 1, Threads: 1, Seed: 1, Compress: DeltaCompression(99)}
	if _, err := n.Train(ds.Train, nil, tc); err == nil {
		t.Fatal("trained with an unknown compression mode")
	}
	tc.Compress = CompressTopK
	tc.TopKFrac = 0
	if _, err := n.Train(ds.Train, nil, tc); err == nil {
		t.Fatal("trained with TopKFrac = 0")
	}
}
