package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sparse"
)

// predictSeed salts the network seed for inference-state RNG streams so
// prediction never perturbs the training streams.
const predictSeed = 0x9ed1c7

// Predictor is a reusable, concurrency-safe inference session over a
// Network. It owns a pool of per-worker element states (activations,
// hash-code scratch, sampling strategies) sized to the network, so
// steady-state prediction performs no per-call element-state allocations
// — the property the "Accelerating SLIDE" follow-up (Daghaghi et al.,
// 2021) identifies as the source of SLIDE's CPU serving wins.
//
// A single Predictor may be shared by any number of goroutines; each call
// checks a state out of the pool and returns it when done. Predictions
// only read the network's weights and hash tables, so concurrent
// Predict/PredictBatch calls are race-free. Predicting concurrently with
// Train shares the weights with HOGWILD updates and inherits the paper's
// weak-consistency argument: reads may observe partially applied updates
// but never corrupt state.
type Predictor struct {
	n    *Network
	pool sync.Pool // stores *elemState; empty Get returns nil
	// seq hands each freshly built state a distinct worker index so its
	// strategy/RNG streams are independent.
	seq atomic.Uint64
}

// NewPredictor builds an inference session for the network. The returned
// Predictor is safe for concurrent use and amortizes element-state
// allocation across calls; construct it once and share it.
func (n *Network) NewPredictor() (*Predictor, error) {
	p := &Predictor{n: n}
	// Build the first state eagerly: it validates the sampling
	// configuration so later pool refills cannot fail.
	st, err := p.newState()
	if err != nil {
		return nil, err
	}
	p.pool.Put(st)
	return p, nil
}

func (p *Predictor) newState() (*elemState, error) {
	w := int(p.seq.Add(1)) - 1
	return newElemState(p.n, p.n.cfg.Seed^predictSeed, w)
}

// getState checks a per-worker state out of the pool, building a new one
// if the pool is empty (first use, or GC reclaimed pooled states).
func (p *Predictor) getState() (*elemState, error) {
	if st, _ := p.pool.Get().(*elemState); st != nil {
		return st, nil
	}
	return p.newState()
}

func (p *Predictor) putState(st *elemState) { p.pool.Put(st) }

// Network returns the network this predictor serves.
func (p *Predictor) Network() *Network { return p.n }

// Predict runs an exact (all neurons active) forward pass and returns the
// top-k class ids with their softmax-layer scores, highest first.
func (p *Predictor) Predict(x sparse.Vector, k int) ([]int32, []float32, error) {
	return p.TopKWithScores(x, k, false)
}

// PredictSampled runs SLIDE's sub-linear inference: active neurons come
// from the hash tables, and only their scores are computed.
func (p *Predictor) PredictSampled(x sparse.Vector, k int) ([]int32, []float32, error) {
	return p.TopKWithScores(x, k, true)
}

// TopKWithScores is the general single-example entry point: it runs one
// forward pass (sampled or exact) and extracts the top-k class ids and
// scores in a single selection pass, highest score first.
func (p *Predictor) TopKWithScores(x sparse.Vector, k int, sampled bool) ([]int32, []float32, error) {
	st, err := p.getState()
	if err != nil {
		return nil, nil, err
	}
	mode := modeEvalFull
	if sampled {
		mode = modeEvalSampled
	}
	ids, scores := p.n.predictInto(st, x, k, mode)
	p.putState(st)
	return ids, scores, nil
}

// PredictBatch predicts exact top-k ids and scores for every input,
// fanning the batch out across GOMAXPROCS pooled workers. Cancellation is
// checked between elements: on ctx cancellation the partial work is
// discarded and ctx.Err() returned.
func (p *Predictor) PredictBatch(ctx context.Context, xs []sparse.Vector, k int) ([][]int32, [][]float32, error) {
	return p.predictBatch(ctx, xs, k, modeEvalFull)
}

// PredictBatchSampled is PredictBatch over the sub-linear sampled
// inference path.
func (p *Predictor) PredictBatchSampled(ctx context.Context, xs []sparse.Vector, k int) ([][]int32, [][]float32, error) {
	return p.predictBatch(ctx, xs, k, modeEvalSampled)
}

func (p *Predictor) predictBatch(ctx context.Context, xs []sparse.Vector, k int, mode forwardMode) ([][]int32, [][]float32, error) {
	if len(xs) == 0 {
		return nil, nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	workers := minInt(defaultThreads(), len(xs))
	states, err := p.acquireStates(workers)
	if err != nil {
		return nil, nil, err
	}
	defer p.releaseStates(states)

	ids := make([][]int32, len(xs))
	scores := make([][]float32, len(xs))
	var cancelled atomic.Bool
	parallelIndexed(workers, len(xs), func(w, lo, hi int) {
		st := states[w]
		for i := lo; i < hi; i++ {
			if cancelled.Load() {
				return
			}
			if ctx.Err() != nil {
				cancelled.Store(true)
				return
			}
			ids[i], scores[i] = p.n.predictInto(st, xs[i], k, mode)
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return ids, scores, nil
}

// acquireStates checks out n states for a fan-out call; on error every
// already-acquired state is returned to the pool.
func (p *Predictor) acquireStates(n int) ([]*elemState, error) {
	states := make([]*elemState, n)
	for i := range states {
		st, err := p.getState()
		if err != nil {
			p.releaseStates(states[:i])
			return nil, err
		}
		states[i] = st
	}
	return states, nil
}

func (p *Predictor) releaseStates(states []*elemState) {
	for _, st := range states {
		p.putState(st)
	}
}

// predictInto runs one forward pass and extracts top-k ids and scores in
// one selection pass over the output layer's active set.
func (n *Network) predictInto(st *elemState, x sparse.Vector, k int, mode forwardMode) ([]int32, []float32) {
	n.forwardElem(st, x, nil, mode)
	out := &st.layers[len(st.layers)-1]
	pos := sparse.TopK(out.vals, k)
	ids := make([]int32, len(pos))
	scores := make([]float32, len(pos))
	for i, p := range pos {
		scores[i] = out.vals[p]
		if out.full {
			ids[i] = p
		} else {
			ids[i] = out.ids[p]
		}
	}
	return ids, scores
}

// defaultPredictor lazily builds the predictor backing the Network's
// convenience Predict/PredictSampled/Evaluate methods.
func (n *Network) defaultPredictor() (*Predictor, error) {
	n.predOnce.Do(func() {
		n.pred, n.predErr = n.NewPredictor()
	})
	if n.predErr != nil {
		return nil, fmt.Errorf("core: building default predictor: %w", n.predErr)
	}
	return n.pred, nil
}
