package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sparse"
)

// predictSeed salts the network seed for inference-state RNG streams so
// prediction never perturbs the training streams.
const predictSeed = 0x9ed1c7

// Predictor is a reusable, concurrency-safe inference session over a
// Network. It owns a pool of per-worker element states (activations,
// hash-code scratch, sampling strategies) sized to the network, so
// steady-state prediction performs no per-call element-state allocations
// — the property the "Accelerating SLIDE" follow-up (Daghaghi et al.,
// 2021) identifies as the source of SLIDE's CPU serving wins.
//
// A single Predictor may be shared by any number of goroutines; each call
// checks a state out of the pool and returns it when done. Predictions
// only read the network's weights and hash tables, so concurrent
// Predict/PredictBatch calls are race-free. Predicting concurrently with
// Train shares the weights with HOGWILD updates and inherits the paper's
// weak-consistency argument: reads may observe partially applied updates
// but never corrupt state; the column-major kernel mirrors the scatter
// forward form streams are dual-written by the same Adam step and carry
// the identical argument. Hash tables are read through each layer's
// atomically swapped handle, so inference stays valid in the middle of a
// background table rebuild: a query runs coherently on whichever table
// generation it loaded, and the swap to the next generation is invisible
// to in-flight passes.
//
// Every pass plans its kernels through the network's density-adaptive
// engine (internal/kernels): exact and sampled inference share the
// training hot path's gather/scatter forms, so serving inherits each
// layout win without predictor-specific code.
type Predictor struct {
	n    *Network
	pool sync.Pool // stores *elemState; empty Get returns nil
	// seededPool holds states reserved for seeded (deterministic) calls.
	// A seeded pass re-derives every stream in the state from the request
	// seed, which would destroy the per-worker stream independence the
	// unseeded pool relies on — so reseeded states never mix back into
	// pool. Workloads that never pass PredictOpts never fill it.
	seededPool sync.Pool
	// seq hands each freshly built state a distinct worker index so its
	// strategy/RNG streams are independent.
	seq atomic.Uint64
}

// NewPredictor builds an inference session for the network. The returned
// Predictor is safe for concurrent use and amortizes element-state
// allocation across calls; construct it once and share it.
func (n *Network) NewPredictor() (*Predictor, error) {
	p := &Predictor{n: n}
	// Build the first state eagerly: it validates the sampling
	// configuration so later pool refills cannot fail.
	st, err := p.newState()
	if err != nil {
		return nil, err
	}
	p.pool.Put(st)
	return p, nil
}

func (p *Predictor) newState() (*elemState, error) {
	w := int(p.seq.Add(1)) - 1
	return newElemState(p.n, p.n.cfg.Seed^predictSeed, w)
}

// statePool selects the pool a call draws from: seeded calls use the
// quarantined seededPool so their reseeds never perturb unseeded workers.
func (p *Predictor) statePool(seeded bool) *sync.Pool {
	if seeded {
		return &p.seededPool
	}
	return &p.pool
}

// getState checks a per-worker state out of the selected pool, building a
// new one if the pool is empty (first use, or GC reclaimed pooled
// states).
func (p *Predictor) getState(seeded bool) (*elemState, error) {
	if st, _ := p.statePool(seeded).Get().(*elemState); st != nil {
		return st, nil
	}
	return p.newState()
}

func (p *Predictor) putState(st *elemState, seeded bool) { p.statePool(seeded).Put(st) }

// Network returns the network this predictor serves.
func (p *Predictor) Network() *Network { return p.n }

// PredictOpts requests deterministic sampled inference. Passing one to a
// sampled Predict* call reseeds the checked-out worker state from Seed
// before the forward pass, so two calls with the same input and the same
// Seed return bitwise-identical ids and scores regardless of which pooled
// state serves them, of concurrent traffic, or of how many predictions
// came before. Calls without a PredictOpts keep the pooled fast path:
// each worker state advances its private streams and results are not
// reproducible across calls. Seeded calls draw from a separate state
// pool, so they never disturb the unseeded workers' stream independence.
// Seeding only affects the sampled path — exact inference is already
// deterministic.
type PredictOpts struct {
	// Seed drives the request's strategy and fallback-RNG streams.
	Seed uint64
}

// Predict runs an exact (all neurons active) forward pass and returns the
// top-k class ids with their softmax-layer scores, highest first.
func (p *Predictor) Predict(x sparse.Vector, k int) ([]int32, []float32, error) {
	return p.TopKWithScores(x, k, false)
}

// PredictSampled runs SLIDE's sub-linear inference: active neurons come
// from the hash tables, and only their scores are computed. Passing a
// PredictOpts makes the sampled draw deterministic in its Seed.
func (p *Predictor) PredictSampled(x sparse.Vector, k int, opts ...PredictOpts) ([]int32, []float32, error) {
	return p.TopKWithScores(x, k, true, opts...)
}

// TopKWithScores is the general single-example entry point: it runs one
// forward pass (sampled or exact) and extracts the top-k class ids and
// scores in a single selection pass, highest score first. At most one
// PredictOpts may be passed; it seeds the sampled path per PredictOpts.
func (p *Predictor) TopKWithScores(x sparse.Vector, k int, sampled bool, opts ...PredictOpts) ([]int32, []float32, error) {
	seeded := sampled && len(opts) > 0
	st, err := p.getState(seeded)
	if err != nil {
		return nil, nil, err
	}
	if seeded {
		st.reseed(opts[0].Seed)
	}
	mode := modeEvalFull
	if sampled {
		mode = modeEvalSampled
	}
	ids, scores := p.n.predictInto(st, x, k, mode)
	p.putState(st, seeded)
	return ids, scores, nil
}

// TopKWithScoresCtx is TopKWithScores for deadline-bounded serving: work
// that is already doomed (ctx cancelled or past its deadline) is refused
// before a worker state is checked out and the forward pass runs, so a
// server propagating per-request deadlines never spends a full pass on a
// request whose client has given up. A context that expires mid-pass does
// not abort the pass — a single example is the unit of cancellation, as
// in PredictBatch.
func (p *Predictor) TopKWithScoresCtx(ctx context.Context, x sparse.Vector, k int, sampled bool, opts ...PredictOpts) ([]int32, []float32, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return p.TopKWithScores(x, k, sampled, opts...)
}

// TopKWithScoresInto is TopKWithScoresCtx appending the result into the
// caller's ids/scores buffers (reusing their capacity) instead of
// allocating fresh slices — the allocation-free serving entry point. Once
// the buffers' capacity covers k, a steady-state call performs zero heap
// allocations: the worker state comes from the pool, selection scratch
// lives in the state, and the results land in the caller's memory. The
// returned slices are the (possibly grown) buffers; the input slices'
// contents are discarded.
func (p *Predictor) TopKWithScoresInto(ctx context.Context, x sparse.Vector, k int, sampled bool, ids []int32, scores []float32, opts ...PredictOpts) ([]int32, []float32, error) {
	if err := ctx.Err(); err != nil {
		return ids, scores, err
	}
	seeded := sampled && len(opts) > 0
	st, err := p.getState(seeded)
	if err != nil {
		return ids, scores, err
	}
	if seeded {
		st.reseed(opts[0].Seed)
	}
	mode := modeEvalFull
	if sampled {
		mode = modeEvalSampled
	}
	ids, scores = p.n.predictIntoBuf(st, x, k, mode, ids, scores)
	p.putState(st, seeded)
	return ids, scores, nil
}

// PredictBatch predicts exact top-k ids and scores for every input,
// fanning the batch out across GOMAXPROCS pooled workers. Cancellation is
// checked between elements: on ctx cancellation the partial work is
// discarded and ctx.Err() returned.
func (p *Predictor) PredictBatch(ctx context.Context, xs []sparse.Vector, k int) ([][]int32, [][]float32, error) {
	return p.predictBatch(ctx, xs, k, modeEvalFull)
}

// PredictBatchSampled is PredictBatch over the sub-linear sampled
// inference path. Passing a PredictOpts makes every element's draw
// deterministic: element i is seeded with a per-element seed derived from
// Seed and i (element 0 uses Seed itself, so a one-element seeded batch
// matches a seeded PredictSampled), independent of how the batch is
// partitioned across workers.
func (p *Predictor) PredictBatchSampled(ctx context.Context, xs []sparse.Vector, k int, opts ...PredictOpts) ([][]int32, [][]float32, error) {
	return p.predictBatch(ctx, xs, k, modeEvalSampled, opts...)
}

func (p *Predictor) predictBatch(ctx context.Context, xs []sparse.Vector, k int, mode forwardMode, opts ...PredictOpts) ([][]int32, [][]float32, error) {
	if len(xs) == 0 {
		return nil, nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	seeded := mode == modeEvalSampled && len(opts) > 0
	workers := min(defaultThreads(), len(xs))
	states, err := p.acquireStates(workers, seeded)
	if err != nil {
		return nil, nil, err
	}
	defer p.releaseStates(states, seeded)

	ids := make([][]int32, len(xs))
	scores := make([][]float32, len(xs))
	var cancelled atomic.Bool
	parallelIndexed(workers, len(xs), func(w, lo, hi int) {
		st := states[w]
		for i := lo; i < hi; i++ {
			if cancelled.Load() {
				return
			}
			if ctx.Err() != nil {
				cancelled.Store(true)
				return
			}
			if seeded {
				st.reseed(elemSeed(opts[0].Seed, i))
			}
			ids[i], scores[i] = p.n.predictInto(st, xs[i], k, mode)
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return ids, scores, nil
}

// BatchResults is reusable result storage for PredictBatchInto. IDs[i]
// and Scores[i] hold element i's top-k ids and scores, highest first;
// both alias a flat backing array that is reused across calls, so a
// steady-state caller re-running batches of the same shape allocates
// nothing. The contents are valid until the next PredictBatchInto call
// on the same BatchResults.
type BatchResults struct {
	IDs    [][]int32
	Scores [][]float32

	idsFlat    []int32
	scoresFlat []float32
}

// prepare sizes the result storage for n elements of up to k results
// each, handing element i the capacity-bounded subslice
// flat[i*k : i*k : (i+1)*k] so concurrent workers append into disjoint
// memory.
func (r *BatchResults) prepare(n, k int) {
	if cap(r.idsFlat) < n*k {
		r.idsFlat = make([]int32, n*k)
		r.scoresFlat = make([]float32, n*k)
	}
	if cap(r.IDs) < n {
		r.IDs = make([][]int32, n)
		r.Scores = make([][]float32, n)
	}
	r.IDs, r.Scores = r.IDs[:n], r.Scores[:n]
	for i := 0; i < n; i++ {
		r.IDs[i] = r.idsFlat[i*k : i*k : (i+1)*k]
		r.Scores[i] = r.scoresFlat[i*k : i*k : (i+1)*k]
	}
}

// PredictBatchInto is PredictBatch/PredictBatchSampled writing into a
// caller-owned BatchResults instead of allocating per-element result
// slices — the allocation-free bulk entry point. Semantics match
// predictBatch exactly: exact or sampled mode, per-element seeding when
// a PredictOpts is passed with sampled=true, cancellation checked
// between elements.
func (p *Predictor) PredictBatchInto(ctx context.Context, xs []sparse.Vector, k int, sampled bool, res *BatchResults, opts ...PredictOpts) error {
	if len(xs) == 0 {
		res.prepare(0, 0)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	mode := modeEvalFull
	if sampled {
		mode = modeEvalSampled
	}
	seeded := sampled && len(opts) > 0
	workers := min(defaultThreads(), len(xs))
	if workers == 1 {
		// Inline path: one pooled state, no goroutine fan-out, no
		// closure — zero steady-state allocations.
		st, err := p.getState(seeded)
		if err != nil {
			return err
		}
		defer p.putState(st, seeded)
		res.prepare(len(xs), k)
		for i := range xs {
			if err := ctx.Err(); err != nil {
				return err
			}
			if seeded {
				st.reseed(elemSeed(opts[0].Seed, i))
			}
			res.IDs[i], res.Scores[i] = p.n.predictIntoBuf(st, xs[i], k, mode, res.IDs[i], res.Scores[i])
		}
		return nil
	}
	states, err := p.acquireStates(workers, seeded)
	if err != nil {
		return err
	}
	defer p.releaseStates(states, seeded)

	res.prepare(len(xs), k)
	var cancelled atomic.Bool
	parallelIndexed(workers, len(xs), func(w, lo, hi int) {
		st := states[w]
		for i := lo; i < hi; i++ {
			if cancelled.Load() {
				return
			}
			if ctx.Err() != nil {
				cancelled.Store(true)
				return
			}
			if seeded {
				st.reseed(elemSeed(opts[0].Seed, i))
			}
			res.IDs[i], res.Scores[i] = p.n.predictIntoBuf(st, xs[i], k, mode, res.IDs[i], res.Scores[i])
		}
	})
	return ctx.Err()
}

// elemSeed derives batch element i's seed from the request seed. The
// golden-ratio stride lands every element on a distinct seed while keeping
// elemSeed(seed, 0) == seed; PCG's seed diffusion makes even adjacent
// seeds statistically independent streams.
func elemSeed(seed uint64, i int) uint64 {
	return seed + uint64(i)*layerSeedMix
}

// acquireStates checks out n states for a fan-out call; on error every
// already-acquired state is returned to its pool.
func (p *Predictor) acquireStates(n int, seeded bool) ([]*elemState, error) {
	states := make([]*elemState, n)
	for i := range states {
		st, err := p.getState(seeded)
		if err != nil {
			p.releaseStates(states[:i], seeded)
			return nil, err
		}
		states[i] = st
	}
	return states, nil
}

func (p *Predictor) releaseStates(states []*elemState, seeded bool) {
	for _, st := range states {
		p.putState(st, seeded)
	}
}

// predictInto runs one forward pass and extracts top-k ids and scores in
// one selection pass over the output layer's active set, returning fresh
// result slices.
func (n *Network) predictInto(st *elemState, x sparse.Vector, k int, mode forwardMode) ([]int32, []float32) {
	return n.predictIntoBuf(st, x, k, mode, nil, nil)
}

// predictIntoBuf is predictInto appending into caller buffers: the
// forward pass runs on pooled state, top-k selection reuses the state's
// Selector scratch, and ids/scores grow only until their capacity covers
// k — after which the whole path is allocation-free.
func (n *Network) predictIntoBuf(st *elemState, x sparse.Vector, k int, mode forwardMode, ids []int32, scores []float32) ([]int32, []float32) {
	n.forwardElem(st, x, nil, mode)
	out := &st.layers[len(st.layers)-1]
	pos := st.sel.TopKInto(st.topkPos, out.vals, k)
	st.topkPos = pos
	ids, scores = ids[:0], scores[:0]
	for _, p := range pos {
		scores = append(scores, out.vals[p])
		if out.full {
			ids = append(ids, p)
		} else {
			ids = append(ids, out.ids[p])
		}
	}
	return ids, scores
}

// defaultPredictor lazily builds the predictor backing the Network's
// convenience Predict/PredictSampled/Evaluate methods.
func (n *Network) defaultPredictor() (*Predictor, error) {
	n.predOnce.Do(func() {
		n.pred, n.predErr = n.NewPredictor()
	})
	if n.predErr != nil {
		return nil, fmt.Errorf("core: building default predictor: %w", n.predErr)
	}
	return n.pred, nil
}
