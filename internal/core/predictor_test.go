package core

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/sparse"
)

// trainedNet returns a briefly trained network plus its dataset, shared
// across predictor tests.
func trainedNet(t testing.TB, classes int) (*Network, []sparse.Vector, [][]int32) {
	t.Helper()
	ds := tinyDataset(t, classes)
	n, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(ds.Train, ds.Test, TrainConfig{Epochs: 2, Seed: 9, EvalEvery: 0}); err != nil {
		t.Fatal(err)
	}
	xs := make([]sparse.Vector, len(ds.Test))
	labels := make([][]int32, len(ds.Test))
	for i, ex := range ds.Test {
		xs[i] = ex.Features
		labels[i] = ex.Labels
	}
	return n, xs, labels
}

// preRedesignPredict replicates the seed's allocate-per-call inference
// exactly: a fresh worker-0 element state per call, forward pass, then
// two independent top-k selections for ids and scores.
func preRedesignPredict(t testing.TB, n *Network, x sparse.Vector, k int, mode forwardMode) ([]int32, []float32) {
	t.Helper()
	st, err := newElemState(n, n.cfg.Seed^predictSeed, 0)
	if err != nil {
		t.Fatal(err)
	}
	n.forwardElem(st, x, nil, mode)
	out := &st.layers[len(st.layers)-1]
	var ids []int32
	pos := sparse.TopK(out.vals, k)
	if out.full {
		ids = pos
	} else {
		ids = make([]int32, len(pos))
		for i, p := range pos {
			ids[i] = out.ids[p]
		}
	}
	scores := make([]float32, len(pos))
	for i, p := range pos {
		scores[i] = out.vals[p]
	}
	return ids, scores
}

func eqIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqScores(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPredictorParityWithPreRedesign pins the redesign to the seed
// behavior: for a fixed seed, Predictor.Predict matches the old
// allocate-per-call exact inference on every example, and the first
// PredictSampled from a fresh Predictor matches the old sampled inference
// (later sampled calls share the pooled state's RNG stream, so only the
// first call is bitwise-pinned).
func TestPredictorParityWithPreRedesign(t *testing.T) {
	n, xs, _ := trainedNet(t, 128)
	p, err := n.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	for i := 0; i < 50; i++ {
		wantIDs, wantScores := preRedesignPredict(t, n, xs[i], k, modeEvalFull)
		gotIDs, gotScores, err := p.Predict(xs[i], k)
		if err != nil {
			t.Fatal(err)
		}
		if !eqIDs(wantIDs, gotIDs) || !eqScores(wantScores, gotScores) {
			t.Fatalf("exact parity broke at example %d: got %v/%v want %v/%v",
				i, gotIDs, gotScores, wantIDs, wantScores)
		}
		// Network.Predict is now a thin wrapper over the same pool.
		netIDs, netScores, err := n.Predict(xs[i], k)
		if err != nil {
			t.Fatal(err)
		}
		if !eqIDs(wantIDs, netIDs) || !eqScores(wantScores, netScores) {
			t.Fatalf("Network.Predict parity broke at example %d", i)
		}
	}

	if raceEnabled {
		// Under -race, sync.Pool drops Put items at random, so the
		// fresh predictor may build a different worker stream and the
		// sampled draw is not bitwise-pinned.
		return
	}
	wantIDs, wantScores := preRedesignPredict(t, n, xs[0], k, modeEvalSampled)
	fresh, err := n.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	gotIDs, gotScores, err := fresh.PredictSampled(xs[0], k)
	if err != nil {
		t.Fatal(err)
	}
	if !eqIDs(wantIDs, gotIDs) || !eqScores(wantScores, gotScores) {
		t.Fatalf("sampled parity broke: got %v/%v want %v/%v", gotIDs, gotScores, wantIDs, wantScores)
	}
}

// TestPredictBatchMatchesSequential checks exact-mode batch fan-out
// returns elementwise-identical results to sequential single predictions.
func TestPredictBatchMatchesSequential(t *testing.T) {
	n, xs, _ := trainedNet(t, 128)
	p, err := n.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	const k = 4
	batch := xs[:200]
	ids, scores, err := p.PredictBatch(context.Background(), batch, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(batch) || len(scores) != len(batch) {
		t.Fatalf("batch returned %d/%d results for %d inputs", len(ids), len(scores), len(batch))
	}
	for i, x := range batch {
		wantIDs, wantScores, err := p.Predict(x, k)
		if err != nil {
			t.Fatal(err)
		}
		if !eqIDs(wantIDs, ids[i]) || !eqScores(wantScores, scores[i]) {
			t.Fatalf("batch[%d] = %v/%v, sequential = %v/%v", i, ids[i], scores[i], wantIDs, wantScores)
		}
	}
}

func TestPredictBatchHonorsCancellation(t *testing.T) {
	n, xs, _ := trainedNet(t, 128)
	p, err := n.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := p.PredictBatch(ctx, xs, 3); err != context.Canceled {
		t.Fatalf("cancelled batch returned %v, want context.Canceled", err)
	}
}

// TestTopKWithScoresCtx: the context-gated single prediction refuses
// doomed work (spent deadline, cancelled caller) without touching a
// pooled state, and with a live context matches TopKWithScores exactly.
func TestTopKWithScoresCtx(t *testing.T) {
	n, xs, _ := trainedNet(t, 128)
	p, err := n.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := p.TopKWithScoresCtx(cancelled, xs[0], 3, false); err != context.Canceled {
		t.Fatalf("cancelled predict returned %v, want context.Canceled", err)
	}
	expired, cancel2 := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel2()
	if _, _, err := p.TopKWithScoresCtx(expired, xs[0], 3, true); err != context.DeadlineExceeded {
		t.Fatalf("expired predict returned %v, want context.DeadlineExceeded", err)
	}
	wantIDs, wantScores, err := p.TopKWithScores(xs[1], 4, false)
	if err != nil {
		t.Fatal(err)
	}
	gotIDs, gotScores, err := p.TopKWithScoresCtx(context.Background(), xs[1], 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if !eqIDs(wantIDs, gotIDs) || !eqScores(wantScores, gotScores) {
		t.Fatalf("ctx path %v/%v diverged from plain path %v/%v", gotIDs, gotScores, wantIDs, wantScores)
	}
}

// TestPredictorConcurrentStress hammers one shared Predictor from many
// goroutines across every entry point; run under -race this is the
// concurrency-safety proof for the serving path.
func TestPredictorConcurrentStress(t *testing.T) {
	n, xs, _ := trainedNet(t, 128)
	p, err := n.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	iters := 40
	if testing.Short() {
		iters = 10
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				x := xs[(g*31+i)%len(xs)]
				switch i % 4 {
				case 0:
					if _, _, err := p.Predict(x, 3); err != nil {
						t.Errorf("Predict: %v", err)
						return
					}
				case 1:
					if _, _, err := p.PredictSampled(x, 3); err != nil {
						t.Errorf("PredictSampled: %v", err)
						return
					}
				case 2:
					if _, _, err := p.TopKWithScores(x, 5, g%2 == 0); err != nil {
						t.Errorf("TopKWithScores: %v", err)
						return
					}
				case 3:
					lo := (g * 17) % (len(xs) - 8)
					if _, _, err := p.PredictBatch(ctx, xs[lo:lo+8], 2); err != nil {
						t.Errorf("PredictBatch: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPredictorSteadyStateAllocs verifies the redesign's core promise:
// after warm-up, Predict allocates only its small result slices — no
// per-call element state (the seed allocated activations sized to every
// layer, including the full softmax width, on each call).
func TestPredictorSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector inflates allocations and drops pooled items")
	}
	n, xs, _ := trainedNet(t, 512)
	p, err := n.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Predict(xs[0], 5); err != nil { // warm the pooled state
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := p.Predict(xs[0], 5); err != nil {
			t.Fatal(err)
		}
	})
	// predictInto allocates ids+scores, TopK its heap and result — all
	// O(k). Anything beyond ~8 means element state leaked back into the
	// per-call path.
	if allocs > 8 {
		t.Fatalf("steady-state Predict made %.0f allocs/op, want <= 8 (element state must come from the pool)", allocs)
	}
}

// TestTopKWithScoresIntoZeroAllocs pins the PR 9 promise: with
// caller-owned result buffers, steady-state exact prediction allocates
// nothing at all — the worker state is pooled, top-k selection scratch
// lives in the state, and results land in the caller's memory.
func TestTopKWithScoresIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector inflates allocations and drops pooled items")
	}
	n, xs, _ := trainedNet(t, 512)
	p, err := n.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ids := make([]int32, 0, 5)
	scores := make([]float32, 0, 5)
	// Warm the pooled state and grow the state's selection scratch.
	for i := 0; i < 3; i++ {
		if ids, scores, err = p.TopKWithScoresInto(ctx, xs[0], 5, false, ids, scores); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if ids, scores, err = p.TopKWithScoresInto(ctx, xs[0], 5, false, ids, scores); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state TopKWithScoresInto made %.0f allocs/op, want 0", allocs)
	}
	// The Into path must agree with the allocating path bit-for-bit.
	wantIDs, wantScores, err := p.Predict(xs[1], 5)
	if err != nil {
		t.Fatal(err)
	}
	ids, scores, err = p.TopKWithScoresInto(ctx, xs[1], 5, false, ids, scores)
	if err != nil {
		t.Fatal(err)
	}
	if !eqIDs(wantIDs, ids) || !eqScores(wantScores, scores) {
		t.Fatalf("Into path %v/%v diverged from Predict %v/%v", ids, scores, wantIDs, wantScores)
	}
}

// TestPredictBatchIntoMatchesBatch checks the reusable-storage batch
// entry point returns elementwise-identical results to PredictBatch, in
// both exact and seeded-sampled modes, and that a steady-state
// single-element batch (the inline, no-fan-out path) allocates nothing.
func TestPredictBatchIntoMatchesBatch(t *testing.T) {
	n, xs, _ := trainedNet(t, 128)
	p, err := n.NewPredictor()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const k = 4
	batch := xs[:64]
	var res BatchResults
	if err := p.PredictBatchInto(ctx, batch, k, false, &res); err != nil {
		t.Fatal(err)
	}
	wantIDs, wantScores, err := p.PredictBatch(ctx, batch, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if !eqIDs(wantIDs[i], res.IDs[i]) || !eqScores(wantScores[i], res.Scores[i]) {
			t.Fatalf("exact batch[%d]: Into %v/%v vs alloc %v/%v", i, res.IDs[i], res.Scores[i], wantIDs[i], wantScores[i])
		}
	}
	seed := PredictOpts{Seed: 42}
	if err := p.PredictBatchInto(ctx, batch, k, true, &res, seed); err != nil {
		t.Fatal(err)
	}
	wantIDs, wantScores, err = p.PredictBatchSampled(ctx, batch, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if !eqIDs(wantIDs[i], res.IDs[i]) || !eqScores(wantScores[i], res.Scores[i]) {
			t.Fatalf("seeded batch[%d]: Into %v/%v vs alloc %v/%v", i, res.IDs[i], res.Scores[i], wantIDs[i], wantScores[i])
		}
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if err := p.PredictBatchInto(cancelled, batch, k, false, &res); err != context.Canceled {
		t.Fatalf("cancelled PredictBatchInto returned %v, want context.Canceled", err)
	}

	if raceEnabled {
		return
	}
	one := batch[:1] // single element: acquire one state, run inline
	for i := 0; i < 3; i++ {
		if err := p.PredictBatchInto(ctx, one, k, false, &res); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := p.PredictBatchInto(ctx, one, k, false, &res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state 1-element PredictBatchInto made %.0f allocs/op, want 0", allocs)
	}
}

// TestEvaluateReusesPooledStates pins the satellite fix: repeated
// Evaluate calls agree and, past the first call, stop building fresh
// element states (they come from the default predictor's pool).
func TestEvaluateReusesPooledStates(t *testing.T) {
	n, _, _ := trainedNet(t, 128)
	ds := tinyDataset(t, 128)
	first, err := n.Evaluate(ds.Test, 200, 4, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	second, err := n.Evaluate(ds.Test, 200, 4, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if first.P1 != second.P1 || first.PAtK[5] != second.PAtK[5] {
		t.Fatalf("evaluation not stable across pooled calls: %+v vs %+v", first, second)
	}
}

func TestTrainContextCancellation(t *testing.T) {
	ds := tinyDataset(t, 128)
	n, err := NewNetwork(tinyConfig(128))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var evals int
	res, err := n.TrainContext(ctx, ds.Train, ds.Test, TrainConfig{
		Iterations: 10_000, Seed: 3, EvalEvery: 2,
		OnEval: func(Point) {
			evals++
			if evals == 2 {
				cancel()
			}
		},
	})
	if err != context.Canceled {
		t.Fatalf("TrainContext returned %v, want context.Canceled", err)
	}
	if res == nil || res.Iterations == 0 || res.Iterations >= 10_000 {
		t.Fatalf("expected a partial result, got %+v", res)
	}
	// The partially trained network must still be servable.
	if _, _, err := n.Predict(ds.Test[0].Features, 3); err != nil {
		t.Fatal(err)
	}
}

// TestSaveModelLoadModelRoundTrip checks the self-describing v2 format:
// a network reconstructed by LoadModel alone predicts identically to the
// original.
func TestSaveModelLoadModelRoundTrip(t *testing.T) {
	n, xs, _ := trainedNet(t, 128)
	var buf bytes.Buffer
	if err := n.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		wantIDs, wantScores, err := n.Predict(xs[i], 5)
		if err != nil {
			t.Fatal(err)
		}
		gotIDs, gotScores, err := m.Predict(xs[i], 5)
		if err != nil {
			t.Fatal(err)
		}
		if !eqIDs(wantIDs, gotIDs) || !eqScores(wantScores, gotScores) {
			t.Fatalf("loaded model diverges at example %d", i)
		}
	}
}

func TestLoadModelRejectsV1(t *testing.T) {
	n, _, _ := trainedNet(t, 128)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(&buf); err == nil {
		t.Fatal("LoadModel accepted a v1 weights-only file")
	}
}

// BenchmarkPredict measures steady-state pooled exact inference; compare
// allocs/op and B/op against BenchmarkPredictFreshState, the seed's
// allocate-per-call baseline.
func BenchmarkPredict(b *testing.B) {
	n, xs, _ := trainedNet(b, 512)
	p, err := n.NewPredictor()
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := p.Predict(xs[0], 5); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.Predict(xs[i%len(xs)], 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictSampled is the sub-linear serving path.
func BenchmarkPredictSampled(b *testing.B) {
	n, xs, _ := trainedNet(b, 512)
	p, err := n.NewPredictor()
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := p.PredictSampled(xs[0], 5); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.PredictSampled(xs[i%len(xs)], 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictFreshState is the pre-redesign baseline: a fresh
// element state allocated for every single call.
func BenchmarkPredictFreshState(b *testing.B) {
	n, xs, _ := trainedNet(b, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := newElemState(n, n.cfg.Seed^predictSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		n.predictInto(st, xs[i%len(xs)], 5, modeEvalFull)
	}
}

// BenchmarkPredictBatch measures the multi-core batch fan-out per
// example.
func BenchmarkPredictBatch(b *testing.B) {
	n, xs, _ := trainedNet(b, 512)
	p, err := n.NewPredictor()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	batch := xs[:256]
	if _, _, err := p.PredictBatch(ctx, batch, 5); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.PredictBatch(ctx, batch, 5); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perElem := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(batch))
	b.ReportMetric(perElem, "ns/example")
}
