package core

import (
	"math"

	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// forwardMode selects how active sets are chosen during a pass.
type forwardMode int

const (
	// modeTrain samples active neurons and force-includes the true
	// labels at the output layer (§3.1: labels must be active so the
	// softmax sees its positives).
	modeTrain forwardMode = iota
	// modeEvalSampled samples active neurons without label forcing —
	// SLIDE's sub-linear inference path.
	modeEvalSampled
	// modeEvalFull activates every neuron (exact forward, used for
	// measuring accuracy).
	modeEvalFull
)

// forwardElem runs one batch element through the network (Algorithm 1
// lines 8-13): at each sampled layer the layer input is hashed, active
// neuron ids are retrieved from the tables (Algorithm 2), and only their
// activations are computed; all other activations are treated as zero.
func (n *Network) forwardElem(st *elemState, x sparse.Vector, labels []int32, mode forwardMode) {
	st.nextEpoch()
	inIds := x.Idx
	inVals := x.Val
	inFull := false
	last := len(n.layers) - 1
	for li, l := range n.layers {
		ls := &st.layers[li]
		useAll := !l.Sampled() || mode == modeEvalFull
		if useAll {
			ls.reset(true, l.out)
			ls.vals = ls.vals[:l.out]
		} else {
			n.selectActive(st, li, inIds, inVals, inFull, labels, mode == modeTrain && li == last)
			ls.vals = ls.vals[:len(ls.ids)]
			st.activeSum[li] += int64(len(ls.ids))
			st.activeCount[li]++
		}
		computeActivations(l, ls, inIds, inVals, inFull)
		inIds = ls.ids
		inVals = ls.vals
		inFull = ls.full
	}
}

// selectActive fills st.layers[li].ids by hashing the layer input and
// querying the tables with the layer's strategy, force-including labels
// when asked, and falling back to a random draw if retrieval comes back
// empty (possible right after initialization when buckets are sparse).
func (n *Network) selectActive(st *elemState, li int, inIds []int32, inVals []float32, inFull bool, labels []int32, forceLabels bool) {
	l := n.layers[li]
	ls := &st.layers[li]
	codes := st.codes[li]
	if inFull {
		l.fam.HashDense(inVals, codes)
	} else {
		// Hash families are order-insensitive over (index, value) pairs,
		// so the unsorted active-id list can be viewed as a sparse vector
		// directly.
		l.fam.HashSparse(sparse.Vector{Dim: l.in, Idx: inIds, Val: inVals}, codes)
	}
	// Load the layer's current table set once per query: a background
	// rebuild may publish a new generation mid-pass, but this query
	// completes coherently on whichever set it loaded.
	st.sampleBuf = st.strategies[li].Sample(st.sampleBuf[:0], l.tables.Load(), codes)
	ls.reset(false, len(st.sampleBuf)+len(labels))
	for _, id := range st.sampleBuf {
		if !st.markSeen(li, int32(id)) {
			ls.ids = append(ls.ids, int32(id))
		}
	}
	if forceLabels {
		for _, lab := range labels {
			if !st.markSeen(li, lab) {
				ls.ids = append(ls.ids, lab)
			}
		}
	}
	if len(ls.ids) == 0 {
		want := l.cfg.Beta
		if want <= 0 {
			want = 32
		}
		if want > l.out {
			want = l.out
		}
		for len(ls.ids) < want {
			id := int32(st.rng.Intn(l.out))
			if !st.markSeen(li, id) {
				ls.ids = append(ls.ids, id)
			}
		}
	}
}

// computeActivations computes pre-activations for the active set and
// applies the layer non-linearity. Softmax normalizes over the active set
// only (§3.1).
func computeActivations(l *Layer, ls *layerState, inIds []int32, inVals []float32, inFull bool) {
	if ls.full {
		for j := 0; j < l.out; j++ {
			ls.vals[j] = preact(l, int32(j), inIds, inVals, inFull)
		}
	} else {
		for a, j := range ls.ids {
			ls.vals[a] = preact(l, j, inIds, inVals, inFull)
		}
	}
	switch l.cfg.Activation {
	case ActReLU:
		vecmath.ReLU(ls.vals)
	case ActSoftmax:
		vecmath.Softmax(ls.vals)
	case ActLinear:
	}
}

func preact(l *Layer, j int32, inIds []int32, inVals []float32, inFull bool) float32 {
	if inFull {
		return l.b[j] + vecmath.Dot(l.w[j], inVals)
	}
	return l.b[j] + vecmath.SparseDot(inIds, inVals, l.w[j])
}

// outputDeltaAndLoss fills the output layer's delta with the softmax
// cross-entropy gradient p - y (y uniform over the true labels, the
// multi-label convention of the reference implementation) and returns the
// cross-entropy loss over the active set. labels must be sorted ascending.
func outputDeltaAndLoss(ls *layerState, labels []int32) float64 {
	ls.delta = ls.delta[:len(ls.vals)]
	if len(labels) == 0 {
		copy(ls.delta, ls.vals)
		return 0
	}
	invLab := 1 / float32(len(labels))
	var loss float64
	pos := func(a int) int32 {
		if ls.full {
			return int32(a)
		}
		return ls.ids[a]
	}
	for a := range ls.vals {
		p := ls.vals[a]
		if containsSortedLabel(labels, pos(a)) {
			ls.delta[a] = p - invLab
			loss -= float64(invLab) * math.Log(float64(max(p, 1e-30)))
		} else {
			ls.delta[a] = p
		}
	}
	return loss
}

func containsSortedLabel(labels []int32, c int32) bool {
	lo, hi := 0, len(labels)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case labels[mid] < c:
			lo = mid + 1
		case labels[mid] > c:
			hi = mid
		default:
			return true
		}
	}
	return false
}
