package core

import (
	"math"
	"slices"

	"repro/internal/kernels"
	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// forwardMode selects how active sets are chosen during a pass.
type forwardMode int

const (
	// modeTrain samples active neurons and force-includes the true
	// labels at the output layer (§3.1: labels must be active so the
	// softmax sees its positives).
	modeTrain forwardMode = iota
	// modeEvalSampled samples active neurons without label forcing —
	// SLIDE's sub-linear inference path.
	modeEvalSampled
	// modeEvalFull activates every neuron (exact forward, used for
	// measuring accuracy).
	modeEvalFull
)

// forwardElem runs one batch element through the network (Algorithm 1
// lines 8-13): at each sampled layer the layer input is hashed, active
// neuron ids are retrieved from the tables (Algorithm 2), and only their
// activations are computed; all other activations are treated as zero.
// Activation compute routes through the density-adaptive kernel engine
// (internal/kernels): each (layer, active set) pass is planned as a
// gather or scatter kernel from the measured input density.
func (n *Network) forwardElem(st *elemState, x sparse.Vector, labels []int32, mode forwardMode) {
	st.nextEpoch()
	inIds := x.Idx
	inVals := x.Val
	inFull := false
	last := len(n.layers) - 1
	for li, l := range n.layers {
		ls := &st.layers[li]
		useAll := !l.Sampled() || mode == modeEvalFull
		if useAll {
			ls.reset(true, l.out)
			ls.sizeVals(l.out)
		} else {
			n.selectActive(st, li, inIds, inVals, inFull, labels, mode == modeTrain && li == last)
			ls.sizeVals(len(ls.ids))
			st.activeSum[li] += int64(len(ls.ids))
			st.activeCount[li]++
		}
		n.computeActivations(st, l, ls, inIds, inVals, inFull)
		inIds = ls.ids
		inVals = ls.vals
		inFull = ls.full
	}
}

// selectActive fills st.layers[li].ids by hashing the layer input and
// querying the tables with the layer's strategy, force-including labels
// when asked, and falling back to a draw of Beta random neurons if
// retrieval comes back empty (possible right after initialization when
// buckets are sparse).
func (n *Network) selectActive(st *elemState, li int, inIds []int32, inVals []float32, inFull bool, labels []int32, forceLabels bool) {
	l := n.layers[li]
	ls := &st.layers[li]
	codes := st.codes[li]
	if inFull {
		l.fam.HashDense(inVals, codes)
	} else {
		// Hash families are order-insensitive over (index, value) pairs,
		// so the unsorted active-id list can be viewed as a sparse vector
		// directly.
		l.fam.HashSparse(sparse.Vector{Dim: l.in, Idx: inIds, Val: inVals}, codes)
	}
	// Load the layer's current table set once per query: a background
	// rebuild may publish a new generation mid-pass, but this query
	// completes coherently on whichever set it loaded.
	st.sampleBuf = st.strategies[li].Sample(st.sampleBuf[:0], l.tables.Load(), codes)
	ls.reset(false, len(st.sampleBuf)+len(labels))
	for _, id := range st.sampleBuf {
		if !st.markSeen(li, int32(id)) {
			ls.ids = append(ls.ids, int32(id))
		}
	}
	if forceLabels {
		for _, lab := range labels {
			if !st.markSeen(li, lab) {
				ls.ids = append(ls.ids, lab)
			}
		}
	}
	if len(ls.ids) == 0 {
		n.fallbackActive(st, li)
	}
}

// fallbackActive fills an empty retrieval with Beta random neuron ids.
// Below half the layer it rejection-samples distinct ids; at or above it
// the rejection loop degenerates into a coupon-collector scan (Beta near
// l.out needs ~out·ln(out) draws to find the last few free ids), so the
// fill switches to a deterministic wrap-around run from one random start
// — a single RNG draw, O(out) work, and still reproducible under a fixed
// seed.
func (n *Network) fallbackActive(st *elemState, li int) {
	l := n.layers[li]
	ls := &st.layers[li]
	want := l.cfg.Beta
	if want <= 0 {
		want = 32
	}
	if want > l.out {
		want = l.out
	}
	if 2*want >= l.out {
		start := st.rng.Intn(l.out)
		for off := 0; off < l.out && len(ls.ids) < want; off++ {
			id := int32((start + off) % l.out)
			if !st.markSeen(li, id) {
				ls.ids = append(ls.ids, id)
			}
		}
		return
	}
	for len(ls.ids) < want {
		id := int32(st.rng.Intn(l.out))
		if !st.markSeen(li, id) {
			ls.ids = append(ls.ids, id)
		}
	}
}

// computeActivations computes pre-activations for the active set through
// the planned kernel form and applies the layer non-linearity. Softmax
// normalizes over the active set only (§3.1).
//
//   - gather: active ids are sorted (ascending rows — locality for this
//     pass's weight walk and the backward pass that revisits the same
//     rows), then each row runs one fused dot+bias(+ReLU).
//   - scatter: the full dense output accumulates one contiguous
//     column-Axpy per input nonzero from the layer's column-major
//     mirror; ls.vals doubles as the active-dense workspace.
//   - legacy: the pre-engine per-neuron loop, unsorted and unfused, kept
//     as the equivalence-test reference.
func (n *Network) computeActivations(st *elemState, l *Layer, ls *layerState, inIds []int32, inVals []float32, inFull bool) {
	form := n.kern.ForwardForm(len(inIds), l.in, inFull, l.mirror != nil)
	st.work.Forms[form]++
	relu := l.cfg.Activation == ActReLU
	switch form {
	case kernels.FormScatter:
		kernels.ScatterForward(ls.vals, l.mirror, l.b, inIds, inVals, relu)
	case kernels.FormGather:
		ids := ls.ids
		if ls.full {
			ids = nil
		} else {
			slices.Sort(ids)
		}
		kernels.GatherForward(ls.vals, ids, l.w, l.b, inIds, inVals, inFull, relu)
	default: // kernels.FormLegacy
		computeActivationsLegacy(l, ls, inIds, inVals, inFull)
		return // legacy applies its own non-linearity
	}
	switch l.cfg.Activation {
	case ActSoftmax:
		vecmath.Softmax(ls.vals)
	case ActReLU, ActLinear:
		// ReLU is fused into the kernels above; linear is the identity.
	}
}

// computeActivationsLegacy is the pre-engine per-neuron formulation — one
// scattered sparse dot per active neuron over unsorted ids, activation
// applied as a separate pass. No longer used by KernelAuto networks; it
// survives as the bit-for-bit reference the kernel equivalence tests
// compare gather and scatter against (the applyAdamFused pattern).
func computeActivationsLegacy(l *Layer, ls *layerState, inIds []int32, inVals []float32, inFull bool) {
	if ls.full {
		for j := 0; j < l.out; j++ {
			ls.vals[j] = preact(l, int32(j), inIds, inVals, inFull)
		}
	} else {
		for a, j := range ls.ids {
			ls.vals[a] = preact(l, j, inIds, inVals, inFull)
		}
	}
	switch l.cfg.Activation {
	case ActReLU:
		vecmath.ReLU(ls.vals)
	case ActSoftmax:
		vecmath.Softmax(ls.vals)
	case ActLinear:
	}
}

func preact(l *Layer, j int32, inIds []int32, inVals []float32, inFull bool) float32 {
	if inFull {
		return l.b[j] + vecmath.Dot(l.w[j][:len(inVals)], inVals)
	}
	return l.b[j] + vecmath.SparseDot(inIds, inVals, l.w[j])
}

// outputDeltaAndLoss fills the output layer's delta with the softmax
// cross-entropy gradient p - y (y uniform over the true labels, the
// multi-label convention of the reference implementation) and returns the
// cross-entropy loss over the active set. labels must be sorted ascending.
func outputDeltaAndLoss(ls *layerState, labels []int32) float64 {
	ls.delta = ls.delta[:len(ls.vals)]
	if len(labels) == 0 {
		copy(ls.delta, ls.vals)
		return 0
	}
	invLab := 1 / float32(len(labels))
	var loss float64
	pos := func(a int) int32 {
		if ls.full {
			return int32(a)
		}
		return ls.ids[a]
	}
	for a := range ls.vals {
		p := ls.vals[a]
		if containsSortedLabel(labels, pos(a)) {
			ls.delta[a] = p - invLab
			loss -= float64(invLab) * math.Log(float64(max(p, 1e-30)))
		} else {
			ls.delta[a] = p
		}
	}
	return loss
}

func containsSortedLabel(labels []int32, c int32) bool {
	lo, hi := 0, len(labels)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case labels[mid] < c:
			lo = mid + 1
		case labels[mid] > c:
			hi = mid
		default:
			return true
		}
	}
	return false
}
