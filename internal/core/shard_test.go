package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/kernels"
	"repro/internal/optim"
)

// flipForm temporarily pins the network's kernel form — the lever the
// equivalence tests below use to run the same captured state through the
// sharded and the legacy accumulation paths.
func flipForm(n *Network, f kernels.Form) (restore func()) {
	old := n.kern.Force
	n.kern.Force = f
	return func() { n.kern.Force = old }
}

// TestShardedBackwardMatchesLegacyBitwise is the tentpole's anchor: for
// ModeHogwild and ModeAtomic, a single-worker run whose gradients land in
// per-worker shards must leave weights, biases and Adam moments
// bit-for-bit identical to the same run accumulating into the shared gW
// buffers. Both networks use the gather forward form, so the only
// difference is where backward's floats land; layer 0 exercises the
// sparse-column shard storage (wide fan-in, sparse input) and layer 1 the
// dense arena rows (narrow fan-in, dense input).
func TestShardedBackwardMatchesLegacyBitwise(t *testing.T) {
	const classes = 128
	ds := deltaTestDataset(t, classes)
	for _, mode := range []optim.UpdateMode{optim.ModeHogwild, optim.ModeAtomic} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := deltaTestConfig(classes, mode)
			cfg.Kernels = KernelGather
			sharded := mustNet(t, cfg)
			legacy := mustNet(t, cfg)
			stS := mustState(t, sharded, 99)
			stL := mustState(t, legacy, 99)

			const batchSize = 32
			for b := 0; b < 4; b++ {
				batch := ds.Train[b*batchSize : (b+1)*batchSize]
				alpha := sharded.adam.Alpha(int64(b) + 1)
				invB := float32(1.0 / batchSize)
				runManualBatch(t, sharded, stS, batch, nil)

				// Reference run: identical gather forward, legacy
				// shared-buffer backward + extraction.
				legacy.beginBatch()
				for i := range batch {
					legacy.forwardElem(stL, batch[i].Features, batch[i].Labels, modeTrain)
					restore := flipForm(legacy, kernels.FormLegacy)
					legacy.backwardElem(stL, batch[i].Features, batch[i].Labels, nil)
					restore()
				}

				sharded.applyAdamBatch(alpha, invB, 3)
				restore := flipForm(legacy, kernels.FormLegacy)
				legacy.applyAdamBatch(alpha, invB, 3)
				restore()
			}
			requireNetsBitIdentical(t, sharded, legacy, "sharded vs legacy backward")
			if sharded.touchedWeights != legacy.touchedWeights {
				t.Fatalf("touchedWeights: sharded %d != legacy %d", sharded.touchedWeights, legacy.touchedWeights)
			}
			if sharded.touchedWeights == 0 {
				t.Fatal("no gradient cells were applied; test is vacuous")
			}
		})
	}
}

// TestBatchSyncShardedMatchesLegacyReplay: the id-sharded BatchSync replay
// into backShards must extract the bit-identical SparseDelta to the legacy
// shared-buffer replay of the same captured records.
func TestBatchSyncShardedMatchesLegacyReplay(t *testing.T) {
	const classes = 96
	ds := deltaTestDataset(t, classes)
	cfg := deltaTestConfig(classes, optim.ModeBatchSync)
	cfg.Kernels = KernelGather
	n := mustNet(t, cfg)
	st := mustState(t, n, 42)

	const batchSize = 24
	batch := ds.Train[:batchSize]
	records := make([]*elemRecord, batchSize)
	for i := range records {
		records[i] = &elemRecord{}
	}
	n.beginBatch()
	for i := range batch {
		n.forwardElem(st, batch[i].Features, batch[i].Labels, modeTrain)
		n.backwardElem(st, batch[i].Features, batch[i].Labels, records[i])
	}

	n.accumulateBatchSync(records, 3)
	fromShards := n.ExtractDelta(nil, 2).Clone()

	// Replay the same records through the legacy path. The shards were
	// consumed by the extraction above, and the legacy replay writes gW,
	// so the second extraction reads exclusively legacy state.
	restore := flipForm(n, kernels.FormLegacy)
	n.accumulateBatchSync(records, 3)
	fromBuffers := n.ExtractDelta(nil, 2).Clone()
	restore()

	if !reflect.DeepEqual(fromShards, fromBuffers) {
		t.Fatal("sharded BatchSync replay extracted a different delta than the legacy replay")
	}
	if fromShards.Cells() == 0 {
		t.Fatal("empty delta; test is vacuous")
	}
}

// TestBatchSyncShardedThreadCountInvariant: with id-sharded replay each
// neuron row lives in exactly one shard and sees the records in record
// order, so the extracted delta must be bit-identical for any worker
// count.
func TestBatchSyncShardedThreadCountInvariant(t *testing.T) {
	const classes = 96
	ds := deltaTestDataset(t, classes)
	baseCfg := deltaTestConfig(classes, optim.ModeBatchSync)

	extractWith := func(workers int) *SparseDelta {
		n := mustNet(t, baseCfg)
		st := mustState(t, n, 42)
		const batchSize = 24
		batch := ds.Train[:batchSize]
		records := make([]*elemRecord, batchSize)
		for i := range records {
			records[i] = &elemRecord{}
		}
		n.beginBatch()
		for i := range batch {
			n.forwardElem(st, batch[i].Features, batch[i].Labels, modeTrain)
			n.backwardElem(st, batch[i].Features, batch[i].Labels, records[i])
		}
		n.accumulateBatchSync(records, workers)
		return n.ExtractDelta(nil, 2).Clone()
	}

	ref := extractWith(1)
	if ref.Cells() == 0 {
		t.Fatal("empty delta; test is vacuous")
	}
	for _, workers := range []int{2, 3, 7} {
		if got := extractWith(workers); !reflect.DeepEqual(ref, got) {
			t.Fatalf("BatchSync delta with %d workers differs from 1 worker", workers)
		}
	}
}

// TestShardedHogwildStressWithRebuilds drives the sharded backward with
// many workers while background table rebuilds are continuously in flight
// — the -race stress the CI race step runs. Correctness here is "no race
// reports and the network still learns to extract non-empty deltas"; the
// numeric equivalence is covered by the bitwise tests above.
func TestShardedHogwildStressWithRebuilds(t *testing.T) {
	const classes = 128
	ds := deltaTestDataset(t, classes)
	for _, mode := range []optim.UpdateMode{optim.ModeHogwild, optim.ModeBatchSync} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := deltaTestConfig(classes, mode)
			cfg.RebuildN0 = 5 // keep shadow builds overlapping the batches
			cfg.RebuildLambda = 0.01
			n := mustNet(t, cfg)
			res, err := n.Train(ds.Train, ds.Test, TrainConfig{
				BatchSize:  32,
				Iterations: 40,
				Threads:    8,
				Seed:       3,
			})
			if err != nil {
				t.Fatalf("Train: %v", err)
			}
			if res.TouchedPerIter == 0 {
				t.Fatal("no gradient cells extracted under concurrency")
			}
			if res.Rebuilds == 0 {
				t.Fatal("no rebuilds happened; stress test is vacuous")
			}
		})
	}
}

// TestShardSetReuseAcrossTrainCalls: repeated Train calls on one network
// must reuse the per-worker shard sets rather than grow the registry.
func TestShardSetReuseAcrossTrainCalls(t *testing.T) {
	const classes = 64
	ds := deltaTestDataset(t, classes)
	n := mustNet(t, deltaTestConfig(classes, optim.ModeHogwild))
	tc := TrainConfig{BatchSize: 16, Iterations: 4, Threads: 3, Seed: 5}
	for i := 0; i < 3; i++ {
		if _, err := n.Train(ds.Train, ds.Test, tc); err != nil {
			t.Fatalf("Train %d: %v", i, err)
		}
	}
	n.shardMu.Lock()
	defer n.shardMu.Unlock()
	if len(n.workerShards) != 3 {
		t.Fatalf("expected 3 worker shard sets after 3 runs at 3 threads, got %d", len(n.workerShards))
	}
	for li := range n.layerShards {
		if len(n.layerShards[li]) != 3 {
			t.Fatalf("layer %d has %d registered shards, want 3", li, len(n.layerShards[li]))
		}
	}
}

// TestBF16MirrorForwardTolerance: a bf16-mirror network's scatter forward
// must agree with the fp32 network within bf16 rounding — each streamed
// weight carries at most 2⁻⁸ relative error, so activations built from
// them stay within a small multiple of that.
func TestBF16MirrorForwardTolerance(t *testing.T) {
	const classes = 64
	ds := deltaTestDataset(t, classes)
	cfg := deltaTestConfig(classes, optim.ModeHogwild)
	cfg.Kernels = KernelScatter
	f32 := mustNet(t, cfg)
	cfgB := cfg
	cfgB.MirrorFormat = MirrorBF16
	b16 := mustNet(t, cfgB)

	stF := mustState(t, f32, 7)
	stB := mustState(t, b16, 7)
	for i := 0; i < 32; i++ {
		ex := &ds.Train[i]
		f32.forwardElem(stF, ex.Features, ex.Labels, modeTrain)
		b16.forwardElem(stB, ex.Features, ex.Labels, modeTrain)
		a, b := stF.layers[0].vals, stB.layers[0].vals
		if len(a) != len(b) {
			t.Fatalf("example %d: hidden widths differ: %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			diff := math.Abs(float64(a[j] - b[j]))
			scale := math.Max(1, math.Abs(float64(a[j])))
			if diff > 1e-2*scale {
				t.Fatalf("example %d neuron %d: fp32 %g vs bf16-mirror %g", i, j, a[j], b[j])
			}
		}
	}
}
