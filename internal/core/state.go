package core

import (
	"time"

	"repro/internal/kernels"
	"repro/internal/rng"
	"repro/internal/sampling"
	"repro/internal/sparse"
)

func nowNano() int64 { return time.Now().UnixNano() }

// layerState is one batch element's view of one layer: which neurons are
// active and their activations/gradients. It carries the same information
// as the paper's per-neuron batch arrays (Fig. 2), keyed by element
// instead of by neuron, so each worker owns its state outright.
type layerState struct {
	// full marks every neuron active; ids is nil and vals/delta are
	// indexed by neuron id.
	full bool
	// ids lists active neuron ids when !full (unsorted, unique).
	ids []int32
	// vals holds post-activation values aligned with ids (or dense when
	// full). For softmax layers vals are the normalized probabilities
	// over the active set.
	vals []float32
	// delta holds dL/d(pre-activation) aligned with vals.
	delta []float32
}

func (ls *layerState) reset(full bool, n int) {
	ls.full = full
	ls.ids = ls.ids[:0]
	if cap(ls.vals) < n {
		ls.vals = make([]float32, 0, n)
		ls.delta = make([]float32, 0, n)
	}
	ls.vals = ls.vals[:0]
	ls.delta = ls.delta[:0]
}

// sizeVals sets the activation buffer to n entries, growing the backing
// arrays when the active set outgrew the reset hint — the
// empty-retrieval fallback can draw Beta ids after reset reserved only
// the (empty) retrieval's worth. delta grows in step so the backward
// pass can always mirror vals' length.
func (ls *layerState) sizeVals(n int) {
	if cap(ls.vals) < n {
		ls.vals = make([]float32, n)
		ls.delta = make([]float32, 0, n)
	}
	ls.vals = ls.vals[:n]
}

// fwdCapture retains one batch element's forward activations so its
// backward pass can run after the capturing worker's layer state was
// reused by the next batch's forward — the OverlapExchange pipeline,
// where forward(t+1) executes before backward(t). captureFrom deep-copies
// each layer's active ids, activations and density flag, and reserves
// delta capacity for the backward pass to fill in place.
type fwdCapture struct {
	layers []layerState
}

func (c *fwdCapture) captureFrom(src []layerState) {
	if cap(c.layers) < len(src) {
		c.layers = make([]layerState, len(src))
	}
	c.layers = c.layers[:len(src)]
	for i := range src {
		s, d := &src[i], &c.layers[i]
		d.full = s.full
		d.ids = append(d.ids[:0], s.ids...)
		d.vals = append(d.vals[:0], s.vals...)
		if cap(d.delta) < len(s.vals) {
			d.delta = make([]float32, 0, len(s.vals))
		}
		d.delta = d.delta[:0]
	}
}

// elemState is the per-worker compute state reused across batch elements.
// Nothing in it is shared between workers; the only cross-worker writes
// during training are the weight updates themselves (§3.1's HOGWILD
// argument).
type elemState struct {
	layers []layerState

	// wk is the worker index the state was built for; it keys the
	// network's backward gradient shard set (shard.go).
	wk int
	// shards is the worker's per-layer backward gradient shards, attached
	// lazily on the first fused backward pass and reused across batches
	// and Train calls.
	shards []*backShard

	// codes is per-layer hash-code scratch (K*L entries for sampled
	// layers).
	codes [][]uint32
	// strategies holds one private strategy instance per sampled layer.
	strategies []sampling.Strategy
	// sampleBuf receives raw strategy output before id conversion.
	sampleBuf []uint32

	// mark/markEpoch implement O(1)-reset membership sets per sampled
	// layer, used to merge forced labels into the active set.
	mark      [][]uint32
	markEpoch uint32

	// work is the worker's kernel workspace: the backward
	// activation-gradient accumulator (sized once to the largest fan-in,
	// so steady-state passes allocate nothing) and the per-form forward
	// kernel counters the training result aggregates.
	work kernels.Workspace

	// rng drives the element's fallback sampling decisions.
	rng *rng.RNG

	// sel and topkPos are the top-k selection scratch (bounded heap +
	// position list) predictIntoBuf reuses, so steady-state prediction
	// performs zero per-call allocations end to end.
	sel     sparse.Selector
	topkPos []int32

	// busyNS accumulates time spent doing useful work, for the Table 2
	// utilization accounting.
	busyNS int64
	// activeSum and activeCount track mean active-set sizes per sampled
	// layer (the paper reports ~1000 of 205K and ~3000 of 670K active).
	activeSum   []int64
	activeCount []int64
	// lossSum/lossCount accumulate training cross-entropy between evals.
	lossSum   float64
	lossCount int64
}

// Seed-derivation constants shared by construction (newElemState),
// request reseeding (reseed) and batch element seeding (elemSeed):
// rngSeedSalt separates the fallback-draw RNG's seed space from the
// strategies', layerSeedMix (the 64-bit golden ratio) strides per-layer
// strategy seeds apart, and workerSeedMix strides per-worker ones.
const (
	rngSeedSalt   = 0xe1e3
	layerSeedMix  = 0x9e3779b97f4a7c15
	workerSeedMix = 0xc2b2ae3d27d4eb4f
)

// newElemState builds worker state for the network. Worker w gets
// independent strategy/rng streams derived from seed.
func newElemState(n *Network, seed uint64, w int) (*elemState, error) {
	st := &elemState{
		layers:      make([]layerState, len(n.layers)),
		wk:          w,
		codes:       make([][]uint32, len(n.layers)),
		strategies:  make([]sampling.Strategy, len(n.layers)),
		mark:        make([][]uint32, len(n.layers)),
		rng:         rng.NewStream(seed^rngSeedSalt, uint64(w)*2+1),
		activeSum:   make([]int64, len(n.layers)),
		activeCount: make([]int64, len(n.layers)),
	}
	maxIn := n.cfg.InputDim
	for li, l := range n.layers {
		if l.in > maxIn {
			maxIn = l.in
		}
		if !l.Sampled() {
			continue
		}
		st.codes[li] = make([]uint32, l.fam.NumFuncs())
		st.mark[li] = make([]uint32, l.out)
		strat, err := sampling.New(sampling.Params{
			Kind:     l.cfg.Strategy,
			Beta:     l.cfg.Beta,
			MinCount: l.cfg.MinCount,
			Universe: l.out,
			Seed:     seed ^ uint64(li)*layerSeedMix ^ uint64(w)*workerSeedMix,
		}, l.out)
		if err != nil {
			return nil, err
		}
		st.strategies[li] = strat
	}
	st.work.EnsureAcc(maxIn)
	return st, nil
}

// reseedStream is the fixed stream reseed pins the fallback RNG to,
// replacing the construction-time per-worker stream so seeded results do
// not depend on which pooled worker state serves the call.
const reseedStream = 0x7d5

// reseed re-derives the state's stochastic streams — each sampled layer's
// strategy stream and the fallback-draw RNG — from a request seed instead
// of the construction-time worker index. After reseed(s), a forward pass
// over a given input produces bitwise-identical active sets (and hence
// activations and top-k output) on any worker state of the same network,
// no matter what traffic the state served before.
func (st *elemState) reseed(seed uint64) {
	st.rng.ReseedStream(seed^rngSeedSalt, reseedStream)
	for li, strat := range st.strategies {
		if strat == nil {
			continue
		}
		strat.Reseed(seed ^ uint64(li)*layerSeedMix)
	}
}

// markSeen stamps id in layer li's membership set, reporting whether it
// was already present this epoch.
func (st *elemState) markSeen(li int, id int32) bool {
	m := st.mark[li]
	if m[id] == st.markEpoch {
		return true
	}
	m[id] = st.markEpoch
	return false
}

// nextEpoch resets all membership sets in O(1).
func (st *elemState) nextEpoch() {
	st.markEpoch++
	if st.markEpoch == 0 {
		for _, m := range st.mark {
			for i := range m {
				m[i] = 0
			}
		}
		st.markEpoch = 1
	}
}
