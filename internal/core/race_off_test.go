//go:build !race

package core

// raceEnabled reports whether the race detector is active. Under -race,
// sync.Pool intentionally drops some Put items for coverage, so tests
// that pin pool-dependent determinism (bitwise sampled parity, exact
// alloc counts) only run without it.
const raceEnabled = false
