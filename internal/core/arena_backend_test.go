package core

import (
	"bytes"
	"testing"

	"repro/internal/arena"
)

// TestMmapArenaBitTransparent is the arena backend's end-to-end
// acceptance check: building and training a network on mmap-backed
// slabs produces a bitwise-identical model to heap-backed slabs. The
// backend may move parameter state onto huge pages, but it must never
// change a single bit of what is computed. Single-threaded training so
// the only variable is the slab backend.
func TestMmapArenaBitTransparent(t *testing.T) {
	build := func(b arena.Backend) []byte {
		prev := arena.SetBackend(b)
		defer arena.SetBackend(prev)
		ds := tinyDataset(t, 64)
		n, err := NewNetwork(tinyConfig(64))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Train(ds.Train, ds.Test, TrainConfig{
			Epochs: 1, Seed: 9, Threads: 1, EvalEvery: 0,
		}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := n.SaveModel(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	heap := build(arena.BackendHeap)
	mm := build(arena.BackendMmap)
	if !bytes.Equal(heap, mm) {
		t.Fatalf("mmap-backed training diverged from heap: %d vs %d bytes, equal=false",
			len(heap), len(mm))
	}
	if !arena.MmapSupported() {
		t.Log("platform has no mmap support; backends compared heap vs heap fallback")
	}
}
