package core

import (
	"bytes"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	classes := 128
	ds := tinyDataset(t, classes)
	n, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(ds.Train, ds.Test, TrainConfig{Epochs: 2, Seed: 2, EvalEvery: 0}); err != nil {
		t.Fatal(err)
	}
	before, err := n.Evaluate(ds.Test, 200, 4)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}

	m, err := NewNetwork(tinyConfig(classes))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	after, err := m.Evaluate(ds.Test, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if before.P1 != after.P1 {
		t.Fatalf("P@1 changed across save/load: %v vs %v", before.P1, after.P1)
	}
	// Weights must match exactly.
	for li := range n.layers {
		for j := 0; j < n.layers[li].out; j++ {
			for i := range n.layers[li].w[j] {
				if n.layers[li].w[j][i] != m.layers[li].w[j][i] {
					t.Fatalf("layer %d w[%d][%d] differs after load", li, j, i)
				}
			}
		}
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	n, err := NewNetwork(tinyConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Mismatched shape: save a 64-class model, load into 128.
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := NewNetwork(tinyConfig(128))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
