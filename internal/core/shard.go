package core

import (
	"repro/internal/arena"
	"repro/internal/vecmath"
)

// Sharded backward scatter: the multicore refactor of the gradient
// accumulation path.
//
// The PR 5 backward pass bottoms out in a scatter into the layer's shared
// gW buffers — HOGWILD-racy (ModeHogwild), CAS-serialized (ModeAtomic) or
// replayed post-batch (ModeBatchSync). All three contend on the same cache
// lines once more than one worker touches the same hot rows, which is
// exactly what the paper's 44-core claim cannot afford. Since the
// sparse-gradient pipeline (PR 4) made "weights only move at batch
// boundaries" an explicit invariant, the whole batch's gradient work is
// free to land in per-worker private buffers instead: each worker owns one
// backShard per layer, writes it with no interference of any kind, and
// ExtractDelta folds the shards at the batch boundary — summing per cell
// in fixed shard order, so the result is deterministic given the
// element-to-worker assignment, and bit-identical to the shared-buffer
// path whenever that assignment is (one thread, or id-sharded BatchSync).
//
// Storage adapts to the layer's input shape, decided once per network
// (the input of a layer is statically sparse or dense in training):
//
//   - dense rows: fan-in ≤ colTrackThreshold or a dense input — each
//     claimed row is an arena-backed, cache-line-aligned slice of l.in
//     floats from the worker's own arena, so two workers' rows never share
//     a line (the false-sharing removal the arena exists for).
//   - sparse rows: wide fan-in with sparse input (the first layer on
//     example features) — the shard keeps a compact per-batch column
//     index (colStamp/colPos/cols) and each row stores values aligned to
//     that index, so memory is O(touched columns), not O(fan-in), per row.
//
// Rows, columns and their buffers are pooled and epoch-keyed: steady state
// claims them back with O(touched) work and zero allocation.
type backShard struct {
	l     *Layer
	ar    *arena.Arena
	dense bool
	// epoch is the l.batchEpoch the shard's contents belong to; any other
	// value (including the post-extraction 0) means logically empty.
	epoch uint32

	// rowStamp[j] == epoch marks neuron j as claimed in this shard;
	// rowPos[j] is then its index into rows/bias/rowBuf.
	rowStamp []uint32
	rowPos   []int32
	rows     []int32   // claimed neuron ids, in claim order, len = claimed count
	bias     []float32 // bias gradient per claimed row (pooled: len only grows)
	// rowBuf[r] is row r's gradient values: length l.in in dense mode,
	// aligned to cols (lazily zero-extended) in sparse mode. Pooled like
	// bias; dense slots come from the worker's arena.
	rowBuf [][]float32

	// Sparse mode's per-batch column index: colStamp[i] == epoch marks
	// input column i as present, colPos[i] is its slot in cols.
	colStamp []uint32
	colPos   []int32
	cols     []int32
	// posBuf is per-element scratch mapping the element's input ids to
	// column slots.
	posBuf []int32
}

// shardSlabFloats sizes each worker arena's slabs (256 KiB of floats).
// Sharded gradient state is small — touched rows of narrow dense layers —
// so big slabs would waste a worker-count multiple of memory.
const shardSlabFloats = 1 << 16

// sync re-keys the shard to the current batch, emptying it in O(1) when it
// still holds an older batch's (already extracted) state.
func (sh *backShard) sync(epoch uint32) {
	if sh.epoch == epoch {
		return
	}
	sh.epoch = epoch
	sh.rows = sh.rows[:0]
	sh.cols = sh.cols[:0]
}

// rowIndex claims (or finds) neuron j's slot this batch and returns it,
// with bias zeroed and the value buffer emptied on a fresh claim.
func (sh *backShard) rowIndex(j int32, epoch uint32) int {
	if sh.rowStamp[j] == epoch {
		return int(sh.rowPos[j])
	}
	r := len(sh.rows)
	sh.rowStamp[j] = epoch
	sh.rowPos[j] = int32(r)
	sh.rows = append(sh.rows, j)
	if r < len(sh.bias) {
		sh.bias[r] = 0
	} else {
		sh.bias = append(sh.bias, 0)
	}
	if r < len(sh.rowBuf) {
		if sh.dense {
			clear(sh.rowBuf[r])
		} else {
			sh.rowBuf[r] = sh.rowBuf[r][:0]
		}
	} else if sh.dense {
		sh.rowBuf = append(sh.rowBuf, sh.ar.AllocAligned(sh.l.in))
	} else {
		sh.rowBuf = append(sh.rowBuf, nil)
	}
	return r
}

// colPositions interns the element's input columns into the shard's
// per-batch column index and returns each id's slot, aligned with inIds.
// The returned slice is shard-owned scratch, valid until the next call.
func (sh *backShard) colPositions(inIds []int32, epoch uint32) []int32 {
	if cap(sh.posBuf) < len(inIds) {
		sh.posBuf = make([]int32, len(inIds))
	}
	pos := sh.posBuf[:len(inIds)]
	for t, i := range inIds {
		if sh.colStamp[i] != epoch {
			sh.colStamp[i] = epoch
			sh.colPos[i] = int32(len(sh.cols))
			sh.cols = append(sh.cols, i)
		}
		pos[t] = sh.colPos[i]
	}
	return pos
}

// sparseRow returns row r's value buffer zero-extended to the current
// column count, growing the backing array geometrically so steady state
// stops allocating once the per-batch column population stabilizes.
func (sh *backShard) sparseRow(r int) []float32 {
	g := sh.rowBuf[r]
	n := len(sh.cols)
	if cap(g) < n {
		ng := make([]float32, len(g), max(n, 2*cap(g)))
		copy(ng, g)
		g = ng
	}
	old := len(g)
	g = g[:n]
	clear(g[old:])
	sh.rowBuf[r] = g
	return g
}

// newShardSet builds one worker's per-layer shard set, all dense rows
// carved from one private arena. Storage mode mirrors the initMirror
// sparse-input chain: a layer's input is sparse when it is first (example
// features) or follows a sampled layer — static per network in training.
func (n *Network) newShardSet() []*backShard {
	ar := arena.New(shardSlabFloats)
	set := make([]*backShard, len(n.layers))
	sparseIn := true
	for li, l := range n.layers {
		sh := &backShard{
			l:        l,
			ar:       ar,
			dense:    !sparseIn || l.in <= colTrackThreshold,
			rowStamp: make([]uint32, l.out),
			rowPos:   make([]int32, l.out),
		}
		if !sh.dense {
			sh.colStamp = make([]uint32, l.in)
			sh.colPos = make([]int32, l.in)
		}
		set[li] = sh
		sparseIn = l.Sampled()
	}
	return set
}

// backShardSet returns worker w's shard set, creating it on first use.
// Sets are keyed by worker index and reused across Train calls, so
// repeated runs on one network don't leak shard state. Safe for
// concurrent first-touch from worker goroutines.
func (n *Network) backShardSet(w int) []*backShard {
	n.shardMu.Lock()
	defer n.shardMu.Unlock()
	if n.layerShards == nil {
		n.layerShards = make([][]*backShard, len(n.layers))
	}
	for len(n.workerShards) <= w {
		n.workerShards = append(n.workerShards, nil)
	}
	if n.workerShards[w] == nil {
		set := n.newShardSet()
		n.workerShards[w] = set
		for li, sh := range set {
			for len(n.layerShards[li]) <= w {
				n.layerShards[li] = append(n.layerShards[li], nil)
			}
			n.layerShards[li][w] = sh
		}
	}
	return n.workerShards[w]
}

// resetShardStamps clears every registered shard's epoch-keyed stamps;
// called on the rare batch-epoch wrap, where stale stamps could collide
// with re-issued epoch values.
func (n *Network) resetShardStamps() {
	n.shardMu.Lock()
	defer n.shardMu.Unlock()
	for _, set := range n.workerShards {
		for _, sh := range set {
			if sh == nil {
				continue
			}
			sh.epoch = 0
			clear(sh.rowStamp)
			clear(sh.colStamp)
		}
	}
}

// accumulateSharded is the fused modes' backward scatter: the same row
// kernels as the shared-buffer path, aimed at the worker's private shard.
// Unlike the legacy path it performs no shared writes at all — not even
// the benign same-value touched/colStamp stores; extraction derives the
// batch's row/column union from the shard lists at the boundary. With
// weights only moving at batch boundaries, that makes the whole fused
// backward race-free by construction (the race detector agrees), while
// keeping HOGWILD's zero-coordination hot loop.
func (l *Layer) accumulateSharded(sh *backShard, ls *layerState, inIds []int32, inVals []float32, inFull bool, acc []float32) {
	epoch := l.batchEpoch
	sh.sync(epoch)
	var pos []int32
	if !sh.dense {
		pos = sh.colPositions(inIds, epoch)
	}
	if ls.full {
		for j := range ls.vals {
			l.accRowSharded(sh, int32(j), ls.delta[j], epoch, inIds, inVals, pos, inFull, acc)
		}
		return
	}
	for a, j := range ls.ids {
		l.accRowSharded(sh, j, ls.delta[a], epoch, inIds, inVals, pos, inFull, acc)
	}
}

func (l *Layer) accRowSharded(sh *backShard, j int32, dj float32, epoch uint32, inIds []int32, inVals []float32, pos []int32, inFull bool, acc []float32) {
	if dj == 0 {
		return
	}
	w := l.w[j]
	r := sh.rowIndex(j, epoch)
	if sh.dense {
		g := sh.rowBuf[r]
		switch {
		case inFull && acc != nil:
			n := len(inVals)
			vecmath.OuterAcc(dj, inVals, w[:n], g[:n], acc[:n])
		case inFull:
			vecmath.Axpy(dj, inVals, g[:len(inVals)])
		case acc != nil:
			vecmath.SparseOuterAcc(dj, inIds, inVals, w, g, acc[:len(inIds)])
		default:
			vecmath.SparseAxpy(dj, inIds, inVals, g)
		}
	} else {
		g := sh.sparseRow(r)
		if acc != nil {
			vecmath.IndexedOuterAcc(dj, inIds, pos, inVals, w, g, acc[:len(inIds)])
		} else {
			vecmath.IndexedAxpy(dj, pos, inVals, g)
		}
	}
	sh.bias[r] += dj
}

// replayRecordShard is accumulateRecordShard's sharded counterpart for
// ModeBatchSync: worker-shard `shard` replays every record's rows with
// id ∈ shard (mod shards) into its own backShard. Each neuron row lives in
// exactly one shard, so the per-cell addition sequence is the record order
// — independent of the thread count, which keeps BatchSync's determinism
// guarantee, now without any shared gradient writes at all.
func replayRecordShard(l *Layer, sh *backShard, lr *layerRecord, shard, shards int) {
	epoch := l.batchEpoch
	sh.sync(epoch)
	var pos []int32
	if !sh.dense && !lr.inFull {
		pos = sh.colPositions(lr.inIds, epoch)
	}
	apply := func(a int, j int32) {
		if int(j)%shards != shard {
			return
		}
		dj := lr.delta[a]
		if dj == 0 {
			return
		}
		r := sh.rowIndex(j, epoch)
		if sh.dense {
			g := sh.rowBuf[r]
			if lr.inFull {
				gn := g[:len(lr.inVals)]
				for i, x := range lr.inVals {
					gn[i] += dj * x
				}
			} else {
				for t, i := range lr.inIds {
					g[i] += dj * lr.inVals[t]
				}
			}
		} else {
			g := sh.sparseRow(r)
			for t := range lr.inIds {
				g[pos[t]] += dj * lr.inVals[t]
			}
		}
		sh.bias[r] += dj
	}
	if lr.full {
		for j := range lr.delta {
			apply(j, int32(j))
		}
		return
	}
	for a, j := range lr.ids {
		apply(a, j)
	}
}

// extractSharded drains the layer's shards into dst — the sharded
// counterpart of Layer.ExtractDelta, same CSR contract (rows ascending,
// columns ascending within rows, zero cells skipped). Per cell it sums the
// live shards' contributions in shard-index order, then marks the shards
// consumed, so a second extract in the same batch is empty, matching the
// legacy path's zero-as-you-go semantics.
func (l *Layer) extractSharded(dst *LayerDelta, shards []*backShard, workers int) {
	dst.reset()
	epoch := l.batchEpoch
	var live []*backShard
	dense := true
	for _, sh := range shards {
		if sh != nil && sh.epoch == epoch && len(sh.rows) > 0 {
			live = append(live, sh)
			dense = sh.dense
		}
	}
	if len(live) == 0 {
		dst.RowOff = append(dst.RowOff, 0)
		return
	}
	// The sharded backward makes no shared writes, so the batch's
	// row/column union is derived here, at the quiesced boundary, by
	// stamping the shard lists into the layer's epoch stamps and reusing
	// the ascending scanStamps machinery — the same lists, in the same
	// order, the legacy path accumulates during the batch.
	for _, sh := range live {
		for _, j := range sh.rows {
			l.touched[j] = epoch
		}
	}
	rows := l.touchedRows(workers)
	if len(rows) == 0 {
		dst.RowOff = append(dst.RowOff, 0)
		return
	}
	var cols []int32
	if !dense {
		for _, sh := range live {
			for _, i := range sh.cols {
				l.colStamp[i] = epoch
			}
		}
		cols = l.touchedColumns(workers)
	}

	// rowValues collects the live shards that claimed row j, appending
	// their (shard, values) pairs to the caller's reused scratch.
	rowValues := func(j int32, owners []*backShard, vals [][]float32) ([]*backShard, [][]float32) {
		for _, sh := range live {
			if sh.rowStamp[j] == epoch {
				owners = append(owners, sh)
				vals = append(vals, sh.rowBuf[sh.rowPos[j]])
			}
		}
		return owners, vals
	}
	// cellSum sums column i across the row's contributing shards in
	// shard-index order — the one place cross-shard nondeterminism could
	// enter, pinned by the fixed order.
	cellSum := func(i int32, owners []*backShard, vals [][]float32) float32 {
		var s float32
		if dense {
			for _, g := range vals {
				s += g[i]
			}
			return s
		}
		for k, sh := range owners {
			if sh.colStamp[i] == epoch {
				if p := int(sh.colPos[i]); p < len(vals[k]) {
					s += vals[k][p]
				}
			}
		}
		return s
	}

	// Pass 1: count each row's non-zero cells so pass 2 can fill disjoint
	// spans in parallel.
	counts := make([]int32, len(rows))
	parallelRange(workers, len(rows), func(lo, hi int) {
		owners := make([]*backShard, 0, len(live))
		vals := make([][]float32, 0, len(live))
		for r := lo; r < hi; r++ {
			owners, vals = rowValues(rows[r], owners[:0], vals[:0])
			var c int32
			if dense {
				for i := 0; i < l.in; i++ {
					if cellSum(int32(i), owners, vals) != 0 {
						c++
					}
				}
			} else {
				for _, i := range cols {
					if cellSum(i, owners, vals) != 0 {
						c++
					}
				}
			}
			counts[r] = c
		}
	})

	dst.Rows = append(dst.Rows, rows...)
	if cap(dst.RowOff) < len(rows)+1 {
		dst.RowOff = make([]int32, 0, len(rows)+1)
	}
	dst.RowOff = dst.RowOff[:len(rows)+1]
	dst.RowOff[0] = 0
	for r, c := range counts {
		dst.RowOff[r+1] = dst.RowOff[r] + c
	}
	nnz := int(dst.RowOff[len(rows)])
	if cap(dst.Cols) < nnz {
		dst.Cols = make([]int32, nnz)
	}
	if cap(dst.Vals) < nnz {
		dst.Vals = make([]float32, nnz)
	}
	dst.Cols = dst.Cols[:nnz]
	dst.Vals = dst.Vals[:nnz]
	if cap(dst.Bias) < len(rows) {
		dst.Bias = make([]float32, len(rows))
	}
	dst.Bias = dst.Bias[:len(rows)]

	// Pass 2: fill the spans.
	parallelRange(workers, len(rows), func(lo, hi int) {
		owners := make([]*backShard, 0, len(live))
		vals := make([][]float32, 0, len(live))
		for r := lo; r < hi; r++ {
			j := rows[r]
			owners, vals = rowValues(j, owners[:0], vals[:0])
			at := dst.RowOff[r]
			if dense {
				for i := 0; i < l.in; i++ {
					if s := cellSum(int32(i), owners, vals); s != 0 {
						dst.Cols[at] = int32(i)
						dst.Vals[at] = s
						at++
					}
				}
			} else {
				for _, i := range cols {
					if s := cellSum(i, owners, vals); s != 0 {
						dst.Cols[at] = i
						dst.Vals[at] = s
						at++
					}
				}
			}
			var gb float32
			for _, sh := range owners {
				gb += sh.bias[sh.rowPos[j]]
			}
			dst.Bias[r] = gb
		}
	})

	// Consume: the batch's gradient now lives in dst alone.
	for _, sh := range live {
		sh.epoch = 0
	}
}
