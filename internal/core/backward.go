package core

import (
	"repro/internal/optim"
	"repro/internal/sparse"
	"repro/internal/vecmath"
)

// backwardElem runs sparse message-passing backpropagation for one batch
// element (§3.1): starting from the softmax cross-entropy gradient over
// the active output set, each layer propagates partial gradients only to
// the previous layer's active neurons through the connecting weights, and
// only those weights (an s² fraction when both layers are s-sparse)
// accumulate gradient.
//
// With the fused kernel engine (every mode but KernelLegacy), gradient
// contributions land in the worker's private per-layer backShards (see
// shard.go): no cross-thread gradient writes exist at all, and the batch
// boundary folds the shards into the SparseDelta. ModeHogwild and
// ModeAtomic become the same code on this path — there is nothing left to
// race on or to CAS. KernelLegacy keeps the original shared-buffer
// disciplines as the equivalence reference: HOGWILD racy stores
// (ModeHogwild), CAS adds (ModeAtomic), marking the touched neurons and
// input columns. The Adam step then runs once per batch over exactly the
// touched weights (applyAdamBatch), so the per-parameter optimizer cost is
// amortized across the batch just like the sparse gradient work.
//
// In ModeBatchSync the element's active sets and deltas are captured into
// rec instead and accumulated deterministically after the batch.
func (n *Network) backwardElem(st *elemState, x sparse.Vector, labels []int32, rec *elemRecord) float64 {
	return n.backwardFrom(st, st.layers, x, labels, rec)
}

// backwardFrom is backwardElem over an explicit activation source: layers
// is normally the worker's own st.layers, but the OverlapExchange
// pipeline passes a fwdCapture's copy so the backward pass can run after
// the worker state was reused by the next batch's forward. st still
// supplies the worker-owned accumulator workspace and gradient shards.
func (n *Network) backwardFrom(st *elemState, layers []layerState, x sparse.Vector, labels []int32, rec *elemRecord) float64 {
	last := len(n.layers) - 1
	loss := outputDeltaAndLoss(&layers[last], labels)
	if rec != nil {
		rec.reset(len(n.layers))
	}
	fused := n.kern.Fused()
	if fused && rec == nil && st.shards == nil {
		st.shards = n.backShardSet(st.wk)
	}
	for li := last; li >= 0; li-- {
		l := n.layers[li]
		ls := &layers[li]

		// The layer input view: the previous layer's active state, or
		// the example's sparse features for the first layer.
		inIds := x.Idx
		inVals := x.Val
		inFull := false
		if li > 0 {
			prev := &layers[li-1]
			inIds = prev.ids
			inVals = prev.vals
			inFull = prev.full
		}

		var acc []float32
		if li > 0 {
			acc = st.work.EnsureAcc(len(inVals))
			for i := range acc {
				acc[i] = 0
			}
		}

		switch {
		case n.cfg.UpdateMode == optim.ModeBatchSync:
			backLayerAccOnly(l, ls, inIds, inVals, inFull, acc)
			rec.capture(li, ls, inIds, inVals, inFull, li == 0)
		case fused:
			l.accumulateSharded(st.shards[li], ls, inIds, inVals, inFull, acc)
		case n.cfg.UpdateMode == optim.ModeAtomic:
			l.accumulate(ls, inIds, inVals, inFull, acc, true, false)
		default:
			l.accumulate(ls, inIds, inVals, inFull, acc, false, false)
		}

		if li > 0 {
			prev := &layers[li-1]
			prev.delta = prev.delta[:len(prev.vals)]
			reluPrev := n.layers[li-1].cfg.Activation == ActReLU
			for t := range prev.delta {
				d := acc[t]
				if reluPrev && prev.vals[t] <= 0 {
					d = 0
				}
				prev.delta[t] = d
			}
		}
	}
	return loss
}

// accumulate fuses gradient accumulation toward the previous layer with
// pushing this element's weight/bias gradient contributions into the
// shared buffers. Weight values feed the accumulator before anything is
// written, preserving classical backprop semantics within the element.
// The inner loops are specialized per (input density, atomicity) because
// they execute once per active weight — the hottest code in training.
// With fused set (every kernel mode but legacy) the non-atomic rows run
// the vecmath outer-product kernels; the scalar reference loops survive
// in accRowLegacy for the equivalence tests. Rows are visited in whatever
// order ls.ids carries — ascending after a gather-form forward pass,
// which walks the weight and gradient slabs monotonically.
func (l *Layer) accumulate(ls *layerState, inIds []int32, inVals []float32, inFull bool, acc []float32, atomic, fused bool) {
	epoch := l.batchEpoch
	if l.colStamp != nil && !inFull {
		// Mark touched input columns once per element (racy same-value
		// stores; benign).
		for _, i := range inIds {
			l.colStamp[i] = epoch
		}
	}
	if ls.full {
		for j := range ls.vals {
			l.accRow(int32(j), ls.delta[j], epoch, inIds, inVals, inFull, acc, atomic, fused)
		}
		return
	}
	for a, j := range ls.ids {
		l.accRow(j, ls.delta[a], epoch, inIds, inVals, inFull, acc, atomic, fused)
	}
}

func (l *Layer) accRow(j int32, dj float32, epoch uint32, inIds []int32, inVals []float32, inFull bool, acc []float32, atomic, fused bool) {
	if dj == 0 {
		return
	}
	l.touched[j] = epoch
	w, g := l.w[j], l.gW[j]
	if atomic {
		l.accRowAtomic(j, dj, w, g, inIds, inVals, inFull, acc)
		return
	}
	if !fused {
		l.accRowLegacy(j, dj, w, g, inIds, inVals, inFull, acc)
		return
	}
	switch {
	case inFull && acc != nil:
		n := len(inVals)
		vecmath.OuterAcc(dj, inVals, w[:n], g[:n], acc[:n])
	case inFull:
		vecmath.Axpy(dj, inVals, g[:len(inVals)])
	case acc != nil:
		vecmath.SparseOuterAcc(dj, inIds, inVals, w, g, acc[:len(inIds)])
	default:
		vecmath.SparseAxpy(dj, inIds, inVals, g)
	}
	l.gB[j] += dj
}

// accRowLegacy is the pre-engine scalar row update, kept bit-for-bit as
// the reference the fused kernels are tested against.
func (l *Layer) accRowLegacy(j int32, dj float32, w, g []float32, inIds []int32, inVals []float32, inFull bool, acc []float32) {
	switch {
	case inFull && acc != nil:
		n := len(inVals)
		wn, gn, an := w[:n], g[:n], acc[:n]
		for i, x := range inVals {
			an[i] += dj * wn[i]
			gn[i] += dj * x
		}
	case inFull:
		gn := g[:len(inVals)]
		for i, x := range inVals {
			gn[i] += dj * x
		}
	case acc != nil:
		for t, i := range inIds {
			acc[t] += dj * w[i]
			g[i] += dj * inVals[t]
		}
	default:
		for t, i := range inIds {
			g[i] += dj * inVals[t]
		}
	}
	l.gB[j] += dj
}

// accRowAtomic is the ModeAtomic variant: CAS adds into the shared
// buffers; the element-private accumulator needs no atomicity.
func (l *Layer) accRowAtomic(j int32, dj float32, w, g []float32, inIds []int32, inVals []float32, inFull bool, acc []float32) {
	switch {
	case inFull && acc != nil:
		for i, x := range inVals {
			acc[i] += dj * w[i]
			optim.AtomicAdd(&g[i], dj*x)
		}
	case inFull:
		for i, x := range inVals {
			optim.AtomicAdd(&g[i], dj*x)
		}
	case acc != nil:
		for t, i := range inIds {
			acc[t] += dj * w[i]
			optim.AtomicAdd(&g[i], dj*inVals[t])
		}
	default:
		for t, i := range inIds {
			optim.AtomicAdd(&g[i], dj*inVals[t])
		}
	}
	optim.AtomicAdd(&l.gB[j], dj)
}

// backLayerAccOnly computes the previous layer's gradient accumulation
// without touching any shared state (the ModeBatchSync read phase).
func backLayerAccOnly(l *Layer, ls *layerState, inIds []int32, inVals []float32, inFull bool, acc []float32) {
	if acc == nil {
		return
	}
	forEachActive(ls, func(a int, j int32) {
		dj := ls.delta[a]
		if dj == 0 {
			return
		}
		w := l.w[j]
		if inFull {
			for i := range inVals {
				acc[i] += dj * w[i]
			}
		} else {
			for t, i := range inIds {
				acc[t] += dj * w[i]
			}
		}
	})
}

// forEachActive visits (position, neuron id) for every active neuron.
func forEachActive(ls *layerState, f func(a int, j int32)) {
	if ls.full {
		for j := range ls.vals {
			f(j, int32(j))
		}
		return
	}
	for a, j := range ls.ids {
		f(a, j)
	}
}

// layerRecord captures one layer's contribution of one element for the
// deterministic batch-synchronous accumulation.
type layerRecord struct {
	full   bool
	ids    []int32
	delta  []float32
	inFull bool
	inIds  []int32
	inVals []float32
}

// elemRecord captures a whole element.
type elemRecord struct {
	layers []layerRecord
	used   int
}

func (r *elemRecord) reset(numLayers int) {
	if cap(r.layers) < numLayers {
		r.layers = make([]layerRecord, numLayers)
	}
	r.layers = r.layers[:numLayers]
	r.used = numLayers
}

// capture copies the layer's active set, deltas and input view. The first
// layer's input aliases immutable dataset memory and is retained without
// copying.
func (r *elemRecord) capture(li int, ls *layerState, inIds []int32, inVals []float32, inFull, inIsDataset bool) {
	lr := &r.layers[li]
	lr.full = ls.full
	lr.ids = append(lr.ids[:0], ls.ids...)
	lr.delta = append(lr.delta[:0], ls.delta...)
	lr.inFull = inFull
	if inIsDataset {
		lr.inIds = inIds
		lr.inVals = inVals
		return
	}
	lr.inIds = append(lr.inIds[:0], inIds...)
	lr.inVals = append(lr.inVals[:0], inVals...)
}

// accumulateBatchSync folds all captured records into gradient state,
// sharding neurons across workers by id so every cell has exactly one
// writer and the sums are independent of thread count. On the fused path
// each worker-shard replays into its own backShard (no shared gradient
// memory at all); KernelLegacy keeps the direct shared-buffer replay as
// the equivalence reference.
func (n *Network) accumulateBatchSync(records []*elemRecord, workers int) {
	if workers < 1 {
		workers = 1
	}
	if n.kern.Fused() {
		parallelRange(workers, workers, func(lo, hi int) {
			for shard := lo; shard < hi; shard++ {
				set := n.backShardSet(shard)
				for _, rec := range records {
					if rec == nil || rec.used == 0 {
						continue
					}
					for li := range rec.layers {
						replayRecordShard(n.layers[li], set[li], &rec.layers[li], shard, workers)
					}
				}
			}
		})
		return
	}
	parallelRange(workers, workers, func(lo, hi int) {
		for shard := lo; shard < hi; shard++ {
			for _, rec := range records {
				if rec == nil || rec.used == 0 {
					continue
				}
				for li := range rec.layers {
					accumulateRecordShard(n.layers[li], &rec.layers[li], shard, workers)
				}
			}
		}
	})
}

func accumulateRecordShard(l *Layer, lr *layerRecord, shard, shards int) {
	epoch := l.batchEpoch
	trackCols := l.colStamp != nil && shard == 0
	if trackCols && !lr.inFull {
		for _, i := range lr.inIds {
			l.colStamp[i] = epoch
		}
	}
	apply := func(a int, j int32) {
		if int(j)%shards != shard {
			return
		}
		dj := lr.delta[a]
		if dj == 0 {
			return
		}
		l.touched[j] = epoch
		g := l.gW[j]
		if lr.inFull {
			for i := range lr.inVals {
				g[i] += dj * lr.inVals[i]
			}
		} else {
			for t, i := range lr.inIds {
				g[i] += dj * lr.inVals[t]
			}
		}
		l.gB[j] += dj
	}
	if lr.full {
		for j := range lr.delta {
			apply(j, int32(j))
		}
		return
	}
	for a, j := range lr.ids {
		apply(a, j)
	}
}
