package core

import (
	"bytes"
	"testing"

	"repro/internal/lsh"
)

// TestIncrementalRebuildMatchesFullEveryGeneration is the dirty-row
// path's equivalence proof through real training: after each training
// segment, an incremental sync rebuild (re-hash only drifted rows,
// re-insert the rest from the code memo) must produce tables
// bucket-for-bucket equal to a full from-scratch hash of the live
// weights at the same generation — at every generation, for every
// family that backs a sampled layer.
func TestIncrementalRebuildMatchesFullEveryGeneration(t *testing.T) {
	classes := 256
	ds := tinyDataset(t, classes)
	for _, hash := range []lsh.Kind{lsh.KindSimhash, lsh.KindDWTA, lsh.KindDOPH} {
		t.Run(hash.String(), func(t *testing.T) {
			cfg := tinyConfig(classes)
			cfg.Layers[1].Hash = hash
			cfg.Layers[1].BucketSize = 4 // force reservoir churn so order/code drift shows
			cfg.RebuildN0 = 1 << 30      // rebuilds driven manually below
			n, err := NewNetwork(cfg)
			if err != nil {
				t.Fatal(err)
			}
			l := n.layers[1]
			for g := 0; g < 5; g++ {
				if _, err := n.Train(ds.Train, ds.Test, TrainConfig{
					Iterations: 6, BatchSize: 32, Seed: uint64(g + 1), EvalEvery: 0,
				}); err != nil {
					t.Fatal(err)
				}
				n.RebuildTables(2) // incremental: dirty rows only
				incr := l.Tables()
				full := incr.Shadow(n.rebuildGen)
				l.insertAll(full, func(j int) []float32 { return l.w[j] }, 2)
				if !incr.Equal(full) {
					t.Fatalf("generation %d: incremental rebuild diverged from full from-scratch build", n.rebuildGen)
				}
			}
			rehashed, reused := n.RebuildRowCounts()
			if reused == 0 {
				t.Fatalf("incremental path never reused a memoized row (rehashed=%d)", rehashed)
			}
		})
	}
}

// TestIncrementalAndFullRebuildTrainIdentically pins the stronger
// property the per-generation equivalence implies: because the tables
// are bit-identical at every rebuild, the sampled active sets — and so
// the gradients and the weights — of a single-threaded training run are
// unaffected by which rebuild path is configured.
func TestIncrementalAndFullRebuildTrainIdentically(t *testing.T) {
	classes := 128
	ds := tinyDataset(t, classes)
	run := func(full bool) *Network {
		cfg := tinyConfig(classes)
		cfg.FullRebuild = full
		cfg.RebuildN0 = 5
		n, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Train(ds.Train, ds.Test, TrainConfig{
			Iterations: 30, BatchSize: 32, Threads: 1, Seed: 9, EvalEvery: 0, SyncRebuild: true,
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	incr, full := run(false), run(true)
	if !incr.layers[1].Tables().Equal(full.layers[1].Tables()) {
		t.Fatal("incremental and full-rebuild runs ended with different tables")
	}
	for j := 0; j < classes; j++ {
		wi, wf := incr.layers[1].w[j], full.layers[1].w[j]
		for i := range wi {
			if wi[i] != wf[i] {
				t.Fatalf("neuron %d weight %d diverged between rebuild paths: %g vs %g", j, i, wi[i], wf[i])
			}
		}
	}
	// (With only 128 output rows the whole layer can drift between
	// rebuilds, so no reuse is asserted here — the per-generation test
	// above covers that; this test's claim is bit-identical training.)
	if _, reused := full.RebuildRowCounts(); reused != 0 {
		t.Fatalf("FullRebuild run reported %d reused rows", reused)
	}
}

// TestIncrementalRebuildAfterRestore: a bulk weight restore invalidates
// every memoized code; the next rebuild must re-hash the whole layer and
// still match a from-scratch build.
func TestIncrementalRebuildAfterRestore(t *testing.T) {
	classes := 256
	ds := tinyDataset(t, classes)
	cfg := tinyConfig(classes)
	cfg.RebuildN0 = 1 << 30
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(ds.Train, ds.Test, TrainConfig{Iterations: 10, Seed: 4, EvalEvery: 0}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Drift the weights past the save, then restore: the restore path
	// must mark all rows dirty so stale memo codes cannot survive.
	if _, err := n.Train(ds.Train, ds.Test, TrainConfig{Iterations: 10, Seed: 5, EvalEvery: 0}); err != nil {
		t.Fatal(err)
	}
	if err := n.Load(&buf); err != nil {
		t.Fatal(err)
	}
	l := n.layers[1]
	cur := l.Tables()
	full := cur.Shadow(n.rebuildGen)
	l.insertAll(full, func(j int) []float32 { return l.w[j] }, 2)
	if !cur.Equal(full) {
		t.Fatal("tables after restore diverged from a from-scratch build of the restored weights")
	}
}

// TestRebuildSteadyStateAllocs pins the allocation budget of a
// steady-state incremental rebuild (the CI allocation gate): after the
// first rebuild warms the per-layer scratch (dirty list, dirty snapshot,
// code buffer), each further rebuild allocates only the fresh shadow
// table set itself — O(L) small objects plus its arena slab — never
// O(rows) code scratch or O(rows*dim) snapshots.
func TestRebuildSteadyStateAllocs(t *testing.T) {
	classes := 512
	ds := tinyDataset(t, classes)
	cfg := tinyConfig(classes)
	cfg.RebuildN0 = 1 << 30
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Train(ds.Train, ds.Test, TrainConfig{Iterations: 8, Seed: 2, EvalEvery: 0}); err != nil {
		t.Fatal(err)
	}
	n.RebuildTables(1) // warm the rebuild scratch
	allocs := testing.AllocsPerRun(5, func() { n.RebuildTables(1) })
	// Budget: the shadow Table (struct, arena, one slab, L insert RNGs)
	// for the sampled layer, plus small constant overhead. L=16 here, so
	// anything O(rows)=512 would blow far past the bound.
	if allocs > 64 {
		t.Fatalf("steady-state rebuild allocated %.0f objects; want <= 64 (O(L) shadow-table setup only)", allocs)
	}
}
