package vecmath

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

func randVec(r *rng.RNG, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = r.NormFloat32()
	}
	return v
}

// TestDotVariantsAgree is the Fig. 10 correctness invariant: the unrolled
// "SIMD" kernels must compute the same values as the scalar ones.
func TestDotVariantsAgree(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw) % 200
		r := rng.New(seed)
		a, b := randVec(r, n), randVec(r, n)
		return almostEq(float64(dotScalar(a, b)), float64(dotUnrolled(a, b)), 1e-4)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSparseDotVariantsAgree(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		w := randVec(r, 256)
		nnz := int(nRaw) % 64
		idx := make([]int32, nnz)
		val := make([]float32, nnz)
		for i := range idx {
			idx[i] = int32(r.Intn(256))
			val[i] = r.NormFloat32()
		}
		return almostEq(float64(sparseDotScalar(idx, val, w)), float64(sparseDotUnrolled(idx, val, w)), 1e-4)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSparseDotMatchesDenseDot(t *testing.T) {
	r := rng.New(2)
	w := randVec(r, 128)
	dense := make([]float32, 128)
	var idx []int32
	var val []float32
	for i := 0; i < 20; i++ {
		j := int32(r.Intn(128))
		v := r.NormFloat32()
		idx = append(idx, j)
		val = append(val, v)
		dense[j] += v
	}
	if !almostEq(float64(SparseDot(idx, val, w)), float64(Dot(dense, w)), 1e-4) {
		t.Fatalf("SparseDot %v != Dot %v", SparseDot(idx, val, w), Dot(dense, w))
	}
}

func TestAxpyVariantsAgree(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8, alpha float32) bool {
		n := int(nRaw) % 100
		if math.IsNaN(float64(alpha)) || math.IsInf(float64(alpha), 0) {
			alpha = 1.5
		}
		alpha = float32(math.Mod(float64(alpha), 8)) // keep products finite
		r := rng.New(seed)
		x := randVec(r, n)
		y1 := randVec(r, n)
		y2 := append([]float32(nil), y1...)
		axpyScalar(alpha, x, y1)
		axpyUnrolled(alpha, x, y2)
		for i := range y1 {
			if !almostEq(float64(y1[i]), float64(y2[i]), 1e-4) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSparseAxpy(t *testing.T) {
	y := make([]float32, 8)
	SparseAxpy(2, []int32{1, 3, 1}, []float32{1, 2, 3}, y)
	want := []float32{0, 8, 0, 4, 0, 0, 0, 0}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

// TestDotBiasReLUMatchesUnfused: the fused forward kernel must equal the
// composition of its parts (dot, bias add, ReLU clamp) for both the dense
// and the sparse input form.
func TestDotBiasReLUMatchesUnfused(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8, b float32) bool {
		n := int(nRaw) % 200
		if math.IsNaN(float64(b)) || math.IsInf(float64(b), 0) {
			b = 0.25
		}
		b = float32(math.Mod(float64(b), 4))
		r := rng.New(seed)
		w, x := randVec(r, n), randVec(r, n)
		want := b + Dot(w, x)
		if want < 0 {
			want = 0
		}
		return DotBiasReLU(b, w, x) == want
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSparseDotBiasReLUMatchesUnfused(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		w := randVec(r, 256)
		nnz := int(nRaw) % 64
		idx := make([]int32, nnz)
		val := make([]float32, nnz)
		for i := range idx {
			idx[i] = int32(r.Intn(256))
			val[i] = r.NormFloat32()
		}
		b := r.NormFloat32()
		want := b + SparseDot(idx, val, w)
		if want < 0 {
			want = 0
		}
		return SparseDotBiasReLU(b, idx, val, w) == want
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestOuterAccMatchesScalarLoops: the fused backward kernel must be
// bit-identical to the separate acc/gradient loops it replaces — every
// cell receives exactly one add in both formulations — and the unrolled
// variant must match the scalar one exactly.
func TestOuterAccMatchesScalarLoops(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8, d float32) bool {
		n := int(nRaw) % 100
		if math.IsNaN(float64(d)) || math.IsInf(float64(d), 0) {
			d = 0.5
		}
		d = float32(math.Mod(float64(d), 8))
		r := rng.New(seed)
		x, w := randVec(r, n), randVec(r, n)
		g1, acc1 := randVec(r, n), randVec(r, n)
		g2 := append([]float32(nil), g1...)
		acc2 := append([]float32(nil), acc1...)
		g3 := append([]float32(nil), g1...)
		acc3 := append([]float32(nil), acc1...)
		for i := range x { // the pre-fusion reference loops
			acc1[i] += d * w[i]
			g1[i] += d * x[i]
		}
		outerAccScalar(d, x, w, g2, acc2)
		outerAccUnrolled(d, x, w, g3, acc3)
		for i := range x {
			if g1[i] != g2[i] || acc1[i] != acc2[i] || g1[i] != g3[i] || acc1[i] != acc3[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSparseOuterAcc checks the sparse fused kernel against its reference
// loop, including a repeated index (the gradient column must accumulate
// both contributions and the acc gather must see the weight value both
// times).
func TestSparseOuterAcc(t *testing.T) {
	w := []float32{1, 2, 3, 4}
	idx := []int32{1, 3, 1}
	val := []float32{1, 2, 3}
	g := make([]float32, 4)
	acc := make([]float32, 3)
	SparseOuterAcc(2, idx, val, w, g, acc)
	wantG := []float32{0, 8, 0, 4}
	wantAcc := []float32{4, 8, 4}
	for i := range wantG {
		if g[i] != wantG[i] {
			t.Fatalf("g = %v, want %v", g, wantG)
		}
	}
	for i := range wantAcc {
		if acc[i] != wantAcc[i] {
			t.Fatalf("acc = %v, want %v", acc, wantAcc)
		}
	}
}

func TestSoftmaxProperties(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		r := rng.New(seed)
		x := randVec(r, n)
		big := vecIdxMax(x)
		Softmax(x)
		var sum float64
		for _, v := range x {
			if v < 0 || v > 1 {
				return false
			}
			sum += float64(v)
		}
		// Sums to 1 and preserves the argmax.
		return math.Abs(sum-1) < 1e-4 && ArgMax(x) == big
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func vecIdxMax(x []float32) int {
	best, bi := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

func TestSoftmaxStability(t *testing.T) {
	x := []float32{1000, 1001, 999}
	Softmax(x)
	for _, v := range x {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax overflowed: %v", x)
		}
	}
	if ArgMax(x) != 1 {
		t.Fatalf("argmax shifted: %v", x)
	}
}

func TestLogSumExp(t *testing.T) {
	x := []float32{1, 2, 3}
	naive := math.Log(math.Exp(1) + math.Exp(2) + math.Exp(3))
	if !almostEq(float64(LogSumExp(x)), naive, 1e-5) {
		t.Fatalf("LogSumExp = %v, want %v", LogSumExp(x), naive)
	}
	big := []float32{10000, 10000}
	if v := float64(LogSumExp(big)); math.IsInf(v, 0) || math.Abs(v-(10000+math.Log(2))) > 1 {
		t.Fatalf("LogSumExp unstable: %v", v)
	}
}

func TestReLU(t *testing.T) {
	x := []float32{-1, 0, 2, -0.5}
	ReLU(x)
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("ReLU = %v, want %v", x, want)
		}
	}
}

func TestArgMaxTieBreak(t *testing.T) {
	if got := ArgMax([]float32{1, 3, 3, 2}); got != 1 {
		t.Fatalf("ArgMax tie = %d, want lowest index 1", got)
	}
}

func TestCosineSim(t *testing.T) {
	a := []float32{1, 0}
	b := []float32{0, 1}
	if v := CosineSim(a, a); !almostEq(float64(v), 1, 1e-6) {
		t.Fatalf("cos(a,a) = %v", v)
	}
	if v := CosineSim(a, b); !almostEq(float64(v), 0, 1e-6) {
		t.Fatalf("cos(a,b) = %v", v)
	}
	if v := CosineSim(a, []float32{0, 0}); v != 0 {
		t.Fatalf("cos with zero vector = %v, want 0", v)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot length mismatch did not panic")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestScaleAndFill(t *testing.T) {
	x := []float32{1, 2, 3}
	Scale(2, x)
	if x[2] != 6 {
		t.Fatalf("Scale: %v", x)
	}
	Fill(x, 7)
	for _, v := range x {
		if v != 7 {
			t.Fatalf("Fill: %v", x)
		}
	}
}

func TestNorm2(t *testing.T) {
	if v := Norm2([]float32{3, 4}); !almostEq(float64(v), 5, 1e-6) {
		t.Fatalf("Norm2 = %v", v)
	}
}

func TestUnrolledFlagDispatch(t *testing.T) {
	defer func(prev bool) { Unrolled = prev }(Unrolled)
	a := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := []float32{9, 8, 7, 6, 5, 4, 3, 2, 1}
	Unrolled = true
	d1 := Dot(a, b)
	Unrolled = false
	d2 := Dot(a, b)
	if !almostEq(float64(d1), float64(d2), 1e-6) {
		t.Fatalf("dispatch mismatch: %v vs %v", d1, d2)
	}
}
