package vecmath

import "math"

// Quantized row kernels. The scatter-form forward streams contiguous
// column slices of a weight mirror (internal/kernels); storing that mirror
// in BF16 or int8 halves or quarters the bytes each Axpy moves, which is
// what the follow-up paper "Accelerating SLIDE Deep Learning on Modern
// CPUs" (MLSys 2021) reports as the second big lever after layout. The
// kernels here are the mirror formats' decode+multiply-accumulate loops;
// the formats themselves (per-column scales, dual-write coherence) live in
// internal/kernels.

// BF16FromF32 converts a float32 to bfloat16 (the high 16 bits of the
// IEEE-754 encoding) with round-to-nearest-even. NaNs are quieted rather
// than rounded, so they cannot turn into infinities.
func BF16FromF32(x float32) uint16 {
	u := math.Float32bits(x)
	if u&0x7fffffff > 0x7f800000 { // NaN
		return uint16(u>>16) | 0x0040
	}
	u += 0x7fff + (u >> 16 & 1)
	return uint16(u >> 16)
}

// F32FromBF16 widens a bfloat16 back to float32 (exact: bf16 values are a
// subset of float32).
func F32FromBF16(h uint16) float32 {
	return math.Float32frombits(uint32(h) << 16)
}

// EncodeBF16 converts src into dst with round-to-nearest-even. The slices
// must have equal length.
func EncodeBF16(dst []uint16, src []float32) {
	if len(dst) != len(src) {
		panic("vecmath: EncodeBF16 length mismatch")
	}
	for i, v := range src {
		dst[i] = BF16FromF32(v)
	}
}

// AxpyBF16 computes y += alpha*x element-wise over a bfloat16 x — the
// quantized mirror's column-Axpy. It reads half the bytes of the float32
// Axpy; the decode is one shift per element, so on column slices longer
// than the cache the kernel is memory-bound and faster than its fp32
// counterpart. The slices must have equal length.
func AxpyBF16(alpha float32, x []uint16, y []float32) {
	if len(x) != len(y) {
		panic("vecmath: AxpyBF16 length mismatch")
	}
	if Unrolled {
		axpyBF16Unrolled(alpha, x, y)
		return
	}
	for i := range x {
		y[i] += alpha * F32FromBF16(x[i])
	}
}

func axpyBF16Unrolled(alpha float32, x []uint16, y []float32) {
	n := len(x) &^ 7
	for i := 0; i < n; i += 8 {
		xx := x[i : i+8 : i+8]
		yy := y[i : i+8 : i+8]
		yy[0] += alpha * math.Float32frombits(uint32(xx[0])<<16)
		yy[1] += alpha * math.Float32frombits(uint32(xx[1])<<16)
		yy[2] += alpha * math.Float32frombits(uint32(xx[2])<<16)
		yy[3] += alpha * math.Float32frombits(uint32(xx[3])<<16)
		yy[4] += alpha * math.Float32frombits(uint32(xx[4])<<16)
		yy[5] += alpha * math.Float32frombits(uint32(xx[5])<<16)
		yy[6] += alpha * math.Float32frombits(uint32(xx[6])<<16)
		yy[7] += alpha * math.Float32frombits(uint32(xx[7])<<16)
	}
	for i := n; i < len(x); i++ {
		y[i] += alpha * math.Float32frombits(uint32(x[i])<<16)
	}
}

// AxpyInt8 computes y += alpha*x element-wise over an int8 x. The caller
// folds the column's dequantization scale into alpha, so the loop is one
// int→float convert and one FMA per element at a quarter of the fp32
// bytes. The slices must have equal length.
func AxpyInt8(alpha float32, x []int8, y []float32) {
	if len(x) != len(y) {
		panic("vecmath: AxpyInt8 length mismatch")
	}
	n := len(x) &^ 3
	for i := 0; i < n; i += 4 {
		xx := x[i : i+4 : i+4]
		yy := y[i : i+4 : i+4]
		yy[0] += alpha * float32(xx[0])
		yy[1] += alpha * float32(xx[1])
		yy[2] += alpha * float32(xx[2])
		yy[3] += alpha * float32(xx[3])
	}
	for i := n; i < len(x); i++ {
		y[i] += alpha * float32(x[i])
	}
}
