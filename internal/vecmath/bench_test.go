package vecmath

import (
	"testing"

	"repro/internal/rng"
)

// Kernel-level half of the Fig. 10 ablation: the unrolled ("SIMD") kernels
// against their scalar counterparts on the network's hot shapes (the
// 128-wide hidden fan-in of the output layer).

var benchSink float32

func benchVecs(n int) ([]float32, []float32) {
	r := rng.New(1)
	a := make([]float32, n)
	b := make([]float32, n)
	for i := range a {
		a[i] = r.NormFloat32()
		b[i] = r.NormFloat32()
	}
	return a, b
}

func BenchmarkDotScalar128(b *testing.B) {
	x, y := benchVecs(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += dotScalar(x, y)
	}
}

func BenchmarkDotUnrolled128(b *testing.B) {
	x, y := benchVecs(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += dotUnrolled(x, y)
	}
}

func BenchmarkAxpyScalar128(b *testing.B) {
	x, y := benchVecs(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		axpyScalar(0.5, x, y)
	}
}

func BenchmarkAxpyUnrolled128(b *testing.B) {
	x, y := benchVecs(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		axpyUnrolled(0.5, x, y)
	}
}

func BenchmarkSparseDot64of4096(b *testing.B) {
	r := rng.New(2)
	w := make([]float32, 4096)
	for i := range w {
		w[i] = r.NormFloat32()
	}
	idx := make([]int32, 64)
	val := make([]float32, 64)
	for i := range idx {
		idx[i] = int32(r.Intn(4096))
		val[i] = r.NormFloat32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += sparseDotUnrolled(idx, val, w)
	}
}

// Fused-kernel shapes: one active output neuron's forward step over the
// 128-wide hidden input (gather form), and one backward row update.

func BenchmarkDotBiasReLU128(b *testing.B) {
	x, y := benchVecs(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += DotBiasReLU(0.1, x, y)
	}
}

func BenchmarkOuterAccScalar128(b *testing.B) {
	x, w := benchVecs(128)
	g, acc := benchVecs(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outerAccScalar(0.5, x, w, g, acc)
	}
	benchSink += g[0] + acc[0]
}

func BenchmarkOuterAccUnrolled128(b *testing.B) {
	x, w := benchVecs(128)
	g, acc := benchVecs(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outerAccUnrolled(0.5, x, w, g, acc)
	}
	benchSink += g[0] + acc[0]
}

func BenchmarkSoftmax1024(b *testing.B) {
	x, _ := benchVecs(1024)
	buf := make([]float32, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		Softmax(buf)
	}
	benchSink += buf[0]
}
