package vecmath

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestBF16RoundTripExact: values already representable in bfloat16 (8
// mantissa bits) must survive the encode/decode round trip bit-for-bit.
func TestBF16RoundTripExact(t *testing.T) {
	for _, v := range []float32{0, 1, -1, 0.5, -0.375, 2, 96, -1024, 1.0 / 256,
		float32(math.Inf(1)), float32(math.Inf(-1))} {
		if got := F32FromBF16(BF16FromF32(v)); got != v {
			t.Fatalf("round trip of %v gave %v", v, got)
		}
	}
	// Negative zero keeps its sign bit.
	nz := float32(math.Copysign(0, -1))
	if got := F32FromBF16(BF16FromF32(nz)); math.Signbit(float64(got)) != true {
		t.Fatalf("-0 lost its sign: %v", got)
	}
}

// TestBF16RoundToNearestEven pins the rounding rule on exact-tie bit
// patterns: a tie (low 16 bits = 0x8000) rounds to the neighbor whose
// retained mantissa is even, both when that means rounding up and down.
func TestBF16RoundToNearestEven(t *testing.T) {
	cases := []struct {
		bits uint32
		want uint16
	}{
		// 0x3f80_8000: tie above 1.0 (stored mantissa even) — rounds down.
		{0x3f808000, 0x3f80},
		// 0x3f81_8000: tie above 1.0078125 (stored mantissa odd) — rounds up.
		{0x3f818000, 0x3f82},
		// Just below / above the tie round toward the nearer neighbor.
		{0x3f817fff, 0x3f81},
		{0x3f818001, 0x3f82},
	}
	for _, c := range cases {
		if got := BF16FromF32(math.Float32frombits(c.bits)); got != c.want {
			t.Fatalf("BF16FromF32(%#08x) = %#04x, want %#04x", c.bits, got, c.want)
		}
	}
}

// TestBF16NaNQuieted: NaNs must stay NaN through the conversion — naive
// rounding can carry a signalling NaN's payload into the exponent and
// produce an infinity.
func TestBF16NaNQuieted(t *testing.T) {
	for _, bits := range []uint32{
		0x7fc00000, // canonical quiet NaN
		0x7f800001, // signalling NaN with tiny payload (rounds to Inf if not special-cased)
		0xffbfffff, // negative NaN, payload all ones below the quiet bit
	} {
		h := BF16FromF32(math.Float32frombits(bits))
		back := F32FromBF16(h)
		if !math.IsNaN(float64(back)) {
			t.Fatalf("NaN %#08x converted to %v (bits %#04x)", bits, back, h)
		}
	}
}

// TestBF16RelativeErrorBound: random finite values must decode within the
// format's 2⁻⁸ relative error.
func TestBF16RelativeErrorBound(t *testing.T) {
	r := rng.New(5)
	for i := 0; i < 10000; i++ {
		v := r.NormFloat32() * float32(math.Pow(2, float64(r.Intn(21)-10)))
		back := F32FromBF16(BF16FromF32(v))
		if err := math.Abs(float64(back-v)); err > math.Abs(float64(v))/256+1e-30 {
			t.Fatalf("bf16(%v) = %v, relative error %v", v, back, err/math.Abs(float64(v)))
		}
	}
}

func TestEncodeBF16(t *testing.T) {
	src := []float32{1, -2.5, 0, 3e4}
	dst := make([]uint16, len(src))
	EncodeBF16(dst, src)
	for i, v := range src {
		if dst[i] != BF16FromF32(v) {
			t.Fatalf("EncodeBF16[%d] = %#04x, want %#04x", i, dst[i], BF16FromF32(v))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	EncodeBF16(dst[:2], src)
}

// TestAxpyBF16VariantsAgree: the 8-way unrolled kernel and the scalar loop
// decode identical values and must produce bit-identical results (both are
// one FMA per element in the same order).
func TestAxpyBF16VariantsAgree(t *testing.T) {
	r := rng.New(9)
	for _, n := range []int{0, 1, 7, 8, 9, 64, 100} {
		x := make([]uint16, n)
		y1 := make([]float32, n)
		for i := range x {
			x[i] = BF16FromF32(r.NormFloat32())
			y1[i] = r.NormFloat32()
		}
		y2 := append([]float32(nil), y1...)
		want := append([]float32(nil), y1...)
		const alpha = 0.75
		for i := range want {
			want[i] += alpha * F32FromBF16(x[i])
		}
		defer func(prev bool) { Unrolled = prev }(Unrolled)
		Unrolled = false
		AxpyBF16(alpha, x, y1)
		Unrolled = true
		AxpyBF16(alpha, x, y2)
		for i := range want {
			if y1[i] != want[i] || y2[i] != want[i] {
				t.Fatalf("n=%d i=%d: scalar %v unrolled %v want %v", n, i, y1[i], y2[i], want[i])
			}
		}
	}
}

// TestAxpyInt8MatchesReference: alpha carries the dequantization scale, so
// the kernel is y[i] += alpha*x[i] over int8 cells.
func TestAxpyInt8MatchesReference(t *testing.T) {
	r := rng.New(13)
	for _, n := range []int{0, 1, 3, 4, 5, 100} {
		x := make([]int8, n)
		y := make([]float32, n)
		for i := range x {
			x[i] = int8(r.Intn(255) - 127)
			y[i] = r.NormFloat32()
		}
		want := append([]float32(nil), y...)
		const alpha = 0.031
		for i := range want {
			want[i] += alpha * float32(x[i])
		}
		AxpyInt8(alpha, x, y)
		for i := range want {
			if y[i] != want[i] {
				t.Fatalf("n=%d i=%d: got %v want %v", n, i, y[i], want[i])
			}
		}
	}
}

func TestQuantAxpyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AxpyBF16 length mismatch did not panic")
		}
	}()
	AxpyBF16(1, make([]uint16, 3), make([]float32, 4))
}

// Quantized-mirror column shapes: the scatter form Axpys one out-length
// column slice per input nonzero. The bf16 kernel reads half the bytes of
// the fp32 one — the per-kernel half of the BENCH_scaling mirror ablation.

func benchBF16Col(n int) ([]uint16, []float32) {
	r := rng.New(4)
	x := make([]uint16, n)
	y := make([]float32, n)
	for i := range x {
		x[i] = BF16FromF32(r.NormFloat32())
		y[i] = r.NormFloat32()
	}
	return x, y
}

func BenchmarkAxpyF32Col4096(b *testing.B) {
	x, y := benchVecs(4096)
	b.SetBytes(4096 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(0.5, x, y)
	}
	benchSink += y[0]
}

func BenchmarkAxpyBF16Col4096(b *testing.B) {
	x, y := benchBF16Col(4096)
	b.SetBytes(4096 * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AxpyBF16(0.5, x, y)
	}
	benchSink += y[0]
}

func BenchmarkAxpyInt8Col4096(b *testing.B) {
	r := rng.New(6)
	x := make([]int8, 4096)
	y := make([]float32, 4096)
	for i := range x {
		x[i] = int8(r.Intn(255) - 127)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AxpyInt8(0.01, x, y)
	}
	benchSink += y[0]
}
