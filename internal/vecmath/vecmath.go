// Package vecmath provides the float32 vector kernels used by both the
// SLIDE network and the dense baseline.
//
// Each kernel has two implementations: an 8-way manually unrolled variant
// with independent accumulators (the Go analogue of the paper's Intel AVX
// SIMD kernels, §5.4/App. D) and a plain scalar variant. The package-level
// functions dispatch on the Unrolled flag so that the Fig. 10
// optimized-vs-plain ablation can flip the whole repository's kernel style
// at one switch. Benchmarks address the variants directly.
package vecmath

import "math"

// Unrolled selects the 8-way unrolled kernels when true (the default).
// It exists for the Fig. 10 optimization ablation; flip it only in
// single-threaded setup code, never mid-training.
var Unrolled = true

// Dot returns the inner product of a and b. The slices must have equal
// length.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("vecmath: Dot length mismatch")
	}
	if Unrolled {
		return dotUnrolled(a, b)
	}
	return dotScalar(a, b)
}

func dotScalar(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func dotUnrolled(a, b []float32) float32 {
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	n := len(a) &^ 7
	for i := 0; i < n; i += 8 {
		aa := a[i : i+8 : i+8]
		bb := b[i : i+8 : i+8]
		s0 += aa[0] * bb[0]
		s1 += aa[1] * bb[1]
		s2 += aa[2] * bb[2]
		s3 += aa[3] * bb[3]
		s4 += aa[4] * bb[4]
		s5 += aa[5] * bb[5]
		s6 += aa[6] * bb[6]
		s7 += aa[7] * bb[7]
	}
	s := (s0 + s1) + (s2 + s3) + (s4 + s5) + (s6 + s7)
	for i := n; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// SparseDot returns the inner product of a sparse vector (idx, val pairs)
// with the dense vector w, i.e. sum over j of val[j]*w[idx[j]].
func SparseDot(idx []int32, val []float32, w []float32) float32 {
	if len(idx) != len(val) {
		panic("vecmath: SparseDot index/value length mismatch")
	}
	if Unrolled {
		return sparseDotUnrolled(idx, val, w)
	}
	return sparseDotScalar(idx, val, w)
}

func sparseDotScalar(idx []int32, val []float32, w []float32) float32 {
	var s float32
	for j, i := range idx {
		s += val[j] * w[i]
	}
	return s
}

func sparseDotUnrolled(idx []int32, val []float32, w []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(idx) &^ 3
	for j := 0; j < n; j += 4 {
		ii := idx[j : j+4 : j+4]
		vv := val[j : j+4 : j+4]
		s0 += vv[0] * w[ii[0]]
		s1 += vv[1] * w[ii[1]]
		s2 += vv[2] * w[ii[2]]
		s3 += vv[3] * w[ii[3]]
	}
	s := (s0 + s1) + (s2 + s3)
	for j := n; j < len(idx); j++ {
		s += val[j] * w[idx[j]]
	}
	return s
}

// DotBiasReLU returns max(0, b + dot(w, x)) — one layer neuron's fused
// forward step (pre-activation plus bias plus ReLU) in a single pass over
// the weight row. The slices must have equal length. The gather-form
// kernel engine calls it once per active neuron on dense inputs.
func DotBiasReLU(b float32, w, x []float32) float32 {
	s := b + Dot(w, x)
	if s < 0 {
		return 0
	}
	return s
}

// SparseDotBiasReLU is DotBiasReLU over a sparse input vector (idx, val
// pairs): max(0, b + sum_j val[j]*w[idx[j]]).
func SparseDotBiasReLU(b float32, idx []int32, val, w []float32) float32 {
	s := b + SparseDot(idx, val, w)
	if s < 0 {
		return 0
	}
	return s
}

// OuterAcc fuses the two per-row backward updates into one pass over the
// dense input: g += d*x (the delta×input outer-product row, accumulating
// weight gradient) and acc += d*w (the activation-gradient gather toward
// the previous layer). Reading w before any write preserves classical
// backprop semantics within the element; every cell receives exactly one
// add, so the result is bit-identical to the separate scalar loops. All
// slices must have equal length.
func OuterAcc(d float32, x, w, g, acc []float32) {
	if len(x) != len(w) || len(x) != len(g) || len(x) != len(acc) {
		panic("vecmath: OuterAcc length mismatch")
	}
	if Unrolled {
		outerAccUnrolled(d, x, w, g, acc)
		return
	}
	outerAccScalar(d, x, w, g, acc)
}

func outerAccScalar(d float32, x, w, g, acc []float32) {
	for i := range x {
		acc[i] += d * w[i]
		g[i] += d * x[i]
	}
}

func outerAccUnrolled(d float32, x, w, g, acc []float32) {
	n := len(x) &^ 3
	for i := 0; i < n; i += 4 {
		xx := x[i : i+4 : i+4]
		ww := w[i : i+4 : i+4]
		gg := g[i : i+4 : i+4]
		aa := acc[i : i+4 : i+4]
		aa[0] += d * ww[0]
		aa[1] += d * ww[1]
		aa[2] += d * ww[2]
		aa[3] += d * ww[3]
		gg[0] += d * xx[0]
		gg[1] += d * xx[1]
		gg[2] += d * xx[2]
		gg[3] += d * xx[3]
	}
	for i := n; i < len(x); i++ {
		acc[i] += d * w[i]
		g[i] += d * x[i]
	}
}

// SparseOuterAcc is OuterAcc over a sparse input: for each nonzero t,
// g[idx[t]] += d*val[t] (outer-product accumulate into the touched
// columns) and acc[t] += d*w[idx[t]] (activation-gradient gather aligned
// with the sparse input positions). idx, val and acc must have equal
// length.
func SparseOuterAcc(d float32, idx []int32, val, w, g, acc []float32) {
	if len(idx) != len(val) || len(idx) != len(acc) {
		panic("vecmath: SparseOuterAcc length mismatch")
	}
	for t, i := range idx {
		acc[t] += d * w[i]
		g[i] += d * val[t]
	}
}

// IndexedAxpy scatters g[pos[t]] += d*val[t] for each sparse component —
// SparseAxpy with the write positions decoupled from the read ids. It is
// the sharded backward scatter's row kernel: pos maps the element's input
// columns into a worker-private compact gradient row, so the loop body is
// the same arithmetic as the shared-buffer scatter in the same order,
// just aimed at memory no other thread writes. pos and val must have
// equal length.
func IndexedAxpy(d float32, pos []int32, val []float32, g []float32) {
	if len(pos) != len(val) {
		panic("vecmath: IndexedAxpy position/value length mismatch")
	}
	for t, p := range pos {
		g[p] += d * val[t]
	}
}

// IndexedOuterAcc fuses IndexedAxpy with the activation-gradient gather:
// for each nonzero t, acc[t] += d*w[idx[t]] and g[pos[t]] += d*val[t].
// It is SparseOuterAcc with the gradient writes redirected through pos
// into a worker-private compact row; the per-element arithmetic and order
// are identical, so extraction sums match the shared-buffer path bit for
// bit. idx, pos, val and acc must have equal length.
func IndexedOuterAcc(d float32, idx, pos []int32, val, w, g, acc []float32) {
	if len(idx) != len(val) || len(idx) != len(pos) || len(idx) != len(acc) {
		panic("vecmath: IndexedOuterAcc length mismatch")
	}
	for t, i := range idx {
		acc[t] += d * w[i]
		g[pos[t]] += d * val[t]
	}
}

// Axpy computes y += alpha*x element-wise. The slices must have equal
// length.
func Axpy(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("vecmath: Axpy length mismatch")
	}
	if Unrolled {
		axpyUnrolled(alpha, x, y)
		return
	}
	axpyScalar(alpha, x, y)
}

func axpyScalar(alpha float32, x, y []float32) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

func axpyUnrolled(alpha float32, x, y []float32) {
	n := len(x) &^ 7
	for i := 0; i < n; i += 8 {
		xx := x[i : i+8 : i+8]
		yy := y[i : i+8 : i+8]
		yy[0] += alpha * xx[0]
		yy[1] += alpha * xx[1]
		yy[2] += alpha * xx[2]
		yy[3] += alpha * xx[3]
		yy[4] += alpha * xx[4]
		yy[5] += alpha * xx[5]
		yy[6] += alpha * xx[6]
		yy[7] += alpha * xx[7]
	}
	for i := n; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// SparseAxpy scatters y[idx[j]] += alpha*val[j] for each sparse component.
func SparseAxpy(alpha float32, idx []int32, val []float32, y []float32) {
	if len(idx) != len(val) {
		panic("vecmath: SparseAxpy index/value length mismatch")
	}
	for j, i := range idx {
		y[i] += alpha * val[j]
	}
}

// Scale multiplies x by alpha in place.
func Scale(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// Fill sets every element of x to v.
func Fill(x []float32, v float32) {
	for i := range x {
		x[i] = v
	}
}

// Max returns the maximum element of x. It panics on an empty slice.
func Max(x []float32) float32 {
	if len(x) == 0 {
		panic("vecmath: Max of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index of the maximum element of x, breaking ties in
// favour of the lowest index. It panics on an empty slice.
func ArgMax(x []float32) int {
	if len(x) == 0 {
		panic("vecmath: ArgMax of empty slice")
	}
	best, bi := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Softmax overwrites x with softmax(x), computed with the max-subtraction
// trick for numerical stability. The sum is accumulated in float64.
func Softmax(x []float32) {
	if len(x) == 0 {
		return
	}
	m := Max(x)
	var sum float64
	for i, v := range x {
		e := float32(math.Exp(float64(v - m)))
		x[i] = e
		sum += float64(e)
	}
	inv := float32(1 / sum)
	Scale(inv, x)
}

// LogSumExp returns log(sum_i exp(x_i)) computed stably in float64.
func LogSumExp(x []float32) float32 {
	if len(x) == 0 {
		return float32(math.Inf(-1))
	}
	m := Max(x)
	var sum float64
	for _, v := range x {
		sum += math.Exp(float64(v - m))
	}
	return m + float32(math.Log(sum))
}

// ReLU overwrites x with max(x, 0).
func ReLU(x []float32) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}

// Norm2 returns the Euclidean norm of x, accumulated in float64.
func Norm2(x []float32) float32 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// CosineSim returns the cosine similarity of a and b, or 0 if either has
// zero norm. The slices must have equal length.
func CosineSim(a, b []float32) float32 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}
