// Package dataset provides the extreme multi-label classification
// workloads SLIDE is evaluated on (§5, Table 1).
//
// The paper uses Delicious-200K and Amazon-670K from the Extreme
// Classification Repository. Those corpora are not redistributable and the
// module builds offline, so this package supplies two things:
//
//   - A synthetic generator whose profiles match the published Table 1
//     statistics (feature dimension, feature sparsity, label dimension,
//     train/test sizes) at a configurable scale factor, with planted
//     class structure so that the tasks are genuinely learnable: each
//     class owns a sparse prototype and an example's features are a noisy
//     union of its labels' prototypes.
//   - A reader/writer for the repository's SVMLight-style format, so the
//     real datasets drop in unchanged when available.
package dataset

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// Example is one multi-label classification instance.
type Example struct {
	// Features is the sparse input vector.
	Features sparse.Vector
	// Labels lists the true class ids, ascending, no duplicates.
	Labels []int32
}

// Dataset is a named train/test split over a fixed feature and label space.
type Dataset struct {
	Name       string
	InputDim   int
	NumClasses int
	Train      []Example
	Test       []Example
}

// Stats summarizes a dataset in the shape of the paper's Table 1.
type Stats struct {
	Name            string
	FeatureDim      int
	FeatureSparsity float64 // mean NNZ / FeatureDim
	LabelDim        int
	TrainSize       int
	TestSize        int
	AvgFeatures     float64 // mean non-zeros per example
	AvgLabels       float64 // mean labels per example
}

// Stats computes summary statistics over the train split (falling back to
// test when train is empty).
func (d *Dataset) Stats() Stats {
	s := Stats{
		Name:       d.Name,
		FeatureDim: d.InputDim,
		LabelDim:   d.NumClasses,
		TrainSize:  len(d.Train),
		TestSize:   len(d.Test),
	}
	src := d.Train
	if len(src) == 0 {
		src = d.Test
	}
	if len(src) == 0 {
		return s
	}
	var nnz, nlab int
	for i := range src {
		nnz += src[i].Features.NNZ()
		nlab += len(src[i].Labels)
	}
	s.AvgFeatures = float64(nnz) / float64(len(src))
	s.AvgLabels = float64(nlab) / float64(len(src))
	if d.InputDim > 0 {
		s.FeatureSparsity = s.AvgFeatures / float64(d.InputDim)
	}
	return s
}

// Validate checks structural invariants: feature indices within InputDim,
// labels within NumClasses, ascending and unique.
func (d *Dataset) Validate() error {
	check := func(split string, exs []Example) error {
		for n := range exs {
			ex := &exs[n]
			if ex.Features.Dim != d.InputDim {
				return fmt.Errorf("dataset %s: %s[%d] feature dim %d != %d", d.Name, split, n, ex.Features.Dim, d.InputDim)
			}
			for j, i := range ex.Features.Idx {
				if i < 0 || int(i) >= d.InputDim {
					return fmt.Errorf("dataset %s: %s[%d] feature index %d out of range", d.Name, split, n, i)
				}
				if j > 0 && ex.Features.Idx[j-1] >= i {
					return fmt.Errorf("dataset %s: %s[%d] feature indices not strictly ascending", d.Name, split, n)
				}
			}
			for j, l := range ex.Labels {
				if l < 0 || int(l) >= d.NumClasses {
					return fmt.Errorf("dataset %s: %s[%d] label %d out of range", d.Name, split, n, l)
				}
				if j > 0 && ex.Labels[j-1] >= l {
					return fmt.Errorf("dataset %s: %s[%d] labels not strictly ascending", d.Name, split, n)
				}
			}
		}
		return nil
	}
	if err := check("train", d.Train); err != nil {
		return err
	}
	return check("test", d.Test)
}

// Profile parameterizes the synthetic generator.
type Profile struct {
	// Name labels the generated dataset.
	Name string
	// FeatureDim and NumClasses are the input and label space sizes.
	FeatureDim int
	NumClasses int
	// TrainSize and TestSize are the split sizes.
	TrainSize int
	TestSize  int
	// AvgFeatures is the mean non-zeros per example.
	AvgFeatures int
	// AvgLabels is the mean labels per example.
	AvgLabels int
	// ProtoNNZ is the sparse prototype size per class.
	ProtoNNZ int
	// NoiseFrac is the fraction of an example's features drawn uniformly
	// instead of from its labels' prototypes.
	NoiseFrac float64
	// LabelSkew controls class popularity: labels are drawn as
	// floor(C * u^LabelSkew), so values above 1 skew toward low ids
	// (head classes), mimicking the long-tailed XC label distributions.
	LabelSkew float64
	// Seed drives generation.
	Seed uint64
}

// Delicious200K returns the Delicious-200K profile from Table 1 scaled by
// scale in (0, 1]: dimensions and sizes multiply by scale; per-example
// counts shrink like sqrt(scale) so small instances stay learnable.
func Delicious200K(scale float64, seed uint64) Profile {
	return scaleProfile(Profile{
		Name:        "delicious-200k",
		FeatureDim:  782585,
		NumClasses:  205443,
		TrainSize:   196606,
		TestSize:    100095,
		AvgFeatures: 300, // 0.038% of 782,585 (Table 1)
		AvgLabels:   75,
		ProtoNNZ:    60,
		NoiseFrac:   0.15,
		LabelSkew:   2,
		Seed:        seed,
	}, scale)
}

// Amazon670K returns the Amazon-670K profile from Table 1 scaled by scale.
func Amazon670K(scale float64, seed uint64) Profile {
	return scaleProfile(Profile{
		Name:        "amazon-670k",
		FeatureDim:  135909,
		NumClasses:  670091,
		TrainSize:   490449,
		TestSize:    153025,
		AvgFeatures: 75, // 0.055% of 135,909 (Table 1)
		AvgLabels:   5,
		ProtoNNZ:    40,
		NoiseFrac:   0.15,
		LabelSkew:   2,
		Seed:        seed,
	}, scale)
}

func scaleProfile(p Profile, scale float64) Profile {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("dataset: scale must be in (0,1], got %g", scale))
	}
	if scale == 1 {
		return p
	}
	root := math.Sqrt(scale)
	p.Name = fmt.Sprintf("%s@%.4g", p.Name, scale)
	p.FeatureDim = max(64, int(float64(p.FeatureDim)*scale))
	p.NumClasses = max(16, int(float64(p.NumClasses)*scale))
	p.TrainSize = max(64, int(float64(p.TrainSize)*scale))
	p.TestSize = max(32, int(float64(p.TestSize)*scale))
	p.AvgFeatures = clampInt(int(float64(p.AvgFeatures)*root), 4, p.FeatureDim/2)
	p.AvgLabels = clampInt(int(float64(p.AvgLabels)*root), 1, max(1, p.NumClasses/8))
	p.ProtoNNZ = clampInt(int(float64(p.ProtoNNZ)*root), 4, p.FeatureDim/2)
	return p
}

// Generate synthesizes a dataset from the profile. Generation is
// deterministic in Profile.Seed independent of parallelism.
func Generate(p Profile) (*Dataset, error) {
	if p.FeatureDim <= 0 || p.NumClasses <= 0 {
		return nil, fmt.Errorf("dataset: profile needs positive dims, got features=%d classes=%d", p.FeatureDim, p.NumClasses)
	}
	if p.AvgFeatures <= 0 || p.AvgLabels <= 0 || p.ProtoNNZ <= 0 {
		return nil, fmt.Errorf("dataset: profile needs positive per-example counts")
	}
	if p.LabelSkew <= 0 {
		p.LabelSkew = 1
	}
	protos := makePrototypes(p)
	d := &Dataset{
		Name:       p.Name,
		InputDim:   p.FeatureDim,
		NumClasses: p.NumClasses,
		Train:      make([]Example, p.TrainSize),
		Test:       make([]Example, p.TestSize),
	}
	genSplit(p, protos, d.Train, 0x11a1)
	genSplit(p, protos, d.Test, 0x7e57)
	return d, nil
}

// prototype is one class's sparse signature.
type prototype struct {
	idx []int32
	val []float32
}

func makePrototypes(p Profile) []prototype {
	protos := make([]prototype, p.NumClasses)
	parallelFor(p.NumClasses, func(c int) {
		r := rng.NewStream(p.Seed^0x9b0+uint64(c)*0x9e3779b97f4a7c15, 0xb0)
		n := p.ProtoNNZ
		idx := r.SampleK(p.FeatureDim, n)
		pr := prototype{idx: make([]int32, n), val: make([]float32, n)}
		for j, i := range idx {
			pr.idx[j] = int32(i)
			pr.val[j] = 0.5 + absf(r.NormFloat32())
		}
		protos[c] = pr
	})
	return protos
}

func genSplit(p Profile, protos []prototype, out []Example, salt uint64) {
	parallelFor(len(out), func(n int) {
		r := rng.NewStream(p.Seed^salt+uint64(n)*0x9e3779b97f4a7c15, salt)
		out[n] = genExample(p, protos, r)
	})
}

func genExample(p Profile, protos []prototype, r *rng.RNG) Example {
	// Draw the label set: skewed toward head classes, deduplicated.
	nLab := 1 + r.Intn(2*p.AvgLabels-1) // mean AvgLabels
	if nLab > p.NumClasses {
		nLab = p.NumClasses
	}
	labSet := make(map[int32]struct{}, nLab)
	labels := make([]int32, 0, nLab)
	for len(labels) < nLab {
		u := r.Float64()
		c := int32(float64(p.NumClasses) * math.Pow(u, p.LabelSkew))
		if int(c) >= p.NumClasses {
			c = int32(p.NumClasses - 1)
		}
		if _, dup := labSet[c]; dup {
			if len(labSet) >= p.NumClasses {
				break
			}
			continue
		}
		labSet[c] = struct{}{}
		labels = append(labels, c)
	}
	insertionSort32(labels)

	// Features: a noisy subset of each label's prototype plus background
	// noise, L2-normalized (SLIDE's Simhash is a cosine LSH).
	signal := p.AvgFeatures - int(float64(p.AvgFeatures)*p.NoiseFrac)
	perLabel := max(2, signal/len(labels))
	fIdx := make([]int32, 0, p.AvgFeatures+8)
	fVal := make([]float32, 0, p.AvgFeatures+8)
	for _, c := range labels {
		pr := protos[c]
		take := perLabel
		if take > len(pr.idx) {
			take = len(pr.idx)
		}
		for _, j := range r.SampleK(len(pr.idx), take) {
			fIdx = append(fIdx, pr.idx[j])
			fVal = append(fVal, pr.val[j]*(0.8+0.4*r.Float32()))
		}
	}
	noise := int(float64(p.AvgFeatures) * p.NoiseFrac)
	for i := 0; i < noise; i++ {
		fIdx = append(fIdx, int32(r.Intn(p.FeatureDim)))
		fVal = append(fVal, 0.1+0.2*r.Float32())
	}
	vec, err := sparse.New(p.FeatureDim, fIdx, fVal)
	if err != nil {
		panic(err) // indices are generated in range; unreachable
	}
	if n := vec.Norm2(); n > 0 {
		inv := float32(1 / n)
		for j := range vec.Val {
			vec.Val[j] *= inv
		}
	}
	return Example{Features: vec, Labels: labels}
}

// parallelFor runs f(i) for i in [0, n) across GOMAXPROCS workers.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

func insertionSort32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func absf(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}

func clampInt(x, lo, hi int) int {
	if hi < lo {
		hi = lo
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
