package dataset

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func tinyProfile(seed uint64) Profile {
	return Profile{
		Name: "t", FeatureDim: 256, NumClasses: 64,
		TrainSize: 300, TestSize: 100,
		AvgFeatures: 12, AvgLabels: 2, ProtoNNZ: 8,
		NoiseFrac: 0.1, LabelSkew: 1.5, Seed: seed,
	}
}

func TestGenerateValidates(t *testing.T) {
	ds, err := Generate(tinyProfile(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ds.Train) != 300 || len(ds.Test) != 100 {
		t.Fatalf("split sizes %d/%d", len(ds.Train), len(ds.Test))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(tinyProfile(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tinyProfile(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Train {
		if !reflect.DeepEqual(a.Train[i].Labels, b.Train[i].Labels) ||
			!reflect.DeepEqual(a.Train[i].Features.Idx, b.Train[i].Features.Idx) {
			t.Fatalf("example %d differs across equal-seed generations", i)
		}
	}
	c, err := Generate(tinyProfile(10))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Train {
		if reflect.DeepEqual(a.Train[i].Labels, c.Train[i].Labels) {
			same++
		}
	}
	if same == len(a.Train) {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestStatsNearProfile(t *testing.T) {
	ds, err := Generate(tinyProfile(3))
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Stats()
	if s.AvgFeatures < 6 || s.AvgFeatures > 20 {
		t.Errorf("avg features %.1f far from profile 12", s.AvgFeatures)
	}
	if s.AvgLabels < 1 || s.AvgLabels > 3.5 {
		t.Errorf("avg labels %.1f far from profile 2", s.AvgLabels)
	}
	if s.FeatureSparsity <= 0 || s.FeatureSparsity > 0.2 {
		t.Errorf("sparsity %.4f implausible", s.FeatureSparsity)
	}
}

func TestExamplesAreUnitNorm(t *testing.T) {
	ds, err := Generate(tinyProfile(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Train[:20] {
		n := ds.Train[i].Features.Norm2()
		if math.Abs(n-1) > 1e-3 {
			t.Fatalf("example %d norm %v, want 1", i, n)
		}
	}
}

// TestLearnableStructure: examples sharing a label must overlap more in
// feature support than examples with disjoint labels — the property that
// makes the planted task learnable.
func TestLearnableStructure(t *testing.T) {
	ds, err := Generate(tinyProfile(7))
	if err != nil {
		t.Fatal(err)
	}
	overlap := func(a, b Example) float64 {
		set := map[int32]bool{}
		for _, i := range a.Features.Idx {
			set[i] = true
		}
		hits := 0
		for _, i := range b.Features.Idx {
			if set[i] {
				hits++
			}
		}
		return float64(hits) / float64(len(b.Features.Idx)+1)
	}
	shareLabel := func(a, b Example) bool {
		set := map[int32]bool{}
		for _, l := range a.Labels {
			set[l] = true
		}
		for _, l := range b.Labels {
			if set[l] {
				return true
			}
		}
		return false
	}
	var sameSum, diffSum float64
	var sameN, diffN int
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			o := overlap(ds.Train[i], ds.Train[j])
			if shareLabel(ds.Train[i], ds.Train[j]) {
				sameSum += o
				sameN++
			} else {
				diffSum += o
				diffN++
			}
		}
	}
	if sameN == 0 || diffN == 0 {
		t.Skip("degenerate label draw")
	}
	if sameSum/float64(sameN) <= diffSum/float64(diffN) {
		t.Fatalf("shared-label overlap %.3f <= disjoint %.3f; task not learnable",
			sameSum/float64(sameN), diffSum/float64(diffN))
	}
}

func TestScaleProfileBounds(t *testing.T) {
	p := Delicious200K(0.01, 1)
	if p.FeatureDim != 7825 || p.NumClasses != 2054 {
		t.Fatalf("scaled dims: %d features, %d classes", p.FeatureDim, p.NumClasses)
	}
	if p.AvgFeatures <= 0 || p.AvgLabels <= 0 || p.ProtoNNZ <= 0 {
		t.Fatalf("scaled counts non-positive: %+v", p)
	}
	full := Amazon670K(1, 1)
	if full.FeatureDim != 135909 || full.NumClasses != 670091 {
		t.Fatalf("paper dims wrong: %+v", full)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("scale > 1 accepted")
		}
	}()
	Delicious200K(1.5, 1)
}

func TestGenerateRejectsBadProfiles(t *testing.T) {
	p := tinyProfile(1)
	p.FeatureDim = 0
	if _, err := Generate(p); err == nil {
		t.Error("zero FeatureDim accepted")
	}
	p = tinyProfile(1)
	p.AvgLabels = 0
	if _, err := Generate(p); err == nil {
		t.Error("zero AvgLabels accepted")
	}
}

func TestXCRoundTrip(t *testing.T) {
	ds, err := Generate(tinyProfile(11))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteXC(&buf, ds.Train[:50], ds.InputDim, ds.NumClasses); err != nil {
		t.Fatal(err)
	}
	back, nf, nl, err := ReadXC(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if nf != ds.InputDim || nl != ds.NumClasses || len(back) != 50 {
		t.Fatalf("header %d/%d, %d examples", nf, nl, len(back))
	}
	for i := range back {
		if !reflect.DeepEqual(back[i].Labels, ds.Train[i].Labels) {
			t.Fatalf("example %d labels: %v != %v", i, back[i].Labels, ds.Train[i].Labels)
		}
		if !reflect.DeepEqual(back[i].Features.Idx, ds.Train[i].Features.Idx) {
			t.Fatalf("example %d indices differ", i)
		}
		for j := range back[i].Features.Val {
			if math.Abs(float64(back[i].Features.Val[j]-ds.Train[i].Features.Val[j])) > 1e-5 {
				t.Fatalf("example %d value %d differs", i, j)
			}
		}
	}
}

func TestReadXCErrors(t *testing.T) {
	cases := []string{
		"",                    // empty
		"1 2",                 // short header
		"x 2 3\n",             // bad count
		"1 10 5\n9 0:bad\n",   // bad value
		"1 10 5\n7 0:1\n",     // label out of range
		"1 10 5\n1 20:1\n",    // feature out of range
		"1 10 5\n1 nocolon\n", // bad token
	}
	for i, c := range cases {
		if _, _, _, err := ReadXC(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestReadXCNoLabelLine(t *testing.T) {
	in := "1 10 5\n 0:1.5 3:2\n"
	exs, _, _, err := ReadXC(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(exs) != 1 || len(exs[0].Labels) != 0 || exs[0].Features.NNZ() != 2 {
		t.Fatalf("parsed %+v", exs)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	ds, err := Generate(tinyProfile(2))
	if err != nil {
		t.Fatal(err)
	}
	ds.Train[0].Labels = []int32{int32(ds.NumClasses)}
	if err := ds.Validate(); err == nil {
		t.Fatal("out-of-range label not caught")
	}
}
