package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sparse"
)

// ReadXC parses the Extreme Classification Repository's SVMLight-style
// format:
//
//	header:  "<numExamples> <numFeatures> <numLabels>"
//	line:    "l1,l2,...  idx:val idx:val ..."
//
// Lines with no labels start with a space. Feature indices are 0-based as
// distributed by the repository.
func ReadXC(r io.Reader) (examples []Example, numFeatures, numLabels int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, 0, 0, fmt.Errorf("dataset: empty XC stream: %w", sc.Err())
	}
	header := strings.Fields(sc.Text())
	if len(header) != 3 {
		return nil, 0, 0, fmt.Errorf("dataset: bad XC header %q", sc.Text())
	}
	numExamples, err := strconv.Atoi(header[0])
	if err != nil {
		return nil, 0, 0, fmt.Errorf("dataset: bad example count: %w", err)
	}
	if numFeatures, err = strconv.Atoi(header[1]); err != nil {
		return nil, 0, 0, fmt.Errorf("dataset: bad feature count: %w", err)
	}
	if numLabels, err = strconv.Atoi(header[2]); err != nil {
		return nil, 0, 0, fmt.Errorf("dataset: bad label count: %w", err)
	}
	examples = make([]Example, 0, numExamples)
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		ex, err := parseXCLine(line, numFeatures, numLabels)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("dataset: line %d: %w", lineNo, err)
		}
		examples = append(examples, ex)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, 0, fmt.Errorf("dataset: reading XC stream: %w", err)
	}
	return examples, numFeatures, numLabels, nil
}

func parseXCLine(line string, numFeatures, numLabels int) (Example, error) {
	var ex Example
	fields := strings.Fields(line)
	start := 0
	// The label field contains no ':'; it may be absent entirely when the
	// line starts with whitespace.
	if len(fields) > 0 && !strings.Contains(fields[0], ":") {
		start = 1
		for _, tok := range strings.Split(fields[0], ",") {
			if tok == "" {
				continue
			}
			l, err := strconv.Atoi(tok)
			if err != nil {
				return ex, fmt.Errorf("bad label %q: %w", tok, err)
			}
			if l < 0 || l >= numLabels {
				return ex, fmt.Errorf("label %d out of range [0,%d)", l, numLabels)
			}
			ex.Labels = append(ex.Labels, int32(l))
		}
		sort.Slice(ex.Labels, func(a, b int) bool { return ex.Labels[a] < ex.Labels[b] })
		ex.Labels = dedup32(ex.Labels)
	}
	idx := make([]int32, 0, len(fields)-start)
	val := make([]float32, 0, len(fields)-start)
	for _, tok := range fields[start:] {
		colon := strings.IndexByte(tok, ':')
		if colon < 0 {
			return ex, fmt.Errorf("bad feature token %q", tok)
		}
		i, err := strconv.Atoi(tok[:colon])
		if err != nil {
			return ex, fmt.Errorf("bad feature index in %q: %w", tok, err)
		}
		v, err := strconv.ParseFloat(tok[colon+1:], 32)
		if err != nil {
			return ex, fmt.Errorf("bad feature value in %q: %w", tok, err)
		}
		idx = append(idx, int32(i))
		val = append(val, float32(v))
	}
	vec, err := sparse.New(numFeatures, idx, val)
	if err != nil {
		return ex, err
	}
	ex.Features = vec
	return ex, nil
}

// WriteXC writes examples in the XC format read by ReadXC.
func WriteXC(w io.Writer, examples []Example, numFeatures, numLabels int) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", len(examples), numFeatures, numLabels); err != nil {
		return err
	}
	for n := range examples {
		ex := &examples[n]
		for j, l := range ex.Labels {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(l))); err != nil {
				return err
			}
		}
		for j, i := range ex.Features.Idx {
			if _, err := fmt.Fprintf(bw, " %d:%g", i, ex.Features.Val[j]); err != nil {
				return err
			}
			_ = j
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadXCFile reads one XC-format file into a Dataset with an empty test
// split.
func LoadXCFile(name, path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	exs, nf, nl, err := ReadXC(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &Dataset{Name: name, InputDim: nf, NumClasses: nl, Train: exs}, nil
}

func dedup32(a []int32) []int32 {
	out := a[:0]
	for i, v := range a {
		if i == 0 || v != a[i-1] {
			out = append(out, v)
		}
	}
	return out
}
