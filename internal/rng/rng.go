// Package rng provides small, fast, deterministic random number generators
// for the SLIDE reproduction.
//
// Every stochastic component in the repository (weight initialization, LSH
// function generation, dataset synthesis, sampling strategies) draws from an
// explicitly seeded generator so that experiments are reproducible run to
// run. The generator is a PCG-XSH-RR 64/32 stream: 64-bit LCG state advanced
// per draw, 32 output bits per step, with an odd stream increment so that
// independent components can derive non-overlapping streams from a shared
// base seed via Split.
package rng

import (
	"math"
	"sort"
)

const (
	pcgMult = 6364136223846793005
	pcgInc  = 1442695040888963407
)

// RNG is a PCG-XSH-RR 64/32 pseudo random number generator. The zero value
// is usable but all zero-seeded RNGs produce the same stream; prefer New.
// RNG is not safe for concurrent use; give each goroutine its own stream
// via Split.
type RNG struct {
	state uint64
	inc   uint64
}

// New returns a generator seeded with seed on the default stream.
func New(seed uint64) *RNG {
	return NewStream(seed, pcgInc)
}

// NewStream returns a generator seeded with seed on the stream selected by
// stream. Distinct stream values yield statistically independent sequences
// even for equal seeds.
func NewStream(seed, stream uint64) *RNG {
	r := &RNG{inc: stream<<1 | 1}
	r.state = r.inc + seed
	r.Uint32()
	return r
}

// Reseed resets r to the state it would have had if freshly constructed
// with NewStream(seed, stream) for r's current stream. The stream
// increment is preserved, so two generators on the same stream reseeded
// with equal seeds produce identical sequences regardless of how many
// draws either has made.
func (r *RNG) Reseed(seed uint64) {
	if r.inc == 0 {
		// Zero-value RNG: adopt the default stream so Reseed on an unused
		// zero generator matches New(seed).
		r.inc = pcgInc<<1 | 1
	}
	r.state = r.inc + seed
	r.Uint32()
}

// ReseedStream resets r to exactly the state of NewStream(seed, stream),
// replacing both the position and the stream increment. Use it to detach
// a generator from its construction-time stream (e.g. a per-worker
// stream) and pin it to a caller-chosen one.
func (r *RNG) ReseedStream(seed, stream uint64) {
	r.inc = stream<<1 | 1
	r.state = r.inc + seed
	r.Uint32()
}

// Split derives a new independent generator from r. The child's seed and
// stream are drawn from r, so successive Split calls return generators with
// distinct streams. Splitting advances r.
func (r *RNG) Split() *RNG {
	seed := uint64(r.Uint32())<<32 | uint64(r.Uint32())
	stream := uint64(r.Uint32())<<32 | uint64(r.Uint32())
	return NewStream(seed, stream)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMult + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless bounded rejection is used to avoid modulo
// bias while keeping the hot path to one multiplication.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn bound must be positive")
	}
	bound := uint32(n)
	m := uint64(r.Uint32()) * uint64(bound)
	low := uint32(m)
	if low < bound {
		threshold := -bound % bound
		for low < threshold {
			m = uint64(r.Uint32()) * uint64(bound)
			low = uint32(m)
		}
	}
	return int(m >> 32)
}

// Int63n returns a uniform integer in [0, n) for large n. It panics if
// n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n bound must be positive")
	}
	maxv := uint64(1)<<63 - 1
	limit := maxv - maxv%uint64(n)
	for {
		v := r.Uint64() >> 1
		if v < limit {
			return int64(v % uint64(n))
		}
	}
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint32()>>8) * (1.0 / (1 << 24))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// NormFloat32 returns a standard normal variate computed with the
// Marsaglia polar method.
func (r *RNG) NormFloat32() float32 {
	return float32(r.NormFloat64())
}

// NormFloat64 returns a standard normal variate computed with the
// Marsaglia polar method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a uniformly random permutation of [0, n) using the
// Fisher-Yates shuffle.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using swap, per Fisher-Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// SampleK draws k distinct integers from [0, n) uniformly at random in
// ascending order. It panics if k > n or either argument is negative.
// For small k relative to n it uses Floyd's algorithm; otherwise it shuffles.
func (r *RNG) SampleK(n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("rng: SampleK requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	if k*4 >= n {
		p := r.Perm(n)[:k]
		sort.Ints(p)
		return p
	}
	chosen := make(map[int]struct{}, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			chosen[j] = struct{}{}
		} else {
			chosen[t] = struct{}{}
		}
	}
	out := make([]int, 0, k)
	for v := range chosen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
