package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint32() == c.Uint32() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds produced %d/1000 equal draws", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(7, 1)
	b := NewStream(7, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("streams with same seed produced %d/1000 equal draws", same)
	}
}

func TestReseedMatchesFreshConstruction(t *testing.T) {
	r := NewStream(42, 7)
	for i := 0; i < 137; i++ { // advance to an arbitrary position
		r.Uint32()
	}
	r.Reseed(42)
	fresh := NewStream(42, 7)
	for i := 0; i < 1000; i++ {
		if r.Uint64() != fresh.Uint64() {
			t.Fatalf("reseeded stream diverged from fresh construction at draw %d", i)
		}
	}
}

func TestReseedOnZeroValueMatchesNew(t *testing.T) {
	var r RNG
	r.Reseed(5)
	fresh := New(5)
	for i := 0; i < 100; i++ {
		if r.Uint64() != fresh.Uint64() {
			t.Fatalf("zero-value Reseed diverged from New at draw %d", i)
		}
	}
}

func TestReseedStreamReplacesStream(t *testing.T) {
	a := NewStream(1, 99) // construction-time stream should not matter
	a.Uint64()
	a.ReseedStream(42, 7)
	b := NewStream(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("ReseedStream diverged from NewStream at draw %d", i)
		}
	}
}

func TestSplitAdvancesParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("Split did not advance the parent stream")
	}
}

func TestIntnBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, n int) bool {
		if n <= 0 {
			n = -n + 1
		}
		n = n%1000 + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(12345)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestFloatRanges(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		if f := r.Float32(); f < 0 || f >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(99)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		p := r.Perm(64)
		seen := make([]bool, 64)
		for _, v := range p {
			if v < 0 || v >= 64 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKProperties(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%200 + 1
		k := int(kRaw) % (n + 1)
		r := New(seed)
		s := r.SampleK(n, k)
		if len(s) != k {
			return false
		}
		for i, v := range s {
			if v < 0 || v >= n {
				return false
			}
			if i > 0 && s[i-1] >= v {
				return false // must be strictly ascending (also implies unique)
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKUniform(t *testing.T) {
	// Each element of [0, 20) should appear in a 5-sample with
	// probability 1/4.
	r := New(777)
	const n, k, trials = 20, 5, 40000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleK(n, k) {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("element %d sampled %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(3)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", p)
	}
}

func TestShuffleCoversAllOrders(t *testing.T) {
	// 3 elements have 6 orders; all should appear.
	r := New(8)
	seen := map[[3]int]bool{}
	for i := 0; i < 600; i++ {
		a := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { a[i], a[j] = a[j], a[i] })
		seen[a] = true
	}
	if len(seen) != 6 {
		t.Fatalf("saw %d/6 permutations", len(seen))
	}
}

func TestInt63n(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		v := r.Int63n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}
