package arena

import (
	"testing"
	"unsafe"
)

func TestAllocZeroedAndSized(t *testing.T) {
	a := New(1 << 16)
	s := a.Alloc(100)
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	for i, v := range s {
		if v != 0 {
			t.Fatalf("slot %d not zeroed: %v", i, v)
		}
	}
	if got := a.Alloc(0); got != nil {
		t.Fatalf("Alloc(0) = %v", got)
	}
}

func TestAllocNoAliasing(t *testing.T) {
	a := New(1 << 16)
	x := a.Alloc(64)
	y := a.Alloc(64)
	for i := range x {
		x[i] = 1
	}
	for i, v := range y {
		if v != 0 {
			t.Fatalf("allocation aliasing at %d: %v", i, v)
		}
	}
}

func TestAllocCapacityClamped(t *testing.T) {
	a := New(1 << 16)
	x := a.Alloc(10)
	// Appending must not bleed into the next allocation's space.
	y := a.Alloc(10)
	x = append(x, 99)
	if y[0] != 0 {
		t.Fatal("append to earlier allocation overwrote later one")
	}
}

func TestLargeAllocGetsOwnSlab(t *testing.T) {
	a := New(1 << 16)
	before := a.Slabs()
	s := a.Alloc(1 << 20)
	if len(s) != 1<<20 {
		t.Fatalf("large alloc len %d", len(s))
	}
	if a.Slabs() != before+1 {
		t.Fatalf("large alloc did not take a dedicated slab")
	}
}

func TestAllocAlignedStartsOnCacheLine(t *testing.T) {
	a := New(1 << 16)
	a.Alloc(3) // misalign the cursor
	s := a.AllocAligned(8)
	// The returned slice must start at a multiple of 16 floats within
	// the slab; verified indirectly via the arena's offset math by
	// allocating again and checking no overlap.
	s2 := a.AllocAligned(8)
	s[7] = 1
	if s2[0] != 0 {
		t.Fatal("aligned allocations overlap")
	}
}

func TestAllocRowsShapeAndIsolation(t *testing.T) {
	a := New(1 << 16)
	for _, padded := range []bool{false, true} {
		rows := a.AllocRows(10, 33, padded)
		if len(rows) != 10 {
			t.Fatalf("rows = %d", len(rows))
		}
		for _, r := range rows {
			if len(r) != 33 {
				t.Fatalf("row len = %d", len(r))
			}
		}
		// Writing one full row must not disturb any other.
		for i := range rows[4] {
			rows[4][i] = 7
		}
		for j, r := range rows {
			if j == 4 {
				continue
			}
			for i, v := range r {
				if v != 0 {
					t.Fatalf("padded=%v: row %d slot %d dirtied: %v", padded, j, i, v)
				}
			}
		}
	}
}

func TestAllocRowsChunksLargeLayers(t *testing.T) {
	a := New(1 << 16) // 64K floats per slab
	rows := a.AllocRows(100, 2048, false)
	if len(rows) != 100 {
		t.Fatalf("rows = %d", len(rows))
	}
	rows[99][2047] = 5
	if rows[98][2047] != 0 {
		t.Fatal("chunked rows overlap")
	}
	if a.Slabs() < 3 {
		t.Fatalf("expected multiple slabs for 200K floats in 64K slabs, got %d", a.Slabs())
	}
}

func TestAllocRowsPerNeuron(t *testing.T) {
	rows := AllocRowsPerNeuron(5, 7)
	if len(rows) != 5 || len(rows[0]) != 7 {
		t.Fatalf("shape %dx%d", len(rows), len(rows[0]))
	}
	rows[0][6] = 1
	if rows[1][0] != 0 {
		t.Fatal("per-neuron rows alias")
	}
}

func TestFloatsAccounting(t *testing.T) {
	a := New(1 << 16)
	a.Alloc(10)
	if a.Floats() != 1<<16 {
		t.Fatalf("Floats = %d, want one slab of %d", a.Floats(), 1<<16)
	}
}

func TestNegativeAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc(-1) did not panic")
		}
	}()
	New(0).Alloc(-1)
}

func TestAllocUint16ZeroedAligned(t *testing.T) {
	a := New(1 << 16)
	a.AllocInt8(3) // misalign the byte cursor
	s := a.AllocUint16(100)
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	for i, v := range s {
		if v != 0 {
			t.Fatalf("slot %d not zeroed: %v", i, v)
		}
	}
	if addr := uintptr(unsafe.Pointer(&s[0])); addr%CacheLineBytes != 0 {
		t.Fatalf("uint16 allocation not cache-line aligned: %#x", addr)
	}
	if got := a.AllocUint16(0); got != nil {
		t.Fatalf("AllocUint16(0) = %v", got)
	}
}

func TestAllocInt8NoAliasing(t *testing.T) {
	a := New(1 << 16)
	x := a.AllocInt8(64)
	y := a.AllocInt8(64)
	for i := range x {
		x[i] = 1
	}
	for i, v := range y {
		if v != 0 {
			t.Fatalf("int8 allocation aliasing at %d: %v", i, v)
		}
	}
	if addr := uintptr(unsafe.Pointer(&y[0])); addr%CacheLineBytes != 0 {
		t.Fatalf("int8 allocation not cache-line aligned: %#x", addr)
	}
}

func TestByteSlabsCountedInSlabs(t *testing.T) {
	a := New(1 << 16)
	before := a.Slabs()
	a.AllocUint16(10)
	if a.Slabs() != before+1 {
		t.Fatalf("byte slab not counted: %d -> %d", before, a.Slabs())
	}
	// A huge quantized allocation takes a dedicated byte slab.
	mid := a.Slabs()
	s := a.AllocInt8(1 << 20)
	if len(s) != 1<<20 {
		t.Fatalf("large int8 alloc len %d", len(s))
	}
	if a.Slabs() != mid+1 {
		t.Fatal("large int8 alloc did not take a dedicated slab")
	}
	// Float accounting is unaffected by byte slabs.
	if a.Floats() != 0 {
		t.Fatalf("Floats = %d after byte-only allocations", a.Floats())
	}
}
