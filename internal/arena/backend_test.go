package arena

import (
	"math"
	"testing"
	"unsafe"

	"repro/internal/rng"
)

// carve runs one fixed allocation/write program against an arena and
// returns every value written, in order — the probe both backends must
// agree on bitwise.
func carve(a *Arena) []uint32 {
	r := rng.New(123)
	var out []uint32
	touch := func(s []float32) {
		for i := range s {
			s[i] = r.NormFloat32()
			out = append(out, math.Float32bits(s[i]))
		}
	}
	touch(a.Alloc(100))
	touch(a.AllocAligned(33))
	for _, row := range a.AllocRows(17, 129, true) {
		touch(row)
	}
	touch(a.Alloc(a.slabSize + 1)) // oversize: dedicated slab
	q := a.AllocUint16(257)
	for i := range q {
		q[i] = uint16(r.Intn(1 << 16))
		out = append(out, uint32(q[i]))
	}
	b := a.AllocInt8(129)
	for i := range b {
		b[i] = int8(r.Intn(256) - 128)
		out = append(out, uint32(uint8(b[i])))
	}
	return out
}

// TestMmapBackendBitTransparent is the acceptance check for the mmap
// slab backend: the same allocation program run against a heap arena
// and an mmap arena yields bitwise-identical contents, layouts that
// respect the same alignment rules, and reads back intact.
func TestMmapBackendBitTransparent(t *testing.T) {
	heap := New(1 << 16)
	heap.backend = BackendHeap // pin: SLIDE_ARENA=mmap must not flip the reference arena
	mm := New(1 << 16)
	mm.backend = BackendMmap
	defer mm.Release()

	hw := carve(heap)
	mw := carve(mm)
	if len(hw) != len(mw) {
		t.Fatalf("write counts differ: %d vs %d", len(hw), len(mw))
	}
	for i := range hw {
		if hw[i] != mw[i] {
			t.Fatalf("write %d differs: %#x vs %#x", i, hw[i], mw[i])
		}
	}
	if MmapSupported() {
		if mm.MappedBytes() == 0 {
			t.Fatal("mmap backend mapped nothing on a supported platform")
		}
	} else if mm.MappedBytes() != 0 {
		t.Fatal("unsupported platform reported mapped bytes")
	}
	if heap.MappedBytes() != 0 {
		t.Fatal("heap backend reported mapped bytes")
	}
	if heap.Slabs() != mm.Slabs() {
		t.Fatalf("slab counts differ: heap %d, mmap %d", heap.Slabs(), mm.Slabs())
	}
}

func TestMmapAllocationsZeroedAndAligned(t *testing.T) {
	a := New(1 << 16)
	a.backend = BackendMmap
	defer a.Release()
	a.Alloc(3)
	s := a.AllocAligned(64)
	for i, v := range s {
		if v != 0 {
			t.Fatalf("slot %d not zeroed: %v", i, v)
		}
	}
	if addr := uintptr(unsafe.Pointer(&s[0])); addr%CacheLineBytes != 0 {
		t.Fatalf("aligned alloc at %#x", addr)
	}
	q := a.AllocUint16(10)
	if addr := uintptr(unsafe.Pointer(&q[0])); addr%CacheLineBytes != 0 {
		t.Fatalf("uint16 alloc at %#x", addr)
	}
}

// TestResetRecyclesSlabs: after Reset, the next build cycle reuses the
// retired standard-size slabs (no new mappings, zeroed contents).
func TestResetRecyclesSlabs(t *testing.T) {
	a := New(1 << 16)
	a.backend = BackendMmap
	defer a.Release()
	s := a.Alloc(1000)
	for i := range s {
		s[i] = 1
	}
	a.AllocUint16(100)
	mapped := a.MappedBytes()
	a.Reset()
	if a.MappedBytes() != mapped {
		t.Fatalf("Reset changed mapping footprint: %d -> %d", mapped, a.MappedBytes())
	}
	s2 := a.Alloc(1000)
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("recycled slab slot %d not zeroed: %v", i, v)
		}
	}
	if a.MappedBytes() != mapped {
		t.Fatalf("recycle allocated a fresh mapping: %d -> %d", mapped, a.MappedBytes())
	}
	if MmapSupported() && mapped == 0 {
		t.Fatal("expected mmap-backed slabs on a supported platform")
	}
}

func TestReleaseUnmapsAndArenaStaysUsable(t *testing.T) {
	a := New(1 << 16)
	a.backend = BackendMmap
	a.Alloc(100)
	a.Release()
	if a.MappedBytes() != 0 || a.Slabs() != 0 {
		t.Fatalf("Release left %d mapped bytes, %d slabs", a.MappedBytes(), a.Slabs())
	}
	s := a.Alloc(50)
	s[49] = 1
	a.Release()
}

func TestSetBackendDefault(t *testing.T) {
	prev := SetBackend(BackendMmap)
	defer SetBackend(prev)
	if DefaultBackend() != BackendMmap {
		t.Fatal("SetBackend did not take")
	}
	a := NewDefault()
	if a.backend != BackendMmap {
		t.Fatal("NewDefault ignored the default backend")
	}
	if got := SetBackend(prev); got != BackendMmap {
		t.Fatalf("SetBackend returned %v, want mmap", got)
	}
}
