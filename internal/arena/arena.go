// Package arena provides a slab allocator for float32 parameter state.
//
// It is the repository's analogue of the paper's Transparent Hugepages
// optimization (§5.4, App. D, Table 4): instead of one small heap object
// per neuron (many pages, many pointer targets, TLB/GC pressure), an Arena
// packs a whole layer's weights and optimizer moments into a handful of
// large contiguous slabs and hands out cache-line-aligned row views. The
// Fig. 10 "optimized vs plain SLIDE" ablation flips between arena-backed
// and per-neuron allocation.
package arena

import (
	"fmt"
	"os"
	"sync/atomic"
	"unsafe"
)

// CacheLineBytes is the alignment granule; rows are padded so that no two
// rows share a cache line, removing the false-sharing opportunity App. D
// describes for concurrent HOGWILD writers.
const CacheLineBytes = 64

const floatsPerLine = CacheLineBytes / 4

// Backend selects where an arena's slabs come from.
type Backend int32

const (
	// BackendHeap carves slabs from ordinary Go heap allocations.
	BackendHeap Backend = iota
	// BackendMmap carves slabs from anonymous private mmap regions
	// advised MADV_HUGEPAGE — the paper's Transparent Hugepages knob
	// applied directly to parameter state. Unsupported platforms (and
	// failed maps) fall back to the heap slab transparently; the carved
	// slices behave identically either way.
	BackendMmap
)

// defaultBackend is the backend New/NewDefault stamp on fresh arenas.
// Initialized from SLIDE_ARENA ("mmap" or "heap"), overridable with
// SetBackend.
var defaultBackend atomic.Int32

func init() {
	switch os.Getenv("SLIDE_ARENA") {
	case "mmap":
		defaultBackend.Store(int32(BackendMmap))
	}
}

// SetBackend changes the backend used by arenas created after the call
// and returns the previous default. Existing arenas keep the backend
// they were built with.
func SetBackend(b Backend) Backend {
	return Backend(defaultBackend.Swap(int32(b)))
}

// DefaultBackend reports the backend new arenas will use. When the
// platform has no mmap support, BackendMmap still reports itself here
// but every slab falls back to the heap.
func DefaultBackend() Backend { return Backend(defaultBackend.Load()) }

// Arena allocates float32 slices out of large slabs. A second byte-slab
// class backs the quantized (uint16/int8) allocations, carved with the
// same cache-line alignment.
type Arena struct {
	slabSize int
	backend  Backend
	slabs    [][]float32
	cur      []float32
	off      int

	bslabs [][]byte
	bcur   []byte
	boff   int

	// mapped holds the raw mmap regions backing mmap-backend slabs, for
	// Release to unmap. Heap slabs are garbage collected instead.
	mapped [][]byte
	// freeF/freeB are retired standard-size slabs Reset has zeroed for
	// reuse, so a rebuild cycle (reload, shard re-init) reuses its
	// mappings instead of growing the address space.
	freeF [][]float32
	freeB [][]byte
}

// New returns an arena whose slabs hold slabFloats float32 values each
// (minimum 1<<16). Larger slabs mean fewer distinct heap objects; the
// default in NewDefault is 1<<22 floats (16 MiB), a "huge page" scale slab.
func New(slabFloats int) *Arena {
	if slabFloats < 1<<16 {
		slabFloats = 1 << 16
	}
	return &Arena{slabSize: slabFloats, backend: DefaultBackend()}
}

// NewDefault returns an arena with 16 MiB slabs.
func NewDefault() *Arena { return New(1 << 22) }

// newFloatSlab produces one zeroed slab of n floats from the arena's
// backend: a recycled slab when one fits, an mmap region when the
// backend asks for one and the platform delivers, the heap otherwise.
func (a *Arena) newFloatSlab(n int) []float32 {
	if n == a.slabSize && len(a.freeF) > 0 {
		s := a.freeF[len(a.freeF)-1]
		a.freeF = a.freeF[:len(a.freeF)-1]
		return s
	}
	if a.backend == BackendMmap {
		if b := mmapSlab(n * 4); b != nil {
			a.mapped = append(a.mapped, b)
			return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n)
		}
	}
	return make([]float32, n)
}

// newByteSlab is newFloatSlab for the byte-slab class.
func (a *Arena) newByteSlab(n int) []byte {
	if n == a.slabSize*4 && len(a.freeB) > 0 {
		s := a.freeB[len(a.freeB)-1]
		a.freeB = a.freeB[:len(a.freeB)-1]
		return s
	}
	if a.backend == BackendMmap {
		if b := mmapSlab(n); b != nil {
			a.mapped = append(a.mapped, b)
			return b
		}
	}
	return make([]byte, n)
}

// Reset retires every slab: standard-size slabs are zeroed onto the
// free lists for the next build cycle, oversize heap slabs drop to the
// garbage collector (oversize mmap slabs stay mapped until Release).
// The caller asserts nothing allocated from the arena is still live —
// recycled memory is handed out again by subsequent Allocs.
func (a *Arena) Reset() {
	for _, s := range a.slabs {
		if len(s) == a.slabSize {
			clear(s)
			a.freeF = append(a.freeF, s)
		}
	}
	for _, s := range a.bslabs {
		if len(s) == a.slabSize*4 {
			clear(s)
			a.freeB = append(a.freeB, s)
		}
	}
	a.slabs, a.bslabs = nil, nil
	a.cur, a.bcur = nil, nil
	a.off, a.boff = 0, 0
}

// Release unmaps every mmap-backed slab and drops all heap slabs and
// free lists. The caller asserts nothing allocated from the arena is
// still referenced anywhere: touching a released mmap-backed slice
// faults. A heap-backend arena may skip Release entirely — the garbage
// collector reclaims it — so only code paths that know their arena's
// lifetime (shard teardown, tests) need to call it.
func (a *Arena) Release() {
	for _, m := range a.mapped {
		munmapSlab(m)
	}
	a.mapped = nil
	a.slabs, a.bslabs = nil, nil
	a.freeF, a.freeB = nil, nil
	a.cur, a.bcur = nil, nil
	a.off, a.boff = 0, 0
}

// MmapSupported reports whether this platform can back slabs with mmap;
// when false, BackendMmap arenas silently use heap slabs.
func MmapSupported() bool { return mmapSupported }

// MappedBytes reports the address-space footprint of the arena's mmap
// regions (0 for heap-backend arenas and unsupported platforms).
func (a *Arena) MappedBytes() int {
	var n int
	for _, m := range a.mapped {
		n += len(m)
	}
	return n
}

// Alloc returns a zeroed float32 slice of length n carved from the arena.
// Allocations above the slab size get a dedicated slab.
func (a *Arena) Alloc(n int) []float32 {
	if n < 0 {
		panic(fmt.Sprintf("arena: negative allocation %d", n))
	}
	if n == 0 {
		return nil
	}
	if n >= a.slabSize {
		s := a.newFloatSlab(n)
		a.slabs = append(a.slabs, s)
		return s
	}
	if a.cur == nil || a.off+n > len(a.cur) {
		a.cur = a.newFloatSlab(a.slabSize)
		a.slabs = append(a.slabs, a.cur)
		a.off = 0
	}
	s := a.cur[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// AllocAligned is Alloc with the start padded to a cache-line boundary.
func (a *Arena) AllocAligned(n int) []float32 {
	if rem := a.off % floatsPerLine; rem != 0 && a.cur != nil {
		pad := floatsPerLine - rem
		if a.off+pad <= len(a.cur) {
			a.off += pad
		}
	}
	return a.Alloc(n)
}

// AllocRows returns rows of rowLen float32s each, either densely packed
// back to back (padded=false) or padded to cache-line multiples
// (padded=true) so concurrent writers to adjacent rows never share a line.
func (a *Arena) AllocRows(rows, rowLen int, padded bool) [][]float32 {
	if rows < 0 || rowLen < 0 {
		panic("arena: negative AllocRows shape")
	}
	stride := rowLen
	if padded {
		stride = (rowLen + floatsPerLine - 1) / floatsPerLine * floatsPerLine
	}
	out := make([][]float32, rows)
	if rows == 0 {
		return out
	}
	// Allocate in chunks so one giant layer still lands in few slabs
	// without forcing a single slab of rows*stride floats.
	rowsPerChunk := a.slabSize / max(stride, 1)
	if rowsPerChunk < 1 {
		rowsPerChunk = 1
	}
	for base := 0; base < rows; base += rowsPerChunk {
		n := min(rowsPerChunk, rows-base)
		chunk := a.AllocAligned(n * stride)
		for r := 0; r < n; r++ {
			out[base+r] = chunk[r*stride : r*stride+rowLen : r*stride+rowLen]
		}
	}
	return out
}

// allocBytes returns a zeroed cache-line-aligned byte slice of length n
// from the byte-slab class. Byte slabs hold the same byte budget as the
// float slabs (slabSize*4).
func (a *Arena) allocBytes(n int) []byte {
	if n < 0 {
		panic(fmt.Sprintf("arena: negative allocation %d", n))
	}
	if n == 0 {
		return nil
	}
	byteSlab := a.slabSize * 4
	if n >= byteSlab {
		s := a.newByteSlab(n)
		a.bslabs = append(a.bslabs, s)
		return s
	}
	if rem := a.boff % CacheLineBytes; rem != 0 && a.bcur != nil {
		if pad := CacheLineBytes - rem; a.boff+pad <= len(a.bcur) {
			a.boff += pad
		}
	}
	if a.bcur == nil || a.boff+n > len(a.bcur) {
		a.bcur = a.newByteSlab(byteSlab)
		a.bslabs = append(a.bslabs, a.bcur)
		a.boff = 0
	}
	s := a.bcur[a.boff : a.boff+n : a.boff+n]
	a.boff += n
	return s
}

// AllocUint16 returns a zeroed cache-line-aligned []uint16 of length n —
// the backing store for BF16 weight mirrors.
func (a *Arena) AllocUint16(n int) []uint16 {
	b := a.allocBytes(n * 2)
	if b == nil {
		return nil
	}
	return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), n)
}

// AllocInt8 returns a zeroed cache-line-aligned []int8 of length n — the
// backing store for int8 weight mirrors.
func (a *Arena) AllocInt8(n int) []int8 {
	b := a.allocBytes(n)
	if b == nil {
		return nil
	}
	return unsafe.Slice((*int8)(unsafe.Pointer(&b[0])), n)
}

// AllocUint32 returns a zeroed cache-line-aligned []uint32 of length n —
// the backing store for flat hash-table id slabs and per-row code memos.
func (a *Arena) AllocUint32(n int) []uint32 {
	b := a.allocBytes(n * 4)
	if b == nil {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
}

// AllocInt32 returns a zeroed cache-line-aligned []int32 of length n — the
// backing store for flat bucket occupancy counters.
func (a *Arena) AllocInt32(n int) []int32 {
	b := a.allocBytes(n * 4)
	if b == nil {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
}

// Slabs reports how many distinct heap blocks back the arena — the
// Table 4 analogue of the hugepage mapping count.
func (a *Arena) Slabs() int { return len(a.slabs) + len(a.bslabs) }

// Floats reports the total float32 capacity currently owned by the arena.
func (a *Arena) Floats() int {
	var n int
	for _, s := range a.slabs {
		n += len(s)
	}
	return n
}

// AllocRowsPerNeuron is the "plain" counterpart used by the Fig. 10 /
// Table 4 ablation: one independent heap allocation per row, the layout
// the paper's unoptimized baseline suffers from.
func AllocRowsPerNeuron(rows, rowLen int) [][]float32 {
	out := make([][]float32, rows)
	for i := range out {
		out[i] = make([]float32, rowLen)
	}
	return out
}
