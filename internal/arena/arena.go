// Package arena provides a slab allocator for float32 parameter state.
//
// It is the repository's analogue of the paper's Transparent Hugepages
// optimization (§5.4, App. D, Table 4): instead of one small heap object
// per neuron (many pages, many pointer targets, TLB/GC pressure), an Arena
// packs a whole layer's weights and optimizer moments into a handful of
// large contiguous slabs and hands out cache-line-aligned row views. The
// Fig. 10 "optimized vs plain SLIDE" ablation flips between arena-backed
// and per-neuron allocation.
package arena

import (
	"fmt"
	"unsafe"
)

// CacheLineBytes is the alignment granule; rows are padded so that no two
// rows share a cache line, removing the false-sharing opportunity App. D
// describes for concurrent HOGWILD writers.
const CacheLineBytes = 64

const floatsPerLine = CacheLineBytes / 4

// Arena allocates float32 slices out of large slabs. A second byte-slab
// class backs the quantized (uint16/int8) allocations, carved with the
// same cache-line alignment.
type Arena struct {
	slabSize int
	slabs    [][]float32
	cur      []float32
	off      int

	bslabs [][]byte
	bcur   []byte
	boff   int
}

// New returns an arena whose slabs hold slabFloats float32 values each
// (minimum 1<<16). Larger slabs mean fewer distinct heap objects; the
// default in NewDefault is 1<<22 floats (16 MiB), a "huge page" scale slab.
func New(slabFloats int) *Arena {
	if slabFloats < 1<<16 {
		slabFloats = 1 << 16
	}
	return &Arena{slabSize: slabFloats}
}

// NewDefault returns an arena with 16 MiB slabs.
func NewDefault() *Arena { return New(1 << 22) }

// Alloc returns a zeroed float32 slice of length n carved from the arena.
// Allocations above the slab size get a dedicated slab.
func (a *Arena) Alloc(n int) []float32 {
	if n < 0 {
		panic(fmt.Sprintf("arena: negative allocation %d", n))
	}
	if n == 0 {
		return nil
	}
	if n >= a.slabSize {
		s := make([]float32, n)
		a.slabs = append(a.slabs, s)
		return s
	}
	if a.cur == nil || a.off+n > len(a.cur) {
		a.cur = make([]float32, a.slabSize)
		a.slabs = append(a.slabs, a.cur)
		a.off = 0
	}
	s := a.cur[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// AllocAligned is Alloc with the start padded to a cache-line boundary.
func (a *Arena) AllocAligned(n int) []float32 {
	if rem := a.off % floatsPerLine; rem != 0 && a.cur != nil {
		pad := floatsPerLine - rem
		if a.off+pad <= len(a.cur) {
			a.off += pad
		}
	}
	return a.Alloc(n)
}

// AllocRows returns rows of rowLen float32s each, either densely packed
// back to back (padded=false) or padded to cache-line multiples
// (padded=true) so concurrent writers to adjacent rows never share a line.
func (a *Arena) AllocRows(rows, rowLen int, padded bool) [][]float32 {
	if rows < 0 || rowLen < 0 {
		panic("arena: negative AllocRows shape")
	}
	stride := rowLen
	if padded {
		stride = (rowLen + floatsPerLine - 1) / floatsPerLine * floatsPerLine
	}
	out := make([][]float32, rows)
	if rows == 0 {
		return out
	}
	// Allocate in chunks so one giant layer still lands in few slabs
	// without forcing a single slab of rows*stride floats.
	rowsPerChunk := a.slabSize / max(stride, 1)
	if rowsPerChunk < 1 {
		rowsPerChunk = 1
	}
	for base := 0; base < rows; base += rowsPerChunk {
		n := min(rowsPerChunk, rows-base)
		chunk := a.AllocAligned(n * stride)
		for r := 0; r < n; r++ {
			out[base+r] = chunk[r*stride : r*stride+rowLen : r*stride+rowLen]
		}
	}
	return out
}

// allocBytes returns a zeroed cache-line-aligned byte slice of length n
// from the byte-slab class. Byte slabs hold the same byte budget as the
// float slabs (slabSize*4).
func (a *Arena) allocBytes(n int) []byte {
	if n < 0 {
		panic(fmt.Sprintf("arena: negative allocation %d", n))
	}
	if n == 0 {
		return nil
	}
	byteSlab := a.slabSize * 4
	if n >= byteSlab {
		s := make([]byte, n)
		a.bslabs = append(a.bslabs, s)
		return s
	}
	if rem := a.boff % CacheLineBytes; rem != 0 && a.bcur != nil {
		if pad := CacheLineBytes - rem; a.boff+pad <= len(a.bcur) {
			a.boff += pad
		}
	}
	if a.bcur == nil || a.boff+n > len(a.bcur) {
		a.bcur = make([]byte, byteSlab)
		a.bslabs = append(a.bslabs, a.bcur)
		a.boff = 0
	}
	s := a.bcur[a.boff : a.boff+n : a.boff+n]
	a.boff += n
	return s
}

// AllocUint16 returns a zeroed cache-line-aligned []uint16 of length n —
// the backing store for BF16 weight mirrors.
func (a *Arena) AllocUint16(n int) []uint16 {
	b := a.allocBytes(n * 2)
	if b == nil {
		return nil
	}
	return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), n)
}

// AllocInt8 returns a zeroed cache-line-aligned []int8 of length n — the
// backing store for int8 weight mirrors.
func (a *Arena) AllocInt8(n int) []int8 {
	b := a.allocBytes(n)
	if b == nil {
		return nil
	}
	return unsafe.Slice((*int8)(unsafe.Pointer(&b[0])), n)
}

// Slabs reports how many distinct heap blocks back the arena — the
// Table 4 analogue of the hugepage mapping count.
func (a *Arena) Slabs() int { return len(a.slabs) + len(a.bslabs) }

// Floats reports the total float32 capacity currently owned by the arena.
func (a *Arena) Floats() int {
	var n int
	for _, s := range a.slabs {
		n += len(s)
	}
	return n
}

// AllocRowsPerNeuron is the "plain" counterpart used by the Fig. 10 /
// Table 4 ablation: one independent heap allocation per row, the layout
// the paper's unoptimized baseline suffers from.
func AllocRowsPerNeuron(rows, rowLen int) [][]float32 {
	out := make([][]float32, rows)
	for i := range out {
		out[i] = make([]float32, rowLen)
	}
	return out
}
