//go:build !linux

package arena

// mmapSupported reports whether BackendMmap can actually map slabs on
// this platform; without it every slab comes from the heap.
const mmapSupported = false

func mmapSlab(int) []byte { return nil }

func munmapSlab([]byte) {}
