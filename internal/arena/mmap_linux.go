//go:build linux

package arena

import "syscall"

// mmapSupported reports whether BackendMmap can actually map slabs on
// this platform.
const mmapSupported = true

// mmapSlab maps an anonymous private region of at least n bytes, rounded
// up to the page size, and advises the kernel to back it with
// transparent huge pages — the §5.4/App. D THP optimization applied to
// exactly the memory that holds parameter state. Returns nil when the
// map fails, letting the caller fall back to a heap slab.
func mmapSlab(n int) []byte {
	if n <= 0 {
		return nil
	}
	page := syscall.Getpagesize()
	size := (n + page - 1) / page * page
	b, err := syscall.Mmap(-1, 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_PRIVATE|syscall.MAP_ANONYMOUS)
	if err != nil {
		return nil
	}
	// Advisory only: kernels without THP (or with it disabled) return
	// EINVAL and simply serve the region with base pages.
	_ = syscall.Madvise(b, syscall.MADV_HUGEPAGE)
	return b[:n]
}

// munmapSlab returns a region obtained from mmapSlab to the kernel.
func munmapSlab(b []byte) {
	if cap(b) == 0 {
		return
	}
	_ = syscall.Munmap(b[:cap(b)])
}
