package sampling

import "testing"

// BenchmarkTableSample measures the query-side probe: one Sample call
// over a populated (K, L) table set per op, per retrieval strategy —
// the read path that rides on the flat bucket slabs. The table shape
// matches the paper's wide sampled output layer at tiny scale.
func BenchmarkTableSample(b *testing.B) {
	const universe = 16384
	tbl, q := buildTable(b, universe, 6, 16, 3, 0xca11)
	strategies := []Params{
		{Kind: KindVanilla, Beta: 128, Seed: 1},
		{Kind: KindTopK, Beta: 128},
		{Kind: KindHardThreshold, MinCount: 2},
	}
	for _, p := range strategies {
		b.Run(p.Kind.String(), func(b *testing.B) {
			s := mkStrategy(b, p, universe)
			var dst []uint32
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = s.Sample(dst[:0], tbl, q)
			}
		})
	}
}
