// Package sampling implements SLIDE's active-neuron retrieval strategies
// over LSH tables (§4.1, App. B): Vanilla sampling, TopK sampling and Hard
// Thresholding, plus the static Random strategy that models the sampled
// softmax baseline (§5.1). It also provides the closed-form selection
// probability functions behind Fig. 11.
package sampling

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/hashtable"
	"repro/internal/rng"
)

// Kind names a retrieval strategy for configuration.
type Kind int

const (
	// KindVanilla probes random tables until the target count is reached
	// (O(beta) time; the paper's recommended default).
	KindVanilla Kind = iota
	// KindTopK aggregates all L buckets and keeps the beta most frequent
	// ids (highest quality, O(n log n) sorting cost).
	KindTopK
	// KindHardThreshold keeps ids that occur in at least MinCount buckets
	// (TopK quality without the sort).
	KindHardThreshold
	// KindRandom ignores the tables and samples ids uniformly — the
	// static, input-independent sampling of sampled softmax.
	KindRandom
)

// String returns the configuration name of the kind.
func (k Kind) String() string {
	switch k {
	case KindVanilla:
		return "vanilla"
	case KindTopK:
		return "topk"
	case KindHardThreshold:
		return "hard-threshold"
	case KindRandom:
		return "random"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a configuration name into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "vanilla":
		return KindVanilla, nil
	case "topk":
		return KindTopK, nil
	case "hard-threshold":
		return KindHardThreshold, nil
	case "random":
		return KindRandom, nil
	}
	return 0, fmt.Errorf("sampling: unknown strategy %q", s)
}

// Params configures a strategy instance.
type Params struct {
	// Kind selects the strategy.
	Kind Kind
	// Beta is the target number of retrieved ids (β_l in the paper).
	// Vanilla stops probing once Beta ids are found; TopK keeps the Beta
	// most frequent; Random draws Beta ids. Hard thresholding ignores it.
	Beta int
	// MinCount is hard thresholding's minimum bucket-occurrence count m.
	// Zero selects 2.
	MinCount int
	// Universe is the id space size [0, Universe) for KindRandom.
	Universe int
	// Seed drives the strategy's own randomness (table probe order,
	// random draws).
	Seed uint64
}

// Strategy retrieves candidate active-neuron ids for a hashed query.
// Implementations are not safe for concurrent use; clone one per worker
// via NewPool.
type Strategy interface {
	// Kind reports the strategy kind.
	Kind() Kind
	// Sample appends retrieved ids to dst and returns it. codes is the
	// query's K*L code vector for the table set (ignored by KindRandom).
	// Returned ids are unique.
	Sample(dst []uint32, t *hashtable.Table, codes []uint32) []uint32
	// Reseed resets the strategy's private randomness to the position it
	// would have if freshly constructed with Params.Seed = seed, so two
	// strategies of the same kind and parameters reseeded with equal
	// seeds produce identical Sample outputs for identical queries. For
	// deterministic kinds (TopK, hard thresholding) it is a no-op.
	Reseed(seed uint64)
}

// New builds a strategy instance. universeHint sizes the internal
// deduplication structures and, for KindRandom, defaults Universe.
func New(p Params, universeHint int) (Strategy, error) {
	if p.MinCount == 0 {
		p.MinCount = 2
	}
	if p.Universe == 0 {
		p.Universe = universeHint
	}
	if p.Beta <= 0 && p.Kind != KindHardThreshold {
		return nil, fmt.Errorf("sampling: Beta must be positive for %v", p.Kind)
	}
	base := marker{
		stamp: make([]uint32, universeHint),
		count: make([]uint8, universeHint),
	}
	r := rng.NewStream(p.Seed, strategyStream)
	switch p.Kind {
	case KindVanilla:
		return &vanilla{params: p, marker: base, rng: r}, nil
	case KindTopK:
		return &topK{params: p, marker: base}, nil
	case KindHardThreshold:
		return &hardThreshold{params: p, marker: base}, nil
	case KindRandom:
		if p.Universe <= 0 {
			return nil, fmt.Errorf("sampling: KindRandom requires a positive Universe")
		}
		return &random{params: p, marker: base, rng: r}, nil
	default:
		return nil, fmt.Errorf("sampling: unknown kind %v", p.Kind)
	}
}

// strategyStream is the fixed RNG stream all strategies draw from, so a
// strategy's randomness is a pure function of its seed and Reseed can
// reproduce the construction-time stream exactly.
const strategyStream = 0x5a3

// marker is an epoch-stamped visited set with per-id occurrence counts,
// giving O(1) reset between queries.
type marker struct {
	epoch uint32
	stamp []uint32
	count []uint8
}

func (m *marker) reset() {
	m.epoch++
	if m.epoch == 0 { // stamp wrap: clear and restart
		for i := range m.stamp {
			m.stamp[i] = 0
		}
		m.epoch = 1
	}
}

// bump increments id's occurrence count, returning the new count (1 on
// first sight this epoch).
func (m *marker) bump(id uint32) int {
	if m.stamp[id] != m.epoch {
		m.stamp[id] = m.epoch
		m.count[id] = 1
		return 1
	}
	if m.count[id] < math.MaxUint8 {
		m.count[id]++
	}
	return int(m.count[id])
}

// vanilla probes tables in random order, taking whole buckets until Beta
// distinct ids are collected or every table has been visited (App. B:
// O(beta) work, lowest quality).
type vanilla struct {
	params Params
	marker
	rng   *rng.RNG
	order []int
}

func (v *vanilla) Kind() Kind { return KindVanilla }

// Reseed repositions the probe-order stream; the next Sample visits
// tables in the same order a fresh strategy seeded with seed would.
func (v *vanilla) Reseed(seed uint64) { v.rng.Reseed(seed) }

func (v *vanilla) Sample(dst []uint32, t *hashtable.Table, codes []uint32) []uint32 {
	v.reset()
	l := t.L()
	if cap(v.order) < l {
		v.order = make([]int, l)
	}
	order := v.order[:l]
	for i := range order {
		order[i] = i
	}
	v.rng.Shuffle(l, func(a, b int) { order[a], order[b] = order[b], order[a] })
	for _, ti := range order {
		for _, id := range t.Bucket(ti, codes) {
			if v.bump(id) == 1 {
				dst = append(dst, id)
				if len(dst) >= v.params.Beta {
					return dst
				}
			}
		}
	}
	return dst
}

// topK aggregates every table's bucket, counts per-id frequencies, and
// keeps the Beta ids with the highest counts (App. B: highest quality,
// pays an O(n log n) sort).
type topK struct {
	params Params
	marker
	seen []uint32
}

func (k *topK) Kind() Kind { return KindTopK }

// Reseed is a no-op: TopK aggregation is deterministic (count-desc,
// id-asc tie break) and draws no randomness.
func (k *topK) Reseed(uint64) {}

func (k *topK) Sample(dst []uint32, t *hashtable.Table, codes []uint32) []uint32 {
	k.reset()
	k.seen = k.seen[:0]
	for ti := 0; ti < t.L(); ti++ {
		for _, id := range t.Bucket(ti, codes) {
			if k.bump(id) == 1 {
				k.seen = append(k.seen, id)
			}
		}
	}
	if len(k.seen) > k.params.Beta {
		sort.Slice(k.seen, func(a, b int) bool {
			ca, cb := k.count[k.seen[a]], k.count[k.seen[b]]
			if ca != cb {
				return ca > cb
			}
			return k.seen[a] < k.seen[b]
		})
		k.seen = k.seen[:k.params.Beta]
	}
	return append(dst, k.seen...)
}

// hardThreshold keeps every id that appears in at least MinCount buckets,
// skipping TopK's sort (App. B eqn. 3).
type hardThreshold struct {
	params Params
	marker
}

func (h *hardThreshold) Kind() Kind { return KindHardThreshold }

// Reseed is a no-op: thresholding scans tables in fixed order and draws
// no randomness.
func (h *hardThreshold) Reseed(uint64) {}

func (h *hardThreshold) Sample(dst []uint32, t *hashtable.Table, codes []uint32) []uint32 {
	h.reset()
	for ti := 0; ti < t.L(); ti++ {
		for _, id := range t.Bucket(ti, codes) {
			if h.bump(id) == h.params.MinCount {
				dst = append(dst, id)
			}
		}
	}
	return dst
}

// random draws Beta distinct uniform ids from [0, Universe) — the sampled
// softmax baseline's static candidate sampling.
type random struct {
	params Params
	marker
	rng *rng.RNG
}

func (r *random) Kind() Kind { return KindRandom }

// Reseed repositions the draw stream; the next Sample returns the ids a
// fresh strategy seeded with seed would.
func (r *random) Reseed(seed uint64) { r.rng.Reseed(seed) }

func (r *random) Sample(dst []uint32, _ *hashtable.Table, _ []uint32) []uint32 {
	r.reset()
	want := r.params.Beta
	if want > r.params.Universe {
		want = r.params.Universe
	}
	for got := 0; got < want; {
		id := uint32(r.rng.Intn(r.params.Universe))
		if r.bump(id) == 1 {
			dst = append(dst, id)
			got++
		}
	}
	return dst
}

// SelectionProbability returns the probability that a neuron whose
// per-function collision probability with the query is p is retrieved by
// hard thresholding with parameters (K, L, m): the tail
// sum_{i=m}^{L} C(L,i) (p^K)^i (1-p^K)^{L-i} (paper eqn. 3, Fig. 11).
func SelectionProbability(p float64, k, l, m int) float64 {
	pk := math.Pow(p, float64(k))
	var sum float64
	for i := m; i <= l; i++ {
		sum += binomialPMF(l, i, pk)
	}
	return clamp01(sum)
}

// VanillaSelectionProbability returns the paper's eqn. 2: the probability
// that a neuron is retrieved when vanilla sampling stops after probing tau
// of L tables, (p^K)^tau (1-p^K)^{L-tau}.
func VanillaSelectionProbability(p float64, k, l, tau int) float64 {
	pk := math.Pow(p, float64(k))
	return math.Pow(pk, float64(tau)) * math.Pow(1-pk, float64(l-tau))
}

// AnyBucketProbability returns 1-(1-p^K)^L, the classical probability that
// a (K, L) LSH structure returns the neuron in at least one bucket (§2.1).
func AnyBucketProbability(p float64, k, l int) float64 {
	pk := math.Pow(p, float64(k))
	return clamp01(1 - math.Pow(1-pk, float64(l)))
}

func binomialPMF(n, i int, p float64) float64 {
	logC := lgamma(float64(n+1)) - lgamma(float64(i+1)) - lgamma(float64(n-i+1))
	var logP float64
	switch {
	case p == 0:
		if i == 0 {
			return 1
		}
		return 0
	case p == 1:
		if i == n {
			return 1
		}
		return 0
	default:
		logP = float64(i)*math.Log(p) + float64(n-i)*math.Log(1-p)
	}
	return math.Exp(logC + logP)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
