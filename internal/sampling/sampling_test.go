package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hashtable"
	"repro/internal/rng"
)

// buildTable fills a (K, L) table set with n ids under random codes and
// returns it with a query code vector.
func buildTable(t testing.TB, n, k, l, bits int, seed uint64) (*hashtable.Table, []uint32) {
	t.Helper()
	tbl, err := hashtable.New(hashtable.Config{K: k, L: l, CodeBits: bits, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	codes := make([]uint32, k*l)
	for id := 0; id < n; id++ {
		for i := range codes {
			codes[i] = uint32(r.Intn(1 << bits))
		}
		tbl.Insert(uint32(id), codes)
	}
	q := make([]uint32, k*l)
	for i := range q {
		q[i] = uint32(r.Intn(1 << bits))
	}
	return tbl, q
}

func mkStrategy(t testing.TB, p Params, universe int) Strategy {
	t.Helper()
	s, err := New(p, universe)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestVanillaRespectsBetaAndUniqueness(t *testing.T) {
	const n = 2000
	tbl, q := buildTable(t, n, 2, 8, 2, 3)
	s := mkStrategy(t, Params{Kind: KindVanilla, Beta: 50, Seed: 1}, n)
	for trial := 0; trial < 20; trial++ {
		got := s.Sample(nil, tbl, q)
		if len(got) > 50 {
			t.Fatalf("vanilla returned %d > beta ids", len(got))
		}
		seen := map[uint32]bool{}
		for _, id := range got {
			if seen[id] {
				t.Fatalf("duplicate id %d", id)
			}
			seen[id] = true
		}
	}
}

func TestTopKReturnsMostFrequent(t *testing.T) {
	const n, k, l = 64, 1, 6
	tbl, err := hashtable.New(hashtable.Config{K: k, L: l, CodeBits: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// id 7 collides with the query in every table; id 9 in half; the
	// rest in one random table.
	q := []uint32{1, 1, 1, 1, 1, 1}
	insert := func(id uint32, match int) {
		codes := make([]uint32, l)
		for ti := range codes {
			if ti < match {
				codes[ti] = 1
			} else {
				codes[ti] = 0
			}
		}
		tbl.Insert(id, codes)
	}
	insert(7, 6)
	insert(9, 3)
	for id := uint32(10); id < 40; id++ {
		insert(id, 1)
	}
	s := mkStrategy(t, Params{Kind: KindTopK, Beta: 2, Seed: 1}, n)
	got := s.Sample(nil, tbl, q)
	if len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Fatalf("topk = %v, want [7 9]", got)
	}
}

func TestHardThresholdCountsOccurrences(t *testing.T) {
	const n, l = 64, 6
	tbl, err := hashtable.New(hashtable.Config{K: 1, L: l, CodeBits: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := []uint32{1, 1, 1, 1, 1, 1}
	insert := func(id uint32, match int) {
		codes := make([]uint32, l)
		for ti := 0; ti < match; ti++ {
			codes[ti] = 1
		}
		tbl.Insert(id, codes)
	}
	insert(5, 6)
	insert(6, 3)
	insert(7, 1)
	s := mkStrategy(t, Params{Kind: KindHardThreshold, MinCount: 3, Seed: 1}, n)
	got := s.Sample(nil, tbl, q)
	want := map[uint32]bool{5: true, 6: true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Fatalf("hard-threshold = %v, want {5, 6}", got)
	}
}

func TestRandomStrategyUniformUnique(t *testing.T) {
	s := mkStrategy(t, Params{Kind: KindRandom, Beta: 40, Universe: 100, Seed: 9}, 100)
	counts := make([]int, 100)
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		got := s.Sample(nil, nil, nil)
		if len(got) != 40 {
			t.Fatalf("random returned %d ids, want 40", len(got))
		}
		seen := map[uint32]bool{}
		for _, id := range got {
			if seen[id] || id >= 100 {
				t.Fatalf("bad draw %v", got)
			}
			seen[id] = true
			counts[id]++
		}
	}
	want := float64(trials) * 40 / 100
	for id, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("id %d drawn %d times, want ~%.0f", id, c, want)
		}
	}
}

// TestReseedMatchesFreshStrategy pins the determinism contract: for every
// kind, a strategy that has been drawn from arbitrarily and then reseeded
// with s samples identically to a fresh strategy constructed with Seed s.
func TestReseedMatchesFreshStrategy(t *testing.T) {
	const n = 2000
	tbl, q := buildTable(t, n, 2, 8, 2, 3)
	for _, kind := range []Kind{KindVanilla, KindTopK, KindHardThreshold, KindRandom} {
		params := func(seed uint64) Params {
			return Params{Kind: kind, Beta: 50, MinCount: 2, Universe: n, Seed: seed}
		}
		used := mkStrategy(t, params(1), n)
		for i := 0; i < 17; i++ { // advance the private stream
			used.Sample(nil, tbl, q)
		}
		used.Reseed(99)
		fresh := mkStrategy(t, params(99), n)
		for trial := 0; trial < 10; trial++ {
			got := used.Sample(nil, tbl, q)
			want := fresh.Sample(nil, tbl, q)
			if len(got) != len(want) {
				t.Fatalf("%v trial %d: reseeded returned %d ids, fresh %d", kind, trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v trial %d: reseeded[%d] = %d, fresh = %d", kind, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestReseedIsRepeatable checks Reseed(s); Sample is a fixed point: two
// reseeds with the same seed replay the same draw.
func TestReseedIsRepeatable(t *testing.T) {
	const n = 2000
	tbl, q := buildTable(t, n, 2, 8, 2, 3)
	s := mkStrategy(t, Params{Kind: KindVanilla, Beta: 50, Seed: 1}, n)
	s.Reseed(7)
	first := append([]uint32(nil), s.Sample(nil, tbl, q)...)
	s.Sample(nil, tbl, q) // perturb
	s.Reseed(7)
	second := s.Sample(nil, tbl, q)
	if len(first) != len(second) {
		t.Fatalf("replayed draw has %d ids, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replayed draw diverged at %d: %d vs %d", i, second[i], first[i])
		}
	}
}

func TestEmptyTablesReturnNothing(t *testing.T) {
	tbl, err := hashtable.New(hashtable.Config{K: 2, L: 4, CodeBits: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := make([]uint32, 8)
	for _, kind := range []Kind{KindVanilla, KindTopK, KindHardThreshold} {
		s := mkStrategy(t, Params{Kind: kind, Beta: 10, MinCount: 2, Seed: 1}, 64)
		if got := s.Sample(nil, tbl, q); len(got) != 0 {
			t.Errorf("%v returned %v from empty tables", kind, got)
		}
	}
}

func TestSampleAppendsToDst(t *testing.T) {
	const n = 500
	tbl, q := buildTable(t, n, 2, 6, 2, 7)
	s := mkStrategy(t, Params{Kind: KindVanilla, Beta: 10, Seed: 1}, n)
	dst := []uint32{111}
	got := s.Sample(dst, tbl, q)
	if len(got) == 0 || got[0] != 111 {
		t.Fatalf("Sample did not append to dst: %v", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Params{Kind: KindVanilla, Beta: 0}, 10); err == nil {
		t.Error("vanilla with zero beta accepted")
	}
	if _, err := New(Params{Kind: KindRandom, Beta: 5}, 0); err == nil {
		t.Error("random without universe accepted")
	}
	if _, err := New(Params{Kind: Kind(42), Beta: 1}, 10); err == nil {
		t.Error("unknown kind accepted")
	}
	// Hard threshold needs no beta.
	if _, err := New(Params{Kind: KindHardThreshold}, 10); err != nil {
		t.Errorf("hard threshold rejected: %v", err)
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, kind := range []Kind{KindVanilla, KindTopK, KindHardThreshold, KindRandom} {
		got, err := ParseKind(kind.String())
		if err != nil || got != kind {
			t.Errorf("ParseKind(%q) = %v, %v", kind.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted garbage")
	}
}

// TestSelectionProbabilityProperties checks eqn. 3's invariants: a valid
// probability, monotone in p, decreasing in m, and degenerate cases.
func TestSelectionProbabilityProperties(t *testing.T) {
	if err := quick.Check(func(pRaw uint8, kRaw, mRaw uint8) bool {
		p := float64(pRaw%99+1) / 100
		k := int(kRaw)%4 + 1
		l := 10
		m := int(mRaw)%l + 1
		pr := SelectionProbability(p, k, l, m)
		if pr < 0 || pr > 1 {
			return false
		}
		// Monotone in p.
		if p < 0.9 && SelectionProbability(p+0.05, k, l, m) < pr-1e-12 {
			return false
		}
		// Decreasing in m.
		if m < l && SelectionProbability(p, k, l, m+1) > pr+1e-12 {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// m=1 equals the classical 1-(1-p^K)^L.
	for _, p := range []float64{0.2, 0.5, 0.8} {
		a := SelectionProbability(p, 2, 10, 1)
		b := AnyBucketProbability(p, 2, 10)
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("m=1 mismatch at p=%v: %v vs %v", p, a, b)
		}
	}
	// Fig. 11 anchor: m=9, L=10, K=1 crosses Pr=0.5 near p≈0.84.
	if pr := SelectionProbability(0.8, 1, 10, 9); pr > 0.5 {
		t.Errorf("Pr(p=0.8,m=9) = %v, expected below 0.5", pr)
	}
	if pr := SelectionProbability(0.9, 1, 10, 9); pr < 0.5 {
		t.Errorf("Pr(p=0.9,m=9) = %v, expected above 0.5", pr)
	}
}

func TestVanillaSelectionProbability(t *testing.T) {
	// tau=L means matching every table: p^(K*L).
	got := VanillaSelectionProbability(0.5, 2, 4, 4)
	want := math.Pow(0.25, 4)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestVanillaEmpiricalMatchesTheory: retrieval frequency under vanilla
// sampling from a single bucket per table approximates the LSH sampling
// view (§2.1): higher per-function collision => higher retrieval rate.
func TestVanillaFavorsCollidingIDs(t *testing.T) {
	const l = 10
	tbl, err := hashtable.New(hashtable.Config{K: 1, L: l, CodeBits: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := make([]uint32, l)
	for i := range q {
		q[i] = 1
	}
	// id 1 matches all tables; id 2 matches 3 of 10.
	full := make([]uint32, l)
	part := make([]uint32, l)
	for i := range full {
		full[i] = 1
		if i < 3 {
			part[i] = 1
		}
	}
	tbl.Insert(1, full)
	tbl.Insert(2, part)
	s := mkStrategy(t, Params{Kind: KindVanilla, Beta: 1, Seed: 8}, 8)
	got1, got2 := 0, 0
	for trial := 0; trial < 1000; trial++ {
		ids := s.Sample(nil, tbl, q)
		if len(ids) != 1 {
			t.Fatalf("beta=1 returned %v", ids)
		}
		switch ids[0] {
		case 1:
			got1++
		case 2:
			got2++
		}
	}
	if got1 <= got2 {
		t.Fatalf("fully-colliding id retrieved %d <= partially-colliding %d", got1, got2)
	}
}
