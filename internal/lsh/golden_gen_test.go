package lsh

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/sparse"
)

// TestPrintGoldenCodes emits the current families' code vectors for the
// fixed inputs used by TestGoldenCodes, as pasteable Go literals. Run
// manually with LSH_PRINT_GOLDEN=1; it is a no-op otherwise.
func TestPrintGoldenCodes(t *testing.T) {
	if os.Getenv("LSH_PRINT_GOLDEN") == "" {
		t.Skip("set LSH_PRINT_GOLDEN=1 to regenerate golden vectors")
	}
	var b strings.Builder
	for _, gc := range goldenConfigs {
		fam, err := New(gc.kind, gc.params)
		if err != nil {
			t.Fatal(err)
		}
		nf := fam.NumFuncs()
		for vi := 0; vi < goldenNumVectors; vi++ {
			dense := goldenDense(gc.params.Dim, vi)
			out := make([]uint32, nf)
			fam.HashDense(dense, out)
			b.WriteString(fmt.Sprintf("%q: %s,\n", goldenKey(gc, vi, "dense"), goldenLit(out)))

			sv := goldenSparse(gc.params.Dim, vi)
			outS := make([]uint32, nf)
			fam.HashSparse(sv, outS)
			b.WriteString(fmt.Sprintf("%q: %s,\n", goldenKey(gc, vi, "sparse"), goldenLit(outS)))
		}
	}
	t.Logf("golden map entries:\n%s", b.String())
}

func goldenLit(codes []uint32) string {
	parts := make([]string, len(codes))
	for i, c := range codes {
		parts[i] = fmt.Sprintf("%#x", c)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

var _ = sparse.Vector{}
