package lsh

import (
	"sync"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// permSet is the shared permutation machinery of WTA and DWTA (App. A).
// Following the paper's memory optimization, only ceil(K*L*m/d) random
// permutations are generated instead of K*L: each permutation of [0, dim)
// is split into floor(dim/m) bins of m consecutive permuted coordinates and
// every bin supplies one hash function. Function f is bin f%binsPerPerm of
// permutation f/binsPerPerm; its code is the within-bin position (in
// [0, m)) of the maximum input coordinate mapped into the bin.
//
// Both directions are stored as flat slabs (permutation p at
// [p*dim:(p+1)*dim]) so batched hashing streams one permutation across a
// whole row block without pointer chasing.
type permSet struct {
	dim         int
	numFuncs    int
	binSize     int
	binsPerPerm int
	numPerms    int
	// perm[p*dim+pos] is the coordinate at permuted position pos.
	perm []int32
	// invPerm[p*dim+coord] is the permuted position of coordinate coord.
	invPerm []int32
}

func newPermSet(p Params) *permSet {
	m := p.BinSize
	if m > p.Dim {
		m = p.Dim
	}
	nf := p.K * p.L
	bpp := p.Dim / m
	if bpp < 1 {
		bpp = 1
	}
	numPerms := (nf + bpp - 1) / bpp
	ps := &permSet{
		dim:         p.Dim,
		numFuncs:    nf,
		binSize:     m,
		binsPerPerm: bpp,
		numPerms:    numPerms,
		perm:        make([]int32, numPerms*p.Dim),
		invPerm:     make([]int32, numPerms*p.Dim),
	}
	r := rng.NewStream(p.Seed, 0x57a)
	for pi := 0; pi < numPerms; pi++ {
		fwd := ps.perm[pi*p.Dim : (pi+1)*p.Dim]
		inv := ps.invPerm[pi*p.Dim : (pi+1)*p.Dim]
		for i := range fwd {
			fwd[i] = int32(i)
		}
		r.Shuffle(len(fwd), func(a, b int) { fwd[a], fwd[b] = fwd[b], fwd[a] })
		for pos, coord := range fwd {
			inv[coord] = int32(pos)
		}
	}
	return ps
}

// bin returns the binSize permuted coordinates feeding function f.
func (ps *permSet) bin(f int) []int32 {
	p := f / ps.binsPerPerm
	base := p*ps.dim + (f%ps.binsPerPerm)*ps.binSize
	return ps.perm[base : base+ps.binSize : base+ps.binSize]
}

// codeBits returns the bits needed to express codes in [0, binSize).
func (ps *permSet) codeBits() int {
	b := 1
	for 1<<b < ps.binSize {
		b++
	}
	return b
}

// wta is winner-take-all hashing (Yagnik et al. 2011) over dense inputs:
// the code of each function is the position of the maximum among the m
// coordinates of its bin, with zeros participating like any value.
// For sparse data prefer DWTA; WTA's sparse path materializes a dense
// scratch copy, exactly the inefficiency DWTA removes (App. A).
type wta struct {
	ps      *permSet
	scratch sync.Pool
}

func newWTA(p Params) (*wta, error) {
	w := &wta{ps: newPermSet(p)}
	dim := p.Dim
	w.scratch.New = func() any {
		s := make([]float32, dim)
		return &s
	}
	return w, nil
}

func (w *wta) Name() string  { return "wta" }
func (w *wta) NumFuncs() int { return w.ps.numFuncs }
func (w *wta) CodeBits() int { return w.ps.codeBits() }
func (w *wta) Dim() int      { return w.ps.dim }

func (w *wta) HashDense(x []float32, out []uint32) {
	if len(x) != w.ps.dim {
		panic("lsh: wta dense input dimension mismatch")
	}
	ps := w.ps
	for f := 0; f < ps.numFuncs; f++ {
		out[f] = wtaCode(x, ps.bin(f))
	}
}

// HashDenseRows batch-hashes rows contiguous dense vectors function-major:
// each bin's permuted coordinates load once and scan the whole row block.
// The per-row argmax comparisons match HashDense exactly.
func (w *wta) HashDenseRows(block []float32, rows int, out []uint32) {
	ps := w.ps
	checkRowsArgs("wta", ps.dim, ps.numFuncs, block, rows, out)
	for f := 0; f < ps.numFuncs; f++ {
		bin := ps.bin(f)
		for r := 0; r < rows; r++ {
			x := block[r*ps.dim : (r+1)*ps.dim : (r+1)*ps.dim]
			out[r*ps.numFuncs+f] = wtaCode(x, bin)
		}
	}
}

// wtaCode is the argmax of x over the bin's coordinates; ties keep the
// lower position.
func wtaCode(x []float32, bin []int32) uint32 {
	best := x[bin[0]]
	bestJ := 0
	for j := 1; j < len(bin); j++ {
		if v := x[bin[j]]; v > best {
			best, bestJ = v, j
		}
	}
	return uint32(bestJ)
}

func (w *wta) HashSparse(x sparse.Vector, out []uint32) {
	if x.Dim != w.ps.dim {
		panic("lsh: wta sparse input dimension mismatch")
	}
	sp := w.scratch.Get().(*[]float32)
	d := *sp
	for j, i := range x.Idx {
		d[i] = x.Val[j]
	}
	w.HashDense(d, out)
	for _, i := range x.Idx {
		d[i] = 0
	}
	w.scratch.Put(sp)
}

// dwta is densified winner-take-all hashing (Chen & Shrivastava 2018):
// WTA evaluated only over the non-zero coordinates of the input, in
// O(NNZ * K*L*m/dim) comparisons, with empty bins filled by borrowing the
// code of a pseudo-randomly probed non-empty bin (the densification
// scheme). Both the dense and sparse paths operate on the non-zero support
// so they always agree.
type dwta struct {
	ps      *permSet
	seed    uint64
	scratch sync.Pool
}

// dwtaScratch holds per-call accumulation state, pooled across goroutines.
type dwtaScratch struct {
	maxVal []float32
	code   []uint32
	filled []bool
}

func newDWTA(p Params) (*dwta, error) {
	d := &dwta{ps: newPermSet(p), seed: p.Seed}
	nf := d.ps.numFuncs
	d.scratch.New = func() any {
		return &dwtaScratch{
			maxVal: make([]float32, nf),
			code:   make([]uint32, nf),
			filled: make([]bool, nf),
		}
	}
	return d, nil
}

func (d *dwta) Name() string  { return "dwta" }
func (d *dwta) NumFuncs() int { return d.ps.numFuncs }
func (d *dwta) CodeBits() int { return d.ps.codeBits() }
func (d *dwta) Dim() int      { return d.ps.dim }

func (d *dwta) HashDense(x []float32, out []uint32) {
	if len(x) != d.ps.dim {
		panic("lsh: dwta dense input dimension mismatch")
	}
	sc := d.scratch.Get().(*dwtaScratch)
	d.hashDenseInto(sc, x, out)
	d.scratch.Put(sc)
}

// HashDenseRows batch-hashes rows contiguous dense vectors, holding one
// scratch across the whole block instead of a pool round trip per row.
// Rows hash independently, so codes match HashDense bitwise.
func (d *dwta) HashDenseRows(block []float32, rows int, out []uint32) {
	ps := d.ps
	checkRowsArgs("dwta", ps.dim, ps.numFuncs, block, rows, out)
	sc := d.scratch.Get().(*dwtaScratch)
	for r := 0; r < rows; r++ {
		d.hashDenseInto(sc, block[r*ps.dim:(r+1)*ps.dim], out[r*ps.numFuncs:(r+1)*ps.numFuncs])
	}
	d.scratch.Put(sc)
}

func (d *dwta) hashDenseInto(sc *dwtaScratch, x []float32, out []uint32) {
	d.reset(sc)
	for i, v := range x {
		if v != 0 {
			d.accumulate(sc, int32(i), v)
		}
	}
	d.finish(sc, out)
}

func (d *dwta) HashSparse(x sparse.Vector, out []uint32) {
	if x.Dim != d.ps.dim {
		panic("lsh: dwta sparse input dimension mismatch")
	}
	sc := d.scratch.Get().(*dwtaScratch)
	d.reset(sc)
	for j, i := range x.Idx {
		if x.Val[j] != 0 {
			d.accumulate(sc, i, x.Val[j])
		}
	}
	d.finish(sc, out)
	d.scratch.Put(sc)
}

func (d *dwta) reset(sc *dwtaScratch) {
	for i := range sc.filled {
		sc.filled[i] = false
	}
}

// accumulate folds one non-zero coordinate into every permutation's bin.
// Ties prefer the lower within-bin position, which is deterministic
// regardless of coordinate visit order.
func (d *dwta) accumulate(sc *dwtaScratch, coord int32, v float32) {
	ps := d.ps
	for p := 0; p < ps.numPerms; p++ {
		pos := int(ps.invPerm[p*ps.dim+int(coord)])
		b := pos / ps.binSize
		if b >= ps.binsPerPerm {
			continue // coordinate fell in the unused tail of this permutation
		}
		f := p*ps.binsPerPerm + b
		if f >= ps.numFuncs {
			continue
		}
		j := uint32(pos % ps.binSize)
		switch {
		case !sc.filled[f]:
			sc.filled[f] = true
			sc.maxVal[f] = v
			sc.code[f] = j
		case v > sc.maxVal[f] || (v == sc.maxVal[f] && j < sc.code[f]):
			sc.maxVal[f] = v
			sc.code[f] = j
		}
	}
}

// maxDensifyAttempts bounds the pseudo-random probe sequence used to fill
// an empty bin from a non-empty one.
const maxDensifyAttempts = 100

func (d *dwta) finish(sc *dwtaScratch, out []uint32) {
	nf := d.ps.numFuncs
	for f := 0; f < nf; f++ {
		if sc.filled[f] {
			out[f] = sc.code[f]
			continue
		}
		out[f] = densify(d.seed, f, nf, sc.filled, sc.code)
	}
}

// densify walks the deterministic probe sequence for empty function f and
// returns the code of the first non-empty donor, or 0 if every probe fails
// (e.g. the all-zero input).
func densify(seed uint64, f, nf int, filled []bool, code []uint32) uint32 {
	for a := 1; a <= maxDensifyAttempts; a++ {
		donor := int(mix64(seed^uint64(f)*0x9e3779b97f4a7c15+uint64(a)) % uint64(nf))
		if filled[donor] {
			return code[donor]
		}
	}
	return 0
}
