package lsh

import (
	"math"
	"sync"

	"repro/internal/rng"
	"repro/internal/sparse"
)

// simhash implements signed random projection (SRP) for cosine similarity
// (§3.2). Each hash function is a sparse random vector with entries in
// {+1, -1} on a random support of size density*Dim; the code is the sign
// bit of the projection. Using only additions/subtractions (no multiplies)
// and a sparse support reproduces the paper's two Simhash optimizations.
//
// The support/sign state lives in flat slabs rather than per-function
// slices: every function has the same support length, so function f's
// coordinates occupy supIdx[f*supLen:(f+1)*supLen] and its signs are
// bit-packed into word-aligned runs of negW. The dense kernels walk these
// slabs linearly; the sparse path walks the CSR transpose (coordOff /
// coordFn) of the same state.
//
// The collision probability of two vectors x, y under one function is
// 1 - angle(x,y)/pi, monotone in cosine similarity.
type simhash struct {
	dim      int
	numFuncs int
	supLen   int
	// supIdx is the flat support slab: function f's support coordinates,
	// ascending, at supIdx[f*supLen:(f+1)*supLen].
	supIdx []int32
	// negW bit-packs the projection signs, one bit per support entry,
	// word-aligned per function: bit j of negW[f*signWords:] is set when
	// entry j subtracts its coordinate (-1 weight), clear when it adds.
	negW      []uint64
	signWords int
	// coordOff/coordFn are the CSR transpose used by the sparse path: for
	// input coordinate i, coordFn[coordOff[i]:coordOff[i+1]] packs
	// (function<<1)|neg entries in ascending function order. With nnz
	// non-zeros a sparse hash costs O(nnz * numFuncs * density) lookups,
	// matching the paper's cost analysis.
	coordOff []int32
	coordFn  []int32
	// accPool recycles the query-side projection accumulator of
	// HashSparse so the forward probe allocates nothing.
	accPool sync.Pool
}

func newSimhash(p Params) (*simhash, error) {
	nf := p.K * p.L
	supLen := int(float64(p.Dim) * p.SimhashDensity)
	if supLen < 1 {
		supLen = 1
	}
	if supLen > p.Dim {
		supLen = p.Dim
	}
	s := &simhash{
		dim:       p.Dim,
		numFuncs:  nf,
		supLen:    supLen,
		supIdx:    make([]int32, nf*supLen),
		signWords: (supLen + 63) / 64,
	}
	s.negW = make([]uint64, nf*s.signWords)
	r := rng.NewStream(p.Seed, 0x51)
	for f := 0; f < nf; f++ {
		idx := r.SampleK(p.Dim, supLen)
		sup := s.supIdx[f*supLen : (f+1)*supLen]
		w := s.negW[f*s.signWords:]
		for j, i := range idx {
			sup[j] = int32(i)
			if !r.Bernoulli(0.5) {
				w[uint(j)>>6] |= 1 << (uint(j) & 63)
			}
		}
	}
	// CSR transpose of the slabs, filled in (function, entry) order so the
	// per-coordinate entry order matches the construction order above.
	s.coordOff = make([]int32, p.Dim+1)
	for _, i := range s.supIdx {
		s.coordOff[i+1]++
	}
	for i := 0; i < p.Dim; i++ {
		s.coordOff[i+1] += s.coordOff[i]
	}
	s.coordFn = make([]int32, nf*supLen)
	next := make([]int32, p.Dim)
	copy(next, s.coordOff[:p.Dim])
	for f := 0; f < nf; f++ {
		w := s.negW[f*s.signWords:]
		for j := 0; j < supLen; j++ {
			i := s.supIdx[f*supLen+j]
			e := int32(f) << 1
			if w[uint(j)>>6]>>(uint(j)&63)&1 != 0 {
				e |= 1
			}
			s.coordFn[next[i]] = e
			next[i]++
		}
	}
	s.accPool.New = func() any {
		acc := make([]float32, nf)
		return &acc
	}
	return s, nil
}

// IncrementalSimhash exposes the Simhash implementation's memoized
// projection API (§4.2 incremental re-hash): ProjectAll, ProjectDelta and
// CodesFromProjections. Obtain one by type-asserting a Family built with
// KindSimhash.
type IncrementalSimhash = simhash

func (s *simhash) Name() string  { return "simhash" }
func (s *simhash) NumFuncs() int { return s.numFuncs }
func (s *simhash) CodeBits() int { return 1 }
func (s *simhash) Dim() int      { return s.dim }

func (s *simhash) HashDense(x []float32, out []uint32) {
	if len(x) != s.dim {
		panic("lsh: simhash dense input dimension mismatch")
	}
	for f := 0; f < s.numFuncs; f++ {
		out[f] = signBit(s.project(x, f))
	}
}

// HashDenseRows batch-hashes rows contiguous dense vectors function-major:
// each function's support and sign words are loaded once and streamed over
// the whole row block. Per-row accumulation order matches HashDense, so
// the codes are bitwise identical to hashing row by row.
func (s *simhash) HashDenseRows(block []float32, rows int, out []uint32) {
	checkRowsArgs("simhash", s.dim, s.numFuncs, block, rows, out)
	nf, dim, sl := s.numFuncs, s.dim, s.supLen
	for f := 0; f < nf; f++ {
		sup := s.supIdx[f*sl : (f+1)*sl]
		w := s.negW[f*s.signWords:]
		for r := 0; r < rows; r++ {
			x := block[r*dim : (r+1)*dim : (r+1)*dim]
			var acc float32
			for j, i := range sup {
				neg := uint32(w[uint(j)>>6]>>(uint(j)&63)&1) << 31
				acc += math.Float32frombits(math.Float32bits(x[i]) ^ neg)
			}
			out[r*nf+f] = signBit(acc)
		}
	}
}

func (s *simhash) HashSparse(x sparse.Vector, out []uint32) {
	if x.Dim != s.dim {
		panic("lsh: simhash sparse input dimension mismatch")
	}
	ap := s.accPool.Get().(*[]float32)
	acc := (*ap)[:s.numFuncs]
	clear(acc)
	for j, i := range x.Idx {
		v := x.Val[j]
		for _, e := range s.coordFn[s.coordOff[i]:s.coordOff[i+1]] {
			if e&1 != 0 {
				acc[e>>1] -= v
			} else {
				acc[e>>1] += v
			}
		}
	}
	for f, a := range acc {
		out[f] = signBit(a)
	}
	s.accPool.Put(ap)
}

// signBit maps a projection value to the hash code: 1 for non-negative,
// 0 for negative. Exact zeros (e.g. zero inputs) land on 1 consistently in
// both dense and sparse paths.
func signBit(a float32) uint32 {
	if a >= 0 {
		return 1
	}
	return 0
}

// project accumulates the signed projection of x under function f, walking
// the support slab linearly. Subtraction is a sign-bit flip plus add,
// which the IEEE rules make bit-identical to acc -= x[i].
func (s *simhash) project(x []float32, f int) float32 {
	sup := s.supIdx[f*s.supLen : (f+1)*s.supLen]
	w := s.negW[f*s.signWords:]
	var acc float32
	for j, i := range sup {
		neg := uint32(w[uint(j)>>6]>>(uint(j)&63)&1) << 31
		acc += math.Float32frombits(math.Float32bits(x[i]) ^ neg)
	}
	return acc
}

// Project returns the raw projection value of dense vector x under hash
// function f. It exposes the quantity the incremental re-hash trick (§4.2
// item 3) memoizes: when x changes in d' of d coordinates the new
// projection is recoverable with O(d') additions via ProjectDelta.
func (s *simhash) Project(x []float32, f int) float32 {
	return s.project(x, f)
}

// ProjectAll writes the raw projection values of dense vector x under all
// hash functions into proj (len >= NumFuncs). Codes are signBit(proj[f]).
func (s *simhash) ProjectAll(x []float32, proj []float32) {
	for f := 0; f < s.numFuncs; f++ {
		proj[f] = s.project(x, f)
	}
}

// ProjectDelta updates memoized projection values in place after the input
// changed by the given sparse delta: proj[f] += <proj-vector_f, delta> for
// every function. This is the §4.2 incremental re-hash trick: with d'
// changed coordinates it costs O(d' * NumFuncs * density) additions instead
// of a full O(Dim * NumFuncs * density) re-projection.
func (s *simhash) ProjectDelta(proj []float32, deltaIdx []int32, deltaVal []float32) {
	for j, i := range deltaIdx {
		v := deltaVal[j]
		for _, e := range s.coordFn[s.coordOff[i]:s.coordOff[i+1]] {
			if e&1 != 0 {
				proj[e>>1] -= v
			} else {
				proj[e>>1] += v
			}
		}
	}
}

// CodesFromProjections converts memoized projection values to hash codes.
func (s *simhash) CodesFromProjections(proj []float32, out []uint32) {
	for f := 0; f < s.numFuncs; f++ {
		out[f] = signBit(proj[f])
	}
}
