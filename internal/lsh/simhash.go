package lsh

import (
	"repro/internal/rng"
	"repro/internal/sparse"
)

// simhash implements signed random projection (SRP) for cosine similarity
// (§3.2). Each hash function is a sparse random vector with entries in
// {+1, -1} on a random support of size density*Dim; the code is the sign
// bit of the projection. Using only additions/subtractions (no multiplies)
// and a sparse support reproduces the paper's two Simhash optimizations.
//
// The collision probability of two vectors x, y under one function is
// 1 - angle(x,y)/pi, monotone in cosine similarity.
type simhash struct {
	dim      int
	numFuncs int
	// support[f] lists the coordinates in function f's random support,
	// ascending; signPos[f] marks which of them carry +1.
	support [][]int32
	signPos [][]bool
	// coordFns is the inverted layout used by HashSparse: for each input
	// coordinate, the (function, sign) pairs whose support contains it.
	// With nnz non-zeros a sparse hash costs O(nnz * numFuncs * density)
	// lookups, matching the paper's cost analysis.
	coordFns [][]funcSign
}

type funcSign struct {
	fn  int32
	neg bool
}

func newSimhash(p Params) (*simhash, error) {
	nf := p.K * p.L
	supLen := int(float64(p.Dim) * p.SimhashDensity)
	if supLen < 1 {
		supLen = 1
	}
	if supLen > p.Dim {
		supLen = p.Dim
	}
	s := &simhash{
		dim:      p.Dim,
		numFuncs: nf,
		support:  make([][]int32, nf),
		signPos:  make([][]bool, nf),
		coordFns: make([][]funcSign, p.Dim),
	}
	r := rng.NewStream(p.Seed, 0x51)
	for f := 0; f < nf; f++ {
		idx := r.SampleK(p.Dim, supLen)
		sup := make([]int32, supLen)
		sgn := make([]bool, supLen)
		for j, i := range idx {
			sup[j] = int32(i)
			pos := r.Bernoulli(0.5)
			sgn[j] = pos
			s.coordFns[i] = append(s.coordFns[i], funcSign{fn: int32(f), neg: !pos})
		}
		s.support[f] = sup
		s.signPos[f] = sgn
	}
	return s, nil
}

// IncrementalSimhash exposes the Simhash implementation's memoized
// projection API (§4.2 incremental re-hash): ProjectAll, ProjectDelta and
// CodesFromProjections. Obtain one by type-asserting a Family built with
// KindSimhash.
type IncrementalSimhash = simhash

func (s *simhash) Name() string  { return "simhash" }
func (s *simhash) NumFuncs() int { return s.numFuncs }
func (s *simhash) CodeBits() int { return 1 }
func (s *simhash) Dim() int      { return s.dim }

func (s *simhash) HashDense(x []float32, out []uint32) {
	if len(x) != s.dim {
		panic("lsh: simhash dense input dimension mismatch")
	}
	for f := 0; f < s.numFuncs; f++ {
		var acc float32
		sup := s.support[f]
		sgn := s.signPos[f]
		for j, i := range sup {
			if sgn[j] {
				acc += x[i]
			} else {
				acc -= x[i]
			}
		}
		out[f] = signBit(acc)
	}
}

func (s *simhash) HashSparse(x sparse.Vector, out []uint32) {
	if x.Dim != s.dim {
		panic("lsh: simhash sparse input dimension mismatch")
	}
	acc := make([]float32, s.numFuncs)
	for j, i := range x.Idx {
		v := x.Val[j]
		for _, fs := range s.coordFns[i] {
			if fs.neg {
				acc[fs.fn] -= v
			} else {
				acc[fs.fn] += v
			}
		}
	}
	for f, a := range acc {
		out[f] = signBit(a)
	}
}

// signBit maps a projection value to the hash code: 1 for non-negative,
// 0 for negative. Exact zeros (e.g. zero inputs) land on 1 consistently in
// both dense and sparse paths.
func signBit(a float32) uint32 {
	if a >= 0 {
		return 1
	}
	return 0
}

// Project returns the raw projection value of dense vector x under hash
// function f. It exposes the quantity the incremental re-hash trick (§4.2
// item 3) memoizes: when x changes in d' of d coordinates the new
// projection is recoverable with O(d') additions via ProjectDelta.
func (s *simhash) Project(x []float32, f int) float32 {
	var acc float32
	sup := s.support[f]
	sgn := s.signPos[f]
	for j, i := range sup {
		if sgn[j] {
			acc += x[i]
		} else {
			acc -= x[i]
		}
	}
	return acc
}

// ProjectAll writes the raw projection values of dense vector x under all
// hash functions into proj (len >= NumFuncs). Codes are signBit(proj[f]).
func (s *simhash) ProjectAll(x []float32, proj []float32) {
	for f := 0; f < s.numFuncs; f++ {
		proj[f] = s.Project(x, f)
	}
}

// ProjectDelta updates memoized projection values in place after the input
// changed by the given sparse delta: proj[f] += <proj-vector_f, delta> for
// every function. This is the §4.2 incremental re-hash trick: with d'
// changed coordinates it costs O(d' * NumFuncs * density) additions instead
// of a full O(Dim * NumFuncs * density) re-projection.
func (s *simhash) ProjectDelta(proj []float32, deltaIdx []int32, deltaVal []float32) {
	for j, i := range deltaIdx {
		v := deltaVal[j]
		for _, fs := range s.coordFns[i] {
			if fs.neg {
				proj[fs.fn] -= v
			} else {
				proj[fs.fn] += v
			}
		}
	}
}

// CodesFromProjections converts memoized projection values to hash codes.
func (s *simhash) CodesFromProjections(proj []float32, out []uint32) {
	for f := 0; f < s.numFuncs; f++ {
		out[f] = signBit(proj[f])
	}
}
