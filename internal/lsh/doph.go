package lsh

import (
	"math/bits"
	"sync"

	"repro/internal/sparse"
)

// doph is densified one-permutation minwise hashing (Shrivastava & Li
// 2014b; App. A). DOPH estimates Jaccard similarity of binary sets, so a
// real-valued input is first binarized by keeping its TopK largest
// components (the paper's thresholding heuristic with the priority-queue
// top-k). One universal hash plays the role of the single permutation: the
// hash range is split into K*L bins, each element lands in one bin, and a
// bin's code is derived from its minimum hash value. Empty bins borrow
// codes through the same densification probe as DWTA.
type doph struct {
	dim      int
	numFuncs int
	topK     int
	seed     uint64
	scratch  sync.Pool
}

// dophCodeBits is the width of the emitted codes: the low bits of the
// minimum hash in each bin. Collision probability is
// J + (1-J)/2^dophCodeBits, which preserves LSH monotonicity in the
// Jaccard similarity J.
const dophCodeBits = 8

type dophScratch struct {
	minVal []uint64
	filled []bool
	code   []uint32
	idx    []int32
	val    []float32
}

func newDOPH(p Params) (*doph, error) {
	d := &doph{
		dim:      p.Dim,
		numFuncs: p.K * p.L,
		topK:     p.TopK,
		seed:     p.Seed,
	}
	nf := d.numFuncs
	d.scratch.New = func() any {
		return &dophScratch{
			minVal: make([]uint64, nf),
			filled: make([]bool, nf),
			code:   make([]uint32, nf),
		}
	}
	return d, nil
}

func (d *doph) Name() string  { return "doph" }
func (d *doph) NumFuncs() int { return d.numFuncs }
func (d *doph) CodeBits() int { return dophCodeBits }
func (d *doph) Dim() int      { return d.dim }

func (d *doph) HashDense(x []float32, out []uint32) {
	if len(x) != d.dim {
		panic("lsh: doph dense input dimension mismatch")
	}
	sc := d.scratch.Get().(*dophScratch)
	d.hashDenseInto(sc, x, out)
	d.scratch.Put(sc)
}

// HashDenseRows batch-hashes rows contiguous dense vectors, reusing one
// scratch (non-zero gather + bin state) across the whole block. Rows hash
// independently, so codes match HashDense bitwise.
func (d *doph) HashDenseRows(block []float32, rows int, out []uint32) {
	checkRowsArgs("doph", d.dim, d.numFuncs, block, rows, out)
	sc := d.scratch.Get().(*dophScratch)
	for r := 0; r < rows; r++ {
		d.hashDenseInto(sc, block[r*d.dim:(r+1)*d.dim], out[r*d.numFuncs:(r+1)*d.numFuncs])
	}
	d.scratch.Put(sc)
}

// hashDenseInto binarizes one dense row over its non-zero support and
// hashes the resulting set, all within the caller's scratch.
func (d *doph) hashDenseInto(sc *dophScratch, x []float32, out []uint32) {
	idx := sc.idx[:0]
	val := sc.val[:0]
	for i, v := range x {
		if v != 0 {
			idx = append(idx, int32(i))
			val = append(val, v)
		}
	}
	sc.idx, sc.val = idx, val
	if len(idx) <= d.topK {
		d.hashSet(sc, idx, out)
	} else {
		d.hashSet(sc, sparse.TopKSparse(idx, val, d.topK), out)
	}
}

func (d *doph) HashSparse(x sparse.Vector, out []uint32) {
	if x.Dim != d.dim {
		panic("lsh: doph sparse input dimension mismatch")
	}
	sc := d.scratch.Get().(*dophScratch)
	if x.NNZ() <= d.topK {
		d.hashSet(sc, x.Idx, out)
	} else {
		d.hashSet(sc, sparse.TopKSparse(x.Idx, x.Val, d.topK), out)
	}
	d.scratch.Put(sc)
}

// hashSet computes the DOPH codes of a binary set given by element ids.
func (d *doph) hashSet(sc *dophScratch, set []int32, out []uint32) {
	for i := range sc.filled {
		sc.filled[i] = false
	}
	nf := uint64(d.numFuncs)
	for _, e := range set {
		h := mix64(d.seed + uint64(uint32(e))*0x9e3779b97f4a7c15)
		bin, _ := bits.Mul64(h, nf) // fixed-point h*nf/2^64: uniform bin in [0, nf)
		if !sc.filled[bin] || h < sc.minVal[bin] {
			sc.filled[bin] = true
			sc.minVal[bin] = h
			sc.code[bin] = uint32(mix64(h)) & (1<<dophCodeBits - 1)
		}
	}
	for f := 0; f < d.numFuncs; f++ {
		if sc.filled[f] {
			out[f] = sc.code[f]
			continue
		}
		out[f] = densify(d.seed, f, d.numFuncs, sc.filled, sc.code)
	}
}
