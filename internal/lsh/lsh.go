// Package lsh implements the locality-sensitive hash families used by
// SLIDE (§3.2 and Appendix A of the paper): Simhash (signed random
// projection with the sparse-projection optimization), WTA (winner-take-all),
// DWTA (densified WTA for sparse inputs) and DOPH (densified one-permutation
// minwise hashing with a top-k binarization front end).
//
// A Family produces NumFuncs() = K*L hash codes per input; the hashtable
// package groups consecutive runs of K codes into one bucket address per
// table. Families hash both dense vectors (neuron weight rows at table
// build time) and sparse vectors (layer inputs at query time) and must
// produce identical codes for equal inputs in either representation.
package lsh

import (
	"fmt"

	"repro/internal/sparse"
)

// Family is a collection of K*L LSH functions drawn from one hash family.
type Family interface {
	// Name identifies the family, e.g. "simhash".
	Name() string
	// NumFuncs returns the number of hash functions (K*L).
	NumFuncs() int
	// CodeBits returns the number of significant low bits in each code.
	// Codes are guaranteed to be < 1<<CodeBits().
	CodeBits() int
	// Dim returns the input dimensionality the family was built for.
	Dim() int
	// HashDense writes the NumFuncs codes for the dense vector x into out.
	// len(x) must equal Dim and len(out) must be at least NumFuncs.
	HashDense(x []float32, out []uint32)
	// HashDenseRows hashes a block of rows dense vectors stored back to
	// back in block (row r at block[r*Dim():(r+1)*Dim()]), writing row r's
	// codes at out[r*NumFuncs():(r+1)*NumFuncs()]. The result is bitwise
	// identical to calling HashDense once per row; implementations batch
	// function-major so the flat hash-state slabs stream over the whole
	// block. This is the rebuild-side entry point.
	HashDenseRows(block []float32, rows int, out []uint32)
	// HashSparse writes the NumFuncs codes for the sparse vector x into
	// out. x.Dim must equal Dim and len(out) must be at least NumFuncs.
	HashSparse(x sparse.Vector, out []uint32)
}

// Kind names a hash family for configuration.
type Kind int

const (
	// KindSimhash selects signed random projection (cosine similarity).
	KindSimhash Kind = iota
	// KindWTA selects winner-take-all hashing (rank correlation).
	KindWTA
	// KindDWTA selects densified WTA (rank correlation on sparse data).
	KindDWTA
	// KindDOPH selects densified one-permutation minhash (Jaccard on the
	// top-k binarized input).
	KindDOPH
)

// String returns the configuration name of the kind.
func (k Kind) String() string {
	switch k {
	case KindSimhash:
		return "simhash"
	case KindWTA:
		return "wta"
	case KindDWTA:
		return "dwta"
	case KindDOPH:
		return "doph"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a configuration name into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "simhash":
		return KindSimhash, nil
	case "wta":
		return KindWTA, nil
	case "dwta":
		return KindDWTA, nil
	case "doph":
		return KindDOPH, nil
	}
	return 0, fmt.Errorf("lsh: unknown hash family %q", s)
}

// Params configures family construction.
type Params struct {
	// Dim is the input dimensionality (the fan-in of the hashed layer).
	Dim int
	// K is the number of codes concatenated per table.
	K int
	// L is the number of tables.
	L int
	// Seed drives all randomness in the family.
	Seed uint64

	// SimhashDensity is the fraction of non-zero entries in each random
	// projection (the sparse random projection optimization, §3.2).
	// Zero selects the paper's default of 1/3.
	SimhashDensity float64

	// BinSize is the WTA/DWTA bin size m (codes are in [0, BinSize)).
	// Zero selects the default of 8.
	BinSize int

	// TopK is the DOPH binarization threshold: the TopK largest input
	// components are treated as the input set (App. A). Zero selects a
	// default of 30.
	TopK int
}

func (p Params) withDefaults() Params {
	if p.SimhashDensity == 0 {
		p.SimhashDensity = 1.0 / 3.0
	}
	if p.BinSize == 0 {
		p.BinSize = 8
	}
	if p.TopK == 0 {
		p.TopK = 30
	}
	return p
}

func (p Params) validate() error {
	if p.Dim <= 0 {
		return fmt.Errorf("lsh: Dim must be positive, got %d", p.Dim)
	}
	if p.K <= 0 || p.L <= 0 {
		return fmt.Errorf("lsh: K and L must be positive, got K=%d L=%d", p.K, p.L)
	}
	return nil
}

// New constructs a hash family of the given kind.
func New(kind Kind, p Params) (Family, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	switch kind {
	case KindSimhash:
		return newSimhash(p)
	case KindWTA:
		return newWTA(p)
	case KindDWTA:
		return newDWTA(p)
	case KindDOPH:
		return newDOPH(p)
	default:
		return nil, fmt.Errorf("lsh: unknown kind %v", kind)
	}
}

// checkRowsArgs validates a HashDenseRows call's shapes for family name.
func checkRowsArgs(name string, dim, nf int, block []float32, rows int, out []uint32) {
	if rows < 0 {
		panic("lsh: " + name + " negative row count")
	}
	if len(block) < rows*dim {
		panic("lsh: " + name + " row block shorter than rows*Dim")
	}
	if len(out) < rows*nf {
		panic("lsh: " + name + " code output shorter than rows*NumFuncs")
	}
}

// mix64 is SplitMix64's finalizer; used wherever a family needs a cheap
// stateless integer hash (densification probes, minhash value hashing).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
