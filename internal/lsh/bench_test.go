package lsh

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sparse"
)

// Benchmark shapes mirror the paper architecture's rebuild-side hashing:
// K*L functions over the hidden width (dense neuron rows) and sparse
// query inputs at delicious-scale density.
const (
	benchDim  = 128
	benchK    = 6
	benchL    = 16
	benchRows = 256
	benchNNZ  = 24
)

func benchFamily(b *testing.B, kind Kind) Family {
	b.Helper()
	fam, err := New(kind, Params{Dim: benchDim, K: benchK, L: benchL, Seed: 0xbe7c})
	if err != nil {
		b.Fatal(err)
	}
	return fam
}

func benchBlock(rows int) []float32 {
	r := rand.New(rand.NewSource(42))
	block := make([]float32, rows*benchDim)
	for i := range block {
		if r.Float64() < 0.8 {
			block[i] = float32(r.NormFloat64())
		}
	}
	return block
}

// BenchmarkHashDense measures the per-row dense entry point (one neuron
// weight row per op), per family.
func BenchmarkHashDense(b *testing.B) {
	block := benchBlock(benchRows)
	for _, kind := range allKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			fam := benchFamily(b, kind)
			out := make([]uint32, fam.NumFuncs())
			b.SetBytes(int64(benchDim * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				row := (i % benchRows) * benchDim
				fam.HashDense(block[row:row+benchDim], out)
			}
		})
	}
}

// BenchmarkHashDenseRows measures the batched rebuild-side entry point
// over a full row block (benchRows rows per op) — the flat-slab,
// function-major kernel the incremental rebuild feeds its dirty chunks
// to. Compare per-row throughput against BenchmarkHashDense.
func BenchmarkHashDenseRows(b *testing.B) {
	block := benchBlock(benchRows)
	for _, kind := range allKinds() {
		b.Run(fmt.Sprintf("%s-rows%d", kind, benchRows), func(b *testing.B) {
			fam := benchFamily(b, kind)
			out := make([]uint32, benchRows*fam.NumFuncs())
			b.SetBytes(int64(benchRows * benchDim * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fam.HashDenseRows(block, benchRows, out)
			}
		})
	}
}

// BenchmarkHashSparse measures the query-side sparse entry point (one
// active-feature input per op), per family.
func BenchmarkHashSparse(b *testing.B) {
	r := rand.New(rand.NewSource(43))
	idx := make([]int32, 0, benchNNZ)
	seen := map[int32]bool{}
	for len(idx) < benchNNZ {
		i := int32(r.Intn(benchDim))
		if !seen[i] {
			seen[i] = true
			idx = append(idx, i)
		}
	}
	val := make([]float32, benchNNZ)
	for i := range val {
		val[i] = float32(r.NormFloat64())
	}
	x := sparse.Vector{Dim: benchDim, Idx: idx, Val: val}
	for _, kind := range allKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			fam := benchFamily(b, kind)
			out := make([]uint32, fam.NumFuncs())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fam.HashSparse(x, out)
			}
		})
	}
}
