package lsh

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sparse"
)

func allKinds() []Kind { return []Kind{KindSimhash, KindWTA, KindDWTA, KindDOPH} }

func mkFamily(t testing.TB, kind Kind, dim, k, l int, seed uint64) Family {
	t.Helper()
	fam, err := New(kind, Params{Dim: dim, K: k, L: l, Seed: seed})
	if err != nil {
		t.Fatalf("New(%v): %v", kind, err)
	}
	return fam
}

func randDense(r *rng.RNG, dim int, density float64) []float32 {
	v := make([]float32, dim)
	for i := range v {
		if r.Bernoulli(density) {
			v[i] = r.NormFloat32()
		}
	}
	return v
}

// TestCodesWithinRange: every family's codes fit in CodeBits bits.
func TestCodesWithinRange(t *testing.T) {
	for _, kind := range allKinds() {
		fam := mkFamily(t, kind, 64, 4, 8, 11)
		limit := uint32(1) << uint(fam.CodeBits())
		r := rng.New(3)
		out := make([]uint32, fam.NumFuncs())
		for trial := 0; trial < 50; trial++ {
			fam.HashDense(randDense(r, 64, 0.3), out)
			for f, c := range out {
				if c >= limit {
					t.Fatalf("%v: code[%d]=%d exceeds %d bits", kind, f, c, fam.CodeBits())
				}
			}
		}
	}
}

// TestDenseSparseConsistency: hashing the same vector through the dense
// and sparse paths must give identical codes (the network hashes neurons
// densely at build time and inputs sparsely at query time).
func TestDenseSparseConsistency(t *testing.T) {
	for _, kind := range allKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			fam := mkFamily(t, kind, 96, 5, 6, 7)
			if err := quick.Check(func(seed uint64) bool {
				r := rng.New(seed)
				d := randDense(r, 96, 0.2)
				sv := sparse.FromDense(d)
				a := make([]uint32, fam.NumFuncs())
				b := make([]uint32, fam.NumFuncs())
				fam.HashDense(d, a)
				fam.HashSparse(sv, b)
				for f := range a {
					if a[f] != b[f] {
						return false
					}
				}
				return true
			}, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestHashDeterminism: equal inputs hash equally across calls (families
// use pooled scratch internally; no state may leak between calls).
func TestHashDeterminism(t *testing.T) {
	for _, kind := range allKinds() {
		fam := mkFamily(t, kind, 64, 4, 8, 5)
		r := rng.New(9)
		x := randDense(r, 64, 0.4)
		y := randDense(r, 64, 0.4)
		a := make([]uint32, fam.NumFuncs())
		b := make([]uint32, fam.NumFuncs())
		fam.HashDense(x, a)
		fam.HashDense(y, b) // interleave another input
		fam.HashDense(x, b)
		for f := range a {
			if a[f] != b[f] {
				t.Fatalf("%v: non-deterministic code at %d", kind, f)
			}
		}
	}
}

// TestSimhashCollisionMonotone verifies the LSH property (Definition 2.1
// via eqn. 1): empirical collision probability increases with cosine
// similarity, approximating 1 - angle/pi.
func TestSimhashCollisionMonotone(t *testing.T) {
	const dim = 128
	fam := mkFamily(t, KindSimhash, dim, 1, 600, 21) // 600 independent bits
	r := rng.New(33)
	base := randDense(r, dim, 1)
	collisionAt := func(noise float32) float64 {
		y := make([]float32, dim)
		for i := range y {
			y[i] = base[i] + noise*r.NormFloat32()
		}
		a := make([]uint32, fam.NumFuncs())
		b := make([]uint32, fam.NumFuncs())
		fam.HashDense(base, a)
		fam.HashDense(y, b)
		same := 0
		for f := range a {
			if a[f] == b[f] {
				same++
			}
		}
		return float64(same) / float64(fam.NumFuncs())
	}
	pClose := collisionAt(0.1)
	pMid := collisionAt(0.7)
	pFar := collisionAt(4)
	if !(pClose > pMid && pMid > pFar) {
		t.Fatalf("collision not monotone in similarity: %.3f, %.3f, %.3f", pClose, pMid, pFar)
	}
	if pClose < 0.85 {
		t.Fatalf("near-identical vectors collide only %.3f", pClose)
	}
	// Random vs random should be near 0.5 for sign bits.
	if pFar < 0.4 || pFar > 0.75 {
		t.Fatalf("far vectors collision %.3f outside plausible band", pFar)
	}
}

// TestSimhashTheoreticalRate checks the closed form 1 - theta/pi against
// the empirical rate on controlled-angle vector pairs.
func TestSimhashTheoreticalRate(t *testing.T) {
	const dim = 256
	fam := mkFamily(t, KindSimhash, dim, 1, 2000, 77)
	r := rng.New(5)
	// Build a pair with known angle via Gram-Schmidt.
	u := randDense(r, dim, 1)
	v := randDense(r, dim, 1)
	normalize(u)
	dot := dotf(u, v)
	for i := range v {
		v[i] -= dot * u[i]
	}
	normalize(v)
	for _, cosTheta := range []float64{0.9, 0.5, 0.1} {
		y := make([]float32, dim)
		s := math.Sqrt(1 - cosTheta*cosTheta)
		for i := range y {
			y[i] = float32(cosTheta)*u[i] + float32(s)*v[i]
		}
		a := make([]uint32, fam.NumFuncs())
		b := make([]uint32, fam.NumFuncs())
		fam.HashDense(u, a)
		fam.HashDense(y, b)
		same := 0
		for f := range a {
			if a[f] == b[f] {
				same++
			}
		}
		got := float64(same) / float64(fam.NumFuncs())
		want := 1 - math.Acos(cosTheta)/math.Pi
		// Sparse random projections add variance; allow a loose band.
		if math.Abs(got-want) > 0.08 {
			t.Errorf("cos=%.1f: collision %.3f, theory %.3f", cosTheta, got, want)
		}
	}
}

func normalize(x []float32) {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	inv := float32(1 / math.Sqrt(s))
	for i := range x {
		x[i] *= inv
	}
}

func dotf(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// TestDWTAMoreSimilarMoreCollisions: rank-correlated vectors collide more.
func TestDWTAMoreSimilarMoreCollisions(t *testing.T) {
	const dim = 128
	fam := mkFamily(t, KindDWTA, dim, 1, 400, 13)
	r := rng.New(2)
	base := randDense(r, dim, 0.2)
	perturb := func(noise float32) []float32 {
		y := append([]float32(nil), base...)
		for i := range y {
			if y[i] != 0 {
				y[i] += noise * r.NormFloat32()
			}
		}
		return y
	}
	rate := func(y []float32) float64 {
		a := make([]uint32, fam.NumFuncs())
		b := make([]uint32, fam.NumFuncs())
		fam.HashDense(base, a)
		fam.HashDense(y, b)
		same := 0
		for f := range a {
			if a[f] == b[f] {
				same++
			}
		}
		return float64(same) / float64(fam.NumFuncs())
	}
	pNear := rate(perturb(0.05))
	pFar := rate(randDense(r, dim, 0.2))
	if pNear <= pFar {
		t.Fatalf("DWTA not similarity-sensitive: near %.3f <= far %.3f", pNear, pFar)
	}
	if pNear < 0.7 {
		t.Fatalf("DWTA near-duplicate collision too low: %.3f", pNear)
	}
}

// TestDOPHJaccardSensitivity: overlapping top-k sets collide more than
// disjoint ones.
func TestDOPHJaccardSensitivity(t *testing.T) {
	const dim = 256
	fam, err := New(KindDOPH, Params{Dim: dim, K: 1, L: 300, Seed: 3, TopK: 20})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(ids []int32) sparse.Vector {
		val := make([]float32, len(ids))
		for i := range val {
			val[i] = 1
		}
		return sparse.MustNew(dim, ids, val)
	}
	a := make([]int32, 20)
	b := make([]int32, 20)
	c := make([]int32, 20)
	for i := range a {
		a[i] = int32(i)
		b[i] = int32(i + 5) // Jaccard(a,b) = 15/25
		c[i] = int32(i + 100)
	}
	ca := make([]uint32, fam.NumFuncs())
	cb := make([]uint32, fam.NumFuncs())
	cc := make([]uint32, fam.NumFuncs())
	fam.HashSparse(mk(a), ca)
	fam.HashSparse(mk(b), cb)
	fam.HashSparse(mk(c), cc)
	rate := func(x, y []uint32) float64 {
		same := 0
		for f := range x {
			if x[f] == y[f] {
				same++
			}
		}
		return float64(same) / float64(len(x))
	}
	if overlap, disjoint := rate(ca, cb), rate(ca, cc); overlap <= disjoint+0.1 {
		t.Fatalf("DOPH not Jaccard-sensitive: overlap %.3f vs disjoint %.3f", overlap, disjoint)
	}
}

// TestSimhashProjectDelta: the §4.2 incremental re-hash must match a full
// re-projection after a sparse weight update.
func TestSimhashProjectDelta(t *testing.T) {
	fam := mkFamily(t, KindSimhash, 64, 4, 8, 19).(*simhash)
	r := rng.New(6)
	x := randDense(r, 64, 1)
	proj := make([]float32, fam.NumFuncs())
	fam.ProjectAll(x, proj)

	// Sparse delta on 5 coordinates.
	deltaIdx := []int32{3, 10, 20, 40, 63}
	deltaVal := []float32{0.5, -1, 2, 0.1, -0.7}
	fam.ProjectDelta(proj, deltaIdx, deltaVal)
	for j, i := range deltaIdx {
		x[i] += deltaVal[j]
	}
	full := make([]float32, fam.NumFuncs())
	fam.ProjectAll(x, full)
	for f := range full {
		if math.Abs(float64(full[f]-proj[f])) > 1e-4 {
			t.Fatalf("func %d: incremental %.6f != full %.6f", f, proj[f], full[f])
		}
	}
	// And the derived codes must agree with HashDense.
	a := make([]uint32, fam.NumFuncs())
	b := make([]uint32, fam.NumFuncs())
	fam.CodesFromProjections(proj, a)
	fam.HashDense(x, b)
	for f := range a {
		if a[f] != b[f] {
			t.Fatalf("func %d: code from projections %d != direct %d", f, a[f], b[f])
		}
	}
}

// TestDWTASparseSemantics: swapping the values of two coordinates that
// share a WTA bin must flip that bin's argmax code. With dim=16 and the
// default bin size 8, two fixed coordinates share a bin in roughly half
// of the permutations, so some codes must differ.
func TestDWTASparseSemantics(t *testing.T) {
	fam := mkFamily(t, KindDWTA, 16, 4, 8, 8)
	v1 := sparse.MustNew(16, []int32{3, 11}, []float32{1, 2})
	v2 := sparse.MustNew(16, []int32{3, 11}, []float32{2, 1})
	a := make([]uint32, fam.NumFuncs())
	b := make([]uint32, fam.NumFuncs())
	fam.HashSparse(v1, a)
	fam.HashSparse(v2, b)
	diff := 0
	for f := range a {
		if a[f] != b[f] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("DWTA ignored stored values")
	}
}

// TestZeroVector: all families must handle the all-zero input without
// panicking (densification's all-empty fallback).
func TestZeroVector(t *testing.T) {
	for _, kind := range allKinds() {
		fam := mkFamily(t, kind, 32, 3, 4, 4)
		out := make([]uint32, fam.NumFuncs())
		fam.HashDense(make([]float32, 32), out)
		fam.HashSparse(sparse.Vector{Dim: 32}, out)
	}
}

// TestParamValidation covers constructor errors.
func TestParamValidation(t *testing.T) {
	if _, err := New(KindSimhash, Params{Dim: 0, K: 1, L: 1}); err == nil {
		t.Error("zero Dim accepted")
	}
	if _, err := New(KindSimhash, Params{Dim: 8, K: 0, L: 1}); err == nil {
		t.Error("zero K accepted")
	}
	if _, err := New(Kind(99), Params{Dim: 8, K: 1, L: 1}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, kind := range allKinds() {
		got, err := ParseKind(kind.String())
		if err != nil || got != kind {
			t.Errorf("ParseKind(%q) = %v, %v", kind.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted garbage")
	}
}

// TestConcurrentHashing: families share pooled scratch; concurrent use
// must stay correct.
func TestConcurrentHashing(t *testing.T) {
	for _, kind := range allKinds() {
		fam := mkFamily(t, kind, 64, 4, 6, 15)
		r := rng.New(1)
		x := randDense(r, 64, 0.3)
		want := make([]uint32, fam.NumFuncs())
		fam.HashDense(x, want)
		done := make(chan bool, 8)
		for g := 0; g < 8; g++ {
			go func() {
				ok := true
				out := make([]uint32, fam.NumFuncs())
				for i := 0; i < 200; i++ {
					fam.HashDense(x, out)
					for f := range want {
						if out[f] != want[f] {
							ok = false
						}
					}
				}
				done <- ok
			}()
		}
		for g := 0; g < 8; g++ {
			if !<-done {
				t.Fatalf("%v: concurrent hashing corrupted codes", kind)
			}
		}
	}
}
