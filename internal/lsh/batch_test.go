package lsh

import (
	"math/rand"
	"testing"
)

// TestHashDenseRowsMatchesPerRow is the property test for the batched
// entry point: across random shapes, seeds and densities, HashDenseRows
// over a row block must be bitwise identical to HashDense row by row for
// every family.
func TestHashDenseRowsMatchesPerRow(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		dim := 3 + r.Intn(200)
		p := Params{
			Dim:            dim,
			K:              1 + r.Intn(6),
			L:              1 + r.Intn(8),
			Seed:           r.Uint64(),
			SimhashDensity: 0.05 + r.Float64()*0.9,
			BinSize:        1 + r.Intn(12),
			TopK:           1 + r.Intn(40),
		}
		density := []float64{0, 0.01, 0.1, 0.5, 1}[trial%5]
		rows := 1 + r.Intn(17)
		block := make([]float32, rows*dim)
		for i := range block {
			if r.Float64() < density {
				block[i] = float32(r.NormFloat64())
			}
		}
		for _, kind := range allKinds() {
			fam, err := New(kind, p)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, kind, err)
			}
			nf := fam.NumFuncs()
			batched := make([]uint32, rows*nf)
			fam.HashDenseRows(block, rows, batched)
			single := make([]uint32, nf)
			for row := 0; row < rows; row++ {
				fam.HashDense(block[row*dim:(row+1)*dim], single)
				for f := 0; f < nf; f++ {
					if batched[row*nf+f] != single[f] {
						t.Fatalf("trial %d %v dim=%d K=%d L=%d density=%g row=%d func=%d: batched %#x != per-row %#x",
							trial, kind, dim, p.K, p.L, density, row, f, batched[row*nf+f], single[f])
					}
				}
			}
		}
	}
}

// TestHashDenseRowsZeroRows pins the degenerate block: no rows, no codes,
// no panic.
func TestHashDenseRowsZeroRows(t *testing.T) {
	for _, kind := range allKinds() {
		fam := mkFamily(t, kind, 16, 2, 3, 1)
		fam.HashDenseRows(nil, 0, nil)
	}
}
