package metrics

import (
	"math"
	"testing"
)

func TestPrecisionAt1(t *testing.T) {
	scores := []float32{0.1, 0.9, 0.3}
	if PrecisionAt1(scores, nil, []int32{1}) != 1 {
		t.Fatal("top class is a label")
	}
	if PrecisionAt1(scores, nil, []int32{0, 2}) != 0 {
		t.Fatal("top class is not a label")
	}
	// With an id map, position 1 maps to class 7.
	if PrecisionAt1(scores, []int32{4, 7, 9}, []int32{7}) != 1 {
		t.Fatal("id mapping ignored")
	}
	if PrecisionAt1(nil, nil, []int32{1}) != 0 {
		t.Fatal("empty scores")
	}
}

func TestPrecisionAtK(t *testing.T) {
	scores := []float32{0.9, 0.8, 0.7, 0.1}
	if got := PrecisionAtK(scores, nil, []int32{0, 2}, 3); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("P@3 = %v, want 2/3", got)
	}
	if got := PrecisionAtK(scores, nil, []int32{3}, 10); math.Abs(got-1.0/4) > 1e-9 {
		t.Fatalf("k clamped to len: %v", got)
	}
	if PrecisionAtK(scores, nil, nil, 3) != 0 {
		t.Fatal("no labels should give 0")
	}
}

func TestCurveQueries(t *testing.T) {
	c := Curve{Name: "x"}
	c.Add(Point{Iter: 10, Seconds: 1, Value: 0.1})
	c.Add(Point{Iter: 20, Seconds: 2, Value: 0.3})
	c.Add(Point{Iter: 30, Seconds: 3, Value: 0.25})

	if c.Best() != 0.3 {
		t.Fatalf("Best = %v", c.Best())
	}
	if s, ok := c.TimeToValue(0.2); !ok || s != 2 {
		t.Fatalf("TimeToValue = %v, %v", s, ok)
	}
	if _, ok := c.TimeToValue(0.9); ok {
		t.Fatal("unreachable target reported reached")
	}
	if it, ok := c.IterToValue(0.25); !ok || it != 20 {
		t.Fatalf("IterToValue = %v, %v", it, ok)
	}
	if s, ok := c.ConvergenceTime(0.99); !ok || s != 2 {
		t.Fatalf("ConvergenceTime = %v, %v", s, ok)
	}
	if c.Last().Iter != 30 {
		t.Fatalf("Last = %+v", c.Last())
	}
}

func TestCurveEmpty(t *testing.T) {
	var c Curve
	if c.Best() != 0 || c.Last().Iter != 0 {
		t.Fatal("empty curve accessors")
	}
	if _, ok := c.TimeToValue(0.1); ok {
		t.Fatal("empty curve reached a target")
	}
}

func TestRescale(t *testing.T) {
	c := Curve{Name: "cpu"}
	c.Add(Point{Iter: 5, Seconds: 50, Value: 0.2})
	g := c.Rescale("gpu", func(p Point) float64 { return float64(p.Iter) * 0.1 })
	if g.Name != "gpu" || g.Points[0].Seconds != 0.5 || g.Points[0].Value != 0.2 {
		t.Fatalf("Rescale = %+v", g.Points[0])
	}
	if c.Points[0].Seconds != 50 {
		t.Fatal("Rescale mutated the source")
	}
}

func TestCurveString(t *testing.T) {
	c := Curve{Name: "n"}
	c.Add(Point{Iter: 1, Seconds: 2, Value: 0.5})
	if got := c.String(); got == "" {
		t.Fatal("empty String()")
	}
}
