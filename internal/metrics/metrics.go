// Package metrics provides the evaluation measures and curve recording
// used throughout the experiments: precision@k (the "accuracy" reported in
// the paper's figures is P@1), accuracy-vs-time and accuracy-vs-iteration
// curves, and convergence-time extraction for the scalability plots.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// PrecisionAt1 reports whether the highest-scoring class is a true label.
// ids maps score positions to class ids; a nil ids means scores[i] scores
// class i. labels must be sorted ascending.
func PrecisionAt1(scores []float32, ids []int32, labels []int32) float64 {
	if len(scores) == 0 || len(labels) == 0 {
		return 0
	}
	best, bi := scores[0], 0
	for i, s := range scores[1:] {
		if s > best {
			best, bi = s, i+1
		}
	}
	cls := int32(bi)
	if ids != nil {
		cls = ids[bi]
	}
	if containsSorted(labels, cls) {
		return 1
	}
	return 0
}

// PrecisionAtK returns |top-k predictions ∩ labels| / k. ids maps score
// positions to class ids; nil means identity. labels must be sorted.
func PrecisionAtK(scores []float32, ids []int32, labels []int32, k int) float64 {
	if k <= 0 || len(scores) == 0 || len(labels) == 0 {
		return 0
	}
	if k > len(scores) {
		k = len(scores)
	}
	ord := make([]int, len(scores))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		if scores[ord[a]] != scores[ord[b]] {
			return scores[ord[a]] > scores[ord[b]]
		}
		return ord[a] < ord[b]
	})
	hits := 0
	for _, i := range ord[:k] {
		cls := int32(i)
		if ids != nil {
			cls = ids[i]
		}
		if containsSorted(labels, cls) {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

func containsSorted(labels []int32, c int32) bool {
	lo, hi := 0, len(labels)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case labels[mid] < c:
			lo = mid + 1
		case labels[mid] > c:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// Point is one evaluation of a training run.
type Point struct {
	Iter    int64   // training iterations (batches) completed
	Seconds float64 // wall-clock (or simulated) training seconds elapsed
	Value   float64 // metric value (e.g. P@1)
	Loss    float64 // mean training loss since the previous point, if known
}

// Curve is a named metric trajectory.
type Curve struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (c *Curve) Add(p Point) { c.Points = append(c.Points, p) }

// Last returns the final point, or a zero Point if empty.
func (c *Curve) Last() Point {
	if len(c.Points) == 0 {
		return Point{}
	}
	return c.Points[len(c.Points)-1]
}

// Best returns the maximum metric value seen, or 0 if empty.
func (c *Curve) Best() float64 {
	best := 0.0
	for _, p := range c.Points {
		if p.Value > best {
			best = p.Value
		}
	}
	return best
}

// TimeToValue returns the earliest recorded time at which the curve
// reached target, and whether it ever did.
func (c *Curve) TimeToValue(target float64) (float64, bool) {
	for _, p := range c.Points {
		if p.Value >= target {
			return p.Seconds, true
		}
	}
	return math.Inf(1), false
}

// IterToValue returns the earliest recorded iteration at which the curve
// reached target, and whether it ever did.
func (c *Curve) IterToValue(target float64) (int64, bool) {
	for _, p := range c.Points {
		if p.Value >= target {
			return p.Iter, true
		}
	}
	return math.MaxInt64, false
}

// ConvergenceTime returns the time of the first point whose value is
// within frac (e.g. 0.99) of the curve's best value — the "time to
// convergence" measure of the paper's Fig. 9 scalability study.
func (c *Curve) ConvergenceTime(frac float64) (float64, bool) {
	return c.TimeToValue(c.Best() * frac)
}

// Rescale returns a copy of the curve with every point's Seconds replaced
// by f(point). Used by the GPU cost model to re-time a measured run.
func (c *Curve) Rescale(name string, f func(Point) float64) *Curve {
	out := &Curve{Name: name, Points: make([]Point, len(c.Points))}
	for i, p := range c.Points {
		p.Seconds = f(p)
		out.Points[i] = p
	}
	return out
}

// String renders a compact single-line summary.
func (c *Curve) String() string {
	last := c.Last()
	return fmt.Sprintf("%s: %d points, last iter=%d t=%.1fs value=%.4f", c.Name, len(c.Points), last.Iter, last.Seconds, last.Value)
}
