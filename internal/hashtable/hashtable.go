// Package hashtable implements the (K, L)-parameterized LSH tables at the
// heart of SLIDE (§2, §3.2): L independent tables, each addressed by a
// meta-hash of K codes, holding neuron ids in fixed-capacity buckets.
//
// Bucket capacity is limited (the paper: "the number of entries is limited
// to a fixed bucket size" to bound memory and balance thread load), with
// two full-bucket replacement policies from §4.2: Vitter reservoir sampling
// (which preserves the adaptive sampling property) and FIFO.
//
// Addressing: when the K codes of a table pack into at most RangePow bits
// they are concatenated directly (as in the reference C++ implementation);
// otherwise the codes are mixed by a seeded 64-bit finalizer down to
// RangePow bits.
package hashtable

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/rng"
)

// Policy selects the replacement strategy applied when inserting into a
// full bucket.
type Policy int

const (
	// PolicyReservoir keeps a uniform sample of all ids ever inserted
	// (Vitter's algorithm R), preserving LSH's adaptive sampling property.
	PolicyReservoir Policy = iota
	// PolicyFIFO overwrites the oldest entry (ring buffer).
	PolicyFIFO
)

// String returns the configuration name of the policy.
func (p Policy) String() string {
	switch p {
	case PolicyReservoir:
		return "reservoir"
	case PolicyFIFO:
		return "fifo"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a configuration name into a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "reservoir":
		return PolicyReservoir, nil
	case "fifo":
		return PolicyFIFO, nil
	}
	return 0, fmt.Errorf("hashtable: unknown policy %q", s)
}

// Config parameterizes a table set.
type Config struct {
	// K is the number of hash codes concatenated per table address.
	K int
	// L is the number of tables.
	L int
	// CodeBits is the significant bit width of each code (from the LSH
	// family's CodeBits).
	CodeBits int
	// RangePow caps each table at 1<<RangePow buckets. Zero selects
	// min(K*CodeBits, 18), mirroring the reference implementation's
	// default table range.
	RangePow int
	// BucketSize is the fixed bucket capacity. Zero selects 128.
	BucketSize int
	// Policy is the full-bucket replacement policy.
	Policy Policy
	// Seed drives the mixing hash and reservoir randomness.
	Seed uint64
}

// DefaultRangePowCap bounds the automatic RangePow choice so that K tables
// of wide codes (e.g. DWTA's K*3 bits) do not allocate huge bucket arrays.
const DefaultRangePowCap = 18

// DefaultBucketSize is the paper's fixed bucket size.
const DefaultBucketSize = 128

func (c Config) withDefaults() Config {
	if c.BucketSize == 0 {
		c.BucketSize = DefaultBucketSize
	}
	if c.RangePow == 0 {
		c.RangePow = c.K * c.CodeBits
		if c.RangePow > DefaultRangePowCap {
			c.RangePow = DefaultRangePowCap
		}
	}
	return c
}

func (c Config) validate() error {
	if c.K <= 0 || c.L <= 0 {
		return fmt.Errorf("hashtable: K and L must be positive, got K=%d L=%d", c.K, c.L)
	}
	if c.CodeBits <= 0 || c.CodeBits > 32 {
		return fmt.Errorf("hashtable: CodeBits must be in [1,32], got %d", c.CodeBits)
	}
	if c.RangePow < 1 || c.RangePow > 28 {
		return fmt.Errorf("hashtable: RangePow must be in [1,28], got %d", c.RangePow)
	}
	if c.BucketSize < 1 {
		return fmt.Errorf("hashtable: BucketSize must be positive, got %d", c.BucketSize)
	}
	return nil
}

// Table is a set of L LSH tables over uint32 ids. Insertion is safe for
// concurrent use only when distinct goroutines operate on distinct table
// indices (see InsertBatch); queries are safe concurrently with each other.
//
// Storage is flat: bucket i of table ti is index bi = ti*numBuckets+i,
// its occupancy is blen[bi], its reservoir counter seen[bi], and its ids
// occupy the fixed run ids[bi*BucketSize:(bi+1)*BucketSize]. All three
// arrays carve from one arena slab sized for the whole table set, so a
// rebuild costs one slab allocation and probes walk densely packed
// counters instead of 24-byte bucket headers.
type Table struct {
	cfg        Config
	numBuckets int
	packed     bool // direct code concatenation vs mixed addressing

	blen []int32  // occupied entries per bucket, <= BucketSize
	seen []uint32 // insertions ever attempted (reservoir counter / FIFO cursor)
	ids  []uint32 // [L*numBuckets*BucketSize], bucket bi at bi*BucketSize

	// ar owns the slab behind blen/seen/ids. A finalizing cleanup releases
	// it (unmapping mmap-backend slabs) once the Table is unreachable, so
	// the per-generation rebuild churn does not grow the address space.
	ar *arena.Arena

	// insertRNG[t] supplies reservoir randomness for table t, keeping
	// per-table insertion deterministic and lock-free under the
	// one-goroutine-per-table parallel build.
	insertRNG []*rng.RNG
}

// New creates an empty table set at generation zero.
func New(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return newTable(cfg, 0), nil
}

// genSeedMix folds a rebuild generation into the reservoir seed space, so
// every generation's replacement decisions come from a fresh stream (no
// generation repeats another) while staying a pure function of (seed, gen).
const genSeedMix = 0xd1b54a32d192ed03

// newTable builds an empty table set from an already-validated config.
// gen selects the reservoir stream family: generation 0 reproduces the
// historical New seeding exactly.
func newTable(cfg Config, gen uint64) *Table {
	t := &Table{
		cfg:        cfg,
		numBuckets: 1 << cfg.RangePow,
		packed:     cfg.K*cfg.CodeBits <= cfg.RangePow,
	}
	total := cfg.L * t.numBuckets
	// Size the arena to the exact table-set footprint (+64 words absorb
	// cache-line alignment padding) so blen, seen and ids all carve from
	// a single slab.
	t.ar = arena.New(total*(2+cfg.BucketSize) + 64)
	t.blen = t.ar.AllocInt32(total)
	t.seen = t.ar.AllocUint32(total)
	t.ids = t.ar.AllocUint32(total * cfg.BucketSize)
	t.insertRNG = make([]*rng.RNG, cfg.L)
	for i := range t.insertRNG {
		t.insertRNG[i] = rng.NewStream(cfg.Seed^gen*genSeedMix, uint64(i)+0x7ab1e)
	}
	runtime.AddCleanup(t, func(a *arena.Arena) { a.Release() }, t.ar)
	return t
}

// Shadow returns a new empty table set with the same configuration whose
// reservoir streams are derived from gen. A generation-g build is a pure
// function of (config, gen, insertion sequence): building the same ids in
// the same order into two generation-g shadows — inline or on a background
// goroutine — yields bucket-for-bucket identical tables. This is the
// detached target of the non-blocking rebuild lifecycle: build a shadow
// off the hot path, then publish it through a Handle.
func (t *Table) Shadow(gen uint64) *Table {
	return newTable(t.cfg, gen)
}

// Config returns the (defaulted) configuration of the table set.
func (t *Table) Config() Config { return t.cfg }

// NumBuckets returns the bucket count per table.
func (t *Table) NumBuckets() int { return t.numBuckets }

// L returns the number of tables.
func (t *Table) L() int { return t.cfg.L }

// Address computes the bucket index in table ti for a full code vector
// (length >= K*L, laid out as L runs of K codes).
func (t *Table) Address(ti int, codes []uint32) uint32 {
	k := t.cfg.K
	run := codes[ti*k : ti*k+k]
	if t.packed {
		var a uint32
		for _, c := range run {
			a = a<<uint(t.cfg.CodeBits) | c
		}
		return a
	}
	h := t.cfg.Seed ^ uint64(ti)*0x9e3779b97f4a7c15
	for _, c := range run {
		h ^= uint64(c) + 0x9e3779b97f4a7c15 + h<<6 + h>>2
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return uint32(h) & uint32(t.numBuckets-1)
}

// Insert adds id to every table using its code vector. Not safe for
// concurrent use with other Inserts on the same table index.
func (t *Table) Insert(id uint32, codes []uint32) {
	for ti := 0; ti < t.cfg.L; ti++ {
		t.InsertInto(ti, id, codes)
	}
}

// InsertInto adds id to table ti only. Distinct goroutines may call
// InsertInto concurrently for distinct ti.
func (t *Table) InsertInto(ti int, id uint32, codes []uint32) {
	bi := ti*t.numBuckets + int(t.Address(ti, codes))
	seen := t.seen[bi] + 1
	t.seen[bi] = seen
	start := bi * t.cfg.BucketSize
	if n := int(t.blen[bi]); n < t.cfg.BucketSize {
		t.ids[start+n] = id
		t.blen[bi]++
		return
	}
	switch t.cfg.Policy {
	case PolicyReservoir:
		// Vitter algorithm R: replace a uniform slot with probability
		// BucketSize/seen, keeping the bucket a uniform sample of all
		// insertions.
		r := t.insertRNG[ti].Intn(int(seen))
		if r < t.cfg.BucketSize {
			t.ids[start+r] = id
		}
	case PolicyFIFO:
		slot := int(seen-1) % t.cfg.BucketSize
		t.ids[start+slot] = id
	}
}

// Bucket returns the ids stored in the bucket of table ti addressed by the
// code vector. The returned slice aliases internal storage; callers must
// not mutate it, nor retain it across inserts or past the Table's own
// lifetime (a dropped Table may release its slab).
func (t *Table) Bucket(ti int, codes []uint32) []uint32 {
	bi := ti*t.numBuckets + int(t.Address(ti, codes))
	start := bi * t.cfg.BucketSize
	return t.ids[start : start+int(t.blen[bi])]
}

// BucketAt returns the ids stored in bucket bi of table ti, for
// diagnostics and table comparison. The slice aliases internal storage.
func (t *Table) BucketAt(ti, bi int) []uint32 {
	i := ti*t.numBuckets + bi
	start := i * t.cfg.BucketSize
	return t.ids[start : start+int(t.blen[i])]
}

// Equal reports whether two table sets share the same configuration and
// bucket-for-bucket identical contents, including entry order and the
// reservoir insertion counters — the equivalence a detached shadow build
// must satisfy against a synchronous rebuild from the same snapshot.
func (t *Table) Equal(o *Table) bool {
	if o == nil || t.cfg != o.cfg {
		return false
	}
	bs := t.cfg.BucketSize
	for i := range t.blen {
		n := t.blen[i]
		if n != o.blen[i] || t.seen[i] != o.seen[i] {
			return false
		}
		start := i * bs
		for k := 0; k < int(n); k++ {
			if t.ids[start+k] != o.ids[start+k] {
				return false
			}
		}
	}
	return true
}

// Handle is an atomically swappable reference to a Table — the published
// side of the non-blocking rebuild lifecycle. Readers Load the current
// table set and keep querying it for the duration of one operation while
// a writer publishes a replacement with Store or Swap; a superseded set
// stays fully valid (nothing is freed or cleared) until its readers
// drain, so queries never block on table maintenance.
type Handle struct {
	p atomic.Pointer[Table]
}

// NewHandle returns a handle initially referencing t.
func NewHandle(t *Table) *Handle {
	h := &Handle{}
	h.p.Store(t)
	return h
}

// Load returns the current table set. The result is stable for as long as
// the caller holds it, even across concurrent swaps.
func (h *Handle) Load() *Table { return h.p.Load() }

// Store publishes t as the current table set.
func (h *Handle) Store(t *Table) { h.p.Store(t) }

// Swap publishes t and returns the superseded table set.
func (h *Handle) Swap(t *Table) *Table { return h.p.Swap(t) }

// Clear empties all buckets, retaining capacity, without resetting the
// reservoir streams. Offline builders that reuse one table (BuildParallel)
// keep their replacement decisions advancing across builds; the training
// rebuild lifecycle does not use Clear — it builds fresh generation-seeded
// Shadow sets whose decisions are deliberately reproducible per
// generation.
func (t *Table) Clear() {
	clear(t.blen)
	clear(t.seen)
}

// Stats summarizes table occupancy, for diagnostics and tests.
type Stats struct {
	Tables       int
	BucketsPer   int
	TotalStored  int     // ids currently stored across all tables
	TotalSeen    int     // insertions ever attempted
	NonEmpty     int     // non-empty buckets across all tables
	MaxBucketLen int     // largest current bucket occupancy
	AvgBucketLen float64 // mean occupancy over non-empty buckets
}

// Stats computes occupancy statistics.
func (t *Table) Stats() Stats {
	s := Stats{Tables: t.cfg.L, BucketsPer: t.numBuckets}
	for i, n := range t.blen {
		s.TotalStored += int(n)
		s.TotalSeen += int(t.seen[i])
		if n > 0 {
			s.NonEmpty++
			if int(n) > s.MaxBucketLen {
				s.MaxBucketLen = int(n)
			}
		}
	}
	if s.NonEmpty > 0 {
		s.AvgBucketLen = float64(s.TotalStored) / float64(s.NonEmpty)
	}
	return s
}
