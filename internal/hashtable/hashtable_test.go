package hashtable

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func mkTable(t testing.TB, cfg Config) *Table {
	t.Helper()
	tbl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func randCodes(r *rng.RNG, k, l, bits int) []uint32 {
	codes := make([]uint32, k*l)
	for i := range codes {
		codes[i] = uint32(r.Intn(1 << bits))
	}
	return codes
}

func TestInsertQueryRoundTrip(t *testing.T) {
	tbl := mkTable(t, Config{K: 3, L: 4, CodeBits: 2, Seed: 1})
	r := rng.New(7)
	codes := randCodes(r, 3, 4, 2)
	tbl.Insert(42, codes)
	for ti := 0; ti < 4; ti++ {
		found := false
		for _, id := range tbl.Bucket(ti, codes) {
			if id == 42 {
				found = true
			}
		}
		if !found {
			t.Fatalf("id missing from table %d after Insert", ti)
		}
	}
}

func TestAddressDeterministicAndInRange(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		tbl, err := New(Config{K: 4, L: 3, CodeBits: 3, RangePow: 8, Seed: seed})
		if err != nil {
			return false
		}
		r := rng.New(seed)
		codes := randCodes(r, 4, 3, 3)
		for ti := 0; ti < 3; ti++ {
			a := tbl.Address(ti, codes)
			if a != tbl.Address(ti, codes) {
				return false
			}
			if int(a) >= tbl.NumBuckets() {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackedAddressing(t *testing.T) {
	// K*CodeBits = 6 <= RangePow: direct concatenation.
	tbl := mkTable(t, Config{K: 3, L: 1, CodeBits: 2, RangePow: 6, Seed: 1})
	codes := []uint32{0b01, 0b10, 0b11}
	if got := tbl.Address(0, codes); got != 0b011011 {
		t.Fatalf("packed address = %b, want 011011", got)
	}
}

func TestBucketCapacityLimit(t *testing.T) {
	tbl := mkTable(t, Config{K: 1, L: 1, CodeBits: 1, BucketSize: 8, Seed: 1})
	codes := []uint32{1}
	for id := uint32(0); id < 100; id++ {
		tbl.Insert(id, codes)
	}
	if got := len(tbl.Bucket(0, codes)); got != 8 {
		t.Fatalf("bucket holds %d ids, capacity is 8", got)
	}
	st := tbl.Stats()
	if st.TotalSeen != 100 || st.TotalStored != 8 || st.MaxBucketLen != 8 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFIFOReplacement(t *testing.T) {
	tbl := mkTable(t, Config{K: 1, L: 1, CodeBits: 1, BucketSize: 4, Policy: PolicyFIFO, Seed: 1})
	codes := []uint32{0}
	for id := uint32(0); id < 10; id++ {
		tbl.Insert(id, codes)
	}
	// Ring buffer after 10 inserts with cap 4: slots hold 8, 9, 6, 7.
	got := tbl.Bucket(0, codes)
	want := map[uint32]bool{6: true, 7: true, 8: true, 9: true}
	if len(got) != 4 {
		t.Fatalf("bucket len %d", len(got))
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("FIFO kept %v, want the 4 most recent {6,7,8,9}", got)
		}
	}
}

// TestReservoirUniformity: after N ≫ cap insertions, every inserted id
// should survive with probability cap/N (Vitter's algorithm R invariant).
func TestReservoirUniformity(t *testing.T) {
	const capSize, n, trials = 8, 64, 3000
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		tbl := mkTable(t, Config{K: 1, L: 1, CodeBits: 1, BucketSize: capSize, Policy: PolicyReservoir, Seed: uint64(trial + 1)})
		codes := []uint32{0}
		for id := uint32(0); id < n; id++ {
			tbl.Insert(id, codes)
		}
		for _, id := range tbl.Bucket(0, codes) {
			counts[id]++
		}
	}
	want := float64(trials) * capSize / n
	for id, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("id %d survived %d times, want ~%.0f", id, c, want)
		}
	}
}

func TestClearEmptiesBuckets(t *testing.T) {
	tbl := mkTable(t, Config{K: 2, L: 3, CodeBits: 2, Seed: 9})
	r := rng.New(1)
	for id := uint32(0); id < 50; id++ {
		tbl.Insert(id, randCodes(r, 2, 3, 2))
	}
	tbl.Clear()
	st := tbl.Stats()
	if st.TotalStored != 0 || st.NonEmpty != 0 || st.TotalSeen != 0 {
		t.Fatalf("Clear left state: %+v", st)
	}
}

func TestBuildParallelMatchesSerial(t *testing.T) {
	const n, k, l, bits = 500, 3, 5, 2
	r := rng.New(3)
	codes := make([]uint32, n*k*l)
	for i := range codes {
		codes[i] = uint32(r.Intn(1 << bits))
	}
	serial := mkTable(t, Config{K: k, L: l, CodeBits: bits, Policy: PolicyFIFO, Seed: 5})
	for id := 0; id < n; id++ {
		serial.Insert(uint32(id), codes[id*k*l:(id+1)*k*l])
	}
	par := mkTable(t, Config{K: k, L: l, CodeBits: bits, Policy: PolicyFIFO, Seed: 5})
	par.BuildParallel(n, codes, k*l, 4)
	// Per-table insertion order is identical, so contents must match
	// bucket for bucket.
	for id := 0; id < n; id++ {
		cs := codes[id*k*l : (id+1)*k*l]
		for ti := 0; ti < l; ti++ {
			a := serial.Bucket(ti, cs)
			b := par.Bucket(ti, cs)
			if len(a) != len(b) {
				t.Fatalf("table %d bucket sizes differ: %d vs %d", ti, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("table %d bucket contents differ", ti)
				}
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{K: 0, L: 1, CodeBits: 1},
		{K: 1, L: 0, CodeBits: 1},
		{K: 1, L: 1, CodeBits: 0},
		{K: 1, L: 1, CodeBits: 33},
		{K: 1, L: 1, CodeBits: 1, RangePow: 29},
		{K: 1, L: 1, CodeBits: 1, BucketSize: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestDefaultRangePow(t *testing.T) {
	tbl := mkTable(t, Config{K: 9, L: 1, CodeBits: 1, Seed: 1})
	if tbl.NumBuckets() != 1<<9 {
		t.Fatalf("K=9 1-bit codes should give 512 buckets, got %d", tbl.NumBuckets())
	}
	// Wide codes cap at DefaultRangePowCap.
	tbl = mkTable(t, Config{K: 8, L: 1, CodeBits: 8, Seed: 1})
	if tbl.NumBuckets() != 1<<DefaultRangePowCap {
		t.Fatalf("wide codes should cap at 2^%d buckets, got %d", DefaultRangePowCap, tbl.NumBuckets())
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{PolicyReservoir, PolicyFIFO} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}

func TestMixedAddressingSpreads(t *testing.T) {
	// K*CodeBits (24) > RangePow (10): mixed addressing must spread ids
	// across many buckets, not collapse them.
	tbl := mkTable(t, Config{K: 8, L: 1, CodeBits: 3, RangePow: 10, Seed: 2})
	r := rng.New(11)
	seen := map[uint32]bool{}
	for i := 0; i < 500; i++ {
		seen[tbl.Address(0, randCodes(r, 8, 1, 3))] = true
	}
	if len(seen) < 300 {
		t.Fatalf("mixed addressing hit only %d distinct buckets in 500 draws", len(seen))
	}
}

// buildInto inserts n ids with a seed-deterministic code sequence, so the
// identical sequence can be replayed into another table for comparison.
func buildInto(tbl *Table, n int, seed uint64) {
	r := rng.New(seed)
	for id := 0; id < n; id++ {
		tbl.Insert(uint32(id), randCodes(r, tbl.Config().K, tbl.Config().L, tbl.Config().CodeBits))
	}
}

// TestShadowGenerationDeterministic pins the shadow-build equivalence
// contract: two shadows of the same generation fed the same insertion
// sequence are bucket-for-bucket identical (including reservoir
// replacement decisions), no matter where they were built — while a
// different generation draws a different replacement stream.
func TestShadowGenerationDeterministic(t *testing.T) {
	// BucketSize 2 forces heavy reservoir churn so the replacement
	// streams actually matter.
	base := mkTable(t, Config{K: 2, L: 3, CodeBits: 2, BucketSize: 2, Seed: 9})
	const n = 512

	a := base.Shadow(7)
	b := base.Shadow(7)
	done := make(chan struct{})
	go func() { // a detached build on another goroutine changes nothing
		buildInto(b, n, 4)
		close(done)
	}()
	buildInto(a, n, 4)
	<-done
	if !a.Equal(b) {
		t.Fatal("same-generation shadows diverged on an identical insertion sequence")
	}

	c := base.Shadow(8)
	buildInto(c, n, 4)
	if a.Equal(c) {
		t.Fatal("generations 7 and 8 produced identical reservoir decisions — gen is not reaching the streams")
	}

	// Generation 0 reproduces the historical New seeding.
	fresh := mkTable(t, Config{K: 2, L: 3, CodeBits: 2, BucketSize: 2, Seed: 9})
	g0 := base.Shadow(0)
	buildInto(fresh, n, 4)
	buildInto(g0, n, 4)
	if !fresh.Equal(g0) {
		t.Fatal("generation-0 shadow does not match a freshly constructed table")
	}
}

// TestEqualDetectsDifferences sanity-checks the comparison itself.
func TestEqualDetectsDifferences(t *testing.T) {
	cfg := Config{K: 2, L: 2, CodeBits: 2, Seed: 3}
	a := mkTable(t, cfg)
	b := mkTable(t, cfg)
	buildInto(a, 32, 1)
	buildInto(b, 32, 1)
	if !a.Equal(b) {
		t.Fatal("identically built tables compare unequal")
	}
	r := rng.New(99)
	b.Insert(1000, randCodes(r, 2, 2, 2))
	if a.Equal(b) {
		t.Fatal("tables with different contents compare equal")
	}
	if a.Equal(mkTable(t, Config{K: 2, L: 2, CodeBits: 2, Seed: 4})) {
		t.Fatal("tables with different configs compare equal")
	}
}

// TestHandleSwapUnderConcurrentReaders is the handle's concurrency
// contract, run under -race in CI: readers Load and query freely while a
// writer keeps publishing fresh shadow generations; every loaded set
// stays internally consistent (ids in range, lengths within capacity).
func TestHandleSwapUnderConcurrentReaders(t *testing.T) {
	cfg := Config{K: 2, L: 4, CodeBits: 3, BucketSize: 8, Seed: 17}
	first := mkTable(t, cfg)
	const n = 256
	buildInto(first, n, 1)
	h := NewHandle(first)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g) + 100)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tbl := h.Load()
				codes := randCodes(r, 2, 4, 3)
				for ti := 0; ti < tbl.L(); ti++ {
					for _, id := range tbl.Bucket(ti, codes) {
						if id >= n {
							t.Errorf("reader %d saw out-of-range id %d", g, id)
							return
						}
					}
				}
			}
		}(g)
	}
	for gen := uint64(1); gen <= 50; gen++ {
		shadow := h.Load().Shadow(gen)
		buildInto(shadow, n, gen)
		old := h.Swap(shadow)
		if old == nil {
			t.Fatal("Swap returned nil previous table")
		}
	}
	close(stop)
	wg.Wait()
}
