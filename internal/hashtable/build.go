package hashtable

import "sync"

// BuildParallel clears the tables and inserts ids 0..n-1 using the
// precomputed flat code matrix (codes[id*stride : id*stride+K*L]).
// Work is parallelized across tables — each goroutine owns a disjoint
// range of table indices, so no synchronization is needed — which is the
// paper's observation that table construction "can easily be parallelized
// with multiple threads" (§3.1).
func (t *Table) BuildParallel(n int, codes []uint32, stride, workers int) {
	if stride < t.cfg.K*t.cfg.L {
		panic("hashtable: BuildParallel stride smaller than K*L")
	}
	t.Clear()
	if workers < 1 {
		workers = 1
	}
	if workers > t.cfg.L {
		workers = t.cfg.L
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * t.cfg.L / workers
		hi := (w + 1) * t.cfg.L / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for ti := lo; ti < hi; ti++ {
				for id := 0; id < n; id++ {
					t.InsertInto(ti, uint32(id), codes[id*stride:id*stride+stride])
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}
