package dist

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// testCodec builds an fp32 codec for a fixed layer shape without a
// network.
func testCodec(dims ...[2]int32) *Codec {
	return &Codec{dims: dims}
}

// testCodecFmt builds a codec with an explicit value format.
func testCodecFmt(f ValueFormat, dims ...[2]int32) *Codec {
	return &Codec{dims: dims, format: f}
}

// allFormats enumerates every negotiated wire format for table tests.
var allFormats = []ValueFormat{ValueFP32, ValueBF16, ValueTopK}

// randomDelta builds a structurally valid random delta for dims: random
// ascending row subsets, random ascending column spans (possibly empty),
// values drawn over several magnitudes including negatives, biases zero
// or not.
func randomDelta(r *rand.Rand, dims [][2]int32) *core.SparseDelta {
	d := &core.SparseDelta{Layers: make([]core.LayerDelta, len(dims))}
	for li, dim := range dims {
		out, in := int(dim[0]), int(dim[1])
		ld := &d.Layers[li]
		ld.RowOff = append(ld.RowOff, 0)
		for j := 0; j < out; j++ {
			if r.Float64() > 0.3 {
				continue
			}
			ld.Rows = append(ld.Rows, int32(j))
			for i := 0; i < in; i++ {
				if r.Float64() > 0.2 {
					continue
				}
				ld.Cols = append(ld.Cols, int32(i))
				ld.Vals = append(ld.Vals, float32(r.NormFloat64()*math.Pow(10, float64(r.Intn(7)-3))))
			}
			ld.RowOff = append(ld.RowOff, int32(len(ld.Cols)))
			var bias float32
			if r.Float64() < 0.8 {
				bias = float32(r.NormFloat64())
			}
			ld.Bias = append(ld.Bias, bias)
		}
	}
	return d
}

func deltasEqual(a, b *core.SparseDelta) bool {
	if len(a.Layers) != len(b.Layers) {
		return false
	}
	for li := range a.Layers {
		la, lb := &a.Layers[li], &b.Layers[li]
		if len(la.Rows) != len(lb.Rows) || len(la.Cols) != len(lb.Cols) {
			return false
		}
		for i := range la.Rows {
			if la.Rows[i] != lb.Rows[i] || la.RowOff[i+1] != lb.RowOff[i+1] {
				return false
			}
			if math.Float32bits(la.Bias[i]) != math.Float32bits(lb.Bias[i]) {
				return false
			}
		}
		for k := range la.Cols {
			if la.Cols[k] != lb.Cols[k] || math.Float32bits(la.Vals[k]) != math.Float32bits(lb.Vals[k]) {
				return false
			}
		}
	}
	return true
}

// TestCodecRoundTripProperty: for many random deltas in every wire
// format, encode → decode reproduces the quantized delta exactly and
// EncodedSize predicts the exact buffer length. For fp32/topk the
// quantization is the identity; for bf16 it is Quantize — which must be
// idempotent, so the decoded delta re-encodes to the same bytes.
func TestCodecRoundTripProperty(t *testing.T) {
	dims := [][2]int32{{64, 700}, {256, 64}}
	for _, f := range allFormats {
		t.Run(f.String(), func(t *testing.T) {
			c := testCodecFmt(f, dims...)
			r := rand.New(rand.NewSource(41))
			var buf []byte
			var scratch *core.SparseDelta
			for trial := 0; trial < 200; trial++ {
				d := randomDelta(r, dims)
				var err error
				buf, err = c.AppendDelta(buf[:0], d)
				if err != nil {
					t.Fatalf("trial %d: encode: %v", trial, err)
				}
				if got := c.EncodedSize(d); got != len(buf) {
					t.Fatalf("trial %d: EncodedSize %d != encoded length %d", trial, got, len(buf))
				}
				scratch, err = c.DecodeDelta(scratch, buf)
				if err != nil {
					t.Fatalf("trial %d: decode: %v", trial, err)
				}
				want := d.Clone()
				c.Quantize(want) // identity except bf16
				if !deltasEqual(want, scratch) {
					t.Fatalf("trial %d: round-trip mismatch", trial)
				}
				// Quantize must be exactly the wire rounding: the decoded
				// delta re-encodes byte-identically.
				again, err := c.AppendDelta(nil, scratch)
				if err != nil {
					t.Fatalf("trial %d: re-encode: %v", trial, err)
				}
				if string(again) != string(buf) {
					t.Fatalf("trial %d: re-encoding the decoded delta changed bytes", trial)
				}
			}
		})
	}
}

// TestCodecBF16HalvesValueBytes: the bf16 wire format must spend exactly
// 2 bytes per value/bias where fp32 spends 4 — identical id streams,
// halved value blocks.
func TestCodecBF16HalvesValueBytes(t *testing.T) {
	dims := [][2]int32{{64, 700}, {256, 64}}
	d := randomDelta(rand.New(rand.NewSource(9)), dims)
	full := testCodec(dims...).EncodedSize(d)
	half := testCodecFmt(ValueBF16, dims...).EncodedSize(d)
	values := 0
	for li := range d.Layers {
		values += len(d.Layers[li].Vals) + len(d.Layers[li].Bias)
	}
	if full-half != 2*values {
		t.Fatalf("bf16 saves %d bytes over fp32, want exactly 2 per value = %d", full-half, 2*values)
	}
	if topk := testCodecFmt(ValueTopK, dims...).EncodedSize(d); topk != full {
		t.Fatalf("topk frame size %d differs from fp32 %d for the same delta", topk, full)
	}
}

// TestCodecCompactness: at SLIDE sparsity the wire size must sit far
// below dense parameter sync and close to the 8-bytes-per-cell estimate
// the dist-comm experiment historically reported.
func TestCodecCompactness(t *testing.T) {
	dims := [][2]int32{{64, 10000}, {20000, 64}}
	c := testCodec(dims...)
	r := rand.New(rand.NewSource(7))
	d := &core.SparseDelta{Layers: make([]core.LayerDelta, 2)}
	// Layer 1: 200 of 20000 rows touched, each with a full 64-column span
	// — the SLIDE output-layer shape.
	ld := &d.Layers[1]
	ld.RowOff = append(ld.RowOff, 0)
	for j := 0; j < 20000; j += 100 {
		ld.Rows = append(ld.Rows, int32(j))
		for i := 0; i < 64; i++ {
			ld.Cols = append(ld.Cols, int32(i))
			ld.Vals = append(ld.Vals, float32(r.NormFloat64()))
		}
		ld.RowOff = append(ld.RowOff, int32(len(ld.Cols)))
		ld.Bias = append(ld.Bias, float32(r.NormFloat64()))
	}
	d.Layers[0].RowOff = []int32{0}

	size := c.EncodedSize(d)
	cells := int(d.Cells())
	if perCell := float64(size) / float64(cells); perCell > 8 {
		t.Fatalf("codec spends %.2f bytes/cell, above the 8 B index+value estimate", perCell)
	}
	dense := 4 * (64*10000 + 20000*64)
	if size >= dense/50 {
		t.Fatalf("sparse encoding %d B is not ≥50x below dense sync %d B", size, dense)
	}
}

// TestCodecRejectsMalformed: truncations, bad magic, wrong shapes and
// out-of-range ids all error instead of panicking or silently passing —
// in every wire format.
func TestCodecRejectsMalformed(t *testing.T) {
	dims := [][2]int32{{16, 32}}
	for _, f := range allFormats {
		t.Run(f.String(), func(t *testing.T) {
			c := testCodecFmt(f, dims...)
			d := randomDelta(rand.New(rand.NewSource(3)), dims)
			buf, err := c.AppendDelta(nil, d)
			if err != nil {
				t.Fatal(err)
			}

			if _, err := c.DecodeDelta(nil, nil); err == nil {
				t.Fatal("decoded empty buffer")
			}
			for cut := 1; cut < len(buf); cut++ {
				if _, err := c.DecodeDelta(nil, buf[:len(buf)-cut]); err == nil {
					t.Fatalf("decoded %d-byte truncation", cut)
				}
			}
			bad := append([]byte(nil), buf...)
			bad[0] ^= 0xff
			if _, err := c.DecodeDelta(nil, bad); err == nil {
				t.Fatal("decoded bad magic")
			}
			if _, err := c.DecodeDelta(nil, append(append([]byte(nil), buf...), 0)); err == nil {
				t.Fatal("decoded trailing garbage")
			}
			other := testCodecFmt(f, [2]int32{16, 32}, [2]int32{8, 16})
			if _, err := other.DecodeDelta(nil, buf); err == nil {
				t.Fatal("decoded delta with wrong layer count")
			}
			// Out-of-range ids on encode.
			badDelta := &core.SparseDelta{Layers: []core.LayerDelta{{
				Rows:   []int32{16},
				RowOff: []int32{0, 0},
				Bias:   []float32{0},
			}}}
			if _, err := c.AppendDelta(nil, badDelta); err == nil {
				t.Fatal("encoded out-of-range row")
			}
		})
	}
}

// TestCodecRejectsFormatMismatch: compression is negotiated, not sniffed
// — a decoder built for one value format must reject frames stamped with
// another (the formats disagree on value width, so accepting one would
// merge garbage), and an unknown format byte is rejected outright.
func TestCodecRejectsFormatMismatch(t *testing.T) {
	dims := [][2]int32{{16, 32}}
	d := randomDelta(rand.New(rand.NewSource(5)), dims)
	for _, enc := range allFormats {
		buf, err := testCodecFmt(enc, dims...).AppendDelta(nil, d)
		if err != nil {
			t.Fatal(err)
		}
		for _, dec := range allFormats {
			if enc == dec {
				continue
			}
			if _, err := testCodecFmt(dec, dims...).DecodeDelta(nil, buf); err == nil {
				t.Fatalf("%v decoder accepted a %v frame", dec, enc)
			}
		}
		// Unknown format byte (the byte after the 4-byte magic).
		bad := append([]byte(nil), buf...)
		bad[4] = 0xff
		if _, err := testCodecFmt(enc, dims...).DecodeDelta(nil, bad); err == nil {
			t.Fatal("decoded a frame with an unknown format byte")
		}
	}
}

// FuzzDecodeDelta drives every format's decoder with arbitrary bytes:
// none may panic, and anything a decoder accepts must re-encode and
// re-decode to the same delta (for bf16 that pins Quantize's
// idempotence — accepted wire values are exactly representable).
func FuzzDecodeDelta(f *testing.F) {
	dims := [][2]int32{{16, 600}, {64, 16}}
	codecs := make([]*Codec, len(allFormats))
	for i, vf := range allFormats {
		codecs[i] = testCodecFmt(vf, dims...)
	}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 4; i++ {
		d := randomDelta(r, dims)
		for _, c := range codecs {
			seed, err := c.AppendDelta(nil, d)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(seed)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{'S', 'D', 'L', '0' + codecVersion, 0xff, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range codecs {
			d, err := c.DecodeDelta(nil, data)
			if err != nil {
				continue
			}
			buf, err := c.AppendDelta(nil, d)
			if err != nil {
				t.Fatalf("%v: accepted delta failed to re-encode: %v", c.Format(), err)
			}
			again, err := c.DecodeDelta(nil, buf)
			if err != nil {
				t.Fatalf("%v: re-encoded delta failed to decode: %v", c.Format(), err)
			}
			if !deltasEqual(d, again) {
				t.Fatalf("%v: decode/encode/decode not stable", c.Format())
			}
		}
	})
}

// TestCodecRejectsAllocationBomb: a few header bytes declaring a huge
// cell count must be rejected before the decoder allocates the declared
// space — the payload has to actually back every declared cell.
func TestCodecRejectsAllocationBomb(t *testing.T) {
	c := testCodec([2]int32{1 << 16, 1 << 12})
	var buf []byte
	buf = append(buf, codecMagic[:]...)
	buf = append(buf, byte(ValueFP32))
	buf = binary.AppendUvarint(buf, 1)     // one layer
	buf = binary.AppendUvarint(buf, 1<<16) // every row touched...
	for i := 0; i < 1<<16; i++ {
		buf = binary.AppendUvarint(buf, 0)     // next row
		buf = binary.AppendUvarint(buf, 1<<12) // ...with a full span: 2^28 cells
	}
	// No bias/cols/vals back the 2^28 declared cells.
	if _, err := c.DecodeDelta(nil, buf); err == nil {
		t.Fatal("decoder accepted a 256M-cell declaration backed by nothing")
	}
}

// TestCodecRejectsOverflowingIDDiff: a 64-bit varint diff that would
// wrap the id arithmetic negative must be rejected, not decoded into an
// out-of-order or negative id (which would crash ApplyDelta or silently
// truncate a merge downstream).
func TestCodecRejectsOverflowingIDDiff(t *testing.T) {
	c := testCodec([2]int32{16, 32})
	var buf []byte
	buf = append(buf, codecMagic[:]...)
	buf = append(buf, byte(ValueFP32))
	buf = binary.AppendUvarint(buf, 1) // one layer
	buf = binary.AppendUvarint(buf, 2) // two rows
	buf = binary.AppendUvarint(buf, 5) // row 5
	buf = binary.AppendUvarint(buf, 0) // no cells
	// Second row's diff chosen so int64(5)+1+int64(diff) == -2.
	buf = binary.AppendUvarint(buf, 1<<63+(1<<32-8))
	buf = binary.AppendUvarint(buf, 0) // no cells
	buf = binary.AppendUvarint(buf, 0) // pad: bias floats won't be reached
	if d, err := c.DecodeDelta(nil, buf); err == nil {
		t.Fatalf("decoder accepted an overflowing row diff: rows = %v", d.Layers[0].Rows)
	}
}

// TestCodecRoundTripZeroAllocs pins the wire codec's steady state: with
// a reused encode buffer and a reused decode scratch delta, a full
// encode+decode round trip allocates nothing in any negotiated format.
// This is the property that keeps the delta-exchange loop off the GC's
// books once its buffers have warmed up.
func TestCodecRoundTripZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on instrumented paths")
	}
	dims := [][2]int32{{64, 700}, {256, 64}}
	for _, f := range allFormats {
		t.Run(f.String(), func(t *testing.T) {
			c := testCodecFmt(f, dims...)
			r := rand.New(rand.NewSource(97))
			d := randomDelta(r, dims)
			c.Quantize(d)
			var buf []byte
			var scratch *core.SparseDelta
			run := func() {
				var err error
				buf, err = c.AppendDelta(buf[:0], d)
				if err != nil {
					t.Fatal(err)
				}
				scratch, err = c.DecodeDelta(scratch, buf)
				if err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 3; i++ {
				run()
			}
			if !deltasEqual(d, scratch) {
				t.Fatal("round trip diverged")
			}
			if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
				t.Fatalf("steady-state round trip made %.1f allocs/op, want 0", allocs)
			}
		})
	}
}
