//go:build !race

package dist

// raceEnabled mirrors internal/core's gate: multi-threaded training
// tests switch HOGWILD's deliberate races to CAS updates under -race.
const raceEnabled = false
