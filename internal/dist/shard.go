package dist

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
)

// rankSeedStride separates the replicas' shuffle/sampling seed spaces so
// shards draw independent element orders and fallback streams (the
// replicas' weights stay in lockstep regardless — every replica applies
// the same merged delta).
const rankSeedStride = 0x9e3779b97f4a7c15

// ShardExamples returns rank's round-robin data shard: examples rank,
// rank+shards, rank+2*shards, ... Round-robin keeps the shards' label
// distributions aligned, which contiguous splits of a skewed dataset
// would not.
func ShardExamples(xs []dataset.Example, rank, shards int) []dataset.Example {
	if shards <= 1 {
		return xs
	}
	out := make([]dataset.Example, 0, (len(xs)+shards-1-rank)/shards)
	for i := rank; i < len(xs); i += shards {
		out = append(out, xs[i])
	}
	return out
}

// ShardTrainConfig derives rank's per-replica TrainConfig from the
// group-wide tc. Every rank must run the identical batch size and
// iteration count — a rank on its own schedule would fall out of step
// with the exchange barrier — so both are fixed from the smallest
// round-robin shard; both TrainSharded and the multi-process
// slide-train ranks derive their schedules here. Non-zero ranks get
// rank-striped shuffle seeds, drop the OnEval callback (one replica
// narrates; weights are shared anyway), and skip periodic evaluation
// unless a TargetAcc stop needs it (any rank may trigger the
// coordinated stop). The caller sets Exchanger and Threads.
func ShardTrainConfig(tc core.TrainConfig, trainLen, rank, shards int) core.TrainConfig {
	minLen := trainLen / shards // the smallest round-robin shard
	if minLen < 1 {
		// Degenerate split (fewer examples than shards): keep the
		// schedule arithmetic valid; the empty shard itself will fail
		// training with a real error.
		minLen = 1
	}
	if tc.BatchSize <= 0 {
		tc.BatchSize = 128
	}
	tc.BatchSize = min(tc.BatchSize, minLen)
	if tc.Iterations == 0 {
		epochs := max(tc.Epochs, 1)
		tc.Iterations = int64(epochs) * int64((minLen+tc.BatchSize-1)/tc.BatchSize)
	}
	tc.Epochs = 0
	tc.Shards = shards
	tc.Seed += uint64(rank) * rankSeedStride
	if rank != 0 {
		tc.OnEval = nil
		tc.SkipFinalEval = true // weights are rank 0's, bit for bit
		if tc.TargetAcc == 0 {
			tc.EvalEvery = 0
		}
	}
	return tc
}

// ShardedResult bundles an in-process sharded run's outcome: every
// replica's network (bit-identical weights on success), the per-replica
// training results, and the per-rank measured exchange bytes.
type ShardedResult struct {
	Nets    []*core.Network
	Results []*core.TrainResult
	Stats   []ExchangeStats
}

// TrainSharded runs data-parallel SLIDE training with N in-process
// replicas over an all-reduce Mesh (§6): every replica builds an
// identical network from cfg (same seed), trains on its round-robin
// shard of train, and merges all shards' SparseDeltas at every batch
// boundary before the Adam step averaged over BatchSize*Shards examples.
// On success all replicas hold bit-identical weights — the merged delta
// is shared — so Nets[0] is the trained model.
//
// The per-replica batch size and iteration count are derived once from
// the smallest shard so every replica runs the same schedule (a replica
// that fell out of step would deadlock the barrier); tc.Threads of 0
// selects GOMAXPROCS divided across the replicas. shards == 1 is the
// loopback measurement configuration: training is bit-identical to a
// plain net.Train run, with every batch's encoded delta size measured.
func TrainSharded(ctx context.Context, cfg core.Config, train, test []dataset.Example, tc core.TrainConfig, shards int) (*ShardedResult, error) {
	if shards < 1 {
		return nil, fmt.Errorf("dist: shards must be >= 1, got %d", shards)
	}
	if len(train) < shards {
		return nil, fmt.Errorf("dist: %d examples cannot feed %d shards", len(train), shards)
	}

	nets := make([]*core.Network, shards)
	for r := range nets {
		net, err := core.NewNetwork(cfg)
		if err != nil {
			return nil, err
		}
		nets[r] = net
	}
	// The mesh's codec matches the configured compression, so in-process
	// groups measure the same wire bytes a TCP group would ship — and,
	// for bf16, apply the same value rounding.
	mesh := NewMesh(shards, NewCodecFormat(nets[0], FormatFor(tc.Compress)))

	data := make([][]dataset.Example, shards)
	for r := range data {
		data[r] = ShardExamples(train, r, shards)
	}
	// The thread budget — explicit or GOMAXPROCS — is split across the
	// in-process replicas (as the slide-train -threads flag documents):
	// every replica training concurrently with the full budget would
	// oversubscribe the machine shards-fold.
	threads := tc.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	threads = max(1, threads/shards)

	results := make([]*core.TrainResult, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for r := 0; r < shards; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rtc := ShardTrainConfig(tc, len(train), r, shards)
			rtc.Threads = threads
			rtc.Exchanger = mesh.Rank(r)
			res, err := nets[r].TrainContext(ctx, data[r], test, rtc)
			results[r] = res
			if err != nil {
				errs[r] = err
				mesh.Fail(fmt.Errorf("dist: replica %d: %w", r, err))
			}
		}(r)
	}
	wg.Wait()

	out := &ShardedResult{Nets: nets, Results: results, Stats: mesh.Stats()}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
