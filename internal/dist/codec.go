// Package dist implements data-parallel SLIDE training over sparse
// gradient exchange — the paper's §6 closing argument ("a distributed
// implementation of SLIDE would be very appealing because the
// communication costs are minimal due to sparse gradients") turned into a
// code path, following the low-bandwidth CPU-cluster design of
// "Distributed SLIDE" (arXiv:2201.12667).
//
// The package provides three layers:
//
//   - Codec: a compact binary wire format for core.SparseDelta —
//     varint-delta row/column ids, raw float32 gradients — with full
//     validation against the network's layer shapes on decode.
//   - Exchangers: core.DeltaExchanger implementations. Mesh is the
//     in-process all-reduce for N replicas in one process (and, with one
//     shard, a loopback measurement tap); TCPServer/TCPClient are the
//     multi-process hub transport over length-prefixed frames.
//   - TrainSharded: the sharded training driver — N identical replicas,
//     round-robin data shards, per-batch delta exchange, replicas' weights
//     in bitwise lockstep.
package dist

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
)

// codecVersion identifies the wire format; bump on incompatible change.
const codecVersion = 1

// codecMagic opens every encoded delta ("SDL" + version).
var codecMagic = [4]byte{'S', 'D', 'L', '0' + codecVersion}

// Codec encodes and decodes SparseDeltas for a fixed network shape. The
// per-layer (neurons, fan-in) dimensions bound every id on decode, so a
// malformed or hostile payload is rejected rather than applied.
//
// Wire format, all little-endian:
//
//	magic[4]
//	uvarint layerCount
//	per layer:
//	  uvarint rowCount
//	  rowCount uvarints: first row id raw, then (diff-1) to the previous
//	  rowCount uvarints: per-row cell counts
//	  rowCount float32:  bias gradients (0 = no bias step)
//	  per row: cell-count uvarints: first column raw, then (diff-1)
//	  totalCells float32: gradient values, row-major
//
// Row and column ids are strictly ascending (ExtractDelta and MergeDeltas
// guarantee it), so the diff-1 encoding is total and most ids fit one or
// two bytes at SLIDE's s² sparsity.
type Codec struct {
	dims [][2]int32 // per layer: {out (rows), in (cols)}
}

// NewCodec builds a codec for the network's layer shapes.
func NewCodec(n *core.Network) *Codec {
	dims := make([][2]int32, n.NumLayers())
	for i := range dims {
		l := n.Layer(i)
		dims[i] = [2]int32{int32(l.Out()), int32(l.In())}
	}
	return &Codec{dims: dims}
}

// EncodedSize returns the exact number of bytes AppendDelta would emit
// for d — the measured per-batch communication payload, without
// allocating the buffer.
func (c *Codec) EncodedSize(d *core.SparseDelta) int {
	size := len(codecMagic) + uvarintLen(uint64(len(d.Layers)))
	for li := range d.Layers {
		ld := &d.Layers[li]
		size += uvarintLen(uint64(len(ld.Rows)))
		prev := int32(-1)
		for r, row := range ld.Rows {
			size += uvarintLen(uint64(row - prev - 1))
			size += uvarintLen(uint64(ld.RowOff[r+1] - ld.RowOff[r]))
			prev = row
		}
		size += 4 * len(ld.Bias)
		for r := range ld.Rows {
			prevCol := int32(-1)
			for k := ld.RowOff[r]; k < ld.RowOff[r+1]; k++ {
				size += uvarintLen(uint64(ld.Cols[k] - prevCol - 1))
				prevCol = ld.Cols[k]
			}
		}
		size += 4 * len(ld.Vals)
	}
	return size
}

// AppendDelta appends d's encoding to buf and returns the extended
// buffer. The delta must satisfy the producer invariants (ascending
// in-range ids, consistent spans); violations are reported rather than
// silently emitting an undecodable payload.
func (c *Codec) AppendDelta(buf []byte, d *core.SparseDelta) ([]byte, error) {
	if len(d.Layers) != len(c.dims) {
		return buf, fmt.Errorf("dist: encoding delta with %d layers, codec has %d", len(d.Layers), len(c.dims))
	}
	buf = append(buf, codecMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(d.Layers)))
	for li := range d.Layers {
		ld := &d.Layers[li]
		out, in := c.dims[li][0], c.dims[li][1]
		nr := len(ld.Rows)
		if len(ld.RowOff) != nr+1 || len(ld.Bias) != nr {
			return buf, fmt.Errorf("dist: layer %d: inconsistent delta (%d rows, %d offsets, %d biases)", li, nr, len(ld.RowOff), len(ld.Bias))
		}
		buf = binary.AppendUvarint(buf, uint64(nr))
		prev := int32(-1)
		for r, row := range ld.Rows {
			if row <= prev || row >= out {
				return buf, fmt.Errorf("dist: layer %d: row %d out of order or range [0,%d)", li, row, out)
			}
			buf = binary.AppendUvarint(buf, uint64(row-prev-1))
			buf = binary.AppendUvarint(buf, uint64(ld.RowOff[r+1]-ld.RowOff[r]))
			prev = row
		}
		for _, b := range ld.Bias {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(b))
		}
		for r := range ld.Rows {
			prevCol := int32(-1)
			for k := ld.RowOff[r]; k < ld.RowOff[r+1]; k++ {
				col := ld.Cols[k]
				if col <= prevCol || col >= in {
					return buf, fmt.Errorf("dist: layer %d row %d: column %d out of order or range [0,%d)", li, ld.Rows[r], col, in)
				}
				buf = binary.AppendUvarint(buf, uint64(col-prevCol-1))
				prevCol = col
			}
		}
		for _, v := range ld.Vals {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	}
	return buf, nil
}

// DecodeDelta decodes buf into dst (reused when non-nil) with full
// validation: magic, layer count, ascending in-range ids, span and
// length consistency. The returned delta satisfies every ApplyDelta and
// MergeDeltas precondition.
func (c *Codec) DecodeDelta(dst *core.SparseDelta, buf []byte) (*core.SparseDelta, error) {
	if dst == nil {
		dst = &core.SparseDelta{}
	}
	r := reader{buf: buf}
	var magic [4]byte
	if err := r.bytes(magic[:]); err != nil {
		return dst, err
	}
	if magic != codecMagic {
		return dst, fmt.Errorf("dist: bad delta magic %q", magic[:])
	}
	layers, err := r.uvarint()
	if err != nil {
		return dst, err
	}
	if layers != uint64(len(c.dims)) {
		return dst, fmt.Errorf("dist: delta has %d layers, codec has %d", layers, len(c.dims))
	}
	resizeLayers(dst, int(layers))
	for li := range dst.Layers {
		if err := c.decodeLayer(&r, li, &dst.Layers[li]); err != nil {
			return dst, fmt.Errorf("dist: layer %d: %w", li, err)
		}
	}
	if len(r.buf) != 0 {
		return dst, fmt.Errorf("dist: %d trailing bytes after delta", len(r.buf))
	}
	return dst, nil
}

func (c *Codec) decodeLayer(r *reader, li int, ld *core.LayerDelta) error {
	out, in := c.dims[li][0], c.dims[li][1]
	nrU, err := r.uvarint()
	if err != nil {
		return err
	}
	if nrU > uint64(out) {
		return fmt.Errorf("%d rows exceeds layer size %d", nrU, out)
	}
	nr := int(nrU)
	ld.Rows = grow(ld.Rows, nr)
	ld.RowOff = grow(ld.RowOff, nr+1)
	ld.Bias = grow(ld.Bias, nr)
	ld.RowOff[0] = 0
	prev := int32(-1)
	var total int64
	for i := 0; i < nr; i++ {
		diff, err := r.uvarint()
		if err != nil {
			return err
		}
		// Reject the diff before the addition: a diff >= out cannot
		// yield an in-range id, and an unchecked 64-bit diff would
		// overflow the sum negative and slip past the range check.
		if diff >= uint64(out) {
			return fmt.Errorf("row diff %d out of range [0,%d)", diff, out)
		}
		row := int64(prev) + 1 + int64(diff)
		if row >= int64(out) {
			return fmt.Errorf("row %d out of range [0,%d)", row, out)
		}
		ld.Rows[i] = int32(row)
		prev = int32(row)
		cells, err := r.uvarint()
		if err != nil {
			return err
		}
		if cells > uint64(in) {
			return fmt.Errorf("row %d has %d cells, fan-in is %d", row, cells, in)
		}
		total += int64(cells)
		ld.RowOff[i+1] = int32(total)
	}
	// Guard the allocation against a header that declares far more cells
	// than the payload could possibly back: the remaining buffer must
	// hold the bias block plus at least (1-byte column varint + 4-byte
	// value) per declared cell. Without this, a few hostile header bytes
	// could demand an out*in-cell allocation — and on layers wider than
	// 2^31 cells, wrap the int32 offsets.
	if total > int64(math.MaxInt32) || 4*int64(nr)+5*total > int64(len(r.buf)) {
		return fmt.Errorf("declared %d cells exceed the %d-byte payload", total, len(r.buf))
	}
	for i := 0; i < nr; i++ {
		bits, err := r.u32()
		if err != nil {
			return err
		}
		ld.Bias[i] = math.Float32frombits(bits)
	}
	nnz := int(total)
	ld.Cols = grow(ld.Cols, nnz)
	ld.Vals = grow(ld.Vals, nnz)
	for i := 0; i < nr; i++ {
		prevCol := int32(-1)
		for k := ld.RowOff[i]; k < ld.RowOff[i+1]; k++ {
			diff, err := r.uvarint()
			if err != nil {
				return err
			}
			if diff >= uint64(in) { // see the row-diff overflow guard
				return fmt.Errorf("row %d column diff %d out of range [0,%d)", ld.Rows[i], diff, in)
			}
			col := int64(prevCol) + 1 + int64(diff)
			if col >= int64(in) {
				return fmt.Errorf("row %d column %d out of range [0,%d)", ld.Rows[i], col, in)
			}
			ld.Cols[k] = int32(col)
			prevCol = int32(col)
		}
	}
	for k := 0; k < nnz; k++ {
		bits, err := r.u32()
		if err != nil {
			return err
		}
		ld.Vals[k] = math.Float32frombits(bits)
	}
	return nil
}

// resizeLayers sets the delta's layer count, reusing backing arrays.
func resizeLayers(d *core.SparseDelta, layers int) {
	if cap(d.Layers) < layers {
		d.Layers = make([]core.LayerDelta, layers)
	}
	d.Layers = d.Layers[:layers]
}

// grow returns s resized to n elements, reusing capacity.
func grow[T int32 | float32](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// reader is a bounds-checked sequential decoder.
type reader struct{ buf []byte }

func (r *reader) bytes(dst []byte) error {
	if len(r.buf) < len(dst) {
		return fmt.Errorf("dist: truncated delta (want %d bytes, have %d)", len(dst), len(r.buf))
	}
	copy(dst, r.buf[:len(dst)])
	r.buf = r.buf[len(dst):]
	return nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		return 0, fmt.Errorf("dist: truncated or overlong varint")
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if len(r.buf) < 4 {
		return 0, fmt.Errorf("dist: truncated delta (want 4 bytes, have %d)", len(r.buf))
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v, nil
}

// uvarintLen returns the encoded length of x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}
