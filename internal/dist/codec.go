// Package dist implements data-parallel SLIDE training over sparse
// gradient exchange — the paper's §6 closing argument ("a distributed
// implementation of SLIDE would be very appealing because the
// communication costs are minimal due to sparse gradients") turned into a
// code path, following the low-bandwidth CPU-cluster design of
// "Distributed SLIDE" (arXiv:2201.12667).
//
// The package provides three layers:
//
//   - Codec: a compact binary wire format for core.SparseDelta —
//     varint-delta row/column ids, fp32 or bf16 gradient values — with
//     full validation against the network's layer shapes on decode.
//   - Exchangers: core.DeltaExchanger implementations. Mesh is the
//     in-process all-reduce for N replicas in one process (and, with one
//     shard, a loopback measurement tap); TCPServer/TCPClient are the
//     multi-process hub transport over length-prefixed frames.
//   - TrainSharded: the sharded training driver — N identical replicas,
//     round-robin data shards, per-batch delta exchange, replicas' weights
//     in bitwise lockstep.
package dist

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/vecmath"
)

// codecVersion identifies the wire format; bump on incompatible change.
// v2 added the value-format byte (fp32/bf16/topk) after the magic.
const codecVersion = 2

// codecMagic opens every encoded delta ("SDL" + version).
var codecMagic = [4]byte{'S', 'D', 'L', '0' + codecVersion}

// ValueFormat selects how a codec carries gradient values and biases on
// the wire. It is negotiated out of band (TrainConfig.Compress, covered
// by the TCP handshake digest) and stamped into every frame; a decoder
// built for one format rejects frames carrying another, so replicas with
// mismatched compression fail loudly instead of merging garbage.
type ValueFormat uint8

const (
	// ValueFP32 carries exact little-endian float32 values — v1's
	// payload, unchanged.
	ValueFP32 ValueFormat = iota
	// ValueBF16 carries values and biases as bfloat16 (2 bytes each,
	// round-to-nearest-even via vecmath.BF16FromF32), halving value
	// bytes.
	ValueBF16
	// ValueTopK carries exact float32 values like ValueFP32 but marks
	// the payload as top-k selected with error feedback: the cells are a
	// chosen subset, so a replica expecting the full gradient must not
	// silently accept it.
	ValueTopK
)

// String returns the flag spelling of the format.
func (f ValueFormat) String() string {
	switch f {
	case ValueFP32:
		return "fp32"
	case ValueBF16:
		return "bf16"
	case ValueTopK:
		return "topk"
	default:
		return fmt.Sprintf("ValueFormat(%d)", int(f))
	}
}

// valBytes returns the wire size of one value or bias.
func (f ValueFormat) valBytes() int {
	if f == ValueBF16 {
		return 2
	}
	return 4
}

// FormatFor maps a training-config compression mode to its wire format.
func FormatFor(c core.DeltaCompression) ValueFormat {
	switch c {
	case core.CompressBF16:
		return ValueBF16
	case core.CompressTopK:
		return ValueTopK
	default:
		return ValueFP32
	}
}

// Codec encodes and decodes SparseDeltas for a fixed network shape and a
// fixed value format. The per-layer (neurons, fan-in) dimensions bound
// every id on decode, so a malformed or hostile payload is rejected
// rather than applied.
//
// Wire format, all little-endian:
//
//	magic[4]
//	format byte (ValueFormat)
//	uvarint layerCount
//	per layer:
//	  uvarint rowCount
//	  rowCount uvarints: first row id raw, then (diff-1) to the previous
//	  rowCount uvarints: per-row cell counts
//	  rowCount values:   bias gradients (0 = no bias step)
//	  per row: cell-count uvarints: first column raw, then (diff-1)
//	  totalCells values: gradient values, row-major
//
// where a "value" is 4 bytes (fp32/topk) or 2 bytes (bf16). Row and
// column ids are strictly ascending (ExtractDelta, MergeDeltas and the
// top-k selection all guarantee it), so the diff-1 encoding is total and
// most ids fit one or two bytes at SLIDE's s² sparsity.
type Codec struct {
	dims   [][2]int32 // per layer: {out (rows), in (cols)}
	format ValueFormat
}

// NewCodec builds an exact-fp32 codec for the network's layer shapes.
func NewCodec(n *core.Network) *Codec {
	return NewCodecFormat(n, ValueFP32)
}

// NewCodecFormat builds a codec for the network's layer shapes carrying
// values in the given wire format.
func NewCodecFormat(n *core.Network, f ValueFormat) *Codec {
	dims := make([][2]int32, n.NumLayers())
	for i := range dims {
		l := n.Layer(i)
		dims[i] = [2]int32{int32(l.Out()), int32(l.In())}
	}
	return &Codec{dims: dims, format: f}
}

// Format returns the codec's negotiated value format.
func (c *Codec) Format() ValueFormat { return c.format }

// Quantize rounds d's values and biases through the codec's wire
// precision in place: for a bf16 codec every float becomes its bf16
// representable value — exactly the transform an encode/decode round
// trip applies — so an in-process exchanger (Mesh) produces the same
// bits a TCP replica reads off the wire. fp32 and topk codecs carry
// exact values; no-op. Rounding is idempotent, so quantizing an
// already-quantized delta changes nothing.
func (c *Codec) Quantize(d *core.SparseDelta) {
	if c.format != ValueBF16 {
		return
	}
	for li := range d.Layers {
		ld := &d.Layers[li]
		for i, v := range ld.Vals {
			ld.Vals[i] = vecmath.F32FromBF16(vecmath.BF16FromF32(v))
		}
		for i, b := range ld.Bias {
			ld.Bias[i] = vecmath.F32FromBF16(vecmath.BF16FromF32(b))
		}
	}
}

// EncodedSize returns the exact number of bytes AppendDelta would emit
// for d — the measured per-batch communication payload, without
// allocating the buffer.
func (c *Codec) EncodedSize(d *core.SparseDelta) int {
	vb := c.format.valBytes()
	size := len(codecMagic) + 1 + uvarintLen(uint64(len(d.Layers)))
	for li := range d.Layers {
		ld := &d.Layers[li]
		size += uvarintLen(uint64(len(ld.Rows)))
		prev := int32(-1)
		for r, row := range ld.Rows {
			size += uvarintLen(uint64(row - prev - 1))
			size += uvarintLen(uint64(ld.RowOff[r+1] - ld.RowOff[r]))
			prev = row
		}
		size += vb * len(ld.Bias)
		for r := range ld.Rows {
			prevCol := int32(-1)
			for k := ld.RowOff[r]; k < ld.RowOff[r+1]; k++ {
				size += uvarintLen(uint64(ld.Cols[k] - prevCol - 1))
				prevCol = ld.Cols[k]
			}
		}
		size += vb * len(ld.Vals)
	}
	return size
}

// appendVal emits one value in the codec's wire format.
func (c *Codec) appendVal(buf []byte, v float32) []byte {
	if c.format == ValueBF16 {
		return binary.LittleEndian.AppendUint16(buf, vecmath.BF16FromF32(v))
	}
	return binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
}

// AppendDelta appends d's encoding to buf and returns the extended
// buffer. The delta must satisfy the producer invariants (ascending
// in-range ids, consistent spans); violations are reported rather than
// silently emitting an undecodable payload.
func (c *Codec) AppendDelta(buf []byte, d *core.SparseDelta) ([]byte, error) {
	if len(d.Layers) != len(c.dims) {
		return buf, fmt.Errorf("dist: encoding delta with %d layers, codec has %d", len(d.Layers), len(c.dims))
	}
	buf = append(buf, codecMagic[:]...)
	buf = append(buf, byte(c.format))
	buf = binary.AppendUvarint(buf, uint64(len(d.Layers)))
	for li := range d.Layers {
		ld := &d.Layers[li]
		out, in := c.dims[li][0], c.dims[li][1]
		nr := len(ld.Rows)
		if len(ld.RowOff) != nr+1 || len(ld.Bias) != nr {
			return buf, fmt.Errorf("dist: layer %d: inconsistent delta (%d rows, %d offsets, %d biases)", li, nr, len(ld.RowOff), len(ld.Bias))
		}
		buf = binary.AppendUvarint(buf, uint64(nr))
		prev := int32(-1)
		for r, row := range ld.Rows {
			if row <= prev || row >= out {
				return buf, fmt.Errorf("dist: layer %d: row %d out of order or range [0,%d)", li, row, out)
			}
			buf = binary.AppendUvarint(buf, uint64(row-prev-1))
			buf = binary.AppendUvarint(buf, uint64(ld.RowOff[r+1]-ld.RowOff[r]))
			prev = row
		}
		for _, b := range ld.Bias {
			buf = c.appendVal(buf, b)
		}
		for r := range ld.Rows {
			prevCol := int32(-1)
			for k := ld.RowOff[r]; k < ld.RowOff[r+1]; k++ {
				col := ld.Cols[k]
				if col <= prevCol || col >= in {
					return buf, fmt.Errorf("dist: layer %d row %d: column %d out of order or range [0,%d)", li, ld.Rows[r], col, in)
				}
				buf = binary.AppendUvarint(buf, uint64(col-prevCol-1))
				prevCol = col
			}
		}
		for _, v := range ld.Vals {
			buf = c.appendVal(buf, v)
		}
	}
	return buf, nil
}

// DecodeDelta decodes buf into dst (reused when non-nil) with full
// validation: magic, value format, layer count, ascending in-range ids,
// span and length consistency. A frame carrying a different value format
// than the codec was built for is rejected — compression is negotiated,
// not sniffed. The returned delta satisfies every ApplyDelta and
// MergeDeltas precondition.
func (c *Codec) DecodeDelta(dst *core.SparseDelta, buf []byte) (*core.SparseDelta, error) {
	if dst == nil {
		dst = &core.SparseDelta{}
	}
	r := reader{buf: buf}
	// Compare the magic in place: copying it into a local array would
	// move the array to the heap (its slice feeds the error format),
	// putting one allocation on every decode.
	if len(r.buf) < len(codecMagic) || string(r.buf[:len(codecMagic)]) != string(codecMagic[:]) {
		if len(r.buf) < len(codecMagic) {
			return dst, fmt.Errorf("dist: short delta frame (%d bytes)", len(r.buf))
		}
		return dst, fmt.Errorf("dist: bad delta magic %q", r.buf[:len(codecMagic)])
	}
	r.buf = r.buf[len(codecMagic):]
	var fb [1]byte
	if err := r.bytes(fb[:]); err != nil {
		return dst, err
	}
	if f := ValueFormat(fb[0]); f != c.format {
		if f > ValueTopK {
			return dst, fmt.Errorf("dist: unknown value format %d", fb[0])
		}
		return dst, fmt.Errorf("dist: delta is %v but this group negotiated %v", f, c.format)
	}
	layers, err := r.uvarint()
	if err != nil {
		return dst, err
	}
	if layers != uint64(len(c.dims)) {
		return dst, fmt.Errorf("dist: delta has %d layers, codec has %d", layers, len(c.dims))
	}
	resizeLayers(dst, int(layers))
	for li := range dst.Layers {
		if err := c.decodeLayer(&r, li, &dst.Layers[li]); err != nil {
			return dst, fmt.Errorf("dist: layer %d: %w", li, err)
		}
	}
	if len(r.buf) != 0 {
		return dst, fmt.Errorf("dist: %d trailing bytes after delta", len(r.buf))
	}
	return dst, nil
}

// readVal reads one value in the codec's wire format.
func (c *Codec) readVal(r *reader) (float32, error) {
	if c.format == ValueBF16 {
		h, err := r.u16()
		return vecmath.F32FromBF16(h), err
	}
	bits, err := r.u32()
	return math.Float32frombits(bits), err
}

func (c *Codec) decodeLayer(r *reader, li int, ld *core.LayerDelta) error {
	out, in := c.dims[li][0], c.dims[li][1]
	vb := int64(c.format.valBytes())
	nrU, err := r.uvarint()
	if err != nil {
		return err
	}
	if nrU > uint64(out) {
		return fmt.Errorf("%d rows exceeds layer size %d", nrU, out)
	}
	nr := int(nrU)
	ld.Rows = grow(ld.Rows, nr)
	ld.RowOff = grow(ld.RowOff, nr+1)
	ld.Bias = grow(ld.Bias, nr)
	ld.RowOff[0] = 0
	prev := int32(-1)
	var total int64
	for i := 0; i < nr; i++ {
		diff, err := r.uvarint()
		if err != nil {
			return err
		}
		// Reject the diff before the addition: a diff >= out cannot
		// yield an in-range id, and an unchecked 64-bit diff would
		// overflow the sum negative and slip past the range check.
		if diff >= uint64(out) {
			return fmt.Errorf("row diff %d out of range [0,%d)", diff, out)
		}
		row := int64(prev) + 1 + int64(diff)
		if row >= int64(out) {
			return fmt.Errorf("row %d out of range [0,%d)", row, out)
		}
		ld.Rows[i] = int32(row)
		prev = int32(row)
		cells, err := r.uvarint()
		if err != nil {
			return err
		}
		if cells > uint64(in) {
			return fmt.Errorf("row %d has %d cells, fan-in is %d", row, cells, in)
		}
		total += int64(cells)
		ld.RowOff[i+1] = int32(total)
	}
	// Guard the allocation against a header that declares far more cells
	// than the payload could possibly back: the remaining buffer must
	// hold the bias block plus at least (1-byte column varint + one
	// value) per declared cell. Without this, a few hostile header bytes
	// could demand an out*in-cell allocation — and on layers wider than
	// 2^31 cells, wrap the int32 offsets.
	if total > int64(math.MaxInt32) || vb*int64(nr)+(1+vb)*total > int64(len(r.buf)) {
		return fmt.Errorf("declared %d cells exceed the %d-byte payload", total, len(r.buf))
	}
	for i := 0; i < nr; i++ {
		b, err := c.readVal(r)
		if err != nil {
			return err
		}
		ld.Bias[i] = b
	}
	nnz := int(total)
	ld.Cols = grow(ld.Cols, nnz)
	ld.Vals = grow(ld.Vals, nnz)
	for i := 0; i < nr; i++ {
		prevCol := int32(-1)
		for k := ld.RowOff[i]; k < ld.RowOff[i+1]; k++ {
			diff, err := r.uvarint()
			if err != nil {
				return err
			}
			if diff >= uint64(in) { // see the row-diff overflow guard
				return fmt.Errorf("row %d column diff %d out of range [0,%d)", ld.Rows[i], diff, in)
			}
			col := int64(prevCol) + 1 + int64(diff)
			if col >= int64(in) {
				return fmt.Errorf("row %d column %d out of range [0,%d)", ld.Rows[i], col, in)
			}
			ld.Cols[k] = int32(col)
			prevCol = int32(col)
		}
	}
	for k := 0; k < nnz; k++ {
		v, err := c.readVal(r)
		if err != nil {
			return err
		}
		ld.Vals[k] = v
	}
	return nil
}

// resizeLayers sets the delta's layer count, reusing backing arrays.
func resizeLayers(d *core.SparseDelta, layers int) {
	if cap(d.Layers) < layers {
		d.Layers = make([]core.LayerDelta, layers)
	}
	d.Layers = d.Layers[:layers]
}

// grow returns s resized to n elements, reusing capacity.
func grow[T int32 | float32](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// reader is a bounds-checked sequential decoder.
type reader struct{ buf []byte }

func (r *reader) bytes(dst []byte) error {
	if len(r.buf) < len(dst) {
		return fmt.Errorf("dist: truncated delta (want %d bytes, have %d)", len(dst), len(r.buf))
	}
	copy(dst, r.buf[:len(dst)])
	r.buf = r.buf[len(dst):]
	return nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		return 0, fmt.Errorf("dist: truncated or overlong varint")
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if len(r.buf) < 4 {
		return 0, fmt.Errorf("dist: truncated delta (want 4 bytes, have %d)", len(r.buf))
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if len(r.buf) < 2 {
		return 0, fmt.Errorf("dist: truncated delta (want 2 bytes, have %d)", len(r.buf))
	}
	v := binary.LittleEndian.Uint16(r.buf)
	r.buf = r.buf[2:]
	return v, nil
}

// uvarintLen returns the encoded length of x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}
